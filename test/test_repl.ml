open Resoc_repl
module Engine = Resoc_des.Engine
module Behavior = Resoc_fault.Behavior
module Register = Resoc_hw.Register
module Usig = Resoc_hybrid.Usig

let horizon = 300_000

(* --- shared helpers --- *)

let submit_series submit ~client ~count =
  for i = 1 to count do
    submit ~client ~payload:(Int64.of_int i)
  done

let sum_1_to n = Int64.of_int (n * (n + 1) / 2)

(* --- App --- *)

let test_app_accumulator () =
  let app = App.accumulator () in
  Alcotest.(check int64) "first" 3L (App.execute app 3L);
  Alcotest.(check int64) "second" 10L (App.execute app 7L);
  Alcotest.(check int64) "state" 10L (App.state app);
  Alcotest.(check int) "executions" 2 (App.executions app)

let test_app_register () =
  let app = App.register () in
  Alcotest.(check int64) "returns previous" 0L (App.execute app 5L);
  Alcotest.(check int64) "returns previous 2" 5L (App.execute app 9L);
  Alcotest.(check int64) "state" 9L (App.state app)

let test_app_corrupted () =
  let good = App.accumulator () in
  let bad = App.corrupted (App.accumulator ()) in
  Alcotest.(check bool) "results differ" false
    (Int64.equal (App.execute good 3L) (App.execute bad 3L));
  Alcotest.(check int64) "state evolution identical" (App.state good) (App.state bad)

let test_app_kv () =
  let app = App.kv () in
  let exec op = App.execute app (App.Kv_op.encode op) in
  Alcotest.(check int64) "get empty" 0L (exec (App.Kv_op.Get 3));
  Alcotest.(check int64) "put returns previous" 0L (exec (App.Kv_op.Put (3, 42l)));
  Alcotest.(check int64) "get returns value" 42L (exec (App.Kv_op.Get 3));
  Alcotest.(check int64) "incr" 43L (exec (App.Kv_op.Incr 3));
  Alcotest.(check int64) "other key independent" 0L (exec (App.Kv_op.Get 5))

let test_app_kv_codec_roundtrip () =
  List.iter
    (fun op ->
      match App.Kv_op.decode (App.Kv_op.encode op) with
      | Some op' -> Alcotest.(check bool) "roundtrip" true (op = op')
      | None -> Alcotest.fail "decode failed")
    [ App.Kv_op.Get 0; App.Kv_op.Get 4095; App.Kv_op.Put (7, 123456l);
      App.Kv_op.Put (0, -1l); App.Kv_op.Incr 15 ]

let test_app_kv_order_sensitive () =
  (* Unlike the accumulator, the kv digest exposes ordering. *)
  let a = App.kv () and b = App.kv () in
  ignore (App.execute a (App.Kv_op.encode (App.Kv_op.Put (1, 10l))));
  ignore (App.execute a (App.Kv_op.encode (App.Kv_op.Put (1, 20l))));
  ignore (App.execute b (App.Kv_op.encode (App.Kv_op.Put (1, 20l))));
  ignore (App.execute b (App.Kv_op.encode (App.Kv_op.Put (1, 10l))));
  Alcotest.(check bool) "divergent order, divergent digest" false
    (Int64.equal (App.state a) (App.state b))

let test_app_kv_malformed_noop () =
  let app = App.kv () in
  Alcotest.(check int64) "malformed payload is a no-op read" 0L (App.execute app 0L)

(* --- Transport hub --- *)

let test_hub_delivery_and_latency () =
  let engine = Engine.create () in
  let fabric = Transport.hub engine ~n:3 ~latency:7 () in
  let got = ref (-1, -1) in
  fabric.Transport.set_handler 2 (fun ~src v -> got := (src, v));
  fabric.Transport.send ~src:0 ~dst:2 42;
  Engine.run engine;
  Alcotest.(check (pair int int)) "delivered" (0, 42) !got;
  Alcotest.(check int) "at latency" 7 (Engine.now engine)

let test_hub_detach () =
  let engine = Engine.create () in
  let fabric = Transport.hub engine ~n:2 () in
  let hits = ref 0 in
  fabric.Transport.set_handler 1 (fun ~src:_ _ -> incr hits);
  fabric.Transport.detach 1;
  fabric.Transport.send ~src:0 ~dst:1 ();
  Engine.run engine;
  Alcotest.(check int) "detached drops" 0 !hits

let test_hub_counters () =
  let engine = Engine.create () in
  let fabric = Transport.hub engine ~n:2 ~size_of:(fun _ -> 100) () in
  fabric.Transport.set_handler 1 (fun ~src:_ _ -> ());
  fabric.Transport.send ~src:0 ~dst:1 ();
  fabric.Transport.send ~src:0 ~dst:1 ();
  Engine.run engine;
  Alcotest.(check int) "messages" 2 (fabric.Transport.messages_sent ());
  Alcotest.(check int) "bytes" 200 (fabric.Transport.bytes_sent ())

(* --- PBFT --- *)

let pbft_setup ?(f = 1) ?(n_clients = 1) ?behaviors () =
  let engine = Engine.create () in
  let config = { Pbft.default_config with f; n_clients } in
  let n = Pbft.n_replicas config in
  let fabric = Transport.hub engine ~n:(n + n_clients) () in
  let sys = Pbft.start engine fabric config ?behaviors () in
  (engine, sys, n)

let check_pbft_agreement sys ~n ~expect ~skip =
  for r = 0 to n - 1 do
    if not (List.mem r skip) then
      Alcotest.(check int64) (Printf.sprintf "replica %d state" r) expect (Pbft.replica_state sys ~replica:r)
  done

let test_pbft_happy_path () =
  let engine, sys, n = pbft_setup () in
  submit_series (Pbft.submit sys) ~client:0 ~count:5;
  Engine.run ~until:horizon engine;
  let s = Pbft.stats sys in
  Alcotest.(check int) "all completed" 5 s.Stats.completed;
  Alcotest.(check int) "no view change" 0 s.Stats.view_changes;
  Alcotest.(check int) "no wrong replies" 0 s.Stats.wrong_replies;
  check_pbft_agreement sys ~n ~expect:(sum_1_to 5) ~skip:[]

let test_pbft_latency_recorded () =
  let engine, sys, _ = pbft_setup () in
  submit_series (Pbft.submit sys) ~client:0 ~count:3;
  Engine.run ~until:horizon engine;
  let s = Pbft.stats sys in
  Alcotest.(check int) "latency samples" 3 (Resoc_des.Metrics.Histogram.count s.Stats.latency);
  (* 5-cycle hub: request + preprepare + prepare + commit + reply >= 25 *)
  Alcotest.(check bool) "latency sane" true (Resoc_des.Metrics.Histogram.min s.Stats.latency >= 20.0)

let test_pbft_crash_backup_tolerated () =
  let behaviors = [| Behavior.honest; Behavior.crash_at 0; Behavior.honest; Behavior.honest |] in
  let engine, sys, n = pbft_setup ~behaviors () in
  submit_series (Pbft.submit sys) ~client:0 ~count:5;
  Engine.run ~until:horizon engine;
  let s = Pbft.stats sys in
  Alcotest.(check int) "all completed" 5 s.Stats.completed;
  Alcotest.(check int) "no view change needed" 0 s.Stats.view_changes;
  check_pbft_agreement sys ~n ~expect:(sum_1_to 5) ~skip:[ 1 ]

let test_pbft_crash_primary_view_change () =
  let behaviors = [| Behavior.crash_at 10; Behavior.honest; Behavior.honest; Behavior.honest |] in
  let engine, sys, n = pbft_setup ~behaviors () in
  submit_series (Pbft.submit sys) ~client:0 ~count:5;
  Engine.run ~until:horizon engine;
  let s = Pbft.stats sys in
  Alcotest.(check int) "all completed despite dead primary" 5 s.Stats.completed;
  Alcotest.(check bool) "view changed" true (s.Stats.view_changes >= 1);
  Alcotest.(check bool) "new view adopted" true (Pbft.view sys ~replica:1 >= 1);
  check_pbft_agreement sys ~n ~expect:(sum_1_to 5) ~skip:[ 0 ]

let test_pbft_silent_byzantine_primary () =
  let behaviors =
    [| Behavior.byzantine Behavior.Silent; Behavior.honest; Behavior.honest; Behavior.honest |]
  in
  let engine, sys, n = pbft_setup ~behaviors () in
  submit_series (Pbft.submit sys) ~client:0 ~count:3;
  Engine.run ~until:horizon engine;
  let s = Pbft.stats sys in
  Alcotest.(check int) "completed" 3 s.Stats.completed;
  Alcotest.(check bool) "view changed" true (s.Stats.view_changes >= 1);
  check_pbft_agreement sys ~n ~expect:(sum_1_to 3) ~skip:[ 0 ]

let test_pbft_equivocating_primary_evicted () =
  let behaviors =
    [| Behavior.byzantine Behavior.Equivocate; Behavior.honest; Behavior.honest; Behavior.honest |]
  in
  let engine, sys, _ = pbft_setup ~behaviors () in
  submit_series (Pbft.submit sys) ~client:0 ~count:3;
  Engine.run ~until:horizon engine;
  let s = Pbft.stats sys in
  Alcotest.(check int) "completed after eviction" 3 s.Stats.completed;
  Alcotest.(check bool) "equivocation forced view change" true (s.Stats.view_changes >= 1);
  (* honest replicas agree *)
  let s1 = Pbft.replica_state sys ~replica:1 in
  Alcotest.(check int64) "r2 agrees" s1 (Pbft.replica_state sys ~replica:2);
  Alcotest.(check int64) "r3 agrees" s1 (Pbft.replica_state sys ~replica:3)

let test_pbft_corrupt_replies_filtered () =
  let behaviors =
    [| Behavior.honest; Behavior.byzantine Behavior.Corrupt_execution; Behavior.honest; Behavior.honest |]
  in
  let engine, sys, _ = pbft_setup ~behaviors () in
  submit_series (Pbft.submit sys) ~client:0 ~count:4;
  Engine.run ~until:horizon engine;
  let s = Pbft.stats sys in
  Alcotest.(check int) "completed" 4 s.Stats.completed;
  Alcotest.(check bool) "dissenting replies observed" true (s.Stats.wrong_replies >= 1)

let test_pbft_two_faults_stall_f1 () =
  (* f=1 cannot survive two crashed replicas: no 2f+1 quorum. *)
  let behaviors = [| Behavior.honest; Behavior.crash_at 0; Behavior.crash_at 0; Behavior.honest |] in
  let engine, sys, _ = pbft_setup ~behaviors () in
  submit_series (Pbft.submit sys) ~client:0 ~count:3;
  Engine.run ~until:horizon engine;
  let s = Pbft.stats sys in
  Alcotest.(check int) "no unsafe progress" 0 s.Stats.completed

let test_pbft_f2_tolerates_two () =
  let behaviors = Array.make 7 Behavior.honest in
  behaviors.(1) <- Behavior.crash_at 0;
  behaviors.(2) <- Behavior.crash_at 0;
  let engine, sys, n = pbft_setup ~f:2 ~behaviors () in
  submit_series (Pbft.submit sys) ~client:0 ~count:4;
  Engine.run ~until:horizon engine;
  let s = Pbft.stats sys in
  Alcotest.(check int) "n is 7" 7 n;
  Alcotest.(check int) "completed" 4 s.Stats.completed;
  check_pbft_agreement sys ~n ~expect:(sum_1_to 4) ~skip:[ 1; 2 ]

let test_pbft_multiple_clients () =
  let engine, sys, n = pbft_setup ~n_clients:3 () in
  submit_series (Pbft.submit sys) ~client:0 ~count:3;
  submit_series (Pbft.submit sys) ~client:1 ~count:3;
  submit_series (Pbft.submit sys) ~client:2 ~count:3;
  Engine.run ~until:horizon engine;
  let s = Pbft.stats sys in
  Alcotest.(check int) "all clients served" 9 s.Stats.completed;
  check_pbft_agreement sys ~n ~expect:(Int64.mul 3L (sum_1_to 3)) ~skip:[]

let test_pbft_exactly_once_under_retries () =
  (* Very short client timeout provokes retransmissions; the rid table must
     keep execution exactly-once. *)
  let engine = Engine.create () in
  let config = { Pbft.default_config with f = 1; n_clients = 1; request_timeout = 40 } in
  let n = Pbft.n_replicas config in
  let fabric = Transport.hub engine ~n:(n + 1) ~latency:9 () in
  let sys = Pbft.start engine fabric config () in
  submit_series (Pbft.submit sys) ~client:0 ~count:5;
  Engine.run ~until:horizon engine;
  let s = Pbft.stats sys in
  Alcotest.(check int) "completed" 5 s.Stats.completed;
  Alcotest.(check bool) "retransmissions happened" true (s.Stats.retransmissions > 0);
  check_pbft_agreement sys ~n ~expect:(sum_1_to 5) ~skip:[]

let test_pbft_offline_online_cycle () =
  let engine, sys, n = pbft_setup () in
  (* Staggered rejuvenation: take one replica down at a time. *)
  ignore (Engine.schedule engine ~delay:1_000 (fun () -> Pbft.set_offline sys ~replica:3));
  ignore (Engine.schedule engine ~delay:30_000 (fun () -> Pbft.set_online sys ~replica:3));
  ignore (Engine.schedule engine ~delay:60_000 (fun () -> Pbft.set_offline sys ~replica:2));
  ignore (Engine.schedule engine ~delay:90_000 (fun () -> Pbft.set_online sys ~replica:2));
  Engine.every engine ~period:10_000 (fun () ->
      if Engine.now engine <= 100_000 then Pbft.submit sys ~client:0 ~payload:1L);
  Engine.run ~until:horizon engine;
  let s = Pbft.stats sys in
  Alcotest.(check int) "all completed through rejuvenation" 10 s.Stats.completed;
  (* the rejuvenated replicas caught up via state transfer *)
  Alcotest.(check int64) "r3 state" (Pbft.replica_state sys ~replica:0) (Pbft.replica_state sys ~replica:3);
  Alcotest.(check int64) "r2 state" (Pbft.replica_state sys ~replica:0) (Pbft.replica_state sys ~replica:2);
  ignore n

let test_pbft_determinism () =
  let run () =
    let engine, sys, _ = pbft_setup () in
    submit_series (Pbft.submit sys) ~client:0 ~count:5;
    Engine.run ~until:horizon engine;
    let s = Pbft.stats sys in
    (s.Stats.completed, Resoc_des.Metrics.Histogram.mean s.Stats.latency, Engine.events_processed engine)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical runs" true (a = b)

(* --- MinBFT --- *)

let minbft_setup ?(f = 1) ?(n_clients = 1) ?(protection = Register.Secded) ?behaviors () =
  let engine = Engine.create () in
  let config = { Minbft.default_config with f; n_clients; usig_protection = protection } in
  let n = Minbft.n_replicas config in
  let fabric = Transport.hub engine ~n:(n + n_clients) () in
  let sys = Minbft.start engine fabric config ?behaviors () in
  (engine, sys, n)

let test_minbft_happy_path () =
  let engine, sys, n = minbft_setup () in
  Alcotest.(check int) "2f+1 replicas" 3 n;
  submit_series (Minbft.submit sys) ~client:0 ~count:5;
  Engine.run ~until:horizon engine;
  let s = Minbft.stats sys in
  Alcotest.(check int) "completed" 5 s.Stats.completed;
  Alcotest.(check int) "no view changes" 0 s.Stats.view_changes;
  for r = 0 to n - 1 do
    Alcotest.(check int64) (Printf.sprintf "replica %d" r) (sum_1_to 5) (Minbft.replica_state sys ~replica:r)
  done

let test_minbft_fewer_messages_than_pbft () =
  (* Same workload, f=1: MinBFT (3 replicas, 2 phases) must move fewer
     protocol messages than PBFT (4 replicas, 3 phases). *)
  let run_pbft () =
    let engine = Engine.create () in
    let config = { Pbft.default_config with f = 1; n_clients = 1 } in
    let fabric = Transport.hub engine ~n:5 () in
    let sys = Pbft.start engine fabric config () in
    submit_series (Pbft.submit sys) ~client:0 ~count:10;
    Engine.run ~until:horizon engine;
    ((Pbft.stats sys).Stats.completed, fabric.Transport.messages_sent ())
  in
  let run_minbft () =
    let engine = Engine.create () in
    let config = { Minbft.default_config with f = 1; n_clients = 1 } in
    let fabric = Transport.hub engine ~n:4 () in
    let sys = Minbft.start engine fabric config () in
    submit_series (Minbft.submit sys) ~client:0 ~count:10;
    Engine.run ~until:horizon engine;
    ((Minbft.stats sys).Stats.completed, fabric.Transport.messages_sent ())
  in
  let pbft_done, pbft_msgs = run_pbft () in
  let minbft_done, minbft_msgs = run_minbft () in
  Alcotest.(check int) "pbft completed" 10 pbft_done;
  Alcotest.(check int) "minbft completed" 10 minbft_done;
  Alcotest.(check bool)
    (Printf.sprintf "minbft %d < pbft %d messages" minbft_msgs pbft_msgs)
    true (minbft_msgs < pbft_msgs)

let test_minbft_crash_backup_tolerated () =
  let behaviors = [| Behavior.honest; Behavior.crash_at 0; Behavior.honest |] in
  let engine, sys, _ = minbft_setup ~behaviors () in
  submit_series (Minbft.submit sys) ~client:0 ~count:5;
  Engine.run ~until:horizon engine;
  Alcotest.(check int) "completed" 5 (Minbft.stats sys).Stats.completed

let test_minbft_crash_primary_view_change () =
  let behaviors = [| Behavior.crash_at 10; Behavior.honest; Behavior.honest |] in
  let engine, sys, _ = minbft_setup ~behaviors () in
  submit_series (Minbft.submit sys) ~client:0 ~count:5;
  Engine.run ~until:horizon engine;
  let s = Minbft.stats sys in
  Alcotest.(check int) "completed" 5 s.Stats.completed;
  Alcotest.(check bool) "view changed" true (s.Stats.view_changes >= 1);
  Alcotest.(check int64) "survivors agree" (Minbft.replica_state sys ~replica:1)
    (Minbft.replica_state sys ~replica:2)

let test_minbft_equivocation_harmless () =
  (* The USIG forces distinct counters, so an equivocating primary cannot
     stall the group (contrast with PBFT, where it forces a view change). *)
  let behaviors = [| Behavior.byzantine Behavior.Equivocate; Behavior.honest; Behavior.honest |] in
  let engine, sys, _ = minbft_setup ~behaviors () in
  submit_series (Minbft.submit sys) ~client:0 ~count:5;
  Engine.run ~until:horizon engine;
  let s = Minbft.stats sys in
  Alcotest.(check int) "all completed, no stall" 5 s.Stats.completed;
  Alcotest.(check int) "no view change needed" 0 s.Stats.view_changes;
  (* honest replicas stay mutually consistent *)
  Alcotest.(check int64) "agreement" (Minbft.replica_state sys ~replica:1)
    (Minbft.replica_state sys ~replica:2)

let test_minbft_plain_usig_seu_stalls_primary () =
  (* A silent bitflip in a Plain USIG counter desynchronizes the primary:
     backups see a counter gap and stop accepting its prepares, forcing a
     view change. *)
  let engine, sys, _ = minbft_setup ~protection:Register.Plain () in
  submit_series (Minbft.submit sys) ~client:0 ~count:2;
  ignore
    (Engine.schedule engine ~delay:5_000 (fun () ->
         Register.inject_upset_at (Usig.counter_register (Minbft.usig sys ~replica:0)) 20));
  ignore
    (Engine.schedule engine ~delay:6_000 (fun () ->
         submit_series (Minbft.submit sys) ~client:0 ~count:3));
  Engine.run ~until:horizon engine;
  let s = Minbft.stats sys in
  Alcotest.(check int) "eventually all complete" 5 s.Stats.completed;
  Alcotest.(check bool) "gap detected" true (Minbft.usig_gap_drops sys > 0);
  Alcotest.(check bool) "view change evicted the skewed primary" true (s.Stats.view_changes >= 1)

let test_minbft_secded_usig_survives_seu () =
  let engine, sys, _ = minbft_setup ~protection:Register.Secded () in
  submit_series (Minbft.submit sys) ~client:0 ~count:2;
  ignore
    (Engine.schedule engine ~delay:5_000 (fun () ->
         Register.inject_upset_at (Usig.counter_register (Minbft.usig sys ~replica:0)) 20));
  ignore
    (Engine.schedule engine ~delay:6_000 (fun () ->
         submit_series (Minbft.submit sys) ~client:0 ~count:3));
  Engine.run ~until:horizon engine;
  let s = Minbft.stats sys in
  Alcotest.(check int) "all complete" 5 s.Stats.completed;
  Alcotest.(check int) "no gaps" 0 (Minbft.usig_gap_drops sys);
  Alcotest.(check int) "no view change" 0 s.Stats.view_changes

let test_minbft_corrupt_replies_filtered () =
  let behaviors = [| Behavior.honest; Behavior.byzantine Behavior.Corrupt_execution; Behavior.honest |] in
  let engine, sys, _ = minbft_setup ~behaviors () in
  submit_series (Minbft.submit sys) ~client:0 ~count:4;
  Engine.run ~until:horizon engine;
  let s = Minbft.stats sys in
  Alcotest.(check int) "completed" 4 s.Stats.completed;
  Alcotest.(check bool) "dissent observed" true (s.Stats.wrong_replies >= 1)

let test_minbft_offline_online () =
  let engine, sys, _ = minbft_setup () in
  ignore (Engine.schedule engine ~delay:1_000 (fun () -> Minbft.set_offline sys ~replica:2));
  ignore (Engine.schedule engine ~delay:40_000 (fun () -> Minbft.set_online sys ~replica:2));
  Engine.every engine ~period:10_000 (fun () ->
      if Engine.now engine <= 80_000 then Minbft.submit sys ~client:0 ~payload:1L);
  Engine.run ~until:horizon engine;
  let s = Minbft.stats sys in
  Alcotest.(check int) "completed through cycle" 8 s.Stats.completed;
  Alcotest.(check int64) "rejoined replica consistent" (Minbft.replica_state sys ~replica:0)
    (Minbft.replica_state sys ~replica:2)

let test_minbft_batching_preserves_semantics () =
  (* With a batching window, many concurrent client requests are ordered
     under few certificates, but execution and agreement are unchanged. *)
  let engine = Engine.create () in
  let config =
    { Minbft.default_config with f = 1; n_clients = 6; batch_window = 200; max_batch = 8 }
  in
  let fabric = Transport.hub engine ~n:9 () in
  let sys = Minbft.start engine fabric config () in
  for client = 0 to 5 do
    for i = 1 to 4 do
      Minbft.submit sys ~client ~payload:(Int64.of_int i)
    done
  done;
  Engine.run ~until:horizon engine;
  let s = Minbft.stats sys in
  Alcotest.(check int) "all completed" 24 s.Stats.completed;
  Alcotest.(check int64) "agreement" (Minbft.replica_state sys ~replica:0)
    (Minbft.replica_state sys ~replica:2);
  Alcotest.(check int64) "value" (Int64.mul 6L (sum_1_to 4)) (Minbft.replica_state sys ~replica:0)

let test_minbft_batching_cuts_certificates () =
  let run ~batch_window =
    let engine = Engine.create () in
    let config = { Minbft.default_config with f = 1; n_clients = 8; batch_window; max_batch = 16 } in
    let fabric = Transport.hub engine ~n:11 () in
    let sys = Minbft.start engine fabric config () in
    for client = 0 to 7 do
      for i = 1 to 3 do
        Minbft.submit sys ~client ~payload:(Int64.of_int i)
      done
    done;
    Engine.run ~until:horizon engine;
    Alcotest.(check int) "completed" 24 (Minbft.stats sys).Stats.completed;
    (* Certificates issued by the primary = prepares = its USIG counter. *)
    Resoc_hybrid.Usig.uis_issued (Minbft.usig sys ~replica:0)
  in
  let unbatched = run ~batch_window:0 in
  let batched = run ~batch_window:300 in
  Alcotest.(check bool)
    (Printf.sprintf "batched %d < unbatched %d certificates" batched unbatched)
    true
    (batched < unbatched)

let test_minbft_batching_with_primary_crash () =
  let engine = Engine.create () in
  let config = { Minbft.default_config with f = 1; n_clients = 2; batch_window = 200 } in
  let fabric = Transport.hub engine ~n:5 () in
  let behaviors = [| Behavior.crash_at 10; Behavior.honest; Behavior.honest |] in
  let sys = Minbft.start engine fabric config ~behaviors () in
  submit_series (Minbft.submit sys) ~client:0 ~count:4;
  submit_series (Minbft.submit sys) ~client:1 ~count:4;
  Engine.run ~until:horizon engine;
  let s = Minbft.stats sys in
  Alcotest.(check int) "completed through view change" 8 s.Stats.completed;
  Alcotest.(check int64) "survivors agree" (Minbft.replica_state sys ~replica:1)
    (Minbft.replica_state sys ~replica:2)

(* --- Cross-protocol batching + pipelining (Batcher) --- *)

let some_batching ?(window = 100) ?(max_batch = 8) ?(depth = 4) () =
  Some { Types.window_cycles = window; max_batch; pipeline_depth = depth }

let batched_pbft_setup ?batching ?(n_clients = 8) () =
  let engine = Engine.create () in
  let config = { Pbft.default_config with f = 1; n_clients; batching } in
  let n = Pbft.n_replicas config in
  let fabric = Transport.hub engine ~n:(n + n_clients) () in
  let sys = Pbft.start engine fabric config () in
  (engine, sys, n, fabric)

let test_pbft_batching_preserves_semantics () =
  let engine, sys, n, _ = batched_pbft_setup ?batching:(some_batching ()) () in
  for client = 0 to 7 do
    submit_series (Pbft.submit sys) ~client ~count:4
  done;
  Engine.run ~until:horizon engine;
  let s = Pbft.stats sys in
  Alcotest.(check int) "all completed" 32 s.Stats.completed;
  Alcotest.(check int) "no view change" 0 s.Stats.view_changes;
  check_pbft_agreement sys ~n ~expect:(Int64.mul 8L (sum_1_to 4)) ~skip:[]

let test_pbft_batching_cuts_messages () =
  (* Identical logical traffic with and without batching: agreement cost
     collapses because one Pre_prepare_b/Prepare/Commit round covers a
     whole batch. *)
  let run batching =
    let engine, sys, _, fabric = batched_pbft_setup ?batching () in
    for client = 0 to 7 do
      submit_series (Pbft.submit sys) ~client ~count:4
    done;
    Engine.run ~until:horizon engine;
    Alcotest.(check int) "completed" 32 (Pbft.stats sys).Stats.completed;
    fabric.Transport.messages_sent ()
  in
  let unbatched = run None in
  let batched = run (some_batching ()) in
  Alcotest.(check bool)
    (Printf.sprintf "batched %d msgs < 2/3 of unbatched %d" batched unbatched)
    true
    (3 * batched < 2 * unbatched)

let test_pbft_batching_armed_identical () =
  (* A present-but-inactive config (max_batch 1, window 0) creates no
     batcher: message counts and stats must match a plain run exactly —
     the determinism gate's byte-identity argument in miniature. *)
  let run batching =
    let engine, sys, _, fabric = batched_pbft_setup ?batching () in
    for client = 0 to 7 do
      submit_series (Pbft.submit sys) ~client ~count:4
    done;
    Engine.run ~until:horizon engine;
    ((Pbft.stats sys).Stats.completed, fabric.Transport.messages_sent (),
     fabric.Transport.bytes_sent ())
  in
  let plain = run None in
  let armed = run (some_batching ~window:0 ~max_batch:1 ~depth:1 ()) in
  Alcotest.(check bool) "armed run identical to plain" true (plain = armed)

let test_pbft_batching_depth_one () =
  (* pipeline_depth 1 serializes agreement instances; everything still
     completes, just in more batches. *)
  let engine, sys, n, _ =
    batched_pbft_setup ?batching:(some_batching ~depth:1 ()) ()
  in
  for client = 0 to 7 do
    submit_series (Pbft.submit sys) ~client ~count:3
  done;
  Engine.run ~until:horizon engine;
  Alcotest.(check int) "all completed" 24 (Pbft.stats sys).Stats.completed;
  check_pbft_agreement sys ~n ~expect:(Int64.mul 8L (sum_1_to 3)) ~skip:[]

let test_pbft_batching_with_checkpointing () =
  (* The pipeline is additionally bounded by the checkpoint high
     watermark; with a small interval the two gates interleave. *)
  let engine = Engine.create () in
  let config =
    {
      Pbft.default_config with
      f = 1;
      n_clients = 8;
      batching = some_batching ();
      checkpoint = Some { Checkpoint.interval = 4; window = 2; chunk = 8 };
    }
  in
  let n = Pbft.n_replicas config in
  let fabric = Transport.hub engine ~n:(n + 8) () in
  let sys = Pbft.start engine fabric config () in
  for client = 0 to 7 do
    submit_series (Pbft.submit sys) ~client ~count:4
  done;
  Engine.run ~until:horizon engine;
  Alcotest.(check int) "all completed" 32 (Pbft.stats sys).Stats.completed;
  check_pbft_agreement sys ~n ~expect:(Int64.mul 8L (sum_1_to 4)) ~skip:[]

let test_paxos_batching_completes () =
  let engine = Engine.create () in
  let config = { Paxos.default_config with f = 1; n_clients = 8; batching = some_batching () } in
  let n = Paxos.n_replicas config in
  let fabric = Transport.hub engine ~n:(n + 8) () in
  let sys = Paxos.start engine fabric config () in
  for client = 0 to 7 do
    submit_series (Paxos.submit sys) ~client ~count:4
  done;
  Engine.run ~until:horizon engine;
  Alcotest.(check int) "all completed" 32 (Paxos.stats sys).Stats.completed;
  for r = 0 to n - 1 do
    Alcotest.(check int64)
      (Printf.sprintf "replica %d" r)
      (Int64.mul 8L (sum_1_to 4))
      (Paxos.replica_state sys ~replica:r)
  done

let test_paxos_batching_survives_failover () =
  let engine = Engine.create () in
  let config = { Paxos.default_config with f = 1; n_clients = 4; batching = some_batching () } in
  let n = Paxos.n_replicas config in
  let behaviors = Array.make n Behavior.honest in
  behaviors.(0) <- Behavior.crash_at 10;
  let fabric = Transport.hub engine ~n:(n + 4) () in
  let sys = Paxos.start engine fabric config ~behaviors () in
  for client = 0 to 3 do
    submit_series (Paxos.submit sys) ~client ~count:3
  done;
  Engine.run ~until:horizon engine;
  Alcotest.(check int) "completed through failover" 12 (Paxos.stats sys).Stats.completed;
  Alcotest.(check int64) "survivors agree" (Paxos.replica_state sys ~replica:1)
    (Paxos.replica_state sys ~replica:2)

let test_pb_batching_completes () =
  let engine = Engine.create () in
  let config =
    { Primary_backup.default_config with n_clients = 8; batching = some_batching () }
  in
  let n = Primary_backup.n_replicas config in
  let fabric = Transport.hub engine ~n:(n + 8) () in
  let sys = Primary_backup.start engine fabric config () in
  for client = 0 to 7 do
    submit_series (Primary_backup.submit sys) ~client ~count:4
  done;
  Engine.run ~until:horizon engine;
  let s = Primary_backup.stats sys in
  Alcotest.(check int) "all completed" 32 s.Stats.completed;
  Alcotest.(check int64) "backup synced" (Primary_backup.replica_state sys ~replica:0)
    (Primary_backup.replica_state sys ~replica:1)

let test_pb_batching_exactly_once () =
  (* Retransmissions of a buffered request must not enter a second batch:
     the accumulator would show the double execution. *)
  let engine = Engine.create () in
  let config =
    {
      Primary_backup.default_config with
      n_clients = 2;
      request_timeout = 50;  (* shorter than the 200-cycle window: forces retx *)
      batching = some_batching ~window:200 ();
    }
  in
  let n = Primary_backup.n_replicas config in
  let fabric = Transport.hub engine ~n:(n + 2) () in
  let sys = Primary_backup.start engine fabric config () in
  submit_series (Primary_backup.submit sys) ~client:0 ~count:3;
  submit_series (Primary_backup.submit sys) ~client:1 ~count:3;
  Engine.run ~until:horizon engine;
  let s = Primary_backup.stats sys in
  Alcotest.(check int) "completed" 6 s.Stats.completed;
  Alcotest.(check int64) "executed exactly once" (Int64.mul 2L (sum_1_to 3))
    (Primary_backup.replica_state sys ~replica:0)

(* --- Paxos --- *)

let paxos_setup ?(f = 1) ?(n_clients = 1) ?behaviors () =
  let engine = Engine.create () in
  let config = { Paxos.default_config with f; n_clients } in
  let n = Paxos.n_replicas config in
  let fabric = Transport.hub engine ~n:(n + n_clients) () in
  let sys = Paxos.start engine fabric config ?behaviors () in
  (engine, sys, n)

let test_paxos_happy_path () =
  let engine, sys, n = paxos_setup () in
  submit_series (Paxos.submit sys) ~client:0 ~count:5;
  Engine.run ~until:horizon engine;
  let s = Paxos.stats sys in
  Alcotest.(check int) "completed" 5 s.Stats.completed;
  for r = 0 to n - 1 do
    Alcotest.(check int64) (Printf.sprintf "replica %d" r) (sum_1_to 5) (Paxos.replica_state sys ~replica:r)
  done

let test_paxos_crash_follower () =
  let behaviors = [| Behavior.honest; Behavior.crash_at 0; Behavior.honest |] in
  let engine, sys, _ = paxos_setup ~behaviors () in
  submit_series (Paxos.submit sys) ~client:0 ~count:5;
  Engine.run ~until:horizon engine;
  Alcotest.(check int) "completed" 5 (Paxos.stats sys).Stats.completed

let test_paxos_leader_failover () =
  let behaviors = [| Behavior.crash_at 10; Behavior.honest; Behavior.honest |] in
  let engine, sys, _ = paxos_setup ~behaviors () in
  submit_series (Paxos.submit sys) ~client:0 ~count:5;
  Engine.run ~until:horizon engine;
  let s = Paxos.stats sys in
  Alcotest.(check int) "completed" 5 s.Stats.completed;
  Alcotest.(check bool) "term advanced" true (Paxos.term sys ~replica:1 >= 1);
  Alcotest.(check int64) "survivors agree" (Paxos.replica_state sys ~replica:1)
    (Paxos.replica_state sys ~replica:2)

let test_paxos_cheaper_than_pbft () =
  let run_paxos () =
    let engine, sys, _ = paxos_setup () in
    submit_series (Paxos.submit sys) ~client:0 ~count:10;
    Engine.run ~until:horizon engine;
    (Paxos.stats sys).Stats.completed
  in
  Alcotest.(check int) "paxos completes" 10 (run_paxos ())

let test_paxos_blind_to_byzantine_leader () =
  (* The crash-model client (quorum 1) accepts a corrupt leader's reply —
     the vulnerability BFT exists to close. *)
  let behaviors =
    [| Behavior.byzantine Behavior.Corrupt_execution; Behavior.honest; Behavior.honest |]
  in
  let engine, sys, _ = paxos_setup ~behaviors () in
  submit_series (Paxos.submit sys) ~client:0 ~count:3;
  Engine.run ~until:horizon engine;
  let s = Paxos.stats sys in
  Alcotest.(check int) "completed (wrongly!)" 3 s.Stats.completed;
  Alcotest.(check int) "corruption undetected by quorum" 0 s.Stats.wrong_replies

(* --- Primary-backup --- *)

let pb_setup ?(n_backups = 1) ?(n_clients = 1) ?behaviors () =
  let engine = Engine.create () in
  let config = { Primary_backup.default_config with n_backups; n_clients } in
  let n = Primary_backup.n_replicas config in
  let fabric = Transport.hub engine ~n:(n + n_clients) () in
  let sys = Primary_backup.start engine fabric config ?behaviors () in
  (engine, sys, n)

let test_pb_happy_path () =
  let engine, sys, _ = pb_setup () in
  submit_series (Primary_backup.submit sys) ~client:0 ~count:5;
  Engine.run ~until:horizon engine;
  let s = Primary_backup.stats sys in
  Alcotest.(check int) "completed" 5 s.Stats.completed;
  Alcotest.(check int64) "backup synced" (Primary_backup.replica_state sys ~replica:0)
    (Primary_backup.replica_state sys ~replica:1)

let test_pb_cheapest_messages () =
  (* Passive replication with one backup moves far fewer messages than any
     quorum protocol: 1 update per request (plus heartbeats). *)
  let engine = Engine.create () in
  let config = { Primary_backup.default_config with n_clients = 1 } in
  let fabric = Transport.hub engine ~n:3 () in
  let sys = Primary_backup.start engine fabric config () in
  submit_series (Primary_backup.submit sys) ~client:0 ~count:5;
  Engine.run ~until:20_000 engine;
  Alcotest.(check int) "completed" 5 (Primary_backup.stats sys).Stats.completed

let test_pb_failover () =
  let behaviors = [| Behavior.crash_at 5_000; Behavior.honest |] in
  let engine, sys, _ = pb_setup ~behaviors () in
  Engine.every engine ~period:2_000 (fun () ->
      if Engine.now engine <= 40_000 then Primary_backup.submit sys ~client:0 ~payload:1L);
  Engine.run ~until:horizon engine;
  let s = Primary_backup.stats sys in
  Alcotest.(check bool) "failover happened" true (s.Stats.view_changes >= 1);
  Alcotest.(check int) "backup took over" 1 (Primary_backup.current_primary sys);
  Alcotest.(check bool) "requests completed across failover" true (s.Stats.completed >= 15)

let test_pb_failover_window_visible () =
  (* Requests issued while the primary is dead but undetected are lost until
     retransmission: recovery is not seamless (the paper's point). *)
  let behaviors = [| Behavior.crash_at 5_000; Behavior.honest |] in
  let engine, sys, _ = pb_setup ~behaviors () in
  Engine.every engine ~period:1_000 (fun () ->
      if Engine.now engine <= 30_000 then Primary_backup.submit sys ~client:0 ~payload:1L);
  Engine.run ~until:horizon engine;
  let s = Primary_backup.stats sys in
  Alcotest.(check bool) "retransmissions during failover" true (s.Stats.retransmissions >= 1)

let () =
  Alcotest.run "resoc_repl"
    [
      ( "app",
        [
          Alcotest.test_case "accumulator" `Quick test_app_accumulator;
          Alcotest.test_case "register" `Quick test_app_register;
          Alcotest.test_case "corrupted" `Quick test_app_corrupted;
          Alcotest.test_case "kv basic" `Quick test_app_kv;
          Alcotest.test_case "kv codec roundtrip" `Quick test_app_kv_codec_roundtrip;
          Alcotest.test_case "kv order sensitive" `Quick test_app_kv_order_sensitive;
          Alcotest.test_case "kv malformed noop" `Quick test_app_kv_malformed_noop;
        ] );
      ( "transport",
        [
          Alcotest.test_case "delivery and latency" `Quick test_hub_delivery_and_latency;
          Alcotest.test_case "detach" `Quick test_hub_detach;
          Alcotest.test_case "counters" `Quick test_hub_counters;
        ] );
      ( "pbft",
        [
          Alcotest.test_case "happy path" `Quick test_pbft_happy_path;
          Alcotest.test_case "latency recorded" `Quick test_pbft_latency_recorded;
          Alcotest.test_case "crash backup tolerated" `Quick test_pbft_crash_backup_tolerated;
          Alcotest.test_case "crash primary view change" `Quick test_pbft_crash_primary_view_change;
          Alcotest.test_case "silent byzantine primary" `Quick test_pbft_silent_byzantine_primary;
          Alcotest.test_case "equivocating primary evicted" `Quick test_pbft_equivocating_primary_evicted;
          Alcotest.test_case "corrupt replies filtered" `Quick test_pbft_corrupt_replies_filtered;
          Alcotest.test_case "two faults stall f=1" `Quick test_pbft_two_faults_stall_f1;
          Alcotest.test_case "f=2 tolerates two" `Quick test_pbft_f2_tolerates_two;
          Alcotest.test_case "multiple clients" `Quick test_pbft_multiple_clients;
          Alcotest.test_case "exactly-once under retries" `Quick test_pbft_exactly_once_under_retries;
          Alcotest.test_case "offline/online cycle" `Quick test_pbft_offline_online_cycle;
          Alcotest.test_case "determinism" `Quick test_pbft_determinism;
        ] );
      ( "minbft",
        [
          Alcotest.test_case "happy path" `Quick test_minbft_happy_path;
          Alcotest.test_case "fewer messages than pbft" `Quick test_minbft_fewer_messages_than_pbft;
          Alcotest.test_case "crash backup tolerated" `Quick test_minbft_crash_backup_tolerated;
          Alcotest.test_case "crash primary view change" `Quick test_minbft_crash_primary_view_change;
          Alcotest.test_case "equivocation harmless" `Quick test_minbft_equivocation_harmless;
          Alcotest.test_case "plain usig seu stalls" `Quick test_minbft_plain_usig_seu_stalls_primary;
          Alcotest.test_case "secded usig survives seu" `Quick test_minbft_secded_usig_survives_seu;
          Alcotest.test_case "corrupt replies filtered" `Quick test_minbft_corrupt_replies_filtered;
          Alcotest.test_case "offline/online" `Quick test_minbft_offline_online;
          Alcotest.test_case "batching preserves semantics" `Quick
            test_minbft_batching_preserves_semantics;
          Alcotest.test_case "batching cuts certificates" `Quick test_minbft_batching_cuts_certificates;
          Alcotest.test_case "batching with primary crash" `Quick test_minbft_batching_with_primary_crash;
        ] );
      ( "paxos",
        [
          Alcotest.test_case "happy path" `Quick test_paxos_happy_path;
          Alcotest.test_case "crash follower" `Quick test_paxos_crash_follower;
          Alcotest.test_case "leader failover" `Quick test_paxos_leader_failover;
          Alcotest.test_case "completes workload" `Quick test_paxos_cheaper_than_pbft;
          Alcotest.test_case "blind to byzantine leader" `Quick test_paxos_blind_to_byzantine_leader;
        ] );
      ( "primary-backup",
        [
          Alcotest.test_case "happy path" `Quick test_pb_happy_path;
          Alcotest.test_case "low message cost" `Quick test_pb_cheapest_messages;
          Alcotest.test_case "failover" `Quick test_pb_failover;
          Alcotest.test_case "failover window visible" `Quick test_pb_failover_window_visible;
        ] );
      ( "batching",
        [
          Alcotest.test_case "pbft preserves semantics" `Quick
            test_pbft_batching_preserves_semantics;
          Alcotest.test_case "pbft cuts messages" `Quick test_pbft_batching_cuts_messages;
          Alcotest.test_case "pbft armed config identical" `Quick
            test_pbft_batching_armed_identical;
          Alcotest.test_case "pbft pipeline depth one" `Quick test_pbft_batching_depth_one;
          Alcotest.test_case "pbft with checkpointing" `Quick
            test_pbft_batching_with_checkpointing;
          Alcotest.test_case "paxos completes" `Quick test_paxos_batching_completes;
          Alcotest.test_case "paxos survives failover" `Quick
            test_paxos_batching_survives_failover;
          Alcotest.test_case "primary-backup completes" `Quick test_pb_batching_completes;
          Alcotest.test_case "primary-backup exactly once" `Quick
            test_pb_batching_exactly_once;
        ] );
    ]
