open Resoc_core
module Engine = Resoc_des.Engine
module Rng = Resoc_des.Rng
module Behavior = Resoc_fault.Behavior
module Rejuvenation = Resoc_resilience.Rejuvenation
module Diversity = Resoc_resilience.Diversity
module Stats = Resoc_repl.Stats
module Generator = Resoc_workload.Generator
module Scenario = Resoc_workload.Scenario

(* --- Soc --- *)

let test_soc_spread_placement () =
  let soc = Soc.create Soc.default_config in
  let placement = Soc.spread_placement soc ~n:5 in
  Alcotest.(check int) "count" 5 (Array.length placement);
  let distinct = List.sort_uniq compare (Array.to_list placement) in
  Alcotest.(check int) "distinct tiles" 5 (List.length distinct);
  Array.iter (fun tile -> Alcotest.(check bool) "in range" true (tile >= 0 && tile < 16)) placement

let test_soc_placement_too_big () =
  let soc = Soc.create Soc.default_config in
  Alcotest.check_raises "too many" (Invalid_argument "Soc.spread_placement: mesh too small")
    (fun () -> ignore (Soc.spread_placement soc ~n:17))

let test_soc_noc_fabric_roundtrip () =
  let soc = Soc.create Soc.default_config in
  let placement = Soc.spread_placement soc ~n:4 in
  let fabric = Soc.noc_fabric soc ~placement ~size_of:(fun _ -> 32) in
  let got = ref [] in
  fabric.Resoc_repl.Transport.set_handler 3 (fun ~src msg -> got := (src, msg) :: !got);
  fabric.Resoc_repl.Transport.send ~src:0 ~dst:3 "ping";
  Engine.run (Soc.engine soc);
  Alcotest.(check (list (pair int string))) "logical ids preserved" [ (0, "ping") ] !got;
  Alcotest.(check int) "noc counted it" 1 (Soc.noc_messages soc);
  Alcotest.(check int) "bytes counted" 32 (Soc.noc_bytes soc)

let test_soc_fabric_rejects_duplicate_placement () =
  let soc = Soc.create Soc.default_config in
  Alcotest.check_raises "duplicate" (Invalid_argument "Soc.noc_fabric: placement must be injective")
    (fun () -> ignore (Soc.noc_fabric soc ~placement:[| 1; 1 |] ~size_of:(fun _ -> 1)))

(* --- Group over hub and NoC --- *)

let run_group_burst kind =
  let engine = Engine.create () in
  let spec = { Group.default_spec with kind; n_clients = 1 } in
  let group = Group.build engine (Group.Hub { latency = 5 }) spec in
  Generator.burst ~n_per_client:5 ~n_clients:1 ~submit:group.Group.submit;
  Engine.run ~until:300_000 engine;
  (group.Group.stats ()).Stats.completed

let test_group_all_protocols_on_hub () =
  List.iter
    (fun kind -> Alcotest.(check int) "completed" 5 (run_group_burst kind))
    [ `Pbft; `Minbft; `A2m_bft; `Paxos; `Primary_backup ]

let test_group_replica_counts () =
  Alcotest.(check int) "pbft 3f+1" 7 (Group.n_replicas_of { Group.default_spec with kind = `Pbft; f = 2 });
  Alcotest.(check int) "minbft 2f+1" 5 (Group.n_replicas_of { Group.default_spec with kind = `Minbft; f = 2 });
  Alcotest.(check int) "a2m-bft 2f+1" 5
    (Group.n_replicas_of { Group.default_spec with kind = `A2m_bft; f = 2 });
  Alcotest.(check int) "paxos 2f+1" 5 (Group.n_replicas_of { Group.default_spec with kind = `Paxos; f = 2 });
  Alcotest.(check int) "pb f+1" 3
    (Group.n_replicas_of { Group.default_spec with kind = `Primary_backup; f = 2 })

let test_group_minbft_on_noc () =
  let soc = Soc.create Soc.default_config in
  let spec = { Group.default_spec with kind = `Minbft; n_clients = 2 } in
  let group = Group.build (Soc.engine soc) (Group.On_soc soc) spec in
  Generator.burst ~n_per_client:4 ~n_clients:2 ~submit:group.Group.submit;
  Engine.run ~until:300_000 (Soc.engine soc);
  let s = group.Group.stats () in
  Alcotest.(check int) "completed over the mesh" 8 s.Stats.completed;
  Alcotest.(check bool) "noc carried traffic" true (Soc.noc_messages soc > 0);
  (* NoC latency > hub latency: mean above the hub-run baseline. *)
  Alcotest.(check bool) "latency positive" true
    (Resoc_des.Metrics.Histogram.mean s.Stats.latency > 0.0)

let test_group_pbft_on_noc_with_primary_crash () =
  let soc = Soc.create Soc.default_config in
  let spec = { Group.default_spec with kind = `Pbft; n_clients = 1 } in
  let behaviors = Array.make 4 Behavior.honest in
  behaviors.(0) <- Behavior.crash_at 10;
  let spec = { spec with behaviors = Some behaviors } in
  let group = Group.build (Soc.engine soc) (Group.On_soc soc) spec in
  Generator.burst ~n_per_client:3 ~n_clients:1 ~submit:group.Group.submit;
  Engine.run ~until:300_000 (Soc.engine soc);
  let s = group.Group.stats () in
  Alcotest.(check int) "survives over the mesh" 3 s.Stats.completed;
  Alcotest.(check bool) "view changed" true (s.Stats.view_changes >= 1)

(* --- Generator --- *)

let collect_submits () =
  let log = ref [] in
  let submit ~client ~payload = log := (client, payload) :: !log in
  (log, submit)

let test_generator_burst () =
  let log, submit = collect_submits () in
  Generator.burst ~n_per_client:3 ~n_clients:2 ~submit;
  Alcotest.(check int) "total" 6 (List.length !log)

let test_generator_periodic () =
  let engine = Engine.create () in
  let log, submit = collect_submits () in
  Generator.periodic engine ~period:100 ~until:450 ~n_clients:2 ~submit ();
  Engine.run ~until:1_000 engine;
  Alcotest.(check int) "4 ticks x 2 clients" 8 (List.length !log)

let test_generator_poisson_rate () =
  let engine = Engine.create () in
  let log, submit = collect_submits () in
  Generator.poisson engine (Rng.create 3L) ~mean_interarrival:100.0 ~until:100_000 ~n_clients:3 ~submit ();
  Engine.run ~until:100_000 engine;
  let n = List.length !log in
  Alcotest.(check bool) (Printf.sprintf "~1000 arrivals (%d)" n) true (n > 800 && n < 1200);
  List.iter (fun (c, _) -> Alcotest.(check bool) "client range" true (c >= 0 && c < 3)) !log

let test_generator_ramp_increases_load () =
  let engine = Engine.create () in
  let log, submit = collect_submits () in
  (* period 1000 -> 100 over 2 plateaus of 10k cycles *)
  Generator.ramp engine ~start_period:1_000 ~end_period:100 ~steps:2 ~step_length:10_000
    ~n_clients:1 ~submit;
  Engine.run engine;
  (* plateau 1: ~10 submissions; plateau 2: ~100 *)
  let n = List.length !log in
  Alcotest.(check bool) (Printf.sprintf "ramp total (%d)" n) true (n > 90 && n < 130)

(* --- Resilient_system --- *)

let quiet_config () =
  {
    Resilient_system.default_config with
    group = { Group.default_spec with n_clients = 1 };
    apt = None;
    rejuvenation = None;
  }

let test_rs_baseline_run () =
  let sys = Resilient_system.create (quiet_config ()) in
  let report = Resilient_system.run sys ~horizon:100_000 ~workload_period:2_000 in
  Alcotest.(check bool) "requests flowed" true (report.Resilient_system.completed > 30);
  Alcotest.(check (float 0.01)) "fully available" 1.0 report.Resilient_system.availability;
  Alcotest.(check int) "no compromises" 0 report.Resilient_system.compromises;
  Alcotest.(check bool) "safety held" true (report.Resilient_system.failed_at = None)

let test_rs_run_once_only () =
  let sys = Resilient_system.create (quiet_config ()) in
  ignore (Resilient_system.run sys ~horizon:10_000 ~workload_period:2_000);
  Alcotest.check_raises "second run rejected" (Invalid_argument "Resilient_system.run: already ran")
    (fun () -> ignore (Resilient_system.run sys ~horizon:10_000 ~workload_period:2_000))

let aggressive_apt =
  {
    Resilient_system.mean_exploit_cycles = 30_000.0;
    exposure = 5_000;
    backdoor_delay = 50_000;
    detection_prob = 0.0;
    detection_delay = 1_000;
  }

let test_rs_apt_without_rejuvenation_falls () =
  let config =
    {
      (quiet_config ()) with
      Resilient_system.apt = Some aggressive_apt;
      n_variants = 2;
      shared_vuln_prob = 0.0;
      diversity = Diversity.Round_robin;
    }
  in
  let sys = Resilient_system.create config in
  let report = Resilient_system.run sys ~horizon:1_000_000 ~workload_period:5_000 in
  Alcotest.(check bool) "eventually more than f compromised" true
    (report.Resilient_system.failed_at <> None);
  Alcotest.(check bool) "compromises recorded" true (report.Resilient_system.compromises >= 2)

let test_rs_diverse_rejuvenation_survives_longer () =
  let base =
    {
      (quiet_config ()) with
      Resilient_system.apt = Some aggressive_apt;
      n_variants = 8;
      shared_vuln_prob = 0.0;
    }
  in
  let run ~rejuvenation ~diversity =
    let sys = Resilient_system.create { base with Resilient_system.rejuvenation; diversity } in
    let report = Resilient_system.run sys ~horizon:600_000 ~workload_period:5_000 in
    (match report.Resilient_system.failed_at with Some t -> t | None -> 600_000)
  in
  let bare = run ~rejuvenation:None ~diversity:Diversity.Same in
  let defended =
    run
      ~rejuvenation:(Some { Rejuvenation.period = 8_000; downtime = 500 })
      ~diversity:Diversity.Max_diversity
  in
  Alcotest.(check bool)
    (Printf.sprintf "diverse rejuvenation survives longer (%d vs %d)" defended bare)
    true (defended > bare)

let test_rs_trojan_relocation_escapes () =
  (* A backdoor sits under the first replica's region. Without relocation it
     is compromised via the backdoor; with relocating rejuvenation it moves
     away before the backdoor matures. *)
  let base =
    {
      (quiet_config ()) with
      Resilient_system.apt =
        Some
          {
            Resilient_system.mean_exploit_cycles = 1.0e12;
            exposure = 10_000;
            backdoor_delay = 60_000;
            detection_prob = 0.0;
            detection_delay = 1_000;
          };
      trojaned_frames = [ (0, 0) ];
      rejuvenation = Some { Rejuvenation.period = 12_000; downtime = 500 };
    }
  in
  let run relocate =
    let sys = Resilient_system.create { base with Resilient_system.relocate_on_rejuvenation = relocate } in
    let report = Resilient_system.run sys ~horizon:300_000 ~workload_period:5_000 in
    report.Resilient_system.compromises
  in
  let without = run false in
  let with_relocation = run true in
  Alcotest.(check bool) "backdoor fires without relocation" true (without >= 1);
  Alcotest.(check int) "relocation escapes the backdoor" 0 with_relocation

let test_rs_determinism () =
  let run () =
    let config =
      { (quiet_config ()) with Resilient_system.apt = Some aggressive_apt; n_variants = 3 }
    in
    let sys = Resilient_system.create config in
    let r = Resilient_system.run sys ~horizon:200_000 ~workload_period:3_000 in
    (r.Resilient_system.completed, r.Resilient_system.compromises, r.Resilient_system.failed_at)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical reports" true (a = b)

let test_rs_variant_tracking () =
  let config =
    {
      (quiet_config ()) with
      Resilient_system.n_variants = 4;
      diversity = Diversity.Max_diversity;
      rejuvenation = Some { Rejuvenation.period = 10_000; downtime = 500 };
    }
  in
  let sys = Resilient_system.create config in
  let v0_before = Resilient_system.variant_of sys ~replica:0 in
  ignore (Resilient_system.run sys ~horizon:50_000 ~workload_period:5_000);
  (* Replica 0 was rejuvenated (period 10k over 50k): max-diversity moves it
     to a fresh variant. *)
  Alcotest.(check bool) "variant changed" true
    (Resilient_system.variant_of sys ~replica:0 <> v0_before)

(* --- Protocol_switch --- *)

let test_switch_basic () =
  let engine = Engine.create () in
  let spec = { Group.default_spec with kind = `Minbft; n_clients = 1 } in
  let sw = Protocol_switch.create engine (Group.Hub { latency = 5 }) spec in
  Alcotest.(check int) "epoch 0" 0 (Protocol_switch.epoch sw);
  Alcotest.(check string) "starts on minbft" "minbft" (Protocol_switch.group sw).Group.protocol;
  for i = 1 to 5 do
    Protocol_switch.submit sw ~client:0 ~payload:(Int64.of_int i)
  done;
  Engine.run ~until:100_000 engine;
  Alcotest.(check int) "first epoch served" 5 (Protocol_switch.total_completed sw)

let test_switch_carries_state_and_counts_drops () =
  let engine = Engine.create () in
  let spec = { Group.default_spec with kind = `Minbft; n_clients = 1 } in
  let sw = Protocol_switch.create engine (Group.Hub { latency = 5 }) spec in
  for i = 1 to 4 do
    Protocol_switch.submit sw ~client:0 ~payload:(Int64.of_int i)
  done;
  Engine.run ~until:50_000 engine;
  let state_before = (Protocol_switch.group sw).Group.replica_state ~replica:0 in
  Alcotest.(check int64) "epoch-0 state" 10L state_before;
  (* Switch to PBFT with 5k downtime; submissions during the hole drop. *)
  Protocol_switch.switch sw { spec with Group.kind = `Pbft } ~downtime:5_000;
  Alcotest.(check bool) "switching" true (Protocol_switch.switching sw);
  Protocol_switch.submit sw ~client:0 ~payload:99L;
  Engine.run ~until:60_000 engine;
  Alcotest.(check int) "dropped during hole" 1 (Protocol_switch.dropped_during_switch sw);
  Alcotest.(check int) "epoch advanced" 1 (Protocol_switch.epoch sw);
  let group = Protocol_switch.group sw in
  Alcotest.(check string) "now pbft" "pbft" group.Group.protocol;
  Alcotest.(check int64) "state carried" 10L (group.Group.replica_state ~replica:0);
  (* New epoch keeps executing on top of the carried state. *)
  for _ = 1 to 3 do
    Protocol_switch.submit sw ~client:0 ~payload:5L
  done;
  Engine.run ~until:200_000 engine;
  Alcotest.(check int64) "continues from carried state" 25L (group.Group.replica_state ~replica:0);
  Alcotest.(check int) "total across epochs" 7 (Protocol_switch.total_completed sw)

let test_switch_rejects_concurrent () =
  let engine = Engine.create () in
  let spec = { Group.default_spec with n_clients = 1 } in
  let sw = Protocol_switch.create engine (Group.Hub { latency = 5 }) spec in
  Protocol_switch.switch sw spec ~downtime:1_000;
  Alcotest.check_raises "no concurrent switch"
    (Invalid_argument "Protocol_switch.switch: already switching") (fun () ->
      Protocol_switch.switch sw spec ~downtime:1_000)

let test_switch_twice_accumulates () =
  (* Two full switches: epoch and total_completed must accumulate across
     all three incarnations, and submissions dropped in either hole count. *)
  let engine = Engine.create () in
  let spec = { Group.default_spec with kind = `Minbft; n_clients = 1 } in
  let sw = Protocol_switch.create engine (Group.Hub { latency = 5 }) spec in
  let serve count =
    for i = 1 to count do
      Protocol_switch.submit sw ~client:0 ~payload:(Int64.of_int i)
    done;
    Engine.run engine
  in
  serve 3;
  Protocol_switch.switch sw { spec with Group.kind = `Pbft } ~downtime:2_000;
  Protocol_switch.submit sw ~client:0 ~payload:99L;
  Engine.run engine;
  serve 2;
  Protocol_switch.switch sw { spec with Group.kind = `Paxos } ~downtime:2_000;
  Protocol_switch.submit sw ~client:0 ~payload:99L;
  Engine.run engine;
  serve 4;
  Alcotest.(check int) "epoch 2 after two switches" 2 (Protocol_switch.epoch sw);
  Alcotest.(check string) "final protocol" "paxos" (Protocol_switch.group sw).Group.protocol;
  Alcotest.(check int) "drops from both holes" 2 (Protocol_switch.dropped_during_switch sw);
  Alcotest.(check int) "total across three epochs" 9 (Protocol_switch.total_completed sw)

let test_switch_across_batching_configs () =
  (* Epochs may disagree about batching: an unbatched epoch hands its state
     to a batched one and back. State carry and the completed count must be
     oblivious to the batching mode on either side of the switch. *)
  let engine = Engine.create () in
  let batching =
    Some { Resoc_repl.Types.window_cycles = 50; max_batch = 4; pipeline_depth = 2 }
  in
  let plain = { Group.default_spec with kind = `Minbft; n_clients = 2 } in
  let sw = Protocol_switch.create engine (Group.Hub { latency = 5 }) plain in
  let serve count =
    for i = 1 to count do
      Protocol_switch.submit sw ~client:(i mod 2) ~payload:1L
    done;
    Engine.run engine
  in
  serve 4;
  let state_before = (Protocol_switch.group sw).Group.replica_state ~replica:0 in
  Protocol_switch.switch sw { plain with Group.kind = `Pbft; batching } ~downtime:2_000;
  Engine.run engine;
  Alcotest.(check int64) "state carried into batched epoch" state_before
    ((Protocol_switch.group sw).Group.replica_state ~replica:0);
  serve 6;
  Protocol_switch.switch sw plain ~downtime:2_000;
  Engine.run engine;
  serve 2;
  Alcotest.(check int) "epoch 2" 2 (Protocol_switch.epoch sw);
  Alcotest.(check int) "all served across modes" 12 (Protocol_switch.total_completed sw);
  Alcotest.(check int64) "state reflects every epoch's executions" 12L
    ((Protocol_switch.group sw).Group.replica_state ~replica:0)

(* --- Scenarios --- *)

let test_scenarios_build_and_run () =
  List.iter
    (fun scenario ->
      let sys = Resilient_system.create scenario.Scenario.config in
      let horizon = min scenario.Scenario.horizon 150_000 in
      let report =
        Resilient_system.run sys ~horizon ~workload_period:scenario.Scenario.workload_period
      in
      Alcotest.(check bool)
        (scenario.Scenario.name ^ " makes progress")
        true
        (report.Resilient_system.completed > 0))
    (Scenario.all ())

let test_scenario_automotive_rides_through_crash () =
  let scenario = Scenario.automotive_brake_by_wire () in
  let sys = Resilient_system.create scenario.Scenario.config in
  let report =
    Resilient_system.run sys ~horizon:scenario.Scenario.horizon
      ~workload_period:scenario.Scenario.workload_period
  in
  Alcotest.(check bool) "high availability despite ECU loss" true
    (report.Resilient_system.availability > 0.95);
  Alcotest.(check bool) "safety held" true (report.Resilient_system.failed_at = None)

let () =
  Alcotest.run "resoc_core"
    [
      ( "soc",
        [
          Alcotest.test_case "spread placement" `Quick test_soc_spread_placement;
          Alcotest.test_case "placement too big" `Quick test_soc_placement_too_big;
          Alcotest.test_case "noc fabric roundtrip" `Quick test_soc_noc_fabric_roundtrip;
          Alcotest.test_case "rejects duplicate placement" `Quick test_soc_fabric_rejects_duplicate_placement;
        ] );
      ( "group",
        [
          Alcotest.test_case "all protocols on hub" `Quick test_group_all_protocols_on_hub;
          Alcotest.test_case "replica counts" `Quick test_group_replica_counts;
          Alcotest.test_case "minbft on noc" `Quick test_group_minbft_on_noc;
          Alcotest.test_case "pbft on noc, primary crash" `Quick test_group_pbft_on_noc_with_primary_crash;
        ] );
      ( "generator",
        [
          Alcotest.test_case "burst" `Quick test_generator_burst;
          Alcotest.test_case "periodic" `Quick test_generator_periodic;
          Alcotest.test_case "poisson rate" `Slow test_generator_poisson_rate;
          Alcotest.test_case "ramp" `Quick test_generator_ramp_increases_load;
        ] );
      ( "resilient-system",
        [
          Alcotest.test_case "baseline run" `Quick test_rs_baseline_run;
          Alcotest.test_case "run once only" `Quick test_rs_run_once_only;
          Alcotest.test_case "apt without rejuvenation falls" `Quick test_rs_apt_without_rejuvenation_falls;
          Alcotest.test_case "diverse rejuvenation survives longer" `Quick
            test_rs_diverse_rejuvenation_survives_longer;
          Alcotest.test_case "trojan relocation escapes" `Quick test_rs_trojan_relocation_escapes;
          Alcotest.test_case "determinism" `Quick test_rs_determinism;
          Alcotest.test_case "variant tracking" `Quick test_rs_variant_tracking;
        ] );
      ( "protocol-switch",
        [
          Alcotest.test_case "basic" `Quick test_switch_basic;
          Alcotest.test_case "carries state, counts drops" `Quick
            test_switch_carries_state_and_counts_drops;
          Alcotest.test_case "rejects concurrent" `Quick test_switch_rejects_concurrent;
          Alcotest.test_case "two switches accumulate" `Quick test_switch_twice_accumulates;
          Alcotest.test_case "batching differs across epochs" `Quick
            test_switch_across_batching_configs;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "all build and run" `Slow test_scenarios_build_and_run;
          Alcotest.test_case "automotive rides through crash" `Quick
            test_scenario_automotive_rides_through_crash;
        ] );
    ]
