(* Tests for the resoc_check layer: ddmin minimization, injection-log mask
   semantics, FAIL_*.json round-trips, the invariant checkers themselves,
   mutation self-tests proving the checkers catch deliberately broken
   protocols (and pass the unbroken ones), checker transparency (enabling it
   never changes a run), and the end-to-end campaign auto-shrink path. *)

module Check = Resoc_check.Check
module Inject = Resoc_check.Inject
module Shrink = Resoc_check.Shrink
module Replay = Resoc_check.Replay
module Engine = Resoc_des.Engine
module Rng = Resoc_des.Rng
module Register = Resoc_hw.Register
module Seu = Resoc_fault.Seu
module Transport = Resoc_repl.Transport
module Quorum = Resoc_repl.Quorum
module Pbft = Resoc_repl.Pbft
module Minbft = Resoc_repl.Minbft
module Stats = Resoc_repl.Stats
module Usig = Resoc_hybrid.Usig
module Batcher = Resoc_repl.Batcher
module Campaign = Resoc_campaign.Campaign
module Emit = Resoc_campaign.Emit

(* Gates are global; every test that touches them restores the disabled
   state so suites cannot contaminate one another. *)
let with_check f =
  Fun.protect
    ~finally:(fun () ->
      Check.disable ();
      Inject.stop ();
      Check.begin_replicate ();
      Inject.begin_replicate ())
    (fun () ->
      Check.enable ();
      Inject.record ();
      Check.begin_replicate ();
      Inject.begin_replicate ();
      f ())

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* --- ddmin -------------------------------------------------------------- *)

let test_ddmin_pair () =
  let tests = ref 0 in
  let test keep =
    incr tests;
    List.mem 3 keep && List.mem 7 keep
  in
  let keep = List.sort compare (Shrink.ddmin ~test 12) in
  Alcotest.(check (list int)) "exact minimal pair" [ 3; 7 ] keep;
  Alcotest.(check bool) "bounded work" true (!tests <= 512)

let test_ddmin_empty_failing () =
  Alcotest.(check (list int)) "vacuous failure needs no events" []
    (Shrink.ddmin ~test:(fun _ -> true) 10)

let test_ddmin_single () =
  Alcotest.(check (list int)) "single culprit" [ 5 ]
    (List.sort compare (Shrink.ddmin ~test:(fun keep -> List.mem 5 keep) 9))

let test_ddmin_result_fails () =
  (* Whatever ddmin returns must itself be a failing schedule, even for
     awkward predicates and tiny budgets. *)
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:50 ~name:"ddmin result still fails"
       QCheck.(pair (int_range 1 20) (list_of_size Gen.(1 -- 4) (int_bound 19)))
       (fun (n, culprits) ->
         let culprits = List.filter (fun c -> c < n) culprits in
         QCheck.assume (culprits <> []);
         let test keep = List.for_all (fun c -> List.mem c keep) culprits in
         let keep = Shrink.ddmin ~max_tests:64 ~test n in
         test keep))

(* --- injection log ------------------------------------------------------ *)

let test_inject_mask () =
  with_check (fun () ->
      let permit i = Inject.permit ~kind:Inject.Seu ~time:(10 * i) ~a:i ~b:0 in
      let granted = List.init 5 permit in
      Alcotest.(check (list bool)) "no mask grants all" [ true; true; true; true; true ] granted;
      Alcotest.(check int) "five occurrences logged" 5 (Inject.count ());
      Inject.begin_replicate ();
      Inject.set_mask ~total:5 [ 1; 3 ];
      let granted = List.init 7 permit in
      Alcotest.(check (list bool))
        "mask keeps listed indices, suppresses the rest and any overflow"
        [ false; true; false; true; false; false; false ]
        granted;
      Alcotest.(check int) "suppressed occurrences still logged" 7 (Inject.count ());
      Inject.begin_replicate ();
      Alcotest.(check int) "begin_replicate drops the log" 0 (Inject.count ());
      Alcotest.(check bool) "and the mask" true (permit 0))

let test_inject_inactive () =
  Alcotest.(check bool) "inactive permit grants" true
    (Inject.permit ~kind:Inject.Trojan ~time:0 ~a:0 ~b:0);
  Alcotest.(check int) "and logs nothing" 0 (Inject.count ())

(* --- FAIL json round-trip ----------------------------------------------- *)

let sample_record =
  {
    Replay.experiment = "e6";
    cell = "reactive/\"max\"";
    seed = -3L;
    error = "invariant violation: agreement at (0,3)\nbacktrace";
    total_events = 41;
    keep = [ 2; 17 ];
    events =
      [
        { Replay.kind = Inject.Seu; time = 120; a = 3; b = 17; kept = true };
        { Replay.kind = Inject.Apt; time = 999; a = 1; b = 0; kept = false };
        { Replay.kind = Inject.Trojan; time = 1000; a = 2; b = 0; kept = true };
      ];
  }

let test_replay_roundtrip () =
  let rt = Replay.of_json (Replay.to_json sample_record) in
  Alcotest.(check bool) "round-trips" true (rt = sample_record);
  Alcotest.(check string) "filename" "FAIL_e6_-3.json" (Replay.filename sample_record)

let test_replay_write_read () =
  let dir = Filename.temp_file "resoc_check" "" in
  Sys.remove dir;
  let path = Replay.write ~dir sample_record in
  Alcotest.(check bool) "file lands under dir" true (Filename.dirname path = dir);
  Alcotest.(check bool) "read back equal" true (Replay.read path = sample_record)

(* --- invariant units ---------------------------------------------------- *)

let violates f =
  match f () with () -> false | exception Check.Violation _ -> true

let test_agreement () =
  with_check (fun () ->
      let s = Check.new_session ~protocol:"unit" in
      let commit ~replica ~view ~seq ~digest =
        Check.commit ~session:s ~replica ~view ~seq ~digest ~signers:3 ~quorum:3 ~faulty:false
      in
      commit ~replica:0 ~view:0 ~seq:1 ~digest:11L;
      commit ~replica:1 ~view:0 ~seq:1 ~digest:11L;
      commit ~replica:0 ~view:1 ~seq:1 ~digest:22L;
      Alcotest.(check bool) "same slot, different digest" true
        (violates (fun () -> commit ~replica:2 ~view:0 ~seq:1 ~digest:22L));
      Alcotest.(check bool) "faulty replicas may lie" false
        (violates (fun () ->
             Check.commit ~session:s ~replica:3 ~view:0 ~seq:1 ~digest:33L ~signers:3 ~quorum:3
               ~faulty:true)))

let test_quorum_certificate () =
  with_check (fun () ->
      let s = Check.new_session ~protocol:"unit" in
      Alcotest.(check bool) "thin certificate" true
        (violates (fun () ->
             Check.commit ~session:s ~replica:0 ~view:0 ~seq:1 ~digest:1L ~signers:2 ~quorum:3
               ~faulty:false));
      Alcotest.(check bool) "certificate-free protocols skip the check" false
        (violates (fun () ->
             Check.commit ~session:s ~replica:0 ~view:0 ~seq:2 ~digest:1L ~signers:(-1) ~quorum:3
               ~faulty:false)))

let test_counter_issuance () =
  with_check (fun () ->
      let h = Check.new_hybrid ~name:"usig" in
      Check.counter_issued ~hybrid:h ~read:0L ~issued:1L ~digest:10L;
      Check.counter_issued ~hybrid:h ~read:1L ~issued:2L ~digest:20L;
      Alcotest.(check bool) "re-issue to a different digest is equivocation" true
        (violates (fun () -> Check.counter_issued ~hybrid:h ~read:2L ~issued:2L ~digest:30L));
      let h = Check.new_hybrid ~name:"usig" in
      Check.counter_issued ~hybrid:h ~read:0L ~issued:1L ~digest:10L;
      Alcotest.(check bool) "regression" true
        (violates (fun () -> Check.counter_issued ~hybrid:h ~read:1L ~issued:0L ~digest:40L));
      (* An SEU that corrupts the register shows up as a readback that differs
         from the last issued value; the tracker resyncs instead of firing. *)
      let h = Check.new_hybrid ~name:"usig" in
      Check.counter_issued ~hybrid:h ~read:0L ~issued:1L ~digest:10L;
      Alcotest.(check bool) "perturbed readback forgiven" false
        (violates (fun () -> Check.counter_issued ~hybrid:h ~read:9L ~issued:10L ~digest:50L)))

let test_a2m_and_noc () =
  with_check (fun () ->
      let h = Check.new_hybrid ~name:"a2m" in
      Check.a2m_append ~hybrid:h ~seq:1L ~digest:1L;
      Check.a2m_append ~hybrid:h ~seq:2L ~digest:2L;
      Alcotest.(check bool) "a2m gap" true
        (violates (fun () -> Check.a2m_append ~hybrid:h ~seq:4L ~digest:4L));
      let n = Check.new_network () in
      Check.flit_injected ~net:n;
      Check.flit_delivered ~net:n;
      Alcotest.(check bool) "phantom delivery" true
        (violates (fun () -> Check.flit_dropped ~net:n)))

(* --- mutation self-tests ------------------------------------------------ *)

let run_pbft () =
  let engine = Engine.create () in
  let config = { Pbft.default_config with f = 1; n_clients = 1 } in
  let fabric = Transport.hub engine ~n:(Pbft.n_replicas config + 1) () in
  let sys = Pbft.start engine fabric config () in
  for i = 1 to 4 do
    Pbft.submit sys ~client:0 ~payload:(Int64.of_int i)
  done;
  Engine.run ~until:200_000 engine;
  (Pbft.stats sys).Stats.completed

let run_minbft ~seed ~count =
  let engine = Engine.create ~seed () in
  let config = { Minbft.default_config with n_clients = 1 } in
  let n = Minbft.n_replicas config in
  let fabric = Transport.hub engine ~n:(n + 1) () in
  let sys = Minbft.start engine fabric config () in
  for i = 1 to count do
    Minbft.submit sys ~client:0 ~payload:(Int64.of_int i)
  done;
  Engine.run ~until:200_000 engine;
  (engine, sys, n)

let test_mutant_broken_quorum () =
  with_check (fun () ->
      Alcotest.(check bool) "unmutated pbft passes" true (run_pbft () = 4);
      Alcotest.(check bool) "checker observed traffic" true (Check.hooks_fired () > 0);
      Check.begin_replicate ();
      Fun.protect
        ~finally:(fun () -> Quorum.test_quorum_slack := 0)
        (fun () ->
          (* Accept f+1 commit votes where 2f+1 are required. *)
          Quorum.test_quorum_slack := 1;
          match run_pbft () with
          | _ -> Alcotest.fail "broken quorum not flagged"
          | exception Check.Violation msg ->
            Alcotest.(check bool) "names the quorum invariant" true (contains ~sub:"quorum" msg)))

let test_mutant_usig_reissue () =
  with_check (fun () ->
      let _, sys, _ = run_minbft ~seed:7L ~count:4 in
      Alcotest.(check int) "unmutated minbft passes" 4 (Minbft.stats sys).Stats.completed;
      Alcotest.(check bool) "checker observed traffic" true (Check.hooks_fired () > 0);
      Check.begin_replicate ();
      Fun.protect
        ~finally:(fun () -> Usig.test_reissue := false)
        (fun () ->
          Usig.test_reissue := true;
          match run_minbft ~seed:7L ~count:4 with
          | _ -> Alcotest.fail "usig counter re-issue not flagged"
          | exception Check.Violation msg ->
            Alcotest.(check bool) "names the counter invariant" true
              (contains ~sub:"counter" msg)))

let run_pbft_batched () =
  let engine = Engine.create () in
  let batching =
    Some { Resoc_repl.Types.window_cycles = 50; max_batch = 4; pipeline_depth = 2 }
  in
  let config = { Pbft.default_config with f = 1; n_clients = 4; batching } in
  let fabric = Transport.hub engine ~n:(Pbft.n_replicas config + 4) () in
  let sys = Pbft.start engine fabric config () in
  for c = 0 to 3 do
    for i = 1 to 3 do
      Pbft.submit sys ~client:c ~payload:(Int64.of_int ((c * 10) + i))
    done
  done;
  Engine.run ~until:200_000 engine;
  (Pbft.stats sys).Stats.completed

let test_mutant_batch_duplicate () =
  with_check (fun () ->
      Alcotest.(check int) "unmutated batched pbft passes" 12 (run_pbft_batched ());
      Alcotest.(check bool) "checker observed traffic" true (Check.hooks_fired () > 0);
      Check.begin_replicate ();
      Fun.protect
        ~finally:(fun () -> Batcher.test_duplicate_first := false)
        (fun () ->
          (* Re-inject the first request of every sealed batch into the
             next one: the same request is agreed in two instances. *)
          Batcher.test_duplicate_first := true;
          match run_pbft_batched () with
          | _ -> Alcotest.fail "duplicated batch entry not flagged"
          | exception Check.Violation msg ->
            Alcotest.(check bool) "names batch atomicity" true
              (contains ~sub:"batch atomicity" msg)))

(* --- transparency ------------------------------------------------------- *)

let minbft_fingerprint ~seed ~count =
  let engine, sys, n = run_minbft ~seed ~count in
  ( (Minbft.stats sys).Stats.completed,
    Engine.events_processed engine,
    List.init n (fun r -> Minbft.replica_state sys ~replica:r) )

let prop_checking_is_transparent =
  QCheck.Test.make ~name:"enabling the checker never changes a MinBFT run" ~count:20
    QCheck.(pair (int_bound 1000) (int_range 1 6))
    (fun (seed, count) ->
      let seed = Int64.of_int (seed + 1) in
      let base = minbft_fingerprint ~seed ~count in
      let checked = with_check (fun () -> minbft_fingerprint ~seed ~count) in
      base = checked)

let minbft_cell =
  Campaign.cell "minbft" (fun ~seed ->
      let _, sys, _ = run_minbft ~seed ~count:3 in
      [ ("completed", float_of_int (Minbft.stats sys).Stats.completed) ])

let campaign_json ~check =
  let dir = Filename.temp_file "resoc_check" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let config = { Campaign.default_config with replicates = 6; jobs = 2; check } in
  let result = Campaign.run ~config ~id:"chk" ~title:"transparency" [ minbft_cell ] in
  let path = Emit.json_file ~dir result in
  In_channel.with_open_bin path In_channel.input_all

let test_bench_json_transparent () =
  let base = campaign_json ~check:false in
  let checked = with_check (fun () -> campaign_json ~check:true) in
  Alcotest.(check string) "BENCH json byte-identical, checker on vs off" base checked

(* --- end-to-end campaign shrink ----------------------------------------- *)

(* A replicate whose only failure mode is SEU corruption of register 0: any
   single surviving upset on it reproduces, so ddmin must land on one event. *)
let seu_cell =
  Campaign.cell "seu" (fun ~seed ->
      let engine = Engine.create () in
      let rng = Rng.create seed in
      let regs = Array.init 8 (fun _ -> Register.create Register.Plain 0L) in
      let seu = Seu.start engine rng ~rate_per_bit_cycle:1e-5 regs in
      Engine.run ~until:20_000 engine;
      Seu.halt seu;
      (match Register.read regs.(0) with
      | 0L, _ -> ()
      | _ -> failwith "register 0 corrupted");
      [ ("injected", float_of_int (Seu.injected seu)) ])

let test_campaign_shrink () =
  with_check (fun () ->
      let dir = Filename.temp_file "resoc_check" "" in
      Sys.remove dir;
      let config =
        {
          Campaign.default_config with
          replicates = 4;
          jobs = 2;
          check = true;
          shrink = true;
          fail_dir = Some dir;
        }
      in
      let result = Campaign.run ~config ~id:"shrinke2e" ~title:"shrink e2e" [ seu_cell ] in
      let failures =
        List.fold_left (fun acc agg -> acc + Campaign.failures agg) 0 result.Campaign.cells
      in
      Alcotest.(check bool) "some replicate hit register 0" true (failures > 0);
      let fails =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> String.length f > 5 && String.sub f 0 5 = "FAIL_")
      in
      Alcotest.(check int) "one FAIL file per failed replicate" failures (List.length fails);
      let rt = Replay.read (Filename.concat dir (List.hd fails)) in
      Alcotest.(check string) "experiment recorded" "shrinke2e" rt.Replay.experiment;
      Alcotest.(check bool) "shrunk to <= 3 events" true (List.length rt.Replay.keep <= 3);
      Alcotest.(check bool) "schedule shrank" true
        (List.length rt.Replay.keep < rt.Replay.total_events);
      (* The minimal schedule reproduces under its mask. *)
      Check.begin_replicate ();
      Inject.begin_replicate ();
      Inject.set_mask ~total:rt.Replay.total_events rt.Replay.keep;
      let reproduced =
        match seu_cell.Campaign.run ~seed:rt.Replay.seed with
        | _ -> false
        | exception _ -> true
      in
      Alcotest.(check bool) "masked replay reproduces" true reproduced)

(* The broken-quorum mutant through the full campaign path: every replicate
   is flagged, and since no injection events are involved the schedule
   shrinks to the empty repro log. *)
let test_campaign_shrink_quorum_mutant () =
  with_check (fun () ->
      let cell =
        Campaign.cell "broken-quorum" (fun ~seed ->
            ignore seed;
            Quorum.test_quorum_slack := 1;
            Fun.protect
              ~finally:(fun () -> Quorum.test_quorum_slack := 0)
              (fun () ->
                ignore (run_pbft ());
                [ ("ok", 1.0) ]))
      in
      let dir = Filename.temp_file "resoc_check" "" in
      Sys.remove dir;
      let config =
        {
          Campaign.default_config with
          replicates = 2;
          check = true;
          shrink = true;
          fail_dir = Some dir;
        }
      in
      let result = Campaign.run ~config ~id:"quorumx" ~title:"quorum mutant" [ cell ] in
      let failures =
        List.fold_left (fun acc agg -> acc + Campaign.failures agg) 0 result.Campaign.cells
      in
      Alcotest.(check int) "every replicate flagged" 2 failures;
      let fails = Sys.readdir dir |> Array.to_list in
      Alcotest.(check int) "FAIL file per replicate" 2 (List.length fails);
      let rt = Replay.read (Filename.concat dir (List.hd fails)) in
      Alcotest.(check bool) "error names quorum" true (contains ~sub:"quorum" rt.Replay.error);
      Alcotest.(check bool) "<= 3-event repro" true (List.length rt.Replay.keep <= 3))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "resoc_check"
    [
      ( "ddmin",
        [
          Alcotest.test_case "minimal pair" `Quick test_ddmin_pair;
          Alcotest.test_case "empty failing" `Quick test_ddmin_empty_failing;
          Alcotest.test_case "single culprit" `Quick test_ddmin_single;
          Alcotest.test_case "result always fails" `Quick test_ddmin_result_fails;
        ] );
      ( "inject",
        [
          Alcotest.test_case "mask semantics" `Quick test_inject_mask;
          Alcotest.test_case "inactive is free" `Quick test_inject_inactive;
        ] );
      ( "replay",
        [
          Alcotest.test_case "json round-trip" `Quick test_replay_roundtrip;
          Alcotest.test_case "write/read" `Quick test_replay_write_read;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "agreement" `Quick test_agreement;
          Alcotest.test_case "quorum certificates" `Quick test_quorum_certificate;
          Alcotest.test_case "counter issuance" `Quick test_counter_issuance;
          Alcotest.test_case "a2m and noc" `Quick test_a2m_and_noc;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "broken quorum flagged" `Quick test_mutant_broken_quorum;
          Alcotest.test_case "usig re-issue flagged" `Quick test_mutant_usig_reissue;
          Alcotest.test_case "batch duplicate flagged" `Quick test_mutant_batch_duplicate;
        ] );
      ( "transparency",
        [ Alcotest.test_case "BENCH json identical" `Quick test_bench_json_transparent ] );
      qsuite "transparency-prop" [ prop_checking_is_transparent ];
      ( "shrink-e2e",
        [
          Alcotest.test_case "campaign auto-shrink" `Quick test_campaign_shrink;
          Alcotest.test_case "quorum mutant shrunk" `Quick test_campaign_shrink_quorum_mutant;
        ] );
    ]
