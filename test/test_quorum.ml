(* Model equivalence for the dense replication structures.

   Quorum bitsets, view-change rounds, the open-addressed digest map and
   the slot-ring log all replace Hashtbl-backed structures on the
   replication hot path; each is checked here against the Hashtbl
   reference model it displaced, under arbitrary operation sequences
   including duplicate votes and the 2f+1 threshold crossing. *)

open Resoc_repl

(* --- Quorum bitset vs Hashtbl-of-voters ------------------------------- *)

let voter_gen = QCheck.Gen.int_bound (Quorum.max_voters - 1)

let prop_quorum_model =
  QCheck.Test.make ~name:"quorum bitset = Hashtbl voter set" ~count:300
    QCheck.(make ~print:Print.(list int) Gen.(list_size (int_bound 120) voter_gen))
    (fun voters ->
      let model = Hashtbl.create 16 in
      let q = ref Quorum.empty in
      List.for_all
        (fun voter ->
          q := Quorum.add !q voter;
          Hashtbl.replace model voter ();
          Quorum.mem !q voter
          && Quorum.count !q = Hashtbl.length model
          && List.for_all
               (fun v -> Quorum.mem !q v = Hashtbl.mem model v)
               [ 0; 7; 31; 62 ])
        voters)

let prop_threshold_crossing =
  QCheck.Test.make ~name:"2f+1 crossing matches model size" ~count:300
    QCheck.(
      make
        ~print:Print.(pair int (list int))
        Gen.(pair (int_range 0 20) (list_size (int_bound 150) voter_gen)))
    (fun (f, voters) ->
      let threshold = (2 * f) + 1 in
      let model = Hashtbl.create 16 in
      let q = ref Quorum.empty in
      List.for_all
        (fun voter ->
          let before = Quorum.reached !q ~threshold in
          q := Quorum.add !q voter;
          Hashtbl.replace model voter ();
          let after = Quorum.reached !q ~threshold in
          (* reached is monotone and agrees with the model's cardinality *)
          ((not before) || after)
          && after = (Hashtbl.length model >= threshold))
        voters)

(* --- Quorum.Rounds vs nested Hashtbl ---------------------------------- *)

(* With [current] pinned below every tallied view, no slot is ever
   stale, so Rounds must agree exactly with the nested-Hashtbl tally it
   replaces — including repeat votes updating the payload but not the
   count. *)
let prop_rounds_model =
  QCheck.Test.make ~name:"Rounds = (view -> voter -> value) Hashtbl" ~count:300
    QCheck.(
      make
        ~print:Print.(list (triple int int int))
        Gen.(
          list_size (int_bound 80)
            (triple (int_range 1 6) (int_bound 6) (int_range (-50) 50))))
    (fun ops ->
      let n = 7 in
      let rounds = Quorum.Rounds.create ~n ~rounds:2 () in
      let model : (int, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
      List.for_all
        (fun (view, voter, value) ->
          let tally =
            match Hashtbl.find_opt model view with
            | Some t -> t
            | None ->
              let t = Hashtbl.create 8 in
              Hashtbl.replace model view t;
              t
          in
          Hashtbl.replace tally voter value;
          let got = Quorum.Rounds.note rounds ~current:0 ~view ~voter ~value in
          let model_max =
            Hashtbl.fold (fun _ v acc -> max v acc) tally min_int
          in
          got = Hashtbl.length tally
          && Quorum.Rounds.max_value rounds ~view ~default:min_int = model_max)
        ops)

let test_rounds_reclaim () =
  (* A single-slot pool: once the replica reaches the tallied view, the
     slot is reclaimable for the next view and the old tally is gone. *)
  let rounds = Quorum.Rounds.create ~n:4 ~rounds:1 () in
  Alcotest.(check int) "first vote for view 1" 1
    (Quorum.Rounds.note rounds ~current:0 ~view:1 ~voter:2 ~value:10);
  Alcotest.(check int) "repeat vote keeps count" 1
    (Quorum.Rounds.note rounds ~current:0 ~view:1 ~voter:2 ~value:11);
  Alcotest.(check int) "payload updated" 11
    (Quorum.Rounds.max_value rounds ~view:1 ~default:(-1));
  (* current = 1 now: view 1's slot is stale and claimed for view 2 *)
  Alcotest.(check int) "stale slot reclaimed for view 2" 1
    (Quorum.Rounds.note rounds ~current:1 ~view:2 ~voter:0 ~value:3);
  Alcotest.(check int) "old view's tally dropped" (-1)
    (Quorum.Rounds.max_value rounds ~view:1 ~default:(-1))

let test_check_n () =
  Quorum.check_n 0 "ok";
  Quorum.check_n 63 "ok";
  Alcotest.check_raises "n = 64 rejected"
    (Invalid_argument "grp: need 0 <= n <= 63") (fun () -> Quorum.check_n 64 "grp");
  Alcotest.check_raises "n = -1 rejected"
    (Invalid_argument "grp: need 0 <= n <= 63") (fun () -> Quorum.check_n (-1) "grp")

(* --- Digest_map vs (int64, _) Hashtbl --------------------------------- *)

type dm_op = Set of int64 * int | Remove of int64 | Reset

let dm_op_gen =
  (* A small key pool forces collisions, overwrites and tombstone reuse. *)
  QCheck.Gen.(
    let key = map (fun i -> Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L) (int_bound 40) in
    frequency
      [
        (6, map2 (fun k v -> Set (k, v)) key (int_bound 1000));
        (3, map (fun k -> Remove k) key);
        (1, return Reset);
      ])

let dm_print = function
  | Set (k, v) -> Printf.sprintf "set %Lx %d" k v
  | Remove k -> Printf.sprintf "del %Lx" k
  | Reset -> "reset"

let prop_digest_map_model =
  QCheck.Test.make ~name:"Digest_map = (int64, int) Hashtbl" ~count:300
    QCheck.(make ~print:Print.(list dm_print) Gen.(list_size (int_bound 200) dm_op_gen))
    (fun ops ->
      let dm = Digest_map.create ~capacity:8 () in
      let model : (int64, int) Hashtbl.t = Hashtbl.create 16 in
      List.for_all
        (fun op ->
          (match op with
           | Set (k, v) ->
             Digest_map.set dm k v;
             Hashtbl.replace model k v
           | Remove k ->
             Digest_map.remove dm k;
             Hashtbl.remove model k
           | Reset ->
             Digest_map.reset dm;
             Hashtbl.reset model);
          Digest_map.length dm = Hashtbl.length model
          && Hashtbl.fold
               (fun k v ok ->
                 ok && Digest_map.get dm k = Some v && Digest_map.mem dm k
                 && Digest_map.value_at dm (Digest_map.index dm k) = v)
               model true
          && Digest_map.fold (fun k v ok -> ok && Hashtbl.find_opt model k = Some v) dm true)
        ops)

(* --- Slot_ring vs (seq, _) Hashtbl ------------------------------------ *)

type sr_op = Bind of int | Release of int

(* Mostly a dense window, salted with SEU-style outliers: counters with
   a high (or sign) bit flipped land far outside any ring capacity and
   must take the bounded-overflow path instead of growing to span the
   gap. *)
let sr_seq_gen =
  QCheck.Gen.(
    frequency
      [
        (8, int_bound 500);
        (1, map (fun k -> (1 lsl 31) + k) (int_bound 7));
        (1, map (fun k -> -((1 lsl 31) + k)) (int_bound 7));
      ])

let sr_op_gen =
  QCheck.Gen.(
    frequency [ (3, map (fun s -> Bind s) sr_seq_gen); (2, map (fun s -> Release s) sr_seq_gen) ])

let sr_print = function
  | Bind s -> Printf.sprintf "bind %d" s
  | Release s -> Printf.sprintf "release %d" s

let prop_slot_ring_model =
  QCheck.Test.make ~name:"Slot_ring = (seq, value) Hashtbl" ~count:300
    QCheck.(make ~print:Print.(list sr_print) Gen.(list_size (int_bound 150) sr_op_gen))
    (fun ops ->
      let ring = Slot_ring.create ~capacity:8 ~fresh:(fun _ -> ref (-1)) in
      let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
      List.for_all
        (fun op ->
          (match op with
           | Bind seq ->
             let cell, fresh_claim = Slot_ring.bind ring seq in
             let was_live = Hashtbl.mem model seq in
             if fresh_claim then cell := seq;  (* caller resets pooled state *)
             Hashtbl.replace model seq seq;
             fresh_claim = not was_live
           | Release seq ->
             Slot_ring.release ring seq;
             Hashtbl.remove model seq;
             true)
          && Hashtbl.fold
               (fun seq v ok ->
                 let slot = Slot_ring.slot ring seq in
                 ok && slot >= 0 && !(Slot_ring.entry ring slot) = v)
               model true
          && List.for_all
               (fun seq -> Slot_ring.mem ring seq = Hashtbl.mem model seq)
               [ 0; 1; 63; 255; 499; (1 lsl 31) + 3; -((1 lsl 31) + 3) ])
        ops)

let test_slot_ring_outlier_bounded () =
  (* A corrupted sequence number (SEU near bit 31/63) must not balloon
     the ring: growth stops at 2^15 slots and outliers overflow. *)
  let ring = Slot_ring.create ~capacity:8 ~fresh:(fun _ -> ref 0) in
  for s = 0 to 300 do
    let cell, _ = Slot_ring.bind ring s in
    cell := s
  done;
  let outliers = [ (1 lsl 31) + 7; -((1 lsl 31) + 7); (1 lsl 62) + 123 ] in
  List.iter
    (fun s ->
      let cell, fresh_claim = Slot_ring.bind ring s in
      Alcotest.(check bool) "outlier freshly bound" true fresh_claim;
      cell := s)
    outliers;
  Alcotest.(check bool) "ring growth capped" true (Slot_ring.capacity ring <= 1 lsl 15);
  List.iter
    (fun s ->
      let i = Slot_ring.slot ring s in
      Alcotest.(check bool) "outlier found" true (i >= 0);
      Alcotest.(check int) "outlier value" s !(Slot_ring.entry ring i);
      let _, fresh_claim = Slot_ring.bind ring s in
      Alcotest.(check bool) "rebind is not fresh" false fresh_claim)
    outliers;
  (* Swap-remove keeps the survivors reachable, and the dense window is
     untouched throughout. *)
  Slot_ring.release ring (List.hd outliers);
  Alcotest.(check bool) "released outlier gone" false (Slot_ring.mem ring (List.hd outliers));
  List.iter
    (fun s -> Alcotest.(check bool) "surviving outlier" true (Slot_ring.mem ring s))
    (List.tl outliers);
  for s = 0 to 300 do
    let i = Slot_ring.slot ring s in
    if i < 0 || !(Slot_ring.entry ring i) <> s then Alcotest.fail "window entry lost"
  done

let () =
  Alcotest.run "resoc_quorum"
    [
      ( "model",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_quorum_model;
            prop_threshold_crossing;
            prop_rounds_model;
            prop_digest_map_model;
            prop_slot_ring_model;
          ] );
      ( "units",
        [
          Alcotest.test_case "rounds reclaim stale slots" `Quick test_rounds_reclaim;
          Alcotest.test_case "check_n bounds" `Quick test_check_n;
          Alcotest.test_case "slot-ring outliers bounded" `Quick test_slot_ring_outlier_bounded;
        ] );
    ]
