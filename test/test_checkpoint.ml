(* Tests for the checkpoint-certificate / state-transfer subsystem: digest
   and reply-cache snapshot units, the certificate round-trip through
   serve/feed/install, overflow pruning in the slot ring, a cross-protocol
   qcheck property that a wiped replica restored by certified transfer ends
   byte-identical to replicas that executed the full log, and mutation
   self-tests proving the two new invariants (exec_window,
   transfer_applied) catch deliberately broken implementations. *)

open Resoc_repl
module Engine = Resoc_des.Engine
module Check = Resoc_check.Check
module Inject = Resoc_check.Inject
module Group = Resoc_core.Group

let ckpt_config = { Checkpoint.interval = 4; window = 4; chunk = 3 }

(* Gates are global; every test that touches them restores the disabled
   state so suites cannot contaminate one another. *)
let with_check f =
  Fun.protect
    ~finally:(fun () ->
      Check.disable ();
      Inject.stop ();
      Check.begin_replicate ();
      Inject.begin_replicate ())
    (fun () ->
      Check.enable ();
      Inject.record ();
      Check.begin_replicate ();
      Inject.begin_replicate ();
      f ())

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* --- digest / snapshot units -------------------------------------------- *)

let test_digest_deterministic () =
  let rids = [ (0, 3, 30L); (2, 7, 70L) ] in
  let d1 = Checkpoint.digest ~seq:8 ~state:42L ~rids in
  let d2 = Checkpoint.digest ~seq:8 ~state:42L ~rids in
  Alcotest.(check bool) "same inputs, same digest" true (Int64.equal d1 d2);
  Alcotest.(check bool) "state changes digest" false
    (Int64.equal d1 (Checkpoint.digest ~seq:8 ~state:43L ~rids));
  Alcotest.(check bool) "seq changes digest" false
    (Int64.equal d1 (Checkpoint.digest ~seq:12 ~state:42L ~rids));
  Alcotest.(check bool) "reply cache changes digest" false
    (Int64.equal d1 (Checkpoint.digest ~seq:8 ~state:42L ~rids:[ (0, 3, 30L) ]))

let test_snapshot_rids () =
  let rid_last = [| 5; min_int; 9 |] and rid_result = [| 50L; 0L; 90L |] in
  Alcotest.(check bool) "ascending, unrecorded clients skipped" true
    (Checkpoint.snapshot_rids ~rid_last ~rid_result = [ (0, 5, 50L); (2, 9, 90L) ])

(* --- certificate + transfer round-trip, no protocol involved ------------- *)

let test_cert_roundtrip () =
  let engine = Engine.create () in
  let obs = Engine.obs engine in
  let server = Checkpoint.create ckpt_config ~obs ~quorum:2 in
  let rid_last = [| 3 |] and rid_result = [| 33L |] in
  (* Not a boundary: no vote to broadcast. *)
  Alcotest.(check bool) "no digest off-boundary" true
    (Checkpoint.note_exec server ~seq:3 ~state:7L ~rid_last ~rid_result = None);
  let d =
    match Checkpoint.note_exec server ~seq:4 ~state:11L ~rid_last ~rid_result with
    | Some d -> d
    | None -> Alcotest.fail "boundary must produce a digest"
  in
  Alcotest.(check int) "own vote alone is no certificate" (-1)
    (Checkpoint.note_vote server ~seq:4 ~digest:d ~voter:0);
  Alcotest.(check int) "second vote completes the certificate" 0
    (Checkpoint.note_vote server ~seq:4 ~digest:d ~voter:1);
  Alcotest.(check int) "low watermark advanced" 4 (Checkpoint.low server);
  Alcotest.(check int) "high = low + window * interval" 20 (Checkpoint.high server);
  (* Ship it to a wiped receiver and make sure the digest re-verifies. *)
  let receiver = Checkpoint.create ckpt_config ~obs ~quorum:2 in
  Checkpoint.begin_recovery receiver ~now:100;
  let chunks =
    match Checkpoint.serve server ~view:2 ~have:(Checkpoint.low receiver)
            ~suffix:[ (5, []); (6, []) ]
    with
    | Some cs -> cs
    | None -> Alcotest.fail "server holds a stable checkpoint, must serve"
  in
  Alcotest.(check bool) "every chunk has a positive wire size" true
    (List.for_all (fun c -> Checkpoint.chunk_bytes c > 0) chunks);
  let completion =
    List.fold_left
      (fun acc chunk ->
        match acc with
        | Some _ -> acc
        | None -> Checkpoint.feed receiver ~src:0 ~now:160 chunk)
      None chunks
  in
  match completion with
  | None -> Alcotest.fail "last chunk must complete the assembly"
  | Some c ->
    Alcotest.(check bool) "completion verifies against the certificate" true
      c.Checkpoint.c_valid;
    Alcotest.(check int) "completion is the certified boundary" 4
      c.Checkpoint.c_cert.Checkpoint.cp_seq;
    Alcotest.(check bool) "suffix survives chunking in order" true
      (c.Checkpoint.c_suffix = [ (5, []); (6, []) ]);
    Alcotest.(check int) "latency accounted from begin_recovery" 60
      c.Checkpoint.c_elapsed;
    Checkpoint.install receiver c;
    Alcotest.(check bool) "recovery ended" false (Checkpoint.recovering receiver);
    Alcotest.(check int) "receiver rebased to the certificate" 4
      (Checkpoint.low receiver)

(* --- slot-ring overflow pruning ------------------------------------------ *)

let test_prune_outside () =
  (* Start at the growth cap so colliding outliers must overflow. *)
  let ring = Slot_ring.create ~capacity:(1 lsl 15) ~fresh:(fun _ -> ()) in
  let far = 1 lsl 15 in
  ignore (Slot_ring.bind ring 1);
  ignore (Slot_ring.bind ring (1 + far));
  ignore (Slot_ring.bind ring (1 + (2 * far)));
  Alcotest.(check bool) "outliers landed somewhere" true
    (Slot_ring.mem ring (1 + far) && Slot_ring.mem ring (1 + (2 * far)));
  Slot_ring.prune_outside ring ~low:0 ~high:100;
  Alcotest.(check bool) "in-window ring entry kept" true (Slot_ring.mem ring 1);
  Alcotest.(check bool) "overflow outliers swept" false
    (Slot_ring.mem ring (1 + far) || Slot_ring.mem ring (1 + (2 * far)))

(* --- cross-protocol wipe/restore property -------------------------------- *)

(* Run [kind] with checkpointing on, knock the last replica out long
   enough that the survivors certify checkpoints it never saw, bring it
   back wiped, and require (a) at least one certified state transfer and
   (b) end-state byte-identical to every replica that executed the full
   log. *)
let run_transfer kind (offline_at_k, gap_k) =
  let spec =
    { Group.default_spec with Group.kind; f = 1; n_clients = 1; checkpoint = Some ckpt_config }
  in
  let n = Group.n_replicas_of spec in
  (* CheapBFT passives already receive full state in every Update, so a
     rejoining passive has nothing to fetch; wipe an active replica there
     (which also exercises the transition protocol while it is down). *)
  let victim = match kind with `Cheapbft -> 1 | _ -> n - 1 in
  let engine = Engine.create () in
  let group = Group.build engine (Group.Hub { latency = 5 }) spec in
  let t_off = offline_at_k * 1_000 in
  let t_on = t_off + (gap_k * 1_000) in
  ignore (Engine.at engine ~time:t_off (fun () -> group.Group.set_offline ~replica:victim));
  ignore (Engine.at engine ~time:t_on (fun () -> group.Group.set_online ~replica:victim));
  Resoc_workload.Generator.periodic engine ~period:500 ~until:(t_on + 20_000) ~n_clients:1
    ~submit:(fun ~client ~payload -> group.Group.submit ~client ~payload)
    ();
  Engine.run ~until:(t_on + 300_000) engine;
  let s = group.Group.stats () in
  let states = List.init n (fun replica -> group.Group.replica_state ~replica) in
  let agree =
    match states with [] -> true | first :: rest -> List.for_all (Int64.equal first) rest
  in
  if not (s.Stats.state_transfers >= 1 && agree) then
    QCheck.Test.fail_reportf "off@%d on@%d transfers=%d states=%s" t_off t_on
      s.Stats.state_transfers
      (String.concat "," (List.map Int64.to_string states))
  else true

let arbitrary_window =
  QCheck.make
    ~print:(fun (a, g) -> Printf.sprintf "(off@%dk, gap %dk)" a g)
    QCheck.Gen.(pair (int_range 10 30) (int_range 5 25))

let transfer_prop kind name =
  QCheck.Test.make ~name:(name ^ " wiped replica restored byte-identical via transfer") ~count:8
    arbitrary_window (run_transfer kind)

(* --- mutation self-tests -------------------------------------------------- *)

(* A tight window (high = low + 1) forces execution to park at the
   watermark until each boundary certifies. Two clients keep two
   consensus instances in flight, so commits land back-to-back and only
   the gate separates execution from the not-yet-certified boundary. *)
let run_gated_pbft () =
  let engine = Engine.create () in
  let config =
    { Pbft.default_config with
      Pbft.f = 1;
      n_clients = 2;
      checkpoint = Some { Checkpoint.interval = 1; window = 1; chunk = 4 };
    }
  in
  let fabric = Transport.hub engine ~n:(Pbft.n_replicas config + 2) () in
  let sys = Pbft.start engine fabric config () in
  for i = 1 to 4 do
    Pbft.submit sys ~client:0 ~payload:(Int64.of_int i);
    Pbft.submit sys ~client:1 ~payload:(Int64.of_int (i + 100))
  done;
  Engine.run ~until:200_000 engine;
  (Pbft.stats sys).Stats.completed

let test_mutant_watermark_overrun () =
  with_check (fun () ->
      Alcotest.(check int) "gated pbft still completes" 8 (run_gated_pbft ());
      Alcotest.(check bool) "checker observed traffic" true (Check.hooks_fired () > 0);
      Check.begin_replicate ();
      Fun.protect
        ~finally:(fun () -> Checkpoint.test_ignore_watermarks := false)
        (fun () ->
          Checkpoint.test_ignore_watermarks := true;
          match run_gated_pbft () with
          | _ -> Alcotest.fail "watermark overrun not flagged"
          | exception Check.Violation msg ->
            Alcotest.(check bool) "names the watermark invariant" true
              (contains ~sub:"watermark window" msg)))

let run_transfer_pbft () =
  let engine = Engine.create () in
  let config =
    { Pbft.default_config with Pbft.f = 1; n_clients = 1; checkpoint = Some ckpt_config }
  in
  let n = Pbft.n_replicas config in
  let fabric = Transport.hub engine ~n:(n + 1) () in
  let sys = Pbft.start engine fabric config () in
  ignore (Engine.at engine ~time:10_000 (fun () -> Pbft.set_offline sys ~replica:(n - 1)));
  ignore (Engine.at engine ~time:25_000 (fun () -> Pbft.set_online sys ~replica:(n - 1)));
  Resoc_workload.Generator.periodic engine ~period:500 ~until:45_000 ~n_clients:1
    ~submit:(fun ~client ~payload -> Pbft.submit sys ~client ~payload)
    ();
  Engine.run ~until:300_000 engine;
  (Pbft.stats sys).Stats.state_transfers

let test_mutant_unverified_transfer () =
  with_check (fun () ->
      Alcotest.(check bool) "unmutated transfer verifies and installs" true
        (run_transfer_pbft () >= 1);
      Alcotest.(check bool) "checker observed traffic" true (Check.hooks_fired () > 0);
      Check.begin_replicate ();
      Fun.protect
        ~finally:(fun () -> Checkpoint.test_unverified_transfer := false)
        (fun () ->
          Checkpoint.test_unverified_transfer := true;
          match run_transfer_pbft () with
          | _ -> Alcotest.fail "corrupted transfer not flagged"
          | exception Check.Violation msg ->
            Alcotest.(check bool) "names the transfer invariant" true
              (contains ~sub:"does not match" msg)))

let () =
  Alcotest.run "resoc_checkpoint"
    [
      ( "units",
        [
          Alcotest.test_case "digest deterministic" `Quick test_digest_deterministic;
          Alcotest.test_case "snapshot_rids" `Quick test_snapshot_rids;
          Alcotest.test_case "cert roundtrip" `Quick test_cert_roundtrip;
          Alcotest.test_case "prune_outside" `Quick test_prune_outside;
        ] );
      ( "transfer-restore",
        List.map QCheck_alcotest.to_alcotest
          [
            transfer_prop `Pbft "pbft";
            transfer_prop `Minbft "minbft";
            transfer_prop `A2m_bft "a2m-bft";
            transfer_prop `Cheapbft "cheapbft";
            transfer_prop `Paxos "paxos";
            transfer_prop `Primary_backup "primary-backup";
          ] );
      ( "mutants",
        [
          Alcotest.test_case "watermark overrun flagged" `Quick test_mutant_watermark_overrun;
          Alcotest.test_case "unverified transfer flagged" `Quick test_mutant_unverified_transfer;
        ] );
    ]
