open Resoc_noc
module Engine = Resoc_des.Engine
module Metrics = Resoc_des.Metrics

(* --- Mesh --- *)

let test_mesh_coords () =
  let m = Mesh.create ~width:4 ~height:3 in
  Alcotest.(check int) "n_nodes" 12 (Mesh.n_nodes m);
  Alcotest.(check (pair int int)) "coord of 0" (0, 0) (Mesh.coord_of_id m 0);
  Alcotest.(check (pair int int)) "coord of 5" (1, 1) (Mesh.coord_of_id m 5);
  Alcotest.(check int) "id of (3,2)" 11 (Mesh.id_of_coord m ~x:3 ~y:2)

let test_mesh_coords_bounds () =
  let m = Mesh.create ~width:2 ~height:2 in
  Alcotest.check_raises "oob id" (Invalid_argument "Mesh: tile id out of range") (fun () ->
      ignore (Mesh.coord_of_id m 4))

let test_manhattan () =
  let m = Mesh.create ~width:4 ~height:4 in
  Alcotest.(check int) "self" 0 (Mesh.manhattan m 0 0);
  Alcotest.(check int) "corner to corner" 6 (Mesh.manhattan m 0 15);
  Alcotest.(check int) "adjacent" 1 (Mesh.manhattan m 0 1)

let test_neighbors () =
  let m = Mesh.create ~width:3 ~height:3 in
  Alcotest.(check (list int)) "corner" [ 1; 3 ] (List.sort compare (Mesh.neighbors m 0));
  Alcotest.(check (list int)) "center" [ 1; 3; 5; 7 ] (List.sort compare (Mesh.neighbors m 4))

let test_xy_route_shape () =
  let m = Mesh.create ~width:4 ~height:4 in
  (* 1=(1,0) -> 14=(2,3): X first to (2,0)=2, then Y down to (2,3)=14. *)
  Alcotest.(check (list int)) "x then y" [ 1; 2; 6; 10; 14 ] (Mesh.xy_route m ~src:1 ~dst:14)

let test_xy_route_self () =
  let m = Mesh.create ~width:4 ~height:4 in
  Alcotest.(check (list int)) "self route" [ 5 ] (Mesh.xy_route m ~src:5 ~dst:5)

let test_route_length_is_manhattan () =
  let m = Mesh.create ~width:5 ~height:5 in
  for src = 0 to 24 do
    for dst = 0 to 24 do
      let route = Mesh.xy_route m ~src ~dst in
      Alcotest.(check int)
        (Printf.sprintf "route %d->%d" src dst)
        (Mesh.manhattan m src dst + 1)
        (List.length route)
    done
  done

let prop_route_steps_adjacent =
  QCheck.Test.make ~name:"xy route moves by adjacent hops" ~count:200
    QCheck.(pair (int_bound 35) (int_bound 35))
    (fun (src, dst) ->
      let m = Mesh.create ~width:6 ~height:6 in
      let route = Mesh.xy_route m ~src ~dst in
      let rec ok = function
        | a :: (b :: _ as rest) -> Mesh.manhattan m a b = 1 && ok rest
        | [ _ ] | [] -> true
      in
      ok route && List.hd route = src && List.hd (List.rev route) = dst)

let test_link_failure () =
  let m = Mesh.create ~width:3 ~height:1 in
  let l = { Mesh.src = 0; dst = 1 } in
  Alcotest.(check bool) "up initially" true (Mesh.link_up m l);
  Mesh.fail_link m l;
  Alcotest.(check bool) "down after fail" false (Mesh.link_up m l);
  Alcotest.(check bool) "reverse direction unaffected" true (Mesh.link_up m { Mesh.src = 1; dst = 0 });
  Alcotest.(check bool) "route unusable" false (Mesh.route_usable m ~src:0 ~dst:2);
  Alcotest.(check bool) "reverse route usable" true (Mesh.route_usable m ~src:2 ~dst:0);
  Mesh.repair_link m l;
  Alcotest.(check bool) "up after repair" true (Mesh.link_up m l)

let test_router_failure () =
  let m = Mesh.create ~width:3 ~height:1 in
  Mesh.fail_router m 1;
  Alcotest.(check bool) "route through dead router" false (Mesh.route_usable m ~src:0 ~dst:2);
  Alcotest.(check (list int)) "listed" [ 1 ] (Mesh.failed_routers m);
  Mesh.repair_router m 1;
  Alcotest.(check bool) "restored" true (Mesh.route_usable m ~src:0 ~dst:2)

let test_epoch_and_counts () =
  let m = Mesh.create ~width:3 ~height:3 in
  let fired = ref 0 in
  Mesh.on_change m (fun () -> incr fired);
  Alcotest.(check int) "epoch starts at 0" 0 (Mesh.epoch m);
  let l = { Mesh.src = 0; dst = 1 } in
  Mesh.fail_link m l;
  Mesh.fail_link m l;
  Alcotest.(check int) "re-failing is a no-op" 1 (Mesh.epoch m);
  Alcotest.(check int) "one failed link" 1 (Mesh.failed_link_count m);
  Mesh.fail_router m 4;
  Alcotest.(check int) "one failed router" 1 (Mesh.failed_router_count m);
  Mesh.repair_link m l;
  Mesh.repair_link m l;
  Mesh.repair_router m 4;
  Alcotest.(check int) "links repaired" 0 (Mesh.failed_link_count m);
  Alcotest.(check int) "routers repaired" 0 (Mesh.failed_router_count m);
  Alcotest.(check int) "one event per actual change" 4 !fired;
  Alcotest.(check int) "epoch counts actual changes" 4 (Mesh.epoch m)

let test_real_link_ids () =
  let m = Mesh.create ~width:3 ~height:3 in
  let ids = Mesh.real_link_ids m in
  (* Directed links of a w*h mesh: 2 * (2*w*h - w - h). *)
  Alcotest.(check int) "count" 24 (Array.length ids);
  Array.iteri
    (fun i lid ->
      if i > 0 then Alcotest.(check bool) "ascending" true (lid > ids.(i - 1));
      let l = Mesh.link_of_id m lid in
      Alcotest.(check int) "roundtrip" lid (Mesh.link_id m ~src:l.Mesh.src ~dst:l.Mesh.dst))
    ids

let test_non_adjacent_link_rejected () =
  let m = Mesh.create ~width:3 ~height:3 in
  Alcotest.check_raises "diagonal" (Invalid_argument "Mesh: not a link between adjacent tiles")
    (fun () -> Mesh.fail_link m { Mesh.src = 0; dst = 4 })

(* --- Network --- *)

let make_net ?(config = Network.default_config) ~width ~height () =
  let engine = Engine.create () in
  let mesh = Mesh.create ~width ~height in
  let net = Network.create engine mesh config in
  (engine, net)

let test_delivery () =
  let engine, net = make_net ~width:4 ~height:4 () in
  let received = ref [] in
  Network.attach net ~node:15 (fun ~src msg -> received := (src, msg) :: !received);
  Network.send net ~src:0 ~dst:15 ~bytes_:32 "hello";
  Engine.run engine;
  Alcotest.(check (list (pair int string))) "delivered" [ (0, "hello") ] !received;
  Alcotest.(check int) "delivered count" 1 (Network.delivered net)

let test_latency_formula () =
  (* Uncontended: hops * (router_latency + ceil(bytes/bw)). 0->3 on a 1-row
     mesh = 3 hops; (2 + 2) * 3 = 12 cycles. *)
  let engine, net = make_net ~width:4 ~height:1 () in
  let at = ref (-1) in
  Network.attach net ~node:3 (fun ~src:_ _ -> at := Engine.now engine);
  Network.send net ~src:0 ~dst:3 ~bytes_:32 ();
  Engine.run engine;
  Alcotest.(check int) "latency" 12 !at

let test_local_delivery () =
  let engine, net = make_net ~width:2 ~height:2 () in
  let at = ref (-1) in
  Network.attach net ~node:1 (fun ~src:_ _ -> at := Engine.now engine);
  Network.send net ~src:1 ~dst:1 ~bytes_:8 ();
  Engine.run engine;
  Alcotest.(check int) "loopback cost" 1 !at

let test_contention_serializes () =
  (* Two messages racing over the same link: the second waits. *)
  let engine, net = make_net ~width:2 ~height:1 () in
  let times = ref [] in
  Network.attach net ~node:1 (fun ~src:_ id -> times := (id, Engine.now engine) :: !times);
  Network.send net ~src:0 ~dst:1 ~bytes_:32 1;
  Network.send net ~src:0 ~dst:1 ~bytes_:32 2;
  Engine.run engine;
  (match List.sort compare !times with
   | [ (1, t1); (2, t2) ] ->
     Alcotest.(check int) "first uncontended" 4 t1;
     Alcotest.(check int) "second queued behind" 8 t2
   | _ -> Alcotest.fail "expected two deliveries")

let test_drop_on_failed_link () =
  let engine, net = make_net ~width:3 ~height:1 () in
  let received = ref 0 in
  Network.attach net ~node:2 (fun ~src:_ _ -> incr received);
  Mesh.fail_link (Network.mesh net) { Mesh.src = 1; dst = 2 };
  Network.send net ~src:0 ~dst:2 ~bytes_:16 ();
  Engine.run engine;
  Alcotest.(check int) "nothing received" 0 !received;
  Alcotest.(check int) "dropped" 1 (Network.dropped net)

let test_drop_on_detached_handler () =
  let engine, net = make_net ~width:2 ~height:1 () in
  let received = ref 0 in
  Network.attach net ~node:1 (fun ~src:_ _ -> incr received);
  Network.detach net ~node:1;
  Network.send net ~src:0 ~dst:1 ~bytes_:16 ();
  Engine.run engine;
  Alcotest.(check int) "dropped at dest" 1 (Network.dropped net);
  Alcotest.(check int) "handler not called" 0 !received

let test_drop_on_midflight_router_death () =
  let engine, net = make_net ~width:3 ~height:1 () in
  let received = ref 0 in
  Network.attach net ~node:2 (fun ~src:_ _ -> incr received);
  Network.send net ~src:0 ~dst:2 ~bytes_:16 ();
  (* Kill router 2 while the message is crossing the first link (hop takes 3
     cycles with default config: 2 + ceil(16/16)). *)
  ignore (Engine.schedule engine ~delay:4 (fun () -> Mesh.fail_router (Network.mesh net) 2));
  Engine.run engine;
  Alcotest.(check int) "dropped mid-flight" 1 (Network.dropped net);
  Alcotest.(check int) "not delivered" 0 !received

let test_reattach_replaces_handler () =
  let engine, net = make_net ~width:2 ~height:1 () in
  let first = ref 0 and second = ref 0 in
  Network.attach net ~node:1 (fun ~src:_ _ -> incr first);
  Network.attach net ~node:1 (fun ~src:_ _ -> incr second);
  Network.send net ~src:0 ~dst:1 ~bytes_:16 ();
  Engine.run engine;
  Alcotest.(check int) "old handler silent" 0 !first;
  Alcotest.(check int) "new handler used" 1 !second

let test_stats_accumulate () =
  let engine, net = make_net ~width:4 ~height:4 () in
  for node = 0 to 15 do
    Network.attach net ~node (fun ~src:_ _ -> ())
  done;
  for i = 0 to 9 do
    Network.send net ~src:0 ~dst:(i + 1) ~bytes_:64 ()
  done;
  Engine.run engine;
  Alcotest.(check int) "sent" 10 (Network.sent net);
  Alcotest.(check int) "delivered" 10 (Network.delivered net);
  Alcotest.(check int) "bytes" 640 (Network.bytes_sent net);
  Alcotest.(check bool) "latency histogram populated" true
    (Metrics.Histogram.count (Network.latency net) = 10)

let test_hop_load () =
  let engine, net = make_net ~width:3 ~height:1 () in
  Network.attach net ~node:2 (fun ~src:_ _ -> ());
  Network.send net ~src:0 ~dst:2 ~bytes_:16 ();
  Network.send net ~src:0 ~dst:2 ~bytes_:16 ();
  Engine.run engine;
  let load = Network.hop_load net in
  Alcotest.(check int) "two links used" 2 (List.length load);
  List.iter (fun (_, n) -> Alcotest.(check int) "each carried 2" 2 n) load

let test_farther_is_slower () =
  let engine, net = make_net ~width:8 ~height:1 () in
  let t_near = ref 0 and t_far = ref 0 in
  Network.attach net ~node:1 (fun ~src:_ _ -> t_near := Engine.now engine);
  Network.attach net ~node:7 (fun ~src:_ _ -> t_far := Engine.now engine);
  Network.send net ~src:0 ~dst:1 ~bytes_:16 ();
  Network.send net ~src:0 ~dst:7 ~bytes_:16 ();
  Engine.run engine;
  Alcotest.(check bool) "monotone in distance" true (!t_far > !t_near)

(* --- Adaptive routing --- *)

let adaptive_config = { Network.default_config with routing = Network.Adaptive }

(* Sever the column-0/1 boundary of a 4x4 mesh except in row 0: the mesh
   stays connected but every XY and YX path between off-row-0 tiles of the
   two sides is broken. *)
let build_wall mesh =
  for y = 1 to 3 do
    let a = (y * 4) + 0 and b = (y * 4) + 1 in
    Mesh.fail_link mesh { Mesh.src = a; dst = b };
    Mesh.fail_link mesh { Mesh.src = b; dst = a }
  done

let test_adaptive_routes_around_wall () =
  let engine, net = make_net ~config:adaptive_config ~width:4 ~height:4 () in
  build_wall (Network.mesh net);
  let received = ref 0 in
  for node = 0 to 15 do
    Network.attach net ~node (fun ~src:_ _ -> incr received)
  done;
  (* 4=(0,1) -> 5=(1,1): XY and YX are the same severed link; only the
     detour through row 0 delivers. *)
  Network.send net ~src:4 ~dst:5 ~bytes_:16 ();
  Engine.run engine;
  Alcotest.(check int) "delivered around the wall" 1 !received;
  Alcotest.(check int) "nothing dropped" 0 (Network.dropped net)

let test_xy_modes_drop_at_wall () =
  List.iter
    (fun routing ->
      let config = { Network.default_config with routing } in
      let engine, net = make_net ~config ~width:4 ~height:4 () in
      build_wall (Network.mesh net);
      let received = ref 0 in
      for node = 0 to 15 do
        Network.attach net ~node (fun ~src:_ _ -> incr received)
      done;
      Network.send net ~src:4 ~dst:5 ~bytes_:16 ();
      Engine.run engine;
      Alcotest.(check int) "dropped at the wall" 0 !received)
    [ Network.Xy; Network.Xy_with_yx_fallback ]

let test_adaptive_drops_only_when_partitioned () =
  let engine, net = make_net ~config:adaptive_config ~width:4 ~height:4 () in
  let mesh = Network.mesh net in
  build_wall mesh;
  let received = ref 0 in
  for node = 0 to 15 do
    Network.attach net ~node (fun ~src:_ _ -> incr received)
  done;
  (* Close the remaining row-0 opening: now the halves are partitioned. *)
  Mesh.fail_link mesh { Mesh.src = 0; dst = 1 };
  Mesh.fail_link mesh { Mesh.src = 1; dst = 0 };
  Alcotest.(check bool) "unreachable" false (Network.reachable net ~src:4 ~dst:5);
  Network.send net ~src:4 ~dst:5 ~bytes_:16 ();
  Engine.run engine;
  Alcotest.(check int) "dropped" 1 (Network.dropped net);
  (* Repair re-opens the detour; the next message goes through. *)
  Mesh.repair_link mesh { Mesh.src = 0; dst = 1 };
  Alcotest.(check bool) "reachable again" true (Network.reachable net ~src:4 ~dst:5);
  Network.send net ~src:4 ~dst:5 ~bytes_:16 ();
  Engine.run engine;
  Alcotest.(check int) "delivered after repair" 1 !received

let test_route_epoch_tracks_mesh () =
  let _engine, net = make_net ~config:adaptive_config ~width:3 ~height:3 () in
  let mesh = Network.mesh net in
  Alcotest.(check int) "fresh tables" (Mesh.epoch mesh) (Network.route_epoch net);
  Mesh.fail_link mesh { Mesh.src = 0; dst = 1 };
  Mesh.fail_router mesh 4;
  Alcotest.(check int) "recomputed per event" (Mesh.epoch mesh) (Network.route_epoch net);
  Alcotest.(check bool) "cost accounted" true (Network.recompute_visits net > 0)

let test_partition_handler_fires () =
  let _engine, net = make_net ~config:adaptive_config ~width:4 ~height:1 () in
  let mesh = Network.mesh net in
  let last = ref (-1, -1) in
  Network.set_partition_handler net (fun ~reachable ~total -> last := (reachable, total));
  Mesh.fail_link mesh { Mesh.src = 1; dst = 2 };
  let reachable, total = !last in
  Alcotest.(check int) "total ordered pairs" 12 total;
  (* One directed link down: 2x2 = 4 left-to-right pairs lost. *)
  Alcotest.(check int) "severed pairs detected" 8 reachable

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "resoc_noc"
    [
      ( "mesh",
        [
          Alcotest.test_case "coords" `Quick test_mesh_coords;
          Alcotest.test_case "coord bounds" `Quick test_mesh_coords_bounds;
          Alcotest.test_case "manhattan" `Quick test_manhattan;
          Alcotest.test_case "neighbors" `Quick test_neighbors;
          Alcotest.test_case "xy route shape" `Quick test_xy_route_shape;
          Alcotest.test_case "self route" `Quick test_xy_route_self;
          Alcotest.test_case "route length" `Quick test_route_length_is_manhattan;
          Alcotest.test_case "link failure" `Quick test_link_failure;
          Alcotest.test_case "router failure" `Quick test_router_failure;
          Alcotest.test_case "non-adjacent link rejected" `Quick test_non_adjacent_link_rejected;
          Alcotest.test_case "epoch and O(1) counts" `Quick test_epoch_and_counts;
          Alcotest.test_case "real link ids" `Quick test_real_link_ids;
        ] );
      qsuite "mesh-prop" [ prop_route_steps_adjacent ];
      ( "network",
        [
          Alcotest.test_case "delivery" `Quick test_delivery;
          Alcotest.test_case "latency formula" `Quick test_latency_formula;
          Alcotest.test_case "local delivery" `Quick test_local_delivery;
          Alcotest.test_case "contention serializes" `Quick test_contention_serializes;
          Alcotest.test_case "drop on failed link" `Quick test_drop_on_failed_link;
          Alcotest.test_case "drop on detached handler" `Quick test_drop_on_detached_handler;
          Alcotest.test_case "drop mid-flight" `Quick test_drop_on_midflight_router_death;
          Alcotest.test_case "reattach replaces" `Quick test_reattach_replaces_handler;
          Alcotest.test_case "stats" `Quick test_stats_accumulate;
          Alcotest.test_case "hop load" `Quick test_hop_load;
          Alcotest.test_case "farther is slower" `Quick test_farther_is_slower;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "routes around wall" `Quick test_adaptive_routes_around_wall;
          Alcotest.test_case "xy modes drop at wall" `Quick test_xy_modes_drop_at_wall;
          Alcotest.test_case "drops only when partitioned" `Quick
            test_adaptive_drops_only_when_partitioned;
          Alcotest.test_case "route epoch tracks mesh" `Quick test_route_epoch_tracks_mesh;
          Alcotest.test_case "partition handler" `Quick test_partition_handler_fires;
        ] );
    ]
