open Resoc_des

(* --- Heap --- *)

let test_heap_ordering () =
  let h = Heap.create ~leq:(fun a b -> a <= b) in
  List.iter (Heap.add h) [ 5; 3; 8; 1; 9; 2; 7; 4; 6; 0 ];
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  Alcotest.(check (list int)) "sorted drain" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (drain [])

let test_heap_empty () =
  let h = Heap.create ~leq:(fun a b -> a <= b) in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek none" None (Heap.peek h);
  Alcotest.(check (option int)) "pop none" None (Heap.pop h)

let test_heap_peek_stable () =
  let h = Heap.create ~leq:(fun a b -> a <= b) in
  List.iter (Heap.add h) [ 4; 2; 9 ];
  Alcotest.(check (option int)) "peek min" (Some 2) (Heap.peek h);
  Alcotest.(check int) "size unchanged" 3 (Heap.size h)

let test_heap_interleaved () =
  let h = Heap.create ~leq:(fun a b -> a <= b) in
  Heap.add h 5;
  Heap.add h 1;
  Alcotest.(check (option int)) "pop 1" (Some 1) (Heap.pop h);
  Heap.add h 0;
  Heap.add h 7;
  Alcotest.(check (option int)) "pop 0" (Some 0) (Heap.pop h);
  Alcotest.(check (option int)) "pop 5" (Some 5) (Heap.pop h);
  Alcotest.(check (option int)) "pop 7" (Some 7) (Heap.pop h)

let test_heap_pop_releases () =
  (* Popped payloads must not stay pinned by the heap's backing array:
     the vacated slot is overwritten on every pop and the array dropped
     when the heap drains. *)
  let h = Heap.create ~leq:(fun (a, _) (b, _) -> a <= b) in
  let weaks = Weak.create 4 in
  for i = 0 to 3 do
    let payload = ref (1000 + i) in
    Weak.set weaks i (Some payload);
    Heap.add h (i, payload)
  done;
  for _ = 0 to 3 do
    ignore (Heap.pop h)
  done;
  Gc.full_major ();
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "payload %d collected" i)
      false (Weak.check weaks i)
  done

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~leq:(fun a b -> a <= b) in
      List.iter (Heap.add h) xs;
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.sort compare xs)

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  Alcotest.(check bool) "different streams" false (Int64.equal (Rng.int64 a) (Rng.int64 b))

let test_rng_split_independent () =
  (* The child's stream is fixed at split time: later parent draws must not
     perturb it. *)
  let p1 = Rng.create 7L in
  let c1 = Rng.split p1 in
  let v1 = Rng.int64 c1 in
  let p2 = Rng.create 7L in
  let c2 = Rng.split p2 in
  ignore (Rng.int64 p2);
  Alcotest.(check int64) "child stream stable" v1 (Rng.int64 c2)

let test_rng_int_bounds () =
  let r = Rng.create 3L in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done

let test_rng_int_rejects_nonpositive () =
  let r = Rng.create 3L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_rng_float_bounds () =
  let r = Rng.create 4L in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_exponential_mean () =
  let r = Rng.create 5L in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:10.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 10" true (Float.abs (mean -. 10.0) < 0.5)

let test_bernoulli_rate () =
  let r = Rng.create 6L in
  let n = 20000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.02)

let test_bernoulli_extremes () =
  let r = Rng.create 6L in
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli r 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli r 1.0)

let test_poisson_mean () =
  let r = Rng.create 7L in
  let n = 10000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.poisson r ~mean:4.0
  done;
  let mean = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 4" true (Float.abs (mean -. 4.0) < 0.2)

let test_weibull_positive () =
  let r = Rng.create 8L in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Rng.weibull r ~shape:2.0 ~scale:5.0 > 0.0)
  done

let test_shuffle_permutation () =
  let r = Rng.create 9L in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_geometric_endpoints () =
  (* p = 1.0: success on the first trial, deterministically 0 — the old
     code computed log u / log 0 = 0/-inf and fed int_of_float an
     implementation-defined value. *)
  let r = Rng.create 11L in
  for _ = 1 to 100 do
    Alcotest.(check int) "p=1 is always 0" 0 (Rng.geometric r ~p:1.0)
  done;
  (* p = 1.0 consumes no draw: the stream is unperturbed. *)
  let a = Rng.create 12L and b = Rng.create 12L in
  ignore (Rng.geometric a ~p:1.0);
  Alcotest.(check int64) "no draw consumed" (Rng.int64 b) (Rng.int64 a);
  let err = Invalid_argument "Rng.geometric: p must be in (0,1]" in
  Alcotest.check_raises "p=0 rejected" err (fun () -> ignore (Rng.geometric r ~p:0.0));
  Alcotest.check_raises "p<0 rejected" err (fun () -> ignore (Rng.geometric r ~p:(-0.5)));
  Alcotest.check_raises "p>1 rejected" err (fun () -> ignore (Rng.geometric r ~p:1.5));
  (* Tiny p: the draw can push the quotient past the int range; the clamp
     must keep the result a non-negative int instead of wrapping. *)
  for _ = 1 to 1000 do
    Alcotest.(check bool) "tiny p non-negative" true (Rng.geometric r ~p:1e-300 >= 0)
  done

let test_poisson_endpoints () =
  let r = Rng.create 13L in
  Alcotest.(check int) "mean=0 is 0" 0 (Rng.poisson r ~mean:0.0);
  Alcotest.check_raises "negative mean rejected"
    (Invalid_argument "Rng.poisson: mean must be non-negative") (fun () ->
      ignore (Rng.poisson r ~mean:(-1.0)));
  (* Above the normal-approximation cutoff the Float.round draw must stay
     clamped to [0, max_int] — never truncated into a negative int. *)
  for _ = 1 to 1000 do
    Alcotest.(check bool) "huge mean non-negative" true (Rng.poisson r ~mean:1e18 >= 0)
  done

let test_geometric_mean () =
  let r = Rng.create 10L in
  let n = 20000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.geometric r ~p:0.25
  done;
  (* mean of failures before success = (1-p)/p = 3 *)
  let mean = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 3" true (Float.abs (mean -. 3.0) < 0.2)

(* --- Engine --- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:10 (fun () -> log := 10 :: !log));
  ignore (Engine.schedule e ~delay:5 (fun () -> log := 5 :: !log));
  ignore (Engine.schedule e ~delay:20 (fun () -> log := 20 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 5; 10; 20 ] (List.rev !log)

let test_engine_fifo_same_cycle () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:5 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~delay:5 (fun () -> log := 2 :: !log));
  ignore (Engine.schedule e ~delay:5 (fun () -> log := 3 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "fifo within a cycle" [ 1; 2; 3 ] (List.rev !log)

let test_engine_now_advances () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:7 (fun () -> Alcotest.(check int) "now inside event" 7 (Engine.now e)));
  Engine.run e;
  Alcotest.(check int) "now after run" 7 (Engine.now e)

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let hits = ref [] in
  ignore
    (Engine.schedule e ~delay:3 (fun () ->
         ignore (Engine.schedule e ~delay:4 (fun () -> hits := Engine.now e :: !hits))));
  Engine.run e;
  Alcotest.(check (list int)) "nested fires at 7" [ 7 ] !hits

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:5 (fun () -> fired := true) in
  Engine.cancel e h;
  Engine.run e;
  Alcotest.(check bool) "cancelled never fires" false !fired

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule e ~delay:5 (fun () -> fired := 5 :: !fired));
  ignore (Engine.schedule e ~delay:50 (fun () -> fired := 50 :: !fired));
  Engine.run ~until:10 e;
  Alcotest.(check (list int)) "only early event" [ 5 ] !fired;
  Alcotest.(check int) "clock clamped to horizon" 10 (Engine.now e);
  Engine.run e;
  Alcotest.(check (list int)) "late event after resume" [ 50; 5 ] !fired

let test_engine_every () =
  let e = Engine.create () in
  let ticks = ref [] in
  Engine.every e ~period:10 (fun () -> ticks := Engine.now e :: !ticks);
  Engine.run ~until:35 e;
  Alcotest.(check (list int)) "periodic ticks" [ 10; 20; 30 ] (List.rev !ticks)

let test_engine_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.every e ~period:1 (fun () ->
      incr count;
      if !count = 5 then Engine.stop e);
  Engine.run ~until:100 e;
  Alcotest.(check int) "stopped after 5" 5 !count

let test_engine_max_events () =
  let e = Engine.create () in
  Engine.every e ~period:1 (fun () -> ());
  Engine.run ~max_events:10 e;
  Alcotest.(check bool) "bounded" true (Engine.events_processed e <= 11)

let test_engine_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:5 (fun () ->
      Alcotest.check_raises "past" (Invalid_argument "Engine.at: time is in the past") (fun () ->
          ignore (Engine.at e ~time:2 (fun () -> ())))));
  Engine.run e

let test_engine_determinism () =
  let run_once () =
    let e = Engine.create ~seed:99L () in
    let rng = Rng.split (Engine.rng e) in
    let acc = ref [] in
    Engine.every e ~period:3 (fun () -> acc := Rng.int rng 1000 :: !acc);
    Engine.run ~until:60 e;
    !acc
  in
  Alcotest.(check (list int)) "same seed same trace" (run_once ()) (run_once ())

let test_engine_cancel_after_fire () =
  (* A handle outlives its event: cancelling after the fire — even once
     the pooled slot has been recycled by a later event — must be a
     no-op thanks to the generation stamp. *)
  let e = Engine.create () in
  let fired_a = ref false and fired_b = ref false in
  let ha = Engine.schedule e ~delay:1 (fun () -> fired_a := true) in
  Engine.run e;
  Alcotest.(check bool) "a fired" true !fired_a;
  ignore (Engine.schedule e ~delay:1 (fun () -> fired_b := true));
  Engine.cancel e ha;
  (* stale: must not kill b's recycled slot *)
  Engine.run e;
  Alcotest.(check bool) "b unaffected by stale cancel" true !fired_b

let test_engine_cancel_middle_fifo () =
  (* Same-cycle FIFO must survive lazy deletion: cancelling events in
     the middle of a cycle leaves the survivors in schedule order. *)
  let e = Engine.create () in
  let log = ref [] in
  let handles =
    List.init 8 (fun i -> Engine.schedule e ~delay:5 (fun () -> log := i :: !log))
  in
  List.iteri (fun i h -> if i mod 2 = 1 then Engine.cancel e h) handles;
  ignore (Engine.schedule e ~delay:5 (fun () -> log := 8 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "survivors in order" [ 0; 2; 4; 6; 8 ] (List.rev !log)

let test_engine_cancel_heavy_purge () =
  (* Push far past the purge threshold (64 corpses, half the queue dead)
     and check the survivors still fire exactly once, in order. *)
  let e = Engine.create () in
  let count = ref 0 and last = ref (-1) in
  let doomed = ref [] in
  for i = 0 to 999 do
    let h =
      Engine.at e ~time:10 (fun () ->
          incr count;
          Alcotest.(check bool) "ascending" true (i > !last);
          last := i)
    in
    if i mod 4 <> 0 then doomed := h :: !doomed
  done;
  List.iter (Engine.cancel e) !doomed;
  Engine.run e;
  Alcotest.(check int) "survivors fired" 250 !count

let test_engine_seq_era_renumber () =
  (* Burn through a full 2^20 sequence era while a cohort of same-time
     events is pending; the renumbering must preserve their firing order
     and their interleaving with events scheduled after the era rolls. *)
  let e = Engine.create () in
  let t_meet = 1_200_000 in
  let log = ref [] in
  for i = 0 to 49 do
    ignore (Engine.at e ~time:t_meet (fun () -> log := i :: !log))
  done;
  (* ~1.05M ticks exhaust the first era mid-run *)
  Engine.every e ~period:1 (fun () -> ());
  Engine.run ~until:1_100_000 e;
  for i = 50 to 99 do
    ignore (Engine.at e ~time:t_meet (fun () -> log := i :: !log))
  done;
  Engine.run ~until:(t_meet + 1) e;
  Alcotest.(check (list int)) "cohort order across era roll" (List.init 100 Fun.id)
    (List.rev !log)

let prop_ipq_model =
  (* The int-keyed heap against the obvious model: a sorted list. Keys
     are made unique by packing the op index into the low bits, exactly
     like the engine packs (time, seq). *)
  QCheck.Test.make ~name:"ipq matches sorted-list model" ~count:200
    QCheck.(list (pair small_nat bool))
    (fun ops ->
      let q = Ipq.create () in
      let model = ref [] in
      let ok = ref true in
      List.iteri
        (fun i (k, pop) ->
          if pop && !model <> [] then begin
            let mk, mv = List.hd !model in
            ok := !ok && Ipq.min_key q = mk && Ipq.min_val q = mv;
            Ipq.remove_min q;
            model := List.tl !model
          end
          else begin
            let key = (k lsl 20) lor i in
            Ipq.add q key i;
            model := List.merge compare [ (key, i) ] !model
          end)
        ops;
      ok := !ok && Ipq.size q = List.length !model;
      (* to_sorted_pairs/reload round-trip (the renumbering path) *)
      let pairs = Ipq.to_sorted_pairs q in
      ok := !ok && Array.to_list pairs = !model;
      Ipq.reload q pairs;
      List.iter
        (fun (mk, mv) ->
          ok := !ok && Ipq.min_key q = mk && Ipq.min_val q = mv;
          Ipq.remove_min q)
        !model;
      !ok && Ipq.is_empty q)

(* --- Metrics --- *)

let test_counter () =
  let c = Metrics.Counter.create "c" in
  Metrics.Counter.incr c;
  Metrics.Counter.incr ~by:4 c;
  Alcotest.(check int) "value" 5 (Metrics.Counter.value c);
  Metrics.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Metrics.Counter.value c)

let test_histogram_stats () =
  let h = Metrics.Histogram.create "h" in
  List.iter (Metrics.Histogram.add h) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check int) "count" 5 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Metrics.Histogram.mean h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Metrics.Histogram.min h);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Metrics.Histogram.max h);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.0) (Metrics.Histogram.stddev h)

let test_histogram_percentile () =
  let h = Metrics.Histogram.create "h" in
  for i = 1 to 100 do
    Metrics.Histogram.add h (float_of_int i)
  done;
  Alcotest.(check (float 1.0)) "p50" 50.0 (Metrics.Histogram.percentile h 50.0);
  Alcotest.(check (float 1.0)) "p99" 99.0 (Metrics.Histogram.percentile h 99.0);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Metrics.Histogram.percentile h 0.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Metrics.Histogram.percentile h 100.0)

let test_percentile_small_n () =
  (* The regression the nearest-rank fix pins down: with two samples, p50
     is the FIRST sample (half the mass is at or below it) — the old
     round (p/100 x (n-1)) definition returned the max. *)
  let h = Metrics.Histogram.create "h" in
  Metrics.Histogram.add h 1.0;
  Metrics.Histogram.add h 2.0;
  Alcotest.(check (float 1e-9)) "p50 of 2 samples" 1.0 (Metrics.Histogram.percentile h 50.0);
  Alcotest.(check (float 1e-9)) "p51 of 2 samples" 2.0 (Metrics.Histogram.percentile h 51.0);
  let one = Metrics.Histogram.create "one" in
  Metrics.Histogram.add one 7.0;
  Alcotest.(check (float 1e-9)) "p0 of 1 sample" 7.0 (Metrics.Histogram.percentile one 0.0);
  Alcotest.(check (float 1e-9)) "p99 of 1 sample" 7.0 (Metrics.Histogram.percentile one 99.0)

let prop_percentile_oracle =
  (* Nearest-rank reference oracle on a sorted array: the smallest sample
     with at least p% of the mass at or below it. *)
  QCheck.Test.make ~name:"percentile matches nearest-rank oracle" ~count:500
    QCheck.(pair (list_of_size Gen.(1 -- 40) (float_bound_inclusive 1000.0)) (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let h = Metrics.Histogram.create "h" in
      List.iter (Metrics.Histogram.add h) xs;
      let sorted = Array.of_list xs in
      Array.sort Float.compare sorted;
      let n = Array.length sorted in
      let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1 in
      let rank = Stdlib.max 0 (Stdlib.min (n - 1) rank) in
      Float.equal (Metrics.Histogram.percentile h p) sorted.(rank))

let test_histogram_empty () =
  let h = Metrics.Histogram.create "h" in
  Alcotest.(check (float 0.0)) "mean empty" 0.0 (Metrics.Histogram.mean h);
  Alcotest.(check (float 0.0)) "percentile empty" 0.0 (Metrics.Histogram.percentile h 50.0)

let test_series () =
  let s = Metrics.Series.create "s" in
  Metrics.Series.add s ~time:1 1.5;
  Metrics.Series.add s ~time:2 2.5;
  Alcotest.(check int) "length" 2 (Metrics.Series.length s);
  Alcotest.(check (list (pair int (float 1e-9)))) "order" [ (1, 1.5); (2, 2.5) ] (Metrics.Series.to_list s);
  (match Metrics.Series.last s with
   | Some (t, v) ->
     Alcotest.(check int) "last time" 2 t;
     Alcotest.(check (float 1e-9)) "last value" 2.5 v
   | None -> Alcotest.fail "expected last")

(* --- Trace --- *)

let test_trace_levels () =
  let t = Trace.create ~min_level:Trace.Warn () in
  Trace.emit t ~time:1 Trace.Info ~component:"x" (fun () -> "dropped");
  Trace.emit t ~time:2 Trace.Error ~component:"x" (fun () -> "kept");
  Alcotest.(check int) "only warn+" 1 (List.length (Trace.entries t))

let test_trace_ring () =
  let t = Trace.create ~capacity:4 ~min_level:Trace.Debug () in
  for i = 1 to 10 do
    Trace.emit t ~time:i Trace.Info ~component:"c" (fun () -> string_of_int i)
  done;
  let kept = Trace.entries t in
  Alcotest.(check int) "capacity respected" 4 (List.length kept);
  Alcotest.(check (list string)) "last four kept" [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Trace.message) kept);
  Alcotest.(check int) "total counted" 10 (Trace.count t)

let test_trace_lazy () =
  let t = Trace.create ~min_level:Trace.Error () in
  let evaluated = ref false in
  Trace.emit t ~time:0 Trace.Debug ~component:"c" (fun () ->
      evaluated := true;
      "x");
  Alcotest.(check bool) "message not built when filtered" false !evaluated

let test_trace_find () =
  let t = Trace.create () in
  Trace.emit t ~time:3 Trace.Info ~component:"noc" (fun () -> "hop");
  Trace.emit t ~time:4 Trace.Warn ~component:"pbft" (fun () -> "view change");
  match Trace.find t (fun e -> e.Trace.component = "pbft") with
  | Some e -> Alcotest.(check int) "found" 4 e.Trace.time
  | None -> Alcotest.fail "expected entry"

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "resoc_des"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "peek stable" `Quick test_heap_peek_stable;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          Alcotest.test_case "pop releases payloads" `Quick test_heap_pop_releases;
        ] );
      qsuite "heap-prop" [ prop_heap_sorts; prop_ipq_model ];
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects non-positive" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
          Alcotest.test_case "bernoulli rate" `Slow test_bernoulli_rate;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "poisson mean" `Slow test_poisson_mean;
          Alcotest.test_case "weibull positive" `Quick test_weibull_positive;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "geometric mean" `Slow test_geometric_mean;
          Alcotest.test_case "geometric endpoints" `Quick test_geometric_endpoints;
          Alcotest.test_case "poisson endpoints" `Quick test_poisson_endpoints;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "fifo same cycle" `Quick test_engine_fifo_same_cycle;
          Alcotest.test_case "now advances" `Quick test_engine_now_advances;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "until + resume" `Quick test_engine_until;
          Alcotest.test_case "every" `Quick test_engine_every;
          Alcotest.test_case "stop" `Quick test_engine_stop;
          Alcotest.test_case "max events" `Quick test_engine_max_events;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
          Alcotest.test_case "cancel after fire" `Quick test_engine_cancel_after_fire;
          Alcotest.test_case "cancel middle fifo" `Quick test_engine_cancel_middle_fifo;
          Alcotest.test_case "cancel heavy purge" `Quick test_engine_cancel_heavy_purge;
          Alcotest.test_case "seq era renumber" `Slow test_engine_seq_era_renumber;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "histogram stats" `Quick test_histogram_stats;
          Alcotest.test_case "histogram percentile" `Quick test_histogram_percentile;
          Alcotest.test_case "percentile small n" `Quick test_percentile_small_n;
          Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
          Alcotest.test_case "series" `Quick test_series;
        ] );
      qsuite "metrics-prop" [ prop_percentile_oracle ];
      ( "trace",
        [
          Alcotest.test_case "levels" `Quick test_trace_levels;
          Alcotest.test_case "ring buffer" `Quick test_trace_ring;
          Alcotest.test_case "lazy formatting" `Quick test_trace_lazy;
          Alcotest.test_case "find" `Quick test_trace_find;
        ] );
    ]
