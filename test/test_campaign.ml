(* Tests for the resoc_campaign Monte-Carlo campaign runner: Student-t /
   Wilson statistics against known references, seed-tree consistency with
   Rng.split, per-replicate failure capture, and the central determinism
   property — aggregates are bit-identical regardless of worker count. *)

module Campaign = Resoc_campaign.Campaign
module Stats = Resoc_campaign.Stats
module Seed_tree = Resoc_campaign.Seed_tree
module Pool = Resoc_campaign.Pool
module Emit = Resoc_campaign.Emit
module Rng = Resoc_des.Rng

let feq ?(eps = 1e-3) a b = Float.abs (a -. b) <= eps

let check_feq ?eps msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %g, got %g" msg expected actual)
    true (feq ?eps expected actual)

(* --- Stats ------------------------------------------------------------ *)

let test_t95 () =
  check_feq "t95 df=1" 12.706 (Stats.t95 ~df:1);
  check_feq "t95 df=2" 4.303 (Stats.t95 ~df:2);
  check_feq "t95 df=5" 2.571 (Stats.t95 ~df:5);
  check_feq "t95 df=10" 2.228 (Stats.t95 ~df:10);
  check_feq "t95 df=15" 2.131 (Stats.t95 ~df:15);
  check_feq "t95 df=30" 2.042 (Stats.t95 ~df:30);
  check_feq "t95 df=1000" 1.960 (Stats.t95 ~df:1000);
  Alcotest.check_raises "t95 df=0" (Invalid_argument "Stats.t95: df must be positive")
    (fun () -> ignore (Stats.t95 ~df:0))

let test_summarize () =
  let s = Stats.summarize [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check int) "n" 8 s.Stats.n;
  check_feq "mean" 5.0 s.Stats.mean;
  check_feq "stddev" 2.13809 s.Stats.stddev;
  check_feq "min" 2.0 s.Stats.min;
  check_feq "max" 9.0 s.Stats.max;
  (* t95(7) * stddev / sqrt 8 = 2.365 * 2.13809 / 2.82843 *)
  check_feq "ci95" 1.78787 s.Stats.ci95;
  let single = Stats.summarize [| 3.5 |] in
  Alcotest.(check int) "n=1" 1 single.Stats.n;
  check_feq "n=1 ci95" 0.0 single.Stats.ci95;
  Alcotest.(check int) "empty n" 0 (Stats.summarize [||]).Stats.n

let test_wilson () =
  let f = Stats.survival (Array.init 10 (fun i -> i < 5)) in
  Alcotest.(check int) "successes" 5 f.Stats.successes;
  check_feq "fraction" 0.5 f.Stats.fraction;
  check_feq "wilson 5/10 lo" 0.2366 f.Stats.lo;
  check_feq "wilson 5/10 hi" 0.7634 f.Stats.hi;
  let none = Stats.survival (Array.make 10 false) in
  check_feq "wilson 0/10 lo" 0.0 none.Stats.lo;
  check_feq "wilson 0/10 hi" 0.2775 none.Stats.hi;
  let all = Stats.survival (Array.make 10 true) in
  check_feq "wilson 10/10 lo" 0.7225 all.Stats.lo;
  check_feq "wilson 10/10 hi" 1.0 all.Stats.hi

(* --- Seed tree -------------------------------------------------------- *)

let test_derive_matches_split () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:50 ~name:"Rng.derive = repeated split"
       QCheck.(pair int64 (int_bound 20))
       (fun (seed, index) ->
         let parent = Rng.create seed in
         let child = ref (Rng.split parent) in
         for _ = 1 to index do
           child := Rng.split parent
         done;
         let derived = Rng.create (Rng.derive seed index) in
         List.for_all
           (fun _ -> Rng.int64 !child = Rng.int64 derived)
           [ (); (); (); (); () ]))

let test_seed_tree_distinct () =
  let seen = Hashtbl.create 64 in
  for cell = 0 to 7 do
    Array.iter
      (fun seed ->
        Alcotest.(check bool)
          (Printf.sprintf "duplicate seed %Ld" seed)
          false (Hashtbl.mem seen seed);
        Hashtbl.add seen seed ())
      (Seed_tree.replicate_seeds ~root:0x5EEDL ~cell ~n:8)
  done

(* --- Campaign running ------------------------------------------------- *)

(* A deterministic stand-in simulation: a few hundred draws from the
   replicate's rng, aggregated into metrics. *)
let toy_cell id =
  Campaign.cell id (fun ~seed ->
      let rng = Rng.create seed in
      let sum = ref 0.0 and hits = ref 0 in
      for _ = 1 to 200 do
        let v = Rng.float rng 1.0 in
        sum := !sum +. v;
        if v > 0.8 then incr hits
      done;
      [
        ("sum", !sum);
        ("hits", float_of_int !hits);
        ("survived", (if !hits > 30 then 1.0 else 0.0));
      ])

let strip (result : Campaign.result) =
  List.map
    (fun (agg : Campaign.aggregate) ->
      (agg.Campaign.cell_id, Array.to_list agg.Campaign.seeds, Array.to_list agg.Campaign.trials))
    result.Campaign.cells

let run_toy ~root_seed ~replicates ~jobs =
  Campaign.run
    ~config:{ Campaign.default_config with root_seed; replicates; jobs }
    ~id:"toy" ~title:"toy campaign"
    [ toy_cell "a"; toy_cell "b"; toy_cell "c" ]

let test_determinism_across_jobs () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:10 ~name:"same aggregates for 1, 2 and 4 domains"
       QCheck.(pair int64 (int_range 1 6))
       (fun (root_seed, replicates) ->
         let reference = strip (run_toy ~root_seed ~replicates ~jobs:1) in
         List.for_all
           (fun jobs -> strip (run_toy ~root_seed ~replicates ~jobs) = reference)
           [ 2; 4 ]))

(* Byte-identical emitted JSON across worker counts. *)
let test_json_across_jobs () =
  let dir = Filename.temp_file "campaign" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let read path = In_channel.with_open_bin path In_channel.input_all in
  let emit jobs =
    let result = run_toy ~root_seed:99L ~replicates:8 ~jobs in
    let path = Emit.json_file ~dir result in
    let csv = Emit.csv_file ~dir result in
    (read path, read csv)
  in
  let j1, c1 = emit 1 in
  let j4, c4 = emit 4 in
  Alcotest.(check string) "json identical across jobs" j1 j4;
  Alcotest.(check string) "csv identical across jobs" c1 c4;
  Alcotest.(check bool) "json non-trivial" true (String.length j1 > 100)

let test_failure_capture () =
  let bad =
    Campaign.cell "bad" (fun ~seed ->
        if Int64.rem seed 2L = 0L then failwith "replicate exploded";
        [ ("ok", 1.0) ])
  in
  let good = toy_cell "good" in
  let result =
    Campaign.run
      ~config:{ Campaign.default_config with root_seed = 0x5EEDL; replicates = 12; jobs = 3 }
      ~id:"fail" ~title:"failure capture" [ bad; good ]
  in
  match result.Campaign.cells with
  | [ bad_agg; good_agg ] ->
    Alcotest.(check int) "good cell has no failures" 0 (Campaign.failures good_agg);
    let failures = Campaign.failures bad_agg in
    Alcotest.(check bool) "some replicates failed" true (failures > 0);
    Alcotest.(check bool) "not all replicates failed" true (failures < 12);
    let ok = Campaign.metric bad_agg "ok" in
    Alcotest.(check int) "completed trials still aggregated" (12 - failures) ok.Stats.n;
    Array.iter
      (function
        | Campaign.Failed f ->
          Alcotest.(check bool) "failure message captured" true
            (String.length f.Pool.error > 0
            && String.length f.Pool.error >= String.length "replicate exploded")
        | Campaign.Completed _ -> ())
      bad_agg.Campaign.trials
  | _ -> Alcotest.fail "expected two cells"

let test_pool_order () =
  let results = Pool.map ~jobs:4 100 (fun i -> i * i) in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) "slot order" (i * i) v
      | Error _ -> Alcotest.fail "unexpected failure")
    results

let () =
  Alcotest.run "campaign"
    [
      ( "stats",
        [
          Alcotest.test_case "student-t table" `Quick test_t95;
          Alcotest.test_case "summarize reference data" `Quick test_summarize;
          Alcotest.test_case "wilson interval references" `Quick test_wilson;
        ] );
      ( "seed-tree",
        [
          Alcotest.test_case "derive matches repeated split" `Quick test_derive_matches_split;
          Alcotest.test_case "leaf seeds distinct" `Quick test_seed_tree_distinct;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "determinism across worker counts" `Quick
            test_determinism_across_jobs;
          Alcotest.test_case "emitted files identical across jobs" `Quick test_json_across_jobs;
          Alcotest.test_case "failing replicate is recorded, not fatal" `Quick
            test_failure_capture;
          Alcotest.test_case "pool preserves index order" `Quick test_pool_order;
        ] );
    ]
