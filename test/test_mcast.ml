(* Model tests for tree-based NoC multicast: the delivery set equals the
   BFS-connected destination set (and the Adaptive unicast reference)
   under random fault scripts in all three routing modes, no destination
   is ever served twice (including duplicate entries in [dsts]), the two
   multicast invariants hold on checked traffic and demonstrably fire
   under their mutation knobs, protocol broadcasts over an end-to-end SoC
   reach agreement identically in both modes, and a multicast campaign
   aggregates bit-identically across worker counts. *)

open Resoc_noc
module Engine = Resoc_des.Engine
module Rng = Resoc_des.Rng
module Check = Resoc_check.Check
module Inject = Resoc_check.Inject
module Link_fault = Resoc_fault.Link_fault
module Campaign = Resoc_campaign.Campaign
module Group = Resoc_core.Group
module Soc = Resoc_core.Soc
module Generator = Resoc_workload.Generator

let with_check f =
  Fun.protect
    ~finally:(fun () ->
      Check.disable ();
      Inject.stop ();
      Check.begin_replicate ();
      Inject.begin_replicate ();
      Network.test_mcast_skip_branch := false;
      Network.test_mcast_dup_deliver := false)
    (fun () ->
      Check.enable ();
      Inject.record ();
      Check.begin_replicate ();
      Inject.begin_replicate ();
      f ())

(* Reference connectivity: plain BFS over the surviving topology, written
   against the mesh API only (no shared code with Mcast). *)
let ref_reachable mesh ~src ~dst =
  if not (Mesh.router_up mesh src && Mesh.router_up mesh dst) then false
  else begin
    let seen = Array.make (Mesh.n_nodes mesh) false in
    let q = Queue.create () in
    seen.(src) <- true;
    Queue.push src q;
    let found = ref false in
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      if u = dst then found := true;
      List.iter
        (fun v ->
          if (not seen.(v)) && Mesh.router_up mesh v && Mesh.link_up mesh { Mesh.src = u; dst = v }
          then begin
            seen.(v) <- true;
            Queue.push v q
          end)
        (Mesh.neighbors mesh u)
    done;
    !found
  end

let apply_ops mesh ops =
  let links = Mesh.real_link_ids mesh in
  List.iter
    (fun (op, x) ->
      match op mod 4 with
      | 0 -> Mesh.fail_link mesh (Mesh.link_of_id mesh links.(x mod Array.length links))
      | 1 -> Mesh.repair_link mesh (Mesh.link_of_id mesh links.(x mod Array.length links))
      | 2 -> Mesh.fail_router mesh (x mod Mesh.n_nodes mesh)
      | _ -> Mesh.repair_router mesh (x mod Mesh.n_nodes mesh))
    ops

let ops_gen = QCheck.(list_of_size (Gen.int_range 0 30) (pair (int_bound 3) small_nat))

let all_routings = [ Network.Xy; Network.Xy_with_yx_fallback; Network.Adaptive ]

let mcast_config routing = { Network.default_config with routing; multicast = true }

(* Every node multicasts its id to all the others; returns the set of
   (origin, receiver) pairs that arrived, with per-pair delivery counts. *)
let run_all_to_all_mcast mesh routing =
  let engine = Engine.create () in
  let net = Network.create engine mesh (mcast_config routing) in
  let n = Mesh.n_nodes mesh in
  let got = Hashtbl.create 64 in
  for node = 0 to n - 1 do
    Network.attach net ~node (fun ~src:_ origin ->
        let key = (origin, node) in
        Hashtbl.replace got key (1 + Option.value ~default:0 (Hashtbl.find_opt got key)))
  done;
  for src = 0 to n - 1 do
    let dsts = Array.init (n - 1) (fun i -> if i < src then i else i + 1) in
    Network.multicast net ~src ~dsts ~bytes_:16 src
  done;
  Engine.run engine;
  got

(* The multicast delivery set is exactly the BFS-connected pairs, in every
   routing mode: trees are built over the surviving topology regardless of
   how unicasts route. *)
let prop_mcast_delivers_connected =
  QCheck.Test.make ~name:"multicast delivers exactly the BFS-connected pairs" ~count:40 ops_gen
    (fun ops ->
      List.for_all
        (fun routing ->
          let mesh = Mesh.create ~width:4 ~height:4 in
          apply_ops mesh ops;
          let got = run_all_to_all_mcast mesh routing in
          let ok = ref true in
          let n = Mesh.n_nodes mesh in
          for src = 0 to n - 1 do
            for dst = 0 to n - 1 do
              if src <> dst then begin
                let expect = ref_reachable mesh ~src ~dst in
                if Hashtbl.mem got (src, dst) <> expect then ok := false
              end
            done
          done;
          !ok)
        all_routings)

(* Delivery-set equivalence against the per-destination unicast reference:
   an Adaptive unicast fan-out on the same surviving topology reaches the
   same receivers as one multicast. *)
let prop_mcast_matches_unicast_reference =
  QCheck.Test.make ~name:"multicast set = adaptive unicast fan-out set" ~count:40 ops_gen
    (fun ops ->
      let uni_mesh = Mesh.create ~width:4 ~height:4 in
      apply_ops uni_mesh ops;
      let engine = Engine.create () in
      let net =
        Network.create engine uni_mesh { Network.default_config with routing = Network.Adaptive }
      in
      let n = Mesh.n_nodes uni_mesh in
      let uni_got = Hashtbl.create 64 in
      for node = 0 to n - 1 do
        Network.attach net ~node (fun ~src origin ->
            ignore src;
            Hashtbl.replace uni_got (origin, node) ())
      done;
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if src <> dst then Network.send net ~src ~dst ~bytes_:16 src
        done
      done;
      Engine.run engine;
      List.for_all
        (fun routing ->
          let mesh = Mesh.create ~width:4 ~height:4 in
          apply_ops mesh ops;
          let got = run_all_to_all_mcast mesh routing in
          let ok = ref true in
          for src = 0 to n - 1 do
            for dst = 0 to n - 1 do
              if src <> dst && Hashtbl.mem got (src, dst) <> Hashtbl.mem uni_got (src, dst) then
                ok := false
            done
          done;
          !ok)
        all_routings)

(* No receiver is ever served twice — even when [dsts] lists it twice and
   even when the origin addresses itself. *)
let prop_duplicate_free =
  QCheck.Test.make ~name:"multicast never delivers twice" ~count:40 ops_gen
    (fun ops ->
      let mesh = Mesh.create ~width:4 ~height:4 in
      apply_ops mesh ops;
      let engine = Engine.create () in
      let net = Network.create engine mesh (mcast_config Network.Adaptive) in
      let n = Mesh.n_nodes mesh in
      let got = Hashtbl.create 64 in
      for node = 0 to n - 1 do
        Network.attach net ~node (fun ~src:_ origin ->
            let key = (origin, node) in
            Hashtbl.replace got key (1 + Option.value ~default:0 (Hashtbl.find_opt got key)))
      done;
      for src = 0 to n - 1 do
        (* Every destination (including the origin itself) listed twice. *)
        let dsts = Array.init (2 * n) (fun i -> i mod n) in
        Network.multicast net ~src ~dsts ~bytes_:16 src
      done;
      Engine.run engine;
      Hashtbl.fold (fun _ count ok -> ok && count = 1) got true)

(* The checker's multicast invariants hold on real traffic over random
   topologies, and the hooks demonstrably observed it. *)
let prop_checked_clean =
  QCheck.Test.make ~name:"multicast passes the checker invariants" ~count:30 ops_gen
    (fun ops ->
      with_check (fun () ->
          let mesh = Mesh.create ~width:4 ~height:4 in
          apply_ops mesh ops;
          ignore (run_all_to_all_mcast mesh Network.Adaptive);
          Check.hooks_fired () > 0))

(* --- Mutation knobs: each multicast invariant must fire when its
   property is deliberately broken (DESIGN.md section 7 discipline). --- *)

let fires f = match f () with () -> false | exception Check.Violation _ -> true

let test_knob_skip_branch () =
  with_check (fun () ->
      Network.test_mcast_skip_branch := true;
      Alcotest.(check bool) "pruned branch fires the delivery-set invariant" true
        (fires (fun () ->
             let engine = Engine.create () in
             let mesh = Mesh.create ~width:3 ~height:1 in
             let net = Network.create engine mesh (mcast_config Network.Xy) in
             Network.attach net ~node:0 (fun ~src:_ _ -> ());
             Network.attach net ~node:2 (fun ~src:_ _ -> ());
             (* The tree forks at node 1: west to 0, east to 2; the knob
                silently prunes the highest direction. *)
             Network.multicast net ~src:1 ~dsts:[| 0; 2 |] ~bytes_:16 ();
             Engine.run engine)))

let test_knob_dup_deliver () =
  with_check (fun () ->
      Network.test_mcast_dup_deliver := true;
      Alcotest.(check bool) "double delivery fires the duplicate invariant" true
        (fires (fun () ->
             let engine = Engine.create () in
             let mesh = Mesh.create ~width:3 ~height:1 in
             let net = Network.create engine mesh (mcast_config Network.Xy) in
             Network.attach net ~node:2 (fun ~src:_ _ -> ());
             Network.multicast net ~src:0 ~dsts:[| 2 |] ~bytes_:16 ();
             Engine.run engine)))

(* --- End-to-end: a PBFT group on a mesh SoC completes the same requests
   with protocol fan-outs on trees as on unicast, with the checker on. --- *)

let soc_burst ~multicast =
  let soc =
    Soc.create
      {
        Soc.default_config with
        mesh_width = 4;
        mesh_height = 4;
        seed = 99L;
        noc = { Network.default_config with multicast };
      }
  in
  let spec = { Group.default_spec with kind = `Pbft; f = 1; n_clients = 2; multicast } in
  let group = Group.build (Soc.engine soc) (Group.On_soc soc) spec in
  Generator.burst ~n_per_client:5 ~n_clients:2 ~submit:group.Group.submit;
  Engine.run ~until:2_000_000 (Soc.engine soc);
  let s = group.Group.stats () in
  (s.Resoc_repl.Stats.submitted, s.Resoc_repl.Stats.completed)

let test_protocol_broadcast_equivalent () =
  with_check (fun () ->
      let submitted_m, completed_m = soc_burst ~multicast:true in
      Check.begin_replicate ();
      Inject.begin_replicate ();
      let submitted_u, completed_u = soc_burst ~multicast:false in
      Alcotest.(check int) "same submissions" submitted_u submitted_m;
      Alcotest.(check int) "same completions" completed_u completed_m;
      Alcotest.(check bool) "requests actually completed" true (completed_m = 10))

(* --- Campaign determinism: one multicast replicate under a live link
   campaign, run with 1 worker and with 2 — every aggregate (delivery
   counts, tree builds, BFS visits) must be identical. --- *)

let campaign_replicate ~seed =
  let engine = Engine.create ~seed () in
  let traffic = Rng.split (Engine.rng engine) in
  let mesh = Mesh.create ~width:4 ~height:4 in
  let net = Network.create engine mesh (mcast_config Network.Adaptive) in
  for node = 0 to 15 do
    Network.attach net ~node (fun ~src:_ _ -> ())
  done;
  let lf =
    Link_fault.start engine
      (Rng.split (Engine.rng engine))
      mesh
      {
        Link_fault.upset_rate = 1e-4;
        upset_repair_mean = 300.0;
        wearout_shape = 2.0;
        wearout_scale = 30_000.0;
      }
  in
  let dsts = Array.make 4 0 in
  Engine.every engine ~period:50 (fun () ->
      let src = Rng.int traffic 16 in
      for i = 0 to 3 do
        dsts.(i) <- Rng.int traffic 16
      done;
      Network.multicast net ~src ~dsts ~bytes_:16 ());
  Engine.run ~until:20_000 engine;
  Link_fault.halt lf;
  [
    ("sent", float_of_int (Network.sent net));
    ("delivered", float_of_int (Network.delivered net));
    ("builds", float_of_int (Network.mcast_tree_builds net));
    ("visits", float_of_int (Network.mcast_tree_visits net));
    ("upsets", float_of_int (Link_fault.upsets lf));
  ]

let test_campaign_deterministic_across_jobs () =
  let run jobs =
    let config =
      {
        Campaign.root_seed = 0x3CA57L;
        replicates = 4;
        jobs;
        progress = false;
        check = false;
        shrink = false;
        fail_dir = None;
      }
    in
    let cells = [ Campaign.cell "mcast" (fun ~seed -> campaign_replicate ~seed) ] in
    let result = Campaign.run ~config ~id:"tst" ~title:"multicast determinism" cells in
    List.map
      (fun agg ->
        List.map
          (fun m -> (m, (Campaign.metric agg m).Resoc_campaign.Stats.mean))
          [ "sent"; "delivered"; "builds"; "visits"; "upsets" ])
      result.Campaign.cells
  in
  let j1 = run 1 and j2 = run 2 in
  Alcotest.(check bool) "jobs 1 = jobs 2" true (j1 = j2);
  Alcotest.(check bool) "trees were actually (re)built" true
    (List.exists (fun cell -> List.assoc "builds" cell > 0.0) j1)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "resoc_mcast"
    [
      qsuite "model"
        [
          prop_mcast_delivers_connected;
          prop_mcast_matches_unicast_reference;
          prop_duplicate_free;
          prop_checked_clean;
        ];
      ( "mutants",
        [
          Alcotest.test_case "skip-branch fires" `Quick test_knob_skip_branch;
          Alcotest.test_case "dup-deliver fires" `Quick test_knob_dup_deliver;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "protocol broadcasts equivalent" `Quick
            test_protocol_broadcast_equivalent;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "campaign stable across jobs" `Quick
            test_campaign_deterministic_across_jobs;
        ] );
    ]
