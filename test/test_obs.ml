(* Tests for the resoc_obs observability layer: registry semantics, ring
   wraparound, span phases, Chrome trace_event JSON well-formedness, the
   end-to-end wiring through engine/NoC/replication, and the determinism
   property that enabling tracing never changes a MinBFT run. *)

open Resoc_obs
module Engine = Resoc_des.Engine
module Mesh = Resoc_noc.Mesh
module Network = Resoc_noc.Network
module Transport = Resoc_repl.Transport
module Minbft = Resoc_repl.Minbft
module Stats = Resoc_repl.Stats

(* Flags are global; every test that touches them restores the disabled
   state so suites cannot contaminate one another. *)
let with_flags ~metrics ~trace f =
  Fun.protect ~finally:Obs.disable (fun () ->
      Obs.disable ();
      Obs.begin_replicate ();
      if metrics then Obs.enable_metrics ();
      if trace then Obs.enable_tracing ~capacity:65536 ();
      f ())

let scalars reg =
  let acc = ref [] in
  Registry.iter_scalars reg (fun name ~gauge:_ v -> acc := (name, v) :: !acc);
  List.rev !acc

(* --- Registry ---------------------------------------------------------- *)

let test_counter_gauge () =
  let r = Registry.create () in
  let c = Registry.counter r "a.count" in
  let g = Registry.gauge r "a.gauge" in
  Registry.incr r c;
  Registry.incr r c;
  Registry.add r c 3;
  Registry.set r g 7;
  Registry.set r g 5;
  Alcotest.(check int) "counter accumulates" 5 (Registry.get r c);
  Alcotest.(check int) "gauge overwrites" 5 (Registry.get r g);
  Alcotest.(check int) "re-registration returns the same cell" c (Registry.counter r "a.count");
  Alcotest.(check int) "two metrics" 2 (Registry.n_metrics r);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Registry: \"a.count\" re-registered with a different kind") (fun () ->
      ignore (Registry.gauge r "a.count"))

let test_counter_block () =
  let r = Registry.create () in
  let base = Registry.counter_block r ~n:4 ~name:(fun i -> "link." ^ string_of_int i) in
  Registry.incr r (base + 2);
  Registry.incr r (base + 2);
  Registry.incr r (base + 3);
  Alcotest.(check int) "dense ids index their counter" 2 (Registry.get r (base + 2));
  Alcotest.(check int) "four registered" 4 (Registry.n_metrics r);
  Alcotest.(check int) "idempotent on name 0" base
    (Registry.counter_block r ~n:4 ~name:(fun i -> "link." ^ string_of_int i));
  Alcotest.(check int) "still four" 4 (Registry.n_metrics r)

let test_histogram () =
  let r = Registry.create () in
  let h = Registry.histogram r "lat" ~bounds:[| 10; 20; 40 |] in
  List.iter (Registry.observe r h) [ 5; 10; 11; 39; 100 ];
  Alcotest.(check int) "bucket <=10" 2 (Registry.hist_bucket r h 0);
  Alcotest.(check int) "bucket <=20" 1 (Registry.hist_bucket r h 1);
  Alcotest.(check int) "bucket <=40" 1 (Registry.hist_bucket r h 2);
  Alcotest.(check int) "overflow bucket" 1 (Registry.hist_bucket r h 3);
  Alcotest.(check int) "count" 5 (Registry.hist_count r h);
  Alcotest.(check int) "sum" 165 (Registry.hist_sum r h);
  Registry.reset r;
  Alcotest.(check int) "reset zeroes counts" 0 (Registry.hist_count r h);
  Alcotest.(check int) "registrations survive reset" 1 (Registry.n_metrics r);
  Alcotest.check_raises "bounds must increase"
    (Invalid_argument "Registry.histogram: bounds must be strictly increasing") (fun () ->
      ignore (Registry.histogram r "bad" ~bounds:[| 3; 3 |]))

let test_iter_scalars () =
  let r = Registry.create () in
  let c = Registry.counter r "c" in
  let h = Registry.histogram r "h" ~bounds:[| 1; 2 |] in
  let g = Registry.gauge r "g" in
  Registry.incr r c;
  Registry.observe r h 2;
  Registry.set r g 9;
  Alcotest.(check (list (pair string int)))
    "flattened in registration order"
    [ ("c", 1); ("h.count", 1); ("h.sum", 2); ("g", 9) ]
    (scalars r)

(* --- a tiny validating JSON parser ------------------------------------- *)

exception Bad_json

let json_check s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise Bad_json in
  let adv () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c = if peek () <> c then raise Bad_json else adv () in
  let lit w = String.iter (fun c -> if peek () <> c then raise Bad_json else adv ()) w in
  let string_ () =
    expect '"';
    let rec go () =
      match peek () with
      | '"' -> adv ()
      | '\\' ->
        adv ();
        (match peek () with
        | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' ->
          adv ();
          go ()
        | 'u' ->
          adv ();
          for _ = 1 to 4 do
            match peek () with
            | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> adv ()
            | _ -> raise Bad_json
          done;
          go ()
        | _ -> raise Bad_json)
      | c when Char.code c < 0x20 -> raise Bad_json
      | _ ->
        adv ();
        go ()
    in
    go ()
  in
  let number () =
    if peek () = '-' then adv ();
    let digits () =
      (match peek () with '0' .. '9' -> adv () | _ -> raise Bad_json);
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        incr pos
      done
    in
    digits ();
    if !pos < n && s.[!pos] = '.' then begin
      adv ();
      digits ()
    end;
    if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
      adv ();
      if peek () = '+' || peek () = '-' then adv ();
      digits ()
    end
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
      adv ();
      skip_ws ();
      if peek () = '}' then adv ()
      else
        let rec members () =
          skip_ws ();
          string_ ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          if peek () = ',' then begin
            adv ();
            members ()
          end
          else expect '}'
        in
        members ()
    | '[' ->
      adv ();
      skip_ws ();
      if peek () = ']' then adv ()
      else
        let rec elems () =
          value ();
          skip_ws ();
          if peek () = ',' then begin
            adv ();
            elems ()
          end
          else expect ']'
        in
        elems ()
    | '"' -> string_ ()
    | 't' -> lit "true"
    | 'f' -> lit "false"
    | 'n' -> lit "null"
    | '-' | '0' .. '9' -> number ()
    | _ -> raise Bad_json
  in
  value ();
  skip_ws ();
  if !pos <> n then raise Bad_json

let json_ok s = match json_check s with () -> true | exception Bad_json -> false

let test_registry_json_csv () =
  let r = Registry.create () in
  Registry.incr r (Registry.counter r "weird \"name\"\nwith,comma");
  ignore (Registry.histogram r "h" ~bounds:[| 1; 2 |]);
  Alcotest.(check bool) "registry JSON parses" true (json_ok (Registry.to_json r));
  let csv = Registry.to_csv r in
  Alcotest.(check bool) "csv header" true
    (String.length csv > 21 && String.sub csv 0 21 = "name,kind,field,value")

(* --- Ring -------------------------------------------------------------- *)

let test_ring_wraparound () =
  let ring = Ring.create ~capacity:4 in
  for i = 0 to 9 do
    Ring.instant ring ~time:i ~cat:0 ~id:i ~arg:(2 * i)
  done;
  Alcotest.(check int) "total" 10 (Ring.total ring);
  Alcotest.(check int) "length" 4 (Ring.length ring);
  Alcotest.(check int) "dropped" 6 (Ring.dropped ring);
  let seen = ref [] in
  Ring.iter ring (fun ~time ~cat:_ ~phase:_ ~id:_ ~arg:_ -> seen := time :: !seen);
  Alcotest.(check (list int)) "oldest-first, newest kept" [ 6; 7; 8; 9 ] (List.rev !seen)

let test_ring_disabled () =
  let ring = Ring.create ~capacity:0 in
  Ring.instant ring ~time:1 ~cat:0 ~id:0 ~arg:0;
  Alcotest.(check int) "capacity 0 records nothing" 0 (Ring.total ring);
  Alcotest.(check int) "length 0" 0 (Ring.length ring)

let test_ring_phases () =
  let ring = Ring.create ~capacity:8 in
  Ring.span_begin ring ~time:0 ~cat:1 ~id:7 ~arg:0;
  Ring.span_end ring ~time:1 ~cat:1 ~id:7 ~arg:0;
  Ring.sample ring ~time:2 ~cat:2 ~id:3 ~arg:42;
  Ring.async_begin ring ~time:3 ~cat:3 ~id:9 ~arg:0;
  Ring.async_end ring ~time:4 ~cat:3 ~id:9 ~arg:0;
  let phases = ref [] in
  Ring.iter ring (fun ~time:_ ~cat:_ ~phase ~id:_ ~arg:_ -> phases := phase :: !phases);
  Alcotest.(check bool) "phases round-trip" true
    (List.rev !phases
    = [ Ring.Span_begin; Ring.Span_end; Ring.Sample; Ring.Async_begin; Ring.Async_end ])

(* --- Chrome export ----------------------------------------------------- *)

let count_substring hay needle =
  let nl = String.length needle in
  let rec go from acc =
    match String.index_from_opt hay from needle.[0] with
    | None -> acc
    | Some i ->
      if i + nl <= String.length hay && String.sub hay i nl = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
  in
  if nl = 0 then 0 else go 0 0

let test_chrome_wellformed () =
  let ring = Ring.create ~capacity:16 in
  Ring.span_begin ring ~time:0 ~cat:0 ~id:1 ~arg:0;
  Ring.span_begin ring ~time:1 ~cat:0 ~id:2 ~arg:0;
  Ring.span_end ring ~time:2 ~cat:0 ~id:2 ~arg:0;
  Ring.span_end ring ~time:3 ~cat:0 ~id:1 ~arg:0;
  Ring.instant ring ~time:4 ~cat:1 ~id:5 ~arg:9;
  Ring.sample ring ~time:5 ~cat:1 ~id:5 ~arg:3;
  Ring.async_begin ring ~time:6 ~cat:2 ~id:8 ~arg:0;
  Ring.async_end ring ~time:7 ~cat:2 ~id:8 ~arg:0;
  let s =
    Chrome.to_string ~rings:[ ring ]
      ~name:(fun ~cat:_ ~id -> Printf.sprintf "ev\"%d\"" id)
      ~cat_label:(fun _ -> "c")
      ()
  in
  Alcotest.(check bool) "Chrome JSON parses (with escaped names)" true (json_ok s);
  Alcotest.(check int) "one event per record" 8 (count_substring s "\"ph\":");
  Alcotest.(check int) "nested spans open" 2 (count_substring s "\"ph\":\"B\"");
  Alcotest.(check int) "nested spans close" 2 (count_substring s "\"ph\":\"E\"");
  Alcotest.(check int) "async pair" 2 (count_substring s "\"id\":\"0x8\"")

(* --- end-to-end wiring ------------------------------------------------- *)

let test_disabled_registers_nothing () =
  with_flags ~metrics:false ~trace:false (fun () ->
      let engine = Engine.create () in
      ignore (Engine.schedule engine ~delay:1 (fun () -> ()));
      Engine.run engine;
      Alcotest.(check int) "no instruments when disabled" 0
        (Registry.n_metrics (Engine.obs engine).Obs.metrics);
      Alcotest.(check int) "no ring when disabled" 0 (Ring.total (Engine.obs engine).Obs.ring))

let test_engine_metrics () =
  with_flags ~metrics:true ~trace:false (fun () ->
      let engine = Engine.create () in
      let h = ref None in
      ignore (Engine.schedule engine ~delay:1 (fun () -> ()));
      h := Some (Engine.schedule engine ~delay:2 (fun () -> ()));
      ignore (Engine.schedule engine ~delay:3 (fun () -> ()));
      (match !h with Some h -> Engine.cancel engine h | None -> ());
      Engine.run engine;
      let m = scalars (Engine.obs engine).Obs.metrics in
      Alcotest.(check (option int)) "events fired" (Some 2) (List.assoc_opt "des.events_fired" m);
      Alcotest.(check (option int)) "events cancelled" (Some 1)
        (List.assoc_opt "des.events_cancelled" m))

let test_noc_metrics () =
  with_flags ~metrics:true ~trace:false (fun () ->
      let engine = Engine.create () in
      let mesh = Mesh.create ~width:3 ~height:3 in
      let net = Network.create engine mesh Network.default_config in
      Network.attach net ~node:8 (fun ~src:_ _ -> ());
      for _ = 1 to 5 do
        Network.send net ~src:0 ~dst:8 ~bytes_:32 ()
      done;
      Engine.run engine;
      let m = scalars (Engine.obs engine).Obs.metrics in
      Alcotest.(check (option int)) "delivered" (Some 5) (List.assoc_opt "noc.delivered" m);
      Alcotest.(check (option int)) "latency samples" (Some 5)
        (List.assoc_opt "noc.latency.count" m);
      let link_hops =
        List.fold_left
          (fun acc (name, v) ->
            if String.length name > 9 && String.sub name 0 9 = "noc.link." then acc + v else acc)
          0 m
      in
      (* 5 unicasts over 4 hops each *)
      Alcotest.(check int) "per-link utilization sums to hops" 20 link_hops)

let run_minbft ~seed ~count =
  let engine = Engine.create ~seed () in
  let config = { Minbft.default_config with n_clients = 1 } in
  let n = Minbft.n_replicas config in
  let fabric = Transport.hub engine ~n:(n + 1) () in
  let sys = Minbft.start engine fabric config () in
  for i = 1 to count do
    Minbft.submit sys ~client:0 ~payload:(Int64.of_int i)
  done;
  Engine.run ~until:200_000 engine;
  (engine, sys, n)

let minbft_fingerprint ~seed ~count =
  let engine, sys, n = run_minbft ~seed ~count in
  let s = Minbft.stats sys in
  ( s.Stats.completed,
    Engine.events_processed engine,
    List.init n (fun r -> Minbft.replica_state sys ~replica:r) )

let test_minbft_replicate_metrics () =
  with_flags ~metrics:true ~trace:false (fun () ->
      let _engine, sys, _n = run_minbft ~seed:7L ~count:4 in
      Alcotest.(check int) "requests completed" 4 (Minbft.stats sys).Stats.completed;
      let m = Obs.replicate_metrics () in
      let get name = List.assoc_opt name m in
      Alcotest.(check bool) "obs.des.events_fired > 0" true
        (match get "obs.des.events_fired" with Some v -> v > 0.0 | None -> false);
      Alcotest.(check (option (float 0.0))) "every request went through a batch" (Some 4.0)
        (get "obs.repl.batch_size.count");
      Alcotest.(check (option (float 0.0))) "no view changes" (Some 0.0)
        (get "obs.repl.view_changes");
      Alcotest.(check bool) "metrics_json parses" true (json_ok (Obs.metrics_json ())))

let test_trace_spans_pair_up () =
  with_flags ~metrics:false ~trace:true (fun () ->
      let engine, _sys, _n = run_minbft ~seed:7L ~count:3 in
      let ring = (Engine.obs engine).Obs.ring in
      let begins = ref 0 and ends = ref 0 in
      Ring.iter ring (fun ~time:_ ~cat ~phase ~id:_ ~arg:_ ->
          if cat = Obs.Cat.repl then
            match phase with
            | Ring.Async_begin -> incr begins
            | Ring.Async_end -> incr ends
            | _ -> ());
      Alcotest.(check bool) "protocol spans recorded" true (!begins > 0);
      Alcotest.(check bool) "no span outlives the run" true (!ends <= !begins))

let prop_tracing_is_transparent =
  QCheck.Test.make ~name:"enabling tracing never changes a MinBFT run" ~count:20
    QCheck.(pair (int_bound 1000) (int_range 1 6))
    (fun (seed, count) ->
      let seed = Int64.of_int (seed + 1) in
      let base =
        with_flags ~metrics:false ~trace:false (fun () -> minbft_fingerprint ~seed ~count)
      in
      let traced =
        with_flags ~metrics:false ~trace:true (fun () -> minbft_fingerprint ~seed ~count)
      in
      base = traced)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "resoc_obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter and gauge" `Quick test_counter_gauge;
          Alcotest.test_case "counter block" `Quick test_counter_block;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "iter_scalars" `Quick test_iter_scalars;
          Alcotest.test_case "json and csv" `Quick test_registry_json_csv;
        ] );
      ( "ring",
        [
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "capacity 0 disabled" `Quick test_ring_disabled;
          Alcotest.test_case "phases" `Quick test_ring_phases;
        ] );
      ("chrome", [ Alcotest.test_case "well-formed JSON" `Quick test_chrome_wellformed ]);
      ( "wiring",
        [
          Alcotest.test_case "disabled registers nothing" `Quick test_disabled_registers_nothing;
          Alcotest.test_case "engine metrics" `Quick test_engine_metrics;
          Alcotest.test_case "noc metrics" `Quick test_noc_metrics;
          Alcotest.test_case "minbft replicate metrics" `Quick test_minbft_replicate_metrics;
          Alcotest.test_case "trace spans pair up" `Quick test_trace_spans_pair_up;
        ] );
      qsuite "determinism" [ prop_tracing_is_transparent ];
    ]
