(* Model tests for adaptive NoC routing: delivery exactly when an
   independent BFS reference says the endpoints are connected, loop
   freedom and no-failed-component crossings (enforced by the checker on
   random topologies), the mutation knobs proving each NoC invariant
   fires, route-table epoch determinism across worker counts, and
   injection-log alignment of the link-failure campaign. *)

open Resoc_noc
module Engine = Resoc_des.Engine
module Rng = Resoc_des.Rng
module Check = Resoc_check.Check
module Inject = Resoc_check.Inject
module Link_fault = Resoc_fault.Link_fault
module Campaign = Resoc_campaign.Campaign

let with_check f =
  Fun.protect
    ~finally:(fun () ->
      Check.disable ();
      Inject.stop ();
      Check.begin_replicate ();
      Inject.begin_replicate ();
      Network.test_skip_up_check := false;
      Network.test_detour_loop := false;
      Network.test_blackhole := false)
    (fun () ->
      Check.enable ();
      Inject.record ();
      Check.begin_replicate ();
      Inject.begin_replicate ();
      f ())

(* Reference connectivity: plain BFS over the surviving topology, written
   against the mesh API only (no shared code with Adaptive). *)
let ref_reachable mesh ~src ~dst =
  if not (Mesh.router_up mesh src && Mesh.router_up mesh dst) then false
  else begin
    let seen = Array.make (Mesh.n_nodes mesh) false in
    let q = Queue.create () in
    seen.(src) <- true;
    Queue.push src q;
    let found = ref false in
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      if u = dst then found := true;
      List.iter
        (fun v ->
          if (not seen.(v)) && Mesh.router_up mesh v && Mesh.link_up mesh { Mesh.src = u; dst = v }
          then begin
            seen.(v) <- true;
            Queue.push v q
          end)
        (Mesh.neighbors mesh u)
    done;
    !found
  end

(* Fault scripts: (op, operand) pairs hitting links and routers, with
   repairs mixed in so epochs advance through both directions. *)
let apply_ops mesh ops =
  let links = Mesh.real_link_ids mesh in
  List.iter
    (fun (op, x) ->
      match op mod 4 with
      | 0 -> Mesh.fail_link mesh (Mesh.link_of_id mesh links.(x mod Array.length links))
      | 1 -> Mesh.repair_link mesh (Mesh.link_of_id mesh links.(x mod Array.length links))
      | 2 -> Mesh.fail_router mesh (x mod Mesh.n_nodes mesh)
      | _ -> Mesh.repair_router mesh (x mod Mesh.n_nodes mesh))
    ops

let ops_gen = QCheck.(list_of_size (Gen.int_range 0 30) (pair (int_bound 3) small_nat))

let adaptive_config = { Network.default_config with routing = Network.Adaptive }

let prop_delivery_iff_connected =
  QCheck.Test.make ~name:"adaptive delivers exactly the BFS-connected pairs" ~count:60 ops_gen
    (fun ops ->
      let engine = Engine.create () in
      let mesh = Mesh.create ~width:4 ~height:4 in
      apply_ops mesh ops;
      let net = Network.create engine mesh adaptive_config in
      let n = Mesh.n_nodes mesh in
      let got = Hashtbl.create 64 in
      for node = 0 to n - 1 do
        Network.attach net ~node (fun ~src _ -> Hashtbl.replace got (src, node) ())
      done;
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if src <> dst then Network.send net ~src ~dst ~bytes_:16 ()
        done
      done;
      Engine.run engine;
      let ok = ref true in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if src <> dst then begin
            let expect = ref_reachable mesh ~src ~dst in
            if Hashtbl.mem got (src, dst) <> expect then ok := false
          end
        done
      done;
      !ok)

let prop_counts_match_scans =
  QCheck.Test.make ~name:"O(1) failed counts equal the diagnostic scans" ~count:100 ops_gen
    (fun ops ->
      let mesh = Mesh.create ~width:4 ~height:4 in
      apply_ops mesh ops;
      Mesh.failed_link_count mesh = List.length (Mesh.failed_links mesh)
      && Mesh.failed_router_count mesh = List.length (Mesh.failed_routers mesh))

(* Checker invariants hold on arbitrary topologies: no violation on real
   adaptive traffic, and the hooks demonstrably observed it. *)
let prop_checked_clean =
  QCheck.Test.make ~name:"adaptive routing passes the NoC invariants" ~count:30 ops_gen
    (fun ops ->
      with_check (fun () ->
          let engine = Engine.create () in
          let mesh = Mesh.create ~width:4 ~height:4 in
          apply_ops mesh ops;
          let net = Network.create engine mesh adaptive_config in
          let n = Mesh.n_nodes mesh in
          for node = 0 to n - 1 do
            Network.attach net ~node (fun ~src:_ _ -> ())
          done;
          for src = 0 to n - 1 do
            Network.send net ~src ~dst:(n - 1 - src) ~bytes_:16 ()
          done;
          Engine.run engine;
          Check.hooks_fired () > 0))

(* --- Mutation knobs: each NoC invariant must fire when its property is
   deliberately broken (DESIGN.md section 7 discipline). --- *)

let fires f = match f () with () -> false | exception Check.Violation _ -> true

let test_knob_skip_up_check () =
  with_check (fun () ->
      Network.test_skip_up_check := true;
      Alcotest.(check bool) "crossing a failed link fires" true
        (fires (fun () ->
             let engine = Engine.create () in
             let mesh = Mesh.create ~width:3 ~height:1 in
             let net = Network.create engine mesh Network.default_config in
             Network.attach net ~node:2 (fun ~src:_ _ -> ());
             Mesh.fail_link mesh { Mesh.src = 1; dst = 2 };
             Network.send net ~src:0 ~dst:2 ~bytes_:16 ();
             Engine.run engine)))

let test_knob_detour_loop () =
  with_check (fun () ->
      Network.test_detour_loop := true;
      Alcotest.(check bool) "routing loop fires" true
        (fires (fun () ->
             let engine = Engine.create () in
             let mesh = Mesh.create ~width:4 ~height:1 in
             let net = Network.create engine mesh adaptive_config in
             Network.attach net ~node:3 (fun ~src:_ _ -> ());
             Network.send net ~src:0 ~dst:3 ~bytes_:16 ();
             Engine.run engine)))

let test_knob_blackhole () =
  with_check (fun () ->
      Network.test_blackhole := true;
      Alcotest.(check bool) "dropping a reachable message fires" true
        (fires (fun () ->
             let engine = Engine.create () in
             let mesh = Mesh.create ~width:3 ~height:1 in
             let net = Network.create engine mesh adaptive_config in
             Network.attach net ~node:2 (fun ~src:_ _ -> ());
             Network.send net ~src:0 ~dst:2 ~bytes_:16 ();
             Engine.run engine)))

(* --- Epoch determinism: one replicate under a live link campaign, as a
   campaign cell run with 1 worker and with 2 — aggregates (including the
   final route-table epoch) must be identical. --- *)

let campaign_replicate ~seed =
  let engine = Engine.create ~seed () in
  let traffic = Rng.split (Engine.rng engine) in
  let mesh = Mesh.create ~width:4 ~height:4 in
  let net = Network.create engine mesh adaptive_config in
  for node = 0 to 15 do
    Network.attach net ~node (fun ~src:_ _ -> ())
  done;
  let lf =
    Link_fault.start engine
      (Rng.split (Engine.rng engine))
      mesh
      {
        Link_fault.upset_rate = 1e-4;
        upset_repair_mean = 300.0;
        wearout_shape = 2.0;
        wearout_scale = 30_000.0;
      }
  in
  Engine.every engine ~period:50 (fun () ->
      Network.send net ~src:(Rng.int traffic 16) ~dst:(Rng.int traffic 16) ~bytes_:16 ());
  Engine.run ~until:20_000 engine;
  Link_fault.halt lf;
  [
    ("epoch", float_of_int (Network.route_epoch net));
    ("recomputes", float_of_int (Network.recomputes net));
    ("delivered", float_of_int (Network.delivered net));
    ("upsets", float_of_int (Link_fault.upsets lf));
  ]

let test_epochs_deterministic_across_jobs () =
  let run jobs =
    let config =
      {
        Campaign.root_seed = 0xADA97L;
        replicates = 4;
        jobs;
        progress = false;
        check = false;
        shrink = false;
        fail_dir = None;
      }
    in
    let cells = [ Campaign.cell "adaptive" (fun ~seed -> campaign_replicate ~seed) ] in
    let result = Campaign.run ~config ~id:"tst" ~title:"epoch determinism" cells in
    List.map
      (fun agg ->
        List.map
          (fun m -> (m, (Campaign.metric agg m).Resoc_campaign.Stats.mean))
          [ "epoch"; "recomputes"; "delivered"; "upsets" ])
      result.Campaign.cells
  in
  let j1 = run 1 and j2 = run 2 in
  Alcotest.(check bool) "jobs 1 = jobs 2" true (j1 = j2);
  Alcotest.(check bool) "campaign actually recomputed" true
    (List.exists (fun cell -> List.assoc "recomputes" cell > 0.0) j1)

(* --- Link campaign replay alignment: a suppression mask must not change
   the occurrence schedule, and suppressing everything must yield a
   fault-free run. --- *)

let hot_campaign =
  {
    Link_fault.upset_rate = 2e-4;
    upset_repair_mean = 300.0;
    wearout_shape = 2.0;
    wearout_scale = 25_000.0;
  }

let masked_run ~seed ~mask ~campaign =
  Inject.begin_replicate ();
  (match mask with Some (total, keep) -> Inject.set_mask ~total keep | None -> ());
  let engine = Engine.create ~seed () in
  let traffic = Rng.split (Engine.rng engine) in
  let mesh = Mesh.create ~width:4 ~height:4 in
  let net = Network.create engine mesh adaptive_config in
  for node = 0 to 15 do
    Network.attach net ~node (fun ~src:_ _ -> ())
  done;
  let lf = Link_fault.start engine (Rng.split (Engine.rng engine)) mesh campaign in
  Engine.every engine ~period:100 (fun () ->
      Network.send net ~src:(Rng.int traffic 16) ~dst:(Rng.int traffic 16) ~bytes_:16 ());
  Engine.run ~until:15_000 engine;
  Link_fault.halt lf;
  ( Inject.count (),
    Link_fault.upsets lf + Link_fault.wearouts lf,
    Network.sent net,
    Network.delivered net,
    Mesh.failed_link_count mesh )

let test_link_campaign_mask_alignment () =
  with_check (fun () ->
      let seed = 42L in
      let count, applied, sent, delivered, _ = masked_run ~seed ~mask:None ~campaign:hot_campaign in
      Alcotest.(check bool) "campaign injected something" true (applied > 0);
      let full = masked_run ~seed ~mask:(Some (count, List.init count Fun.id)) ~campaign:hot_campaign in
      Alcotest.(check bool) "full mask reproduces the run" true
        (let c, a, s, d, _ = full in
         (c, a, s, d) = (count, applied, sent, delivered));
      let count', applied', sent', delivered', down' =
        masked_run ~seed ~mask:(Some (count, []) ) ~campaign:hot_campaign
      in
      Alcotest.(check int) "suppression keeps the occurrence schedule" count count';
      Alcotest.(check int) "nothing applied" 0 applied';
      Alcotest.(check int) "mesh never touched" 0 down';
      (* Fully suppressed campaign = the campaign never ran: traffic and
         delivery match a zero-rate reference exactly. *)
      let _, _, sent0, delivered0, _ =
        masked_run ~seed ~mask:None ~campaign:Link_fault.default_config
      in
      Alcotest.(check int) "traffic matches zero-rate reference" sent0 sent';
      Alcotest.(check int) "delivery matches zero-rate reference" delivered0 delivered')

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "resoc_adaptive"
    [
      qsuite "model" [ prop_delivery_iff_connected; prop_counts_match_scans; prop_checked_clean ];
      ( "mutants",
        [
          Alcotest.test_case "skip-up-check fires" `Quick test_knob_skip_up_check;
          Alcotest.test_case "detour loop fires" `Quick test_knob_detour_loop;
          Alcotest.test_case "blackhole fires" `Quick test_knob_blackhole;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "epochs stable across jobs" `Quick
            test_epochs_deterministic_across_jobs;
          Alcotest.test_case "mask alignment" `Quick test_link_campaign_mask_alignment;
        ] );
    ]
