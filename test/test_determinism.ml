(* Cross-protocol determinism snapshots.

   Every value here was captured from the replication layer as of the
   slot-ring/bitset rewrite and pinned as an expectation: the E3 (BFT on
   the NoC), E4 (passive vs active under a primary crash) and E9 (hybrid
   complexity crossover) summary numbers must stay bit-identical across
   purely structural changes to lib/repl. Floats are compared by their
   IEEE-754 bit patterns, so even a 1-ulp drift fails.

   If a PR changes these values it changed protocol behaviour, not just
   data layout — that needs an explicit expectation refresh plus a
   CHANGES.md note, never a silent update. *)

module Engine = Resoc_des.Engine
module Histogram = Resoc_des.Metrics.Histogram
module Behavior = Resoc_fault.Behavior
module Complexity = Resoc_hw.Complexity
module Stats = Resoc_repl.Stats
module Soc = Resoc_core.Soc
module Group = Resoc_core.Group
module Generator = Resoc_workload.Generator

let bits f = Printf.sprintf "%Lx" (Int64.bits_of_float f)

(* --- E3: a BFT group on a 4x4 mesh NoC serving a client burst --- *)

let e3_summary kind =
  let soc =
    Soc.create { Soc.default_config with mesh_width = 4; mesh_height = 4; seed = 77L }
  in
  let spec = { Group.default_spec with kind; f = 1; n_clients = 2 } in
  let group = Group.build (Soc.engine soc) (Group.On_soc soc) spec in
  Generator.burst ~n_per_client:10 ~n_clients:2 ~submit:group.Group.submit;
  Engine.run ~until:2_000_000 (Soc.engine soc);
  let s = group.Group.stats () in
  Printf.sprintf "completed=%d submitted=%d retx=%d vc=%d msgs=%d bytes=%d mean=%s p99=%s state=%Ld"
    s.Stats.completed s.Stats.submitted s.Stats.retransmissions s.Stats.view_changes
    (Soc.noc_messages soc) (Soc.noc_bytes soc)
    (bits (Histogram.mean s.Stats.latency))
    (bits (Histogram.percentile s.Stats.latency 99.0))
    (group.Group.replica_state ~replica:0)

(* --- E4: primary crash at t=50k under a periodic load --- *)

let e4_summary kind =
  let engine = Engine.create ~seed:42L () in
  let spec = { Group.default_spec with kind; f = 1; n_clients = 1; request_timeout = 3_000 } in
  let n = Group.n_replicas_of spec in
  let behaviors = Array.make n Behavior.honest in
  behaviors.(0) <- Behavior.crash_at 50_000;
  let spec = { spec with Group.behaviors = Some behaviors } in
  let group = Group.build engine (Group.Hub { latency = 5 }) spec in
  Generator.periodic engine ~period:1_000 ~until:250_000 ~n_clients:1
    ~submit:group.Group.submit ();
  Engine.run ~until:300_000 engine;
  let s = group.Group.stats () in
  Printf.sprintf "completed=%d submitted=%d retx=%d vc=%d msgs=%d p99=%s max=%s state=%Ld"
    s.Stats.completed s.Stats.submitted s.Stats.retransmissions s.Stats.view_changes
    (group.Group.messages ())
    (bits (Histogram.percentile s.Stats.latency 99.0))
    (bits (Histogram.max s.Stats.latency))
    (group.Group.replica_state ~replica:(n - 1))

(* --- E9: hybrid complexity crossover (pure arithmetic) --- *)

let e9_summary () =
  let p = Complexity.default in
  let crossover =
    match Complexity.crossover p ~max_complexity:1000 with Some c -> c | None -> -1
  in
  Printf.sprintf "crossover=%d gates=%d pc8=%s ps8=%s" crossover
    (Complexity.circuit_gates p ~complexity:crossover)
    (bits (Complexity.p_fail_circuit p ~complexity:8))
    (bits (Complexity.p_fail_software_hybrid p ~complexity:8))

(* --- pinned expectations --- *)

let expectations =
  [
    ( "e3/pbft",
      (fun () -> e3_summary `Pbft),
      "completed=20 submitted=20 retx=0 vc=0 msgs=700 bytes=44800 mean=405839999999999a \
       p99=405e000000000000 state=20" );
    ( "e3/minbft",
      (fun () -> e3_summary `Minbft),
      "completed=20 submitted=20 retx=0 vc=0 msgs=280 bytes=26880 mean=405a000000000000 \
       p99=4060000000000000 state=20" );
    ( "e3/a2m_bft",
      (fun () -> e3_summary `A2m_bft),
      "completed=20 submitted=20 retx=0 vc=0 msgs=280 bytes=31360 mean=405d400000000000 \
       p99=4062000000000000 state=20" );
    ( "e4/primary_backup",
      (fun () -> e4_summary `Primary_backup),
      "completed=249 submitted=249 retx=1 vc=1 msgs=1593 p99=4024000000000000 \
       max=40a7840000000000 state=249" );
    ( "e4/paxos",
      (fun () -> e4_summary `Paxos),
      "completed=249 submitted=249 retx=0 vc=1 msgs=2895 p99=4034000000000000 \
       max=40a3ba0000000000 state=249" );
    ( "e4/minbft",
      (fun () -> e4_summary `Minbft),
      "completed=249 submitted=249 retx=0 vc=1 msgs=2695 p99=4034000000000000 \
       max=40a3ba0000000000 state=249" );
    ( "e4/pbft",
      (fun () -> e4_summary `Pbft),
      "completed=249 submitted=249 retx=0 vc=1 msgs=7131 p99=4039000000000000 \
       max=40a3c40000000000 state=249" );
    ("e9/crossover", e9_summary, "crossover=14 gates=29500 pc8=3f5ca59d13891c00 ps8=3f66943aedc08600");
  ]

let test_one (name, compute, expected) () =
  let actual = compute () in
  Alcotest.(check string) name expected actual

let () =
  (* RESOC_SNAPSHOT=1 prints current values in pasteable form instead of
     testing, for refreshing the expectations after an intentional
     behavioural change. *)
  if Sys.getenv_opt "RESOC_SNAPSHOT" <> None then begin
    List.iter
      (fun (name, compute, _) -> Printf.printf "%-20s %s\n%!" name (compute ()))
      expectations;
    exit 0
  end;
  Alcotest.run "determinism"
    [
      ( "snapshots",
        List.map
          (fun ((name, _, _) as e) -> Alcotest.test_case name `Quick (test_one e))
          expectations );
    ]
