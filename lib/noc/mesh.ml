(* Fault state lives in two dense byte maps ('\000' = up): one byte per
   router, one per directed link. Links are identified by
   [src * 4 + dir], with dir 0 = north (id - width), 1 = west (id - 1),
   2 = east (id + 1), 3 = south (id + width). For a fixed src that dir
   order is ascending dst, so scanning ids ascending enumerates links in
   (src, dst) lexicographic order — the same order the old Set-based
   representation produced from [elements]. The hot path (Network) works
   on these ids directly; the record-based link API stays for tests and
   fault-injection code. *)

type link = { src : int; dst : int }

type t = {
  width : int;
  height : int;
  routers : Bytes.t;  (* '\000' = up *)
  links : Bytes.t;  (* n_nodes * 4, '\000' = up *)
  mutable epoch : int;  (* bumped on every actual fault-state flip *)
  mutable n_failed_links : int;
  mutable n_failed_routers : int;
  mutable subscribers : (unit -> unit) list;  (* called after each flip *)
}

let create ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Mesh.create: dimensions must be positive";
  {
    width;
    height;
    routers = Bytes.make (width * height) '\000';
    links = Bytes.make (width * height * 4) '\000';
    epoch = 0;
    n_failed_links = 0;
    n_failed_routers = 0;
    subscribers = [];
  }

let epoch t = t.epoch
let failed_link_count t = t.n_failed_links
let failed_router_count t = t.n_failed_routers
let on_change t f = t.subscribers <- t.subscribers @ [ f ]

let changed t =
  t.epoch <- t.epoch + 1;
  List.iter (fun f -> f ()) t.subscribers

let width t = t.width
let height t = t.height
let n_nodes t = t.width * t.height

let check_id t id =
  if id < 0 || id >= n_nodes t then invalid_arg "Mesh: tile id out of range"

let coord_of_id t id =
  check_id t id;
  (id mod t.width, id / t.width)

let id_of_coord t ~x ~y =
  if x < 0 || x >= t.width || y < 0 || y >= t.height then
    invalid_arg "Mesh.id_of_coord: coordinate out of range";
  (y * t.width) + x

let manhattan t a b =
  let ax, ay = coord_of_id t a and bx, by = coord_of_id t b in
  abs (ax - bx) + abs (ay - by)

let neighbors t id =
  let x, y = coord_of_id t id in
  let candidates = [ (x - 1, y); (x + 1, y); (x, y - 1); (x, y + 1) ] in
  List.filter_map
    (fun (nx, ny) ->
      if nx >= 0 && nx < t.width && ny >= 0 && ny < t.height then Some (id_of_coord t ~x:nx ~y:ny)
      else None)
    candidates

(* Direction of the (src, dst) hop, or -1 if the tiles are not adjacent.
   Both ids must already be in range. *)
let dir_of t ~src ~dst =
  let d = dst - src in
  if d = -t.width then 0
  else if d = -1 && src mod t.width > 0 then 1
  else if d = 1 && src mod t.width < t.width - 1 then 2
  else if d = t.width then 3
  else -1

let n_link_ids t = n_nodes t * 4

let link_id t ~src ~dst =
  check_id t src;
  check_id t dst;
  let dir = dir_of t ~src ~dst in
  if dir < 0 then invalid_arg "Mesh: not a link between adjacent tiles";
  (src * 4) + dir

let link_of_id t lid =
  if lid < 0 || lid >= n_link_ids t then invalid_arg "Mesh.link_of_id: bad link id";
  let src = lid / 4 in
  let dst =
    match lid land 3 with
    | 0 -> src - t.width
    | 1 -> src - 1
    | 2 -> src + 1
    | _ -> src + t.width
  in
  { src; dst }

(* One step of dimension-order routing from [cur] toward [dst]; returns
   [cur] on arrival. Equivalent hop-for-hop to walking the list produced
   by [dimension_route]. *)
let next_hop t ~cur ~dst ~x_first =
  let w = t.width in
  let cx = cur mod w and dx = dst mod w in
  if x_first then
    if cx <> dx then (if cx < dx then cur + 1 else cur - 1)
    else if cur < dst then cur + w
    else if cur > dst then cur - w
    else cur
  else if cur / w <> dst / w then (if cur < dst then cur + w else cur - w)
  else if cx < dx then cur + 1
  else if cx > dx then cur - 1
  else cur

let dimension_route t ~src ~dst ~x_first =
  check_id t src;
  check_id t dst;
  let rec go cur acc =
    if cur = dst then List.rev (cur :: acc)
    else go (next_hop t ~cur ~dst ~x_first) (cur :: acc)
  in
  go src []

let xy_route t ~src ~dst = dimension_route t ~src ~dst ~x_first:true

let yx_route t ~src ~dst = dimension_route t ~src ~dst ~x_first:false

let links_of_route route =
  let rec pair = function
    | a :: (b :: _ as rest) -> { src = a; dst = b } :: pair rest
    | [ _ ] | [] -> []
  in
  pair route

(* Fail/repair are no-ops when the component is already in the target
   state, so the O(1) failed counts stay exact and subscribers only hear
   about actual flips. *)

let fail_link t l =
  let lid = link_id t ~src:l.src ~dst:l.dst in
  if Bytes.get t.links lid = '\000' then begin
    Bytes.set t.links lid '\001';
    t.n_failed_links <- t.n_failed_links + 1;
    changed t
  end

let repair_link t l =
  let lid = link_id t ~src:l.src ~dst:l.dst in
  if Bytes.get t.links lid <> '\000' then begin
    Bytes.set t.links lid '\000';
    t.n_failed_links <- t.n_failed_links - 1;
    changed t
  end

let link_up t l = Bytes.get t.links (link_id t ~src:l.src ~dst:l.dst) = '\000'

let link_up_id t lid = Bytes.unsafe_get t.links lid = '\000'

let fail_router t id =
  check_id t id;
  if Bytes.get t.routers id = '\000' then begin
    Bytes.set t.routers id '\001';
    t.n_failed_routers <- t.n_failed_routers + 1;
    changed t
  end

let repair_router t id =
  check_id t id;
  if Bytes.get t.routers id <> '\000' then begin
    Bytes.set t.routers id '\000';
    t.n_failed_routers <- t.n_failed_routers - 1;
    changed t
  end

let router_up t id =
  check_id t id;
  Bytes.unsafe_get t.routers id = '\000'

let route_usable_via t ~route =
  List.for_all (router_up t) route && List.for_all (link_up t) (links_of_route route)

let route_usable t ~src ~dst = route_usable_via t ~route:(xy_route t ~src ~dst)

(* Allocation-free equivalent of [route_usable_via ~route:(xy_route ...)]:
   walks the unique XY path checking each router and link as it goes. *)
let xy_path_usable t ~src ~dst =
  check_id t src;
  check_id t dst;
  let rec go cur =
    if Bytes.unsafe_get t.routers cur <> '\000' then false
    else if cur = dst then true
    else
      let next = next_hop t ~cur ~dst ~x_first:true in
      link_up_id t ((cur * 4) + dir_of t ~src:cur ~dst:next) && go next
  in
  go src

(* Link ids whose destination actually lies on the mesh (border ids point
   off the edge and are never used by any route). *)
let real_link_ids t =
  let acc = ref [] in
  for lid = n_link_ids t - 1 downto 0 do
    let src = lid / 4 in
    let valid =
      match lid land 3 with
      | 0 -> src >= t.width
      | 1 -> src mod t.width > 0
      | 2 -> src mod t.width < t.width - 1
      | _ -> src < t.width * (t.height - 1)
    in
    if valid then acc := lid :: !acc
  done;
  Array.of_list !acc

let failed_links t =
  let acc = ref [] in
  for lid = n_link_ids t - 1 downto 0 do
    if Bytes.get t.links lid <> '\000' then acc := link_of_id t lid :: !acc
  done;
  !acc

let failed_routers t =
  let acc = ref [] in
  for id = n_nodes t - 1 downto 0 do
    if Bytes.get t.routers id <> '\000' then acc := id :: !acc
  done;
  !acc
