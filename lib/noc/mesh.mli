(** 2D-mesh network-on-chip topology with fault state.

    Tiles are numbered row-major: id = y*width + x. Links are directed
    (full-duplex modeled as two directed links). Routing is XY
    dimension-order — deterministic and deadlock-free, as in most real NoCs;
    a failed link or router on the unique XY path therefore drops traffic,
    which is exactly the failure visibility the resilience layers react to. *)

type t

type link = { src : int; dst : int }
(** A directed link between adjacent tiles. *)

val create : width:int -> height:int -> t

val width : t -> int
val height : t -> int
val n_nodes : t -> int

val coord_of_id : t -> int -> int * int
(** (x, y) of a tile id. Raises [Invalid_argument] if out of range. *)

val id_of_coord : t -> x:int -> y:int -> int

val manhattan : t -> int -> int -> int
(** Hop distance between two tiles. *)

val neighbors : t -> int -> int list

val check_id : t -> int -> unit
(** Raises [Invalid_argument] unless the id names a tile. *)

val xy_route : t -> src:int -> dst:int -> int list
(** Tiles visited, inclusive of [src] and [dst]; X dimension first. *)

val next_hop : t -> cur:int -> dst:int -> x_first:bool -> int
(** One step of dimension-order routing; returns [cur] on arrival. Ids
    must be valid tile ids. Walking [next_hop] to a fixpoint visits
    exactly the tiles of [xy_route] (or [yx_route] when [x_first] is
    false) — the transport uses it to route hop by hop without
    materializing the list. *)

val yx_route : t -> src:int -> dst:int -> int list
(** Y dimension first — the escape path of simple fault-tolerant routers. *)

val links_of_route : int list -> link list

val fail_link : t -> link -> unit
val repair_link : t -> link -> unit
val link_up : t -> link -> bool
(** Unknown links (non-adjacent endpoints) raise [Invalid_argument].
    Failing an already-failed link (or repairing an up one) is a no-op:
    the fault state, counts, {!epoch} and subscribers only see actual
    flips. *)

val fail_router : t -> int -> unit
val repair_router : t -> int -> unit
val router_up : t -> int -> bool

(** {2 Fault-state bookkeeping}

    Every actual flip of a link or router bumps {!epoch} and invokes the
    {!on_change} subscribers synchronously (in subscription order), so
    route tables computed from the surviving topology can be stamped with
    the epoch they saw and consumers learn about degradation the moment
    it happens. The failed counts are maintained in O(1) on fail/repair,
    unlike {!failed_links}/{!failed_routers} which scan the whole table
    and are meant for tests and diagnostics only. *)

val epoch : t -> int
(** Monotone counter of fault-state flips; equal epochs imply identical
    fault state since the last observation. *)

val failed_link_count : t -> int
val failed_router_count : t -> int

val on_change : t -> (unit -> unit) -> unit
(** Subscribe to fault-state flips. Callbacks run synchronously inside
    [fail_*]/[repair_*]; they must not themselves mutate the mesh. *)

val route_usable : t -> src:int -> dst:int -> bool
(** All routers and links along the XY route are up. The endpoints' own
    routers must be up too. *)

val route_usable_via : t -> route:int list -> bool
(** Same check for an arbitrary route. *)

val xy_path_usable : t -> src:int -> dst:int -> bool
(** Allocation-free [route_usable] on the XY path (hot-path variant). *)

(** {2 Integer link ids}

    Directed links double as dense array indices: [src * 4 + dir] with
    dir 0 = north, 1 = west, 2 = east, 3 = south. Scanning ids in
    ascending order enumerates links in (src, dst) lexicographic order.
    Border ids that point off the mesh are never up nor down; they are
    simply unused. *)

val n_link_ids : t -> int
(** Size of the link-id space, [4 * n_nodes]. *)

val link_id : t -> src:int -> dst:int -> int
(** Id of the directed link; raises [Invalid_argument] unless [src] and
    [dst] are adjacent tiles. *)

val link_of_id : t -> int -> link
(** Inverse of [link_id]; the id must be in range (the result of a
    border id is a phantom link no valid route crosses). *)

val link_up_id : t -> int -> bool
(** [link_up] by id, no validation — the id must come from [link_id]. *)

val real_link_ids : t -> int array
(** The link ids that name an actual link (border ids that point off the
    mesh are excluded), in ascending order. Fault injectors draw targets
    from this array. *)

val failed_links : t -> link list
val failed_routers : t -> int list
(** Diagnostic scans (O(links)/O(nodes) and allocating); hot paths use
    {!failed_link_count}/{!failed_router_count} instead. *)
