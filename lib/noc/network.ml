module Engine = Resoc_des.Engine
module Metrics = Resoc_des.Metrics
module Obs = Resoc_obs.Obs
module Registry = Resoc_obs.Registry
module Ring = Resoc_obs.Ring
module Check = Resoc_check.Check

type routing = Xy | Xy_with_yx_fallback | Adaptive

type config = {
  router_latency : int;
  bytes_per_cycle : int;
  local_latency : int;
  routing : routing;
  multicast : bool;
}

let default_config =
  { router_latency = 2; bytes_per_cycle = 16; local_latency = 1; routing = Xy; multicast = false }

(* Mutation knobs for the checker self-tests (DESIGN.md section 7): each
   breaks one property the NoC invariants guard, proving the checker
   fires. Only ever set under --check in tests. *)
let test_skip_up_check = ref false  (* transmit across failed links/routers *)
let test_detour_loop = ref false  (* bounce adaptive flights back and forth *)
let test_blackhole = ref false  (* drop adaptive flights despite a live route *)
let test_mcast_skip_branch = ref false  (* silently prune the last child at every fork *)
let test_mcast_dup_deliver = ref false  (* deliver every multicast payload twice *)

(* A message in flight is a pooled record spread across parallel arrays:
   current/previous router, endpoints, injection time, size, hop count,
   flight id, payload, and one per-slot [advance] closure built when the
   slot is first created and reused for every hop of every flight that
   occupies the slot. Routing is recomputed one hop at a time — either
   dimension-order ([Mesh.next_hop]) or via the epoch-stamped adaptive
   tables ([Adaptive.next_hop]), which are refreshed synchronously on
   every fail/repair event through a [Mesh.on_change] subscription. Link
   occupancy and load live in dense int arrays indexed by
   [Mesh.link_id]. In steady state a unicast allocates only the payload
   box; the engine, heap, and per-hop bookkeeping are all
   allocation-free. *)
type 'msg t = {
  engine : Engine.t;
  mesh : Mesh.t;
  config : config;
  adaptive : Adaptive.t option;  (* Some iff routing = Adaptive *)
  mcast : Mcast.t option;  (* Some iff config.multicast *)
  handlers : (src:int -> 'msg -> unit) option array;
  busy_until : int array;  (* by link id *)
  load : int array;  (* by link id *)
  mutable fl_cur : int array;
  mutable fl_prev : int array;  (* router the flight came from, -1 at source *)
  mutable fl_src : int array;
  mutable fl_dst : int array;  (* unicast destination; -1 on multicast branches *)
  mutable fl_start : int array;
  mutable fl_bytes : int array;
  mutable fl_hops : int array;
  mutable fl_flight : int array;  (* per-send unique id for the checker *)
  mutable fl_mc : int array;  (* multicast instance slot, -1 = unicast *)
  mutable fl_xfirst : Bytes.t;
  mutable fl_msg : 'msg option array;
  mutable fl_advance : (unit -> unit) array;
  mutable fl_free_next : int array;
  mutable fl_free_head : int;
  (* Multicast instances are pooled like flights: per slot a forwarding
     map over the tree marked at send time (bits 0-3: forward out of that
     direction; bit 4: deliver here), the live branch count, and the
     shared payload box. An instance retires when its last branch ends. *)
  mutable mc_fwd : Bytes.t array;  (* by instance slot: one byte per node *)
  mutable mc_live : int array;  (* outstanding branches (+ pending loopback) *)
  mutable mc_src : int array;
  mutable mc_start : int array;
  mutable mc_bytes : int array;
  mutable mc_id : int array;  (* per-send unique id for the checker *)
  mutable mc_epoch : int array;  (* mesh epoch at send, for strict checking *)
  mutable mc_msg : 'msg option array;
  mutable mc_free_next : int array;
  mutable mc_free_head : int;
  mc_stack : int array;  (* DFS scratch for lost-subtree accounting *)
  mutable next_flight : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes_sent : int;
  mutable partition_handler : (reachable:int -> total:int -> unit) option;
  latency : Metrics.Histogram.t;
  obs : Obs.t;
  obs_link_base : int;  (* counter cells, one per link id *)
  obs_delivered : int;
  obs_dropped : int;
  obs_latency : Registry.histogram;
  obs_reroutes : int;  (* adaptive hops that deviate from dimension order *)
  obs_recomputes : int;
  obs_recompute_visits : int;  (* cumulative BFS cost of table recomputes *)
  obs_failed_links : int;  (* gauge *)
  obs_failed_routers : int;  (* gauge *)
  obs_stretch : Registry.histogram;  (* delivered hops minus manhattan *)
  mutable obs_last_visits : int;
  mutable obs_last_recomputes : int;
  mcast_obs : bool;  (* metrics on at creation AND multicast mode on *)
  obs_mcast_sends : int;
  obs_mcast_forks : int;
  obs_mcast_deliveries : int;
  obs_mcast_fanout : Registry.histogram;
  chk : int;  (* resoc_check network id, -1 when checking is off *)
}

let sync_adaptive_obs t ad =
  if !Obs.metrics_on then begin
    let v = Adaptive.visits ad and r = Adaptive.recomputes ad in
    Registry.add t.obs.Obs.metrics t.obs_recompute_visits (v - t.obs_last_visits);
    Registry.add t.obs.Obs.metrics t.obs_recomputes (r - t.obs_last_recomputes);
    t.obs_last_visits <- v;
    t.obs_last_recomputes <- r
  end

(* Zero-alloc fold over the loaded links: the [hop_load] data without
   the assoc list, for hot sampling sites. *)
let iter_hop_load t f =
  let load = t.load in
  for lid = 0 to Array.length load - 1 do
    let n = Array.unsafe_get load lid in
    if n > 0 then f ~lid ~load:n
  done

let create engine mesh config =
  if config.router_latency < 0 || config.bytes_per_cycle <= 0 || config.local_latency < 0 then
    invalid_arg "Network.create: invalid config";
  let obs = Engine.obs engine in
  let metrics_on = !Obs.metrics_on in
  let obs_link_base, obs_delivered, obs_dropped, obs_latency =
    if metrics_on then
      ( Registry.counter_block obs.Obs.metrics ~n:(Mesh.n_link_ids mesh)
          ~name:(fun lid -> "noc.link." ^ string_of_int lid),
        Registry.counter obs.Obs.metrics "noc.delivered",
        Registry.counter obs.Obs.metrics "noc.dropped",
        Registry.histogram obs.Obs.metrics "noc.latency"
          ~bounds:[| 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 |] )
    else (0, 0, 0, Registry.null_histogram)
  in
  let obs_reroutes, obs_recomputes, obs_recompute_visits, obs_failed_links, obs_failed_routers,
      obs_stretch =
    if metrics_on then
      ( Registry.counter obs.Obs.metrics "noc.reroutes",
        Registry.counter obs.Obs.metrics "noc.recomputes",
        Registry.counter obs.Obs.metrics "noc.recompute.visits",
        Registry.gauge obs.Obs.metrics "noc.failed_links",
        Registry.gauge obs.Obs.metrics "noc.failed_routers",
        Registry.histogram obs.Obs.metrics "noc.path_stretch"
          ~bounds:[| 0; 1; 2; 4; 8; 16; 32 |] )
    else (0, 0, 0, 0, 0, Registry.null_histogram)
  in
  let adaptive = match config.routing with Adaptive -> Some (Adaptive.create mesh) | _ -> None in
  (* Multicast obs instruments are creation-gated on the mode as well as
     the metrics flag, so a mode-off run emits exactly the same scalar
     set (BENCH byte-identity) even under --metrics. *)
  let mcast_obs = metrics_on && config.multicast in
  let obs_mcast_sends, obs_mcast_forks, obs_mcast_deliveries, obs_mcast_fanout =
    if mcast_obs then
      ( Registry.counter obs.Obs.metrics "noc.mcast.sends",
        Registry.counter obs.Obs.metrics "noc.mcast.forks",
        Registry.counter obs.Obs.metrics "noc.mcast.deliveries",
        Registry.histogram obs.Obs.metrics "noc.mcast.fanout"
          ~bounds:[| 1; 2; 4; 8; 16; 32; 64 |] )
    else (0, 0, 0, Registry.null_histogram)
  in
  let t =
    {
      engine;
      mesh;
      config;
      adaptive;
      mcast = (if config.multicast then Some (Mcast.create mesh) else None);
      handlers = Array.make (Mesh.n_nodes mesh) None;
      busy_until = Array.make (Mesh.n_link_ids mesh) 0;
      load = Array.make (Mesh.n_link_ids mesh) 0;
      fl_cur = [||];
      fl_prev = [||];
      fl_src = [||];
      fl_dst = [||];
      fl_start = [||];
      fl_bytes = [||];
      fl_hops = [||];
      fl_flight = [||];
      fl_mc = [||];
      fl_xfirst = Bytes.empty;
      fl_msg = [||];
      fl_advance = [||];
      fl_free_next = [||];
      fl_free_head = -1;
      mc_fwd = [||];
      mc_live = [||];
      mc_src = [||];
      mc_start = [||];
      mc_bytes = [||];
      mc_id = [||];
      mc_epoch = [||];
      mc_msg = [||];
      mc_free_next = [||];
      mc_free_head = -1;
      mc_stack = Array.make (Mesh.n_nodes mesh) 0;
      next_flight = 0;
      sent = 0;
      delivered = 0;
      dropped = 0;
      bytes_sent = 0;
      partition_handler = None;
      latency = Metrics.Histogram.create "noc.latency";
      obs;
      obs_link_base;
      obs_delivered;
      obs_dropped;
      obs_latency;
      obs_reroutes;
      obs_recomputes;
      obs_recompute_visits;
      obs_failed_links;
      obs_failed_routers;
      obs_stretch;
      obs_last_visits = 0;
      obs_last_recomputes = 0;
      mcast_obs;
      obs_mcast_sends;
      obs_mcast_forks;
      obs_mcast_deliveries;
      obs_mcast_fanout;
      chk = (if !Check.enabled then Check.new_network () else -1);
    }
  in
  (* Tables are recomputed on every fail/repair event (synchronously, via
     the mesh's change notification) and stamped with the mesh epoch; the
     same subscription keeps the failed-count gauges fresh and surfaces
     partition state to whoever registered interest. *)
  (match adaptive with
  | Some ad ->
    ignore (Adaptive.refresh ad);
    sync_adaptive_obs t ad;
    Mesh.on_change mesh (fun () ->
        let recomputed = Adaptive.refresh ad in
        sync_adaptive_obs t ad;
        if metrics_on then begin
          Registry.set t.obs.Obs.metrics t.obs_failed_links (Mesh.failed_link_count mesh);
          Registry.set t.obs.Obs.metrics t.obs_failed_routers (Mesh.failed_router_count mesh)
        end;
        if recomputed then
          match t.partition_handler with
          | Some f -> f ~reachable:(Adaptive.reachable_pairs ad) ~total:(Adaptive.total_pairs ad)
          | None -> ())
  | None ->
    if metrics_on then
      Mesh.on_change mesh (fun () ->
          Registry.set t.obs.Obs.metrics t.obs_failed_links (Mesh.failed_link_count mesh);
          Registry.set t.obs.Obs.metrics t.obs_failed_routers (Mesh.failed_router_count mesh)));
  (* Closing per-link load snapshot at trace export: one counter-track
     sample per loaded link, iterated without building the [hop_load]
     assoc list. *)
  if !Obs.trace_on then
    Obs.on_flush (fun () ->
        let time = Engine.now t.engine in
        iter_hop_load t (fun ~lid ~load ->
            Ring.sample t.obs.Obs.ring ~time ~cat:Obs.Cat.noc_link ~id:lid ~arg:load));
  t

let mesh t = t.mesh

let set_partition_handler t f = t.partition_handler <- Some f

let attach t ~node handler =
  if node < 0 || node >= Array.length t.handlers then invalid_arg "Network.attach: bad node";
  t.handlers.(node) <- Some handler

let detach t ~node =
  if node < 0 || node >= Array.length t.handlers then invalid_arg "Network.detach: bad node";
  t.handlers.(node) <- None

let drop t ~node =
  t.dropped <- t.dropped + 1;
  if t.chk >= 0 then Check.flit_dropped ~net:t.chk;
  if !Obs.metrics_on then Registry.incr t.obs.Obs.metrics t.obs_dropped;
  if !Obs.trace_on then
    Ring.instant t.obs.Obs.ring ~time:(Engine.now t.engine) ~cat:Obs.Cat.noc_drop ~id:node ~arg:0

let deliver t ~src ~dst ~start msg =
  match t.handlers.(dst) with
  | None -> drop t ~node:dst
  | Some handler ->
    t.delivered <- t.delivered + 1;
    if t.chk >= 0 then Check.flit_delivered ~net:t.chk;
    let lat = Engine.now t.engine - start in
    Metrics.Histogram.add t.latency (float_of_int lat);
    if !Obs.metrics_on then begin
      Registry.incr t.obs.Obs.metrics t.obs_delivered;
      Registry.observe t.obs.Obs.metrics t.obs_latency lat
    end;
    handler ~src msg

let serialization_cycles t bytes_ = (bytes_ + t.config.bytes_per_cycle - 1) / t.config.bytes_per_cycle

let release t slot =
  Array.unsafe_set t.fl_msg slot None;
  Array.unsafe_set t.fl_free_next slot t.fl_free_head;
  t.fl_free_head <- slot

(* Drop the flight in [slot] at router [cur] and retire its slot. In
   adaptive mode the drop must be justified by a partition: the checker
   fires when [cur] is alive and the tables still reach the destination. *)
let drop_flight t slot ~cur =
  if t.chk >= 0 then begin
    (match t.adaptive with
    | Some ad ->
      let dst = Array.unsafe_get t.fl_dst slot in
      let reachable = Mesh.router_up t.mesh cur && Adaptive.reachable ad ~src:cur ~dst in
      Check.noc_reachable_drop ~net:t.chk ~node:cur ~dst ~reachable
    | None -> ());
    Check.noc_flight_done ~net:t.chk ~flight:(Array.unsafe_get t.fl_flight slot)
  end;
  drop t ~node:cur;
  release t slot

(* Inject the flight into the link out of its current router; drops here
   mirror the old per-hop [router_up src && link_up] check. *)
let rec hop t slot =
  let cur = Array.unsafe_get t.fl_cur slot in
  let dst = Array.unsafe_get t.fl_dst slot in
  match t.adaptive with
  | Some ad ->
    let next = Adaptive.next_hop ad ~cur ~dst in
    let next =
      if !test_detour_loop && Array.unsafe_get t.fl_prev slot >= 0 then
        Array.unsafe_get t.fl_prev slot
      else next
    in
    if next < 0 || !test_blackhole then drop_flight t slot ~cur
    else begin
      if !Obs.metrics_on && next <> Mesh.next_hop t.mesh ~cur ~dst ~x_first:true then
        Registry.incr t.obs.Obs.metrics t.obs_reroutes;
      transmit t slot ~cur ~next
    end
  | None ->
    let x_first = Bytes.unsafe_get t.fl_xfirst slot <> '\000' in
    transmit t slot ~cur ~next:(Mesh.next_hop t.mesh ~cur ~dst ~x_first)

(* Cross the [cur -> next] link if it and the local router are up. The
   checker hook fires only on actual traversals, recording the visited
   trail for loop detection and flagging crossings of failed
   components (reachable only via the [test_skip_up_check] knob). *)
and transmit t slot ~cur ~next =
  let lid = Mesh.link_id t.mesh ~src:cur ~dst:next in
  let cur_up = Mesh.router_up t.mesh cur in
  let link_up = Mesh.link_up_id t.mesh lid in
  if (cur_up && link_up) || !test_skip_up_check then begin
    if t.chk >= 0 then
      Check.noc_hop ~net:t.chk
        ~flight:(Array.unsafe_get t.fl_flight slot)
        ~epoch:(Mesh.epoch t.mesh) ~cur ~next ~cur_up ~link_up;
    let now = Engine.now t.engine in
    let free_at = Array.unsafe_get t.busy_until lid in
    let begin_tx = if now > free_at then now else free_at in
    let done_at =
      begin_tx + t.config.router_latency + serialization_cycles t (Array.unsafe_get t.fl_bytes slot)
    in
    Array.unsafe_set t.busy_until lid done_at;
    let load = Array.unsafe_get t.load lid + 1 in
    Array.unsafe_set t.load lid load;
    if !Obs.metrics_on then Registry.incr t.obs.Obs.metrics (t.obs_link_base + lid);
    if !Obs.trace_on then
      Ring.sample t.obs.Obs.ring ~time:(Engine.now t.engine) ~cat:Obs.Cat.noc_link ~id:lid
        ~arg:load;
    Array.unsafe_set t.fl_prev slot cur;
    Array.unsafe_set t.fl_cur slot next;
    Array.unsafe_set t.fl_hops slot (Array.unsafe_get t.fl_hops slot + 1);
    ignore (Engine.at t.engine ~time:done_at (Array.unsafe_get t.fl_advance slot))
  end
  else drop_flight t slot ~cur

(* Arrival at the flight's current router. Re-check it at arrival time:
   it may have died while the message was on the wire. Multicast
   branches carry their instance slot in [fl_mc] and take their own
   arrival path. *)
and advance t slot =
  let mc = Array.unsafe_get t.fl_mc slot in
  if mc >= 0 then advance_mcast t slot mc
  else
    let cur = Array.unsafe_get t.fl_cur slot in
    if Mesh.router_up t.mesh cur then
      if cur = Array.unsafe_get t.fl_dst slot then begin
        let src = Array.unsafe_get t.fl_src slot in
        let start = Array.unsafe_get t.fl_start slot in
        let msg = match Array.unsafe_get t.fl_msg slot with Some m -> m | None -> assert false in
        if !Obs.metrics_on then begin
          (* Path stretch: hops taken beyond the Manhattan distance. *)
          let w = Mesh.width t.mesh in
          let dx = abs ((cur mod w) - (src mod w)) and dy = abs ((cur / w) - (src / w)) in
          Registry.observe t.obs.Obs.metrics t.obs_stretch
            (Array.unsafe_get t.fl_hops slot - dx - dy)
        end;
        if t.chk >= 0 then Check.noc_flight_done ~net:t.chk ~flight:(Array.unsafe_get t.fl_flight slot);
        release t slot;
        deliver t ~src ~dst:cur ~start msg
      end
      else hop t slot
    else drop_flight t slot ~cur

and grow_flights t =
  let cap = Array.length t.fl_cur in
  let ncap = if cap = 0 then 64 else cap * 2 in
  let extend a = Array.append a (Array.make (ncap - cap) 0) in
  t.fl_cur <- extend t.fl_cur;
  t.fl_prev <- extend t.fl_prev;
  t.fl_src <- extend t.fl_src;
  t.fl_dst <- extend t.fl_dst;
  t.fl_start <- extend t.fl_start;
  t.fl_bytes <- extend t.fl_bytes;
  t.fl_hops <- extend t.fl_hops;
  t.fl_flight <- extend t.fl_flight;
  t.fl_mc <- Array.append t.fl_mc (Array.make (ncap - cap) (-1));
  let nxfirst = Bytes.make ncap '\000' in
  Bytes.blit t.fl_xfirst 0 nxfirst 0 cap;
  t.fl_xfirst <- nxfirst;
  let nmsg = Array.make ncap None in
  Array.blit t.fl_msg 0 nmsg 0 cap;
  t.fl_msg <- nmsg;
  let nadv = Array.make ncap (fun () -> ()) in
  Array.blit t.fl_advance 0 nadv 0 cap;
  for i = cap to ncap - 1 do
    nadv.(i) <- (fun () -> advance t i)
  done;
  t.fl_advance <- nadv;
  let nfree = Array.make ncap (-1) in
  Array.blit t.fl_free_next 0 nfree 0 cap;
  for i = ncap - 1 downto cap do
    nfree.(i) <- t.fl_free_head;
    t.fl_free_head <- i
  done;
  t.fl_free_next <- nfree

and alloc_flight t =
  if t.fl_free_head < 0 then grow_flights t;
  let slot = t.fl_free_head in
  t.fl_free_head <- Array.unsafe_get t.fl_free_next slot;
  slot

(* --- multicast branch machinery --- *)

(* A multicast branch arriving at a dead router loses the whole subtree
   behind it; the router died after the trees were built, so the epoch
   moved (or is about to) and the strict delivery-set check stands down. *)
and advance_mcast t slot mc =
  let cur = Array.unsafe_get t.fl_cur slot in
  if Mesh.router_up t.mesh cur then mcast_arrive t slot mc ~cur
  else begin
    drop_lost_subtree t mc ~at:cur ~site:cur;
    mcast_branch_done t slot mc
  end

(* Serve the deliver mark, then fork into every marked out-direction:
   the first live child reuses this branch's slot (path continuation),
   each further child claims a fresh slot and a fresh checker flight id
   — tree paths are disjoint, so per-branch loop detection still holds. *)
and mcast_arrive t slot mc ~cur =
  let fwd = Array.unsafe_get t.mc_fwd mc in
  let b = Char.code (Bytes.unsafe_get fwd cur) in
  if b land 16 <> 0 then begin
    deliver_mcast t mc ~node:cur;
    if !test_mcast_dup_deliver then deliver_mcast t mc ~node:cur
  end;
  let dirs = b land 15 in
  let dirs =
    if !test_mcast_skip_branch && dirs <> 0 then
      (* Mutation: silently prune the highest marked direction. *)
      let hi =
        if dirs land 8 <> 0 then 8 else if dirs land 4 <> 0 then 4 else if dirs land 2 <> 0 then 2 else 1
      in
      dirs land lnot hi
    else dirs
  in
  let hops = Array.unsafe_get t.fl_hops slot in
  let w = Mesh.width t.mesh in
  let reused = ref false in
  for dir = 0 to 3 do
    if dirs land (1 lsl dir) <> 0 then begin
      let child = match dir with 0 -> cur - w | 1 -> cur - 1 | 2 -> cur + 1 | _ -> cur + w in
      let lid = (cur * 4) + dir in
      let link_up = Mesh.link_up_id t.mesh lid in
      if link_up || !test_skip_up_check then begin
        let s =
          if !reused then begin
            let s = alloc_flight t in
            Array.unsafe_set t.fl_flight s t.next_flight;
            t.next_flight <- t.next_flight + 1;
            Array.unsafe_set t.mc_live mc (Array.unsafe_get t.mc_live mc + 1);
            if t.mcast_obs then Registry.incr t.obs.Obs.metrics t.obs_mcast_forks;
            s
          end
          else begin
            reused := true;
            slot
          end
        in
        if t.chk >= 0 then
          Check.noc_hop ~net:t.chk
            ~flight:(Array.unsafe_get t.fl_flight s)
            ~epoch:(Mesh.epoch t.mesh) ~cur ~next:child
            ~cur_up:(Mesh.router_up t.mesh cur) ~link_up;
        let now = Engine.now t.engine in
        let free_at = Array.unsafe_get t.busy_until lid in
        let begin_tx = if now > free_at then now else free_at in
        let done_at =
          begin_tx + t.config.router_latency
          + serialization_cycles t (Array.unsafe_get t.mc_bytes mc)
        in
        Array.unsafe_set t.busy_until lid done_at;
        let load = Array.unsafe_get t.load lid + 1 in
        Array.unsafe_set t.load lid load;
        if !Obs.metrics_on then Registry.incr t.obs.Obs.metrics (t.obs_link_base + lid);
        if !Obs.trace_on then
          Ring.sample t.obs.Obs.ring ~time:now ~cat:Obs.Cat.noc_link ~id:lid ~arg:load;
        Array.unsafe_set t.fl_cur s child;
        Array.unsafe_set t.fl_prev s cur;
        Array.unsafe_set t.fl_hops s (hops + 1);
        Array.unsafe_set t.fl_mc s mc;
        ignore (Engine.at t.engine ~time:done_at (Array.unsafe_get t.fl_advance s))
      end
      else drop_lost_subtree t mc ~at:child ~site:cur
    end
  done;
  if not !reused then mcast_branch_done t slot mc

and deliver_mcast t mc ~node =
  if t.chk >= 0 then Check.mcast_deliver ~net:t.chk ~mcast:(Array.unsafe_get t.mc_id mc) ~node;
  if t.mcast_obs then Registry.incr t.obs.Obs.metrics t.obs_mcast_deliveries;
  let msg = match Array.unsafe_get t.mc_msg mc with Some m -> m | None -> assert false in
  deliver t
    ~src:(Array.unsafe_get t.mc_src mc)
    ~dst:node
    ~start:(Array.unsafe_get t.mc_start mc)
    msg

(* Each deliver mark at or below [at] is one logical message lost to a
   mid-flight fault; [site] is the router blamed for the drops. The
   marked subgraph is a tree, so the DFS visits each node once and the
   scratch stack is bounded by the node count. *)
and drop_lost_subtree t mc ~at ~site =
  let fwd = Array.unsafe_get t.mc_fwd mc in
  let w = Mesh.width t.mesh in
  let stack = t.mc_stack in
  let sp = ref 1 in
  Array.unsafe_set stack 0 at;
  while !sp > 0 do
    decr sp;
    let v = Array.unsafe_get stack !sp in
    let b = Char.code (Bytes.unsafe_get fwd v) in
    if b land 16 <> 0 then drop t ~node:site;
    if b land 1 <> 0 then begin
      Array.unsafe_set stack !sp (v - w);
      incr sp
    end;
    if b land 2 <> 0 then begin
      Array.unsafe_set stack !sp (v - 1);
      incr sp
    end;
    if b land 4 <> 0 then begin
      Array.unsafe_set stack !sp (v + 1);
      incr sp
    end;
    if b land 8 <> 0 then begin
      Array.unsafe_set stack !sp (v + w);
      incr sp
    end
  done

and mcast_branch_done t slot mc =
  if t.chk >= 0 then Check.noc_flight_done ~net:t.chk ~flight:(Array.unsafe_get t.fl_flight slot);
  release t slot;
  mcast_ref_drop t mc

and mcast_ref_drop t mc =
  let live = Array.unsafe_get t.mc_live mc - 1 in
  Array.unsafe_set t.mc_live mc live;
  if live = 0 then begin
    if t.chk >= 0 then
      Check.mcast_done ~net:t.chk
        ~mcast:(Array.unsafe_get t.mc_id mc)
        ~strict:(Mesh.epoch t.mesh = Array.unsafe_get t.mc_epoch mc);
    Bytes.fill (Array.unsafe_get t.mc_fwd mc) 0 (Array.length t.handlers) '\000';
    Array.unsafe_set t.mc_msg mc None;
    Array.unsafe_set t.mc_free_next mc t.mc_free_head;
    t.mc_free_head <- mc
  end

let send t ~src ~dst ~bytes_ msg =
  if bytes_ <= 0 then invalid_arg "Network.send: bytes must be positive";
  t.sent <- t.sent + 1;
  if t.chk >= 0 then Check.flit_injected ~net:t.chk;
  t.bytes_sent <- t.bytes_sent + bytes_;
  let start = Engine.now t.engine in
  if src = dst then
    ignore
      (Engine.schedule t.engine ~delay:t.config.local_latency (fun () ->
           deliver t ~src ~dst ~start msg))
  else begin
    Mesh.check_id t.mesh src;
    Mesh.check_id t.mesh dst;
    let x_first =
      match t.config.routing with
      | Xy | Adaptive -> true
      | Xy_with_yx_fallback -> Mesh.xy_path_usable t.mesh ~src ~dst
    in
    (* The sender's own router must be alive to inject at all. *)
    if not (Mesh.router_up t.mesh src) then drop t ~node:src
    else begin
      let slot = alloc_flight t in
      Array.unsafe_set t.fl_cur slot src;
      Array.unsafe_set t.fl_prev slot (-1);
      Array.unsafe_set t.fl_src slot src;
      Array.unsafe_set t.fl_dst slot dst;
      Array.unsafe_set t.fl_start slot start;
      Array.unsafe_set t.fl_bytes slot bytes_;
      Array.unsafe_set t.fl_hops slot 0;
      Array.unsafe_set t.fl_flight slot t.next_flight;
      t.next_flight <- t.next_flight + 1;
      Array.unsafe_set t.fl_mc slot (-1);
      Bytes.unsafe_set t.fl_xfirst slot (if x_first then '\001' else '\000');
      Array.unsafe_set t.fl_msg slot (Some msg);
      hop t slot
    end
  end

(* --- multicast instance pool --- *)

let grow_mcasts t =
  let cap = Array.length t.mc_live in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let n = Array.length t.handlers in
  let extend a = Array.append a (Array.make (ncap - cap) 0) in
  t.mc_live <- extend t.mc_live;
  t.mc_src <- extend t.mc_src;
  t.mc_start <- extend t.mc_start;
  t.mc_bytes <- extend t.mc_bytes;
  t.mc_id <- extend t.mc_id;
  t.mc_epoch <- extend t.mc_epoch;
  let nfwd = Array.make ncap Bytes.empty in
  Array.blit t.mc_fwd 0 nfwd 0 cap;
  for i = cap to ncap - 1 do
    nfwd.(i) <- Bytes.make n '\000'
  done;
  t.mc_fwd <- nfwd;
  let nmsg = Array.make ncap None in
  Array.blit t.mc_msg 0 nmsg 0 cap;
  t.mc_msg <- nmsg;
  let nfree = Array.make ncap (-1) in
  Array.blit t.mc_free_next 0 nfree 0 cap;
  for i = ncap - 1 downto cap do
    nfree.(i) <- t.mc_free_head;
    t.mc_free_head <- i
  done;
  t.mc_free_next <- nfree

let alloc_mcast t =
  if t.mc_free_head < 0 then grow_mcasts t;
  let slot = t.mc_free_head in
  t.mc_free_head <- Array.unsafe_get t.mc_free_next slot;
  slot

(* Climb from a marked destination toward the root, setting the forward
   bit on each tree edge; stop at the first already-set bit — the path
   above it is marked. Amortized O(tree edges) over all destinations. *)
let rec mark_path fwd parent ~w v =
  let p = Array.unsafe_get parent v in
  if p <> v then begin
    let dir = if v = p - w then 0 else if v = p - 1 then 1 else if v = p + 1 then 2 else 3 in
    let b = Char.code (Bytes.unsafe_get fwd p) in
    if b land (1 lsl dir) = 0 then begin
      Bytes.unsafe_set fwd p (Char.unsafe_chr (b lor (1 lsl dir)));
      mark_path fwd parent ~w p
    end
  end

let multicast t ~src ~dsts ?n ~bytes_ msg =
  if bytes_ <= 0 then invalid_arg "Network.multicast: bytes must be positive";
  let mcast =
    match t.mcast with
    | Some m -> m
    | None -> invalid_arg "Network.multicast: multicast mode is off"
  in
  let k = match n with Some k -> k | None -> Array.length dsts in
  if k < 0 || k > Array.length dsts then invalid_arg "Network.multicast: bad destination count";
  Mesh.check_id t.mesh src;
  for i = 0 to k - 1 do
    Mesh.check_id t.mesh dsts.(i)
  done;
  (* Logical accounting matches a unicast fan-out — k messages injected,
     k * bytes_ logical payload — so protocol-level message and byte
     stats stay comparable across modes; the physical saving shows up in
     the event count, link occupancy and the noc.mcast.* counters. *)
  t.sent <- t.sent + k;
  t.bytes_sent <- t.bytes_sent + (bytes_ * k);
  if t.chk >= 0 then
    for _ = 1 to k do
      Check.flit_injected ~net:t.chk
    done;
  if t.mcast_obs then begin
    Registry.incr t.obs.Obs.metrics t.obs_mcast_sends;
    Registry.observe t.obs.Obs.metrics t.obs_mcast_fanout k
  end;
  if k > 0 then
    if not (Mesh.router_up t.mesh src) then
      (* The sender's own router must be alive to inject at all. *)
      for _ = 1 to k do
        drop t ~node:src
      done
    else begin
      let parent = Mcast.tree mcast ~root:src in
      let mc = alloc_mcast t in
      let fwd = Array.unsafe_get t.mc_fwd mc in
      let w = Mesh.width t.mesh in
      let id = t.next_flight in
      t.next_flight <- t.next_flight + 1;
      Array.unsafe_set t.mc_src mc src;
      Array.unsafe_set t.mc_start mc (Engine.now t.engine);
      Array.unsafe_set t.mc_bytes mc bytes_;
      Array.unsafe_set t.mc_id mc id;
      Array.unsafe_set t.mc_epoch mc (Mesh.epoch t.mesh);
      Array.unsafe_set t.mc_msg mc (Some msg);
      if t.chk >= 0 then Check.mcast_begin ~net:t.chk ~mcast:id;
      for i = 0 to k - 1 do
        let dst = Array.unsafe_get dsts i in
        if Array.unsafe_get parent dst < 0 then
          (* The trees cannot reach it: the per-destination unicast
             reference would drop too (partition). *)
          drop t ~node:src
        else begin
          let b = Char.code (Bytes.unsafe_get fwd dst) in
          if b land 16 = 0 then begin
            Bytes.unsafe_set fwd dst (Char.unsafe_chr (b lor 16));
            mark_path fwd parent ~w dst
          end;
          if t.chk >= 0 then Check.mcast_expect ~net:t.chk ~mcast:id ~node:dst
        end
      done;
      Array.unsafe_set t.mc_live mc 1;
      (* The root's own deliver mark is served as a loopback, matching
         unicast [src = dst] semantics; the scheduled closure is the one
         allocation a self-including multicast costs. *)
      let root_b = Char.code (Bytes.unsafe_get fwd src) in
      if root_b land 16 <> 0 then begin
        Bytes.unsafe_set fwd src (Char.unsafe_chr (root_b land lnot 16));
        Array.unsafe_set t.mc_live mc 2;
        ignore
          (Engine.schedule t.engine ~delay:t.config.local_latency (fun () ->
               deliver_mcast t mc ~node:src;
               if !test_mcast_dup_deliver then deliver_mcast t mc ~node:src;
               mcast_ref_drop t mc))
      end;
      let slot = alloc_flight t in
      Array.unsafe_set t.fl_cur slot src;
      Array.unsafe_set t.fl_prev slot (-1);
      Array.unsafe_set t.fl_hops slot 0;
      Array.unsafe_set t.fl_mc slot mc;
      Array.unsafe_set t.fl_flight slot t.next_flight;
      t.next_flight <- t.next_flight + 1;
      mcast_arrive t slot mc ~cur:src
    end

let sent t = t.sent
let delivered t = t.delivered
let dropped t = t.dropped
let bytes_sent t = t.bytes_sent
let latency t = t.latency

let reachable t ~src ~dst =
  match t.adaptive with
  | Some ad -> Adaptive.reachable ad ~src ~dst
  | None -> invalid_arg "Network.reachable: routing is not Adaptive"

let route_epoch t =
  match t.adaptive with
  | Some ad -> Adaptive.epoch ad
  | None -> invalid_arg "Network.route_epoch: routing is not Adaptive"

let recomputes t = match t.adaptive with Some ad -> Adaptive.recomputes ad | None -> 0
let recompute_visits t = match t.adaptive with Some ad -> Adaptive.visits ad | None -> 0

let mcast_tree_builds t = match t.mcast with Some m -> Mcast.builds m | None -> 0
let mcast_tree_visits t = match t.mcast with Some m -> Mcast.visits m | None -> 0

let hop_load t =
  let acc = ref [] in
  for lid = Array.length t.load - 1 downto 0 do
    let n = Array.unsafe_get t.load lid in
    if n > 0 then acc := (Mesh.link_of_id t.mesh lid, n) :: !acc
  done;
  !acc
