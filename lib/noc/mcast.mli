(** Per-root multicast trees over the surviving topology.

    Each tree is a shortest-path BFS tree rooted at the multicast source,
    computed over up routers and up directed links with the same fixed
    north/west/east/south tie-break as the adaptive unicast tables — a
    pure function of the fault state, hence identical across campaign
    worker counts. Trees are cached per root and stamped with
    [Mesh.epoch]; a fault-state flip invalidates them lazily, so only
    roots that multicast after the flip pay for a rebuild. *)

type t

val create : Mesh.t -> t

val tree : t -> root:int -> int array
(** [tree t ~root] is the parent array of the multicast tree rooted at
    [root], rebuilt first if the mesh epoch moved: [parent.(root) = root],
    [parent.(v)] the predecessor of [v] on a shortest surviving path from
    [root], and [-1] for routers [root] cannot reach (including every
    node when [root]'s own router is down). The array is owned by the
    cache and valid only until the next [tree] call. *)

val builds : t -> int
(** Tree (re)builds so far, across all roots. *)

val visits : t -> int
(** Cumulative BFS node visits across builds — the recompute cost model,
    mirroring [Adaptive.visits]. *)
