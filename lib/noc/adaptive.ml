(* Epoch-stamped per-router next-hop tables over the surviving topology.

   For every destination [dst] a reverse BFS from [dst] over the up
   routers and up directed links labels each router [u] with its parent
   [v] on a shortest surviving path u -> dst; [table.(u*n + dst) = v].
   Neighbours are explored in the fixed direction order north, west,
   east, south, so ties break deterministically and the tables are a
   pure function of the fault state (hence identical across campaign
   worker counts).

   Freshness is tracked with [Mesh.epoch]: a table recomputed at epoch e
   stays valid until the mesh reports a fault-state flip. [refresh] is
   O(n * (n + links)) — the cumulative node-visit count is exposed as a
   cost model for the obs layer.

   Deadlock/livelock argument (DESIGN.md section 9): the simulated links
   are FIFO queues of unbounded depth, so there is no buffer-cycle
   deadlock to avoid; livelock cannot occur because within one epoch
   every hop strictly decreases the BFS distance to the destination, and
   a run contains finitely many epochs. *)

type t = {
  mesh : Mesh.t;
  n : int;
  table : int array;  (* cur*n + dst -> next hop toward dst, -1 = unreachable *)
  queue : int array;  (* BFS scratch *)
  mutable epoch : int;  (* mesh epoch the table reflects; -1 = never computed *)
  mutable recomputes : int;
  mutable visits : int;  (* cumulative BFS node visits (recompute cost) *)
  mutable reachable_pairs : int;  (* ordered src<>dst pairs with a route *)
}

let create mesh =
  let n = Mesh.n_nodes mesh in
  {
    mesh;
    n;
    table = Array.make (n * n) (-1);
    queue = Array.make n 0;
    epoch = -1;
    recomputes = 0;
    visits = 0;
    reachable_pairs = 0;
  }

let recompute t =
  let mesh = t.mesh in
  let n = t.n in
  let w = Mesh.width mesh in
  let h = Mesh.height mesh in
  Array.fill t.table 0 (n * n) (-1);
  let pairs = ref 0 in
  for dst = 0 to n - 1 do
    if Mesh.router_up mesh dst then begin
      let base_dst = dst in
      t.table.((dst * n) + dst) <- dst;
      t.visits <- t.visits + 1;
      let head = ref 0 and tail = ref 0 in
      t.queue.(!tail) <- dst;
      incr tail;
      while !head < !tail do
        let v = t.queue.(!head) in
        incr head;
        (* Predecessors u with a live directed link u -> v, in fixed
           order: u above (its south link), u left (east), u right
           (west), u below (north). *)
        let consider u dir =
          if
            Mesh.router_up mesh u
            && Mesh.link_up_id mesh ((u * 4) + dir)
            && t.table.((u * n) + base_dst) < 0
          then begin
            t.table.((u * n) + base_dst) <- v;
            t.visits <- t.visits + 1;
            incr pairs;
            t.queue.(!tail) <- u;
            incr tail
          end
        in
        if v >= w then consider (v - w) 3;
        if v mod w > 0 then consider (v - 1) 2;
        if v mod w < w - 1 then consider (v + 1) 1;
        if v < w * (h - 1) then consider (v + w) 0
      done
    end
  done;
  t.reachable_pairs <- !pairs;
  t.recomputes <- t.recomputes + 1;
  t.epoch <- Mesh.epoch mesh

let refresh t =
  if t.epoch <> Mesh.epoch t.mesh then begin
    recompute t;
    true
  end
  else false

let next_hop t ~cur ~dst =
  ignore (refresh t);
  Array.unsafe_get t.table ((cur * t.n) + dst)

let reachable t ~src ~dst =
  ignore (refresh t);
  Array.unsafe_get t.table ((src * t.n) + dst) >= 0

let epoch t = t.epoch
let recomputes t = t.recomputes
let visits t = t.visits

let reachable_pairs t =
  ignore (refresh t);
  t.reachable_pairs

let total_pairs t = t.n * (t.n - 1)
