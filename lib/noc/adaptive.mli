(** Epoch-stamped BFS next-hop tables for adaptive fault-tolerant routing.

    Recomputed (lazily, on first use after a fault-state flip) from the
    surviving topology: for every destination a reverse BFS yields each
    router's next hop on a shortest surviving path, with a deterministic
    north/west/east/south tie-break, so a message is routable iff its
    endpoints are connected in the surviving graph. See DESIGN.md
    section 9 for the deadlock/livelock argument and the cost model. *)

type t

val create : Mesh.t -> t
(** Tables start unstamped; the first routing query computes them. *)

val refresh : t -> bool
(** Recompute the tables if the mesh epoch moved since the last compute.
    Returns whether a recompute happened. Called implicitly by every
    query below; call it explicitly (e.g. from a [Mesh.on_change]
    subscriber) to recompute eagerly on every fail/repair event. *)

val next_hop : t -> cur:int -> dst:int -> int
(** Next router on a shortest surviving path, [dst] itself when
    [cur = dst], or [-1] when [dst] is unreachable from [cur]. *)

val reachable : t -> src:int -> dst:int -> bool

val epoch : t -> int
(** The {!Mesh.epoch} the current tables reflect (-1 before first use). *)

val recomputes : t -> int
(** Number of table recomputations so far. *)

val visits : t -> int
(** Cumulative BFS node visits across all recomputes — the recompute
    cost model surfaced by the obs layer. *)

val reachable_pairs : t -> int
(** Ordered [src <> dst] pairs with a surviving route; partition
    detection compares this against {!total_pairs}. *)

val total_pairs : t -> int
(** [n * (n-1)], the fault-free reachable-pair count. *)
