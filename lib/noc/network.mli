(** Message transport over the mesh, simulated hop by hop.

    Each hop costs router latency plus serialization time (message bytes over
    link bandwidth), and links are FIFO resources: a message arriving at a
    busy link queues behind earlier traffic, so congestion emerges rather
    than being parameterized. Failures are evaluated per hop, so a link or
    router that dies mid-flight kills the messages crossing it.

    In-flight messages are pooled records and the next hop is recomputed
    per hop ([Mesh.next_hop] — same tiles as the precomputed
    dimension-order route), so a unicast allocates only its payload box
    regardless of distance. *)

type routing =
  | Xy  (** Deterministic dimension-order; a fault on the unique path drops. *)
  | Xy_with_yx_fallback
      (** Source-side fault awareness: if the XY path is known broken, take
          the YX path; only when both are broken is the message doomed. *)

type config = {
  router_latency : int;  (** cycles of switching per hop. *)
  bytes_per_cycle : int;  (** link bandwidth. *)
  local_latency : int;  (** delivery cost for dst = src. *)
  routing : routing;
}

val default_config : config
(** 2-cycle routers, 16 bytes/cycle, 1-cycle loopback, XY routing. *)

type 'msg t

val create : Resoc_des.Engine.t -> Mesh.t -> config -> 'msg t

val mesh : 'msg t -> Mesh.t

val attach : 'msg t -> node:int -> (src:int -> 'msg -> unit) -> unit
(** Register the receive handler of a tile. Re-attaching replaces the
    handler (used when a tile is rejuvenated). *)

val detach : 'msg t -> node:int -> unit
(** Messages for a detached tile are dropped (tile is off-line). *)

val send : 'msg t -> src:int -> dst:int -> bytes_:int -> 'msg -> unit
(** Injects a message; it is delivered (or dropped) asynchronously via the
    engine. [bytes_] must be positive. *)

(** Aggregate statistics. *)

val sent : 'msg t -> int
val delivered : 'msg t -> int
val dropped : 'msg t -> int
val bytes_sent : 'msg t -> int
val latency : 'msg t -> Resoc_des.Metrics.Histogram.t
(** Delivery latencies in cycles. *)

val hop_load : 'msg t -> (Mesh.link * int) list
(** Messages carried per link (congestion map). *)
