(** Message transport over the mesh, simulated hop by hop.

    Each hop costs router latency plus serialization time (message bytes over
    link bandwidth), and links are FIFO resources: a message arriving at a
    busy link queues behind earlier traffic, so congestion emerges rather
    than being parameterized. Failures are evaluated per hop, so a link or
    router that dies mid-flight kills the messages crossing it.

    In-flight messages are pooled records and the next hop is recomputed
    per hop ([Mesh.next_hop] or the adaptive tables — see {!routing}), so a
    unicast allocates only its payload box regardless of distance. *)

type routing =
  | Xy  (** Deterministic dimension-order; a fault on the unique path drops. *)
  | Xy_with_yx_fallback
      (** Source-side fault awareness: if the XY path is known broken, take
          the YX path; only when both are broken is the message doomed. *)
  | Adaptive
      (** Fault-adaptive routing over per-router next-hop tables
          ({!Adaptive}), recomputed on every fail/repair event: a message
          is delivered iff its endpoints are connected in the surviving
          topology, and drops only ever reflect genuine partitions.
          DESIGN.md section 9 gives the deadlock/livelock argument. *)

type config = {
  router_latency : int;  (** cycles of switching per hop. *)
  bytes_per_cycle : int;  (** link bandwidth. *)
  local_latency : int;  (** delivery cost for dst = src. *)
  routing : routing;
  multicast : bool;
      (** Enable tree multicast ({!multicast}): per-root BFS trees over
          the surviving topology ({!Mcast}), cached per mesh epoch. Off
          by default; with it off the network is byte-for-byte the
          pre-multicast simulator. *)
}

val default_config : config
(** 2-cycle routers, 16 bytes/cycle, 1-cycle loopback, XY routing,
    multicast off. *)

type 'msg t

val create : Resoc_des.Engine.t -> Mesh.t -> config -> 'msg t

val mesh : 'msg t -> Mesh.t

val attach : 'msg t -> node:int -> (src:int -> 'msg -> unit) -> unit
(** Register the receive handler of a tile. Re-attaching replaces the
    handler (used when a tile is rejuvenated). *)

val detach : 'msg t -> node:int -> unit
(** Messages for a detached tile are dropped (tile is off-line). *)

val send : 'msg t -> src:int -> dst:int -> bytes_:int -> 'msg -> unit
(** Injects a message; it is delivered (or dropped) asynchronously via the
    engine. [bytes_] must be positive. *)

val multicast : 'msg t -> src:int -> dsts:int array -> ?n:int -> bytes_:int -> 'msg -> unit
(** One payload to many destinations along the per-root multicast tree:
    the message forks at branch routers, every live link carries it at
    most once, and it reaches every destination the surviving topology
    connects to [src] (duplicates in [dsts] are served once). [?n] limits
    the destinations to a prefix of [dsts] so callers can reuse a scratch
    array without slicing. Aggregate statistics count the logical
    fan-out — [n] sends and [n * bytes_] bytes, like the unicast loop it
    replaces — so stats stay comparable across modes; the physical
    saving shows up in event counts, link load and the [noc.mcast.*]
    instruments. Destinations equal to [src] are delivered locally after
    [local_latency]. Raises [Invalid_argument] when the config has
    [multicast = false]. *)

val set_partition_handler : 'msg t -> (reachable:int -> total:int -> unit) -> unit
(** Adaptive mode only: [f ~reachable ~total] is called synchronously after
    every route-table recompute with the number of ordered reachable
    src/dst pairs out of [total = n*(n-1)]. [reachable < total] means the
    surviving topology is partitioned (or has dead routers); the resilience
    layer uses this to raise the threat level instead of diagnosing
    silent loss. The handler must not mutate the mesh. *)

(** Aggregate statistics. *)

val sent : 'msg t -> int
val delivered : 'msg t -> int
val dropped : 'msg t -> int
val bytes_sent : 'msg t -> int
val latency : 'msg t -> Resoc_des.Metrics.Histogram.t
(** Delivery latencies in cycles. *)

val hop_load : 'msg t -> (Mesh.link * int) list
(** Messages carried per link (congestion map). Allocates the assoc
    list; hot sampling sites should use {!iter_hop_load}. *)

val iter_hop_load : 'msg t -> (lid:int -> load:int -> unit) -> unit
(** Zero-alloc fold over the loaded links: calls [f ~lid ~load] for every
    directed link id with a positive carried-message count, in link-id
    order. [Mesh.link_of_id] decodes [lid] when the endpoint pair is
    needed. *)

(** {1 Adaptive-mode introspection} *)

val reachable : 'msg t -> src:int -> dst:int -> bool
(** Whether the current route tables reach [dst] from [src]. Raises
    [Invalid_argument] unless routing is [Adaptive]. *)

val route_epoch : 'msg t -> int
(** Mesh epoch the adaptive tables were last computed for. Raises
    [Invalid_argument] unless routing is [Adaptive]. *)

val recomputes : 'msg t -> int
(** Route-table recomputations so far (0 outside adaptive mode). *)

val recompute_visits : 'msg t -> int
(** Cumulative BFS node visits across recomputations — the recompute cost
    model of DESIGN.md section 9 (0 outside adaptive mode). *)

(** {1 Multicast introspection} *)

val mcast_tree_builds : 'msg t -> int
(** Multicast tree (re)builds so far (0 with multicast off). *)

val mcast_tree_visits : 'msg t -> int
(** Cumulative BFS node visits across multicast tree builds (0 with
    multicast off). *)

(** {1 Checker mutation knobs}

    Used by the [--check] self-tests to prove the NoC invariants fire
    (DESIGN.md section 7); never set outside tests. *)

val test_skip_up_check : bool ref
(** Transmit across failed links/routers instead of dropping. *)

val test_detour_loop : bool ref
(** Adaptive mode: bounce each flight back where it came from. *)

val test_blackhole : bool ref
(** Adaptive mode: drop every flight at its first router. *)

val test_mcast_skip_branch : bool ref
(** Silently prune one branch at every multicast fork — proves the
    delivery-set-equality invariant fires. *)

val test_mcast_dup_deliver : bool ref
(** Deliver every multicast payload twice — proves the duplicate-freedom
    invariant fires. *)
