(* Epoch-stamped per-root multicast trees over the surviving topology.

   For every multicast root a forward BFS from the root over the up
   routers and up directed links labels each reachable router with its
   tree parent; [parent.(v)] is the predecessor of [v] on a shortest
   surviving path root -> v, [parent.(root) = root], and [-1] marks
   routers the root cannot reach. Neighbours are explored in the fixed
   direction order north, west, east, south — the same tie-break as the
   adaptive unicast tables — so the trees are a pure function of the
   fault state and identical across campaign worker counts.

   Freshness mirrors [Adaptive]: each tree carries the [Mesh.epoch] it
   was computed for and is rebuilt lazily, per root, the first time it
   is requested after a fault-state flip. Roots that never multicast
   never pay for a tree, and a burst of broadcasts between two faults
   reuses the cached trees for free. The cumulative BFS visit count is
   exposed as the recompute cost model, like [Adaptive.visits]. *)

type tree = {
  parent : int array;  (* node -> predecessor toward the root; -1 = unreachable *)
  mutable tree_epoch : int;  (* mesh epoch the tree reflects; -1 = never built *)
}

type t = {
  mesh : Mesh.t;
  n : int;
  trees : tree option array;  (* by root, allocated on first use *)
  queue : int array;  (* BFS scratch *)
  mutable builds : int;
  mutable visits : int;  (* cumulative BFS node visits (build cost) *)
}

let create mesh =
  let n = Mesh.n_nodes mesh in
  { mesh; n; trees = Array.make n None; queue = Array.make n 0; builds = 0; visits = 0 }

let build t root tr =
  let mesh = t.mesh in
  let w = Mesh.width mesh in
  let h = Mesh.height mesh in
  Array.fill tr.parent 0 t.n (-1);
  if Mesh.router_up mesh root then begin
    tr.parent.(root) <- root;
    t.visits <- t.visits + 1;
    let head = ref 0 and tail = ref 0 in
    t.queue.(!tail) <- root;
    incr tail;
    while !head < !tail do
      let v = t.queue.(!head) in
      incr head;
      (* Successors u with a live directed link v -> u, in the fixed
         N/W/E/S order of v's own ports. *)
      let consider u dir =
        if
          Mesh.router_up mesh u
          && Mesh.link_up_id mesh ((v * 4) + dir)
          && tr.parent.(u) < 0
        then begin
          tr.parent.(u) <- v;
          t.visits <- t.visits + 1;
          t.queue.(!tail) <- u;
          incr tail
        end
      in
      if v >= w then consider (v - w) 0;
      if v mod w > 0 then consider (v - 1) 1;
      if v mod w < w - 1 then consider (v + 1) 2;
      if v < w * (h - 1) then consider (v + w) 3
    done
  end;
  tr.tree_epoch <- Mesh.epoch mesh;
  t.builds <- t.builds + 1

let tree t ~root =
  let tr =
    match t.trees.(root) with
    | Some tr -> tr
    | None ->
      let tr = { parent = Array.make t.n (-1); tree_epoch = -1 } in
      t.trees.(root) <- Some tr;
      tr
  in
  if tr.tree_epoch <> Mesh.epoch t.mesh then build t root tr;
  tr.parent

let builds t = t.builds
let visits t = t.visits
