(** Statistical aggregation over campaign replicates.

    Every multi-seed experiment reports its metrics through these summaries
    so tables carry proper dispersion information (95% confidence intervals,
    Student-t for the small replicate counts typical of a bench run) instead
    of bare point estimates. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  ci95 : float;
      (** half-width of the 95% confidence interval on the mean,
          [t95(n-1) * stddev / sqrt n]; 0 when [n < 2] *)
}

val summarize : float array -> summary
(** Aggregate a metric over replicates. An empty array yields a summary of
    NaNs with [n = 0]. *)

val t95 : df:int -> float
(** Two-sided 95% Student-t critical value for [df] degrees of freedom
    (exact table for df <= 30, standard coarser steps above, 1.96 in the
    limit). Raises [Invalid_argument] if [df <= 0]. *)

type fraction = {
  trials : int;
  successes : int;
  fraction : float;
  lo : float;  (** lower bound of the 95% Wilson score interval *)
  hi : float;  (** upper bound of the 95% Wilson score interval *)
}

val survival : bool array -> fraction
(** Aggregate a boolean outcome (e.g. "survived the horizon") over
    replicates with a Wilson score interval, which stays sensible at the
    0/n and n/n extremes where the normal approximation collapses. *)

val pp_mean_ci : ?decimals:int -> summary -> string
(** ["12.3 ±1.2"]; bare mean when [n < 2]. *)

val pp_fraction : fraction -> string
(** ["14/16 [0.64,0.97]"]. *)
