(** Deterministic seed derivation for campaign grids.

    Every replicate's seed is a pure function of (root seed, cell index,
    replicate index) through the SplitMix64 split tree ({!Resoc_des.Rng}),
    so results are bit-identical regardless of worker count or scheduling
    order, and [--seeds N] scales every experiment uniformly from one root
    seed instead of ad-hoc hardcoded lists. *)

val cell_seed : root:int64 -> cell:int -> int64
(** Seed of the [cell]-th cell stream under [root]. *)

val replicate_seed : root:int64 -> cell:int -> replicate:int -> int64
(** Seed of the [replicate]-th replicate within a cell: one more level of
    the split tree below {!cell_seed}. *)

val replicate_seeds : root:int64 -> cell:int -> n:int -> int64 array
(** The first [n] replicate seeds of a cell, in replicate order. *)
