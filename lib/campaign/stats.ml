type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  ci95 : float;
}

(* Two-sided 95% critical values, df = 1..30. *)
let t95_table =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let t95 ~df =
  if df <= 0 then invalid_arg "Stats.t95: df must be positive"
  else if df <= 30 then t95_table.(df - 1)
  else if df <= 40 then 2.021
  else if df <= 60 then 2.000
  else if df <= 120 then 1.980
  else 1.960

let summarize values =
  let n = Array.length values in
  if n = 0 then { n = 0; mean = Float.nan; stddev = Float.nan; min = Float.nan; max = Float.nan; ci95 = Float.nan }
  else begin
    let sum = Array.fold_left ( +. ) 0.0 values in
    let mean = sum /. float_of_int n in
    let mn = Array.fold_left Float.min Float.infinity values in
    let mx = Array.fold_left Float.max Float.neg_infinity values in
    if n = 1 then { n; mean; stddev = 0.0; min = mn; max = mx; ci95 = 0.0 }
    else begin
      let ss =
        Array.fold_left (fun acc v -> acc +. ((v -. mean) *. (v -. mean))) 0.0 values
      in
      let stddev = sqrt (ss /. float_of_int (n - 1)) in
      let ci95 = t95 ~df:(n - 1) *. stddev /. sqrt (float_of_int n) in
      { n; mean; stddev; min = mn; max = mx; ci95 }
    end
  end

type fraction = {
  trials : int;
  successes : int;
  fraction : float;
  lo : float;
  hi : float;
}

let z95 = 1.959963984540054

let survival outcomes =
  let n = Array.length outcomes in
  if n = 0 then { trials = 0; successes = 0; fraction = Float.nan; lo = Float.nan; hi = Float.nan }
  else begin
    let successes = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 outcomes in
    let nf = float_of_int n in
    let p = float_of_int successes /. nf in
    let z2 = z95 *. z95 in
    let denom = 1.0 +. (z2 /. nf) in
    let center = (p +. (z2 /. (2.0 *. nf))) /. denom in
    let half =
      z95 /. denom *. sqrt ((p *. (1.0 -. p) /. nf) +. (z2 /. (4.0 *. nf *. nf)))
    in
    {
      trials = n;
      successes;
      fraction = p;
      lo = Float.max 0.0 (center -. half);
      hi = Float.min 1.0 (center +. half);
    }
  end

let pp_mean_ci ?(decimals = 1) s =
  if s.n < 2 then Printf.sprintf "%.*f" decimals s.mean
  else Printf.sprintf "%.*f ±%.*f" decimals s.mean decimals s.ci95

let pp_fraction f = Printf.sprintf "%d/%d [%.2f,%.2f]" f.successes f.trials f.lo f.hi
