(** Campaign progress reporting on stderr.

    Live [\r]-rewritten replicate counts with an ETA while stderr is a
    terminal; in either case {!finish} prints one summary line with the
    wall-clock time, which is also how bench runs report their campaign
    timings. Progress never touches stdout, so tables and emitted files are
    unaffected. *)

type t

val create : label:string -> total:int -> t
(** Start a progress display for [total] replicates, tagged [label]
    (typically the campaign id, e.g. ["e6"]). *)

val tick : t -> completed:int -> total:int -> unit
(** Update the display; call from the pool's [on_done] callback (already
    serialized there). A no-op when stderr is not a tty. *)

val finish : t -> unit
(** Clear the live line and print ["[e6] 96 replicates in 3.2s"]. *)
