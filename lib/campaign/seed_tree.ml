module Rng = Resoc_des.Rng

let cell_seed ~root ~cell = Rng.derive root cell

let replicate_seed ~root ~cell ~replicate = Rng.derive (cell_seed ~root ~cell) replicate

let replicate_seeds ~root ~cell ~n =
  let base = cell_seed ~root ~cell in
  Array.init n (fun replicate -> Rng.derive base replicate)
