module Obs = Resoc_obs.Obs

type metrics = (string * float) list

type trial = Completed of metrics | Failed of Pool.failure

type cell = {
  id : string;
  params : (string * string) list;
  run : seed:int64 -> metrics;
}

let cell ?(params = []) id run = { id; params; run }

type config = {
  root_seed : int64;
  replicates : int;
  jobs : int;
  progress : bool;
}

let default_config = { root_seed = 0x5EEDL; replicates = 16; jobs = 1; progress = false }

type aggregate = {
  cell_id : string;
  params : (string * string) list;
  seeds : int64 array;
  trials : trial array;
}

type result = {
  id : string;
  title : string;
  root_seed : int64;
  replicates : int;
  cells : aggregate list;
}

let run ?(config = default_config) ~id ~title cells =
  if config.replicates < 1 then invalid_arg "Campaign.run: replicates must be >= 1";
  Printexc.record_backtrace true;
  let grid = Array.of_list cells in
  let reps = config.replicates in
  let total = Array.length grid * reps in
  let seed_of index =
    Seed_tree.replicate_seed ~root:config.root_seed ~cell:(index / reps)
      ~replicate:(index mod reps)
  in
  let progress =
    if config.progress && total > 0 then Some (Progress.create ~label:id ~total) else None
  in
  let on_done =
    Option.map (fun p -> fun ~completed ~total -> Progress.tick p ~completed ~total) progress
  in
  let raw =
    Pool.map ~jobs:config.jobs ?on_done total (fun index ->
        let cell = grid.(index / reps) in
        (* A replicate runs wholly on one worker domain, so the domain-local
           instance list snapshots exactly this replicate's instruments —
           deterministic whichever worker picked it up. *)
        if !Obs.metrics_on then begin
          Obs.begin_replicate ();
          let m = cell.run ~seed:(seed_of index) in
          m @ Obs.replicate_metrics ()
        end
        else cell.run ~seed:(seed_of index))
  in
  Option.iter Progress.finish progress;
  let cells =
    List.mapi
      (fun c (cell : cell) ->
        {
          cell_id = cell.id;
          params = cell.params;
          seeds = Array.init reps (fun r -> seed_of ((c * reps) + r));
          trials =
            Array.init reps (fun r ->
                match raw.((c * reps) + r) with
                | Ok m -> Completed m
                | Error f -> Failed f);
        })
      cells
  in
  { id; title; root_seed = config.root_seed; replicates = reps; cells }

let failures agg =
  Array.fold_left
    (fun acc -> function Failed _ -> acc + 1 | Completed _ -> acc)
    0 agg.trials

let completed_values agg key =
  Array.to_list agg.trials
  |> List.filter_map (function
       | Completed m -> List.assoc_opt key m
       | Failed _ -> None)
  |> Array.of_list

let metric agg key = Stats.summarize (completed_values agg key)

let fraction agg key =
  Stats.survival (Array.map (fun v -> v > 0.5) (completed_values agg key))

let metric_keys agg =
  Array.fold_left
    (fun acc -> function
      | Failed _ -> acc
      | Completed m ->
        List.fold_left
          (fun acc (k, _) -> if List.mem k acc then acc else acc @ [ k ])
          acc m)
    [] agg.trials
