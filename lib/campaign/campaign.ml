module Obs = Resoc_obs.Obs
module Check = Resoc_check.Check
module Inject = Resoc_check.Inject
module Shrink = Resoc_check.Shrink
module Replay = Resoc_check.Replay

type metrics = (string * float) list

type trial = Completed of metrics | Failed of Pool.failure

type cell = {
  id : string;
  params : (string * string) list;
  run : seed:int64 -> metrics;
}

let cell ?(params = []) id run = { id; params; run }

type config = {
  root_seed : int64;
  replicates : int;
  jobs : int;
  progress : bool;
  check : bool;
  shrink : bool;
  fail_dir : string option;
}

let default_config =
  {
    root_seed = 0x5EEDL;
    replicates = 16;
    jobs = 1;
    progress = false;
    check = false;
    shrink = false;
    fail_dir = None;
  }

type aggregate = {
  cell_id : string;
  params : (string * string) list;
  seeds : int64 array;
  trials : trial array;
}

type result = {
  id : string;
  title : string;
  root_seed : int64;
  replicates : int;
  cells : aggregate list;
}

(* Re-execute one failing replicate under suppression masks until ddmin lands
   on a locally minimal injection schedule, then emit the FAIL record. Runs on
   the calling domain after the pool has drained; each attempt resets the
   domain-local checker, injection log and (when live) observability state, so
   the re-runs see exactly what the worker saw. *)
let shrink_failure ~fail_dir ~campaign_id (cell : cell) ~seed (f : Pool.failure) =
  let attempt mask =
    Check.begin_replicate ();
    Inject.begin_replicate ();
    if !Obs.metrics_on then Obs.begin_replicate ();
    (match mask with Some (total, keep) -> Inject.set_mask ~total keep | None -> ());
    match cell.run ~seed with _ -> None | exception e -> Some (Printexc.to_string e)
  in
  match attempt None with
  | None ->
    Printf.eprintf
      "campaign %s: cell %s seed %Ld failed in the pool but not on re-run; not shrinking\n%!"
      campaign_id cell.id seed
  | Some _ ->
    let total = Inject.count () in
    let test keep = attempt (Some (total, keep)) <> None in
    let keep = List.sort_uniq compare (Shrink.ddmin ~test total) in
    let error = match attempt (Some (total, keep)) with Some e -> e | None -> f.Pool.error in
    let events =
      List.mapi
        (fun i (ev : Inject.event) ->
          { Replay.kind = ev.kind; time = ev.time; a = ev.a; b = ev.b; kept = List.mem i keep })
        (Inject.events ())
    in
    let record =
      { Replay.experiment = campaign_id; cell = cell.id; seed; error; total_events = total;
        keep; events }
    in
    (match fail_dir with
     | Some dir ->
       let path = Replay.write ~dir record in
       Printf.eprintf "campaign %s: cell %s seed %Ld shrunk %d -> %d injection events; wrote %s\n%!"
         campaign_id cell.id seed total (List.length keep) path
     | None ->
       Printf.eprintf "campaign %s: cell %s seed %Ld shrunk %d -> %d injection events\n%!"
         campaign_id cell.id seed total (List.length keep))

let run ?(config = default_config) ~id ~title cells =
  if config.replicates < 1 then invalid_arg "Campaign.run: replicates must be >= 1";
  Printexc.record_backtrace true;
  let grid = Array.of_list cells in
  let reps = config.replicates in
  let total = Array.length grid * reps in
  let seed_of index =
    Seed_tree.replicate_seed ~root:config.root_seed ~cell:(index / reps)
      ~replicate:(index mod reps)
  in
  let progress =
    if config.progress && total > 0 then Some (Progress.create ~label:id ~total) else None
  in
  let on_done =
    Option.map (fun p -> fun ~completed ~total -> Progress.tick p ~completed ~total) progress
  in
  let raw =
    Pool.map ~jobs:config.jobs ?on_done total (fun index ->
        let cell = grid.(index / reps) in
        (* A replicate runs wholly on one worker domain, so the domain-local
           instance list snapshots exactly this replicate's instruments —
           deterministic whichever worker picked it up. *)
        if config.check then begin
          Check.begin_replicate ();
          Inject.begin_replicate ()
        end;
        if !Obs.metrics_on then begin
          Obs.begin_replicate ();
          let m = cell.run ~seed:(seed_of index) in
          m @ Obs.replicate_metrics ()
        end
        else cell.run ~seed:(seed_of index))
  in
  Option.iter Progress.finish progress;
  if config.check && config.shrink then begin
    Array.iteri
      (fun index -> function
        | Ok _ -> ()
        | Error f ->
          shrink_failure ~fail_dir:config.fail_dir ~campaign_id:id grid.(index / reps)
            ~seed:(seed_of index) f)
      raw;
    (* Leave no mask behind for whatever runs next on this domain. *)
    Check.begin_replicate ();
    Inject.begin_replicate ()
  end;
  let cells =
    List.mapi
      (fun c (cell : cell) ->
        {
          cell_id = cell.id;
          params = cell.params;
          seeds = Array.init reps (fun r -> seed_of ((c * reps) + r));
          trials =
            Array.init reps (fun r ->
                match raw.((c * reps) + r) with
                | Ok m -> Completed m
                | Error f -> Failed f);
        })
      cells
  in
  { id; title; root_seed = config.root_seed; replicates = reps; cells }

let failures agg =
  Array.fold_left
    (fun acc -> function Failed _ -> acc + 1 | Completed _ -> acc)
    0 agg.trials

let completed_values agg key =
  Array.to_list agg.trials
  |> List.filter_map (function
       | Completed m -> List.assoc_opt key m
       | Failed _ -> None)
  |> Array.of_list

let metric agg key = Stats.summarize (completed_values agg key)

let fraction agg key =
  Stats.survival (Array.map (fun v -> v > 0.5) (completed_values agg key))

let metric_keys agg =
  Array.fold_left
    (fun acc -> function
      | Failed _ -> acc
      | Completed m ->
        List.fold_left
          (fun acc (k, _) -> if List.mem k acc then acc else acc @ [ k ])
          acc m)
    [] agg.trials
