(** Structured result emission for campaign runs.

    The JSON file makes the perf/claim trajectory machine-readable across
    PRs: one [BENCH_<id>.json] per campaign, holding per-cell aggregate
    statistics and the raw per-trial metrics. The file content is a pure
    function of the campaign result — worker count and wall-clock are
    deliberately excluded — so reruns with different [--jobs] produce
    byte-identical files. *)

val json_file : dir:string -> Campaign.result -> string
(** Write [dir/BENCH_<id>.json]; returns the path written. *)

val csv_file : dir:string -> Campaign.result -> string
(** Write [dir/BENCH_<id>.csv]: one row per trial with cell id, parameters,
    replicate index, seed, status and every metric column (union across the
    campaign; blank where a trial lacks the metric). Returns the path. *)
