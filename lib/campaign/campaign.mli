(** Deterministic, Domains-parallel Monte-Carlo campaign runner.

    A campaign is a grid of {e cells} (one per experiment configuration
    point); each cell is expanded into [replicates] trials whose seeds come
    from the SplitMix64 seed tree ({!Seed_tree}), keyed only by (root seed,
    cell index, replicate index). Trials run on a {!Pool} of worker domains
    and land in slots indexed by (cell, replicate), so every aggregate —
    and the emitted JSON/CSV — is bit-identical whether the campaign ran on
    1 domain or 16. The simulations themselves stay single-threaded; only
    replicates are parallel.

    A trial that raises is recorded as [Failed] with its backtrace and the
    rest of the campaign keeps running. *)

type metrics = (string * float) list
(** One trial's named measurements, in report order. A metric may be
    omitted by some trials (e.g. ["failed_at"] only when the system fell);
    aggregation is per-key over the trials that carry it. Boolean outcomes
    are encoded as 0.0 / 1.0 and aggregated with {!fraction}. *)

type trial = Completed of metrics | Failed of Pool.failure

type cell = {
  id : string;  (** row label within the campaign, e.g. ["fast/diverse"] *)
  params : (string * string) list;
      (** the configuration point, as key/value pairs for CSV/JSON *)
  run : seed:int64 -> metrics;  (** one replicate; must not print *)
}

val cell : ?params:(string * string) list -> string -> (seed:int64 -> metrics) -> cell

type config = {
  root_seed : int64;
  replicates : int;  (** trials per cell; must be >= 1 *)
  jobs : int;  (** worker domains; clamped to [1 .. total trials] *)
  progress : bool;  (** stderr progress/timing via {!Progress} *)
  check : bool;
      (** reset the domain-local {!Resoc_check} state before every trial
          (the global [Check.enabled] / [Inject.active] gates must be set by
          the caller before instruments are created) *)
  shrink : bool;
      (** after the pool drains, ddmin-minimize every failed trial's
          injection schedule; requires [check] *)
  fail_dir : string option;  (** where shrunk [FAIL_*.json] records land *)
}

val default_config : config
(** [{ root_seed = 0x5EED; replicates = 16; jobs = 1; progress = false;
    check = false; shrink = false; fail_dir = None }] *)

type aggregate = {
  cell_id : string;
  params : (string * string) list;
  seeds : int64 array;  (** replicate seeds, in replicate order *)
  trials : trial array;  (** same order as [seeds] *)
}

type result = {
  id : string;  (** campaign id, e.g. ["e6"]; names [BENCH_<id>.json] *)
  title : string;
  root_seed : int64;
  replicates : int;
  cells : aggregate list;  (** in input cell order *)
}

val run : ?config:config -> id:string -> title:string -> cell list -> result
(** Expand the grid, run all trials on the pool, regroup by cell. Raises
    [Invalid_argument] if [replicates < 1]. *)

(** {2 Aggregate accessors} *)

val failures : aggregate -> int

val metric : aggregate -> string -> Stats.summary
(** Summary of a metric over the completed trials that carry it. *)

val fraction : aggregate -> string -> Stats.fraction
(** Survival-style aggregation of a 0/1 metric (values > 0.5 count as
    success) over the completed trials that carry it. *)

val metric_keys : aggregate -> string list
(** Union of metric names across completed trials, in first-appearance
    order — the column order used by the emitters. *)
