type failure = { error : string; backtrace : string }

let default_jobs () =
  match Sys.getenv_opt "RESOC_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let map ~jobs ?on_done n f =
  if n < 0 then invalid_arg "Pool.map: negative job count";
  let jobs = max 1 (min jobs (max 1 n)) in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let notify = Mutex.create () in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let r =
          try Ok (f i)
          with e ->
            let backtrace = Printexc.get_backtrace () in
            Error { error = Printexc.to_string e; backtrace }
        in
        results.(i) <- Some r;
        let done_now = 1 + Atomic.fetch_and_add completed 1 in
        (match on_done with
        | Some cb -> Mutex.protect notify (fun () -> cb ~completed:done_now ~total:n)
        | None -> ());
        loop ()
      end
    in
    loop ()
  in
  if jobs = 1 then worker ()
  else begin
    let helpers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers
  end;
  Array.map (function Some r -> r | None -> assert false) results
