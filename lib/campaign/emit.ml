(* Hand-rolled JSON/CSV writers: the container has no JSON dependency, and
   the format is small and fixed. Output is kept a pure function of the
   campaign result so reruns diff cleanly. *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr v =
  if Float.is_nan v || v = Float.infinity || v = Float.neg_infinity then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let add_float buf v = Buffer.add_string buf (float_repr v)

let add_assoc buf add_value pairs =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_json_string buf k;
      Buffer.add_char buf ':';
      add_value buf v)
    pairs;
  Buffer.add_char buf '}'

let add_summary buf (s : Stats.summary) =
  add_assoc buf add_float
    [
      ("n", float_of_int s.Stats.n);
      ("mean", s.Stats.mean);
      ("stddev", s.Stats.stddev);
      ("min", s.Stats.min);
      ("max", s.Stats.max);
      ("ci95", s.Stats.ci95);
    ]

let add_trial buf ~replicate ~seed (trial : Campaign.trial) =
  Buffer.add_char buf '{';
  Buffer.add_string buf "\"replicate\":";
  Buffer.add_string buf (string_of_int replicate);
  Buffer.add_string buf ",\"seed\":";
  add_json_string buf (Int64.to_string seed);
  (match trial with
  | Campaign.Completed m ->
    Buffer.add_string buf ",\"status\":\"completed\",\"metrics\":";
    add_assoc buf add_float m
  | Campaign.Failed f ->
    Buffer.add_string buf ",\"status\":\"failed\",\"error\":";
    add_json_string buf f.Pool.error);
  Buffer.add_char buf '}'

let add_cell buf (agg : Campaign.aggregate) =
  Buffer.add_char buf '{';
  Buffer.add_string buf "\"id\":";
  add_json_string buf agg.Campaign.cell_id;
  Buffer.add_string buf ",\"params\":";
  add_assoc buf (fun buf v -> add_json_string buf v) agg.Campaign.params;
  Buffer.add_string buf ",\"failures\":";
  Buffer.add_string buf (string_of_int (Campaign.failures agg));
  Buffer.add_string buf ",\"stats\":";
  add_assoc buf add_summary
    (List.map (fun k -> (k, Campaign.metric agg k)) (Campaign.metric_keys agg));
  Buffer.add_string buf ",\"trials\":[";
  Array.iteri
    (fun r trial ->
      if r > 0 then Buffer.add_char buf ',';
      add_trial buf ~replicate:r ~seed:agg.Campaign.seeds.(r) trial)
    agg.Campaign.trials;
  Buffer.add_string buf "]}"

let render_json (result : Campaign.result) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"id\":";
  add_json_string buf result.Campaign.id;
  Buffer.add_string buf ",\"title\":";
  add_json_string buf result.Campaign.title;
  Buffer.add_string buf ",\"root_seed\":";
  add_json_string buf (Int64.to_string result.Campaign.root_seed);
  Buffer.add_string buf ",\"replicates\":";
  Buffer.add_string buf (string_of_int result.Campaign.replicates);
  Buffer.add_string buf ",\"cells\":[";
  List.iteri
    (fun i agg ->
      if i > 0 then Buffer.add_char buf ',';
      add_cell buf agg)
    result.Campaign.cells;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let write_file path content =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content);
  path

let json_file ~dir result =
  write_file (Filename.concat dir ("BENCH_" ^ result.Campaign.id ^ ".json")) (render_json result)

let csv_quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let render_csv (result : Campaign.result) =
  let param_keys =
    List.fold_left
      (fun acc (agg : Campaign.aggregate) ->
        List.fold_left
          (fun acc (k, _) -> if List.mem k acc then acc else acc @ [ k ])
          acc agg.Campaign.params)
      [] result.Campaign.cells
  in
  let metric_cols =
    List.fold_left
      (fun acc agg ->
        List.fold_left
          (fun acc k -> if List.mem k acc then acc else acc @ [ k ])
          acc (Campaign.metric_keys agg))
      [] result.Campaign.cells
  in
  let buf = Buffer.create 4096 in
  let emit_row cols =
    Buffer.add_string buf (String.concat "," (List.map csv_quote cols));
    Buffer.add_char buf '\n'
  in
  emit_row
    ([ "cell"; "replicate"; "seed"; "status" ] @ param_keys @ metric_cols);
  List.iter
    (fun (agg : Campaign.aggregate) ->
      Array.iteri
        (fun r trial ->
          let params =
            List.map
              (fun k -> Option.value ~default:"" (List.assoc_opt k agg.Campaign.params))
              param_keys
          in
          let status, metrics =
            match trial with
            | Campaign.Completed m ->
              ( "completed",
                List.map
                  (fun k ->
                    match List.assoc_opt k m with
                    | Some v -> float_repr v
                    | None -> "")
                  metric_cols )
            | Campaign.Failed _ -> ("failed", List.map (fun _ -> "") metric_cols)
          in
          emit_row
            ([
               agg.Campaign.cell_id;
               string_of_int r;
               Int64.to_string agg.Campaign.seeds.(r);
               status;
             ]
            @ params @ metrics))
        agg.Campaign.trials)
    result.Campaign.cells;
  Buffer.contents buf

let csv_file ~dir result =
  write_file (Filename.concat dir ("BENCH_" ^ result.Campaign.id ^ ".csv")) (render_csv result)
