(** Fixed-size worker pool over OCaml 5 [Domain]s.

    Jobs are claimed from a shared atomic counter and each result is written
    to its own slot of a pre-sized array, so the output order is the input
    order no matter how the scheduler interleaves workers — the property the
    campaign runner's determinism guarantee rests on. A job that raises is
    captured as an [Error] with its backtrace instead of tearing down the
    pool. *)

type failure = { error : string; backtrace : string }

val default_jobs : unit -> int
(** Worker count when the caller does not specify one: the [RESOC_JOBS]
    environment variable if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val map :
  jobs:int ->
  ?on_done:(completed:int -> total:int -> unit) ->
  int ->
  (int -> 'a) ->
  ('a, failure) result array
(** [map ~jobs n f] evaluates [f 0 .. f (n-1)] on [min jobs n] domains
    (clamped to at least 1) and returns the results in index order.
    [on_done] is invoked after each job completes, serialized by a mutex,
    with the number completed so far — used for progress reporting. *)
