type t = {
  label : string;
  total : int;
  started : float;
  tty : bool;
}

let create ~label ~total =
  { label; total; started = Unix.gettimeofday (); tty = Unix.isatty Unix.stderr }

let tick t ~completed ~total =
  if t.tty then begin
    let elapsed = Unix.gettimeofday () -. t.started in
    let eta =
      if completed = 0 then 0.0
      else elapsed /. float_of_int completed *. float_of_int (total - completed)
    in
    Printf.eprintf "\r[%s] %d/%d replicates  eta %.1fs " t.label completed total eta;
    flush stderr
  end

let finish t =
  let elapsed = Unix.gettimeofday () -. t.started in
  if t.tty then prerr_string "\r\027[K";
  Printf.eprintf "[%s] %d replicates in %.1fs\n" t.label t.total elapsed;
  flush stderr
