type t = int64

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

(* The combinators below are [@inline]d and written as let-chains rather
   than int64-ref loops: the native compiler keeps unboxed int64 locals
   in registers, so an inlined [combine] costs one boxed allocation (the
   result) instead of one per intermediate step. [combine] sits on the
   replication hot path via [Types.request_digest]. *)

let[@inline] avalanche z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let[@inline] feed_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xFF))) fnv_prime

let of_bytes b =
  let h = ref fnv_offset in
  for i = 0 to Bytes.length b - 1 do
    h := feed_byte !h (Char.code (Bytes.unsafe_get b i))
  done;
  avalanche !h

let of_string s = of_bytes (Bytes.unsafe_of_string s)

let[@inline] feed_int64 h v =
  let h = feed_byte h (Int64.to_int v) in
  let h = feed_byte h (Int64.to_int (Int64.shift_right_logical v 8)) in
  let h = feed_byte h (Int64.to_int (Int64.shift_right_logical v 16)) in
  let h = feed_byte h (Int64.to_int (Int64.shift_right_logical v 24)) in
  let h = feed_byte h (Int64.to_int (Int64.shift_right_logical v 32)) in
  let h = feed_byte h (Int64.to_int (Int64.shift_right_logical v 40)) in
  let h = feed_byte h (Int64.to_int (Int64.shift_right_logical v 48)) in
  feed_byte h (Int64.to_int (Int64.shift_right_logical v 56))

let[@inline] combine a b = avalanche (feed_int64 (feed_int64 fnv_offset a) b)

let[@inline] combine_int a i = combine a (Int64.of_int i)

let chain prev d = combine prev d

let zero = 0L

let equal = Int64.equal

let to_hex t = Printf.sprintf "%016Lx" t

let pp ppf t = Format.pp_print_string ppf (to_hex t)
