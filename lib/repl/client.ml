module Engine = Resoc_des.Engine
module Histogram = Resoc_des.Metrics.Histogram

type 'msg inflight = {
  request : Types.request;
  submitted_at : int;
  votes : (int, int64) Hashtbl.t;
  mutable timer : Engine.handle option;
}

type 'msg t = {
  engine : Engine.t;
  fabric : 'msg Transport.fabric;
  id : int;
  n_replicas : int;
  quorum : int;
  retry_timeout : int;
  stats : Stats.t;
  to_msg : Types.request -> 'msg;
  on_complete : (Types.reply -> unit) option;
  mutable next_rid : int;
  mutable inflight : 'msg inflight option;
  mutable queue : int64 list;  (* reversed *)
  mutable stopped : bool;
}

let replica_ids t = List.init t.n_replicas Fun.id

let cancel_timer t fl =
  match fl.timer with
  | Some h ->
    Engine.cancel t.engine h;
    fl.timer <- None
  | None -> ()

let rec arm_timer t fl =
  fl.timer <-
    Some
      (Engine.schedule t.engine ~delay:t.retry_timeout (fun () ->
           let still_inflight = match t.inflight with Some cur -> cur == fl | None -> false in
           if (not t.stopped) && still_inflight then begin
             t.stats.Stats.retransmissions <- t.stats.Stats.retransmissions + 1;
             Transport.broadcast t.fabric ~src:t.id ~to_:(replica_ids t) (t.to_msg fl.request);
             arm_timer t fl
           end))

let start_request t payload =
  t.next_rid <- t.next_rid + 1;
  let request = Types.make_request ~client:t.id ~rid:t.next_rid ~payload in
  let fl =
    { request; submitted_at = Engine.now t.engine; votes = Hashtbl.create 8; timer = None }
  in
  t.inflight <- Some fl;
  t.stats.Stats.submitted <- t.stats.Stats.submitted + 1;
  Transport.broadcast t.fabric ~src:t.id ~to_:(replica_ids t) (t.to_msg request);
  arm_timer t fl

let complete t fl (reply : Types.reply) =
  cancel_timer t fl;
  t.inflight <- None;
  t.stats.Stats.completed <- t.stats.Stats.completed + 1;
  Histogram.add t.stats.Stats.latency (float_of_int (Engine.now t.engine - fl.submitted_at));
  let dissent =
    Hashtbl.fold
      (fun _ result acc -> if Int64.equal result reply.Types.result then acc else acc + 1)
      fl.votes 0
  in
  t.stats.Stats.wrong_replies <- t.stats.Stats.wrong_replies + dissent;
  (match t.on_complete with Some k -> k reply | None -> ());
  match t.queue with
  | [] -> ()
  | payload :: rest ->
    (* queue is reversed; take from the tail for FIFO order *)
    let rec split acc = function
      | [ last ] -> (last, List.rev acc)
      | x :: rest -> split (x :: acc) rest
      | [] -> assert false
    in
    let next, remaining = split [] (payload :: rest) in
    t.queue <- List.rev remaining;
    start_request t next

let on_reply t (reply : Types.reply) =
  match t.inflight with
  | Some fl when reply.Types.rid = fl.request.Types.rid ->
    Hashtbl.replace fl.votes reply.Types.replica reply.Types.result;
    let matching =
      Hashtbl.fold
        (fun _ result acc -> if Int64.equal result reply.Types.result then acc + 1 else acc)
        fl.votes 0
    in
    if matching >= t.quorum then complete t fl reply
  | Some _ | None -> ()

let create engine fabric ~id ~n_replicas ~quorum ~retry_timeout ~stats ~to_msg ~of_msg
    ?on_complete () =
  if quorum <= 0 then invalid_arg "Client.create: quorum must be positive";
  if retry_timeout <= 0 then invalid_arg "Client.create: timeout must be positive";
  let t =
    {
      engine;
      fabric;
      id;
      n_replicas;
      quorum;
      retry_timeout;
      stats;
      to_msg;
      on_complete;
      next_rid = 0;
      inflight = None;
      queue = [];
      stopped = false;
    }
  in
  fabric.Transport.set_handler id (fun ~src:_ msg ->
      if not t.stopped then
        match of_msg msg with Some reply -> on_reply t reply | None -> ());
  t

let submit t ~payload =
  if not t.stopped then
    match t.inflight with
    | None -> start_request t payload
    | Some _ -> t.queue <- payload :: t.queue

let id t = t.id

let outstanding t = t.inflight <> None

let queued t = List.length t.queue

let shutdown t =
  t.stopped <- true;
  match t.inflight with
  | Some fl ->
    cancel_timer t fl;
    t.inflight <- None
  | None -> ()
