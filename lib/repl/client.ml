module Engine = Resoc_des.Engine
module Histogram = Resoc_des.Metrics.Histogram

(* One request is in flight at a time, so its state lives directly on
   the client and is reset in place per request: no inflight record, no
   fresh votes table, no queue-list reversal. The retransmission timer
   guards on the request id instead of physical equality — rids are
   unique per client, so the checks are equivalent. *)
type 'msg t = {
  engine : Engine.t;
  fabric : 'msg Transport.fabric;
  id : int;
  n_replicas : int;
  replica_ids : int array;
  quorum : int;
  retry_timeout : int;
  stats : Stats.t;
  to_msg : Types.request -> 'msg;
  on_complete : (Types.reply -> unit) option;
  mutable next_rid : int;
  (* pooled in-flight state; valid while [inflight] *)
  mutable inflight : bool;
  mutable request : Types.request;
  mutable submitted_at : int;
  votes : (int, int64) Hashtbl.t;
  mutable timer : Engine.handle option;
  (* FIFO payload queue: a circular buffer of unboxed int64s *)
  mutable queue : int64 array;
  mutable queue_head : int;
  mutable queue_len : int;
  mutable stopped : bool;
}

let no_request : Types.request = { Types.client = -1; rid = -1; payload = 0L }

let cancel_timer t =
  match t.timer with
  | Some h ->
    Engine.cancel t.engine h;
    t.timer <- None
  | None -> ()

let broadcast_request t request =
  let msg = t.to_msg request in
  for i = 0 to Array.length t.replica_ids - 1 do
    t.fabric.Transport.send ~src:t.id ~dst:(Array.unsafe_get t.replica_ids i) msg
  done

let rec arm_timer t rid =
  t.timer <-
    Some
      (Engine.schedule t.engine ~delay:t.retry_timeout (fun () ->
           if (not t.stopped) && t.inflight && t.request.Types.rid = rid then begin
             t.stats.Stats.retransmissions <- t.stats.Stats.retransmissions + 1;
             broadcast_request t t.request;
             arm_timer t rid
           end))

let start_request t payload =
  t.next_rid <- t.next_rid + 1;
  let request = Types.make_request ~client:t.id ~rid:t.next_rid ~payload in
  t.inflight <- true;
  t.request <- request;
  t.submitted_at <- Engine.now t.engine;
  Hashtbl.reset t.votes;
  t.timer <- None;
  t.stats.Stats.submitted <- t.stats.Stats.submitted + 1;
  broadcast_request t request;
  arm_timer t request.Types.rid

let queue_push t payload =
  let cap = Array.length t.queue in
  if t.queue_len = cap then begin
    let ncap = max 16 (2 * cap) in
    let nq = Array.make ncap 0L in
    for i = 0 to t.queue_len - 1 do
      nq.(i) <- t.queue.((t.queue_head + i) land (cap - 1))
    done;
    t.queue <- nq;
    t.queue_head <- 0
  end;
  let cap = Array.length t.queue in
  t.queue.((t.queue_head + t.queue_len) land (cap - 1)) <- payload;
  t.queue_len <- t.queue_len + 1

let queue_pop t =
  let payload = t.queue.(t.queue_head) in
  t.queue_head <- (t.queue_head + 1) land (Array.length t.queue - 1);
  t.queue_len <- t.queue_len - 1;
  payload

let complete t (reply : Types.reply) =
  cancel_timer t;
  t.inflight <- false;
  t.stats.Stats.completed <- t.stats.Stats.completed + 1;
  Histogram.add t.stats.Stats.latency (float_of_int (Engine.now t.engine - t.submitted_at));
  let dissent =
    Hashtbl.fold
      (fun _ result acc -> if Int64.equal result reply.Types.result then acc else acc + 1)
      t.votes 0
  in
  t.stats.Stats.wrong_replies <- t.stats.Stats.wrong_replies + dissent;
  (match t.on_complete with Some k -> k reply | None -> ());
  if t.queue_len > 0 then start_request t (queue_pop t)

let on_reply t (reply : Types.reply) =
  if t.inflight && reply.Types.rid = t.request.Types.rid then begin
    Hashtbl.replace t.votes reply.Types.replica reply.Types.result;
    let matching =
      Hashtbl.fold
        (fun _ result acc -> if Int64.equal result reply.Types.result then acc + 1 else acc)
        t.votes 0
    in
    if matching >= t.quorum then complete t reply
  end

let create engine fabric ~id ~n_replicas ~quorum ~retry_timeout ~stats ~to_msg ~of_msg
    ?on_complete () =
  if quorum <= 0 then invalid_arg "Client.create: quorum must be positive";
  if retry_timeout <= 0 then invalid_arg "Client.create: timeout must be positive";
  let t =
    {
      engine;
      fabric;
      id;
      n_replicas;
      replica_ids = Array.init n_replicas Fun.id;
      quorum;
      retry_timeout;
      stats;
      to_msg;
      on_complete;
      next_rid = 0;
      inflight = false;
      request = no_request;
      submitted_at = 0;
      votes = Hashtbl.create 8;
      timer = None;
      queue = [||];
      queue_head = 0;
      queue_len = 0;
      stopped = false;
    }
  in
  fabric.Transport.set_handler id (fun ~src:_ msg ->
      if not t.stopped then
        match of_msg msg with Some reply -> on_reply t reply | None -> ());
  t

let submit t ~payload =
  if not t.stopped then
    if t.inflight then queue_push t payload else start_request t payload

let id t = t.id

let outstanding t = t.inflight

let queued t = t.queue_len

let shutdown t =
  t.stopped <- true;
  if t.inflight then begin
    cancel_timer t;
    t.inflight <- false
  end
