module Histogram = Resoc_des.Metrics.Histogram

type t = {
  mutable submitted : int;
  mutable completed : int;
  mutable wrong_replies : int;
  mutable retransmissions : int;
  mutable view_changes : int;
  mutable checkpoints : int;
  mutable state_transfers : int;
  mutable transfer_bytes : int;
  mutable transfer_cycles : int;
  latency : Histogram.t;
}

let create () =
  {
    submitted = 0;
    completed = 0;
    wrong_replies = 0;
    retransmissions = 0;
    view_changes = 0;
    checkpoints = 0;
    state_transfers = 0;
    transfer_bytes = 0;
    transfer_cycles = 0;
    latency = Histogram.create "latency";
  }

let throughput t ~horizon =
  if horizon <= 0 then 0.0 else float_of_int t.completed *. 1000.0 /. float_of_int horizon

let pp ppf t =
  Format.fprintf ppf
    "submitted=%d completed=%d wrong=%d retx=%d view_changes=%d checkpoints=%d transfers=%d \
     transfer_bytes=%d lat_mean=%.1f lat_p99=%.1f"
    t.submitted t.completed t.wrong_replies t.retransmissions t.view_changes t.checkpoints
    t.state_transfers t.transfer_bytes
    (Histogram.mean t.latency)
    (Histogram.percentile t.latency 99.0)
