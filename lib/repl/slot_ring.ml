(* Fixed-capacity agreement log: a ring of pooled entry records indexed
   by [seq mod capacity].

   Agreement logs are dense in sequence numbers and pruned by retention
   (entries older than [last_exec - 256] are dropped), so at any moment
   the live window spans at most retention + in-flight slots. A ring
   sized to a power of two above that window replaces the
   [(seq, entry) Hashtbl.t]: lookup is a mask and an int compare, and
   the entry records themselves are allocated once per slot and reset in
   place when a new sequence number claims the slot.

   If a burst pushes the live window past the capacity (two live seqs
   mapping to one slot), the ring doubles and re-places the live
   entries — correctness never depends on the initial sizing. Growth is
   bounded, though: fault campaigns can corrupt a sequence number into
   an arbitrary 63-bit value (an SEU flipping bit 31 of a USIG counter
   binds a log entry near 2^31), and a direct-mapped ring would have to
   double until it spanned the gap. Past [max_direct] slots the ring
   stops growing and shunts colliding outliers into a small dense
   overflow array instead: linear-scanned, swap-removed, and only ever
   touched after a ring miss, which healthy runs never take.

   The free-slot sentinel is [min_int], not [-1], so corrupted
   *negative* sequence numbers remain ordinary (storable) keys exactly
   as they were for the Hashtbl this replaces. *)

type 'a t = {
  mutable seqs : int array;  (* seqs.(i) = the seq bound to slot i, or free *)
  mutable entries : 'a array;  (* one pooled record per slot, never null *)
  fresh : int -> 'a;  (* allocator for slots added by growth *)
  mutable ov_seqs : int array;  (* overflow keys, dense in [0, ov_live) *)
  mutable ov_entries : 'a array;
  mutable ov_live : int;
}

let free = min_int

(* Direct-mapped slots stop doubling here; outliers overflow instead.
   2^15 slots of pooled records is a few MB per replica at most, and a
   healthy live window never gets near it. *)
let max_direct = 1 lsl 15

let create ~capacity ~fresh =
  let cap = ref 8 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    seqs = Array.make !cap free;
    entries = Array.init !cap fresh;
    fresh;
    ov_seqs = [||];
    ov_entries = [||];
    ov_live = 0;
  }

let capacity t = Array.length t.seqs

(* Overflow index of [seq], or -1. Only called after a ring miss. *)
let ov_find t seq =
  let n = t.ov_live in
  let rec scan i = if i >= n then -1 else if t.ov_seqs.(i) = seq then i else scan (i + 1) in
  scan 0

(* Slot index of [seq] if bound: a ring index, or [capacity + k] for
   overflow slot [k], or -1. [land] with the mask is a valid mod even
   for (corrupted) negative seqs. *)
let slot t seq =
  let cap = Array.length t.seqs in
  let i = seq land (cap - 1) in
  if Array.unsafe_get t.seqs i = seq then i
  else if t.ov_live = 0 then -1
  else
    let k = ov_find t seq in
    if k >= 0 then cap + k else -1

let mem t seq = slot t seq >= 0

let entry t i =
  let cap = Array.length t.seqs in
  if i < cap then Array.unsafe_get t.entries i else Array.unsafe_get t.ov_entries (i - cap)

(* Double the ring. Live seqs occupy distinct slots mod cap, hence
   distinct slots mod 2*cap — re-placing them can never clash. *)
let grow t =
  let cap = Array.length t.seqs in
  let ncap = 2 * cap in
  let nseqs = Array.make ncap free in
  let nentries = Array.init ncap t.fresh in
  for i = 0 to cap - 1 do
    let seq = t.seqs.(i) in
    if seq <> free then begin
      let j = seq land (ncap - 1) in
      nseqs.(j) <- seq;
      nentries.(j) <- t.entries.(i)
    end
  done;
  t.seqs <- nseqs;
  t.entries <- nentries

let ov_claim t seq =
  let n = t.ov_live in
  if n = Array.length t.ov_seqs then begin
    let ncap = max 4 (2 * n) in
    let nseqs = Array.make ncap free in
    Array.blit t.ov_seqs 0 nseqs 0 n;
    let nentries = Array.init ncap (fun i -> if i < n then t.ov_entries.(i) else t.fresh i) in
    t.ov_seqs <- nseqs;
    t.ov_entries <- nentries
  end;
  t.ov_seqs.(n) <- seq;
  t.ov_live <- n + 1;
  t.ov_entries.(n)

(* Claim the slot for [seq]. Returns [(entry, fresh_claim)]: when
   [fresh_claim] is true the slot was just (re)bound and the caller must
   reset the pooled record before use; when false, [seq] was already
   bound and the record holds its live state. A slot still bound to a
   *different* live seq forces growth up to [max_direct], then the
   overflow array takes the newcomer. *)
let rec bind t seq =
  let cap = Array.length t.seqs in
  let i = seq land (cap - 1) in
  let bound = Array.unsafe_get t.seqs i in
  if bound = seq then (Array.unsafe_get t.entries i, false)
  else
    match if t.ov_live > 0 then ov_find t seq else -1 with
    | k when k >= 0 -> (t.ov_entries.(k), false)
    | _ ->
      if bound = free then begin
        Array.unsafe_set t.seqs i seq;
        (Array.unsafe_get t.entries i, true)
      end
      else if cap < max_direct then begin
        grow t;
        bind t seq
      end
      else (ov_claim t seq, true)

let release t seq =
  let i = seq land (Array.length t.seqs - 1) in
  if Array.unsafe_get t.seqs i = seq then Array.unsafe_set t.seqs i free
  else if t.ov_live > 0 then begin
    let k = ov_find t seq in
    if k >= 0 then begin
      (* Swap-remove, exchanging records so every slot keeps one. *)
      let last = t.ov_live - 1 in
      let e = t.ov_entries.(k) in
      t.ov_seqs.(k) <- t.ov_seqs.(last);
      t.ov_entries.(k) <- t.ov_entries.(last);
      t.ov_seqs.(last) <- free;
      t.ov_entries.(last) <- e;
      t.ov_live <- last
    end
  end

(* Drop overflow bindings whose seq falls outside [low, high]. Ring
   slots prune themselves through [release] as execution advances (and
   are bounded at [max_direct] regardless), but overflow entries are
   only ever removed by an exact-seq [release] — and a corrupted seq
   (the reason the entry overflowed at all) is one the protocol will
   never execute, so without this sweep outliers accumulate for the
   whole run. Called when the retention window (or a stable-checkpoint
   low watermark) moves. *)
let prune_outside t ~low ~high =
  if t.ov_live > 0 then begin
    let k = ref 0 in
    while !k < t.ov_live do
      let seq = t.ov_seqs.(!k) in
      if seq < low || seq > high then begin
        let last = t.ov_live - 1 in
        let e = t.ov_entries.(!k) in
        t.ov_seqs.(!k) <- t.ov_seqs.(last);
        t.ov_entries.(!k) <- t.ov_entries.(last);
        t.ov_seqs.(last) <- free;
        t.ov_entries.(last) <- e;
        t.ov_live <- last
        (* Re-examine slot !k: it now holds the swapped-in entry. *)
      end
      else incr k
    done
  end

let reset t =
  Array.fill t.seqs 0 (Array.length t.seqs) free;
  t.ov_live <- 0
