module Engine = Resoc_des.Engine
module Behavior = Resoc_fault.Behavior
module Hash = Resoc_crypto.Hash
module Check = Resoc_check.Check

type msg =
  | Request of Types.request
  | Update of { epoch : int; seq : int; state : int64; client : int; rid : int; result : int64 }
  | Update_b of { epoch : int; seq : int; state : int64; replies : (int * int * int64) list }
  | Heartbeat of { epoch : int }
  | Promote of { epoch : int }
  | Reply of Types.reply
  | Checkpoint_vote of { seq : int; digest : Hash.t }
  | Fetch_state of { have : int }
  | State_chunk of Checkpoint.chunk

type config = {
  n_backups : int;
  n_clients : int;
  request_timeout : int;
  heartbeat_period : int;
  detection_timeout : int;
  checkpoint : Checkpoint.config option;
  multicast : bool;
  batching : Types.batching option;
}

let default_config =
  {
    n_backups = 1;
    n_clients = 2;
    request_timeout = 4000;
    heartbeat_period = 500;
    detection_timeout = 1500;
    checkpoint = None;
    multicast = false;
    batching = None;
  }

let n_replicas config = config.n_backups + 1

type replica = {
  id : int;
  n : int;
  engine : Engine.t;
  fabric : msg Transport.fabric;
  config : config;
  behavior : Behavior.t;
  app : App.t;
  stats : Stats.t;
  mutable epoch : int;
  mutable seq : int;  (* primary: updates shipped; backup: updates applied *)
  mutable last_heartbeat : int;
  mutable rid_last : int array;  (* client -> last rid, min_int = none *)
  mutable rid_result : int64 array;
  peer_ids : int array;  (* everyone but self *)
  mcast : (src:int -> dsts:int array -> n:int -> msg -> unit) option;
      (* fabric multicast, resolved once; None = per-destination sends *)
  chk : int;  (* resoc_check session, -1 when checking is off *)
  mutable online : bool;
  cp : Checkpoint.t option;  (* checkpoint certificates, None = legacy *)
  mutable recover_timer : Engine.handle option;
  mutable batcher : Batcher.t option;  (* primary-side batching, None = legacy *)
  buffered : (int * int, unit) Hashtbl.t;  (* (client, rid) parked in the batcher *)
}

type t = {
  engine : Engine.t;
  config : config;
  replicas : replica array;
  clients : msg Client.t array;
  shared_stats : Stats.t;
}

let message_name = function
  | Request _ -> "request"
  | Update _ -> "update"
  | Update_b _ -> "update-batch"
  | Heartbeat _ -> "heartbeat"
  | Promote _ -> "promote"
  | Reply _ -> "reply"
  | Checkpoint_vote _ -> "checkpoint-vote"
  | Fetch_state _ -> "fetch-state"
  | State_chunk _ -> "state-chunk"

let primary_of ~epoch ~n = epoch mod n

let is_primary (r : replica) = primary_of ~epoch:r.epoch ~n:r.n = r.id

let alive (r : replica) = not (Behavior.is_crashed r.behavior ~now:(Engine.now r.engine))

let send (r : replica) ~dst msg =
  if r.online && alive r then
    match Behavior.active_strategy r.behavior ~now:(Engine.now r.engine) with
    | Some Behavior.Silent -> ()
    | Some (Behavior.Delay d) ->
      ignore
        (Engine.schedule r.engine ~delay:d (fun () -> r.fabric.Transport.send ~src:r.id ~dst msg))
    | Some Behavior.Equivocate | Some Behavior.Corrupt_execution | None ->
      r.fabric.Transport.send ~src:r.id ~dst msg

(* Fan-outs to the peer set take the fabric's tree multicast when the
   replica was built with one: a single behaviour gate, then one
   injection that forks in the network instead of per-peer unicasts. *)
let broadcast r ~to_ msg =
  match r.mcast with
  | Some mc ->
    if r.online && alive r then (
      match Behavior.active_strategy r.behavior ~now:(Engine.now r.engine) with
      | Some Behavior.Silent -> ()
      | Some (Behavior.Delay d) ->
        ignore
          (Engine.schedule r.engine ~delay:d (fun () ->
               mc ~src:r.id ~dsts:to_ ~n:(Array.length to_) msg))
      | Some Behavior.Equivocate | Some Behavior.Corrupt_execution | None ->
        mc ~src:r.id ~dsts:to_ ~n:(Array.length to_) msg)
  | None ->
    for i = 0 to Array.length to_ - 1 do
      send r ~dst:(Array.unsafe_get to_ i) msg
    done

(* Both ends of an Update derive the same digest from its payload, so the
   checker can compare primary and backup commits at one (epoch, seq) slot. *)
let update_digest ~state ~client ~rid ~result =
  Hash.combine_int
    (Hash.combine (Hash.combine (Hash.of_string "pb-update") state) result)
    ((client * 1_000_003) + rid)

(* Batched updates: the digest folds every (client, rid, result) reply
   over the post-batch state, so primary and backups again agree on one
   value per (epoch, seq). *)
let update_b_digest ~state ~(replies : (int * int * int64) list) =
  List.fold_left
    (fun acc (client, rid, result) ->
      Hash.combine_int (Hash.combine acc result) ((client * 1_000_003) + rid))
    (Hash.combine (Hash.of_string "pb-update-b") state)
    replies

let rid_slot r client =
  let len = Array.length r.rid_last in
  if client >= len then begin
    let ncap = ref (max 8 (2 * len)) in
    while client >= !ncap do
      ncap := 2 * !ncap
    done;
    let nlast = Array.make !ncap min_int in
    Array.blit r.rid_last 0 nlast 0 len;
    let nresult = Array.make !ncap 0L in
    Array.blit r.rid_result 0 nresult 0 len;
    r.rid_last <- nlast;
    r.rid_result <- nresult
  end;
  client

let rid_reset r = Array.fill r.rid_last 0 (Array.length r.rid_last) min_int

let cancel_recover_timer r =
  match r.recover_timer with
  | Some h ->
    Engine.cancel r.engine h;
    r.recover_timer <- None
  | None -> ()

(* Fetch the latest certified checkpoint, re-asking on a request-timeout
   cadence until a transfer installs. Only the primary holds a stable
   certificate (quorum 1: its own vote), but the rejoiner asks everyone. *)
let start_recovery (r : replica) cp =
  Checkpoint.begin_recovery cp ~now:(Engine.now r.engine);
  let fetch () = broadcast r ~to_:r.peer_ids (Fetch_state { have = Checkpoint.low cp }) in
  let rec arm () =
    cancel_recover_timer r;
    r.recover_timer <-
      Some
        (Engine.schedule r.engine ~delay:r.config.request_timeout (fun () ->
             r.recover_timer <- None;
             if r.online && Checkpoint.recovering cp then begin
               fetch ();
               arm ()
             end))
  in
  fetch ();
  arm ()

let maybe_catchup r cp =
  if Checkpoint.needs_catchup cp && not (Checkpoint.recovering cp) then start_recovery r cp

(* Primary-side checkpointing: at every boundary the primary digests its
   state, announces the vote (so backups track stability and detect
   falling behind), and — the quorum being 1 in the crash-pair model —
   immediately stabilises its own certificate. *)
let note_boundary r =
  match r.cp with
  | None -> ()
  | Some cp -> (
    if r.chk >= 0 then
      Check.exec_window ~session:r.chk ~replica:r.id ~seq:r.seq ~low:(Checkpoint.low cp)
        ~high:(Checkpoint.high cp)
        ~faulty:(Behavior.is_faulty r.behavior);
    match
      Checkpoint.note_exec cp ~seq:r.seq ~state:(App.state r.app) ~rid_last:r.rid_last
        ~rid_result:r.rid_result
    with
    | None -> ()
    | Some d ->
      broadcast r ~to_:r.peer_ids (Checkpoint_vote { seq = r.seq; digest = d });
      if Checkpoint.note_vote cp ~seq:r.seq ~digest:d ~voter:r.id >= 0 then
        r.stats.Stats.checkpoints <- r.stats.Stats.checkpoints + 1)

let reply_now r ~client ~rid ~result =
  let corrupt =
    match Behavior.active_strategy r.behavior ~now:(Engine.now r.engine) with
    | Some Behavior.Corrupt_execution -> true
    | Some _ | None -> false
  in
  let result = if corrupt then Int64.logxor result 0xBADBADL else result in
  send r ~dst:client (Reply { Types.client = client; rid; result; replica = r.id })

(* Batched primary path ([config.batching], the [Batcher.seal] callback):
   execute the whole batch in arrival order, bump the sequence number
   ONCE, and ship one Update_b with the post-batch state plus one
   (client, rid, result) reply per request — the reply list is what lets
   backups rebuild the same reply cache the primary has. *)
let exec_batch r (requests : Types.request list) =
  List.iter
    (fun (req : Types.request) -> Hashtbl.remove r.buffered (req.Types.client, req.Types.rid))
    requests;
  if requests <> [] && is_primary r then begin
    let replies =
      List.map
        (fun (req : Types.request) ->
          let client = req.Types.client and rid = req.Types.rid in
          let c = rid_slot r client in
          let result =
            if r.rid_last.(c) <> min_int && rid <= r.rid_last.(c) then r.rid_result.(c)
            else begin
              let result = App.execute r.app req.Types.payload in
              r.rid_last.(c) <- rid;
              r.rid_result.(c) <- result;
              result
            end
          in
          (client, rid, result))
        requests
    in
    r.seq <- r.seq + 1;
    let state = App.state r.app in
    if r.chk >= 0 then begin
      Check.commit ~session:r.chk ~replica:r.id ~view:r.epoch ~seq:r.seq
        ~digest:(update_b_digest ~state ~replies)
        ~signers:(-1) ~quorum:1
        ~faulty:(Behavior.is_faulty r.behavior);
      let len = List.length replies in
      List.iteri
        (fun pos (client, rid, _) ->
          Check.batch_commit ~session:r.chk ~replica:r.id ~view:r.epoch ~seq:r.seq ~pos ~len
            ~client ~rid
            ~faulty:(Behavior.is_faulty r.behavior))
        replies
    end;
    broadcast r ~to_:r.peer_ids (Update_b { epoch = r.epoch; seq = r.seq; state; replies });
    note_boundary r;
    List.iter (fun (client, rid, result) -> reply_now r ~client ~rid ~result) replies
  end

let on_request r (request : Types.request) =
  if is_primary r then begin
    let client = request.Types.client and rid = request.Types.rid in
    let c = rid_slot r client in
    let cached = r.rid_last.(c) <> min_int && rid <= r.rid_last.(c) in
    match r.batcher with
    | Some b when not cached ->
      (* Retransmissions of a request already parked in the batcher must
         not enter a second batch. *)
      if not (Hashtbl.mem r.buffered (client, rid)) then begin
        Hashtbl.replace r.buffered (client, rid) ();
        Batcher.add b request
      end
    | Some _ | None ->
      let result =
        if cached then r.rid_result.(c)
        else begin
          let result = App.execute r.app request.Types.payload in
          r.rid_last.(c) <- rid;
          r.rid_result.(c) <- result;
          r.seq <- r.seq + 1;
          if r.chk >= 0 then
            Check.commit ~session:r.chk ~replica:r.id ~view:r.epoch ~seq:r.seq
              ~digest:(update_digest ~state:(App.state r.app) ~client ~rid ~result)
              ~signers:(-1) ~quorum:1
              ~faulty:(Behavior.is_faulty r.behavior);
          (* Ship the new state to the standbys. *)
          broadcast r ~to_:r.peer_ids
            (Update { epoch = r.epoch; seq = r.seq; state = App.state r.app; client; rid; result });
          note_boundary r;
          result
        end
      in
      reply_now r ~client ~rid ~result
  end

let on_update r ~epoch ~seq ~state ~client ~rid ~result =
  if epoch >= r.epoch && seq > r.seq then begin
    r.epoch <- max r.epoch epoch;
    r.seq <- seq;
    App.set_state r.app state;
    if r.chk >= 0 then
      Check.commit ~session:r.chk ~replica:r.id ~view:epoch ~seq
        ~digest:(update_digest ~state ~client ~rid ~result)
        ~signers:(-1) ~quorum:1
        ~faulty:(Behavior.is_faulty r.behavior);
    let c = rid_slot r client in
    r.rid_last.(c) <- rid;
    r.rid_result.(c) <- result;
    (match r.cp with
    | None -> ()
    | Some cp ->
      (* Landing exactly on a boundary lets the backup match the
         primary's vote; a skipped boundary (gap in the update stream)
         instead trips the catch-up path when the vote arrives. *)
      ignore
        (Checkpoint.note_exec cp ~seq ~state ~rid_last:r.rid_last ~rid_result:r.rid_result))
  end

let on_update_b r ~epoch ~seq ~state ~(replies : (int * int * int64) list) =
  if epoch >= r.epoch && seq > r.seq then begin
    r.epoch <- max r.epoch epoch;
    r.seq <- seq;
    App.set_state r.app state;
    if r.chk >= 0 then begin
      Check.commit ~session:r.chk ~replica:r.id ~view:epoch ~seq
        ~digest:(update_b_digest ~state ~replies)
        ~signers:(-1) ~quorum:1
        ~faulty:(Behavior.is_faulty r.behavior);
      let len = List.length replies in
      List.iteri
        (fun pos (client, rid, _) ->
          Check.batch_commit ~session:r.chk ~replica:r.id ~view:epoch ~seq ~pos ~len ~client ~rid
            ~faulty:(Behavior.is_faulty r.behavior))
        replies
    end;
    List.iter
      (fun (client, rid, result) ->
        let c = rid_slot r client in
        (* Reply-cache hits sealed into a batch carry their old rid; never
           regress the cache below what this backup already recorded. *)
        if r.rid_last.(c) = min_int || rid > r.rid_last.(c) then begin
          r.rid_last.(c) <- rid;
          r.rid_result.(c) <- result
        end)
      replies;
    (match r.cp with
    | None -> ()
    | Some cp ->
      ignore (Checkpoint.note_exec cp ~seq ~state ~rid_last:r.rid_last ~rid_result:r.rid_result))
  end

let on_checkpoint_vote r ~src ~seq ~digest =
  match r.cp with
  | None -> ()
  | Some cp ->
    if Checkpoint.note_vote cp ~seq ~digest ~voter:src >= 0 then
      r.stats.Stats.checkpoints <- r.stats.Stats.checkpoints + 1;
    maybe_catchup r cp

let on_fetch_state r ~src ~have =
  match r.cp with
  | None -> ()
  | Some cp -> (
    (* Self-stabilize at the execution tip before serving: Updates carry
       full state but no replayable log, so serving the last periodic
       boundary would restore a wiped primary behind the backups and make
       it re-issue sequence numbers they already executed. In the crash
       model this replica's own snapshot is as trustworthy as any
       certificate (the quorum is 1). The transfer then needs no log
       suffix: Meta + reply-cache chunks reconstruct the replica. *)
    if (not (Checkpoint.recovering cp)) && r.seq > Checkpoint.low cp then
      Checkpoint.force_stable cp ~seq:r.seq ~state:(App.state r.app) ~rid_last:r.rid_last
        ~rid_result:r.rid_result ~voter:r.id;
    match Checkpoint.serve cp ~view:r.epoch ~have ~suffix:[] with
    | Some chunks -> List.iter (fun c -> send r ~dst:src (State_chunk c)) chunks
    | None -> ())

let install_transfer (r : replica) cp (c : Checkpoint.completion) =
  cancel_recover_timer r;
  r.epoch <- max r.epoch c.Checkpoint.c_view;
  App.set_state r.app c.Checkpoint.c_state;
  rid_reset r;
  List.iter
    (fun (client, rid, result) ->
      let i = rid_slot r client in
      r.rid_last.(i) <- rid;
      r.rid_result.(i) <- result)
    c.Checkpoint.c_rids;
  r.seq <- c.Checkpoint.c_cert.Checkpoint.cp_seq;
  r.last_heartbeat <- Engine.now r.engine;
  Checkpoint.install cp c;
  r.stats.Stats.state_transfers <- r.stats.Stats.state_transfers + 1;
  r.stats.Stats.transfer_bytes <- r.stats.Stats.transfer_bytes + c.Checkpoint.c_bytes;
  r.stats.Stats.transfer_cycles <- r.stats.Stats.transfer_cycles + c.Checkpoint.c_elapsed

let on_state_chunk r ~src chunk =
  match r.cp with
  | None -> ()
  | Some cp -> (
    match Checkpoint.feed cp ~src ~now:(Engine.now r.engine) chunk with
    | None -> ()
    | Some c ->
      if r.chk >= 0 then
        Check.transfer_applied ~session:r.chk ~replica:r.id
          ~seq:c.Checkpoint.c_cert.Checkpoint.cp_seq
          ~claimed:c.Checkpoint.c_cert.Checkpoint.cp_digest ~actual:c.Checkpoint.c_actual
          ~faulty:(Behavior.is_faulty r.behavior);
      if
        (c.Checkpoint.c_valid || !Checkpoint.test_unverified_transfer)
        && c.Checkpoint.c_cert.Checkpoint.cp_seq > r.seq
      then install_transfer r cp c)

let on_heartbeat r ~epoch =
  if epoch >= r.epoch then begin
    r.epoch <- max r.epoch epoch;
    r.last_heartbeat <- Engine.now r.engine
  end

let on_promote r ~epoch =
  if epoch > r.epoch then begin
    r.epoch <- epoch;
    r.last_heartbeat <- Engine.now r.engine;
    if is_primary r then r.stats.Stats.view_changes <- r.stats.Stats.view_changes + 1
  end

let handle (r : replica) ~src msg =
  if r.online && alive r then
    match msg with
    | Request request -> on_request r request
    | Update { epoch; seq; state; client; rid; result } ->
      on_update r ~epoch ~seq ~state ~client ~rid ~result
    | Update_b { epoch; seq; state; replies } -> on_update_b r ~epoch ~seq ~state ~replies
    | Heartbeat { epoch } -> on_heartbeat r ~epoch
    | Promote { epoch } -> on_promote r ~epoch
    | Reply _ -> ()
    | Checkpoint_vote { seq; digest } -> on_checkpoint_vote r ~src ~seq ~digest
    | Fetch_state { have } -> on_fetch_state r ~src ~have
    | State_chunk chunk -> on_state_chunk r ~src chunk

(* Primary duty: periodic heartbeats. Backup duty: watch for silence; the
   next-in-line backup promotes itself when the detector fires. Ranks stagger
   the takeover so two backups don't promote simultaneously. *)
let start_timers (r : replica) =
  Engine.every r.engine ~period:r.config.heartbeat_period (fun () ->
      if r.online && alive r then
        if is_primary r then broadcast r ~to_:r.peer_ids (Heartbeat { epoch = r.epoch })
        else begin
          let silence = Engine.now r.engine - r.last_heartbeat in
          (* The smallest future epoch whose primary is this replica; the
             extra stagger lets closer-ranked backups claim first, so a dead
             next-in-line does not wedge the failover chain. *)
          let mine =
            let offset = ((r.id - (r.epoch + 1)) mod r.n + r.n) mod r.n in
            r.epoch + 1 + offset
          in
          let rank = mine - r.epoch - 1 in
          if silence > r.config.detection_timeout + (rank * r.config.heartbeat_period) then begin
            r.epoch <- mine;
            r.stats.Stats.view_changes <- r.stats.Stats.view_changes + 1;
            r.last_heartbeat <- Engine.now r.engine;
            broadcast r ~to_:r.peer_ids (Promote { epoch = mine })
          end
        end)

let make_replica engine fabric config stats ~id ~behavior ~chk =
  let n = n_replicas config in
  {
    id;
    n;
    engine;
    fabric;
    config;
    behavior;
    app = App.accumulator ();
    stats;
    epoch = 0;
    seq = 0;
    last_heartbeat = 0;
    rid_last = Array.make (n + config.n_clients) min_int;
    rid_result = Array.make (n + config.n_clients) 0L;
    peer_ids = Array.init (n - 1) (fun i -> if i < id then i else i + 1);
    mcast = (if config.multicast then fabric.Transport.multicast else None);
    chk;
    online = true;
    cp =
      (match config.checkpoint with
      | Some c -> Some (Checkpoint.create c ~obs:(Engine.obs engine) ~quorum:1)
      | None -> None);
    recover_timer = None;
    batcher = None;
    buffered = Hashtbl.create 16;
  }

(* The primary executes and replies the moment it seals, so there is no
   in-flight agreement to bound: the pipeline gate is trivially open and
   occupancy is always 0 — batching here only amortizes Update traffic. *)
let attach_batcher engine (r : replica) =
  match r.config.batching with
  | Some b when Batcher.active b ->
    r.batcher <-
      Some
        (Batcher.create ~engine ~cfg:b
           ~seal:(fun reqs -> exec_batch r reqs)
           ~ready:(fun () -> true)
           ~occupancy:(fun () -> 0))
  | Some _ | None -> ()

let start engine fabric config ?behaviors () =
  let n = n_replicas config in
  let chk = if !Check.enabled then Check.new_session ~protocol:"primary_backup" else -1 in
  let behaviors =
    match behaviors with
    | Some b ->
      if Array.length b <> n then
        invalid_arg "Primary_backup.start: behaviors must cover every replica";
      b
    | None -> Array.make n Behavior.honest
  in
  if fabric.Transport.n_endpoints < n + config.n_clients then
    invalid_arg "Primary_backup.start: fabric too small";
  let stats = Stats.create () in
  let replicas =
    Array.init n (fun id -> make_replica engine fabric config stats ~id ~behavior:behaviors.(id) ~chk)
  in
  Array.iter
    (fun r ->
      attach_batcher engine r;
      fabric.Transport.set_handler r.id (fun ~src msg -> handle r ~src msg);
      start_timers r)
    replicas;
  let clients =
    Array.init config.n_clients (fun i ->
        Client.create engine fabric ~id:(n + i) ~n_replicas:n ~quorum:1
          ~retry_timeout:config.request_timeout ~stats
          ~to_msg:(fun request -> Request request)
          ~of_msg:(function Reply reply -> Some reply | _ -> None)
          ())
  in
  { engine; config; replicas; clients; shared_stats = stats }

let submit t ~client ~payload =
  if client < 0 || client >= Array.length t.clients then
    invalid_arg "Primary_backup.submit: unknown client";
  Client.submit t.clients.(client) ~payload

let stats t = t.shared_stats

let epoch t ~replica = t.replicas.(replica).epoch

let current_primary t =
  let best = Array.fold_left (fun acc r -> if r.epoch > acc.epoch then r else acc) t.replicas.(0) t.replicas in
  primary_of ~epoch:best.epoch ~n:best.n

let replica_state t ~replica = App.state t.replicas.(replica).app

let set_replica_state t ~replica state = App.set_state t.replicas.(replica).app state

let replica_online t ~replica = t.replicas.(replica).online

let set_offline t ~replica =
  let r = t.replicas.(replica) in
  if r.online then begin
    r.online <- false;
    (match r.batcher with Some b -> Batcher.clear b | None -> ());
    Hashtbl.reset r.buffered;
    cancel_recover_timer r
  end

(* Legacy model: free state copy from the most advanced online peer. *)
let legacy_rejoin t (r : replica) =
  let best = ref None in
  Array.iter
    (fun (peer : replica) ->
      if peer.id <> r.id && peer.online then
        match !best with
        | Some (b : replica) when b.seq >= peer.seq -> ()
        | Some _ | None -> best := Some peer)
    t.replicas;
  match !best with
  | Some peer ->
    r.epoch <- peer.epoch;
    r.seq <- peer.seq;
    App.set_state r.app (App.state peer.app);
    rid_reset r;
    for c = 0 to Array.length peer.rid_last - 1 do
      if peer.rid_last.(c) <> min_int then begin
        let i = rid_slot r c in
        r.rid_last.(i) <- peer.rid_last.(c);
        r.rid_result.(i) <- peer.rid_result.(c)
      end
    done;
    r.last_heartbeat <- Engine.now r.engine
  | None -> ()

let set_online t ~replica =
  let r = t.replicas.(replica) in
  if not r.online then begin
    r.online <- true;
    r.last_heartbeat <- Engine.now r.engine;
    match r.cp with
    | Some cp ->
      (* Rejuvenation wiped the replica: rejoin by certified transfer
         instead of a free peer copy. *)
      r.epoch <- 0;
      r.seq <- 0;
      App.set_state r.app 0L;
      rid_reset r;
      Checkpoint.reset cp;
      start_recovery r cp
    | None -> legacy_rejoin t r
  end
