(** Protocol-facing message transport abstraction.

    Protocols are written against ['msg fabric]: a set of numbered endpoints
    that exchange typed messages asynchronously. Two implementations exist:
    the uniform-latency {!hub} below (unit tests, protocol-only
    experiments), and the NoC-backed adapter in [Resoc_core], which routes
    the same messages over the simulated mesh. *)

type 'msg fabric = {
  n_endpoints : int;
  send : src:int -> dst:int -> 'msg -> unit;
  multicast : (src:int -> dsts:int array -> n:int -> 'msg -> unit) option;
      (** One payload to the first [n] entries of [dsts], forked by the
          fabric (tree multicast on a NoC, a plain loop on a hub).
          [None] when the underlying transport runs multicast-off;
          protocols fall back to per-destination [send]. *)
  set_handler : int -> (src:int -> 'msg -> unit) -> unit;
  detach : int -> unit;  (** Drop the endpoint's handler (offline tile). *)
  messages_sent : unit -> int;
  bytes_sent : unit -> int;
}

val broadcast : 'msg fabric -> src:int -> to_:int list -> 'msg -> unit
(** Fan-out to each destination: through the fabric's [multicast] when it
    has one, else unicast per destination (NoCs have no magic bus). *)

val hub :
  Resoc_des.Engine.t ->
  n:int ->
  ?latency:int ->
  ?size_of:('msg -> int) ->
  ?multicast:bool ->
  unit ->
  'msg fabric
(** Full mesh with fixed [latency] (default 5 cycles) between any pair;
    loopback costs 1. [size_of] (default constant 64) only feeds the
    byte counter. Messages to detached endpoints vanish. [multicast]
    (default off) installs a hub multicast that is the unicast loop with
    identical counters — hubs have no shared medium to save on. *)
