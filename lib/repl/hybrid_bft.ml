module Engine = Resoc_des.Engine
module Hash = Resoc_crypto.Hash
module Mac = Resoc_crypto.Mac
module Keychain = Resoc_crypto.Keychain
module Behavior = Resoc_fault.Behavior
module Usig = Resoc_hybrid.Usig
module Register = Resoc_hw.Register
module Obs = Resoc_obs.Obs
module Registry = Resoc_obs.Registry
module Ring = Resoc_obs.Ring
module Check = Resoc_check.Check

module type HYBRID = sig
  type t
  type cert

  val protocol_name : string
  val make : id:int -> key:Mac.key -> protection:Register.protection -> t
  val create_cert : t -> Hash.t -> (cert, string) result
  val verify_cert : key:Mac.key -> digest:Hash.t -> cert -> bool
  val cert_signer : cert -> int
  val cert_counter : cert -> int64
  val current_counter : t -> int64
end

module type S = sig
  type hybrid
  type cert

  type msg =
    | Request of Types.request
    | Prepare of { view : int; requests : Types.request list; cert : cert }
    | Commit of { view : int; requests : Types.request list; primary_cert : cert; cert : cert }
    | Reply of Types.reply
    | Req_view_change of { new_view : int }
    | New_view of {
        view : int;
        base : int64;
        state : int64;
        rid_table : (int * (int * int64)) list;
      }
    | Checkpoint_vote of { seq : int; digest : Resoc_crypto.Hash.t }
    | Fetch_state of { have : int }
    | State_chunk of Checkpoint.chunk

  type config = {
    f : int;
    n_clients : int;
    request_timeout : int;
    vc_timeout : int;
    usig_protection : Register.protection;
    keychain_master : int64;
    batch_window : int;
    max_batch : int;
    checkpoint : Checkpoint.config option;
    multicast : bool;
    batching : Types.batching option;
  }

  val default_config : config
  val n_replicas : config -> int

  type t

  val start :
    Resoc_des.Engine.t ->
    msg Transport.fabric ->
    config ->
    ?behaviors:Behavior.t array ->
    unit ->
    t

  val submit : t -> client:int -> payload:int64 -> unit
  val stats : t -> Stats.t
  val view : t -> replica:int -> int
  val replica_state : t -> replica:int -> int64
  val set_replica_state : t -> replica:int -> int64 -> unit
  val hybrid : t -> replica:int -> hybrid
  val cert_gap_drops : t -> int
  val replica_online : t -> replica:int -> bool
  val set_offline : t -> replica:int -> unit
  val set_online : t -> replica:int -> unit
  val message_name : msg -> string
end

module Make (H : HYBRID) = struct
  type hybrid = H.t
  type cert = H.cert

  type msg =
    | Request of Types.request
    | Prepare of { view : int; requests : Types.request list; cert : cert }
    | Commit of { view : int; requests : Types.request list; primary_cert : cert; cert : cert }
    | Reply of Types.reply
    | Req_view_change of { new_view : int }
    | New_view of { view : int; base : int64; state : int64; rid_table : (int * (int * int64)) list }
    | Checkpoint_vote of { seq : int; digest : Resoc_crypto.Hash.t }
    | Fetch_state of { have : int }
    | State_chunk of Checkpoint.chunk

  type config = {
    f : int;
    n_clients : int;
    request_timeout : int;
    vc_timeout : int;
    usig_protection : Register.protection;
    keychain_master : int64;
    batch_window : int;  (* 0 = order immediately; >0 = buffer this long *)
    max_batch : int;  (* flush early when the buffer reaches this size *)
    checkpoint : Checkpoint.config option;  (* None = legacy retention GC *)
    multicast : bool;  (* route fan-outs through the fabric's multicast *)
    batching : Types.batching option;
        (* the cross-protocol batching/pipelining config; when active it
           supersedes the legacy batch_window/max_batch fields and adds
           the pipeline-depth gate. None = legacy behaviour. *)
  }

  let default_config =
    {
      f = 1;
      n_clients = 2;
      request_timeout = 4000;
      vc_timeout = 2500;
      usig_protection = Register.Secded;
      keychain_master = 0xC0FFEEL;
      batch_window = 0;
      max_batch = 16;
      checkpoint = None;
      multicast = false;
      batching = None;
    }

  let n_replicas config = (2 * config.f) + 1

  (* Pooled in the slot ring, reset in place when a counter claims the
     slot; commit votes are a quorum bitset. *)
  type entry = {
    mutable requests : Types.request list;  (* the batch bound to this counter *)
    mutable commit_votes : Quorum.t;  (* replicas vouching for this counter *)
    mutable executed : bool;
  }

  let fresh_entry _ = { requests = []; commit_votes = Quorum.empty; executed = false }

  type replica = {
    id : int;
    n : int;
    f : int;
    engine : Engine.t;
    fabric : msg Transport.fabric;
    config : config;
    behavior : Behavior.t;
    app : App.t;
    hybrid_instance : H.t;
    keychain : Keychain.t;
    stats : Stats.t;
    mutable online : bool;
    mutable view : int;
    mutable last_exec_counter : int64;  (* primary counters up to here executed *)
    log : entry Slot_ring.t;  (* primary counter -> entry (current view) *)
    ordered : int Digest_map.t;  (* digests this primary already assigned *)
    pending : (Hash.t, Types.request) Hashtbl.t;
    mutable rid_last : int array;  (* client -> last rid, min_int = none *)
    mutable rid_result : int64 array;
    timers : Engine.handle Digest_map.t;
    mono : Usig.Monotonic.checker;  (* per-sender UI continuity *)
    baseline_pending : bool array;  (* per-sender resync after rejoin *)
    vc_rounds : Quorum.Rounds.t;
    mutable vc_voted : int;
    all_ids : int array;
    peer_ids : int array;
    mcast : (src:int -> dsts:int array -> n:int -> msg -> unit) option;
        (* fabric multicast, resolved once; None = per-destination sends *)
    mutable own_commits_sent : int;
    mutable gap_drops : int;
    mutable batch_buffer : Types.request list;  (* reversed; primary only *)
    mutable flush_scheduled : bool;
    obs : Obs.t;
    obs_batch : Registry.histogram;
    obs_vc : int;
    chk : int;  (* resoc_check session, -1 when checking is off *)
    cp : Checkpoint.t option;  (* None = checkpointing disabled (default) *)
    mutable recover_timer : Engine.handle option;
    mutable batcher : Batcher.t option;  (* config.batching; None = legacy *)
  }

  type t = {
    engine : Engine.t;
    fabric : msg Transport.fabric;
    config : config;
    replicas : replica array;
    clients : msg Client.t array;
    shared_stats : Stats.t;
    keychain : Keychain.t;
  }

  (* Without checkpointing, executed entries older than this many slots
     are pruned on a fixed retention window; with [config.checkpoint]
     set, truncation follows the stable-checkpoint low watermark instead
     so the suffix can be served to recovering replicas (DESIGN.md §8). *)
  let log_retention = 256L

  (* Outlier bound for overflow pruning; see Pbft.prune_margin. *)
  let prune_margin = 1 lsl 15

  let message_name = function
    | Request _ -> "request"
    | Prepare _ -> "prepare"
    | Commit _ -> "commit"
    | Reply _ -> "reply"
    | Req_view_change _ -> "req-view-change"
    | New_view _ -> "new-view"
    | Checkpoint_vote _ -> "checkpoint-vote"
    | Fetch_state _ -> "fetch-state"
    | State_chunk _ -> "state-chunk"

  let primary_of ~view ~n = view mod n

  let is_primary (r : replica) = primary_of ~view:r.view ~n:r.n = r.id


  let send (r : replica) ~dst msg =
    let now = Engine.now r.engine in
    if r.online && not (Behavior.is_crashed r.behavior ~now) then
      match Behavior.active_strategy r.behavior ~now with
      | Some Behavior.Silent -> ()
      | Some (Behavior.Delay d) ->
        ignore
          (Engine.schedule r.engine ~delay:d (fun () -> r.fabric.Transport.send ~src:r.id ~dst msg))
      | Some Behavior.Equivocate | Some Behavior.Corrupt_execution | None ->
        r.fabric.Transport.send ~src:r.id ~dst msg

  (* Fan-outs take the fabric's tree multicast when the replica was
     built with one: a single behaviour gate, then one injection that
     forks in the network instead of [Array.length to_] unicasts. *)
  let broadcast r ~to_ msg =
    match r.mcast with
    | Some mc ->
      let now = Engine.now r.engine in
      if r.online && not (Behavior.is_crashed r.behavior ~now) then (
        match Behavior.active_strategy r.behavior ~now with
        | Some Behavior.Silent -> ()
        | Some (Behavior.Delay d) ->
          ignore
            (Engine.schedule r.engine ~delay:d (fun () ->
                 mc ~src:r.id ~dsts:to_ ~n:(Array.length to_) msg))
        | Some Behavior.Equivocate | Some Behavior.Corrupt_execution | None ->
          mc ~src:r.id ~dsts:to_ ~n:(Array.length to_) msg)
    | None ->
      for i = 0 to Array.length to_ - 1 do
        send r ~dst:(Array.unsafe_get to_ i) msg
      done

  let cancel_request_timer r digest =
    let i = Digest_map.index r.timers digest in
    if i >= 0 then begin
      Engine.cancel r.engine (Digest_map.value_at r.timers i);
      Digest_map.remove_at r.timers i
    end

  let start_vc_timer r digest =
    if not (Digest_map.mem r.timers digest) then
      Digest_map.set r.timers digest
        (Engine.schedule r.engine ~delay:r.config.vc_timeout (fun () ->
             Digest_map.remove r.timers digest;
             if r.online && Hashtbl.mem r.pending digest then begin
               (* Escalate past views whose primary never answered. *)
               let new_view = max r.view r.vc_voted + 1 in
               r.vc_voted <- new_view;
               broadcast r ~to_:r.all_ids (Req_view_change { new_view })
             end))

  let reply_to_client r (request : Types.request) result =
    let corrupt =
      match Behavior.active_strategy r.behavior ~now:(Engine.now r.engine) with
      | Some Behavior.Corrupt_execution -> true
      | Some _ | None -> false
    in
    let result = if corrupt then Int64.logxor result 0xBADBADL else result in
    send r ~dst:request.Types.client
      (Reply { Types.client = request.Types.client; rid = request.Types.rid; result; replica = r.id })

  let rid_slot r client =
    let len = Array.length r.rid_last in
    if client >= len then begin
      let ncap = ref (max 8 (2 * len)) in
      while client >= !ncap do
        ncap := 2 * !ncap
      done;
      let nlast = Array.make !ncap min_int in
      Array.blit r.rid_last 0 nlast 0 len;
      let nresult = Array.make !ncap 0L in
      Array.blit r.rid_result 0 nresult 0 len;
      r.rid_last <- nlast;
      r.rid_result <- nresult
    end;
    client

  let rid_reset r = Array.fill r.rid_last 0 (Array.length r.rid_last) min_int

  let rid_table_list r =
    let acc = ref [] in
    for c = Array.length r.rid_last - 1 downto 0 do
      if r.rid_last.(c) <> min_int then acc := (c, (r.rid_last.(c), r.rid_result.(c))) :: !acc
    done;
    !acc

  let execute_one r (request : Types.request) =
    let client = request.Types.client and rid = request.Types.rid in
    let c = rid_slot r client in
    let result =
      if r.rid_last.(c) <> min_int && rid <= r.rid_last.(c) then r.rid_result.(c)
      else begin
        let result = App.execute r.app request.Types.payload in
        r.rid_last.(c) <- rid;
        r.rid_result.(c) <- result;
        result
      end
    in
    let digest = Types.request_digest request in
    Hashtbl.remove r.pending digest;
    cancel_request_timer r digest;
    if !Obs.trace_on then
      Ring.async_end r.obs.Obs.ring ~time:(Engine.now r.engine) ~cat:Obs.Cat.repl
        ~id:(Obs.repl_request_span ~replica:r.id ~client ~rid)
        ~arg:0;
    reply_to_client r request result

  (* One certificate covers a whole batch: the digest chains the requests in
     order, so verifiers agree on both membership and sequence. The shared
     definition computes exactly the historical per-protocol fold. *)
  let batch_digest = Types.batch_digest

  let rec try_execute r =
    let next = Int64.add r.last_exec_counter 1L in
    let next_i = Int64.to_int next in
    let gate_ok =
      match r.cp with
      | Some cp when not !Checkpoint.test_ignore_watermarks -> next_i <= Checkpoint.high cp
      | Some _ | None -> true
    in
    if gate_ok then begin
      let slot = Slot_ring.slot r.log next_i in
      if slot >= 0 then begin
        let e = Slot_ring.entry r.log slot in
        if (not e.executed) && Quorum.reached e.commit_votes ~threshold:(r.f + 1) then begin
          (match r.cp with
          | Some cp when r.chk >= 0 ->
            Check.exec_window ~session:r.chk ~replica:r.id ~seq:next_i ~low:(Checkpoint.low cp)
              ~high:(Checkpoint.high cp)
              ~faulty:(Behavior.is_faulty r.behavior)
          | Some _ | None -> ());
          e.executed <- true;
          r.last_exec_counter <- next;
          if r.chk >= 0 then begin
            Check.commit ~session:r.chk ~replica:r.id ~view:r.view ~seq:next_i
              ~digest:(batch_digest e.requests)
              ~signers:(Quorum.count e.commit_votes)
              ~quorum:(r.f + 1)
              ~faulty:(Behavior.is_faulty r.behavior);
            (* The batch is this protocol's native unit, so the atomicity
               invariant covers singletons and legacy-window batches too. *)
            let len = List.length e.requests in
            List.iteri
              (fun pos (req : Types.request) ->
                Check.batch_commit ~session:r.chk ~replica:r.id ~view:r.view ~seq:next_i ~pos
                  ~len ~client:req.Types.client ~rid:req.Types.rid
                  ~faulty:(Behavior.is_faulty r.behavior))
              e.requests
          end;
          if !Obs.trace_on then
            Ring.async_end r.obs.Obs.ring ~time:(Engine.now r.engine) ~cat:Obs.Cat.repl
              ~id:(Obs.repl_counter_span ~replica:r.id ~counter:next_i)
              ~arg:(List.length e.requests);
          List.iter (execute_one r) e.requests;
          (match r.batcher with Some b -> Batcher.kick b | None -> ());
          (match r.cp with
          | None ->
            Slot_ring.release r.log (next_i - Int64.to_int log_retention);
            Slot_ring.prune_outside r.log
              ~low:(next_i - Int64.to_int log_retention)
              ~high:(next_i + prune_margin)
          | Some cp -> (
            match
              Checkpoint.note_exec cp ~seq:next_i ~state:(App.state r.app) ~rid_last:r.rid_last
                ~rid_result:r.rid_result
            with
            | Some d ->
              broadcast r ~to_:r.peer_ids (Checkpoint_vote { seq = next_i; digest = d });
              let prev = Checkpoint.note_vote cp ~seq:next_i ~digest:d ~voter:r.id in
              on_cp_advance r cp prev
            | None -> ()));
          try_execute r
        end
      end
    end

  (* Stable checkpoint advanced from [prev]: truncate the covered log
     prefix, sweep overflow outliers, resume a parked execution. *)
  and on_cp_advance r cp prev =
    if prev >= 0 then begin
      let lo = Checkpoint.low cp in
      for s = prev + 1 to lo do
        Slot_ring.release r.log s
      done;
      Slot_ring.prune_outside r.log ~low:(lo + 1) ~high:(Checkpoint.high cp + prune_margin);
      r.stats.Stats.checkpoints <- r.stats.Stats.checkpoints + 1;
      try_execute r
    end

  (* --- certified state transfer (see Checkpoint, DESIGN.md §8) --- *)

  let cancel_recover_timer r =
    match r.recover_timer with
    | Some h ->
      Engine.cancel r.engine h;
      r.recover_timer <- None
    | None -> ()

  let start_recovery (r : replica) cp =
    Checkpoint.begin_recovery cp ~now:(Engine.now r.engine);
    let rec arm () =
      cancel_recover_timer r;
      r.recover_timer <-
        Some
          (Engine.schedule r.engine ~delay:r.config.request_timeout (fun () ->
               r.recover_timer <- None;
               if r.online && Checkpoint.recovering cp then begin
                 broadcast r ~to_:r.peer_ids (Fetch_state { have = Checkpoint.low cp });
                 arm ()
               end))
    in
    broadcast r ~to_:r.peer_ids (Fetch_state { have = Checkpoint.low cp });
    arm ()

  let maybe_catchup r cp =
    if Checkpoint.needs_catchup cp && not (Checkpoint.recovering cp) then start_recovery r cp

  (* Executed batches strictly above [from], ascending, stop at a gap. *)
  let log_suffix (r : replica) ~from =
    let acc = ref [] in
    let seq = ref (from + 1) in
    let continue = ref true in
    while !continue && !seq <= Int64.to_int r.last_exec_counter do
      let slot = Slot_ring.slot r.log !seq in
      if slot >= 0 then begin
        let e = Slot_ring.entry r.log slot in
        if e.executed && e.requests <> [] then begin
          acc := (!seq, e.requests) :: !acc;
          incr seq
        end
        else continue := false
      end
      else continue := false
    done;
    List.rev !acc

  let on_fetch_state r ~src ~have =
    match r.cp with
    | None -> ()
    | Some cp -> (
      match
        Checkpoint.serve cp ~view:r.view ~have ~suffix:(log_suffix r ~from:(Checkpoint.low cp))
      with
      | Some chunks -> List.iter (fun c -> send r ~dst:src (State_chunk c)) chunks
      | None -> ())

  let on_checkpoint_vote r ~src ~seq ~digest =
    match r.cp with
    | None -> ()
    | Some cp ->
      let prev = Checkpoint.note_vote cp ~seq ~digest ~voter:src in
      on_cp_advance r cp prev;
      maybe_catchup r cp

  let install_transfer (r : replica) cp (c : Checkpoint.completion) =
    cancel_recover_timer r;
    let prev_low = Checkpoint.low cp in
    r.view <- max r.view c.Checkpoint.c_view;
    r.vc_voted <- max r.vc_voted r.view;
    App.set_state r.app c.Checkpoint.c_state;
    rid_reset r;
    List.iter
      (fun (client, rid, result) ->
        let i = rid_slot r client in
        r.rid_last.(i) <- rid;
        r.rid_result.(i) <- result)
      c.Checkpoint.c_rids;
    r.last_exec_counter <- Int64.of_int c.Checkpoint.c_cert.Checkpoint.cp_seq;
    Checkpoint.install cp c;
    List.iter
      (fun (seq, reqs) ->
        List.iter
          (fun (req : Types.request) ->
            let i = rid_slot r req.Types.client in
            if not (r.rid_last.(i) <> min_int && req.Types.rid <= r.rid_last.(i)) then begin
              let result = App.execute r.app req.Types.payload in
              r.rid_last.(i) <- req.Types.rid;
              r.rid_result.(i) <- result
            end)
          reqs;
        r.last_exec_counter <- Int64.of_int seq)
      c.Checkpoint.c_suffix;
    for s = prev_low + 1 to Int64.to_int r.last_exec_counter do
      Slot_ring.release r.log s
    done;
    Slot_ring.prune_outside r.log ~low:(Checkpoint.low cp + 1)
      ~high:(Checkpoint.high cp + prune_margin);
    (* We missed every hybrid counter issued during the outage. *)
    Array.fill r.baseline_pending 0 (Array.length r.baseline_pending) true;
    r.stats.Stats.state_transfers <- r.stats.Stats.state_transfers + 1;
    r.stats.Stats.transfer_bytes <- r.stats.Stats.transfer_bytes + c.Checkpoint.c_bytes;
    r.stats.Stats.transfer_cycles <- r.stats.Stats.transfer_cycles + c.Checkpoint.c_elapsed;
    try_execute r

  let on_state_chunk r ~src chunk =
    match r.cp with
    | None -> ()
    | Some cp -> (
      match Checkpoint.feed cp ~src ~now:(Engine.now r.engine) chunk with
      | None -> ()
      | Some c ->
        if r.chk >= 0 then
          Check.transfer_applied ~session:r.chk ~replica:r.id
            ~seq:c.Checkpoint.c_cert.Checkpoint.cp_seq
            ~claimed:c.Checkpoint.c_cert.Checkpoint.cp_digest ~actual:c.Checkpoint.c_actual
            ~faulty:(Behavior.is_faulty r.behavior);
        if
          (c.Checkpoint.c_valid || !Checkpoint.test_unverified_transfer)
          && c.Checkpoint.c_cert.Checkpoint.cp_seq > Int64.to_int r.last_exec_counter
        then install_transfer r cp c)

  (* UI continuity: exact next counter per sender, with a one-shot baseline
     resync after this replica rejoined (it missed intermediate counters). *)
  let continuity_ok r ~signer ~counter =
    if r.baseline_pending.(signer) then begin
      (* First UI from this sender since we (re)joined: adopt its counter as
         the new baseline — we cannot tell which counters we missed. *)
      r.baseline_pending.(signer) <- false;
      Usig.Monotonic.force r.mono ~signer ~counter;
      true
    end
    else
      match Usig.Monotonic.check r.mono ~signer ~counter with
      | Usig.Monotonic.Accept -> true
      | Usig.Monotonic.Replay -> false
      | Usig.Monotonic.Gap _ ->
        r.gap_drops <- r.gap_drops + 1;
        false

  let verify_cert (r : replica) ~digest cert =
    H.verify_cert ~key:(Keychain.component r.keychain (H.cert_signer cert)) ~digest cert

  (* Record the authenticated (request, counter) binding from the primary and
     add [voter]'s commit vote. *)
  let note_entry r ~counter ~requests ~voter =
    let entry, fresh = Slot_ring.bind r.log (Int64.to_int counter) in
    if fresh then begin
      entry.requests <- requests;
      entry.commit_votes <- Quorum.empty;
      entry.executed <- false;
      if !Obs.trace_on then
        Ring.async_begin r.obs.Obs.ring ~time:(Engine.now r.engine) ~cat:Obs.Cat.repl
          ~id:(Obs.repl_counter_span ~replica:r.id ~counter:(Int64.to_int counter))
          ~arg:(List.length requests)
    end;
    entry.commit_votes <- Quorum.add entry.commit_votes voter;
    entry

  let send_own_commit r ~view ~requests ~primary_cert =
    match H.create_cert r.hybrid_instance (batch_digest requests) with
    | Error _ -> ()  (* our hybrid fail-stopped; we cannot vouch *)
    | Ok cert ->
      r.own_commits_sent <- r.own_commits_sent + 1;
      ignore (note_entry r ~counter:(H.cert_counter primary_cert) ~requests ~voter:r.id);
      broadcast r ~to_:r.peer_ids (Commit { view; requests; primary_cert; cert });
      try_execute r

  (* Order one batch under the next certificate. *)
  let order_batch (r : replica) requests =
    let requests =
      List.filter (fun req -> not (Digest_map.mem r.ordered (Types.request_digest req))) requests
    in
    if requests <> [] then begin
      match H.create_cert r.hybrid_instance (batch_digest requests) with
      | Error _ -> ()  (* hybrid fail-stop: the group will time out on us *)
      | Ok cert ->
        List.iter (fun req -> Digest_map.set r.ordered (Types.request_digest req) 0) requests;
        let nbatch = List.length requests in
        if !Obs.metrics_on then Registry.observe r.obs.Obs.metrics r.obs_batch nbatch;
        if !Obs.trace_on then
          Ring.instant r.obs.Obs.ring ~time:(Engine.now r.engine) ~cat:Obs.Cat.repl
            ~id:(Obs.repl_event ~replica:r.id ~code:Obs.code_prepare)
            ~arg:nbatch;
        ignore (note_entry r ~counter:(H.cert_counter cert) ~requests ~voter:r.id);
        let equivocating =
          match Behavior.active_strategy r.behavior ~now:(Engine.now r.engine) with
          | Some Behavior.Equivocate -> true
          | Some _ | None -> false
        in
        if equivocating then begin
          (* The primary *wants* to equivocate, but the hybrid refuses to
             reuse a counter: the best it can do is certify a second, fake
             batch with the *next* counter and send each half a different
             one. Both are uniquely ordered; verifiers converge on both. *)
          let sample = List.hd requests in
          let fake =
            [ Types.make_request ~client:sample.Types.client
                ~rid:(sample.Types.rid + 1_000_000) ~payload:0L ]
          in
          match H.create_cert r.hybrid_instance (batch_digest fake) with
          | Error _ -> broadcast r ~to_:r.peer_ids (Prepare { view = r.view; requests; cert })
          | Ok fake_cert ->
            ignore (note_entry r ~counter:(H.cert_counter fake_cert) ~requests:fake ~voter:r.id);
            let backups = r.peer_ids in
            let half = Array.length backups / 2 in
            Array.iteri
              (fun i dst ->
                if i < half then begin
                  send r ~dst (Prepare { view = r.view; requests = fake; cert = fake_cert });
                  send r ~dst (Prepare { view = r.view; requests; cert })
                end
                else begin
                  send r ~dst (Prepare { view = r.view; requests; cert });
                  send r ~dst (Prepare { view = r.view; requests = fake; cert = fake_cert })
                end)
              backups
        end
        else broadcast r ~to_:r.peer_ids (Prepare { view = r.view; requests; cert });
        try_execute r
    end

  let flush_batch (r : replica) =
    r.flush_scheduled <- false;
    let batch = List.rev r.batch_buffer in
    r.batch_buffer <- [];
    order_batch r batch

  (* The primary's ingress: order immediately (batch_window = 0) or buffer
     until the window closes / the batch fills. *)
  let order_request (r : replica) (request : Types.request) =
    if r.config.batch_window <= 0 then order_batch r [ request ]
    else begin
      r.batch_buffer <- request :: r.batch_buffer;
      if List.length r.batch_buffer >= r.config.max_batch then flush_batch r
      else if not r.flush_scheduled then begin
        r.flush_scheduled <- true;
        ignore
          (Engine.schedule r.engine ~delay:r.config.batch_window (fun () ->
               if r.flush_scheduled then flush_batch r))
      end
    end

  let adopt_new_view r ~view ~base ~state ~rid_table =
    r.view <- view;
    r.vc_voted <- max r.vc_voted view;
    Slot_ring.reset r.log;
    Digest_map.reset r.ordered;
    App.set_state r.app state;
    r.last_exec_counter <- base;
    rid_reset r;
    List.iter
      (fun (client, (rid, result)) ->
        let c = rid_slot r client in
        r.rid_last.(c) <- rid;
        r.rid_result.(c) <- result)
      rid_table;
    Digest_map.iter (fun _ h -> Engine.cancel r.engine h) r.timers;
    Digest_map.reset r.timers;
    r.batch_buffer <- [];
    r.flush_scheduled <- false;
    (match r.batcher with Some b -> Batcher.clear b | None -> ());
    (* Counter expectations restart from whatever peers send next. *)
    Array.fill r.baseline_pending 0 (Array.length r.baseline_pending) true;
    (match r.cp with
    | Some cp ->
      cancel_recover_timer r;
      Checkpoint.rebase cp ~seq:(Int64.to_int base)
    | None -> ());
    Hashtbl.iter (fun digest _ -> start_vc_timer r digest) r.pending

  let become_primary r ~view =
    let rid_table = rid_table_list r in
    let state = App.state r.app in
    let base = H.current_counter r.hybrid_instance in
    adopt_new_view r ~view ~base ~state ~rid_table;
    broadcast r ~to_:r.peer_ids (New_view { view; base; state; rid_table });
    let pending = Hashtbl.fold (fun _ req acc -> req :: acc) r.pending [] in
    let pending =
      List.sort
        (fun (a : Types.request) b ->
          compare (a.Types.client, a.Types.rid) (b.Types.client, b.Types.rid))
        pending
    in
    let chunk_size =
      match r.config.batching with
      | Some b when Batcher.active b -> max 1 b.Types.max_batch
      | Some _ | None -> max 1 r.config.max_batch
    in
    let rec chunks = function
      | [] -> ()
      | rest ->
        let rec take k acc = function
          | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
          | tl -> (List.rev acc, tl)
        in
        let batch, tl = take chunk_size [] rest in
        order_batch r batch;
        chunks tl
    in
    chunks pending

  let on_req_view_change r ~src ~new_view =
    if new_view > r.view then begin
      let voters =
        Quorum.Rounds.note r.vc_rounds ~current:r.view ~view:new_view ~voter:src ~value:0
      in
      if voters >= r.f + 1 then begin
        if r.vc_voted < new_view then begin
          r.vc_voted <- new_view;
          broadcast r ~to_:r.all_ids (Req_view_change { new_view })
        end;
        if primary_of ~view:new_view ~n:r.n = r.id then begin
          r.stats.Stats.view_changes <- r.stats.Stats.view_changes + 1;
          if !Obs.metrics_on then Registry.incr r.obs.Obs.metrics r.obs_vc;
          if !Obs.trace_on then
            Ring.instant r.obs.Obs.ring ~time:(Engine.now r.engine) ~cat:Obs.Cat.repl
              ~id:(Obs.repl_event ~replica:r.id ~code:Obs.code_view_change)
              ~arg:new_view;
          become_primary r ~view:new_view
        end
      end
    end

  let on_request r (request : Types.request) =
    let digest = Types.request_digest request in
    let client = request.Types.client in
    let c = rid_slot r client in
    if r.rid_last.(c) <> min_int && request.Types.rid <= r.rid_last.(c) then
      reply_to_client r request r.rid_result.(c)
    else begin
      if !Obs.trace_on && not (Hashtbl.mem r.pending digest) then
        Ring.async_begin r.obs.Obs.ring ~time:(Engine.now r.engine) ~cat:Obs.Cat.repl
          ~id:(Obs.repl_request_span ~replica:r.id ~client ~rid:request.Types.rid)
          ~arg:0;
      let was_pending = Hashtbl.mem r.pending digest in
      Hashtbl.replace r.pending digest request;
      if is_primary r then (
        match r.batcher with
        | Some b ->
          (* Retransmissions of a request already buffered (still pending)
             or already ordered must not enter a second batch. *)
          if not (was_pending || Digest_map.mem r.ordered digest) then Batcher.add b request
        | None -> order_request r request)
      else begin
        send r ~dst:(primary_of ~view:r.view ~n:r.n) (Request request);
        start_vc_timer r digest
      end
    end

  let on_prepare r ~src ~view ~requests ~cert =
    if view = r.view && src = primary_of ~view ~n:r.n && H.cert_signer cert = src
       && requests <> []
    then begin
      if verify_cert r ~digest:(batch_digest requests) cert
         && continuity_ok r ~signer:src ~counter:(H.cert_counter cert)
      then begin
        List.iter
          (fun req -> Hashtbl.replace r.pending (Types.request_digest req) req)
          requests;
        ignore (note_entry r ~counter:(H.cert_counter cert) ~requests ~voter:src);
        send_own_commit r ~view ~requests ~primary_cert:cert
      end
      else
        (* Bad or gapped certificate from the primary: keep pressure on the
           timers of whichever requests we already know. *)
        List.iter
          (fun req ->
            let digest = Types.request_digest req in
            if Hashtbl.mem r.pending digest then start_vc_timer r digest)
          requests
    end

  let on_commit r ~src ~view ~requests ~primary_cert ~cert =
    if view = r.view && H.cert_signer cert = src
       && H.cert_signer primary_cert = primary_of ~view ~n:r.n
       && requests <> []
    then begin
      let digest = batch_digest requests in
      if verify_cert r ~digest primary_cert && verify_cert r ~digest cert
         && continuity_ok r ~signer:src ~counter:(H.cert_counter cert)
      then begin
        (* The primary's certificate authenticates the (batch, counter)
           binding even if we never saw the prepare directly. *)
        ignore
          (note_entry r
             ~counter:(H.cert_counter primary_cert)
             ~requests
             ~voter:(H.cert_signer primary_cert));
        ignore (note_entry r ~counter:(H.cert_counter primary_cert) ~requests ~voter:src);
        try_execute r
      end
    end

  let on_new_view r ~src ~view ~base ~state ~rid_table =
    if view > r.view && src = primary_of ~view ~n:r.n then begin
      adopt_new_view r ~view ~base ~state ~rid_table
    end

  let handle (r : replica) ~src msg =
    let now = Engine.now r.engine in
    if r.online && not (Behavior.is_crashed r.behavior ~now) then
      match msg with
      | Request request -> on_request r request
      | Prepare { view; requests; cert } -> on_prepare r ~src ~view ~requests ~cert
      | Commit { view; requests; primary_cert; cert } ->
        on_commit r ~src ~view ~requests ~primary_cert ~cert
      | Req_view_change { new_view } -> on_req_view_change r ~src ~new_view
      | New_view { view; base; state; rid_table } -> on_new_view r ~src ~view ~base ~state ~rid_table
      | Checkpoint_vote { seq; digest } -> on_checkpoint_vote r ~src ~seq ~digest
      | Fetch_state { have } -> on_fetch_state r ~src ~have
      | State_chunk chunk -> on_state_chunk r ~src chunk
      | Reply _ -> ()

  let make_replica engine fabric config keychain stats ~id ~behavior ~chk =
    let hybrid_instance =
      H.make ~id ~key:(Keychain.component keychain id) ~protection:config.usig_protection
    in
    let obs = Engine.obs engine in
    let obs_batch, obs_vc =
      if !Obs.metrics_on then
        ( Registry.histogram obs.Obs.metrics "repl.batch_size" ~bounds:[| 1; 2; 4; 8; 16; 32 |],
          Registry.counter obs.Obs.metrics "repl.view_changes" )
      else (Registry.null_histogram, 0)
    in
    let n = n_replicas config in
    {
      id;
      n;
      f = config.f;
      engine;
      fabric;
      config;
      behavior;
      app = App.accumulator ();
      hybrid_instance;
      keychain;
      stats;
      online = true;
      view = 0;
      last_exec_counter = 0L;
      log = Slot_ring.create ~capacity:(2 * Int64.to_int log_retention) ~fresh:fresh_entry;
      ordered = Digest_map.create ~capacity:64 ();
      pending = Hashtbl.create 16;
      rid_last = Array.make (n + config.n_clients) min_int;
      rid_result = Array.make (n + config.n_clients) 0L;
      timers = Digest_map.create ~capacity:16 ();
      mono = Usig.Monotonic.create ();
      baseline_pending = Array.make n false;
      vc_rounds = Quorum.Rounds.create ~n ();
      vc_voted = 0;
      all_ids = Array.init n Fun.id;
      peer_ids = Array.init (n - 1) (fun i -> if i < id then i else i + 1);
      mcast = (if config.multicast then fabric.Transport.multicast else None);
      own_commits_sent = 0;
      gap_drops = 0;
      batch_buffer = [];
      flush_scheduled = false;
      obs;
      obs_batch;
      obs_vc;
      chk;
      cp =
        (match config.checkpoint with
        | Some c -> Some (Checkpoint.create c ~obs ~quorum:(config.f + 1))
        | None -> None);
      recover_timer = None;
      batcher = None;
    }

  (* Built after the replica record so the pipeline gate can read the live
     sequencing state: in-flight instances = the hybrid's attested counter
     minus the execution frontier, and no certificate may step past the
     checkpoint high watermark. *)
  let attach_batcher engine (r : replica) =
    match r.config.batching with
    | Some b when Batcher.active b ->
      let attested () = Int64.to_int (H.current_counter r.hybrid_instance) in
      let ready () =
        let a = attested () in
        a - Int64.to_int r.last_exec_counter < b.Types.pipeline_depth
        &&
        match r.cp with
        | Some cp when not !Checkpoint.test_ignore_watermarks -> a + 1 <= Checkpoint.high cp
        | Some _ | None -> true
      in
      let occupancy () = attested () - Int64.to_int r.last_exec_counter in
      r.batcher <-
        Some
          (Batcher.create ~engine ~cfg:b ~seal:(fun reqs -> order_batch r reqs) ~ready ~occupancy)
    | Some _ | None -> ()

  let start engine fabric config ?behaviors () =
    let n = n_replicas config in
    Quorum.check_n n "Hybrid_bft.start";
    let chk = if !Check.enabled then Check.new_session ~protocol:H.protocol_name else -1 in
    let behaviors =
      match behaviors with
      | Some b ->
        if Array.length b <> n then invalid_arg "Minbft.start: behaviors must cover every replica";
        b
      | None -> Array.make n Behavior.honest
    in
    if fabric.Transport.n_endpoints < n + config.n_clients then
      invalid_arg "Minbft.start: fabric too small";
    let keychain = Keychain.create ~master:config.keychain_master ~n in
    let stats = Stats.create () in
    let replicas =
      Array.init n (fun id ->
          make_replica engine fabric config keychain stats ~id ~behavior:behaviors.(id) ~chk)
    in
    Array.iter
      (fun r ->
        attach_batcher engine r;
        fabric.Transport.set_handler r.id (fun ~src msg -> handle r ~src msg))
      replicas;
    let clients =
      Array.init config.n_clients (fun i ->
          Client.create engine fabric ~id:(n + i) ~n_replicas:n ~quorum:(config.f + 1)
            ~retry_timeout:config.request_timeout ~stats
            ~to_msg:(fun request -> Request request)
            ~of_msg:(function Reply reply -> Some reply | _ -> None)
            ())
    in
    { engine; fabric; config; replicas; clients; shared_stats = stats; keychain }

  let submit t ~client ~payload =
    if client < 0 || client >= Array.length t.clients then invalid_arg "Minbft.submit: unknown client";
    Client.submit t.clients.(client) ~payload

  let stats t = t.shared_stats

  let view t ~replica = t.replicas.(replica).view

  let replica_state t ~replica = App.state t.replicas.(replica).app

  let set_replica_state t ~replica state = App.set_state t.replicas.(replica).app state

  let hybrid t ~replica = t.replicas.(replica).hybrid_instance

  let cert_gap_drops t = Array.fold_left (fun acc r -> acc + r.gap_drops) 0 t.replicas

  let replica_online t ~replica = t.replicas.(replica).online

  let set_offline t ~replica =
    let r = t.replicas.(replica) in
    r.online <- false;
    (match r.batcher with Some b -> Batcher.clear b | None -> ());
    Digest_map.iter (fun _ h -> Engine.cancel r.engine h) r.timers;
    Digest_map.reset r.timers;
    cancel_recover_timer r

  (* Legacy model: free state copy from the most advanced online peer. *)
  let legacy_rejoin t r =
    let best = ref None in
    Array.iter
      (fun peer ->
        if peer.id <> r.id && peer.online then
          match !best with
          | Some b when Int64.compare b.last_exec_counter peer.last_exec_counter >= 0 -> ()
          | Some _ | None -> best := Some peer)
      t.replicas;
    match !best with
    | Some peer ->
      r.view <- peer.view;
      r.vc_voted <- max r.vc_voted peer.view;
      r.last_exec_counter <- peer.last_exec_counter;
      App.set_state r.app (App.state peer.app);
      rid_reset r;
      for c = 0 to Array.length peer.rid_last - 1 do
        if peer.rid_last.(c) <> min_int then begin
          let i = rid_slot r c in
          r.rid_last.(i) <- peer.rid_last.(c);
          r.rid_result.(i) <- peer.rid_result.(c)
        end
      done;
      Slot_ring.reset r.log;
      Digest_map.reset r.ordered;
      Hashtbl.reset r.pending;
      Array.fill r.baseline_pending 0 (Array.length r.baseline_pending) true
    | None -> ()

  let set_online t ~replica =
    let r = t.replicas.(replica) in
    if not r.online then begin
      r.online <- true;
      match r.cp with
      | Some cp ->
        (* Rejuvenation wiped the replica: rejoin by certified transfer
           instead of a free peer copy. *)
        r.view <- 0;
        r.vc_voted <- 0;
        r.last_exec_counter <- 0L;
        App.set_state r.app 0L;
        rid_reset r;
        Slot_ring.reset r.log;
        Digest_map.reset r.ordered;
        Hashtbl.reset r.pending;
        r.batch_buffer <- [];
        r.flush_scheduled <- false;
        (match r.batcher with Some b -> Batcher.clear b | None -> ());
        Array.fill r.baseline_pending 0 (Array.length r.baseline_pending) true;
        Checkpoint.reset cp;
        start_recovery r cp
      | None -> legacy_rejoin t r
    end

end
