(** Uniform run statistics across protocols. *)

module Histogram = Resoc_des.Metrics.Histogram

type t = {
  mutable submitted : int;
  mutable completed : int;  (** Requests whose reply quorum was accepted. *)
  mutable wrong_replies : int;  (** Replies that disagreed with the quorum. *)
  mutable retransmissions : int;
  mutable view_changes : int;
  mutable checkpoints : int;  (** Stable checkpoint certificates formed (any replica). *)
  mutable state_transfers : int;  (** Certified state transfers completed and installed. *)
  mutable transfer_bytes : int;  (** Nominal wire bytes of completed transfers. *)
  mutable transfer_cycles : int;  (** Total fetch-to-install latency of completed transfers. *)
  latency : Histogram.t;  (** Submission-to-acceptance, cycles. *)
}

val create : unit -> t

val throughput : t -> horizon:int -> float
(** Completed requests per 1000 cycles. *)

val pp : Format.formatter -> t -> unit
