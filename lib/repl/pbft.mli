(** PBFT-style Byzantine fault-tolerant state machine replication.

    The 3f+1 baseline of experiment E3 (Castro & Liskov's message pattern):
    request → pre-prepare → prepare (2f+1 votes) → commit (2f+1 votes) →
    execute → reply, with view changes on request timeout. Replicas may be
    given crash or Byzantine behaviours ({!Resoc_fault.Behavior}); an
    equivocating primary sends conflicting pre-prepares and is evicted by a
    view change.

    With [config.checkpoint = Some _] the group runs real checkpointing
    (DESIGN.md §8): every interval executions each replica digests its
    state and votes; 2f+1 matching votes form a stable-checkpoint
    certificate that advances the low watermark, truncates the log, and
    becomes the state a wiped replica fetches — chunked and
    certificate-verified — when it rejoins after rejuvenation. With the
    default [checkpoint = None] the protocol behaves exactly as before:
    fixed-retention log pruning, and {!set_online} hands the rejoiner a
    free copy of a peer's state.

    Remaining simplifications vs. the full protocol, chosen to preserve
    the metrics this library studies (quorum sizes, message complexity,
    fault reaction time) — see DESIGN.md: NEW-VIEW still carries full
    state for the view-change handoff itself, and the new primary
    restarts sequencing above the highest execution reported in its
    view-change quorum. *)

module Hash = Resoc_crypto.Hash
module Behavior = Resoc_fault.Behavior

type msg =
  | Request of Types.request
  | Pre_prepare of { view : int; seq : int; digest : Hash.t; request : Types.request }
  | Pre_prepare_b of { view : int; seq : int; digest : Hash.t; requests : Types.request list }
      (** Batched ordering ([config.batching]): one agreement instance
          covers the whole list; [digest = Types.batch_digest requests].
          Prepare/Commit are shared with the single-request path. *)
  | Prepare of { view : int; seq : int; digest : Hash.t }
  | Commit of { view : int; seq : int; digest : Hash.t }
  | Reply of Types.reply
  | View_change of { new_view : int; last_exec : int }
  | New_view of { view : int; start_seq : int; state : int64; rid_table : (int * (int * int64)) list }
  | Checkpoint_vote of { seq : int; digest : Hash.t }
  | Fetch_state of { have : int }
  | State_chunk of Checkpoint.chunk

type config = {
  f : int;  (** Tolerated faults; the group has 3f+1 replicas. *)
  n_clients : int;
  request_timeout : int;  (** Client retransmission period. *)
  vc_timeout : int;  (** Replica view-change trigger. *)
  checkpoint : Checkpoint.config option;
      (** Certified checkpointing + state transfer; [None] (the default)
          keeps the legacy fixed-retention / free-state-copy model. *)
  multicast : bool;
      (** Route replica fan-outs through the fabric's multicast (one
          injection forking in the network) when it offers one; off =
          per-destination unicast. *)
  batching : Types.batching option;
      (** Primary-side request batching + agreement pipelining
          ({!Batcher}); [None] (the default) keeps the legacy
          one-instance-per-request path byte-identical. *)
}

val default_config : config
(** f=1, 2 clients, timeouts 4000/2500 cycles, checkpointing off,
    multicast off, batching off. *)

val n_replicas : config -> int

type t
(** A complete group: replicas plus clients on one fabric. *)

val start :
  Resoc_des.Engine.t ->
  msg Transport.fabric ->
  config ->
  ?behaviors:Behavior.t array ->
  unit ->
  t
(** The fabric must have [n_replicas config + config.n_clients] endpoints.
    [behaviors] defaults to all-honest. Replicas run the accumulator app. *)

val submit : t -> client:int -> payload:int64 -> unit
(** [client] is an index in [0 .. n_clients-1]. *)

val stats : t -> Stats.t

val view : t -> replica:int -> int

val replica_state : t -> replica:int -> int64

val set_replica_state : t -> replica:int -> int64 -> unit
(** Out-of-band state installation (epoch-based protocol switching). *)

val replica_online : t -> replica:int -> bool

val set_offline : t -> replica:int -> unit
(** Tile powered down (e.g. for rejuvenation): drops all traffic. *)

val set_online : t -> replica:int -> unit
(** Rejoin after rejuvenation. With checkpointing enabled the replica
    restarts {e wiped} and fetches the latest certified checkpoint plus
    log suffix from its peers over the fabric (chunked, digest-verified
    against the certificate); without it, legacy behaviour: a free state
    copy from the most advanced online replica. *)

val message_name : msg -> string
(** For byte-accounting and tracing. *)
