module Engine = Resoc_des.Engine
module Hash = Resoc_crypto.Hash
module Keychain = Resoc_crypto.Keychain
module Behavior = Resoc_fault.Behavior
module Register = Resoc_hw.Register
module Trinc = Resoc_hybrid.Trinc
module Monotonic = Resoc_hybrid.Usig.Monotonic
module Check = Resoc_check.Check

type msg =
  | Request of Types.request
  | Prepare of { view : int; request : Types.request; cert : Trinc.attestation }
  | Prepare_b of { view : int; requests : Types.request list; cert : Trinc.attestation }
  | Commit of {
      view : int;
      request : Types.request;
      primary_cert : Trinc.attestation;
      cert : Trinc.attestation;
    }
  | Commit_b of {
      view : int;
      requests : Types.request list;
      primary_cert : Trinc.attestation;
      cert : Trinc.attestation;
    }
  | Update of { view : int; upto : int64; state : int64; rid_table : (int * (int * int64)) list }
  | Activate of { new_view : int }
  | New_view of { view : int; base : int64; state : int64; rid_table : (int * (int * int64)) list }
  | Reply of Types.reply
  | Checkpoint_vote of { seq : int; digest : Hash.t }
  | Fetch_state of { have : int }
  | State_chunk of Checkpoint.chunk

type config = {
  f : int;
  n_clients : int;
  request_timeout : int;
  vc_timeout : int;
  update_period : int;
  trinc_protection : Register.protection;
  keychain_master : int64;
  checkpoint : Checkpoint.config option;
  multicast : bool;
  batching : Types.batching option;
}

let default_config =
  {
    f = 1;
    n_clients = 2;
    request_timeout = 4000;
    vc_timeout = 2500;
    update_period = 2_000;
    trinc_protection = Register.Secded;
    keychain_master = 0x17E4C0L;
    checkpoint = None;
    multicast = false;
    batching = None;
  }

let n_replicas config = (2 * config.f) + 1
let n_active_initial config = config.f + 1

(* Pooled in the slot ring, reset in place per counter; commit votes are
   a quorum bitset. *)
type entry = {
  mutable request : Types.request;
  mutable batch : Types.request list;  (* non-empty iff the counter agreed a batch *)
  mutable commit_votes : Quorum.t;
  mutable executed : bool;
}

let no_request : Types.request = { Types.client = -1; rid = -1; payload = 0L }

let fresh_entry _ =
  { request = no_request; batch = []; commit_votes = Quorum.empty; executed = false }

let log_retention = 256

type replica = {
  id : int;
  n : int;
  f : int;
  engine : Engine.t;
  fabric : msg Transport.fabric;
  config : config;
  behavior : Behavior.t;
  app : App.t;
  trinc : Trinc.t;
  keychain : Keychain.t;
  stats : Stats.t;
  mutable view : int;
  mutable is_active : bool;
  mutable transitioned : bool;
  mutable last_exec_counter : int64;
  log : entry Slot_ring.t;
  ordered : int Digest_map.t;
  pending : (Hash.t, Types.request) Hashtbl.t;
  mutable rid_last : int array;  (* client -> last rid, min_int = none *)
  mutable rid_result : int64 array;
  timers : Engine.handle Digest_map.t;
  mono : Monotonic.checker;
  baseline_pending : bool array;  (* per-signer counter resync after transition *)
  vc_rounds : Quorum.Rounds.t;
  mutable vc_voted : int;
  all_ids : int array;
  all_others : int array;  (* everyone but self *)
  initial_active_others : int array;  (* ids 0..f minus self *)
  initial_passive : int array;  (* ids f+1..n-1 *)
  mcast : (src:int -> dsts:int array -> n:int -> msg -> unit) option;
      (* fabric multicast, resolved once; None = per-destination sends *)
  mutable gap_drops : int;
  mutable last_shipped : int64;
  repeat_counts : (int * int, int) Hashtbl.t;  (* (client, rid) -> cached-reply resends *)
  chk : int;  (* resoc_check session, -1 when checking is off *)
  mutable online : bool;
  cp : Checkpoint.t option;  (* active-set checkpoint certificates, None = legacy *)
  mutable recover_timer : Engine.handle option;
  mutable batcher : Batcher.t option;  (* primary-side batching, None = legacy *)
}

type t = {
  engine : Engine.t;
  config : config;
  replicas : replica array;
  clients : msg Client.t array;
  shared_stats : Stats.t;
  keychain : Keychain.t;
}

let message_name = function
  | Request _ -> "request"
  | Prepare _ -> "prepare"
  | Prepare_b _ -> "prepare-batch"
  | Commit _ -> "commit"
  | Commit_b _ -> "commit-batch"
  | Update _ -> "update"
  | Activate _ -> "activate"
  | New_view _ -> "new-view"
  | Reply _ -> "reply"
  | Checkpoint_vote _ -> "checkpoint-vote"
  | Fetch_state _ -> "fetch-state"
  | State_chunk _ -> "state-chunk"

(* Forward bound for overflow pruning on the legacy path: anything this far
   past the execution frontier is an outlier that will never execute. *)
let prune_margin = 1 lsl 15

let primary_of ~view ~n = view mod n

let is_primary (r : replica) = primary_of ~view:r.view ~n:r.n = r.id

let empty_ids : int array = [||]

(* The replicas that participate in agreement right now: the initial f+1
   active ones, or everyone after a transition. Activeness is tracked per
   replica, so views during/after the transition stay consistent. *)
let active_others r = if r.transitioned then r.all_others else r.initial_active_others

let passive_ids (r : replica) = if r.transitioned then empty_ids else r.initial_passive

(* Fault-free quorum: every active replica (f+1 of f+1). After a
   transition: f+1 of 2f+1. Either way the count is f+1. *)
let commit_quorum (r : replica) = r.f + 1

let send (r : replica) ~dst msg =
  let now = Engine.now r.engine in
  if r.online && not (Behavior.is_crashed r.behavior ~now) then
    match Behavior.active_strategy r.behavior ~now with
    | Some Behavior.Silent -> ()
    | Some (Behavior.Delay d) ->
      ignore
        (Engine.schedule r.engine ~delay:d (fun () -> r.fabric.Transport.send ~src:r.id ~dst msg))
    | Some Behavior.Equivocate | Some Behavior.Corrupt_execution | None ->
      r.fabric.Transport.send ~src:r.id ~dst msg

(* Fan-outs take the fabric's tree multicast when the replica was built
   with one: a single behaviour gate, then one injection that forks in
   the network instead of [Array.length to_] unicasts. *)
let broadcast r ~to_ msg =
  match r.mcast with
  | Some mc ->
    let now = Engine.now r.engine in
    if r.online && not (Behavior.is_crashed r.behavior ~now) then (
      match Behavior.active_strategy r.behavior ~now with
      | Some Behavior.Silent -> ()
      | Some (Behavior.Delay d) ->
        ignore
          (Engine.schedule r.engine ~delay:d (fun () ->
               mc ~src:r.id ~dsts:to_ ~n:(Array.length to_) msg))
      | Some Behavior.Equivocate | Some Behavior.Corrupt_execution | None ->
        mc ~src:r.id ~dsts:to_ ~n:(Array.length to_) msg)
  | None ->
    for i = 0 to Array.length to_ - 1 do
      send r ~dst:(Array.unsafe_get to_ i) msg
    done

let cancel_request_timer r digest =
  let i = Digest_map.index r.timers digest in
  if i >= 0 then begin
    Engine.cancel r.engine (Digest_map.value_at r.timers i);
    Digest_map.remove_at r.timers i
  end

(* Any replica that sees a request starve votes to transition/rotate. *)
let start_vc_timer r digest =
  if not (Digest_map.mem r.timers digest) then
    Digest_map.set r.timers digest
      (Engine.schedule r.engine ~delay:r.config.vc_timeout (fun () ->
           Digest_map.remove r.timers digest;
           if Hashtbl.mem r.pending digest then begin
             (* Escalate past views whose primary never answered: repeated
                timeouts propose ever-higher views until a live primary is
                reached. *)
             let new_view = max r.view r.vc_voted + 1 in
             r.vc_voted <- new_view;
             broadcast r ~to_:r.all_ids (Activate { new_view })
           end))

let reply_to_client r (request : Types.request) result =
  let corrupt =
    match Behavior.active_strategy r.behavior ~now:(Engine.now r.engine) with
    | Some Behavior.Corrupt_execution -> true
    | Some _ | None -> false
  in
  let result = if corrupt then Int64.logxor result 0xBADBADL else result in
  send r ~dst:request.Types.client
    (Reply { Types.client = request.Types.client; rid = request.Types.rid; result; replica = r.id })

let rid_slot r client =
  let len = Array.length r.rid_last in
  if client >= len then begin
    let ncap = ref (max 8 (2 * len)) in
    while client >= !ncap do
      ncap := 2 * !ncap
    done;
    let nlast = Array.make !ncap min_int in
    Array.blit r.rid_last 0 nlast 0 len;
    let nresult = Array.make !ncap 0L in
    Array.blit r.rid_result 0 nresult 0 len;
    r.rid_last <- nlast;
    r.rid_result <- nresult
  end;
  client

let rid_reset r = Array.fill r.rid_last 0 (Array.length r.rid_last) min_int

let rid_table_list r =
  let acc = ref [] in
  for c = Array.length r.rid_last - 1 downto 0 do
    if r.rid_last.(c) <> min_int then acc := (c, (r.rid_last.(c), r.rid_result.(c))) :: !acc
  done;
  !acc

(* One agreed counter carries one request or (batching on) a whole batch;
   the attestation binds one digest either way. *)
let entry_digest (e : entry) =
  if e.batch != [] then Types.batch_digest e.batch else Types.request_digest e.request

(* Execute one request of an agreed counter: reply-cache dedup, execute,
   retire the pending entry and its view-change timer, answer the client. *)
let exec_one r (request : Types.request) =
  let client = request.Types.client and rid = request.Types.rid in
  let c = rid_slot r client in
  let result =
    if r.rid_last.(c) <> min_int && rid <= r.rid_last.(c) then r.rid_result.(c)
    else begin
      let result = App.execute r.app request.Types.payload in
      r.rid_last.(c) <- rid;
      r.rid_result.(c) <- result;
      result
    end
  in
  let digest = Types.request_digest request in
  Hashtbl.remove r.pending digest;
  cancel_request_timer r digest;
  reply_to_client r request result

let rec try_execute r =
  let next = Int64.add r.last_exec_counter 1L in
  let next_i = Int64.to_int next in
  let gate_ok =
    match r.cp with
    | Some cp when not !Checkpoint.test_ignore_watermarks -> next_i <= Checkpoint.high cp
    | Some _ | None -> true
  in
  let slot = Slot_ring.slot r.log next_i in
  if gate_ok && slot >= 0 then begin
    let e = Slot_ring.entry r.log slot in
    if (not e.executed) && Quorum.reached e.commit_votes ~threshold:(commit_quorum r) then begin
      e.executed <- true;
      r.last_exec_counter <- next;
      (match r.cp with
      | Some cp when r.chk >= 0 ->
        Check.exec_window ~session:r.chk ~replica:r.id ~seq:next_i ~low:(Checkpoint.low cp)
          ~high:(Checkpoint.high cp)
          ~faulty:(Behavior.is_faulty r.behavior)
      | Some _ | None -> ());
      if r.chk >= 0 then begin
        Check.commit ~session:r.chk ~replica:r.id ~view:r.view ~seq:next_i
          ~digest:(entry_digest e)
          ~signers:(Quorum.count e.commit_votes)
          ~quorum:(commit_quorum r)
          ~faulty:(Behavior.is_faulty r.behavior);
        if e.batch != [] then begin
          let len = List.length e.batch in
          List.iteri
            (fun pos (req : Types.request) ->
              Check.batch_commit ~session:r.chk ~replica:r.id ~view:r.view ~seq:next_i ~pos ~len
                ~client:req.Types.client ~rid:req.Types.rid
                ~faulty:(Behavior.is_faulty r.behavior))
            e.batch
        end
      end;
      if e.batch != [] then List.iter (exec_one r) e.batch else exec_one r e.request;
      (match r.batcher with Some b -> Batcher.kick b | None -> ());
      (match r.cp with
      | None ->
        Slot_ring.release r.log (next_i - log_retention);
        Slot_ring.prune_outside r.log ~low:(next_i - log_retention) ~high:(next_i + prune_margin)
      | Some cp -> (
        match
          Checkpoint.note_exec cp ~seq:next_i ~state:(App.state r.app) ~rid_last:r.rid_last
            ~rid_result:r.rid_result
        with
        | None -> ()
        | Some d ->
          broadcast r ~to_:(active_others r) (Checkpoint_vote { seq = next_i; digest = d });
          on_cp_advance r cp (Checkpoint.note_vote cp ~seq:next_i ~digest:d ~voter:r.id)));
      try_execute r
    end
  end

(* A new stable checkpoint: truncate the log below the low watermark (the
   certificate now proves everything up to it) and retry execution in case
   the high watermark was the only obstacle. *)
and on_cp_advance r cp prev =
  if prev >= 0 then begin
    let lo = Checkpoint.low cp in
    for seq = prev + 1 to lo do
      Slot_ring.release r.log seq
    done;
    Slot_ring.prune_outside r.log ~low:(lo + 1) ~high:(Checkpoint.high cp + prune_margin);
    r.stats.Stats.checkpoints <- r.stats.Stats.checkpoints + 1;
    try_execute r
  end

let cancel_recover_timer r =
  match r.recover_timer with
  | Some h ->
    Engine.cancel r.engine h;
    r.recover_timer <- None
  | None -> ()

(* Fetch the latest certified checkpoint from the peers, re-asking on a
   request-timeout cadence until a transfer installs. Only actives hold
   stable certificates, but the rejoiner does not know who is active, so
   it asks everyone; passives simply have nothing to serve. *)
let start_recovery (r : replica) cp =
  Checkpoint.begin_recovery cp ~now:(Engine.now r.engine);
  let rec arm () =
    cancel_recover_timer r;
    r.recover_timer <-
      Some
        (Engine.schedule r.engine ~delay:r.config.request_timeout (fun () ->
             r.recover_timer <- None;
             if r.online && Checkpoint.recovering cp then begin
               broadcast r ~to_:r.all_others (Fetch_state { have = Checkpoint.low cp });
               arm ()
             end))
  in
  broadcast r ~to_:r.all_others (Fetch_state { have = Checkpoint.low cp });
  arm ()

let maybe_catchup r cp =
  if Checkpoint.needs_catchup cp && not (Checkpoint.recovering cp) then start_recovery r cp

(* The executed log suffix strictly above [from], ascending and gapless;
   stops early at the first missing or unexecuted counter. *)
let log_suffix (r : replica) ~from =
  let acc = ref [] in
  let seq = ref (from + 1) in
  let continue = ref true in
  while !continue && !seq <= Int64.to_int r.last_exec_counter do
    let slot = Slot_ring.slot r.log !seq in
    if slot >= 0 then begin
      let e = Slot_ring.entry r.log slot in
      if e.executed && (e.request != no_request || e.batch != []) then begin
        acc := (!seq, if e.batch != [] then e.batch else [ e.request ]) :: !acc;
        incr seq
      end
      else continue := false
    end
    else continue := false
  done;
  List.rev !acc

let on_fetch_state r ~src ~have =
  match r.cp with
  | None -> ()
  | Some cp when r.is_active -> (
    match Checkpoint.serve cp ~view:r.view ~have ~suffix:(log_suffix r ~from:(Checkpoint.low cp)) with
    | Some chunks -> List.iter (fun c -> send r ~dst:src (State_chunk c)) chunks
    | None -> ())
  | Some _ -> ()

let on_checkpoint_vote r ~src ~seq ~digest =
  match r.cp with
  | None -> ()
  | Some cp when r.is_active ->
    let prev = Checkpoint.note_vote cp ~seq ~digest ~voter:src in
    on_cp_advance r cp prev;
    maybe_catchup r cp
  | Some _ -> ()

(* Install a completed, verified transfer: adopt the certified state and
   reply cache, replay the log suffix (no client replies — the group
   already answered), and rejoin in the role the serving view implies:
   after a transition everyone is active, before it the initial split
   stands. The TrInc counter is trusted hardware and survived the wipe,
   so peers re-baseline this signer instead of seeing a replay. *)
let install_transfer (r : replica) cp (c : Checkpoint.completion) =
  cancel_recover_timer r;
  let prev_low = Checkpoint.low cp in
  r.view <- max r.view c.Checkpoint.c_view;
  r.vc_voted <- max r.vc_voted r.view;
  if c.Checkpoint.c_view > 0 then begin
    r.transitioned <- true;
    r.is_active <- true
  end;
  App.set_state r.app c.Checkpoint.c_state;
  rid_reset r;
  List.iter
    (fun (client, rid, result) ->
      let i = rid_slot r client in
      r.rid_last.(i) <- rid;
      r.rid_result.(i) <- result)
    c.Checkpoint.c_rids;
  r.last_exec_counter <- Int64.of_int c.Checkpoint.c_cert.Checkpoint.cp_seq;
  Checkpoint.install cp c;
  List.iter
    (fun (seq, reqs) ->
      List.iter
        (fun (req : Types.request) ->
          let i = rid_slot r req.Types.client in
          if not (r.rid_last.(i) <> min_int && req.Types.rid <= r.rid_last.(i)) then begin
            let result = App.execute r.app req.Types.payload in
            r.rid_last.(i) <- req.Types.rid;
            r.rid_result.(i) <- result
          end)
        reqs;
      r.last_exec_counter <- Int64.of_int seq)
    c.Checkpoint.c_suffix;
  r.last_shipped <- r.last_exec_counter;
  for s = prev_low + 1 to Int64.to_int r.last_exec_counter do
    Slot_ring.release r.log s
  done;
  Slot_ring.prune_outside r.log ~low:(Checkpoint.low cp + 1)
    ~high:(Checkpoint.high cp + prune_margin);
  Array.fill r.baseline_pending 0 (Array.length r.baseline_pending) true;
  r.stats.Stats.state_transfers <- r.stats.Stats.state_transfers + 1;
  r.stats.Stats.transfer_bytes <- r.stats.Stats.transfer_bytes + c.Checkpoint.c_bytes;
  r.stats.Stats.transfer_cycles <- r.stats.Stats.transfer_cycles + c.Checkpoint.c_elapsed;
  try_execute r

let on_state_chunk r ~src chunk =
  match r.cp with
  | None -> ()
  | Some cp -> (
    match Checkpoint.feed cp ~src ~now:(Engine.now r.engine) chunk with
    | None -> ()
    | Some c ->
      if r.chk >= 0 then
        Check.transfer_applied ~session:r.chk ~replica:r.id
          ~seq:c.Checkpoint.c_cert.Checkpoint.cp_seq
          ~claimed:c.Checkpoint.c_cert.Checkpoint.cp_digest ~actual:c.Checkpoint.c_actual
          ~faulty:(Behavior.is_faulty r.behavior);
      if
        (c.Checkpoint.c_valid || !Checkpoint.test_unverified_transfer)
        && Int64.compare (Int64.of_int c.Checkpoint.c_cert.Checkpoint.cp_seq) r.last_exec_counter
           > 0
      then install_transfer r cp c)

let attestation_digest digest = Hash.combine (Hash.of_string "cheap-stmt") digest

(* TrInc attestation with counter = exactly previous+1 plays the role of a
   USIG UI; [Trinc.attest] enforces non-decrease in the hybrid, and
   verifiers check the +1 step, which rules out both reuse and gaps. *)
let make_cert r digest =
  let next = Int64.add (fst (Resoc_hw.Register.read (Trinc.counter_register r.trinc))) 1L in
  Trinc.attest r.trinc ~new_counter:next ~digest:(attestation_digest digest)

let verify_cert (r : replica) ~digest (a : Trinc.attestation) =
  Trinc.verify ~key:(Keychain.component r.keychain a.Trinc.signer) a
  && Hash.equal a.Trinc.digest (attestation_digest digest)
  && Int64.equal a.Trinc.current (Int64.add a.Trinc.previous 1L)

let continuity_ok r ~signer ~counter =
  if r.baseline_pending.(signer) then begin
    (* First attestation since the transition: adopt it as the baseline. *)
    r.baseline_pending.(signer) <- false;
    Monotonic.force r.mono ~signer ~counter;
    true
  end
  else
    match Monotonic.check r.mono ~signer ~counter with
    | Monotonic.Accept -> true
    | Monotonic.Replay -> false
    | Monotonic.Gap _ ->
      r.gap_drops <- r.gap_drops + 1;
      false

let note_entry r ~counter ~request ~voter =
  let entry, fresh = Slot_ring.bind r.log (Int64.to_int counter) in
  if fresh then begin
    entry.request <- request;
    entry.batch <- [];
    entry.commit_votes <- Quorum.empty;
    entry.executed <- false
  end;
  entry.commit_votes <- Quorum.add entry.commit_votes voter;
  entry

let note_entry_b r ~counter ~requests ~voter =
  let entry, fresh = Slot_ring.bind r.log (Int64.to_int counter) in
  if fresh then begin
    entry.request <- no_request;
    entry.batch <- requests;
    entry.commit_votes <- Quorum.empty;
    entry.executed <- false
  end;
  entry.commit_votes <- Quorum.add entry.commit_votes voter;
  entry

let send_own_commit r ~view ~request ~(primary_cert : Trinc.attestation) =
  let digest = Types.request_digest request in
  match make_cert r digest with
  | Error _ -> ()
  | Ok cert ->
    ignore (note_entry r ~counter:primary_cert.Trinc.current ~request ~voter:r.id);
    broadcast r ~to_:(active_others r) (Commit { view; request; primary_cert; cert });
    try_execute r

let send_own_commit_b r ~view ~requests ~(primary_cert : Trinc.attestation) =
  let digest = Types.batch_digest requests in
  match make_cert r digest with
  | Error _ -> ()
  | Ok cert ->
    ignore (note_entry_b r ~counter:primary_cert.Trinc.current ~requests ~voter:r.id);
    broadcast r ~to_:(active_others r) (Commit_b { view; requests; primary_cert; cert });
    try_execute r

let order_request r (request : Types.request) =
  let digest = Types.request_digest request in
  if not (Digest_map.mem r.ordered digest) then
    match make_cert r digest with
    | Error _ -> ()
    | Ok cert ->
      Digest_map.set r.ordered digest 0;
      ignore (note_entry r ~counter:cert.Trinc.current ~request ~voter:r.id);
      broadcast r ~to_:(active_others r) (Prepare { view = r.view; request; cert });
      try_execute r

(* Batched ordering: one TrInc attestation covers the whole list (the
   counter advances once per batch), one Prepare_b flight per active
   peer. [Batcher.seal] callers never hand over an empty or
   already-ordered list (the [on_request] dedup guard). *)
let order_batch r (requests : Types.request list) =
  if requests <> [] then
    match make_cert r (Types.batch_digest requests) with
    | Error _ -> ()
    | Ok cert ->
      List.iter
        (fun (req : Types.request) -> Digest_map.set r.ordered (Types.request_digest req) 0)
        requests;
      ignore (note_entry_b r ~counter:cert.Trinc.current ~requests ~voter:r.id);
      broadcast r ~to_:(active_others r) (Prepare_b { view = r.view; requests; cert });
      try_execute r

(* Actives ship attested state to the passive set periodically; one sender
   (the primary) suffices in the fault-free case. *)
let ship_updates r =
  if is_primary r && (not r.transitioned) && Int64.compare r.last_exec_counter r.last_shipped > 0
  then begin
    r.last_shipped <- r.last_exec_counter;
    let rid_table = rid_table_list r in
    let passive = passive_ids r in
    for i = 0 to Array.length passive - 1 do
      send r ~dst:passive.(i)
        (Update { view = r.view; upto = r.last_exec_counter; state = App.state r.app; rid_table })
    done
  end

let adopt_new_view r ~view ~base ~state ~rid_table =
  (match r.batcher with Some b -> Batcher.clear b | None -> ());
  (match r.cp with
  | Some cp ->
    cancel_recover_timer r;
    Checkpoint.rebase cp ~seq:(Int64.to_int base)
  | None -> ());
  r.view <- view;
  r.vc_voted <- max r.vc_voted view;
  r.transitioned <- true;
  r.is_active <- true;
  Slot_ring.reset r.log;
  Digest_map.reset r.ordered;
  App.set_state r.app state;
  r.last_exec_counter <- base;
  rid_reset r;
  List.iter
    (fun (client, (rid, result)) ->
      let c = rid_slot r client in
      r.rid_last.(c) <- rid;
      r.rid_result.(c) <- result)
    rid_table;
  Digest_map.iter (fun _ h -> Engine.cancel r.engine h) r.timers;
  Digest_map.reset r.timers;
  Array.fill r.baseline_pending 0 (Array.length r.baseline_pending) true;
  Hashtbl.iter (fun digest _ -> start_vc_timer r digest) r.pending

let become_primary r ~view =
  let rid_table = rid_table_list r in
  let state = App.state r.app in
  let base = fst (Resoc_hw.Register.read (Trinc.counter_register r.trinc)) in
  adopt_new_view r ~view ~base ~state ~rid_table;
  broadcast r ~to_:r.all_others (New_view { view; base; state; rid_table });
  let pending = Hashtbl.fold (fun _ req acc -> req :: acc) r.pending [] in
  let pending =
    List.sort
      (fun (a : Types.request) b ->
        compare (a.Types.client, a.Types.rid) (b.Types.client, b.Types.rid))
      pending
  in
  List.iter (order_request r) pending

let on_activate r ~src ~new_view =
  if new_view > r.view then begin
    let voters =
      Quorum.Rounds.note r.vc_rounds ~current:r.view ~view:new_view ~voter:src ~value:0
    in
    if voters >= r.f + 1 then begin
      if r.vc_voted < new_view then begin
        r.vc_voted <- new_view;
        broadcast r ~to_:r.all_ids (Activate { new_view })
      end;
      if primary_of ~view:new_view ~n:r.n = r.id then begin
        r.stats.Stats.view_changes <- r.stats.Stats.view_changes + 1;
        become_primary r ~view:new_view
      end
    end
  end

(* A client re-asking for an already-executed request means it could not
   assemble an f+1 reply quorum — with only f+1 executing replicas, that is
   evidence one of them is lying (CheapBFT's PANIC case). *)
let note_repeat r ~client ~rid =
  let key = (client, rid) in
  let n = 1 + (match Hashtbl.find_opt r.repeat_counts key with Some n -> n | None -> 0) in
  Hashtbl.replace r.repeat_counts key n;
  if n >= 3 && not r.transitioned then begin
    let new_view = r.view + 1 in
    if new_view > r.vc_voted then begin
      r.vc_voted <- new_view;
      broadcast r ~to_:r.all_ids (Activate { new_view })
    end
  end

let on_request r (request : Types.request) =
  let digest = Types.request_digest request in
  let client = request.Types.client in
  let c = rid_slot r client in
  if r.rid_last.(c) <> min_int && request.Types.rid <= r.rid_last.(c) then begin
    note_repeat r ~client ~rid:request.Types.rid;
    reply_to_client r request r.rid_result.(c)
  end
  else begin
    let was_pending = Hashtbl.mem r.pending digest in
    Hashtbl.replace r.pending digest request;
    (* Every replica — the primary included — watches the request: in the
       all-active configuration a single silent active denies the quorum,
       and someone must call for the transition. *)
    start_vc_timer r digest;
    if is_primary r && r.is_active then (
      match r.batcher with
      | Some b ->
        (* Retransmissions of a request already buffered (still pending)
           or already ordered must not enter a second batch. *)
        if not (was_pending || Digest_map.mem r.ordered digest) then Batcher.add b request
      | None -> order_request r request)
    else send r ~dst:(primary_of ~view:r.view ~n:r.n) (Request request)
  end

let on_prepare r ~src ~view ~request ~(cert : Trinc.attestation) =
  if view = r.view && r.is_active && src = primary_of ~view ~n:r.n
     && cert.Trinc.signer = src
  then begin
    let digest = Types.request_digest request in
    if verify_cert r ~digest cert && continuity_ok r ~signer:src ~counter:cert.Trinc.current
    then begin
      Hashtbl.replace r.pending digest request;
      ignore (note_entry r ~counter:cert.Trinc.current ~request ~voter:src);
      send_own_commit r ~view ~request ~primary_cert:cert
    end
    else if Hashtbl.mem r.pending digest then start_vc_timer r digest
  end

let on_prepare_b r ~src ~view ~requests ~(cert : Trinc.attestation) =
  if view = r.view && r.is_active && src = primary_of ~view ~n:r.n
     && cert.Trinc.signer = src && requests <> []
  then begin
    let digest = Types.batch_digest requests in
    if verify_cert r ~digest cert && continuity_ok r ~signer:src ~counter:cert.Trinc.current
    then begin
      List.iter
        (fun (req : Types.request) -> Hashtbl.replace r.pending (Types.request_digest req) req)
        requests;
      ignore (note_entry_b r ~counter:cert.Trinc.current ~requests ~voter:src);
      send_own_commit_b r ~view ~requests ~primary_cert:cert
    end
    else
      List.iter
        (fun (req : Types.request) ->
          let d = Types.request_digest req in
          if Hashtbl.mem r.pending d then start_vc_timer r d)
        requests
  end

let on_commit r ~src ~view ~request ~(primary_cert : Trinc.attestation)
    ~(cert : Trinc.attestation) =
  if view = r.view && r.is_active && cert.Trinc.signer = src
     && primary_cert.Trinc.signer = primary_of ~view ~n:r.n
  then begin
    let digest = Types.request_digest request in
    if verify_cert r ~digest primary_cert && verify_cert r ~digest cert
       && continuity_ok r ~signer:src ~counter:cert.Trinc.current
    then begin
      ignore
        (note_entry r ~counter:primary_cert.Trinc.current ~request
           ~voter:primary_cert.Trinc.signer);
      ignore (note_entry r ~counter:primary_cert.Trinc.current ~request ~voter:src);
      try_execute r
    end
  end

let on_commit_b r ~src ~view ~requests ~(primary_cert : Trinc.attestation)
    ~(cert : Trinc.attestation) =
  if view = r.view && r.is_active && cert.Trinc.signer = src
     && primary_cert.Trinc.signer = primary_of ~view ~n:r.n
     && requests <> []
  then begin
    let digest = Types.batch_digest requests in
    if verify_cert r ~digest primary_cert && verify_cert r ~digest cert
       && continuity_ok r ~signer:src ~counter:cert.Trinc.current
    then begin
      ignore
        (note_entry_b r ~counter:primary_cert.Trinc.current ~requests
           ~voter:primary_cert.Trinc.signer);
      ignore (note_entry_b r ~counter:primary_cert.Trinc.current ~requests ~voter:src);
      try_execute r
    end
  end

let on_update r ~view ~upto ~state ~rid_table =
  if (not r.is_active) && view >= r.view && Int64.compare upto r.last_exec_counter > 0 then begin
    r.last_exec_counter <- upto;
    App.set_state r.app state;
    rid_reset r;
    List.iter
      (fun (client, (rid, result)) ->
        let c = rid_slot r client in
        r.rid_last.(c) <- rid;
        r.rid_result.(c) <- result)
      rid_table;
    (* Requests the actives already served are no longer pending here. *)
    let served (req : Types.request) =
      let c = req.Types.client in
      c < Array.length r.rid_last && r.rid_last.(c) <> min_int && req.Types.rid <= r.rid_last.(c)
    in
    let stale =
      Hashtbl.fold (fun digest req acc -> if served req then digest :: acc else acc) r.pending []
    in
    List.iter
      (fun digest ->
        Hashtbl.remove r.pending digest;
        cancel_request_timer r digest)
      stale
  end

let on_new_view r ~src ~view ~base ~state ~rid_table =
  if view > r.view && src = primary_of ~view ~n:r.n then
    adopt_new_view r ~view ~base ~state ~rid_table

let handle (r : replica) ~src msg =
  let now = Engine.now r.engine in
  if r.online && not (Behavior.is_crashed r.behavior ~now) then
    match msg with
    | Request request -> on_request r request
    | Prepare { view; request; cert } -> on_prepare r ~src ~view ~request ~cert
    | Prepare_b { view; requests; cert } -> on_prepare_b r ~src ~view ~requests ~cert
    | Commit { view; request; primary_cert; cert } ->
      on_commit r ~src ~view ~request ~primary_cert ~cert
    | Commit_b { view; requests; primary_cert; cert } ->
      on_commit_b r ~src ~view ~requests ~primary_cert ~cert
    | Update { view; upto; state; rid_table } -> on_update r ~view ~upto ~state ~rid_table
    | Activate { new_view } -> on_activate r ~src ~new_view
    | New_view { view; base; state; rid_table } -> on_new_view r ~src ~view ~base ~state ~rid_table
    | Reply _ -> ()
    | Checkpoint_vote { seq; digest } -> on_checkpoint_vote r ~src ~seq ~digest
    | Fetch_state { have } -> on_fetch_state r ~src ~have
    | State_chunk chunk -> on_state_chunk r ~src chunk

let make_replica engine fabric config keychain stats ~id ~behavior ~chk =
  let n = n_replicas config in
  let f = config.f in
  {
    id;
    n;
    f;
    engine;
    fabric;
    config;
    behavior;
    app = App.accumulator ();
    trinc =
      Trinc.create ~id ~key:(Keychain.component keychain id) ~protection:config.trinc_protection;
    keychain;
    stats;
    view = 0;
    is_active = id <= config.f;
    transitioned = false;
    last_exec_counter = 0L;
    log = Slot_ring.create ~capacity:(2 * log_retention) ~fresh:fresh_entry;
    ordered = Digest_map.create ~capacity:64 ();
    pending = Hashtbl.create 16;
    rid_last = Array.make (n + config.n_clients) min_int;
    rid_result = Array.make (n + config.n_clients) 0L;
    timers = Digest_map.create ~capacity:16 ();
    mono = Monotonic.create ();
    baseline_pending = Array.make n false;
    vc_rounds = Quorum.Rounds.create ~n ();
    vc_voted = 0;
    gap_drops = 0;
    last_shipped = 0L;
    repeat_counts = Hashtbl.create 8;
    all_ids = Array.init n Fun.id;
    all_others = Array.init (n - 1) (fun i -> if i < id then i else i + 1);
    initial_active_others =
      (let act = List.filter (fun i -> i <> id) (List.init (f + 1) Fun.id) in
       Array.of_list act);
    initial_passive = Array.init (n - f - 1) (fun i -> f + 1 + i);
    mcast = (if config.multicast then fabric.Transport.multicast else None);
    chk;
    online = true;
    cp =
      (match config.checkpoint with
      | Some c -> Some (Checkpoint.create c ~obs:(Engine.obs engine) ~quorum:(config.f + 1))
      | None -> None);
    recover_timer = None;
    batcher = None;
  }

(* Built after the replica record so the pipeline gate can read the live
   sequencing state: the TrInc counter is the sequence number here, so
   in-flight instances = attested counter − execution frontier, and no
   attestation may step past the checkpoint high watermark. *)
let attach_batcher engine (r : replica) =
  match r.config.batching with
  | Some b when Batcher.active b ->
    let attested () = Int64.to_int (fst (Register.read (Trinc.counter_register r.trinc))) in
    let ready () =
      let a = attested () in
      a - Int64.to_int r.last_exec_counter < b.Types.pipeline_depth
      &&
      match r.cp with
      | Some cp when not !Checkpoint.test_ignore_watermarks -> a + 1 <= Checkpoint.high cp
      | Some _ | None -> true
    in
    let occupancy () = attested () - Int64.to_int r.last_exec_counter in
    r.batcher <-
      Some (Batcher.create ~engine ~cfg:b ~seal:(fun reqs -> order_batch r reqs) ~ready ~occupancy)
  | Some _ | None -> ()

let start engine fabric config ?behaviors () =
  let n = n_replicas config in
  Quorum.check_n n "Cheapbft.start";
  let chk = if !Check.enabled then Check.new_session ~protocol:"cheapbft" else -1 in
  let behaviors =
    match behaviors with
    | Some b ->
      if Array.length b <> n then invalid_arg "Cheapbft.start: behaviors must cover every replica";
      b
    | None -> Array.make n Behavior.honest
  in
  if fabric.Transport.n_endpoints < n + config.n_clients then
    invalid_arg "Cheapbft.start: fabric too small";
  let keychain = Keychain.create ~master:config.keychain_master ~n in
  let stats = Stats.create () in
  let replicas =
    Array.init n (fun id ->
        make_replica engine fabric config keychain stats ~id ~behavior:behaviors.(id) ~chk)
  in
  Array.iter
    (fun r ->
      attach_batcher engine r;
      fabric.Transport.set_handler r.id (fun ~src msg -> handle r ~src msg);
      Engine.every engine ~period:config.update_period (fun () -> ship_updates r))
    replicas;
  let clients =
    Array.init config.n_clients (fun i ->
        Client.create engine fabric ~id:(n + i) ~n_replicas:n ~quorum:(config.f + 1)
          ~retry_timeout:config.request_timeout ~stats
          ~to_msg:(fun request -> Request request)
          ~of_msg:(function Reply reply -> Some reply | _ -> None)
          ())
  in
  { engine; config; replicas; clients; shared_stats = stats; keychain }

let submit t ~client ~payload =
  if client < 0 || client >= Array.length t.clients then
    invalid_arg "Cheapbft.submit: unknown client";
  Client.submit t.clients.(client) ~payload

let stats t = t.shared_stats

let view t ~replica = t.replicas.(replica).view
let replica_state t ~replica = App.state t.replicas.(replica).app
let active t ~replica = t.replicas.(replica).is_active
let transitioned t = Array.exists (fun r -> r.transitioned) t.replicas
let trinc t ~replica = t.replicas.(replica).trinc

let replica_online t ~replica = t.replicas.(replica).online

let set_offline t ~replica =
  let r = t.replicas.(replica) in
  if r.online then begin
    r.online <- false;
    (match r.batcher with Some b -> Batcher.clear b | None -> ());
    cancel_recover_timer r;
    Digest_map.iter (fun _ h -> Engine.cancel t.engine h) r.timers;
    Digest_map.reset r.timers
  end

(* Legacy model: free state copy from the most advanced online peer. *)
let legacy_rejoin t (r : replica) =
  let best = ref None in
  Array.iter
    (fun (peer : replica) ->
      if peer.id <> r.id && peer.online then
        match !best with
        | Some (b : replica) when Int64.compare b.last_exec_counter peer.last_exec_counter >= 0 ->
          ()
        | Some _ | None -> best := Some peer)
    t.replicas;
  match !best with
  | Some peer ->
    r.view <- peer.view;
    r.vc_voted <- max r.vc_voted peer.view;
    r.transitioned <- peer.transitioned;
    r.is_active <- (if peer.transitioned then true else r.id <= r.f);
    r.last_exec_counter <- peer.last_exec_counter;
    App.set_state r.app (App.state peer.app);
    rid_reset r;
    for c = 0 to Array.length peer.rid_last - 1 do
      if peer.rid_last.(c) <> min_int then begin
        let i = rid_slot r c in
        r.rid_last.(i) <- peer.rid_last.(c);
        r.rid_result.(i) <- peer.rid_result.(c)
      end
    done;
    Slot_ring.reset r.log;
    Digest_map.reset r.ordered;
    Hashtbl.reset r.pending;
    Array.fill r.baseline_pending 0 (Array.length r.baseline_pending) true
  | None -> ()

let set_online t ~replica =
  let r = t.replicas.(replica) in
  if not r.online then begin
    r.online <- true;
    match r.cp with
    | Some cp ->
      (* Rejuvenation wiped the replica's untrusted state (the TrInc
         counter is hardware and persists): rejoin by certified
         transfer instead of a free peer copy. *)
      r.view <- 0;
      r.vc_voted <- 0;
      r.transitioned <- false;
      r.is_active <- r.id <= r.f;
      r.last_exec_counter <- 0L;
      r.last_shipped <- 0L;
      App.set_state r.app 0L;
      rid_reset r;
      Slot_ring.reset r.log;
      Digest_map.reset r.ordered;
      Hashtbl.reset r.pending;
      Hashtbl.reset r.repeat_counts;
      Array.fill r.baseline_pending 0 (Array.length r.baseline_pending) true;
      Checkpoint.reset cp;
      start_recovery r cp
    | None -> legacy_rejoin t r
  end
