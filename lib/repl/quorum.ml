(* Dense quorum tracking for the replication hot path.

   A vote set over replica ids 0..62 is one immutable int bitset: adding
   a vote is [lor], membership is a shift, and the 2f+1 / f+1 threshold
   test is a popcount comparison. Compared to the per-entry
   [(int, unit) Hashtbl.t] this replaces, a quorum costs zero allocation
   and no hashing — the whole tracker lives in one mutable record field
   of a pooled log entry.

   [Rounds] layers view-change tallies on top: a small slot table keyed
   by view, each slot holding one bitset plus an optional per-voter int
   payload (PBFT carries [last_exec] in view-change votes and takes the
   max over voters). Slots whose view the replica has moved past are
   reclaimed lazily, so steady state never allocates. *)

type t = int

let max_voters = 63

let empty = 0

let add t voter = t lor (1 lsl voter)

let mem t voter = (t lsr voter) land 1 = 1

(* Kernighan popcount: one iteration per set bit. Quorums are tiny
   (n <= 63, typically 3-13 voters), so this beats a SWAR sequence that
   cannot use full 64-bit masks on 63-bit ints anyway. *)
let count t =
  let x = ref t in
  let c = ref 0 in
  while !x <> 0 do
    x := !x land (!x - 1);
    incr c
  done;
  !c

(* Test-only mutation knob: a positive slack makes every threshold test
   accept that many fewer voters (e.g. f+1 where 2f+1 is required). The
   checker self-tests use it to prove resoc_check catches broken quorums;
   it must stay 0 everywhere else. *)
let test_quorum_slack = ref 0

let reached t ~threshold = count t >= threshold - !test_quorum_slack

let check_n n label = if n < 0 || n > max_voters then invalid_arg (label ^ ": need 0 <= n <= 63")

module Rounds = struct
  type round = {
    mutable view : int;  (* -1 = free slot *)
    mutable votes : int;  (* bitset of voters *)
    values : int array;  (* per-voter payload, valid where the bit is set *)
  }

  type t = { n : int; mutable rounds : round array }

  let make_round n = { view = -1; votes = empty; values = Array.make n 0 }

  let create ~n ?(rounds = 4) () =
    check_n n "Quorum.Rounds.create";
    { n; rounds = Array.init (max 1 rounds) (fun _ -> make_round n) }

  let reset t =
    Array.iter
      (fun r ->
        r.view <- -1;
        r.votes <- empty)
      t.rounds

  (* Find the slot tracking [view], claiming a free or stale one
     (stale = a view the replica has already reached) if absent. Grows
     when many future views are tallied concurrently — effectively never
     in steady state. *)
  let round_for t ~current ~view =
    let len = Array.length t.rounds in
    let found = ref None in
    let claimable = ref None in
    for i = 0 to len - 1 do
      let r = t.rounds.(i) in
      if r.view = view then found := Some r
      else if !claimable = None && (r.view = -1 || r.view <= current) then claimable := Some r
    done;
    match !found with
    | Some r -> r
    | None -> (
      match !claimable with
      | Some r ->
        r.view <- view;
        r.votes <- empty;
        r
      | None ->
        let grown = Array.init (2 * len) (fun i -> if i < len then t.rounds.(i) else make_round t.n) in
        t.rounds <- grown;
        let r = grown.(len) in
        r.view <- view;
        r.votes <- empty;
        r)

  (* Record [voter]'s vote for [view] carrying [value]; a repeat vote
     updates the payload without changing the count (Hashtbl.replace
     semantics). Returns the voter count for [view]. *)
  let note t ~current ~view ~voter ~value =
    let r = round_for t ~current ~view in
    r.votes <- add r.votes voter;
    r.values.(voter) <- value;
    count r.votes

  let max_value t ~view ~default =
    let best = ref default in
    Array.iter
      (fun r ->
        if r.view = view then
          for voter = 0 to t.n - 1 do
            if mem r.votes voter && r.values.(voter) > !best then best := r.values.(voter)
          done)
      t.rounds;
    !best
end
