module Engine = Resoc_des.Engine
module Hash = Resoc_crypto.Hash
module Behavior = Resoc_fault.Behavior
module Check = Resoc_check.Check

type msg =
  | Request of Types.request
  | Accept of { term : int; seq : int; request : Types.request }
  | Accept_b of { term : int; seq : int; requests : Types.request list }
  | Accepted of { term : int; seq : int }
  | Commit of { term : int; seq : int }
  | Reply of Types.reply
  | Term_change of { new_term : int; last_exec : int }
  | New_term of { term : int; start_seq : int; state : int64; rid_table : (int * (int * int64)) list }
  | Checkpoint_vote of { seq : int; digest : Hash.t }
  | Fetch_state of { have : int }
  | State_chunk of Checkpoint.chunk

type config = {
  f : int;
  n_clients : int;
  request_timeout : int;
  election_timeout : int;
  checkpoint : Checkpoint.config option;
  multicast : bool;
  batching : Types.batching option;
}

let default_config =
  {
    f = 1;
    n_clients = 2;
    request_timeout = 4000;
    election_timeout = 2500;
    checkpoint = None;
    multicast = false;
    batching = None;
  }

let n_replicas config = (2 * config.f) + 1

(* Pooled in the slot ring and reset in place per sequence number; the
   ack set is a quorum bitset, so an entry costs no allocation after the
   ring warms up. *)
type entry = {
  mutable request : Types.request;
  mutable batch : Types.request list;  (* non-empty iff the slot agreed a batch *)
  mutable acks : Quorum.t;
  mutable committed : bool;
  mutable executed : bool;
}

let no_request : Types.request = { Types.client = -1; rid = -1; payload = 0L }

let fresh_entry _ =
  { request = no_request; batch = []; acks = Quorum.empty; committed = false; executed = false }

type replica = {
  id : int;
  n : int;
  f : int;
  engine : Engine.t;
  fabric : msg Transport.fabric;
  config : config;
  behavior : Behavior.t;
  app : App.t;
  stats : Stats.t;
  mutable online : bool;
  mutable term : int;
  mutable next_seq : int;
  mutable last_exec : int;
  log : entry Slot_ring.t;
  ordered : int Digest_map.t;
  pending : (Hash.t, Types.request) Hashtbl.t;
  mutable rid_last : int array;  (* client -> last rid, min_int = none *)
  mutable rid_result : int64 array;
  timers : Engine.handle Digest_map.t;
  election_rounds : Quorum.Rounds.t;  (* term -> voter -> last_exec *)
  mutable voted : int;
  all_ids : int array;
  peer_ids : int array;
  mcast : (src:int -> dsts:int array -> n:int -> msg -> unit) option;
      (* fabric multicast, resolved once; None = per-destination sends *)
  chk : int;  (* resoc_check session, -1 when checking is off *)
  cp : Checkpoint.t option;  (* checkpoint certificates, None = legacy *)
  mutable recover_timer : Engine.handle option;
  mutable batcher : Batcher.t option;  (* leader-side batching, None = legacy *)
}

type t = {
  engine : Engine.t;
  config : config;
  replicas : replica array;
  clients : msg Client.t array;
  shared_stats : Stats.t;
}

let message_name = function
  | Request _ -> "request"
  | Accept _ -> "accept"
  | Accept_b _ -> "accept-batch"
  | Accepted _ -> "accepted"
  | Commit _ -> "commit"
  | Reply _ -> "reply"
  | Term_change _ -> "term-change"
  | New_term _ -> "new-term"
  | Checkpoint_vote _ -> "checkpoint-vote"
  | Fetch_state _ -> "fetch-state"
  | State_chunk _ -> "state-chunk"

(* Forward bound for overflow pruning on the legacy path: anything this far
   past the execution frontier is an outlier that will never execute. *)
let prune_margin = 1 lsl 15

let leader_of ~term ~n = term mod n

let is_leader (r : replica) = leader_of ~term:r.term ~n:r.n = r.id

(* Crash faults only: Byzantine strategies other than Silent degrade to
   honest behaviour here (the protocol has no notion of them), except
   Corrupt_execution which corrupts replies — unchecked by crash clients,
   the vulnerability E4 makes visible. *)
let send (r : replica) ~dst msg =
  let now = Engine.now r.engine in
  if r.online && not (Behavior.is_crashed r.behavior ~now) then
    match Behavior.active_strategy r.behavior ~now with
    | Some Behavior.Silent -> ()
    | Some (Behavior.Delay d) ->
      ignore
        (Engine.schedule r.engine ~delay:d (fun () -> r.fabric.Transport.send ~src:r.id ~dst msg))
    | Some Behavior.Equivocate | Some Behavior.Corrupt_execution | None ->
      r.fabric.Transport.send ~src:r.id ~dst msg

(* Fan-outs take the fabric's tree multicast when the replica was built
   with one: a single behaviour gate, then one injection that forks in
   the network instead of [Array.length to_] unicasts. *)
let broadcast r ~to_ msg =
  match r.mcast with
  | Some mc ->
    let now = Engine.now r.engine in
    if r.online && not (Behavior.is_crashed r.behavior ~now) then (
      match Behavior.active_strategy r.behavior ~now with
      | Some Behavior.Silent -> ()
      | Some (Behavior.Delay d) ->
        ignore
          (Engine.schedule r.engine ~delay:d (fun () ->
               mc ~src:r.id ~dsts:to_ ~n:(Array.length to_) msg))
      | Some Behavior.Equivocate | Some Behavior.Corrupt_execution | None ->
        mc ~src:r.id ~dsts:to_ ~n:(Array.length to_) msg)
  | None ->
    for i = 0 to Array.length to_ - 1 do
      send r ~dst:(Array.unsafe_get to_ i) msg
    done

let cancel_request_timer r digest =
  let i = Digest_map.index r.timers digest in
  if i >= 0 then begin
    Engine.cancel r.engine (Digest_map.value_at r.timers i);
    Digest_map.remove_at r.timers i
  end

let start_election_timer r digest =
  if not (Digest_map.mem r.timers digest) then
    Digest_map.set r.timers digest
      (Engine.schedule r.engine ~delay:r.config.election_timeout (fun () ->
           Digest_map.remove r.timers digest;
           if r.online && Hashtbl.mem r.pending digest then begin
             (* Escalate past terms whose leader never answered. *)
             let new_term = max r.term r.voted + 1 in
             r.voted <- new_term;
             broadcast r ~to_:r.all_ids (Term_change { new_term; last_exec = r.last_exec })
           end))

let rid_slot r client =
  let len = Array.length r.rid_last in
  if client >= len then begin
    let ncap = ref (max 8 (2 * len)) in
    while client >= !ncap do
      ncap := 2 * !ncap
    done;
    let nlast = Array.make !ncap min_int in
    Array.blit r.rid_last 0 nlast 0 len;
    let nresult = Array.make !ncap 0L in
    Array.blit r.rid_result 0 nresult 0 len;
    r.rid_last <- nlast;
    r.rid_result <- nresult
  end;
  client

let rid_reset r = Array.fill r.rid_last 0 (Array.length r.rid_last) min_int

let reply_to_client r (request : Types.request) result =
  let corrupt =
    match Behavior.active_strategy r.behavior ~now:(Engine.now r.engine) with
    | Some Behavior.Corrupt_execution -> true
    | Some _ | None -> false
  in
  let result = if corrupt then Int64.logxor result 0xBADBADL else result in
  send r ~dst:request.Types.client
    (Reply { Types.client = request.Types.client; rid = request.Types.rid; result; replica = r.id })

let log_retention = 256

(* One agreed slot carries one request or (batching on) a whole batch;
   agreement keys on one digest either way. *)
let entry_digest (e : entry) =
  if e.batch != [] then Types.batch_digest e.batch else Types.request_digest e.request

(* Execute one request of an agreed slot: reply-cache dedup, execute,
   retire the pending entry and its election timer, answer the client. *)
let exec_one r (request : Types.request) =
  let client = request.Types.client and rid = request.Types.rid in
  let c = rid_slot r client in
  let result =
    if r.rid_last.(c) <> min_int && rid <= r.rid_last.(c) then r.rid_result.(c)
    else begin
      let result = App.execute r.app request.Types.payload in
      r.rid_last.(c) <- rid;
      r.rid_result.(c) <- result;
      result
    end
  in
  let digest = Types.request_digest request in
  Hashtbl.remove r.pending digest;
  cancel_request_timer r digest;
  reply_to_client r request result

let rec try_execute r =
  let next = r.last_exec + 1 in
  let gate_ok =
    match r.cp with
    | Some cp when not !Checkpoint.test_ignore_watermarks -> next <= Checkpoint.high cp
    | Some _ | None -> true
  in
  let slot = Slot_ring.slot r.log next in
  if gate_ok && slot >= 0 then begin
    let e = Slot_ring.entry r.log slot in
    if e.committed && not e.executed then begin
      e.executed <- true;
      r.last_exec <- next;
      (match r.cp with
      | Some cp when r.chk >= 0 ->
        Check.exec_window ~session:r.chk ~replica:r.id ~seq:next ~low:(Checkpoint.low cp)
          ~high:(Checkpoint.high cp)
          ~faulty:(Behavior.is_faulty r.behavior)
      | Some _ | None -> ());
      if r.chk >= 0 then begin
        (* [-1] signers: followers apply leader decisions without a local
           certificate; the leader's quorum is checked in [on_accepted]. *)
        Check.commit ~session:r.chk ~replica:r.id ~view:r.term ~seq:r.last_exec
          ~digest:(entry_digest e) ~signers:(-1) ~quorum:(r.f + 1)
          ~faulty:(Behavior.is_faulty r.behavior);
        if e.batch != [] then begin
          let len = List.length e.batch in
          List.iteri
            (fun pos (req : Types.request) ->
              Check.batch_commit ~session:r.chk ~replica:r.id ~view:r.term ~seq:next ~pos ~len
                ~client:req.Types.client ~rid:req.Types.rid
                ~faulty:(Behavior.is_faulty r.behavior))
            e.batch
        end
      end;
      if e.batch != [] then List.iter (exec_one r) e.batch else exec_one r e.request;
      (match r.batcher with Some b -> Batcher.kick b | None -> ());
      (match r.cp with
      | None ->
        Slot_ring.release r.log (r.last_exec - log_retention);
        Slot_ring.prune_outside r.log ~low:(r.last_exec - log_retention)
          ~high:(r.last_exec + prune_margin)
      | Some cp -> (
        match
          Checkpoint.note_exec cp ~seq:next ~state:(App.state r.app) ~rid_last:r.rid_last
            ~rid_result:r.rid_result
        with
        | None -> ()
        | Some d ->
          broadcast r ~to_:r.peer_ids (Checkpoint_vote { seq = next; digest = d });
          on_cp_advance r cp (Checkpoint.note_vote cp ~seq:next ~digest:d ~voter:r.id)));
      try_execute r
    end
  end

(* A new stable checkpoint: truncate the log below the low watermark and
   retry execution in case the high watermark was the only obstacle. *)
and on_cp_advance r cp prev =
  if prev >= 0 then begin
    let lo = Checkpoint.low cp in
    for seq = prev + 1 to lo do
      Slot_ring.release r.log seq
    done;
    Slot_ring.prune_outside r.log ~low:(lo + 1) ~high:(Checkpoint.high cp + prune_margin);
    r.stats.Stats.checkpoints <- r.stats.Stats.checkpoints + 1;
    try_execute r
  end

let cancel_recover_timer r =
  match r.recover_timer with
  | Some h ->
    Engine.cancel r.engine h;
    r.recover_timer <- None
  | None -> ()

(* Fetch the latest certified checkpoint from the peers, re-asking on a
   request-timeout cadence until a transfer installs. *)
let start_recovery (r : replica) cp =
  Checkpoint.begin_recovery cp ~now:(Engine.now r.engine);
  let rec arm () =
    cancel_recover_timer r;
    r.recover_timer <-
      Some
        (Engine.schedule r.engine ~delay:r.config.request_timeout (fun () ->
             r.recover_timer <- None;
             if r.online && Checkpoint.recovering cp then begin
               broadcast r ~to_:r.peer_ids (Fetch_state { have = Checkpoint.low cp });
               arm ()
             end))
  in
  broadcast r ~to_:r.peer_ids (Fetch_state { have = Checkpoint.low cp });
  arm ()

let maybe_catchup r cp =
  if Checkpoint.needs_catchup cp && not (Checkpoint.recovering cp) then start_recovery r cp

(* The executed log suffix strictly above [from], ascending and gapless;
   stops early at the first missing or unexecuted slot. *)
let log_suffix (r : replica) ~from =
  let acc = ref [] in
  let seq = ref (from + 1) in
  let continue = ref true in
  while !continue && !seq <= r.last_exec do
    let slot = Slot_ring.slot r.log !seq in
    if slot >= 0 then begin
      let e = Slot_ring.entry r.log slot in
      if e.executed && (e.request != no_request || e.batch != []) then begin
        acc := (!seq, if e.batch != [] then e.batch else [ e.request ]) :: !acc;
        incr seq
      end
      else continue := false
    end
    else continue := false
  done;
  List.rev !acc

let on_fetch_state r ~src ~have =
  match r.cp with
  | None -> ()
  | Some cp -> (
    match
      Checkpoint.serve cp ~view:r.term ~have ~suffix:(log_suffix r ~from:(Checkpoint.low cp))
    with
    | Some chunks -> List.iter (fun c -> send r ~dst:src (State_chunk c)) chunks
    | None -> ())

let on_checkpoint_vote r ~src ~seq ~digest =
  match r.cp with
  | None -> ()
  | Some cp ->
    let prev = Checkpoint.note_vote cp ~seq ~digest ~voter:src in
    on_cp_advance r cp prev;
    maybe_catchup r cp

(* Install a completed, verified transfer: adopt the certified state and
   reply cache, replay the log suffix (no client replies -- the group
   already answered), and rejoin execution at the tip. *)
let install_transfer (r : replica) cp (c : Checkpoint.completion) =
  cancel_recover_timer r;
  let prev_low = Checkpoint.low cp in
  r.term <- max r.term c.Checkpoint.c_view;
  r.voted <- max r.voted r.term;
  App.set_state r.app c.Checkpoint.c_state;
  rid_reset r;
  List.iter
    (fun (client, rid, result) ->
      let i = rid_slot r client in
      r.rid_last.(i) <- rid;
      r.rid_result.(i) <- result)
    c.Checkpoint.c_rids;
  r.last_exec <- c.Checkpoint.c_cert.Checkpoint.cp_seq;
  Checkpoint.install cp c;
  List.iter
    (fun (seq, reqs) ->
      List.iter
        (fun (req : Types.request) ->
          let i = rid_slot r req.Types.client in
          if not (r.rid_last.(i) <> min_int && req.Types.rid <= r.rid_last.(i)) then begin
            let result = App.execute r.app req.Types.payload in
            r.rid_last.(i) <- req.Types.rid;
            r.rid_result.(i) <- result
          end)
        reqs;
      r.last_exec <- seq)
    c.Checkpoint.c_suffix;
  r.next_seq <- max r.next_seq (r.last_exec + 1);
  for s = prev_low + 1 to r.last_exec do
    Slot_ring.release r.log s
  done;
  Slot_ring.prune_outside r.log ~low:(Checkpoint.low cp + 1)
    ~high:(Checkpoint.high cp + prune_margin);
  r.stats.Stats.state_transfers <- r.stats.Stats.state_transfers + 1;
  r.stats.Stats.transfer_bytes <- r.stats.Stats.transfer_bytes + c.Checkpoint.c_bytes;
  r.stats.Stats.transfer_cycles <- r.stats.Stats.transfer_cycles + c.Checkpoint.c_elapsed;
  try_execute r

let on_state_chunk r ~src chunk =
  match r.cp with
  | None -> ()
  | Some cp -> (
    match Checkpoint.feed cp ~src ~now:(Engine.now r.engine) chunk with
    | None -> ()
    | Some c ->
      if r.chk >= 0 then
        Check.transfer_applied ~session:r.chk ~replica:r.id
          ~seq:c.Checkpoint.c_cert.Checkpoint.cp_seq
          ~claimed:c.Checkpoint.c_cert.Checkpoint.cp_digest ~actual:c.Checkpoint.c_actual
          ~faulty:(Behavior.is_faulty r.behavior);
      if
        (c.Checkpoint.c_valid || !Checkpoint.test_unverified_transfer)
        && c.Checkpoint.c_cert.Checkpoint.cp_seq > r.last_exec
      then install_transfer r cp c)

let order_request r (request : Types.request) =
  let digest = Types.request_digest request in
  if not (Digest_map.mem r.ordered digest) then begin
    let seq = r.next_seq in
    r.next_seq <- r.next_seq + 1;
    Digest_map.set r.ordered digest seq;
    let e, fresh = Slot_ring.bind r.log seq in
    if fresh then begin
      e.request <- request;
      e.acks <- Quorum.empty;
      e.committed <- false;
      e.executed <- false
    end;
    e.acks <- Quorum.add e.acks r.id;
    broadcast r ~to_:r.peer_ids (Accept { term = r.term; seq; request })
  end

(* Batched ordering: the whole list shares one slot, one Accept_b flight
   per follower, one ack round. [Batcher.seal] callers never hand over an
   empty or already-ordered list (the [on_request] dedup guard). *)
let order_batch r (requests : Types.request list) =
  if requests <> [] then begin
    let seq = r.next_seq in
    r.next_seq <- r.next_seq + 1;
    List.iter
      (fun (req : Types.request) -> Digest_map.set r.ordered (Types.request_digest req) seq)
      requests;
    let e, fresh = Slot_ring.bind r.log seq in
    if fresh then begin
      e.request <- no_request;
      e.batch <- requests;
      e.acks <- Quorum.empty;
      e.committed <- false;
      e.executed <- false
    end
    else e.batch <- requests;
    e.acks <- Quorum.add e.acks r.id;
    broadcast r ~to_:r.peer_ids (Accept_b { term = r.term; seq; requests })
  end

let adopt_new_term r ~term ~start_seq ~state ~rid_table =
  (match r.batcher with Some b -> Batcher.clear b | None -> ());
  (match r.cp with
  | Some cp ->
    cancel_recover_timer r;
    Checkpoint.rebase cp ~seq:(start_seq - 1)
  | None -> ());
  r.term <- term;
  r.voted <- max r.voted term;
  Slot_ring.reset r.log;
  Digest_map.reset r.ordered;
  App.set_state r.app state;
  r.last_exec <- start_seq - 1;
  r.next_seq <- start_seq;
  rid_reset r;
  List.iter
    (fun (client, (rid, result)) ->
      let c = rid_slot r client in
      r.rid_last.(c) <- rid;
      r.rid_result.(c) <- result)
    rid_table;
  Digest_map.iter (fun _ h -> Engine.cancel r.engine h) r.timers;
  Digest_map.reset r.timers;
  Hashtbl.iter (fun digest _ -> start_election_timer r digest) r.pending

let rid_table_list r =
  let acc = ref [] in
  for c = Array.length r.rid_last - 1 downto 0 do
    if r.rid_last.(c) <> min_int then acc := (c, (r.rid_last.(c), r.rid_result.(c))) :: !acc
  done;
  !acc

let become_leader r ~term ~start_seq =
  let rid_table = rid_table_list r in
  let state = App.state r.app in
  adopt_new_term r ~term ~start_seq ~state ~rid_table;
  broadcast r ~to_:r.peer_ids (New_term { term; start_seq; state; rid_table });
  let pending = Hashtbl.fold (fun _ req acc -> req :: acc) r.pending [] in
  let pending =
    List.sort
      (fun (a : Types.request) b ->
        compare (a.Types.client, a.Types.rid) (b.Types.client, b.Types.rid))
      pending
  in
  List.iter (order_request r) pending

let on_term_change r ~src ~new_term ~last_exec =
  if new_term > r.term then begin
    let voters =
      Quorum.Rounds.note r.election_rounds ~current:r.term ~view:new_term ~voter:src
        ~value:last_exec
    in
    if voters >= 1 && r.voted < new_term then begin
      (* Crash model: one timeout report is credible; join immediately. *)
      r.voted <- new_term;
      broadcast r ~to_:r.all_ids (Term_change { new_term; last_exec = r.last_exec })
    end;
    if voters >= r.f + 1 && leader_of ~term:new_term ~n:r.n = r.id then begin
      let max_exec = Quorum.Rounds.max_value r.election_rounds ~view:new_term ~default:r.last_exec in
      r.stats.Stats.view_changes <- r.stats.Stats.view_changes + 1;
      become_leader r ~term:new_term ~start_seq:(max_exec + 1)
    end
  end

let on_request r (request : Types.request) =
  let digest = Types.request_digest request in
  let client = request.Types.client in
  let c = rid_slot r client in
  if r.rid_last.(c) <> min_int && request.Types.rid <= r.rid_last.(c) then
    reply_to_client r request r.rid_result.(c)
  else begin
    let was_pending = Hashtbl.mem r.pending digest in
    Hashtbl.replace r.pending digest request;
    if is_leader r then (
      match r.batcher with
      | Some b ->
        (* Retransmissions of a request already buffered (still pending)
           or already ordered must not enter a second batch. *)
        if not (was_pending || Digest_map.mem r.ordered digest) then Batcher.add b request
      | None -> order_request r request)
    else begin
      send r ~dst:(leader_of ~term:r.term ~n:r.n) (Request request);
      start_election_timer r digest
    end
  end

let on_accept r ~src ~term ~seq ~request =
  if term = r.term && src = leader_of ~term ~n:r.n && not (is_leader r) then begin
    Hashtbl.replace r.pending (Types.request_digest request) request;
    let e, fresh = Slot_ring.bind r.log seq in
    if fresh then begin
      e.request <- request;
      e.acks <- Quorum.empty;
      e.committed <- false;
      e.executed <- false
    end;
    send r ~dst:src (Accepted { term; seq })
  end

let on_accept_b r ~src ~term ~seq ~requests =
  if term = r.term && src = leader_of ~term ~n:r.n && (not (is_leader r)) && requests <> [] then begin
    List.iter
      (fun (req : Types.request) -> Hashtbl.replace r.pending (Types.request_digest req) req)
      requests;
    let e, fresh = Slot_ring.bind r.log seq in
    if fresh then begin
      e.request <- no_request;
      e.batch <- requests;
      e.acks <- Quorum.empty;
      e.committed <- false;
      e.executed <- false
    end;
    send r ~dst:src (Accepted { term; seq })
  end

let on_accepted r ~src ~term ~seq =
  if term = r.term && is_leader r then begin
    let slot = Slot_ring.slot r.log seq in
    if slot >= 0 then begin
      let e = Slot_ring.entry r.log slot in
      if not e.committed then begin
        e.acks <- Quorum.add e.acks src;
        if Quorum.reached e.acks ~threshold:(r.f + 1) then begin
          e.committed <- true;
          if r.chk >= 0 then
            Check.commit ~session:r.chk ~replica:r.id ~view:r.term ~seq ~digest:(entry_digest e)
              ~signers:(Quorum.count e.acks)
              ~quorum:(r.f + 1)
              ~faulty:(Behavior.is_faulty r.behavior);
          broadcast r ~to_:r.peer_ids (Commit { term; seq });
          try_execute r
        end
      end
    end
  end

let on_commit r ~src ~term ~seq =
  if term = r.term && src = leader_of ~term ~n:r.n then begin
    let slot = Slot_ring.slot r.log seq in
    if slot >= 0 then begin
      (Slot_ring.entry r.log slot).committed <- true;
      try_execute r
    end
  end

let on_new_term r ~src ~term ~start_seq ~state ~rid_table =
  if term > r.term && src = leader_of ~term ~n:r.n then
    adopt_new_term r ~term ~start_seq ~state ~rid_table

let handle (r : replica) ~src msg =
  let now = Engine.now r.engine in
  if r.online && not (Behavior.is_crashed r.behavior ~now) then
    match msg with
    | Request request -> on_request r request
    | Accept { term; seq; request } -> on_accept r ~src ~term ~seq ~request
    | Accept_b { term; seq; requests } -> on_accept_b r ~src ~term ~seq ~requests
    | Accepted { term; seq } -> on_accepted r ~src ~term ~seq
    | Commit { term; seq } -> on_commit r ~src ~term ~seq
    | Term_change { new_term; last_exec } -> on_term_change r ~src ~new_term ~last_exec
    | New_term { term; start_seq; state; rid_table } ->
      on_new_term r ~src ~term ~start_seq ~state ~rid_table
    | Reply _ -> ()
    | Checkpoint_vote { seq; digest } -> on_checkpoint_vote r ~src ~seq ~digest
    | Fetch_state { have } -> on_fetch_state r ~src ~have
    | State_chunk chunk -> on_state_chunk r ~src chunk

let make_replica engine fabric config stats ~id ~behavior ~chk =
  let n = n_replicas config in
  {
    id;
    n;
    f = config.f;
    engine;
    fabric;
    config;
    behavior;
    app = App.accumulator ();
    stats;
    online = true;
    term = 0;
    next_seq = 1;
    last_exec = 0;
    log = Slot_ring.create ~capacity:(2 * log_retention) ~fresh:fresh_entry;
    ordered = Digest_map.create ~capacity:64 ();
    pending = Hashtbl.create 16;
    rid_last = Array.make (n + config.n_clients) min_int;
    rid_result = Array.make (n + config.n_clients) 0L;
    timers = Digest_map.create ~capacity:16 ();
    election_rounds = Quorum.Rounds.create ~n ();
    voted = 0;
    all_ids = Array.init n Fun.id;
    peer_ids = Array.init (n - 1) (fun i -> if i < id then i else i + 1);
    mcast = (if config.multicast then fabric.Transport.multicast else None);
    chk;
    cp =
      (match config.checkpoint with
      | Some c -> Some (Checkpoint.create c ~obs:(Engine.obs engine) ~quorum:(config.f + 1))
      | None -> None);
    recover_timer = None;
    batcher = None;
  }

(* Built after the replica record so the pipeline gate can read the live
   sequencing state: at most [pipeline_depth] agreement instances between
   the next proposal and the execution frontier, and never a proposal
   past the checkpoint high watermark. *)
let attach_batcher engine (r : replica) =
  match r.config.batching with
  | Some b when Batcher.active b ->
    let ready () =
      r.next_seq - r.last_exec - 1 < b.Types.pipeline_depth
      &&
      match r.cp with
      | Some cp when not !Checkpoint.test_ignore_watermarks -> r.next_seq <= Checkpoint.high cp
      | Some _ | None -> true
    in
    let occupancy () = r.next_seq - r.last_exec - 1 in
    r.batcher <-
      Some (Batcher.create ~engine ~cfg:b ~seal:(fun reqs -> order_batch r reqs) ~ready ~occupancy)
  | Some _ | None -> ()

let start engine fabric config ?behaviors () =
  let n = n_replicas config in
  Quorum.check_n n "Paxos.start";
  let chk = if !Check.enabled then Check.new_session ~protocol:"paxos" else -1 in
  let behaviors =
    match behaviors with
    | Some b ->
      if Array.length b <> n then invalid_arg "Paxos.start: behaviors must cover every replica";
      b
    | None -> Array.make n Behavior.honest
  in
  if fabric.Transport.n_endpoints < n + config.n_clients then
    invalid_arg "Paxos.start: fabric too small";
  let stats = Stats.create () in
  let replicas =
    Array.init n (fun id -> make_replica engine fabric config stats ~id ~behavior:behaviors.(id) ~chk)
  in
  Array.iter
    (fun r ->
      attach_batcher engine r;
      fabric.Transport.set_handler r.id (fun ~src msg -> handle r ~src msg))
    replicas;
  let clients =
    Array.init config.n_clients (fun i ->
        Client.create engine fabric ~id:(n + i) ~n_replicas:n ~quorum:1
          ~retry_timeout:config.request_timeout ~stats
          ~to_msg:(fun request -> Request request)
          ~of_msg:(function Reply reply -> Some reply | _ -> None)
          ())
  in
  { engine; config; replicas; clients; shared_stats = stats }

let submit t ~client ~payload =
  if client < 0 || client >= Array.length t.clients then invalid_arg "Paxos.submit: unknown client";
  Client.submit t.clients.(client) ~payload

let stats t = t.shared_stats

let term t ~replica = t.replicas.(replica).term

let replica_state t ~replica = App.state t.replicas.(replica).app

let set_replica_state t ~replica state = App.set_state t.replicas.(replica).app state

let replica_online t ~replica = t.replicas.(replica).online

let set_offline t ~replica =
  let r = t.replicas.(replica) in
  r.online <- false;
  (match r.batcher with Some b -> Batcher.clear b | None -> ());
  cancel_recover_timer r;
  Digest_map.iter (fun _ h -> Engine.cancel r.engine h) r.timers;
  Digest_map.reset r.timers

(* Legacy model: free state copy from the most advanced online peer. *)
let legacy_rejoin t (r : replica) =
  begin
    let best = ref None in
    Array.iter
      (fun peer ->
        if peer.id <> r.id && peer.online then
          match !best with
          | Some b when b.last_exec >= peer.last_exec -> ()
          | Some _ | None -> best := Some peer)
      t.replicas;
    match !best with
    | Some peer ->
      r.term <- peer.term;
      r.voted <- max r.voted peer.term;
      r.last_exec <- peer.last_exec;
      r.next_seq <- peer.last_exec + 1;
      App.set_state r.app (App.state peer.app);
      rid_reset r;
      for c = 0 to Array.length peer.rid_last - 1 do
        if peer.rid_last.(c) <> min_int then begin
          let i = rid_slot r c in
          r.rid_last.(i) <- peer.rid_last.(c);
          r.rid_result.(i) <- peer.rid_result.(c)
        end
      done;
      Slot_ring.reset r.log;
      Digest_map.reset r.ordered;
      Hashtbl.reset r.pending
    | None -> ()
  end

let set_online t ~replica =
  let r = t.replicas.(replica) in
  if not r.online then begin
    r.online <- true;
    match r.cp with
    | Some cp ->
      (* Rejuvenation wiped the replica: rejoin by certified transfer
         instead of a free peer copy. *)
      r.term <- 0;
      r.voted <- 0;
      r.last_exec <- 0;
      r.next_seq <- 1;
      App.set_state r.app 0L;
      rid_reset r;
      Slot_ring.reset r.log;
      Digest_map.reset r.ordered;
      Hashtbl.reset r.pending;
      Checkpoint.reset cp;
      start_recovery r cp
    | None -> legacy_rejoin t r
  end
