module Engine = Resoc_des.Engine
module Hash = Resoc_crypto.Hash
module Behavior = Resoc_fault.Behavior

type msg =
  | Request of Types.request
  | Accept of { term : int; seq : int; request : Types.request }
  | Accepted of { term : int; seq : int }
  | Commit of { term : int; seq : int }
  | Reply of Types.reply
  | Term_change of { new_term : int; last_exec : int }
  | New_term of { term : int; start_seq : int; state : int64; rid_table : (int * (int * int64)) list }

type config = { f : int; n_clients : int; request_timeout : int; election_timeout : int }

let default_config = { f = 1; n_clients = 2; request_timeout = 4000; election_timeout = 2500 }

let n_replicas config = (2 * config.f) + 1

type entry = {
  request : Types.request;
  acks : (int, unit) Hashtbl.t;
  mutable committed : bool;
  mutable executed : bool;
}

type replica = {
  id : int;
  n : int;
  f : int;
  engine : Engine.t;
  fabric : msg Transport.fabric;
  config : config;
  behavior : Behavior.t;
  app : App.t;
  stats : Stats.t;
  mutable online : bool;
  mutable term : int;
  mutable next_seq : int;
  mutable last_exec : int;
  log : (int, entry) Hashtbl.t;
  ordered : (Hash.t, unit) Hashtbl.t;
  pending : (Hash.t, Types.request) Hashtbl.t;
  rid_table : (int, int * int64) Hashtbl.t;
  timers : (Hash.t, Engine.handle) Hashtbl.t;
  election_votes : (int, (int, int) Hashtbl.t) Hashtbl.t;
  mutable voted : int;
}

type t = {
  engine : Engine.t;
  config : config;
  replicas : replica array;
  clients : msg Client.t array;
  shared_stats : Stats.t;
}

let message_name = function
  | Request _ -> "request"
  | Accept _ -> "accept"
  | Accepted _ -> "accepted"
  | Commit _ -> "commit"
  | Reply _ -> "reply"
  | Term_change _ -> "term-change"
  | New_term _ -> "new-term"

let leader_of ~term ~n = term mod n

let is_leader (r : replica) = leader_of ~term:r.term ~n:r.n = r.id

let replica_ids (r : replica) = List.init r.n Fun.id

let others r = List.filter (fun i -> i <> r.id) (replica_ids r)

(* Crash faults only: Byzantine strategies other than Silent degrade to
   honest behaviour here (the protocol has no notion of them), except
   Corrupt_execution which corrupts replies — unchecked by crash clients,
   the vulnerability E4 makes visible. *)
let send (r : replica) ~dst msg =
  let now = Engine.now r.engine in
  if r.online && not (Behavior.is_crashed r.behavior ~now) then
    match Behavior.active_strategy r.behavior ~now with
    | Some Behavior.Silent -> ()
    | Some (Behavior.Delay d) ->
      ignore
        (Engine.schedule r.engine ~delay:d (fun () -> r.fabric.Transport.send ~src:r.id ~dst msg))
    | Some Behavior.Equivocate | Some Behavior.Corrupt_execution | None ->
      r.fabric.Transport.send ~src:r.id ~dst msg

let broadcast r ~to_ msg = List.iter (fun dst -> send r ~dst msg) to_

let cancel_request_timer r digest =
  match Hashtbl.find_opt r.timers digest with
  | Some h ->
    Engine.cancel r.engine h;
    Hashtbl.remove r.timers digest
  | None -> ()

let start_election_timer r digest =
  if not (Hashtbl.mem r.timers digest) then
    Hashtbl.replace r.timers digest
      (Engine.schedule r.engine ~delay:r.config.election_timeout (fun () ->
           Hashtbl.remove r.timers digest;
           if r.online && Hashtbl.mem r.pending digest then begin
             (* Escalate past terms whose leader never answered. *)
             let new_term = max r.term r.voted + 1 in
             r.voted <- new_term;
             broadcast r ~to_:(replica_ids r) (Term_change { new_term; last_exec = r.last_exec })
           end))

let reply_to_client r (request : Types.request) result =
  let corrupt =
    match Behavior.active_strategy r.behavior ~now:(Engine.now r.engine) with
    | Some Behavior.Corrupt_execution -> true
    | Some _ | None -> false
  in
  let result = if corrupt then Int64.logxor result 0xBADBADL else result in
  send r ~dst:request.Types.client
    (Reply { Types.client = request.Types.client; rid = request.Types.rid; result; replica = r.id })

let log_retention = 256

let rec try_execute r =
  match Hashtbl.find_opt r.log (r.last_exec + 1) with
  | Some ({ committed = true; executed = false; _ } as e) ->
    e.executed <- true;
    r.last_exec <- r.last_exec + 1;
    let request = e.request in
    let client = request.Types.client and rid = request.Types.rid in
    let result =
      match Hashtbl.find_opt r.rid_table client with
      | Some (last_rid, cached) when rid <= last_rid -> cached
      | Some _ | None ->
        let result = App.execute r.app request.Types.payload in
        Hashtbl.replace r.rid_table client (rid, result);
        result
    in
    let digest = Types.request_digest request in
    Hashtbl.remove r.pending digest;
    cancel_request_timer r digest;
    reply_to_client r request result;
    Hashtbl.remove r.log (r.last_exec - log_retention);
    try_execute r
  | Some _ | None -> ()

let order_request r (request : Types.request) =
  let digest = Types.request_digest request in
  if not (Hashtbl.mem r.ordered digest) then begin
    let seq = r.next_seq in
    r.next_seq <- r.next_seq + 1;
    Hashtbl.replace r.ordered digest ();
    let e = { request; acks = Hashtbl.create 4; committed = false; executed = false } in
    Hashtbl.replace r.log seq e;
    Hashtbl.replace e.acks r.id ();
    broadcast r ~to_:(others r) (Accept { term = r.term; seq; request })
  end

let adopt_new_term r ~term ~start_seq ~state ~rid_table =
  r.term <- term;
  r.voted <- max r.voted term;
  Hashtbl.reset r.log;
  Hashtbl.reset r.ordered;
  App.set_state r.app state;
  r.last_exec <- start_seq - 1;
  r.next_seq <- start_seq;
  Hashtbl.reset r.rid_table;
  List.iter (fun (client, entry) -> Hashtbl.replace r.rid_table client entry) rid_table;
  Hashtbl.iter (fun _ h -> Engine.cancel r.engine h) r.timers;
  Hashtbl.reset r.timers;
  Hashtbl.iter (fun digest _ -> start_election_timer r digest) r.pending

let become_leader r ~term ~start_seq =
  let rid_table = Hashtbl.fold (fun c e acc -> (c, e) :: acc) r.rid_table [] in
  let state = App.state r.app in
  adopt_new_term r ~term ~start_seq ~state ~rid_table;
  broadcast r ~to_:(others r) (New_term { term; start_seq; state; rid_table });
  let pending = Hashtbl.fold (fun _ req acc -> req :: acc) r.pending [] in
  let pending =
    List.sort
      (fun (a : Types.request) b ->
        compare (a.Types.client, a.Types.rid) (b.Types.client, b.Types.rid))
      pending
  in
  List.iter (order_request r) pending

let on_term_change r ~src ~new_term ~last_exec =
  if new_term > r.term then begin
    let votes =
      match Hashtbl.find_opt r.election_votes new_term with
      | Some v -> v
      | None ->
        let v = Hashtbl.create 4 in
        Hashtbl.replace r.election_votes new_term v;
        v
    in
    Hashtbl.replace votes src last_exec;
    let voters = Hashtbl.length votes in
    if voters >= 1 && r.voted < new_term then begin
      (* Crash model: one timeout report is credible; join immediately. *)
      r.voted <- new_term;
      broadcast r ~to_:(replica_ids r) (Term_change { new_term; last_exec = r.last_exec })
    end;
    if voters >= r.f + 1 && leader_of ~term:new_term ~n:r.n = r.id then begin
      let max_exec = Hashtbl.fold (fun _ le acc -> max le acc) votes r.last_exec in
      r.stats.Stats.view_changes <- r.stats.Stats.view_changes + 1;
      become_leader r ~term:new_term ~start_seq:(max_exec + 1)
    end
  end

let on_request r (request : Types.request) =
  let digest = Types.request_digest request in
  let client = request.Types.client in
  match Hashtbl.find_opt r.rid_table client with
  | Some (last_rid, cached) when request.Types.rid <= last_rid ->
    reply_to_client r request cached
  | Some _ | None ->
    Hashtbl.replace r.pending digest request;
    if is_leader r then order_request r request
    else begin
      send r ~dst:(leader_of ~term:r.term ~n:r.n) (Request request);
      start_election_timer r digest
    end

let on_accept r ~src ~term ~seq ~request =
  if term = r.term && src = leader_of ~term ~n:r.n && not (is_leader r) then begin
    Hashtbl.replace r.pending (Types.request_digest request) request;
    if not (Hashtbl.mem r.log seq) then
      Hashtbl.replace r.log seq
        { request; acks = Hashtbl.create 4; committed = false; executed = false };
    send r ~dst:src (Accepted { term; seq })
  end

let on_accepted r ~src ~term ~seq =
  if term = r.term && is_leader r then
    match Hashtbl.find_opt r.log seq with
    | Some e when not e.committed ->
      Hashtbl.replace e.acks src ();
      if Hashtbl.length e.acks >= r.f + 1 then begin
        e.committed <- true;
        broadcast r ~to_:(others r) (Commit { term; seq });
        try_execute r
      end
    | Some _ | None -> ()

let on_commit r ~src ~term ~seq =
  if term = r.term && src = leader_of ~term ~n:r.n then
    match Hashtbl.find_opt r.log seq with
    | Some e ->
      e.committed <- true;
      try_execute r
    | None -> ()

let on_new_term r ~src ~term ~start_seq ~state ~rid_table =
  if term > r.term && src = leader_of ~term ~n:r.n then
    adopt_new_term r ~term ~start_seq ~state ~rid_table

let handle (r : replica) ~src msg =
  let now = Engine.now r.engine in
  if r.online && not (Behavior.is_crashed r.behavior ~now) then
    match msg with
    | Request request -> on_request r request
    | Accept { term; seq; request } -> on_accept r ~src ~term ~seq ~request
    | Accepted { term; seq } -> on_accepted r ~src ~term ~seq
    | Commit { term; seq } -> on_commit r ~src ~term ~seq
    | Term_change { new_term; last_exec } -> on_term_change r ~src ~new_term ~last_exec
    | New_term { term; start_seq; state; rid_table } ->
      on_new_term r ~src ~term ~start_seq ~state ~rid_table
    | Reply _ -> ()

let make_replica engine fabric config stats ~id ~behavior =
  {
    id;
    n = n_replicas config;
    f = config.f;
    engine;
    fabric;
    config;
    behavior;
    app = App.accumulator ();
    stats;
    online = true;
    term = 0;
    next_seq = 1;
    last_exec = 0;
    log = Hashtbl.create 64;
    ordered = Hashtbl.create 64;
    pending = Hashtbl.create 16;
    rid_table = Hashtbl.create 8;
    timers = Hashtbl.create 16;
    election_votes = Hashtbl.create 4;
    voted = 0;
  }

let start engine fabric config ?behaviors () =
  let n = n_replicas config in
  let behaviors =
    match behaviors with
    | Some b ->
      if Array.length b <> n then invalid_arg "Paxos.start: behaviors must cover every replica";
      b
    | None -> Array.make n Behavior.honest
  in
  if fabric.Transport.n_endpoints < n + config.n_clients then
    invalid_arg "Paxos.start: fabric too small";
  let stats = Stats.create () in
  let replicas =
    Array.init n (fun id -> make_replica engine fabric config stats ~id ~behavior:behaviors.(id))
  in
  Array.iter
    (fun r -> fabric.Transport.set_handler r.id (fun ~src msg -> handle r ~src msg))
    replicas;
  let clients =
    Array.init config.n_clients (fun i ->
        Client.create engine fabric ~id:(n + i) ~n_replicas:n ~quorum:1
          ~retry_timeout:config.request_timeout ~stats
          ~to_msg:(fun request -> Request request)
          ~of_msg:(function Reply reply -> Some reply | _ -> None)
          ())
  in
  { engine; config; replicas; clients; shared_stats = stats }

let submit t ~client ~payload =
  if client < 0 || client >= Array.length t.clients then invalid_arg "Paxos.submit: unknown client";
  Client.submit t.clients.(client) ~payload

let stats t = t.shared_stats

let term t ~replica = t.replicas.(replica).term

let replica_state t ~replica = App.state t.replicas.(replica).app

let set_replica_state t ~replica state = App.set_state t.replicas.(replica).app state

let replica_online t ~replica = t.replicas.(replica).online

let set_offline t ~replica =
  let r = t.replicas.(replica) in
  r.online <- false;
  Hashtbl.iter (fun _ h -> Engine.cancel r.engine h) r.timers;
  Hashtbl.reset r.timers

let set_online t ~replica =
  let r = t.replicas.(replica) in
  if not r.online then begin
    r.online <- true;
    let best = ref None in
    Array.iter
      (fun peer ->
        if peer.id <> r.id && peer.online then
          match !best with
          | Some b when b.last_exec >= peer.last_exec -> ()
          | Some _ | None -> best := Some peer)
      t.replicas;
    match !best with
    | Some peer ->
      r.term <- peer.term;
      r.voted <- max r.voted peer.term;
      r.last_exec <- peer.last_exec;
      r.next_seq <- peer.last_exec + 1;
      App.set_state r.app (App.state peer.app);
      Hashtbl.reset r.rid_table;
      Hashtbl.iter (fun c e -> Hashtbl.replace r.rid_table c e) peer.rid_table;
      Hashtbl.reset r.log;
      Hashtbl.reset r.ordered;
      Hashtbl.reset r.pending
    | None -> ()
  end
