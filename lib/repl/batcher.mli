(** Shared primary-side request batching and agreement pipelining.

    One batcher instance lives on each replica of a protocol whose config
    carries an {e active} {!Types.batching} (window or batch size beyond
    the trivial 1-request/0-wait point); only the current primary/leader
    feeds it. Requests accumulate in arrival order until the window
    elapses or [max_batch] requests are buffered, then [seal] orders the
    batch as ONE agreement instance. Sealing is gated by [ready], the
    protocol's pipeline bound: at most [pipeline_depth] instances in
    flight, and never past the checkpoint high watermark. While the gate
    is closed the backlog parks here; the protocol calls {!kick} whenever
    execution progresses or the watermark advances.

    Instruments ("repl.batch_size", "repl.pipeline_occupancy") are
    creation-gated on [Obs.metrics_on], same discipline as everywhere
    else. *)

type t

val test_duplicate_first : bool ref
(** Mutation knob: duplicate the first request of every sealed batch into
    the next one, violating batch atomicity — proves the checker's
    invariant fires. Never set outside tests. *)

val active : Types.batching -> bool
(** [max_batch > 1 || window_cycles > 0]. An inactive config ("armed but
    unused", the determinism-gate probe) must not change behavior, so
    protocols skip creating a batcher for it. *)

val create :
  engine:Resoc_des.Engine.t ->
  cfg:Types.batching ->
  seal:(Types.request list -> unit) ->
  ready:(unit -> bool) ->
  occupancy:(unit -> int) ->
  t

val add : t -> Types.request -> unit
(** Buffer one request (callers dedup against already-ordered requests
    first); may seal immediately. *)

val kick : t -> unit
(** Retry sealing: call on execution progress / watermark advance. *)

val buffered : t -> int

val clear : t -> unit
(** Drop the buffer (view change or rejuvenation wipe). *)
