(** Vocabulary shared by all replication protocols.

    Endpoint numbering convention: replicas occupy ids [0 .. n-1] and
    clients [n .. n+c-1] on the same transport fabric. Channels are
    authenticated point-to-point (the transport reports true senders), the
    standard BFT assumption; only hybrid-issued certificates (USIG UIs) are
    carried explicitly because their verification is the object of study. *)

module Hash = Resoc_crypto.Hash

type request = { client : int; rid : int; payload : int64 }
(** [rid] is a client-local sequence number; (client, rid) identifies the
    request globally. *)

type reply = { client : int; rid : int; result : int64; replica : int }

val make_request : client:int -> rid:int -> payload:int64 -> request

val request_digest : request -> Hash.t

val request_equal : request -> request -> bool

type batching = { window_cycles : int; max_batch : int; pipeline_depth : int }
(** Shared batching/pipelining knob ([Batcher]): the primary buffers
    requests for up to [window_cycles] (0 = seal as soon as possible),
    seals at most [max_batch] per agreement instance, and keeps at most
    [pipeline_depth] instances in flight (further bounded by the
    checkpoint high watermark when checkpointing is on). A protocol
    config carries [batching : batching option]; [None] (every default)
    leaves the legacy one-request-per-instance path untouched. *)

val batch_digest : request list -> Hash.t
(** Digest covering an ordered batch of requests (order-sensitive fold);
    what batched agreement instances agree on. *)

val pp_request : Format.formatter -> request -> unit
val pp_reply : Format.formatter -> reply -> unit
