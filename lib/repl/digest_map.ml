(* Open-addressed hash map from 64-bit digests to arbitrary values.

   Replaces the [(Hash.t, _) Hashtbl.t] digest tables on the replication
   hot path ([ordered], [timers], request indexes). Digests are already
   avalanched (see Hash), so the bucket is just the low bits; collisions
   resolve by linear probing. Deletion uses tombstones; the table
   rebuilds when live entries or tombstones pass the load thresholds.

   Keys are stored as the boxed int64s the caller already holds, so a
   [set] is two pointer stores — no per-operation allocation after the
   value array exists. The value array is created lazily from the first
   inserted value (no dummy needed for abstract types like engine
   handles). *)

type 'a t = {
  mutable state : Bytes.t;  (* '\000' empty | '\001' full | '\002' tombstone *)
  mutable keys : int64 array;
  mutable vals : 'a array;  (* [||] until the first set *)
  mutable live : int;
  mutable used : int;  (* full + tombstone slots *)
}

let empty_slot = '\000'
let full_slot = '\001'
let tomb_slot = '\002'

let create ?(capacity = 16) () =
  let cap = ref 8 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  { state = Bytes.make !cap empty_slot; keys = Array.make !cap 0L; vals = [||]; live = 0; used = 0 }

let length t = t.live

let mask t = Bytes.length t.state - 1

(* Digests are uniformly mixed already; fold the high bits in once so
   truncated low bits cannot alias systematically. *)
let bucket t k = (Int64.to_int k lxor Int64.to_int (Int64.shift_right_logical k 32)) land mask t

(* Slot of [k] if present, else -1. *)
let index t k =
  let m = mask t in
  let rec probe i =
    match Bytes.unsafe_get t.state i with
    | c when c = empty_slot -> -1
    | c when c = full_slot && Int64.equal (Array.unsafe_get t.keys i) k -> i
    | _ -> probe ((i + 1) land m)
  in
  probe (bucket t k)

let mem t k = index t k >= 0

let value_at t i = Array.unsafe_get t.vals i

let remove_at t i =
  Bytes.unsafe_set t.state i tomb_slot;
  t.live <- t.live - 1

let remove t k =
  let i = index t k in
  if i >= 0 then remove_at t i

let get t k =
  let i = index t k in
  if i >= 0 then Some (value_at t i) else None

let iter f t =
  for i = 0 to Bytes.length t.state - 1 do
    if Bytes.unsafe_get t.state i = full_slot then f t.keys.(i) t.vals.(i)
  done

let fold f t acc =
  let acc = ref acc in
  for i = 0 to Bytes.length t.state - 1 do
    if Bytes.unsafe_get t.state i = full_slot then acc := f t.keys.(i) t.vals.(i) !acc
  done;
  !acc

let reset t =
  Bytes.fill t.state 0 (Bytes.length t.state) empty_slot;
  if Array.length t.vals > 0 then begin
    (* Drop value pointers so resets do not retain dead requests. *)
    let filler = t.vals.(0) in
    Array.fill t.vals 0 (Array.length t.vals) filler
  end;
  t.live <- 0;
  t.used <- 0

let rec rebuild t ~capacity =
  let old_state = t.state and old_keys = t.keys and old_vals = t.vals in
  t.state <- Bytes.make capacity empty_slot;
  t.keys <- Array.make capacity 0L;
  t.vals <- (if Array.length old_vals > 0 then Array.make capacity old_vals.(0) else [||]);
  t.live <- 0;
  t.used <- 0;
  for i = 0 to Bytes.length old_state - 1 do
    if Bytes.unsafe_get old_state i = full_slot then set t old_keys.(i) old_vals.(i)
  done

and set t k v =
  if Array.length t.vals = 0 then t.vals <- Array.make (Bytes.length t.state) v;
  let m = mask t in
  let rec probe i first_tomb =
    match Bytes.unsafe_get t.state i with
    | c when c = full_slot ->
      if Int64.equal (Array.unsafe_get t.keys i) k then Array.unsafe_set t.vals i v
      else probe ((i + 1) land m) first_tomb
    | c when c = tomb_slot -> probe ((i + 1) land m) (if first_tomb >= 0 then first_tomb else i)
    | _ (* empty *) ->
      let slot = if first_tomb >= 0 then first_tomb else i in
      if slot = i then t.used <- t.used + 1;
      Bytes.unsafe_set t.state slot full_slot;
      Array.unsafe_set t.keys slot k;
      Array.unsafe_set t.vals slot v;
      t.live <- t.live + 1
  in
  probe (bucket t k) (-1);
  (* Keep probes short: grow at 3/4 occupancy (counting tombstones);
     same-size rebuild just flushes tombstones. *)
  let cap = Bytes.length t.state in
  if 4 * t.used >= 3 * cap then
    rebuild t ~capacity:(if 2 * t.live >= cap then 2 * cap else cap)
