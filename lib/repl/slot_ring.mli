(** Fixed-capacity agreement log: pooled entry records in a ring indexed
    by [seq mod capacity]. Replaces the [(seq, entry) Hashtbl.t] of the
    replication protocols — lookup is a mask plus an int compare, and
    entry records are reused in place instead of reallocated per
    sequence number.

    The ring doubles automatically if two live sequence numbers ever
    collide on a slot, so capacity is a sizing hint, not a limit.
    Doubling is bounded: colliding outliers (e.g. SEU-corrupted
    sequence numbers far from the live window) land in a small dense
    overflow array instead of forcing the ring to span the gap. *)

type 'a t

val create : capacity:int -> fresh:(int -> 'a) -> 'a t
(** [create ~capacity ~fresh] rounds [capacity] up to a power of two
    (minimum 8) and fills every slot with [fresh i]. *)

val capacity : 'a t -> int

val slot : 'a t -> int -> int
(** [slot t seq] is the slot index bound to [seq], or [-1]. Indices are
    transient — any [bind] or [release] may invalidate them. Corrupted
    (even negative) sequence numbers are ordinary keys. *)

val mem : 'a t -> int -> bool

val entry : 'a t -> int -> 'a
(** The pooled record in a slot returned by {!slot} or {!bind}. *)

val bind : 'a t -> int -> 'a * bool
(** [bind t seq] claims the slot for [seq] and returns its pooled
    record. The flag is [true] when the slot was just bound — the
    caller must reset the record before use — and [false] when [seq]
    was already live in the ring. *)

val release : 'a t -> int -> unit
(** Unbind [seq] (retention); its record stays pooled for reuse. *)

val prune_outside : 'a t -> low:int -> high:int -> unit
(** Unbind every overflow entry whose seq lies outside [[low, high]].
    Overflow slots hold corrupt-seq outliers that no exact-seq
    {!release} will ever reach, so a moving retention window (or
    stable-checkpoint low watermark) must sweep them explicitly or
    they accumulate for the whole run. Ring slots are untouched: they
    are bounded and prune themselves through {!release}. *)

val reset : 'a t -> unit
(** Unbind every sequence number, keeping the pooled records. *)
