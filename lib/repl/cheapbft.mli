(** CheapBFT-style resource-efficient BFT (Kapitza et al., refs [40]/[59]).

    The third hybrid-anchored design point: in the fault-free case only
    **f+1 active** replicas execute requests (certified by TrInc trusted
    counters, {!Resoc_hybrid.Trinc}), while **f passive** replicas merely
    apply attested state updates — saving both execution and agreement
    cost. Any suspicion (a request timing out) triggers a *transition* that
    activates the passive replicas and continues as a full 2f+1 group with
    f+1 quorums (MinBFT-equivalent), evicting the primary if needed.

    Simplifications (documented in DESIGN.md): once transitioned, the group
    stays in the all-active configuration (no switch-back), and the
    transition reuses the same simplified state transfer as the other
    protocols. *)

module Hash = Resoc_crypto.Hash
module Behavior = Resoc_fault.Behavior
module Register = Resoc_hw.Register
module Trinc = Resoc_hybrid.Trinc

type msg =
  | Request of Types.request
  | Prepare of { view : int; request : Types.request; cert : Trinc.attestation }
  | Prepare_b of { view : int; requests : Types.request list; cert : Trinc.attestation }
      (** Batched ordering ([config.batching]): one attestation — and one
          TrInc counter step — covers the whole list; [cert] binds
          [Types.batch_digest requests]. *)
  | Commit of {
      view : int;
      request : Types.request;
      primary_cert : Trinc.attestation;
      cert : Trinc.attestation;
    }
  | Commit_b of {
      view : int;
      requests : Types.request list;
      primary_cert : Trinc.attestation;
      cert : Trinc.attestation;
    }
  | Update of { view : int; upto : int64; state : int64; rid_table : (int * (int * int64)) list }
      (** Attested state shipping to passive replicas. *)
  | Activate of { new_view : int }
      (** Transition vote: activate the passive set / rotate the primary. *)
  | New_view of { view : int; base : int64; state : int64; rid_table : (int * (int * int64)) list }
  | Reply of Types.reply
  | Checkpoint_vote of { seq : int; digest : Hash.t }
  | Fetch_state of { have : int }
  | State_chunk of Checkpoint.chunk

type config = {
  f : int;  (** The group has 2f+1 replicas, f+1 of them initially active. *)
  n_clients : int;
  request_timeout : int;
  vc_timeout : int;
  update_period : int;  (** How often actives ship state to passives. *)
  trinc_protection : Register.protection;
  keychain_master : int64;
  checkpoint : Checkpoint.config option;
      (** Certified checkpointing + state transfer among the {e active}
          replicas (f+1 matching votes — the executing set; passives
          neither vote nor serve). [None] (the default) keeps the legacy
          fixed-retention model, where rejuvenation is invisible to the
          protocol. *)
  multicast : bool;
      (** Route replica fan-outs through the fabric's multicast (one
          injection forking in the network) when it offers one; off
          (the default) = per-destination unicast. *)
  batching : Types.batching option;
      (** Primary-side request batching + agreement pipelining
          ({!Batcher}); [None] (the default) keeps the legacy
          one-instance-per-request path byte-identical. *)
}

val default_config : config

val n_replicas : config -> int
val n_active_initial : config -> int

type t

val start :
  Resoc_des.Engine.t -> msg Transport.fabric -> config -> ?behaviors:Behavior.t array ->
  unit -> t

val submit : t -> client:int -> payload:int64 -> unit
val stats : t -> Stats.t

val view : t -> replica:int -> int
val replica_state : t -> replica:int -> int64

val active : t -> replica:int -> bool
val transitioned : t -> bool
(** Whether the passive set has been activated. *)

val trinc : t -> replica:int -> Trinc.t

val replica_online : t -> replica:int -> bool

val set_offline : t -> replica:int -> unit
(** Tile powered down (e.g. for rejuvenation): drops all traffic. *)

val set_online : t -> replica:int -> unit
(** Rejoin after rejuvenation. With checkpointing enabled the replica
    restarts wiped (only its TrInc counter, being trusted hardware,
    survives) and fetches the latest certified checkpoint plus log
    suffix from the active replicas; without it, legacy behaviour: a
    free state copy from the most advanced online replica. *)

val message_name : msg -> string
