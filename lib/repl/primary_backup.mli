(** Passive (primary-backup) replication.

    The cheap end of §II.A's replication spectrum: one primary executes and
    answers immediately, shipping state updates to warm standbys; a
    heartbeat failure detector promotes the next backup when the primary
    dies. Recovery is *not* seamless — the detection window plus promotion
    delay is client-visible downtime, which E4 measures against the active
    protocols. Tolerates crash faults only. *)

module Behavior = Resoc_fault.Behavior

type msg =
  | Request of Types.request
  | Update of { epoch : int; seq : int; state : int64; client : int; rid : int; result : int64 }
  | Update_b of { epoch : int; seq : int; state : int64; replies : (int * int * int64) list }
      (** Batched shipping ([config.batching]): one update carries the
          post-batch state plus one (client, rid, result) reply per
          request, so backups rebuild the primary's reply cache. *)
  | Heartbeat of { epoch : int }
  | Promote of { epoch : int }
  | Reply of Types.reply
  | Checkpoint_vote of { seq : int; digest : Resoc_crypto.Hash.t }
  | Fetch_state of { have : int }
  | State_chunk of Checkpoint.chunk

type config = {
  n_backups : int;  (** Group size is 1 + n_backups. *)
  n_clients : int;
  request_timeout : int;
  heartbeat_period : int;
  detection_timeout : int;  (** Silence before declaring the primary dead. *)
  checkpoint : Checkpoint.config option;
      (** Certified checkpointing + state transfer. The quorum degenerates
          to 1 (the primary's own vote — in the crash-pair model the
          certificate proves durability, not honesty), and transfers carry
          no log suffix: updates already ship full state, so Meta +
          reply-cache chunks reconstruct a replica. [None] (the default)
          keeps the legacy model, where rejuvenation is invisible to the
          protocol. *)
  multicast : bool;
      (** Route peer fan-outs (updates, heartbeats, promotes, checkpoint
          votes) through the fabric's multicast when it offers one; off
          (the default) = per-destination unicast. *)
  batching : Types.batching option;
      (** Primary-side request batching ({!Batcher}); the primary still
          executes immediately at seal time (no agreement to pipeline —
          the gate is trivially open), so batching here amortizes Update
          traffic. [None] (the default) keeps the legacy
          one-update-per-request path byte-identical. *)
}

val default_config : config

val n_replicas : config -> int

type t

val start :
  Resoc_des.Engine.t ->
  msg Transport.fabric ->
  config ->
  ?behaviors:Behavior.t array ->
  unit ->
  t

val submit : t -> client:int -> payload:int64 -> unit

val stats : t -> Stats.t

val epoch : t -> replica:int -> int
(** Failover count as seen by a replica. *)

val current_primary : t -> int
(** Highest-epoch active primary (oracle view). *)

val replica_state : t -> replica:int -> int64

val set_replica_state : t -> replica:int -> int64 -> unit
(** Out-of-band state installation (epoch-based protocol switching). *)

val replica_online : t -> replica:int -> bool

val set_offline : t -> replica:int -> unit
(** Tile powered down (e.g. for rejuvenation): drops all traffic. *)

val set_online : t -> replica:int -> unit
(** Rejoin after rejuvenation. With checkpointing enabled the replica
    restarts wiped and fetches the latest certified checkpoint from the
    primary; without it, legacy behaviour: a free state copy from the
    most advanced online replica. *)

val message_name : msg -> string
