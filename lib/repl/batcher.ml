module Engine = Resoc_des.Engine
module Obs = Resoc_obs.Obs
module Registry = Resoc_obs.Registry

(* Mutation knob for the checker's batch-atomicity invariant: re-inject
   the first request of every sealed batch into the next one, so one
   request is agreed (and committed) in two distinct instances of the
   same view — exactly what the invariant forbids. Injected after the
   protocol's dedup filters (those act on [add]), so the duplicate
   provably reaches agreement. *)
let test_duplicate_first = ref false

let active (b : Types.batching) = b.Types.max_batch > 1 || b.Types.window_cycles > 0

type t = {
  engine : Engine.t;
  window : int;
  max_batch : int;
  seal : Types.request list -> unit;  (* order one batch, arrival order *)
  ready : unit -> bool;  (* pipeline gate: may another instance start? *)
  occupancy : unit -> int;  (* in-flight instances, for the histogram *)
  mutable buffer : Types.request list;  (* newest first *)
  mutable len : int;
  mutable flush_scheduled : bool;
  mutable carry : Types.request option;  (* knob: duplicate for next batch *)
  obs : Obs.t;
  obs_size : Registry.histogram;
  obs_occ : Registry.histogram;
}

let create ~engine ~(cfg : Types.batching) ~seal ~ready ~occupancy =
  let obs = Engine.obs engine in
  let obs_size, obs_occ =
    if !Obs.metrics_on then
      ( Registry.histogram obs.Obs.metrics "repl.batch_size" ~bounds:[| 1; 2; 4; 8; 16; 32 |],
        Registry.histogram obs.Obs.metrics "repl.pipeline_occupancy"
          ~bounds:[| 0; 1; 2; 4; 8; 16 |] )
    else (Registry.null_histogram, Registry.null_histogram)
  in
  {
    engine;
    window = cfg.Types.window_cycles;
    max_batch = cfg.Types.max_batch;
    seal;
    ready;
    occupancy;
    buffer = [];
    len = 0;
    flush_scheduled = false;
    carry = None;
    obs;
    obs_size;
    obs_occ;
  }

let buffered t = t.len

(* Take the oldest [n] buffered requests, arrival order. *)
let take t n =
  let rec split i acc rest =
    if i = 0 then (List.rev acc, rest)
    else match rest with x :: tl -> split (i - 1) (x :: acc) tl | [] -> (List.rev acc, [])
  in
  let batch, rest = split n [] (List.rev t.buffer) in
  t.buffer <- List.rev rest;
  t.len <- t.len - n;
  batch

(* Seal as many batches as the backlog and the pipeline gate allow. The
   gate is re-consulted per batch: each seal puts one more instance in
   flight, so a deep backlog drains in [pipeline_depth]-bounded steps as
   execution (or a checkpoint advance) kicks the batcher again. *)
let rec flush t =
  if t.len > 0 && t.ready () then begin
    let batch = take t (min t.len t.max_batch) in
    let fresh_first = match batch with q :: _ -> Some q | [] -> None in
    let batch = match t.carry with Some q -> q :: batch | None -> batch in
    t.carry <- (if !test_duplicate_first then fresh_first else None);
    if !Obs.metrics_on then begin
      Registry.observe t.obs.Obs.metrics t.obs_size (List.length batch);
      Registry.observe t.obs.Obs.metrics t.obs_occ (t.occupancy ())
    end;
    t.seal batch;
    flush t
  end

let add t req =
  t.buffer <- req :: t.buffer;
  t.len <- t.len + 1;
  if t.len >= t.max_batch || t.window = 0 then flush t
  else if not t.flush_scheduled then begin
    t.flush_scheduled <- true;
    ignore
      (Engine.schedule t.engine ~delay:t.window (fun () ->
           t.flush_scheduled <- false;
           flush t))
  end

let kick t = if t.len > 0 then flush t

let clear t =
  t.buffer <- [];
  t.len <- 0;
  t.carry <- None
