module Hash = Resoc_crypto.Hash

type request = { client : int; rid : int; payload : int64 }

type reply = { client : int; rid : int; result : int64; replica : int }

let make_request ~client ~rid ~payload = { client; rid; payload }

(* The tag hash is a constant; folding it at module init keeps
   [request_digest] — called several times per request across the
   replica group — down to two inlined combines. *)
let request_tag = Hash.of_string "request"

let request_digest r =
  Hash.combine_int (Hash.combine request_tag r.payload) ((r.client * 1_000_003) + r.rid)

let request_equal (a : request) (b : request) = a.client = b.client && a.rid = b.rid && Int64.equal a.payload b.payload

let pp_request ppf (r : request) = Format.fprintf ppf "req(c%d#%d:%Ld)" r.client r.rid r.payload

let pp_reply ppf r = Format.fprintf ppf "reply(c%d#%d=%Ld from r%d)" r.client r.rid r.result r.replica
