module Hash = Resoc_crypto.Hash

type request = { client : int; rid : int; payload : int64 }

type reply = { client : int; rid : int; result : int64; replica : int }

let make_request ~client ~rid ~payload = { client; rid; payload }

(* The tag hash is a constant; folding it at module init keeps
   [request_digest] — called several times per request across the
   replica group — down to two inlined combines. *)
let request_tag = Hash.of_string "request"

let request_digest r =
  Hash.combine_int (Hash.combine request_tag r.payload) ((r.client * 1_000_003) + r.rid)

let request_equal (a : request) (b : request) = a.client = b.client && a.rid = b.rid && Int64.equal a.payload b.payload

(* Config for the shared request-batching / agreement-pipelining layer
   (Batcher). [None] on a protocol config keeps the one-instance-per-request
   legacy path byte-identical; a config with [max_batch = 1] and
   [window_cycles = 0] is "armed but inactive" — threaded through every
   constructor yet ordering nothing differently (the determinism gate's
   probe). *)
type batching = { window_cycles : int; max_batch : int; pipeline_depth : int }

let batch_tag = Hash.of_string "batch"

(* One digest covers the whole batch, in order; agreement messages carry
   only this, so a batch of k requests still costs one Prepare/Commit
   exchange. Identical to the folding the hybrid protocols always used. *)
let batch_digest requests =
  List.fold_left (fun acc req -> Hash.combine acc (request_digest req)) batch_tag requests

let pp_request ppf (r : request) = Format.fprintf ppf "req(c%d#%d:%Ld)" r.client r.rid r.payload

let pp_reply ppf r = Format.fprintf ppf "reply(c%d#%d=%Ld from r%d)" r.client r.rid r.result r.replica
