(** Hybrid-anchored BFT-SMR, generic over the trusted certificate mechanism.

    MinBFT (USIG counters) and A2M-PBFT-EA-style replication (attested
    append-only logs) share their entire agreement structure: 2f+1 replicas,
    a primary that binds each request to the next value of a
    non-equivocatable sequence, commits carrying the committer's own
    certificate, execution on f+1 matching commit votes, and exact
    per-sender continuity checking. This functor captures that structure
    once; {!Minbft} and {!A2m_bft} instantiate it.

    See {!Minbft} for the protocol walk-through and the simplification
    notes (view change / state transfer, documented in DESIGN.md). *)

module Hash = Resoc_crypto.Hash
module Mac = Resoc_crypto.Mac
module Behavior = Resoc_fault.Behavior
module Register = Resoc_hw.Register

(** What the trusted component must provide. *)
module type HYBRID = sig
  type t
  (** A replica's trusted-component instance. *)

  type cert
  (** A certificate binding (signer, counter, digest). *)

  val protocol_name : string

  val make : id:int -> key:Mac.key -> protection:Register.protection -> t
  (** [protection] guards the hybrid's internal state where applicable
      (register-based hybrids); log-based hybrids may ignore it. *)

  val create_cert : t -> Hash.t -> (cert, string) result
  (** Bind the next counter value to a digest; [Error] on hybrid
      fail-stop. *)

  val verify_cert : key:Mac.key -> digest:Hash.t -> cert -> bool

  val cert_signer : cert -> int

  val cert_counter : cert -> int64
  (** Strictly increasing by one per [create_cert] on a healthy hybrid. *)

  val current_counter : t -> int64
end

(** The protocol interface every instance exposes. *)
module type S = sig
  type hybrid
  type cert

  type msg =
    | Request of Types.request
    | Prepare of { view : int; requests : Types.request list; cert : cert }
    | Commit of { view : int; requests : Types.request list; primary_cert : cert; cert : cert }
    | Reply of Types.reply
    | Req_view_change of { new_view : int }
    | New_view of {
        view : int;
        base : int64;
        state : int64;
        rid_table : (int * (int * int64)) list;
      }
    | Checkpoint_vote of { seq : int; digest : Resoc_crypto.Hash.t }
    | Fetch_state of { have : int }
    | State_chunk of Checkpoint.chunk

  type config = {
    f : int;  (** Tolerated faults; the group has 2f+1 replicas. *)
    n_clients : int;
    request_timeout : int;
    vc_timeout : int;
    usig_protection : Register.protection;
        (** Named for the flagship instance; guards whatever internal state
            the hybrid keeps. *)
    keychain_master : int64;
    batch_window : int;
        (** 0 (default): order each request immediately. Positive: the
            primary buffers requests for this many cycles (or until
            [max_batch]) and certifies the whole batch with ONE certificate
            — the standard BFT throughput lever (ablation A8). *)
    max_batch : int;
    checkpoint : Checkpoint.config option;
        (** Certified checkpointing + state transfer with an f+1 quorum
            (the hybrid prevents equivocation, so f+1 matching votes
            contain at least one from a correct replica — same argument
            that shrinks the commit quorum). [None] (the default) keeps
            the legacy fixed-retention / free-state-copy model. *)
    multicast : bool;
        (** Route replica fan-outs through the fabric's multicast (one
            injection forking in the network) when it offers one; off
            (the default) = per-destination unicast. *)
    batching : Types.batching option;
        (** The cross-protocol batching + pipelining config ({!Batcher}).
            When active it supersedes the legacy [batch_window]/[max_batch]
            fields and additionally bounds in-flight agreement instances by
            [pipeline_depth] and the checkpoint high watermark. [None]
            (the default) keeps the legacy behaviour byte-identical —
            including the A8 ablation's window sweep. *)
  }

  val default_config : config

  val n_replicas : config -> int

  type t

  val start :
    Resoc_des.Engine.t ->
    msg Transport.fabric ->
    config ->
    ?behaviors:Behavior.t array ->
    unit ->
    t

  val submit : t -> client:int -> payload:int64 -> unit
  val stats : t -> Stats.t
  val view : t -> replica:int -> int
  val replica_state : t -> replica:int -> int64

  val set_replica_state : t -> replica:int -> int64 -> unit
  (** Out-of-band state installation (epoch-based protocol switching). *)

  val hybrid : t -> replica:int -> hybrid
  (** The replica's trusted component, for fault campaigns / inspection. *)

  val cert_gap_drops : t -> int
  (** Messages rejected group-wide because a sender's certificate counter
      jumped — the observable symptom of a desynchronized hybrid. *)

  val replica_online : t -> replica:int -> bool
  val set_offline : t -> replica:int -> unit

  val set_online : t -> replica:int -> unit
  (** Rejoin after rejuvenation. With [config.checkpoint = Some _] the
      replica restarts wiped and fetches the latest certified checkpoint
      plus log suffix over the fabric; otherwise legacy behaviour: a free
      state copy from the most advanced online replica. *)

  val message_name : msg -> string
end

module Make (H : HYBRID) : S with type hybrid = H.t and type cert = H.cert
