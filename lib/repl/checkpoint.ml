module Hash = Resoc_crypto.Hash
module Obs = Resoc_obs.Obs
module Registry = Resoc_obs.Registry

type config = { interval : int; window : int; chunk : int }

let default_config = { interval = 128; window = 4; chunk = 8 }

type cert = { cp_seq : int; cp_digest : Hash.t; cp_signers : Quorum.t }

type chunk =
  | Meta of { cert : cert; state : int64; view : int; rid_parts : int; suffix_parts : int }
  | Rids of { part : int; entries : (int * int * int64) list }
  | Suffix of { part : int; entries : (int * Types.request list) list }

(* Nominal wire sizes: the certificate + state header is a small fixed
   record; reply-cache rows are (client, rid, result) triples; suffix
   entries pay a per-seq header plus each request's (client, rid,
   payload). These feed the fabric's [size_of], so transfer traffic
   contends with agreement traffic in the NoC latency model. *)
let chunk_bytes = function
  | Meta _ -> 56
  | Rids { entries; _ } -> 16 + (24 * List.length entries)
  | Suffix { entries; _ } ->
    16 + List.fold_left (fun acc (_, reqs) -> acc + 8 + (24 * List.length reqs)) 0 entries

type completion = {
  c_cert : cert;
  c_state : int64;
  c_rids : (int * int * int64) list;
  c_suffix : (int * Types.request list) list;
  c_view : int;
  c_bytes : int;
  c_chunks : int;
  c_elapsed : int;
  c_actual : Hash.t;
  c_valid : bool;
}

(* One in-flight boundary tally. Votes can arrive before this replica
   executes the boundary itself, so the first digest seen anchors the
   tally; if our own execution later disagrees, the tally restarts on
   our digest (an honest quorum will match it). *)
type pending = {
  mutable p_seq : int;  (* min_int = free slot *)
  mutable p_known : bool;  (* p_digest is meaningful *)
  mutable p_digest : Hash.t;
  mutable p_have_own : bool;  (* we executed the boundary: snapshot below is real *)
  mutable p_state : int64;
  mutable p_rids : (int * int * int64) list;
  mutable p_votes : Quorum.t;
}

let null_cert = { cp_seq = 0; cp_digest = Hash.zero; cp_signers = Quorum.empty }

type t = {
  cfg : config;
  quorum : int;
  obs : Obs.t;
  o_stable : int;
  o_transfer : int;
  o_bytes : int;
  o_chunks : int;
  o_cycles : Registry.histogram;
  pending : pending array;
  mutable low : int;
  mutable stable : (cert * int64 * (int * int * int64) list) option;
  mutable catchup : bool;
  (* transfer assembly (receiver side) *)
  mutable recovering : bool;
  mutable r_src : int;  (* -1 = no open assembly *)
  mutable r_cert : cert;
  mutable r_state : int64;
  mutable r_view : int;
  mutable r_rid_parts : (int * int * int64) list option array;
  mutable r_suffix_parts : (int * Types.request list) list option array;
  mutable r_started : int;
  mutable r_bytes : int;
  mutable r_chunks : int;
}

let test_ignore_watermarks = ref false
let test_unverified_transfer = ref false

let create cfg ~obs ~quorum =
  if cfg.interval <= 0 || cfg.window <= 0 || cfg.chunk <= 0 then
    invalid_arg "Checkpoint.create: interval, window and chunk must be positive";
  let o_stable, o_transfer, o_bytes, o_chunks, o_cycles =
    if !Obs.metrics_on then
      ( Registry.counter obs.Obs.metrics "repl.ckpt.stable",
        Registry.counter obs.Obs.metrics "repl.transfer.completed",
        Registry.counter obs.Obs.metrics "repl.transfer.bytes",
        Registry.counter obs.Obs.metrics "repl.transfer.chunks",
        Registry.histogram obs.Obs.metrics "repl.transfer.cycles"
          ~bounds:[| 100; 300; 1_000; 3_000; 10_000; 30_000 |] )
    else (0, 0, 0, 0, Registry.null_histogram)
  in
  {
    cfg;
    quorum;
    obs;
    o_stable;
    o_transfer;
    o_bytes;
    o_chunks;
    o_cycles;
    pending =
      Array.init
        (2 * cfg.window)
        (fun _ ->
          {
            p_seq = min_int;
            p_known = false;
            p_digest = Hash.zero;
            p_have_own = false;
            p_state = 0L;
            p_rids = [];
            p_votes = Quorum.empty;
          });
    low = 0;
    stable = None;
    catchup = false;
    recovering = false;
    r_src = -1;
    r_cert = null_cert;
    r_state = 0L;
    r_view = 0;
    r_rid_parts = [||];
    r_suffix_parts = [||];
    r_started = 0;
    r_bytes = 0;
    r_chunks = 0;
  }

let low t = t.low
let high t = t.low + (t.cfg.window * t.cfg.interval)
let is_boundary t seq = seq > 0 && seq mod t.cfg.interval = 0

let digest ~seq ~state ~rids =
  let h = Hash.combine_int (Hash.combine (Hash.of_string "resoc-ckpt") state) seq in
  List.fold_left
    (fun h (client, rid, result) ->
      Hash.combine (Hash.combine_int h ((client * 1_000_003) + rid)) result)
    h rids

let snapshot_rids ~rid_last ~rid_result =
  let acc = ref [] in
  for client = Array.length rid_last - 1 downto 0 do
    if rid_last.(client) <> min_int then
      acc := (client, rid_last.(client), rid_result.(client)) :: !acc
  done;
  !acc

(* The pending tally for [seq], claiming a free slot on first touch.
   [None] when every slot is live — boundaries stay within the (small)
   watermark window, so 2*window slots only run out under corrupted
   traffic, which is safe to drop. *)
let slot_for t seq =
  let n = Array.length t.pending in
  let found = ref (-1) in
  let free = ref (-1) in
  for i = 0 to n - 1 do
    let p = t.pending.(i) in
    if p.p_seq = seq then found := i else if !free < 0 && p.p_seq = min_int then free := i
  done;
  if !found >= 0 then Some t.pending.(!found)
  else if !free >= 0 then begin
    let p = t.pending.(!free) in
    p.p_seq <- seq;
    p.p_known <- false;
    p.p_digest <- Hash.zero;
    p.p_have_own <- false;
    p.p_state <- 0L;
    p.p_rids <- [];
    p.p_votes <- Quorum.empty;
    Some p
  end
  else None

let note_exec t ~seq ~state ~rid_last ~rid_result =
  if (not (is_boundary t seq)) || seq <= t.low then None
  else
    match slot_for t seq with
    | None -> None
    | Some p ->
      let rids = snapshot_rids ~rid_last ~rid_result in
      let d = digest ~seq ~state ~rids in
      if p.p_known && not (Hash.equal p.p_digest d) then
        (* Optimistically buffered votes disagreed with what we actually
           executed; restart the tally on our own digest. *)
        p.p_votes <- Quorum.empty;
      p.p_known <- true;
      p.p_digest <- d;
      p.p_have_own <- true;
      p.p_state <- state;
      p.p_rids <- rids;
      Some d

let drop_pending_at_or_below t seq =
  Array.iter (fun p -> if p.p_seq <> min_int && p.p_seq <= seq then p.p_seq <- min_int) t.pending

let note_vote t ~seq ~digest:d ~voter =
  if seq <= t.low || not (is_boundary t seq) then -1
  else
    match slot_for t seq with
    | None -> -1
    | Some p ->
      if not p.p_known then begin
        p.p_known <- true;
        p.p_digest <- d
      end;
      if not (Hash.equal p.p_digest d) then -1
      else begin
        p.p_votes <- Quorum.add p.p_votes voter;
        if not (Quorum.reached p.p_votes ~threshold:t.quorum) then -1
        else if not p.p_have_own then begin
          (* A certificate formed on a boundary we never reached: the
             group moved on without us, so recover by transfer rather
             than waiting for messages that already passed us by. *)
          t.catchup <- true;
          -1
        end
        else begin
          let prev = t.low in
          let cert = { cp_seq = seq; cp_digest = p.p_digest; cp_signers = p.p_votes } in
          t.stable <- Some (cert, p.p_state, p.p_rids);
          t.low <- seq;
          drop_pending_at_or_below t seq;
          if !Obs.metrics_on then Registry.incr t.obs.Obs.metrics t.o_stable;
          prev
        end
      end

let needs_catchup t = t.catchup
let stable t = t.stable

(* Crash-model self-stabilization (primary-backup): adopt this replica's
   own snapshot at [seq] as the stable checkpoint under a single-signer
   certificate. Serving the last periodic boundary instead would hand a
   recovering primary a stale sequence counter — and with no replayable
   log suffix in the Update stream, it would re-issue sequence numbers
   the backups already executed. *)
let force_stable t ~seq ~state ~rid_last ~rid_result ~voter =
  if seq > t.low then begin
    let rids = snapshot_rids ~rid_last ~rid_result in
    let d = digest ~seq ~state ~rids in
    let cert = { cp_seq = seq; cp_digest = d; cp_signers = Quorum.add Quorum.empty voter } in
    t.stable <- Some (cert, state, rids);
    t.low <- seq;
    drop_pending_at_or_below t seq;
    if !Obs.metrics_on then Registry.incr t.obs.Obs.metrics t.o_stable
  end

let rec split_parts k = function
  | [] -> []
  | xs ->
    let rec take n acc = function
      | rest when n = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (n - 1) (x :: acc) rest
    in
    let part, rest = take k [] xs in
    part :: split_parts k rest

let serve t ~view ~have ~suffix =
  match t.stable with
  | Some (cert, state, rids) when cert.cp_seq > have && not t.recovering ->
    let state = if !test_unverified_transfer then Int64.logxor state 0xDEADL else state in
    let rid_parts = split_parts t.cfg.chunk rids in
    let suffix_parts = split_parts t.cfg.chunk suffix in
    let meta =
      Meta
        {
          cert;
          state;
          view;
          rid_parts = List.length rid_parts;
          suffix_parts = List.length suffix_parts;
        }
    in
    Some
      ((meta :: List.mapi (fun part entries -> Rids { part; entries }) rid_parts)
      @ List.mapi (fun part entries -> Suffix { part; entries }) suffix_parts)
  | _ -> None

let begin_recovery t ~now =
  t.recovering <- true;
  t.catchup <- false;
  t.r_src <- -1;
  t.r_started <- now;
  t.r_bytes <- 0;
  t.r_chunks <- 0

let recovering t = t.recovering

let assembly_complete t =
  Array.for_all Option.is_some t.r_rid_parts && Array.for_all Option.is_some t.r_suffix_parts

let finish t ~now =
  let parts a = Array.to_list a |> List.concat_map Option.get in
  let rids = parts t.r_rid_parts in
  let suffix = parts t.r_suffix_parts in
  let actual = digest ~seq:t.r_cert.cp_seq ~state:t.r_state ~rids in
  let valid =
    Hash.equal actual t.r_cert.cp_digest && Quorum.count t.r_cert.cp_signers >= t.quorum
  in
  let completion =
    {
      c_cert = t.r_cert;
      c_state = t.r_state;
      c_rids = rids;
      c_suffix = suffix;
      c_view = t.r_view;
      c_bytes = t.r_bytes;
      c_chunks = t.r_chunks;
      c_elapsed = now - t.r_started;
      c_actual = actual;
      c_valid = valid;
    }
  in
  (* Discard the assembly either way: an invalid completion makes the
     caller re-issue the fetch, which must start clean. *)
  t.r_src <- -1;
  t.r_rid_parts <- [||];
  t.r_suffix_parts <- [||];
  completion

let feed t ~src ~now chunk =
  if not t.recovering then None
  else begin
    (match chunk with
    | Meta { cert; state; view; rid_parts; suffix_parts } ->
      if t.r_src < 0 then begin
        t.r_src <- src;
        t.r_cert <- cert;
        t.r_state <- state;
        t.r_view <- view;
        t.r_rid_parts <- Array.make rid_parts None;
        t.r_suffix_parts <- Array.make suffix_parts None;
        t.r_bytes <- t.r_bytes + chunk_bytes chunk;
        t.r_chunks <- t.r_chunks + 1
      end
    | Rids { part; entries } ->
      if src = t.r_src && part >= 0 && part < Array.length t.r_rid_parts then begin
        t.r_rid_parts.(part) <- Some entries;
        t.r_bytes <- t.r_bytes + chunk_bytes chunk;
        t.r_chunks <- t.r_chunks + 1
      end
    | Suffix { part; entries } ->
      if src = t.r_src && part >= 0 && part < Array.length t.r_suffix_parts then begin
        t.r_suffix_parts.(part) <- Some entries;
        t.r_bytes <- t.r_bytes + chunk_bytes chunk;
        t.r_chunks <- t.r_chunks + 1
      end);
    if t.r_src >= 0 && assembly_complete t then Some (finish t ~now) else None
  end

let install t (c : completion) =
  t.stable <- Some (c.c_cert, c.c_state, c.c_rids);
  t.low <- c.c_cert.cp_seq;
  t.recovering <- false;
  t.catchup <- false;
  t.r_src <- -1;
  drop_pending_at_or_below t t.low;
  if !Obs.metrics_on then begin
    Registry.incr t.obs.Obs.metrics t.o_transfer;
    Registry.add t.obs.Obs.metrics t.o_bytes c.c_bytes;
    Registry.add t.obs.Obs.metrics t.o_chunks c.c_chunks;
    Registry.observe t.obs.Obs.metrics t.o_cycles c.c_elapsed
  end

let rebase t ~seq =
  t.low <- seq;
  t.stable <- None;
  t.catchup <- false;
  (* A view change hands over full state, so any in-flight transfer is
     now stale; ending recovery makes [feed] discard late chunks. *)
  t.recovering <- false;
  t.r_src <- -1;
  Array.iter (fun p -> p.p_seq <- min_int) t.pending

let reset t =
  t.low <- 0;
  t.stable <- None;
  t.catchup <- false;
  t.recovering <- false;
  t.r_src <- -1;
  t.r_rid_parts <- [||];
  t.r_suffix_parts <- [||];
  Array.iter (fun p -> p.p_seq <- min_int) t.pending
