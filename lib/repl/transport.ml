module Engine = Resoc_des.Engine

type 'msg fabric = {
  n_endpoints : int;
  send : src:int -> dst:int -> 'msg -> unit;
  multicast : (src:int -> dsts:int array -> n:int -> 'msg -> unit) option;
  set_handler : int -> (src:int -> 'msg -> unit) -> unit;
  detach : int -> unit;
  messages_sent : unit -> int;
  bytes_sent : unit -> int;
}

let broadcast fabric ~src ~to_ msg =
  match fabric.multicast with
  | Some mc ->
    let dsts = Array.of_list to_ in
    mc ~src ~dsts ~n:(Array.length dsts) msg
  | None -> List.iter (fun dst -> fabric.send ~src ~dst msg) to_

(* Hub deliveries ride pooled slots: per slot a (src, dst) pair, the
   payload, and a fire closure built once and reused — so a send pushes
   two ints into the engine and boxes the payload, nothing else. The
   slot is released before the handler runs, so a handler that sends
   can reuse it immediately. *)
let hub engine ~n ?(latency = 5) ?(size_of = fun _ -> 64) ?(multicast = false) () =
  if n <= 0 then invalid_arg "Transport.hub: need at least one endpoint";
  if latency < 0 then invalid_arg "Transport.hub: negative latency";
  let handlers = Array.make n None in
  let messages = ref 0 in
  let bytes = ref 0 in
  let p_src = ref [||] in
  let p_dst = ref [||] in
  let p_msg = ref [||] in
  let p_fire = ref [||] in
  let p_free_next = ref [||] in
  let free_head = ref (-1) in
  let fire slot =
    let src = (!p_src).(slot) and dst = (!p_dst).(slot) in
    let msg = match (!p_msg).(slot) with Some m -> m | None -> assert false in
    (!p_msg).(slot) <- None;
    (!p_free_next).(slot) <- !free_head;
    free_head := slot;
    match handlers.(dst) with
    | Some handler -> handler ~src msg
    | None -> ()
  in
  let grow () =
    let cap = Array.length !p_src in
    let ncap = if cap = 0 then 16 else cap * 2 in
    let extend a = Array.append a (Array.make (ncap - cap) 0) in
    p_src := extend !p_src;
    p_dst := extend !p_dst;
    let nmsg = Array.make ncap None in
    Array.blit !p_msg 0 nmsg 0 cap;
    p_msg := nmsg;
    let nfire = Array.make ncap (fun () -> ()) in
    Array.blit !p_fire 0 nfire 0 cap;
    for i = cap to ncap - 1 do
      nfire.(i) <- (fun () -> fire i)
    done;
    p_fire := nfire;
    let nfree = Array.make ncap (-1) in
    Array.blit !p_free_next 0 nfree 0 cap;
    for i = ncap - 1 downto cap do
      nfree.(i) <- !free_head;
      free_head := i
    done;
    p_free_next := nfree
  in
  let send ~src ~dst msg =
    if dst < 0 || dst >= n then invalid_arg "Transport.hub: destination out of range";
    incr messages;
    bytes := !bytes + size_of msg;
    let delay = if src = dst then 1 else latency in
    if !free_head < 0 then grow ();
    let slot = !free_head in
    free_head := (!p_free_next).(slot);
    (!p_src).(slot) <- src;
    (!p_dst).(slot) <- dst;
    (!p_msg).(slot) <- Some msg;
    ignore (Engine.schedule engine ~delay (!p_fire).(slot))
  in
  {
    n_endpoints = n;
    send;
    (* A hub has no shared physical medium: its multicast is the unicast
       loop, with identical counters — so hub experiments give the same
       numbers in both modes and only exercise the call path. *)
    multicast =
      (if multicast then
         Some
           (fun ~src ~dsts ~n:k msg ->
             for i = 0 to k - 1 do
               send ~src ~dst:dsts.(i) msg
             done)
       else None);
    set_handler = (fun i h -> handlers.(i) <- Some h);
    detach = (fun i -> handlers.(i) <- None);
    messages_sent = (fun () -> !messages);
    bytes_sent = (fun () -> !bytes);
  }
