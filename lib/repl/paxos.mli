(** Multi-Paxos-style crash-tolerant state machine replication.

    The benign baseline (2f+1 replicas, f crash faults): a stable leader
    sequences requests, acceptors acknowledge, the leader commits on a
    majority and everyone executes in order. Leader failure is detected by
    per-request timeouts and repaired by a term change (round-robin leader).
    No Byzantine defence — a corrupt leader order is accepted blindly, which
    is exactly the contrast with {!Pbft}/{!Minbft} that E4 quantifies. *)

module Behavior = Resoc_fault.Behavior

type msg =
  | Request of Types.request
  | Accept of { term : int; seq : int; request : Types.request }
  | Accept_b of { term : int; seq : int; requests : Types.request list }
      (** Batched ordering ([config.batching]): the list shares one slot
          and one ack round; agreement keys on
          [Types.batch_digest requests]. *)
  | Accepted of { term : int; seq : int }
  | Commit of { term : int; seq : int }
  | Reply of Types.reply
  | Term_change of { new_term : int; last_exec : int }
  | New_term of { term : int; start_seq : int; state : int64; rid_table : (int * (int * int64)) list }
  | Checkpoint_vote of { seq : int; digest : Resoc_crypto.Hash.t }
  | Fetch_state of { have : int }
  | State_chunk of Checkpoint.chunk

type config = {
  f : int;
  n_clients : int;
  request_timeout : int;
  election_timeout : int;
  checkpoint : Checkpoint.config option;
      (** Certified checkpointing + state transfer with a majority (f+1)
          quorum — in the crash model any single signer is trusted, but
          a majority certificate additionally proves the boundary is
          durable across every reachable quorum. [None] (the default)
          keeps the legacy fixed-retention / free-state-copy model. *)
  multicast : bool;
      (** Route replica fan-outs through the fabric's multicast (one
          injection forking in the network) when it offers one; off
          (the default) = per-destination unicast. *)
  batching : Types.batching option;
      (** Leader-side request batching + agreement pipelining
          ({!Batcher}); [None] (the default) keeps the legacy
          one-instance-per-request path byte-identical. *)
}

val default_config : config

val n_replicas : config -> int

type t

val start :
  Resoc_des.Engine.t ->
  msg Transport.fabric ->
  config ->
  ?behaviors:Behavior.t array ->
  unit ->
  t

val submit : t -> client:int -> payload:int64 -> unit

val stats : t -> Stats.t

val term : t -> replica:int -> int

val replica_state : t -> replica:int -> int64

val set_replica_state : t -> replica:int -> int64 -> unit
(** Out-of-band state installation (epoch-based protocol switching). *)

val replica_online : t -> replica:int -> bool
val set_offline : t -> replica:int -> unit

val set_online : t -> replica:int -> unit
(** Rejoin after rejuvenation. With checkpointing enabled the replica
    restarts wiped and fetches the latest certified checkpoint plus log
    suffix from its peers; without it, legacy behaviour: a free state
    copy from the most advanced online replica. *)

val message_name : msg -> string
