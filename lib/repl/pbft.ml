module Engine = Resoc_des.Engine
module Hash = Resoc_crypto.Hash
module Behavior = Resoc_fault.Behavior
module Obs = Resoc_obs.Obs
module Registry = Resoc_obs.Registry
module Ring = Resoc_obs.Ring

type msg =
  | Request of Types.request
  | Pre_prepare of { view : int; seq : int; digest : Hash.t; request : Types.request }
  | Prepare of { view : int; seq : int; digest : Hash.t }
  | Commit of { view : int; seq : int; digest : Hash.t }
  | Reply of Types.reply
  | View_change of { new_view : int; last_exec : int }
  | New_view of { view : int; start_seq : int; state : int64; rid_table : (int * (int * int64)) list }

type config = { f : int; n_clients : int; request_timeout : int; vc_timeout : int }

let default_config = { f = 1; n_clients = 2; request_timeout = 4000; vc_timeout = 2500 }

let n_replicas config = (3 * config.f) + 1

type entry = {
  e_view : int;
  digest : Hash.t;
  mutable request : Types.request option;
  prepares : (int, unit) Hashtbl.t;
  commits : (int, unit) Hashtbl.t;
  mutable sent_commit : bool;
  mutable committed : bool;
  mutable executed : bool;
}

type replica = {
  id : int;
  n : int;
  f : int;
  engine : Engine.t;
  fabric : msg Transport.fabric;
  config : config;
  behavior : Behavior.t;
  app : App.t;
  stats : Stats.t;
  mutable online : bool;
  mutable view : int;
  mutable next_seq : int;  (* next sequence number to assign (when primary) *)
  mutable last_exec : int;
  log : (int, entry) Hashtbl.t;  (* seq -> entry (current view only) *)
  ordered : (Hash.t, int) Hashtbl.t;  (* digest -> seq, current view *)
  pending : (Hash.t, Types.request) Hashtbl.t;  (* seen, not yet executed *)
  rid_table : (int, int * int64) Hashtbl.t;  (* client -> last rid, result *)
  timers : (Hash.t, Engine.handle) Hashtbl.t;
  vc_votes : (int, (int, int) Hashtbl.t) Hashtbl.t;  (* view -> voter -> last_exec *)
  mutable vc_voted : int;  (* highest view we voted for *)
  obs : Obs.t;
  obs_vc : int;
}

type t = {
  engine : Engine.t;
  fabric : msg Transport.fabric;
  config : config;
  replicas : replica array;
  clients : msg Client.t array;
  shared_stats : Stats.t;
}

let message_name = function
  | Request _ -> "request"
  | Pre_prepare _ -> "pre-prepare"
  | Prepare _ -> "prepare"
  | Commit _ -> "commit"
  | Reply _ -> "reply"
  | View_change _ -> "view-change"
  | New_view _ -> "new-view"

let primary_of ~view ~n = view mod n

let is_primary (r : replica) = primary_of ~view:r.view ~n:r.n = r.id

let replica_ids (r : replica) = List.init r.n Fun.id

let others r = List.filter (fun i -> i <> r.id) (replica_ids r)

(* Sending honours the replica's behaviour: crashed/offline replicas are
   mute; Silent Byzantine replicas too; Delay holds messages back. *)
let send (r : replica) ~dst msg =
  let now = Engine.now r.engine in
  if r.online && not (Behavior.is_crashed r.behavior ~now) then
    match Behavior.active_strategy r.behavior ~now with
    | Some Behavior.Silent -> ()
    | Some (Behavior.Delay d) ->
      ignore (Engine.schedule r.engine ~delay:d (fun () -> r.fabric.Transport.send ~src:r.id ~dst msg))
    | Some Behavior.Equivocate | Some Behavior.Corrupt_execution | None ->
      r.fabric.Transport.send ~src:r.id ~dst msg

let broadcast r ~to_ msg = List.iter (fun dst -> send r ~dst msg) to_

let entry_for r ~view ~seq ~digest =
  match Hashtbl.find_opt r.log seq with
  | Some e when e.e_view = view -> Some e
  | Some _ -> None  (* stale view entry at this slot; ignore the message *)
  | None ->
    let e =
      {
        e_view = view;
        digest;
        request = None;
        prepares = Hashtbl.create 8;
        commits = Hashtbl.create 8;
        sent_commit = false;
        committed = false;
        executed = false;
      }
    in
    Hashtbl.replace r.log seq e;
    if !Obs.trace_on then
      Ring.async_begin r.obs.Obs.ring ~time:(Engine.now r.engine) ~cat:Obs.Cat.repl
        ~id:(Obs.repl_counter_span ~replica:r.id ~counter:seq)
        ~arg:0;
    Some e

let cancel_request_timer r digest =
  match Hashtbl.find_opt r.timers digest with
  | Some h ->
    Engine.cancel r.engine h;
    Hashtbl.remove r.timers digest
  | None -> ()

let reply_to_client r (request : Types.request) result =
  let corrupt =
    match Behavior.active_strategy r.behavior ~now:(Engine.now r.engine) with
    | Some Behavior.Corrupt_execution -> true
    | Some _ | None -> false
  in
  let result = if corrupt then Int64.logxor result 0xBADBADL else result in
  send r ~dst:request.Types.client
    (Reply { Types.client = request.Types.client; rid = request.Types.rid; result; replica = r.id })

(* Executed entries older than this many slots are pruned (checkpointing
   reduced to its garbage-collection effect). *)
let log_retention = 256

(* Execute committed entries in sequence order. The rid table provides
   exactly-once semantics per client and caches the last reply. *)
let rec try_execute r =
  match Hashtbl.find_opt r.log (r.last_exec + 1) with
  | Some ({ committed = true; executed = false; request = Some request; _ } as e) ->
    e.executed <- true;
    r.last_exec <- r.last_exec + 1;
    if !Obs.trace_on then
      Ring.async_end r.obs.Obs.ring ~time:(Engine.now r.engine) ~cat:Obs.Cat.repl
        ~id:(Obs.repl_counter_span ~replica:r.id ~counter:r.last_exec)
        ~arg:0;
    let client = request.Types.client and rid = request.Types.rid in
    let result =
      match Hashtbl.find_opt r.rid_table client with
      | Some (last_rid, cached) when rid <= last_rid -> cached
      | Some _ | None ->
        let result = App.execute r.app request.Types.payload in
        Hashtbl.replace r.rid_table client (rid, result);
        result
    in
    let digest = Types.request_digest request in
    Hashtbl.remove r.pending digest;
    cancel_request_timer r digest;
    if !Obs.trace_on then
      Ring.async_end r.obs.Obs.ring ~time:(Engine.now r.engine) ~cat:Obs.Cat.repl
        ~id:(Obs.repl_request_span ~replica:r.id ~client ~rid)
        ~arg:0;
    reply_to_client r request result;
    Hashtbl.remove r.log (r.last_exec - log_retention);
    try_execute r
  | Some _ | None -> ()

let try_commit r ~seq (e : entry) =
  if (not e.committed) && Hashtbl.length e.commits >= (2 * r.f) + 1
     && Hashtbl.length e.prepares >= (2 * r.f) + 1
     && e.request <> None
  then begin
    e.committed <- true;
    ignore seq;
    try_execute r
  end

let send_commit_if_prepared r ~seq (e : entry) =
  if (not e.sent_commit) && e.request <> None && Hashtbl.length e.prepares >= (2 * r.f) + 1 then begin
    e.sent_commit <- true;
    Hashtbl.replace e.commits r.id ();
    broadcast r ~to_:(others r) (Commit { view = r.view; seq; digest = e.digest });
    try_commit r ~seq e
  end

(* --- view changes --- *)

let start_vc_timer r digest =
  if not (Hashtbl.mem r.timers digest) then
    Hashtbl.replace r.timers digest
      (Engine.schedule r.engine ~delay:r.config.vc_timeout (fun () ->
           Hashtbl.remove r.timers digest;
           if r.online && Hashtbl.mem r.pending digest then begin
             (* Escalate past views whose primary never answered. *)
             let new_view = max r.view r.vc_voted + 1 in
             r.vc_voted <- new_view;
             broadcast r ~to_:(replica_ids r) (View_change { new_view; last_exec = r.last_exec })
           end))

let order_request r (request : Types.request) =
  let digest = Types.request_digest request in
  if not (Hashtbl.mem r.ordered digest) then begin
    let seq = r.next_seq in
    r.next_seq <- r.next_seq + 1;
    Hashtbl.replace r.ordered digest seq;
    if !Obs.trace_on then
      Ring.instant r.obs.Obs.ring ~time:(Engine.now r.engine) ~cat:Obs.Cat.repl
        ~id:(Obs.repl_event ~replica:r.id ~code:Obs.code_pre_prepare)
        ~arg:seq;
    let equivocating =
      match Behavior.active_strategy r.behavior ~now:(Engine.now r.engine) with
      | Some Behavior.Equivocate -> true
      | Some _ | None -> false
    in
    (match entry_for r ~view:r.view ~seq ~digest with
     | Some e ->
       e.request <- Some request;
       Hashtbl.replace e.prepares r.id ()
     | None -> ());
    let backups = others r in
    let lies = r.f + 1 in
    List.iteri
      (fun i dst ->
        let digest' =
          (* An equivocating primary tells half the backups a different
             story. The truthful half is too small to form a 2f+1 quorum,
             so the slot stalls until a view change evicts the primary. *)
          if equivocating && i < lies then Hash.combine digest (Hash.of_string "lie") else digest
        in
        send r ~dst (Pre_prepare { view = r.view; seq; digest = digest'; request }))
      backups
  end

let adopt_new_view r ~view ~start_seq ~state ~rid_table =
  r.view <- view;
  r.vc_voted <- max r.vc_voted view;
  Hashtbl.reset r.log;
  Hashtbl.reset r.ordered;
  App.set_state r.app state;
  r.last_exec <- start_seq - 1;
  r.next_seq <- start_seq;
  Hashtbl.reset r.rid_table;
  List.iter (fun (client, entry) -> Hashtbl.replace r.rid_table client entry) rid_table;
  (* Forget cached replies consistent with the transferred state only;
     pending requests restart their patience. *)
  Hashtbl.iter (fun digest _ -> cancel_request_timer r digest) (Hashtbl.copy r.timers);
  Hashtbl.reset r.timers;
  Hashtbl.iter (fun digest _ -> start_vc_timer r digest) r.pending

let become_primary r ~view ~start_seq =
  let rid_table = Hashtbl.fold (fun c e acc -> (c, e) :: acc) r.rid_table [] in
  let state = App.state r.app in
  adopt_new_view r ~view ~start_seq ~state ~rid_table;
  broadcast r ~to_:(others r) (New_view { view; start_seq; state; rid_table });
  (* Re-propose everything still pending, deterministically ordered. *)
  let pending = Hashtbl.fold (fun _ req acc -> req :: acc) r.pending [] in
  let pending =
    List.sort
      (fun (a : Types.request) b -> compare (a.Types.client, a.Types.rid) (b.Types.client, b.Types.rid))
      pending
  in
  List.iter (order_request r) pending

let on_view_change r ~src ~new_view ~last_exec =
  if new_view > r.view then begin
    let votes =
      match Hashtbl.find_opt r.vc_votes new_view with
      | Some v -> v
      | None ->
        let v = Hashtbl.create 8 in
        Hashtbl.replace r.vc_votes new_view v;
        v
    in
    Hashtbl.replace votes src last_exec;
    let voters = Hashtbl.length votes in
    (* Join the view change once f+1 replicas are committed to it: at least
       one of them is honest, so the timeout was genuine. *)
    if voters >= r.f + 1 && r.vc_voted < new_view then begin
      r.vc_voted <- new_view;
      broadcast r ~to_:(replica_ids r) (View_change { new_view; last_exec = r.last_exec })
    end;
    if voters >= (2 * r.f) + 1 && primary_of ~view:new_view ~n:r.n = r.id then begin
      let max_exec = Hashtbl.fold (fun _ le acc -> max le acc) votes r.last_exec in
      r.stats.Stats.view_changes <- r.stats.Stats.view_changes + 1;
      if !Obs.metrics_on then Registry.incr r.obs.Obs.metrics r.obs_vc;
      if !Obs.trace_on then
        Ring.instant r.obs.Obs.ring ~time:(Engine.now r.engine) ~cat:Obs.Cat.repl
          ~id:(Obs.repl_event ~replica:r.id ~code:Obs.code_view_change)
          ~arg:new_view;
      become_primary r ~view:new_view ~start_seq:(max_exec + 1)
    end
  end

(* --- message handling --- *)

let on_request r (request : Types.request) =
  let digest = Types.request_digest request in
  let client = request.Types.client in
  match Hashtbl.find_opt r.rid_table client with
  | Some (last_rid, cached) when request.Types.rid <= last_rid ->
    (* Already executed: re-send the cached reply. *)
    reply_to_client r request cached
  | Some _ | None ->
    if !Obs.trace_on && not (Hashtbl.mem r.pending digest) then
      Ring.async_begin r.obs.Obs.ring ~time:(Engine.now r.engine) ~cat:Obs.Cat.repl
        ~id:(Obs.repl_request_span ~replica:r.id ~client ~rid:request.Types.rid)
        ~arg:0;
    Hashtbl.replace r.pending digest request;
    if is_primary r then order_request r request
    else begin
      (* Forward to the primary and watch it. *)
      send r ~dst:(primary_of ~view:r.view ~n:r.n) (Request request);
      start_vc_timer r digest
    end

let on_pre_prepare r ~src ~view ~seq ~digest ~request =
  if view = r.view && src = primary_of ~view ~n:r.n && not (is_primary r) then begin
    if Hash.equal digest (Types.request_digest request) then begin
      Hashtbl.replace r.pending (Types.request_digest request) request;
      match entry_for r ~view ~seq ~digest with
      | Some e when Hash.equal e.digest digest ->
        e.request <- Some request;
        Hashtbl.replace e.prepares src ();
        (* our own prepare vote *)
        if not (Hashtbl.mem e.prepares r.id) then begin
          Hashtbl.replace e.prepares r.id ();
          broadcast r ~to_:(others r) (Prepare { view; seq; digest })
        end;
        send_commit_if_prepared r ~seq e
      | Some _ | None -> ()
    end
    else begin
      (* Digest mismatch: an equivocating or corrupt primary. Keep the
         request pending and let the timer push a view change. *)
      Hashtbl.replace r.pending (Types.request_digest request) request;
      start_vc_timer r (Types.request_digest request)
    end
  end

let on_prepare r ~src ~view ~seq ~digest =
  if view = r.view then
    match entry_for r ~view ~seq ~digest with
    | Some e when Hash.equal e.digest digest ->
      Hashtbl.replace e.prepares src ();
      send_commit_if_prepared r ~seq e
    | Some _ | None -> ()

let on_commit r ~src ~view ~seq ~digest =
  if view = r.view then
    match entry_for r ~view ~seq ~digest with
    | Some e when Hash.equal e.digest digest ->
      Hashtbl.replace e.commits src ();
      try_commit r ~seq e
    | Some _ | None -> ()

let on_new_view r ~src ~view ~start_seq ~state ~rid_table =
  if view > r.view && src = primary_of ~view ~n:r.n then adopt_new_view r ~view ~start_seq ~state ~rid_table

let handle (r : replica) ~src msg =
  let now = Engine.now r.engine in
  if r.online && not (Behavior.is_crashed r.behavior ~now) then
    match msg with
    | Request request -> on_request r request
    | Pre_prepare { view; seq; digest; request } -> on_pre_prepare r ~src ~view ~seq ~digest ~request
    | Prepare { view; seq; digest } -> on_prepare r ~src ~view ~seq ~digest
    | Commit { view; seq; digest } -> on_commit r ~src ~view ~seq ~digest
    | View_change { new_view; last_exec } -> on_view_change r ~src ~new_view ~last_exec
    | New_view { view; start_seq; state; rid_table } ->
      on_new_view r ~src ~view ~start_seq ~state ~rid_table
    | Reply _ -> ()

(* --- system assembly --- *)

let make_replica engine fabric config stats ~id ~behavior =
  let obs = Engine.obs engine in
  let obs_vc =
    if !Obs.metrics_on then Registry.counter obs.Obs.metrics "repl.view_changes" else 0
  in
  {
    id;
    n = n_replicas config;
    f = config.f;
    engine;
    fabric;
    config;
    behavior;
    app = App.accumulator ();
    stats;
    online = true;
    view = 0;
    next_seq = 1;
    last_exec = 0;
    log = Hashtbl.create 64;
    ordered = Hashtbl.create 64;
    pending = Hashtbl.create 16;
    rid_table = Hashtbl.create 8;
    timers = Hashtbl.create 16;
    vc_votes = Hashtbl.create 4;
    vc_voted = 0;
    obs;
    obs_vc;
  }

let start engine fabric config ?behaviors () =
  let n = n_replicas config in
  let behaviors =
    match behaviors with
    | Some b ->
      if Array.length b <> n then invalid_arg "Pbft.start: behaviors must cover every replica";
      b
    | None -> Array.make n Behavior.honest
  in
  if fabric.Transport.n_endpoints < n + config.n_clients then
    invalid_arg "Pbft.start: fabric too small";
  let stats = Stats.create () in
  let replicas =
    Array.init n (fun id -> make_replica engine fabric config stats ~id ~behavior:behaviors.(id))
  in
  Array.iter
    (fun r -> fabric.Transport.set_handler r.id (fun ~src msg -> handle r ~src msg))
    replicas;
  let clients =
    Array.init config.n_clients (fun i ->
        Client.create engine fabric ~id:(n + i) ~n_replicas:n ~quorum:(config.f + 1)
          ~retry_timeout:config.request_timeout ~stats
          ~to_msg:(fun request -> Request request)
          ~of_msg:(function Reply reply -> Some reply | _ -> None)
          ())
  in
  { engine; fabric; config; replicas; clients; shared_stats = stats }

let submit t ~client ~payload =
  if client < 0 || client >= Array.length t.clients then invalid_arg "Pbft.submit: unknown client";
  Client.submit t.clients.(client) ~payload

let stats t = t.shared_stats

let view t ~replica = t.replicas.(replica).view

let replica_state t ~replica = App.state t.replicas.(replica).app

let set_replica_state t ~replica state = App.set_state t.replicas.(replica).app state

let replica_online t ~replica = t.replicas.(replica).online

let set_offline t ~replica =
  let r = t.replicas.(replica) in
  r.online <- false;
  Hashtbl.iter (fun _ h -> Engine.cancel r.engine h) r.timers;
  Hashtbl.reset r.timers

let set_online t ~replica =
  let r = t.replicas.(replica) in
  if not r.online then begin
    r.online <- true;
    (* State transfer from the most advanced online peer. *)
    let best = ref None in
    Array.iter
      (fun peer ->
        if peer.id <> r.id && peer.online then
          match !best with
          | Some b when b.last_exec >= peer.last_exec -> ()
          | Some _ | None -> best := Some peer)
      t.replicas;
    match !best with
    | Some peer ->
      r.view <- peer.view;
      r.vc_voted <- max r.vc_voted peer.view;
      r.last_exec <- peer.last_exec;
      r.next_seq <- peer.last_exec + 1;
      App.set_state r.app (App.state peer.app);
      Hashtbl.reset r.rid_table;
      Hashtbl.iter (fun c e -> Hashtbl.replace r.rid_table c e) peer.rid_table;
      Hashtbl.reset r.log;
      Hashtbl.reset r.ordered;
      Hashtbl.reset r.pending
    | None -> ()
  end
