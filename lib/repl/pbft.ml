module Engine = Resoc_des.Engine
module Hash = Resoc_crypto.Hash
module Behavior = Resoc_fault.Behavior
module Obs = Resoc_obs.Obs
module Registry = Resoc_obs.Registry
module Ring = Resoc_obs.Ring
module Check = Resoc_check.Check

type msg =
  | Request of Types.request
  | Pre_prepare of { view : int; seq : int; digest : Hash.t; request : Types.request }
  | Pre_prepare_b of { view : int; seq : int; digest : Hash.t; requests : Types.request list }
      (* Batched ordering: one instance covers the whole request list
         (digest = Types.batch_digest). One NoC flight per destination
         carries every payload; Prepare/Commit are unchanged. *)
  | Prepare of { view : int; seq : int; digest : Hash.t }
  | Commit of { view : int; seq : int; digest : Hash.t }
  | Reply of Types.reply
  | View_change of { new_view : int; last_exec : int }
  | New_view of { view : int; start_seq : int; state : int64; rid_table : (int * (int * int64)) list }
  | Checkpoint_vote of { seq : int; digest : Hash.t }
  | Fetch_state of { have : int }
  | State_chunk of Checkpoint.chunk

type config = {
  f : int;
  n_clients : int;
  request_timeout : int;
  vc_timeout : int;
  checkpoint : Checkpoint.config option;
  multicast : bool;
  batching : Types.batching option;
}

let default_config =
  {
    f = 1;
    n_clients = 2;
    request_timeout = 4000;
    vc_timeout = 2500;
    checkpoint = None;
    multicast = false;
    batching = None;
  }

let n_replicas config = (3 * config.f) + 1

(* Entries are pooled in the slot ring and reset in place when a new
   sequence number claims the slot — every field is mutable and the
   absent request is a physical sentinel, so steady-state agreement
   allocates nothing per slot. *)
type entry = {
  mutable e_view : int;
  mutable digest : Hash.t;
  mutable request : Types.request;  (* == no_request when unknown *)
  mutable batch : Types.request list;  (* batched instance payloads; [] = unbatched *)
  mutable prepares : Quorum.t;
  mutable commits : Quorum.t;
  mutable sent_commit : bool;
  mutable committed : bool;
  mutable executed : bool;
}

let no_request : Types.request = { Types.client = -1; rid = -1; payload = 0L }

let fresh_entry _ =
  {
    e_view = -1;
    digest = Hash.zero;
    request = no_request;
    batch = [];
    prepares = Quorum.empty;
    commits = Quorum.empty;
    sent_commit = false;
    committed = false;
    executed = false;
  }

(* Stale-view marker returned by [entry_for]; never stored in a ring. *)
let null_entry = fresh_entry 0

type replica = {
  id : int;
  n : int;
  f : int;
  engine : Engine.t;
  fabric : msg Transport.fabric;
  config : config;
  behavior : Behavior.t;
  app : App.t;
  stats : Stats.t;
  mutable online : bool;
  mutable view : int;
  mutable next_seq : int;  (* next sequence number to assign (when primary) *)
  mutable last_exec : int;
  log : entry Slot_ring.t;  (* seq -> entry (current view only) *)
  ordered : int Digest_map.t;  (* digest -> seq, current view *)
  pending : (Hash.t, Types.request) Hashtbl.t;  (* seen, not yet executed *)
  mutable rid_last : int array;  (* client -> last rid, min_int = none *)
  mutable rid_result : int64 array;  (* client -> cached result *)
  timers : Engine.handle Digest_map.t;
  vc_rounds : Quorum.Rounds.t;  (* view -> voter -> last_exec *)
  mutable vc_voted : int;  (* highest view we voted for *)
  all_ids : int array;  (* 0 .. n-1 *)
  peer_ids : int array;  (* 0 .. n-1 minus self *)
  mcast : (src:int -> dsts:int array -> n:int -> msg -> unit) option;
      (* fabric multicast, resolved once; None = per-destination sends *)
  mutable batcher : Batcher.t option;  (* Some iff config.batching is active *)
  obs : Obs.t;
  obs_vc : int;
  chk : int;  (* resoc_check session, -1 when checking is off *)
  cp : Checkpoint.t option;  (* None = checkpointing disabled (default) *)
  mutable recover_timer : Engine.handle option;  (* Fetch_state retry while recovering *)
}

type t = {
  engine : Engine.t;
  fabric : msg Transport.fabric;
  config : config;
  replicas : replica array;
  clients : msg Client.t array;
  shared_stats : Stats.t;
}

let message_name = function
  | Request _ -> "request"
  | Pre_prepare _ -> "pre-prepare"
  | Pre_prepare_b _ -> "pre-prepare-batch"
  | Prepare _ -> "prepare"
  | Commit _ -> "commit"
  | Reply _ -> "reply"
  | View_change _ -> "view-change"
  | New_view _ -> "new-view"
  | Checkpoint_vote _ -> "checkpoint-vote"
  | Fetch_state _ -> "fetch-state"
  | State_chunk _ -> "state-chunk"

let primary_of ~view ~n = view mod n

let is_primary (r : replica) = primary_of ~view:r.view ~n:r.n = r.id

(* Sending honours the replica's behaviour: crashed/offline replicas are
   mute; Silent Byzantine replicas too; Delay holds messages back. *)
let send (r : replica) ~dst msg =
  let now = Engine.now r.engine in
  if r.online && not (Behavior.is_crashed r.behavior ~now) then
    match Behavior.active_strategy r.behavior ~now with
    | Some Behavior.Silent -> ()
    | Some (Behavior.Delay d) ->
      ignore (Engine.schedule r.engine ~delay:d (fun () -> r.fabric.Transport.send ~src:r.id ~dst msg))
    | Some Behavior.Equivocate | Some Behavior.Corrupt_execution | None ->
      r.fabric.Transport.send ~src:r.id ~dst msg

(* Fan-outs take the fabric's tree multicast when the replica was built
   with one: a single behaviour gate, then one injection that forks in
   the network instead of [Array.length to_] unicasts. *)
let broadcast r ~to_ msg =
  match r.mcast with
  | Some mc ->
    let now = Engine.now r.engine in
    if r.online && not (Behavior.is_crashed r.behavior ~now) then (
      match Behavior.active_strategy r.behavior ~now with
      | Some Behavior.Silent -> ()
      | Some (Behavior.Delay d) ->
        ignore
          (Engine.schedule r.engine ~delay:d (fun () ->
               mc ~src:r.id ~dsts:to_ ~n:(Array.length to_) msg))
      | Some Behavior.Equivocate | Some Behavior.Corrupt_execution | None ->
        mc ~src:r.id ~dsts:to_ ~n:(Array.length to_) msg)
  | None ->
    for i = 0 to Array.length to_ - 1 do
      send r ~dst:(Array.unsafe_get to_ i) msg
    done

(* The entry tracking [seq], creating it (reset in place) on first
   touch. Returns [null_entry] when the slot holds a stale-view entry;
   the message is ignored. *)
let entry_for r ~view ~seq ~digest =
  let e, fresh = Slot_ring.bind r.log seq in
  if fresh then begin
    e.e_view <- view;
    e.digest <- digest;
    e.request <- no_request;
    e.batch <- [];
    e.prepares <- Quorum.empty;
    e.commits <- Quorum.empty;
    e.sent_commit <- false;
    e.committed <- false;
    e.executed <- false;
    if !Obs.trace_on then
      Ring.async_begin r.obs.Obs.ring ~time:(Engine.now r.engine) ~cat:Obs.Cat.repl
        ~id:(Obs.repl_counter_span ~replica:r.id ~counter:seq)
        ~arg:0;
    e
  end
  else if e.e_view = view then e
  else null_entry  (* stale view entry at this slot; ignore the message *)

let cancel_request_timer r digest =
  let i = Digest_map.index r.timers digest in
  if i >= 0 then begin
    Engine.cancel r.engine (Digest_map.value_at r.timers i);
    Digest_map.remove_at r.timers i
  end

(* rid bookkeeping lives in parallel arrays indexed by client id; the
   arrays grow on demand since fabrics number clients after replicas. *)
let rid_slot r client =
  let len = Array.length r.rid_last in
  if client >= len then begin
    let ncap = ref (max 8 (2 * len)) in
    while client >= !ncap do
      ncap := 2 * !ncap
    done;
    let nlast = Array.make !ncap min_int in
    Array.blit r.rid_last 0 nlast 0 len;
    let nresult = Array.make !ncap 0L in
    Array.blit r.rid_result 0 nresult 0 len;
    r.rid_last <- nlast;
    r.rid_result <- nresult
  end;
  client

let rid_reset r = Array.fill r.rid_last 0 (Array.length r.rid_last) min_int

let reply_to_client r (request : Types.request) result =
  let corrupt =
    match Behavior.active_strategy r.behavior ~now:(Engine.now r.engine) with
    | Some Behavior.Corrupt_execution -> true
    | Some _ | None -> false
  in
  let result = if corrupt then Int64.logxor result 0xBADBADL else result in
  send r ~dst:request.Types.client
    (Reply { Types.client = request.Types.client; rid = request.Types.rid; result; replica = r.id })

(* Without checkpointing, executed entries older than this many slots
   are pruned on a fixed retention window. With checkpointing enabled
   (config.checkpoint = Some _), truncation is instead gated by the
   stable-checkpoint low watermark so the retained suffix can always be
   served to a recovering replica. *)
let log_retention = 256

(* Outlier bound for overflow pruning: seqs this far outside the live
   window are corrupt (SEU-flipped counters), never executable, and
   would otherwise accumulate in the overflow array for the whole run. *)
let prune_margin = 1 lsl 15

(* An entry carries its payload once the Pre_prepare (single or batched)
   arrived; until then Prepare/Commit quorums may gather but nothing can
   commit or execute. *)
let entry_filled (e : entry) = e.request != no_request || e.batch != []

(* Per-request execution tail, shared by single and batched instances:
   exactly-once via the rid cache, pending/timer cleanup, reply. *)
let exec_one r (request : Types.request) =
  let client = request.Types.client and rid = request.Types.rid in
  let c = rid_slot r client in
  let result =
    if r.rid_last.(c) <> min_int && rid <= r.rid_last.(c) then r.rid_result.(c)
    else begin
      let result = App.execute r.app request.Types.payload in
      r.rid_last.(c) <- rid;
      r.rid_result.(c) <- result;
      result
    end
  in
  let digest = Types.request_digest request in
  Hashtbl.remove r.pending digest;
  cancel_request_timer r digest;
  if !Obs.trace_on then
    Ring.async_end r.obs.Obs.ring ~time:(Engine.now r.engine) ~cat:Obs.Cat.repl
      ~id:(Obs.repl_request_span ~replica:r.id ~client ~rid)
      ~arg:0;
  reply_to_client r request result

(* Execute committed entries in sequence order. The rid table provides
   exactly-once semantics per client and caches the last reply. With
   checkpointing on, execution additionally (a) refuses to pass the
   high watermark, (b) snapshots and votes at checkpoint boundaries,
   and (c) defers log truncation to stable-checkpoint advances. *)
let rec try_execute r =
  let seq = r.last_exec + 1 in
  let gate_ok =
    match r.cp with
    | Some cp when not !Checkpoint.test_ignore_watermarks -> seq <= Checkpoint.high cp
    | Some _ | None -> true
  in
  if gate_ok then begin
    let slot = Slot_ring.slot r.log seq in
    if slot >= 0 then begin
      let e = Slot_ring.entry r.log slot in
      if e.committed && (not e.executed) && entry_filled e then begin
        (match r.cp with
        | Some cp when r.chk >= 0 ->
          Check.exec_window ~session:r.chk ~replica:r.id ~seq ~low:(Checkpoint.low cp)
            ~high:(Checkpoint.high cp)
            ~faulty:(Behavior.is_faulty r.behavior)
        | Some _ | None -> ());
        e.executed <- true;
        r.last_exec <- r.last_exec + 1;
        if !Obs.trace_on then
          Ring.async_end r.obs.Obs.ring ~time:(Engine.now r.engine) ~cat:Obs.Cat.repl
            ~id:(Obs.repl_counter_span ~replica:r.id ~counter:r.last_exec)
            ~arg:0;
        if e.batch != [] then List.iter (exec_one r) e.batch else exec_one r e.request;
        (match r.batcher with Some b -> Batcher.kick b | None -> ());
        (match r.cp with
        | None ->
          Slot_ring.release r.log (r.last_exec - log_retention);
          Slot_ring.prune_outside r.log ~low:(r.last_exec - log_retention)
            ~high:(r.last_exec + prune_margin)
        | Some cp -> (
          match
            Checkpoint.note_exec cp ~seq:r.last_exec ~state:(App.state r.app)
              ~rid_last:r.rid_last ~rid_result:r.rid_result
          with
          | Some d ->
            broadcast r ~to_:r.peer_ids (Checkpoint_vote { seq = r.last_exec; digest = d });
            let prev = Checkpoint.note_vote cp ~seq:r.last_exec ~digest:d ~voter:r.id in
            on_cp_advance r cp prev
          | None -> ()));
        try_execute r
      end
    end
  end

(* A checkpoint certificate completed and the low watermark moved from
   [prev] (or [prev < 0]: no advance). Truncate the covered log prefix,
   sweep corrupt-seq outliers out of the overflow array, and resume
   execution in case it was parked at the old high watermark. *)
and on_cp_advance r cp prev =
  if prev >= 0 then begin
    let lo = Checkpoint.low cp in
    for s = prev + 1 to lo do
      Slot_ring.release r.log s
    done;
    Slot_ring.prune_outside r.log ~low:(lo + 1) ~high:(Checkpoint.high cp + prune_margin);
    r.stats.Stats.checkpoints <- r.stats.Stats.checkpoints + 1;
    (* The high watermark moved: parked batches may seal now. *)
    (match r.batcher with Some b -> Batcher.kick b | None -> ());
    try_execute r
  end

(* --- certified state transfer --- *)

let cancel_recover_timer r =
  match r.recover_timer with
  | Some h ->
    Engine.cancel r.engine h;
    r.recover_timer <- None
  | None -> ()

(* Fetch the latest certified checkpoint from the peers, re-asking on a
   request-timeout cadence until a transfer installs (peers serving
   nothing — e.g. no stable checkpoint yet — stay silent). *)
let start_recovery (r : replica) cp =
  Checkpoint.begin_recovery cp ~now:(Engine.now r.engine);
  let rec arm () =
    cancel_recover_timer r;
    r.recover_timer <-
      Some
        (Engine.schedule r.engine ~delay:r.config.request_timeout (fun () ->
             r.recover_timer <- None;
             if r.online && Checkpoint.recovering cp then begin
               broadcast r ~to_:r.peer_ids (Fetch_state { have = Checkpoint.low cp });
               arm ()
             end))
  in
  broadcast r ~to_:r.peer_ids (Fetch_state { have = Checkpoint.low cp });
  arm ()

(* Transfer by certificate whenever the group provably moved past us:
   triggered by [set_online] after a wipe and by a checkpoint
   certificate forming on a boundary we never executed. *)
let maybe_catchup r cp =
  if Checkpoint.needs_catchup cp && not (Checkpoint.recovering cp) then start_recovery r cp

(* The executed log suffix strictly above [from], ascending and
   gapless; stops early at the first missing or unexecuted slot (the
   receiver then lands slightly behind and catches up normally). *)
let log_suffix r ~from =
  let acc = ref [] in
  let seq = ref (from + 1) in
  let continue = ref true in
  while !continue && !seq <= r.last_exec do
    let slot = Slot_ring.slot r.log !seq in
    if slot >= 0 then begin
      let e = Slot_ring.entry r.log slot in
      if e.executed && entry_filled e then begin
        acc := (!seq, (if e.batch != [] then e.batch else [ e.request ])) :: !acc;
        incr seq
      end
      else continue := false
    end
    else continue := false
  done;
  List.rev !acc

let on_fetch_state r ~src ~have =
  match r.cp with
  | None -> ()
  | Some cp -> (
    match Checkpoint.serve cp ~view:r.view ~have ~suffix:(log_suffix r ~from:(Checkpoint.low cp)) with
    | Some chunks -> List.iter (fun c -> send r ~dst:src (State_chunk c)) chunks
    | None -> ())

let on_checkpoint_vote r ~src ~seq ~digest =
  match r.cp with
  | None -> ()
  | Some cp ->
    let prev = Checkpoint.note_vote cp ~seq ~digest ~voter:src in
    on_cp_advance r cp prev;
    maybe_catchup r cp

(* Install a completed, verified transfer: adopt the certified state
   and reply cache, replay the log suffix (no client replies — the
   group already answered), and rejoin execution at the tip. *)
let install_transfer r cp (c : Checkpoint.completion) =
  cancel_recover_timer r;
  let prev_low = Checkpoint.low cp in
  r.view <- max r.view c.Checkpoint.c_view;
  r.vc_voted <- max r.vc_voted r.view;
  App.set_state r.app c.Checkpoint.c_state;
  rid_reset r;
  List.iter
    (fun (client, rid, result) ->
      let i = rid_slot r client in
      r.rid_last.(i) <- rid;
      r.rid_result.(i) <- result)
    c.Checkpoint.c_rids;
  r.last_exec <- c.Checkpoint.c_cert.Checkpoint.cp_seq;
  Checkpoint.install cp c;
  List.iter
    (fun (seq, reqs) ->
      List.iter
        (fun (req : Types.request) ->
          let i = rid_slot r req.Types.client in
          if not (r.rid_last.(i) <> min_int && req.Types.rid <= r.rid_last.(i)) then begin
            let result = App.execute r.app req.Types.payload in
            r.rid_last.(i) <- req.Types.rid;
            r.rid_result.(i) <- result
          end)
        reqs;
      r.last_exec <- seq)
    c.Checkpoint.c_suffix;
  r.next_seq <- max r.next_seq (r.last_exec + 1);
  for s = prev_low + 1 to r.last_exec do
    Slot_ring.release r.log s
  done;
  Slot_ring.prune_outside r.log ~low:(Checkpoint.low cp + 1)
    ~high:(Checkpoint.high cp + prune_margin);
  r.stats.Stats.state_transfers <- r.stats.Stats.state_transfers + 1;
  r.stats.Stats.transfer_bytes <- r.stats.Stats.transfer_bytes + c.Checkpoint.c_bytes;
  r.stats.Stats.transfer_cycles <- r.stats.Stats.transfer_cycles + c.Checkpoint.c_elapsed;
  try_execute r

let on_state_chunk r ~src chunk =
  match r.cp with
  | None -> ()
  | Some cp -> (
    match Checkpoint.feed cp ~src ~now:(Engine.now r.engine) chunk with
    | None -> ()
    | Some c ->
      if r.chk >= 0 then
        Check.transfer_applied ~session:r.chk ~replica:r.id
          ~seq:c.Checkpoint.c_cert.Checkpoint.cp_seq
          ~claimed:c.Checkpoint.c_cert.Checkpoint.cp_digest ~actual:c.Checkpoint.c_actual
          ~faulty:(Behavior.is_faulty r.behavior);
      if
        (c.Checkpoint.c_valid || !Checkpoint.test_unverified_transfer)
        && c.Checkpoint.c_cert.Checkpoint.cp_seq > r.last_exec
      then install_transfer r cp c
      (* Invalid or stale: stay recovering; the retry timer re-fetches. *))

let try_commit r ~seq (e : entry) =
  if (not e.committed)
     && Quorum.reached e.commits ~threshold:((2 * r.f) + 1)
     && Quorum.reached e.prepares ~threshold:((2 * r.f) + 1)
     && entry_filled e
  then begin
    e.committed <- true;
    if r.chk >= 0 then begin
      Check.commit ~session:r.chk ~replica:r.id ~view:r.view ~seq ~digest:e.digest
        ~signers:(Quorum.count e.commits)
        ~quorum:((2 * r.f) + 1)
        ~faulty:(Behavior.is_faulty r.behavior);
      if e.batch != [] then begin
        let len = List.length e.batch in
        List.iteri
          (fun pos (req : Types.request) ->
            Check.batch_commit ~session:r.chk ~replica:r.id ~view:r.view ~seq ~pos ~len
              ~client:req.Types.client ~rid:req.Types.rid
              ~faulty:(Behavior.is_faulty r.behavior))
          e.batch
      end
    end;
    try_execute r
  end

let send_commit_if_prepared r ~seq (e : entry) =
  if (not e.sent_commit) && entry_filled e
     && Quorum.reached e.prepares ~threshold:((2 * r.f) + 1)
  then begin
    e.sent_commit <- true;
    e.commits <- Quorum.add e.commits r.id;
    broadcast r ~to_:r.peer_ids (Commit { view = r.view; seq; digest = e.digest });
    try_commit r ~seq e
  end

(* --- view changes --- *)

let start_vc_timer r digest =
  if not (Digest_map.mem r.timers digest) then
    Digest_map.set r.timers digest
      (Engine.schedule r.engine ~delay:r.config.vc_timeout (fun () ->
           Digest_map.remove r.timers digest;
           if r.online && Hashtbl.mem r.pending digest then begin
             (* Escalate past views whose primary never answered. *)
             let new_view = max r.view r.vc_voted + 1 in
             r.vc_voted <- new_view;
             broadcast r ~to_:r.all_ids (View_change { new_view; last_exec = r.last_exec })
           end))

let order_request r (request : Types.request) =
  let digest = Types.request_digest request in
  if not (Digest_map.mem r.ordered digest) then begin
    let seq = r.next_seq in
    r.next_seq <- r.next_seq + 1;
    Digest_map.set r.ordered digest seq;
    if !Obs.trace_on then
      Ring.instant r.obs.Obs.ring ~time:(Engine.now r.engine) ~cat:Obs.Cat.repl
        ~id:(Obs.repl_event ~replica:r.id ~code:Obs.code_pre_prepare)
        ~arg:seq;
    let equivocating =
      match Behavior.active_strategy r.behavior ~now:(Engine.now r.engine) with
      | Some Behavior.Equivocate -> true
      | Some _ | None -> false
    in
    let e = entry_for r ~view:r.view ~seq ~digest in
    if e != null_entry then begin
      e.request <- request;
      e.prepares <- Quorum.add e.prepares r.id
    end;
    let backups = r.peer_ids in
    let lies = r.f + 1 in
    for i = 0 to Array.length backups - 1 do
      let digest' =
        (* An equivocating primary tells half the backups a different
           story. The truthful half is too small to form a 2f+1 quorum,
           so the slot stalls until a view change evicts the primary. *)
        if equivocating && i < lies then Hash.combine digest (Hash.of_string "lie") else digest
      in
      send r ~dst:backups.(i) (Pre_prepare { view = r.view; seq; digest = digest'; request })
    done
  end

(* Batched twin of [order_request]: one sequence number covers the whole
   batch, agreed under its batch digest, shipped as one (multicast-able)
   flight per destination. Dedup happened on the way into the batcher, so
   the sealed list is ordered verbatim — which is what lets the
   [Batcher.test_duplicate_first] mutant actually reach agreement. *)
let order_batch r (requests : Types.request list) =
  if requests <> [] then begin
    let digest = Types.batch_digest requests in
    let seq = r.next_seq in
    r.next_seq <- r.next_seq + 1;
    List.iter
      (fun (req : Types.request) -> Digest_map.set r.ordered (Types.request_digest req) seq)
      requests;
    if !Obs.trace_on then
      Ring.instant r.obs.Obs.ring ~time:(Engine.now r.engine) ~cat:Obs.Cat.repl
        ~id:(Obs.repl_event ~replica:r.id ~code:Obs.code_pre_prepare)
        ~arg:seq;
    let equivocating =
      match Behavior.active_strategy r.behavior ~now:(Engine.now r.engine) with
      | Some Behavior.Equivocate -> true
      | Some _ | None -> false
    in
    let e = entry_for r ~view:r.view ~seq ~digest in
    if e != null_entry then begin
      e.batch <- requests;
      e.prepares <- Quorum.add e.prepares r.id
    end;
    let backups = r.peer_ids in
    if equivocating then begin
      let lies = r.f + 1 in
      for i = 0 to Array.length backups - 1 do
        let digest' = if i < lies then Hash.combine digest (Hash.of_string "lie") else digest in
        send r ~dst:backups.(i) (Pre_prepare_b { view = r.view; seq; digest = digest'; requests })
      done
    end
    else broadcast r ~to_:backups (Pre_prepare_b { view = r.view; seq; digest; requests })
  end

let adopt_new_view r ~view ~start_seq ~state ~rid_table =
  (match r.batcher with Some b -> Batcher.clear b | None -> ());
  r.view <- view;
  r.vc_voted <- max r.vc_voted view;
  Slot_ring.reset r.log;
  Digest_map.reset r.ordered;
  App.set_state r.app state;
  r.last_exec <- start_seq - 1;
  r.next_seq <- start_seq;
  rid_reset r;
  List.iter
    (fun (client, (rid, result)) ->
      let c = rid_slot r client in
      r.rid_last.(c) <- rid;
      r.rid_result.(c) <- result)
    rid_table;
  (* Forget cached replies consistent with the transferred state only;
     pending requests restart their patience. *)
  Digest_map.iter (fun _ h -> Engine.cancel r.engine h) r.timers;
  Digest_map.reset r.timers;
  (* The new view is a fresh proof baseline: watermarks rebase onto the
     adopted last_exec and any in-flight transfer becomes stale. *)
  (match r.cp with
  | Some cp ->
    cancel_recover_timer r;
    Checkpoint.rebase cp ~seq:(start_seq - 1)
  | None -> ());
  Hashtbl.iter (fun digest _ -> start_vc_timer r digest) r.pending

let rid_table_list r =
  let acc = ref [] in
  for c = Array.length r.rid_last - 1 downto 0 do
    if r.rid_last.(c) <> min_int then acc := (c, (r.rid_last.(c), r.rid_result.(c))) :: !acc
  done;
  !acc

let become_primary r ~view ~start_seq =
  let rid_table = rid_table_list r in
  let state = App.state r.app in
  adopt_new_view r ~view ~start_seq ~state ~rid_table;
  broadcast r ~to_:r.peer_ids (New_view { view; start_seq; state; rid_table });
  (* Re-propose everything still pending, deterministically ordered. *)
  let pending = Hashtbl.fold (fun _ req acc -> req :: acc) r.pending [] in
  let pending =
    List.sort
      (fun (a : Types.request) b -> compare (a.Types.client, a.Types.rid) (b.Types.client, b.Types.rid))
      pending
  in
  List.iter (order_request r) pending

let on_view_change r ~src ~new_view ~last_exec =
  if new_view > r.view then begin
    let voters =
      Quorum.Rounds.note r.vc_rounds ~current:r.view ~view:new_view ~voter:src ~value:last_exec
    in
    (* Join the view change once f+1 replicas are committed to it: at least
       one of them is honest, so the timeout was genuine. *)
    if voters >= r.f + 1 && r.vc_voted < new_view then begin
      r.vc_voted <- new_view;
      broadcast r ~to_:r.all_ids (View_change { new_view; last_exec = r.last_exec })
    end;
    if voters >= (2 * r.f) + 1 && primary_of ~view:new_view ~n:r.n = r.id then begin
      let max_exec = Quorum.Rounds.max_value r.vc_rounds ~view:new_view ~default:r.last_exec in
      r.stats.Stats.view_changes <- r.stats.Stats.view_changes + 1;
      if !Obs.metrics_on then Registry.incr r.obs.Obs.metrics r.obs_vc;
      if !Obs.trace_on then
        Ring.instant r.obs.Obs.ring ~time:(Engine.now r.engine) ~cat:Obs.Cat.repl
          ~id:(Obs.repl_event ~replica:r.id ~code:Obs.code_view_change)
          ~arg:new_view;
      become_primary r ~view:new_view ~start_seq:(max_exec + 1)
    end
  end

(* --- message handling --- *)

let on_request r (request : Types.request) =
  let digest = Types.request_digest request in
  let client = request.Types.client in
  let c = rid_slot r client in
  if r.rid_last.(c) <> min_int && request.Types.rid <= r.rid_last.(c) then
    (* Already executed: re-send the cached reply. *)
    reply_to_client r request r.rid_result.(c)
  else begin
    if !Obs.trace_on && not (Hashtbl.mem r.pending digest) then
      Ring.async_begin r.obs.Obs.ring ~time:(Engine.now r.engine) ~cat:Obs.Cat.repl
        ~id:(Obs.repl_request_span ~replica:r.id ~client ~rid:request.Types.rid)
        ~arg:0;
    let was_pending = Hashtbl.mem r.pending digest in
    Hashtbl.replace r.pending digest request;
    if is_primary r then (
      match r.batcher with
      | Some b ->
        (* A retransmission of a request that is already buffered here or
           ordered-but-unexecuted must not enter a second batch; pending
           membership covers exactly that interval. *)
        if not (was_pending || Digest_map.mem r.ordered digest) then Batcher.add b request
      | None -> order_request r request)
    else begin
      (* Forward to the primary and watch it. *)
      send r ~dst:(primary_of ~view:r.view ~n:r.n) (Request request);
      start_vc_timer r digest
    end
  end

let on_pre_prepare r ~src ~view ~seq ~digest ~request =
  if view = r.view && src = primary_of ~view ~n:r.n && not (is_primary r) then begin
    if Hash.equal digest (Types.request_digest request) then begin
      Hashtbl.replace r.pending (Types.request_digest request) request;
      let e = entry_for r ~view ~seq ~digest in
      if e != null_entry && Hash.equal e.digest digest then begin
        e.request <- request;
        e.prepares <- Quorum.add e.prepares src;
        (* our own prepare vote *)
        if not (Quorum.mem e.prepares r.id) then begin
          e.prepares <- Quorum.add e.prepares r.id;
          broadcast r ~to_:r.peer_ids (Prepare { view; seq; digest })
        end;
        send_commit_if_prepared r ~seq e
      end
    end
    else begin
      (* Digest mismatch: an equivocating or corrupt primary. Keep the
         request pending and let the timer push a view change. *)
      Hashtbl.replace r.pending (Types.request_digest request) request;
      start_vc_timer r (Types.request_digest request)
    end
  end

let on_pre_prepare_b r ~src ~view ~seq ~digest ~requests =
  if view = r.view && src = primary_of ~view ~n:r.n && (not (is_primary r)) && requests <> []
  then begin
    if Hash.equal digest (Types.batch_digest requests) then begin
      List.iter
        (fun (req : Types.request) -> Hashtbl.replace r.pending (Types.request_digest req) req)
        requests;
      let e = entry_for r ~view ~seq ~digest in
      if e != null_entry && Hash.equal e.digest digest then begin
        e.batch <- requests;
        e.prepares <- Quorum.add e.prepares src;
        if not (Quorum.mem e.prepares r.id) then begin
          e.prepares <- Quorum.add e.prepares r.id;
          broadcast r ~to_:r.peer_ids (Prepare { view; seq; digest })
        end;
        send_commit_if_prepared r ~seq e
      end
    end
    else
      (* Batch digest mismatch: equivocating or corrupt primary. Watch
         every carried request; the timers push a view change. *)
      List.iter
        (fun (req : Types.request) ->
          Hashtbl.replace r.pending (Types.request_digest req) req;
          start_vc_timer r (Types.request_digest req))
        requests
  end

let on_prepare r ~src ~view ~seq ~digest =
  if view = r.view then begin
    let e = entry_for r ~view ~seq ~digest in
    if e != null_entry && Hash.equal e.digest digest then begin
      e.prepares <- Quorum.add e.prepares src;
      send_commit_if_prepared r ~seq e
    end
  end

let on_commit r ~src ~view ~seq ~digest =
  if view = r.view then begin
    let e = entry_for r ~view ~seq ~digest in
    if e != null_entry && Hash.equal e.digest digest then begin
      e.commits <- Quorum.add e.commits src;
      try_commit r ~seq e
    end
  end

let on_new_view r ~src ~view ~start_seq ~state ~rid_table =
  if view > r.view && src = primary_of ~view ~n:r.n then adopt_new_view r ~view ~start_seq ~state ~rid_table

let handle (r : replica) ~src msg =
  let now = Engine.now r.engine in
  if r.online && not (Behavior.is_crashed r.behavior ~now) then
    match msg with
    | Request request -> on_request r request
    | Pre_prepare { view; seq; digest; request } -> on_pre_prepare r ~src ~view ~seq ~digest ~request
    | Pre_prepare_b { view; seq; digest; requests } ->
      on_pre_prepare_b r ~src ~view ~seq ~digest ~requests
    | Prepare { view; seq; digest } -> on_prepare r ~src ~view ~seq ~digest
    | Commit { view; seq; digest } -> on_commit r ~src ~view ~seq ~digest
    | View_change { new_view; last_exec } -> on_view_change r ~src ~new_view ~last_exec
    | New_view { view; start_seq; state; rid_table } ->
      on_new_view r ~src ~view ~start_seq ~state ~rid_table
    | Checkpoint_vote { seq; digest } -> on_checkpoint_vote r ~src ~seq ~digest
    | Fetch_state { have } -> on_fetch_state r ~src ~have
    | State_chunk chunk -> on_state_chunk r ~src chunk
    | Reply _ -> ()

(* --- system assembly --- *)

let make_replica engine fabric config stats ~id ~behavior ~chk =
  let obs = Engine.obs engine in
  let obs_vc =
    if !Obs.metrics_on then Registry.counter obs.Obs.metrics "repl.view_changes" else 0
  in
  let n = n_replicas config in
  {
    id;
    n;
    f = config.f;
    engine;
    fabric;
    config;
    behavior;
    app = App.accumulator ();
    stats;
    online = true;
    view = 0;
    next_seq = 1;
    last_exec = 0;
    log = Slot_ring.create ~capacity:(2 * log_retention) ~fresh:fresh_entry;
    ordered = Digest_map.create ~capacity:64 ();
    pending = Hashtbl.create 16;
    rid_last = Array.make (n + config.n_clients) min_int;
    rid_result = Array.make (n + config.n_clients) 0L;
    timers = Digest_map.create ~capacity:16 ();
    vc_rounds = Quorum.Rounds.create ~n ();
    vc_voted = 0;
    all_ids = Array.init n Fun.id;
    peer_ids = Array.init (n - 1) (fun i -> if i < id then i else i + 1);
    mcast = (if config.multicast then fabric.Transport.multicast else None);
    batcher = None;
    obs;
    obs_vc;
    chk;
    cp =
      (match config.checkpoint with
      | Some c -> Some (Checkpoint.create c ~obs ~quorum:((2 * config.f) + 1))
      | None -> None);
    recover_timer = None;
  }

(* The batcher closures need the replica record, so it is attached after
   construction. An inactive (armed-but-unused) batching config creates
   no batcher at all: the ordering path stays the legacy one, event for
   event. *)
let attach_batcher engine (r : replica) =
  match r.config.batching with
  | Some b when Batcher.active b ->
    let ready () =
      r.next_seq - r.last_exec - 1 < b.Types.pipeline_depth
      && (match r.cp with
         | Some cp when not !Checkpoint.test_ignore_watermarks -> r.next_seq <= Checkpoint.high cp
         | Some _ | None -> true)
    in
    let occupancy () = r.next_seq - r.last_exec - 1 in
    r.batcher <-
      Some (Batcher.create ~engine ~cfg:b ~seal:(fun reqs -> order_batch r reqs) ~ready ~occupancy)
  | Some _ | None -> ()

let start engine fabric config ?behaviors () =
  let n = n_replicas config in
  Quorum.check_n n "Pbft.start";
  let chk = if !Check.enabled then Check.new_session ~protocol:"pbft" else -1 in
  let behaviors =
    match behaviors with
    | Some b ->
      if Array.length b <> n then invalid_arg "Pbft.start: behaviors must cover every replica";
      b
    | None -> Array.make n Behavior.honest
  in
  if fabric.Transport.n_endpoints < n + config.n_clients then
    invalid_arg "Pbft.start: fabric too small";
  let stats = Stats.create () in
  let replicas =
    Array.init n (fun id -> make_replica engine fabric config stats ~id ~behavior:behaviors.(id) ~chk)
  in
  Array.iter
    (fun r ->
      attach_batcher engine r;
      fabric.Transport.set_handler r.id (fun ~src msg -> handle r ~src msg))
    replicas;
  let clients =
    Array.init config.n_clients (fun i ->
        Client.create engine fabric ~id:(n + i) ~n_replicas:n ~quorum:(config.f + 1)
          ~retry_timeout:config.request_timeout ~stats
          ~to_msg:(fun request -> Request request)
          ~of_msg:(function Reply reply -> Some reply | _ -> None)
          ())
  in
  { engine; fabric; config; replicas; clients; shared_stats = stats }

let submit t ~client ~payload =
  if client < 0 || client >= Array.length t.clients then invalid_arg "Pbft.submit: unknown client";
  Client.submit t.clients.(client) ~payload

let stats t = t.shared_stats

let view t ~replica = t.replicas.(replica).view

let replica_state t ~replica = App.state t.replicas.(replica).app

let set_replica_state t ~replica state = App.set_state t.replicas.(replica).app state

let replica_online t ~replica = t.replicas.(replica).online

let set_offline t ~replica =
  let r = t.replicas.(replica) in
  r.online <- false;
  Digest_map.iter (fun _ h -> Engine.cancel r.engine h) r.timers;
  Digest_map.reset r.timers;
  (match r.batcher with Some b -> Batcher.clear b | None -> ());
  cancel_recover_timer r

let set_online t ~replica =
  let r = t.replicas.(replica) in
  if not r.online then begin
    r.online <- true;
    match r.cp with
    | Some cp ->
      (* Rejuvenation wiped the replica: restart from nothing and rejoin
         by fetching the latest certified checkpoint plus log suffix
         from the peers — state is earned, not received for free. *)
      r.view <- 0;
      r.vc_voted <- 0;
      r.last_exec <- 0;
      r.next_seq <- 1;
      App.set_state r.app 0L;
      rid_reset r;
      Slot_ring.reset r.log;
      Digest_map.reset r.ordered;
      Hashtbl.reset r.pending;
      Checkpoint.reset cp;
      start_recovery r cp
    | None -> (
      (* Legacy model: free state copy from the most advanced online
         peer (the hand-waved post-reconfiguration fetch). *)
      let best = ref None in
      Array.iter
        (fun peer ->
          if peer.id <> r.id && peer.online then
            match !best with
            | Some b when b.last_exec >= peer.last_exec -> ()
            | Some _ | None -> best := Some peer)
        t.replicas;
      match !best with
      | Some peer ->
        r.view <- peer.view;
        r.vc_voted <- max r.vc_voted peer.view;
        r.last_exec <- peer.last_exec;
        r.next_seq <- peer.last_exec + 1;
        App.set_state r.app (App.state peer.app);
        rid_reset r;
        for c = 0 to Array.length peer.rid_last - 1 do
          if peer.rid_last.(c) <> min_int then begin
            let i = rid_slot r c in
            r.rid_last.(i) <- peer.rid_last.(c);
            r.rid_result.(i) <- peer.rid_result.(c)
          end
        done;
        Slot_ring.reset r.log;
        Digest_map.reset r.ordered;
        Hashtbl.reset r.pending
      | None -> ())
  end
