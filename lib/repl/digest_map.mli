(** Open-addressed map from 64-bit digests ({!Resoc_crypto.Hash.t}) to
    arbitrary values — the replication layer's replacement for
    [(Hash.t, _) Hashtbl.t] on the hot path. Linear probing over a
    power-of-two table, tombstone deletion, no per-operation allocation
    in steady state.

    Iteration order is the (deterministic) table order, not insertion
    order; callers that need a canonical order must sort, as they
    already do for request re-proposal. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] makes an empty map; [capacity] is rounded up to a power
    of two (minimum 8). *)

val length : 'a t -> int

val mem : 'a t -> int64 -> bool

val set : 'a t -> int64 -> 'a -> unit
(** Insert or overwrite ([Hashtbl.replace] semantics). *)

val get : 'a t -> int64 -> 'a option
(** Allocates the [Some]; hot paths should use {!index} / {!value_at}. *)

val remove : 'a t -> int64 -> unit

val index : 'a t -> int64 -> int
(** Slot of the key, or [-1] if absent. Valid until the next [set],
    [remove] or [reset]. With {!value_at} / {!remove_at} this gives
    find-and-remove in one probe sequence with zero allocation. *)

val value_at : 'a t -> int -> 'a
(** The value in a slot returned by {!index} (which must be [>= 0]). *)

val remove_at : 'a t -> int -> unit
(** Delete the entry in a slot returned by {!index}. *)

val iter : (int64 -> 'a -> unit) -> 'a t -> unit

val fold : (int64 -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

val reset : 'a t -> unit
(** Empty the map, keeping its capacity. *)
