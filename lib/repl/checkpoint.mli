(** Checkpoint certificates, watermarks, and chunked certified state
    transfer — shared by all five replication protocols.

    Every [interval] executions a replica digests its application state
    plus reply cache and broadcasts a signed checkpoint vote. When a
    quorum of matching votes accumulates (f+1 for the USIG/TrInc
    hybrids, 2f+1 for PBFT, a majority for the crash-model protocols)
    the boundary becomes the {e stable checkpoint}: the low watermark
    below which the agreement log (and the {!Slot_ring} overflow array)
    is truncated, and the state a wiped replica can fetch with a
    certificate instead of trusting a peer's bare copy. The high
    watermark [low + window * interval] gates execution so no replica
    runs unboundedly ahead of the last proof point.

    Transfer is chunked: a [Meta] chunk carries the certificate and the
    (small, modelled) application state, then [Rids] chunks stream the
    reply cache and [Suffix] chunks stream the executed log suffix
    above the checkpoint, [chunk] entries per message, each a separate
    NoC message whose nominal size feeds the fabric's latency model.
    The receiver recomputes the digest over what actually arrived and
    installs only if it matches the certificate ({!Check.transfer_applied}
    audits exactly this).

    The whole subsystem is config-gated: protocols hold a
    [Checkpoint.t option] that is [None] by default, so runs without
    checkpointing take one branch and stay byte-identical. *)

module Hash = Resoc_crypto.Hash
module Obs = Resoc_obs.Obs

type config = {
  interval : int;  (** Executions between checkpoint boundaries. *)
  window : int;  (** High watermark = low + window * interval. *)
  chunk : int;  (** Reply-cache / log-suffix entries per transfer chunk. *)
}

val default_config : config
(** [{ interval = 128; window = 4; chunk = 8 }]. *)

type cert = {
  cp_seq : int;  (** Checkpoint boundary (sequence number / counter). *)
  cp_digest : Hash.t;  (** Digest of state + reply cache at the boundary. *)
  cp_signers : Quorum.t;  (** Distinct replicas whose votes matched. *)
}

(** One state-transfer message. [Meta] opens the transfer and announces
    how many parts follow; parts from any other source (or outside an
    open transfer) are ignored. *)
type chunk =
  | Meta of { cert : cert; state : int64; view : int; rid_parts : int; suffix_parts : int }
  | Rids of { part : int; entries : (int * int * int64) list }
      (** Reply-cache rows: (client, last rid, last result). *)
  | Suffix of { part : int; entries : (int * Types.request list) list }
      (** Executed log entries above the checkpoint: (seq, batch). *)

val chunk_bytes : chunk -> int
(** Nominal wire size, fed to the NoC fabric's [size_of]. *)

type completion = {
  c_cert : cert;
  c_state : int64;
  c_rids : (int * int * int64) list;
  c_suffix : (int * Types.request list) list;  (** Ascending seq. *)
  c_view : int;  (** Serving replica's view at snapshot time. *)
  c_bytes : int;  (** Total nominal bytes since {!begin_recovery}. *)
  c_chunks : int;
  c_elapsed : int;  (** Cycles from {!begin_recovery} to the last chunk. *)
  c_actual : Hash.t;  (** Digest recomputed over the received state. *)
  c_valid : bool;  (** [c_actual] matches the certificate, quorum holds. *)
}

type t

val create : config -> obs:Obs.t -> quorum:int -> t
(** [quorum] is the certificate threshold (protocol-dependent). Obs
    metrics ([repl.ckpt.stable], [repl.transfer.*]) register here when
    the metrics gate is already on. *)

val low : t -> int
(** Low watermark: the stable checkpoint's boundary, initially 0. *)

val high : t -> int
(** High watermark: [low + window * interval]; execution must not pass it. *)

val is_boundary : t -> int -> bool

val digest : seq:int -> state:int64 -> rids:(int * int * int64) list -> Hash.t
(** Canonical checkpoint digest; [rids] must be ascending in client. *)

val snapshot_rids : rid_last:int array -> rid_result:int64 array -> (int * int * int64) list
(** Reply-cache rows with a recorded rid, ascending in client. *)

val note_exec :
  t -> seq:int -> state:int64 -> rid_last:int array -> rid_result:int64 array -> Hash.t option
(** Called after executing [seq]. At a boundary above the low watermark
    this snapshots state + reply cache into a pending slot and returns
    the digest the caller must broadcast (and vote for itself via
    {!note_vote}); [None] elsewhere. *)

val note_vote : t -> seq:int -> digest:Hash.t -> voter:int -> int
(** Record a checkpoint vote. Returns the {e previous} low watermark
    when this vote completed a certificate and advanced stability (the
    caller then releases log entries in (previous, new low]), or [-1].
    Votes that disagree with this replica's own digest are not counted;
    votes arriving before the replica executed the boundary are
    buffered against the first digest seen. *)

val needs_catchup : t -> bool
(** A certificate formed on a boundary this replica never executed: it
    has fallen behind the group and should recover by state transfer
    ({!begin_recovery} clears the flag). *)

val stable : t -> (cert * int64 * (int * int * int64) list) option
(** The stable checkpoint: certificate, state, reply cache. *)

val force_stable :
  t ->
  seq:int ->
  state:int64 ->
  rid_last:int array ->
  rid_result:int64 array ->
  voter:int ->
  unit
(** Crash-model self-stabilization: adopt this replica's own snapshot at
    [seq] as the stable checkpoint under a single-signer certificate,
    advancing the low watermark to [seq]. Primary-backup serves fetches
    from its execution tip this way — its Update stream carries full
    state but no replayable log, so serving the last periodic boundary
    would make a recovering primary re-issue sequence numbers the
    backups already executed. No-op when [seq] is at or below the
    current low watermark. Byzantine-quorum protocols must never call
    this: a single signer proves nothing there. *)

val serve :
  t ->
  view:int ->
  have:int ->
  suffix:(int * Types.request list) list ->
  chunk list option
(** Chunk the stable checkpoint for a replica whose low watermark is
    [have]: [None] when there is nothing newer to offer (or this
    replica is itself recovering). [suffix] is the caller's executed
    log above the checkpoint, ascending and gapless. *)

val begin_recovery : t -> now:int -> unit
(** Start (or restart) fetching: the next [Meta] chunk from any source
    opens an assembly. Resets the byte/chunk/latency accounting. *)

val recovering : t -> bool

val feed : t -> src:int -> now:int -> chunk -> completion option
(** Accept one transfer chunk while recovering. Returns the assembled
    completion when the last expected part arrives — the caller checks
    [c_valid], reports {!Check.transfer_applied}, and either
    {!install}s or re-issues the fetch. A finished assembly (valid or
    not) is discarded from [t] either way, so a retry starts clean. *)

val install : t -> completion -> unit
(** Adopt the transferred checkpoint as the stable one: low watermark
    jumps to [c_cert.cp_seq], recovery ends, obs transfer metrics are
    recorded. The caller installs app state / reply cache / log suffix
    itself. *)

val rebase : t -> seq:int -> unit
(** View change adopted a new baseline at [seq]: drop the stable
    snapshot and every pending tally, move the low watermark, and end
    any in-flight recovery (the view change delivered fresher state
    than the transfer would). *)

val reset : t -> unit
(** Wipe to the initial state (rejuvenation erases the replica). *)

val test_ignore_watermarks : bool ref
(** Test-only mutation knob: protocols skip the high-watermark
    execution gate, so {!Check.exec_window} must fire. *)

val test_unverified_transfer : bool ref
(** Test-only mutation knob: {!serve} corrupts the state it ships and
    receivers install completions without checking [c_valid], so
    {!Check.transfer_applied} must fire. *)
