(** Allocation-free quorum tracking for agreement protocols.

    A quorum is an int bitset over replica ids [0..62]: adding a vote,
    testing membership, and comparing the voter count against a 2f+1 or
    f+1 threshold are all register operations. This bounds protocol
    groups at 63 replicas (f <= 20 for PBFT), far beyond anything the
    SoC simulations instantiate; [start] functions validate the bound.

    Verified against a [Hashtbl]-of-voters reference model by qcheck
    (see test/test_quorum.ml). *)

type t = int
(** A set of voters. The representation is exposed so protocols can
    store quorums in mutable int fields of pooled entries without
    boxing; treat values as abstract outside this module. *)

val max_voters : int
(** 63: voter ids must satisfy [0 <= voter < max_voters]. *)

val empty : t

val add : t -> int -> t
(** [add t voter] is [t] with [voter]'s vote recorded; idempotent. The
    caller guarantees [0 <= voter < max_voters]. *)

val mem : t -> int -> bool

val count : t -> int
(** Number of distinct voters (popcount). *)

val reached : t -> threshold:int -> bool
(** [reached t ~threshold] is [count t >= threshold]. *)

val test_quorum_slack : int ref
(** Test-only mutation knob: a positive slack weakens every [reached]
    threshold by that many voters, simulating a protocol bug that
    accepts sub-quorum certificates. The resoc_check self-tests flip it
    to prove the checker catches the mutant; leave at [0] otherwise. *)

val check_n : int -> string -> unit
(** [check_n n label] raises [Invalid_argument] unless [0 <= n <= 63];
    protocols call it once at group construction. *)

(** View-change vote tallies: a fixed pool of rounds keyed by view, each
    a bitset plus a per-voter int payload. Replaces the
    [(view, (voter, value) Hashtbl.t) Hashtbl.t] nests: no allocation in
    steady state, slots for views the replica has passed are reused. *)
module Rounds : sig
  type t

  val create : n:int -> ?rounds:int -> unit -> t
  (** [create ~n ()] tracks votes from [n] replicas across (initially)
      4 concurrent views. *)

  val note : t -> current:int -> view:int -> voter:int -> value:int -> int
  (** [note t ~current ~view ~voter ~value] records the vote and returns
      the distinct-voter count for [view]. A repeat vote updates [value]
      but not the count. [current] is the replica's present view, used
      to reclaim stale slots. *)

  val max_value : t -> view:int -> default:int -> int
  (** Maximum payload among [view]'s voters, at least [default]. *)

  val reset : t -> unit
end
