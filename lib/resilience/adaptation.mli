(** Threat-adaptive resilience controller (§II.D).

    Periodically reads the {!Threat} detector and adjusts the fault budget f
    — scaling the replica group out when threat rises and back in when it
    subsides (hysteresis plus a cooldown prevent flapping). The mechanics of
    changing the group (spawning softcores on spare tiles, epoch change,
    state transfer) are behind the [scale_to] hook, so the controller works
    for protocol-level groups and for abstract compromise models alike. *)

type action = Raise_f of int | Lower_f of int
(** Payload is the new f. *)

type policy = {
  f_min : int;
  f_max : int;
  raise_threshold : float;  (** Threat level that triggers scale-out. *)
  lower_threshold : float;  (** Level below which to scale back in. *)
  eval_period : int;
  cooldown : int;  (** Minimum cycles between actions. *)
}

val default_policy : policy

type hooks = {
  current_f : unit -> int;
  scale_to : int -> unit;  (** Reconfigure the group for the new f. *)
}

type t

val start : Resoc_des.Engine.t -> policy -> Threat.t -> hooks -> t

val actions : t -> (int * action) list
(** Chronological (time, action) decisions. *)

val notify_partition : t -> reachable:int -> total:int -> unit
(** NoC partition report, typically wired from
    [Network.set_partition_handler]: [reachable] of [total] ordered
    src/dst pairs are currently connected. A {e decrease} in
    reachability feeds {!Threat.report} with a weight proportional to
    the newly-lost pair fraction, so severe partitions push the
    controller toward scale-out; repairs only rebase the baseline.
    Raises [Invalid_argument] when [total <= 0]. *)

val partitions : t -> (int * int * int) list
(** Chronological (time, reachable, total) connectivity-loss events. *)

val stop : t -> unit
