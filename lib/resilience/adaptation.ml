module Engine = Resoc_des.Engine

type action = Raise_f of int | Lower_f of int

type policy = {
  f_min : int;
  f_max : int;
  raise_threshold : float;
  lower_threshold : float;
  eval_period : int;
  cooldown : int;
}

let default_policy =
  {
    f_min = 1;
    f_max = 3;
    raise_threshold = 3.0;
    lower_threshold = 0.5;
    eval_period = 1_000;
    cooldown = 5_000;
  }

type hooks = { current_f : unit -> int; scale_to : int -> unit }

type t = {
  engine : Engine.t;
  policy : policy;
  threat : Threat.t;
  hooks : hooks;
  mutable last_action_at : int;
  mutable history : (int * action) list;  (* newest first *)
  mutable last_reachable : int;  (* -1 until the first partition report *)
  mutable partitions : (int * int * int) list;  (* (time, reachable, total), newest first *)
  mutable stopped : bool;
}

let evaluate t =
  let now = Engine.now t.engine in
  if now - t.last_action_at >= t.policy.cooldown then begin
    let level = Threat.level t.threat in
    let f = t.hooks.current_f () in
    if level >= t.policy.raise_threshold && f < t.policy.f_max then begin
      let f' = f + 1 in
      t.last_action_at <- now;
      t.history <- (now, Raise_f f') :: t.history;
      t.hooks.scale_to f'
    end
    else if level <= t.policy.lower_threshold && f > t.policy.f_min then begin
      let f' = f - 1 in
      t.last_action_at <- now;
      t.history <- (now, Lower_f f') :: t.history;
      t.hooks.scale_to f'
    end
  end

let start engine policy threat hooks =
  if policy.f_min < 0 || policy.f_max < policy.f_min then
    invalid_arg "Adaptation.start: inconsistent f bounds";
  if policy.eval_period <= 0 then invalid_arg "Adaptation.start: eval period must be positive";
  if policy.lower_threshold > policy.raise_threshold then
    invalid_arg "Adaptation.start: thresholds must leave a hysteresis band";
  let t =
    {
      engine;
      policy;
      threat;
      hooks;
      last_action_at = -policy.cooldown;
      history = [];
      last_reachable = -1;
      partitions = [];
      stopped = false;
    }
  in
  Engine.every engine ~period:policy.eval_period (fun () -> if not t.stopped then evaluate t);
  t

let actions t = List.rev t.history

(* Weight applied per fully-lost fabric: a partition cutting off 10% of
   src/dst pairs reports 2.5 — near the default raise threshold, so
   repeated or severe partitions trigger scale-out while a single healed
   blip decays away. *)
let partition_gain = 25.0

let notify_partition t ~reachable ~total =
  if total <= 0 then invalid_arg "Adaptation.notify_partition: total must be positive";
  if not t.stopped then begin
    let prev = if t.last_reachable < 0 then total else t.last_reachable in
    if reachable < prev then begin
      t.partitions <- (Engine.now t.engine, reachable, total) :: t.partitions;
      let lost_fraction = float_of_int (prev - reachable) /. float_of_int total in
      Threat.report t.threat ~weight:(partition_gain *. lost_fraction) ()
    end;
    t.last_reachable <- reachable
  end

let partitions t = List.rev t.partitions

let stop t = t.stopped <- true
