module Engine = Resoc_des.Engine
module Rng = Resoc_des.Rng
module Mesh = Resoc_noc.Mesh
module Network = Resoc_noc.Network
module Grid = Resoc_fabric.Grid
module Icap = Resoc_fabric.Icap
module Transport = Resoc_repl.Transport

type config = {
  mesh_width : int;
  mesh_height : int;
  grid_width : int;
  grid_height : int;
  noc : Network.config;
  seed : int64;
}

let default_config =
  {
    mesh_width = 4;
    mesh_height = 4;
    grid_width = 16;
    grid_height = 16;
    noc = Network.default_config;
    seed = 1L;
  }

(* Per-network statistics are polymorphic in the message type, so the SoC
   keeps monomorphic aggregate counters fed by closures. *)
type t = {
  config : config;
  engine : Engine.t;
  mesh : Mesh.t;
  grid : Grid.t;
  icap : Icap.t;
  mutable stat_probes : (unit -> int * int * int) list;
  mutable on_partition : (reachable:int -> total:int -> unit) option;
}

let create config =
  let engine = Engine.create ~seed:config.seed () in
  let mesh = Mesh.create ~width:config.mesh_width ~height:config.mesh_height in
  let grid = Grid.create ~width:config.grid_width ~height:config.grid_height in
  let icap = Icap.create engine grid () in
  { config; engine; mesh; grid; icap; stat_probes = []; on_partition = None }

let set_on_partition t f = t.on_partition <- Some f

let engine t = t.engine
let rng t = Rng.split (Engine.rng t.engine)
let mesh t = t.mesh
let grid t = t.grid
let icap t = t.icap

let spread_placement t ~n =
  let total = Mesh.n_nodes t.mesh in
  if n > total then invalid_arg "Soc.spread_placement: mesh too small";
  if n <= 0 then invalid_arg "Soc.spread_placement: need at least one tile";
  Array.init n (fun i -> i * total / n)

let noc_fabric t ~placement ~size_of =
  let n = Array.length placement in
  let seen = Hashtbl.create n in
  Array.iter
    (fun tile ->
      if Hashtbl.mem seen tile then invalid_arg "Soc.noc_fabric: placement must be injective";
      Hashtbl.replace seen tile ())
    placement;
  let network = Network.create t.engine t.mesh t.config.noc in
  (* Forward adaptive-routing partition reports to whoever registered
     interest (the field is read at call time, so registering after the
     fabric is built still works). *)
  Network.set_partition_handler network (fun ~reachable ~total ->
      match t.on_partition with Some f -> f ~reachable ~total | None -> ());
  let logical_of_tile = Hashtbl.create n in
  Array.iteri (fun logical tile -> Hashtbl.replace logical_of_tile tile logical) placement;
  let send ~src ~dst msg =
    Network.send network ~src:placement.(src) ~dst:placement.(dst) ~bytes_:(size_of msg) msg
  in
  let set_handler logical handler =
    Network.attach network ~node:placement.(logical) (fun ~src msg ->
        match Hashtbl.find_opt logical_of_tile src with
        | Some logical_src -> handler ~src:logical_src msg
        | None -> ())
  in
  let detach logical = Network.detach network ~node:placement.(logical) in
  t.stat_probes <-
    (fun () -> (Network.sent network, Network.bytes_sent network, Network.dropped network))
    :: t.stat_probes;
  (* Tree multicast, exposed only when the SoC's NoC config enables it:
     logical endpoints are translated to tiles in a reusable scratch
     array, so a protocol broadcast costs no allocation here. *)
  let multicast =
    if t.config.noc.Network.multicast then begin
      let scratch = ref (Array.make (max n 1) 0) in
      Some
        (fun ~src ~dsts ~n:k msg ->
          if k > Array.length !scratch then scratch := Array.make (2 * k) 0;
          let tiles = !scratch in
          for i = 0 to k - 1 do
            tiles.(i) <- placement.(dsts.(i))
          done;
          Network.multicast network ~src:placement.(src) ~dsts:tiles ~n:k
            ~bytes_:(size_of msg) msg)
    end
    else None
  in
  {
    Transport.n_endpoints = n;
    send;
    multicast;
    set_handler;
    detach;
    messages_sent = (fun () -> Network.sent network);
    bytes_sent = (fun () -> Network.bytes_sent network);
  }

let aggregate t pick =
  List.fold_left (fun acc probe -> acc + pick (probe ())) 0 t.stat_probes

let noc_messages t = aggregate t (fun (m, _, _) -> m)
let noc_bytes t = aggregate t (fun (_, b, _) -> b)
let noc_dropped t = aggregate t (fun (_, _, d) -> d)
