(** The paper's system, assembled: a BFT group on a mesh NoC whose replicas
    live in FPGA fabric regions, defended by diversity, staggered (diverse,
    optionally relocating) rejuvenation, and watched by an APT adversary
    with per-variant exploits and fabric backdoors.

    This is the integration point of every substrate library and the engine
    behind experiments E6/F1 and the domain examples: one [create], one
    [run], one {!report}. *)

module Engine = Resoc_des.Engine
module Trace = Resoc_des.Trace
module Register = Resoc_hw.Register
module Diversity = Resoc_resilience.Diversity
module Rejuvenation = Resoc_resilience.Rejuvenation
module Stats = Resoc_repl.Stats

type apt_config = {
  mean_exploit_cycles : float;
  exposure : int;  (** Continuous exposure before a ready exploit lands. *)
  backdoor_delay : int;  (** Compromise time via a trojaned fabric frame. *)
  detection_prob : float;  (** Chance a compromise is noticed... *)
  detection_delay : int;  (** ...this long after it happens, triggering a
                              reactive rejuvenation when enabled. *)
}

val default_apt : apt_config

type config = {
  soc : Soc.config;
  group : Group.spec;
  n_variants : int;
  shared_vuln_prob : float;
  diversity : Diversity.strategy;
  rejuvenation : Rejuvenation.policy option;  (** None = never rejuvenate. *)
  relocate_on_rejuvenation : bool;  (** Move the fabric region off
                                        (potentially trojaned) frames. *)
  reactive_rejuvenation : bool;  (** Rejuvenate on detected compromise. *)
  apt : apt_config option;
  trojaned_frames : (int * int) list;  (** Backdoors planted in the grid. *)
  region_edge : int;  (** Replica regions are edge x edge frames. *)
  sample_period : int;  (** Compromise-count sampling cadence. *)
}

val default_config : config
(** MinBFT f=1 on a 4x4 mesh, 4 variants, max-diversity, staggered diverse
    rejuvenation every 50k cycles, APT enabled, no trojans. *)

type report = {
  horizon : int;
  submitted : int;
  completed : int;
  availability : float;  (** completed / submitted. *)
  throughput_kcycle : float;
  latency_mean : float;
  latency_p99 : float;
  view_changes : int;
  wrong_replies : int;
  messages : int;
  bytes : int;
  rejuvenations : int;
  checkpoints : int;  (** Stable-checkpoint certificates formed (group-wide). *)
  state_transfers : int;  (** Certified transfers installed by rejoiners. *)
  transfer_bytes : int;  (** Nominal NoC bytes spent on transfer chunks. *)
  transfer_cycles_mean : float;  (** Mean fetch-to-install latency. *)
  compromises : int;  (** Total compromise events (incl. re-compromises). *)
  compromised_peak : int;  (** Max simultaneously-compromised replicas. *)
  failed_at : int option;  (** First instant more than f replicas were
                               compromised at once — BFT safety lost. *)
}

val pp_report : Format.formatter -> report -> unit

type t

val create : config -> t

val soc : t -> Soc.t
val group : t -> Group.t

val variant_of : t -> replica:int -> int

val compromised_now : t -> int

val trace : t -> Trace.t
(** Structured event log of the resilience machinery: compromises,
    rejuvenations, relocations, detections. Ring-buffered (last 4096). *)

val run : t -> horizon:int -> workload_period:int -> report
(** Drives a periodic workload (one request per client every
    [workload_period] cycles) until [horizon], then snapshots the report.
    Can be called once per system. *)
