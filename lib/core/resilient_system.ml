module Engine = Resoc_des.Engine
module Trace = Resoc_des.Trace
module Rng = Resoc_des.Rng
module Histogram = Resoc_des.Metrics.Histogram
module Register = Resoc_hw.Register
module Region = Resoc_fabric.Region
module Grid = Resoc_fabric.Grid
module Apt = Resoc_fault.Apt
module Common_mode = Resoc_fault.Common_mode
module Diversity = Resoc_resilience.Diversity
module Rejuvenation = Resoc_resilience.Rejuvenation
module Stats = Resoc_repl.Stats

type apt_config = {
  mean_exploit_cycles : float;
  exposure : int;
  backdoor_delay : int;
  detection_prob : float;
  detection_delay : int;
}

let default_apt =
  {
    mean_exploit_cycles = 200_000.0;
    exposure = 10_000;
    backdoor_delay = 50_000;
    detection_prob = 0.0;
    detection_delay = 5_000;
  }

type config = {
  soc : Soc.config;
  group : Group.spec;
  n_variants : int;
  shared_vuln_prob : float;
  diversity : Diversity.strategy;
  rejuvenation : Rejuvenation.policy option;
  relocate_on_rejuvenation : bool;
  reactive_rejuvenation : bool;
  apt : apt_config option;
  trojaned_frames : (int * int) list;
  region_edge : int;
  sample_period : int;
}

let default_config =
  {
    soc = Soc.default_config;
    group = Group.default_spec;
    n_variants = 4;
    shared_vuln_prob = 0.05;
    diversity = Diversity.Max_diversity;
    rejuvenation = Some { Rejuvenation.period = 50_000; downtime = 2_000 };
    relocate_on_rejuvenation = false;
    reactive_rejuvenation = false;
    apt = Some default_apt;
    trojaned_frames = [];
    region_edge = 2;
    sample_period = 500;
  }

type report = {
  horizon : int;
  submitted : int;
  completed : int;
  availability : float;
  throughput_kcycle : float;
  latency_mean : float;
  latency_p99 : float;
  view_changes : int;
  wrong_replies : int;
  messages : int;
  bytes : int;
  rejuvenations : int;
  checkpoints : int;
  state_transfers : int;
  transfer_bytes : int;
  transfer_cycles_mean : float;
  compromises : int;
  compromised_peak : int;
  failed_at : int option;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>horizon        %d cycles@,completed      %d/%d (availability %.3f)@,throughput     \
     %.2f req/kcycle@,latency        mean %.0f p99 %.0f cycles@,view changes   %d@,wrong \
     replies  %d@,noc messages   %d (%d bytes)@,rejuvenations  %d@,checkpoints    %d@,state \
     transfers %d (%d bytes, mean %.0f cycles)@,compromises    %d (peak simultaneous \
     %d)@,safety         %s@]"
    r.horizon r.completed r.submitted r.availability r.throughput_kcycle r.latency_mean
    r.latency_p99 r.view_changes r.wrong_replies r.messages r.bytes r.rejuvenations r.checkpoints
    r.state_transfers r.transfer_bytes r.transfer_cycles_mean r.compromises r.compromised_peak
    (match r.failed_at with
     | None -> "held for the whole run"
     | Some t -> Printf.sprintf "LOST at cycle %d (more than f compromised)" t)

type replica_site = {
  mutable slot : Grid.slot_id;
  mutable variant : int;
  apt_target : Apt.target option;
}

type t = {
  config : config;
  soc : Soc.t;
  group : Group.t;
  diversity : Diversity.t;
  sites : replica_site array;
  assignment : int array;
  rejuvenation : Rejuvenation.t option ref;
  apt : Apt.t option;
  rng : Rng.t;
  trace : Trace.t;
  mutable compromises : int;
  mutable compromised_peak : int;
  mutable failed_at : int option;
  mutable ran : bool;
}

let emit t level component msg =
  Trace.emit t.trace ~time:(Engine.now (Soc.engine t.soc)) level ~component msg

let compromised_now t =
  Array.fold_left
    (fun acc site ->
      match site.apt_target with
      | Some target when Apt.compromised target -> acc + 1
      | Some _ | None -> acc)
    0 t.sites

let note_compromise_level t =
  let now_count = compromised_now t in
  if now_count > t.compromised_peak then t.compromised_peak <- now_count;
  if now_count > t.group.Group.f && t.failed_at = None then begin
    t.failed_at <- Some (Engine.now (Soc.engine t.soc));
    emit t Trace.Error "safety" (fun () ->
        Printf.sprintf "more than f=%d replicas compromised simultaneously" t.group.Group.f)
  end

(* Grid placement for one replica region; trojan avoidance is a rejuvenation
   policy, not an initial-placement privilege (the integrator does not know
   where the backdoors are). *)
let place_site grid ~edge ~variant ~owner =
  match Grid.find_placement grid ~w:edge ~h:edge () with
  | None -> invalid_arg "Resilient_system: fabric grid too small for all replicas"
  | Some region ->
    (match Grid.place grid ~region ~variant ~owner with
     | Ok slot -> slot
     | Error e -> invalid_arg ("Resilient_system: placement failed: " ^ e))

let create (config : config) =
  let soc = Soc.create config.soc in
  let engine = Soc.engine soc in
  let rng = Soc.rng soc in
  List.iter (fun (x, y) -> Grid.mark_trojaned (Soc.grid soc) ~x ~y) config.trojaned_frames;
  let group = Group.build engine (Group.On_soc soc) config.group in
  let n = group.Group.n_replicas in
  let pool = Common_mode.create ~n_variants:config.n_variants ~shared_prob:config.shared_vuln_prob in
  let diversity = Diversity.create ~pool config.diversity in
  let assignment = Diversity.initial_assignment diversity ~n_replicas:n in
  let apt =
    match config.apt with
    | None -> None
    | Some a ->
      Some
        (Apt.create engine (Rng.split rng) ~n_variants:config.n_variants
           ~mean_exploit_cycles:a.mean_exploit_cycles ~exposure:a.exposure
           ~backdoor_delay:a.backdoor_delay ())
  in
  let rejuvenation = ref None in
  let t_ref = ref None in
  let on_compromise replica =
    match !t_ref with
    | None -> ()
    | Some t ->
      t.compromises <- t.compromises + 1;
      emit t Trace.Warn "apt" (fun () ->
          Printf.sprintf "replica %d compromised (variant %d)" replica
            t.sites.(replica).variant);
      note_compromise_level t;
      (match (config.apt, config.reactive_rejuvenation, !(t.rejuvenation)) with
       | Some a, true, Some mgr when a.detection_prob > 0.0 ->
         if Rng.bernoulli t.rng a.detection_prob then
           ignore
             (Engine.schedule engine ~delay:a.detection_delay (fun () ->
                  Rejuvenation.rejuvenate_now mgr ~replica))
       | _ -> ())
  in
  let sites =
    Array.init n (fun i ->
        let variant = assignment.(i) in
        let slot = place_site (Soc.grid soc) ~edge:config.region_edge ~variant ~owner:i in
        let apt_target =
          match apt with
          | None -> None
          | Some adversary ->
            let backdoored = Grid.slot_on_trojaned_frame (Soc.grid soc) slot in
            Some
              (Apt.register_target adversary ~id:i ~variant ~backdoored ~on_compromise ())
        in
        { slot; variant; apt_target })
  in
  let t =
    {
      config;
      soc;
      group;
      diversity;
      sites;
      assignment;
      rejuvenation;
      apt;
      rng;
      trace = Trace.create ();
      compromises = 0;
      compromised_peak = 0;
      failed_at = None;
      ran = false;
    }
  in
  t_ref := Some t;
  (match config.rejuvenation with
   | None -> ()
   | Some policy ->
     let hooks =
       {
         Rejuvenation.n_replicas = n;
         take_offline =
           (fun replica ->
             emit t Trace.Info "rejuvenation" (fun () ->
                 Printf.sprintf "replica %d going down for rejuvenation" replica);
             t.group.Group.set_offline ~replica;
             match (t.apt, sites.(replica).apt_target) with
             | Some adversary, Some target -> Apt.deactivate adversary target
             | _ -> ());
         bring_online = (fun replica -> t.group.Group.set_online ~replica);
         choose_variant =
           (fun replica ->
             Diversity.rejuvenation_variant t.diversity ~replica ~current:t.assignment);
         on_restart =
           (fun ~replica ~variant ->
             emit t Trace.Info "rejuvenation" (fun () ->
                 Printf.sprintf "replica %d restarted on variant %d" replica variant);
             let site = sites.(replica) in
             t.assignment.(replica) <- variant;
             site.variant <- variant;
             if t.config.relocate_on_rejuvenation then
               (match Grid.relocate (Soc.grid t.soc) site.slot ~avoid_trojaned:true () with
                | Ok region ->
                  emit t Trace.Info "fabric" (fun () ->
                      Format.asprintf "replica %d relocated to %a" replica
                        Resoc_fabric.Region.pp region)
                | Error e ->
                  emit t Trace.Warn "fabric" (fun () ->
                      Printf.sprintf "replica %d relocation failed: %s" replica e));
             Grid.set_variant (Soc.grid t.soc) site.slot variant;
             (match (t.apt, site.apt_target) with
              | Some adversary, Some target ->
                let backdoored = Grid.slot_on_trojaned_frame (Soc.grid t.soc) site.slot in
                Apt.rejuvenate adversary target ~variant ~backdoored ()
              | _ -> ());
             note_compromise_level t);
       }
     in
     rejuvenation := Some (Rejuvenation.start engine policy hooks));
  t

let soc t = t.soc
let group t = t.group

let variant_of t ~replica = t.sites.(replica).variant

let trace t = t.trace

let run t ~horizon ~workload_period =
  if t.ran then invalid_arg "Resilient_system.run: already ran";
  t.ran <- true;
  let engine = Soc.engine t.soc in
  if workload_period <= 0 then invalid_arg "Resilient_system.run: workload period must be positive";
  Engine.every engine ~period:workload_period (fun () ->
      if Engine.now engine < horizon then
        for client = 0 to t.config.group.Group.n_clients - 1 do
          t.group.Group.submit ~client ~payload:1L
        done);
  Engine.every engine ~period:t.config.sample_period (fun () -> note_compromise_level t);
  Engine.run ~until:horizon engine;
  let stats = t.group.Group.stats () in
  let rejuvenations =
    match !(t.rejuvenation) with Some mgr -> Rejuvenation.rejuvenations mgr | None -> 0
  in
  {
    horizon;
    submitted = stats.Stats.submitted;
    completed = stats.Stats.completed;
    availability =
      (if stats.Stats.submitted = 0 then 1.0
       else float_of_int stats.Stats.completed /. float_of_int stats.Stats.submitted);
    throughput_kcycle = Stats.throughput stats ~horizon;
    latency_mean = Histogram.mean stats.Stats.latency;
    latency_p99 = Histogram.percentile stats.Stats.latency 99.0;
    view_changes = stats.Stats.view_changes;
    wrong_replies = stats.Stats.wrong_replies;
    messages = t.group.Group.messages ();
    bytes = t.group.Group.bytes ();
    rejuvenations;
    checkpoints = stats.Stats.checkpoints;
    state_transfers = stats.Stats.state_transfers;
    transfer_bytes = stats.Stats.transfer_bytes;
    transfer_cycles_mean =
      (if stats.Stats.state_transfers = 0 then 0.0
       else float_of_int stats.Stats.transfer_cycles /. float_of_int stats.Stats.state_transfers);
    compromises = t.compromises;
    compromised_peak = t.compromised_peak;
    failed_at = t.failed_at;
  }
