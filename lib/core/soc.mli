(** SoC assembly: the simulated chip every experiment runs on.

    Bundles the engine, the mesh NoC, and the FPGA fabric grid, and adapts
    the NoC into the protocol-facing {!Resoc_repl.Transport.fabric} so the
    same protocol code that runs on the test hub runs over real simulated
    links with contention and failures. *)

module Engine = Resoc_des.Engine
module Rng = Resoc_des.Rng
module Mesh = Resoc_noc.Mesh
module Grid = Resoc_fabric.Grid
module Icap = Resoc_fabric.Icap
module Transport = Resoc_repl.Transport

type config = {
  mesh_width : int;
  mesh_height : int;
  grid_width : int;  (** FPGA fabric frames. *)
  grid_height : int;
  noc : Resoc_noc.Network.config;
  seed : int64;
}

val default_config : config
(** 4x4 mesh, 16x16 fabric grid, default NoC timing, seed 1. *)

type t

val create : config -> t

val engine : t -> Engine.t
val rng : t -> Rng.t
(** A fresh split per call. *)

val mesh : t -> Mesh.t
val grid : t -> Grid.t
val icap : t -> Icap.t

val spread_placement : t -> n:int -> int array
(** [n] distinct tile ids spread evenly over the mesh (replicas far apart
    share fewer links — the placement a sane SoC integrator would pick).
    Raises [Invalid_argument] when the mesh is too small. *)

val noc_fabric :
  t -> placement:int array -> size_of:('msg -> int) -> 'msg Transport.fabric
(** Endpoint [i] of the returned fabric lives on tile [placement.(i)]
    (placement must be injective). Messages are routed hop-by-hop over the
    mesh; [size_of] gives per-message bytes for serialization timing. *)

val noc_messages : t -> int
val noc_bytes : t -> int
val noc_dropped : t -> int
(** Aggregated over every fabric created from this SoC. *)

val set_on_partition : t -> (reachable:int -> total:int -> unit) -> unit
(** Register the chip-level partition listener. Fabrics built with
    adaptive routing report every route-table recompute here as
    [~reachable] of [~total] ordered tile pairs connected; feed it to
    {!Resoc_resilience.Adaptation.notify_partition} so partitions raise
    the threat level. No-op for non-adaptive routing. *)
