module Engine = Resoc_des.Engine
module Behavior = Resoc_fault.Behavior
module Stats = Resoc_repl.Stats
module Transport = Resoc_repl.Transport
module Register = Resoc_hw.Register
module Usig = Resoc_hybrid.Usig
module Pbft = Resoc_repl.Pbft
module Minbft = Resoc_repl.Minbft
module A2m_bft = Resoc_repl.A2m_bft
module Cheapbft = Resoc_repl.Cheapbft
module Paxos = Resoc_repl.Paxos
module Primary_backup = Resoc_repl.Primary_backup
module Checkpoint = Resoc_repl.Checkpoint

type t = {
  protocol : string;
  n_replicas : int;
  f : int;
  submit : client:int -> payload:int64 -> unit;
  stats : unit -> Stats.t;
  replica_state : replica:int -> int64;
  set_replica_state : replica:int -> int64 -> unit;
  set_offline : replica:int -> unit;
  set_online : replica:int -> unit;
  messages : unit -> int;
  bytes : unit -> int;
  usig_of : (replica:int -> Usig.t) option;
}

type transport_kind = Hub of { latency : int } | On_soc of Soc.t

type spec = {
  kind : [ `Pbft | `Minbft | `A2m_bft | `Cheapbft | `Paxos | `Primary_backup ];
  f : int;
  n_clients : int;
  request_timeout : int;
  vc_timeout : int;
  usig_protection : Register.protection;
  batch_window : int;  (* hybrid-BFT protocols only; 0 = no batching *)
  checkpoint : Checkpoint.config option;  (* None = legacy fixed-retention model *)
  multicast : bool;  (* route replica fan-outs through the fabric's multicast *)
  batching : Resoc_repl.Types.batching option;
      (* cross-protocol request batching + pipelining; None = legacy *)
  behaviors : Behavior.t array option;
}

let default_spec =
  {
    kind = `Minbft;
    f = 1;
    n_clients = 2;
    request_timeout = 4000;
    vc_timeout = 2500;
    usig_protection = Register.Secded;
    batch_window = 0;
    checkpoint = None;
    multicast = false;
    batching = None;
    behaviors = None;
  }

let n_replicas_of spec =
  match spec.kind with
  | `Pbft -> (3 * spec.f) + 1
  | `Minbft | `A2m_bft | `Cheapbft | `Paxos -> (2 * spec.f) + 1
  | `Primary_backup -> spec.f + 1

(* Nominal message sizes: BFT messages carry digests and MACs; MinBFT adds
   UI certificates; primary-backup updates carry state deltas. *)
(* A2M attestations additionally carry the chain digest: heavier than UIs. *)
let message_bytes = function
  | `Pbft -> 64
  | `Minbft -> 96
  | `A2m_bft -> 112
  | `Cheapbft -> 96
  | `Paxos -> 48
  | `Primary_backup -> 80

(* Wire bytes for a batched flight derive from its content: the base
   protocol message plus one payload's worth per extra request — one
   header/certificate amortized over the whole batch. *)
let batch_bytes ~base ~len = base + (16 * (max 0 (len - 1)))

let make_fabric engine kind ~size_of ~n_endpoints =
  match kind with
  | Hub { latency } -> Transport.hub engine ~n:n_endpoints ~latency ()
  | On_soc soc ->
    let placement = Soc.spread_placement soc ~n:n_endpoints in
    Soc.noc_fabric soc ~placement ~size_of

let build engine kind spec =
  let n = n_replicas_of spec in
  let n_endpoints = n + spec.n_clients in
  match spec.kind with
  | `Pbft ->
    let bytes = message_bytes spec.kind in
    let size_of = function
      | Pbft.State_chunk c -> Checkpoint.chunk_bytes c
      | Pbft.Pre_prepare_b { requests; _ } ->
        batch_bytes ~base:bytes ~len:(List.length requests)
      | _ -> bytes
    in
    let fabric = make_fabric engine kind ~size_of ~n_endpoints in
    let config =
      {
        Pbft.f = spec.f;
        n_clients = spec.n_clients;
        request_timeout = spec.request_timeout;
        vc_timeout = spec.vc_timeout;
        checkpoint = spec.checkpoint;
        multicast = spec.multicast;
        batching = spec.batching;
      }
    in
    let sys = Pbft.start engine fabric config ?behaviors:spec.behaviors () in
    {
      protocol = "pbft";
      n_replicas = n;
      f = spec.f;
      submit = (fun ~client ~payload -> Pbft.submit sys ~client ~payload);
      stats = (fun () -> Pbft.stats sys);
      replica_state = (fun ~replica -> Pbft.replica_state sys ~replica);
      set_replica_state = (fun ~replica v -> Pbft.set_replica_state sys ~replica v);
      set_offline = (fun ~replica -> Pbft.set_offline sys ~replica);
      set_online = (fun ~replica -> Pbft.set_online sys ~replica);
      messages = fabric.Transport.messages_sent;
      bytes = fabric.Transport.bytes_sent;
      usig_of = None;
    }
  | `Minbft ->
    let bytes = message_bytes spec.kind in
    (* Hybrid Prepare/Commit always carry a request list (legacy window
       batching); only charge content-derived bytes under the new batching
       config so legacy runs (A8 included) keep their flat accounting. *)
    let size_of =
      let batched = spec.batching <> None in
      function
      | Minbft.State_chunk c -> Checkpoint.chunk_bytes c
      | (Minbft.Prepare { requests; _ } | Minbft.Commit { requests; _ }) when batched ->
        batch_bytes ~base:bytes ~len:(List.length requests)
      | _ -> bytes
    in
    let fabric = make_fabric engine kind ~size_of ~n_endpoints in
    let config =
      {
        Minbft.f = spec.f;
        n_clients = spec.n_clients;
        request_timeout = spec.request_timeout;
        vc_timeout = spec.vc_timeout;
        usig_protection = spec.usig_protection;
        keychain_master = 0xC0FFEEL;
        batch_window = spec.batch_window;
        max_batch = 16;
        checkpoint = spec.checkpoint;
        multicast = spec.multicast;
        batching = spec.batching;
      }
    in
    let sys = Minbft.start engine fabric config ?behaviors:spec.behaviors () in
    {
      protocol = "minbft";
      n_replicas = n;
      f = spec.f;
      submit = (fun ~client ~payload -> Minbft.submit sys ~client ~payload);
      stats = (fun () -> Minbft.stats sys);
      replica_state = (fun ~replica -> Minbft.replica_state sys ~replica);
      set_replica_state = (fun ~replica v -> Minbft.set_replica_state sys ~replica v);
      set_offline = (fun ~replica -> Minbft.set_offline sys ~replica);
      set_online = (fun ~replica -> Minbft.set_online sys ~replica);
      messages = fabric.Transport.messages_sent;
      bytes = fabric.Transport.bytes_sent;
      usig_of = Some (fun ~replica -> Minbft.usig sys ~replica);
    }
  | `A2m_bft ->
    let bytes = message_bytes spec.kind in
    let size_of =
      let batched = spec.batching <> None in
      function
      | A2m_bft.State_chunk c -> Checkpoint.chunk_bytes c
      | (A2m_bft.Prepare { requests; _ } | A2m_bft.Commit { requests; _ }) when batched ->
        batch_bytes ~base:bytes ~len:(List.length requests)
      | _ -> bytes
    in
    let fabric = make_fabric engine kind ~size_of ~n_endpoints in
    let config =
      {
        A2m_bft.f = spec.f;
        n_clients = spec.n_clients;
        request_timeout = spec.request_timeout;
        vc_timeout = spec.vc_timeout;
        usig_protection = spec.usig_protection;
        keychain_master = 0xC0FFEEL;
        batch_window = spec.batch_window;
        max_batch = 16;
        checkpoint = spec.checkpoint;
        multicast = spec.multicast;
        batching = spec.batching;
      }
    in
    let sys = A2m_bft.start engine fabric config ?behaviors:spec.behaviors () in
    {
      protocol = "a2m-bft";
      n_replicas = n;
      f = spec.f;
      submit = (fun ~client ~payload -> A2m_bft.submit sys ~client ~payload);
      stats = (fun () -> A2m_bft.stats sys);
      replica_state = (fun ~replica -> A2m_bft.replica_state sys ~replica);
      set_replica_state = (fun ~replica v -> A2m_bft.set_replica_state sys ~replica v);
      set_offline = (fun ~replica -> A2m_bft.set_offline sys ~replica);
      set_online = (fun ~replica -> A2m_bft.set_online sys ~replica);
      messages = fabric.Transport.messages_sent;
      bytes = fabric.Transport.bytes_sent;
      usig_of = None;
    }
  | `Cheapbft ->
    let bytes = message_bytes spec.kind in
    let size_of = function
      | Cheapbft.State_chunk c -> Checkpoint.chunk_bytes c
      | Cheapbft.Prepare_b { requests; _ } | Cheapbft.Commit_b { requests; _ } ->
        batch_bytes ~base:bytes ~len:(List.length requests)
      | _ -> bytes
    in
    let fabric = make_fabric engine kind ~size_of ~n_endpoints in
    let config =
      {
        Cheapbft.f = spec.f;
        n_clients = spec.n_clients;
        request_timeout = spec.request_timeout;
        vc_timeout = spec.vc_timeout;
        update_period = 2_000;
        trinc_protection = spec.usig_protection;
        keychain_master = 0x17E4C0L;
        checkpoint = spec.checkpoint;
        multicast = spec.multicast;
        batching = spec.batching;
      }
    in
    let sys = Cheapbft.start engine fabric config ?behaviors:spec.behaviors () in
    {
      protocol = "cheapbft";
      n_replicas = n;
      f = spec.f;
      submit = (fun ~client ~payload -> Cheapbft.submit sys ~client ~payload);
      stats = (fun () -> Cheapbft.stats sys);
      replica_state = (fun ~replica -> Cheapbft.replica_state sys ~replica);
      set_replica_state = (fun ~replica:_ _ -> ());
      set_offline =
        (match spec.checkpoint with
        | Some _ -> fun ~replica -> Cheapbft.set_offline sys ~replica
        | None -> fun ~replica:_ -> ());
      set_online =
        (match spec.checkpoint with
        | Some _ -> fun ~replica -> Cheapbft.set_online sys ~replica
        | None -> fun ~replica:_ -> ());
      messages = fabric.Transport.messages_sent;
      bytes = fabric.Transport.bytes_sent;
      usig_of = None;
    }
  | `Paxos ->
    let bytes = message_bytes spec.kind in
    let size_of = function
      | Paxos.State_chunk c -> Checkpoint.chunk_bytes c
      | Paxos.Accept_b { requests; _ } ->
        batch_bytes ~base:bytes ~len:(List.length requests)
      | _ -> bytes
    in
    let fabric = make_fabric engine kind ~size_of ~n_endpoints in
    let config =
      {
        Paxos.f = spec.f;
        n_clients = spec.n_clients;
        request_timeout = spec.request_timeout;
        election_timeout = spec.vc_timeout;
        checkpoint = spec.checkpoint;
        multicast = spec.multicast;
        batching = spec.batching;
      }
    in
    let sys = Paxos.start engine fabric config ?behaviors:spec.behaviors () in
    {
      protocol = "paxos";
      n_replicas = n;
      f = spec.f;
      submit = (fun ~client ~payload -> Paxos.submit sys ~client ~payload);
      stats = (fun () -> Paxos.stats sys);
      replica_state = (fun ~replica -> Paxos.replica_state sys ~replica);
      set_replica_state = (fun ~replica v -> Paxos.set_replica_state sys ~replica v);
      set_offline = (fun ~replica -> Paxos.set_offline sys ~replica);
      set_online = (fun ~replica -> Paxos.set_online sys ~replica);
      messages = fabric.Transport.messages_sent;
      bytes = fabric.Transport.bytes_sent;
      usig_of = None;
    }
  | `Primary_backup ->
    let bytes = message_bytes spec.kind in
    let size_of = function
      | Primary_backup.State_chunk c -> Checkpoint.chunk_bytes c
      | Primary_backup.Update_b { replies; _ } ->
        batch_bytes ~base:bytes ~len:(List.length replies)
      | _ -> bytes
    in
    let fabric = make_fabric engine kind ~size_of ~n_endpoints in
    let config =
      {
        Primary_backup.n_backups = spec.f;
        n_clients = spec.n_clients;
        request_timeout = spec.request_timeout;
        heartbeat_period = max 1 (spec.vc_timeout / 5);
        detection_timeout = spec.vc_timeout;
        checkpoint = spec.checkpoint;
        multicast = spec.multicast;
        batching = spec.batching;
      }
    in
    let sys = Primary_backup.start engine fabric config ?behaviors:spec.behaviors () in
    {
      protocol = "primary-backup";
      n_replicas = n;
      f = spec.f;
      submit = (fun ~client ~payload -> Primary_backup.submit sys ~client ~payload);
      stats = (fun () -> Primary_backup.stats sys);
      replica_state = (fun ~replica -> Primary_backup.replica_state sys ~replica);
      set_replica_state = (fun ~replica v -> Primary_backup.set_replica_state sys ~replica v);
      set_offline =
        (match spec.checkpoint with
        | Some _ -> fun ~replica -> Primary_backup.set_offline sys ~replica
        | None -> fun ~replica:_ -> ());
      set_online =
        (match spec.checkpoint with
        | Some _ -> fun ~replica -> Primary_backup.set_online sys ~replica
        | None -> fun ~replica:_ -> ());
      messages = fabric.Transport.messages_sent;
      bytes = fabric.Transport.bytes_sent;
      usig_of = None;
    }
