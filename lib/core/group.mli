(** Protocol-agnostic handle over a running replication group.

    Wraps each of the four protocols behind one record of closures so that
    workloads, rejuvenation managers and experiment harnesses need not know
    which protocol is running — the uniformity that makes E3/E4-style
    comparisons one-liners. *)

module Engine = Resoc_des.Engine
module Behavior = Resoc_fault.Behavior
module Stats = Resoc_repl.Stats
module Transport = Resoc_repl.Transport
module Register = Resoc_hw.Register
module Usig = Resoc_hybrid.Usig

type t = {
  protocol : string;
  n_replicas : int;
  f : int;
  submit : client:int -> payload:int64 -> unit;
  stats : unit -> Stats.t;
  replica_state : replica:int -> int64;
  set_replica_state : replica:int -> int64 -> unit;
  set_offline : replica:int -> unit;
  set_online : replica:int -> unit;
  messages : unit -> int;
  bytes : unit -> int;
  usig_of : (replica:int -> Usig.t) option;  (** MinBFT only. *)
}

type transport_kind =
  | Hub of { latency : int }  (** Uniform-latency fabric (protocol-only runs). *)
  | On_soc of Soc.t  (** Routed over the SoC's mesh NoC. *)

type spec = {
  kind : [ `Pbft | `Minbft | `A2m_bft | `Cheapbft | `Paxos | `Primary_backup ];
  f : int;
  n_clients : int;
  request_timeout : int;
  vc_timeout : int;
  usig_protection : Register.protection;  (** MinBFT only. *)
  batch_window : int;
      (** Hybrid-BFT protocols only: primary-side batching window in cycles
          (0 = order immediately). *)
  checkpoint : Resoc_repl.Checkpoint.config option;
      (** Certified checkpointing + incremental state transfer (DESIGN.md
          §8), wired through every protocol. [None] (the default) keeps
          the legacy model — fixed-retention logs, and rejuvenation
          restores state for free (or, for CheapBFT / primary-backup,
          invisibly). State-transfer chunks are the one message class
          whose NoC size is computed from content rather than the nominal
          per-protocol constant. *)
  multicast : bool;
      (** Route replica fan-outs through the fabric's multicast when the
          transport offers one (an [On_soc] fabric does iff the SoC's NoC
          config has [multicast = true]; hubs only when built with
          [~multicast:true]). Off by default. *)
  batching : Resoc_repl.Types.batching option;
      (** Cross-protocol request batching + agreement pipelining
          ({!Resoc_repl.Batcher}), threaded into every protocol's config.
          Batched flights are the second message class with content-derived
          NoC size: base protocol bytes plus 16 per extra request (one
          header/certificate amortized over the batch). [None] (the
          default) keeps every legacy run byte-identical. *)
  behaviors : Behavior.t array option;
}

val default_spec : spec
(** MinBFT, f=1, 2 clients, honest, multicast off. *)

val n_replicas_of : spec -> int

val message_bytes : [ `Pbft | `Minbft | `A2m_bft | `Cheapbft | `Paxos | `Primary_backup ] -> int
(** Nominal wire size per protocol message (drives NoC serialization). *)

val build : Engine.t -> transport_kind -> spec -> t
(** For [On_soc], replicas and clients are spread over the mesh with
    {!Soc.spread_placement}; the engine argument must be the SoC's. *)
