module Engine = Resoc_des.Engine
module Rng = Resoc_des.Rng
module Inject = Resoc_check.Inject

type target = {
  id : int;
  mutable variant : int;
  mutable backdoored : bool;
  mutable backdoor_since : int option;
      (* when the current fabric placement first sat on a trojaned frame;
         rejuvenation in place does NOT reset it — only relocation does *)
  mutable compromised : bool;
  mutable active : bool;
  mutable pending : Engine.handle option;
  on_compromise : int -> unit;
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  mean_exploit_cycles : float;
  (* None until the adversary first sees the variant deployed; then the
     (absolute) cycle its exploit development completes. Development is
     sequential: work on a newly seen variant starts when the previous
     exploit is finished. *)
  exploit_done : int option array;
  mutable dev_busy_until : int;
  exposure : int;
  backdoor_delay : int;
  mutable targets : target list;
}

let create engine rng ~n_variants ~mean_exploit_cycles ~exposure ?backdoor_delay () =
  if n_variants <= 0 then invalid_arg "Apt.create: need at least one variant";
  if mean_exploit_cycles <= 0.0 then invalid_arg "Apt.create: exploit effort must be positive";
  if exposure < 0 then invalid_arg "Apt.create: negative exposure";
  let backdoor_delay = match backdoor_delay with Some d -> d | None -> exposure in
  {
    engine;
    rng;
    mean_exploit_cycles;
    exploit_done = Array.make n_variants None;
    dev_busy_until = 0;
    exposure;
    backdoor_delay;
    targets = [];
  }

let check_variant t variant =
  if variant < 0 || variant >= Array.length t.exploit_done then
    invalid_arg "Apt: variant out of range"

(* The adversary notices a deployed variant and queues exploit development
   for it behind whatever it is currently working on. *)
let note_deployed t variant =
  check_variant t variant;
  match t.exploit_done.(variant) with
  | Some _ -> ()
  | None ->
    let start = max (Engine.now t.engine) t.dev_busy_until in
    let effort =
      max 1 (int_of_float (Float.round (Rng.exponential t.rng ~mean:t.mean_exploit_cycles)))
    in
    let done_at = start + effort in
    t.dev_busy_until <- done_at;
    t.exploit_done.(variant) <- Some done_at

let exploit_ready_at t ~variant =
  check_variant t variant;
  t.exploit_done.(variant)

let cancel_pending t target =
  match target.pending with
  | Some h ->
    Engine.cancel t.engine h;
    target.pending <- None
  | None -> ()

(* (Re)compute when this target falls, given its exposure clock starts now. *)
let arm t target =
  cancel_pending t target;
  if target.active && not target.compromised then begin
    let now = Engine.now t.engine in
    let via_exploit =
      match t.exploit_done.(target.variant) with
      | Some ready -> Some (max now ready + t.exposure)
      | None -> None
    in
    let via_backdoor =
      match target.backdoor_since with
      | Some since -> Some (max now (since + t.backdoor_delay))
      | None -> None
    in
    let fall_at =
      match (via_exploit, via_backdoor) with
      | Some e, Some b -> Some (min e b)
      | (Some _ as s), None | None, (Some _ as s) -> s
      | None, None -> None
    in
    match fall_at with
    | None -> ()
    | Some time ->
      let handle =
        Engine.at t.engine ~time (fun () ->
            target.pending <- None;
            if
              target.active && not target.compromised
              && Inject.permit ~kind:Inject.Apt ~time:(Engine.now t.engine) ~a:target.id
                   ~b:target.variant
            then begin
              target.compromised <- true;
              target.on_compromise target.id
            end)
      in
      target.pending <- Some handle
  end

let register_target t ~id ~variant ?(backdoored = false) ~on_compromise () =
  note_deployed t variant;
  let target =
    {
      id;
      variant;
      backdoored;
      backdoor_since = (if backdoored then Some (Engine.now t.engine) else None);
      compromised = false;
      active = true;
      pending = None;
      on_compromise;
    }
  in
  t.targets <- target :: t.targets;
  arm t target;
  target

let rejuvenate t target ~variant ?backdoored () =
  note_deployed t variant;
  target.variant <- variant;
  (match backdoored with
   | Some false ->
     target.backdoored <- false;
     target.backdoor_since <- None
   | Some true ->
     target.backdoored <- true;
     if target.backdoor_since = None then target.backdoor_since <- Some (Engine.now t.engine)
   | None -> ());
  target.compromised <- false;
  target.active <- true;
  arm t target

let deactivate t target =
  target.active <- false;
  cancel_pending t target

let compromised target = target.compromised

let target_id target = target.id
let target_variant target = target.variant

let compromised_count t =
  List.fold_left (fun acc tg -> if tg.active && tg.compromised then acc + 1 else acc) 0 t.targets

let active_count t = List.fold_left (fun acc tg -> if tg.active then acc + 1 else acc) 0 t.targets

let exploits_developed t ~now =
  Array.fold_left
    (fun acc d -> match d with Some done_at when done_at <= now -> acc + 1 | Some _ | None -> acc)
    0 t.exploit_done
