module Engine = Resoc_des.Engine
module Obs = Resoc_obs.Obs
module Registry = Resoc_obs.Registry
module Ring = Resoc_obs.Ring
module Inject = Resoc_check.Inject

type effect = Kill_switch | Corrupt_output | Leak_secret

type trigger = Time_bomb of int | Cheat_code of int64

type t = {
  engine : Engine.t;
  trigger : trigger;
  effect : effect;
  on_trigger : effect -> unit;
  mutable triggered : bool;
  mutable armed : bool;
  mutable pending : Engine.handle option;
  obs : Obs.t;
  obs_triggered : int;
}

let effect_code = function Kill_switch -> 0 | Corrupt_output -> 1 | Leak_secret -> 2

let fire t =
  if
    t.armed && not t.triggered
    && Inject.permit ~kind:Inject.Trojan ~time:(Engine.now t.engine) ~a:(effect_code t.effect)
         ~b:0
  then begin
    t.triggered <- true;
    if !Obs.metrics_on then Registry.incr t.obs.Obs.metrics t.obs_triggered;
    if !Obs.trace_on then
      Ring.instant t.obs.Obs.ring ~time:(Engine.now t.engine) ~cat:Obs.Cat.fault ~id:1 ~arg:0;
    t.on_trigger t.effect
  end

let plant engine trigger effect ~on_trigger =
  let obs = Engine.obs engine in
  let obs_triggered =
    if !Obs.metrics_on then Registry.counter obs.Obs.metrics "fault.trojan.triggered" else 0
  in
  let t =
    {
      engine;
      trigger;
      effect;
      on_trigger;
      triggered = false;
      armed = true;
      pending = None;
      obs;
      obs_triggered;
    }
  in
  (match trigger with
   | Time_bomb at ->
     let now = Engine.now engine in
     let time = max now at in
     t.pending <- Some (Engine.at engine ~time (fun () -> fire t))
   | Cheat_code _ -> ());
  t

let observe t input =
  match t.trigger with
  | Cheat_code code when Int64.equal code input -> fire t
  | Cheat_code _ | Time_bomb _ -> ()

let triggered t = t.triggered

let effect t = t.effect

let disarm t =
  t.armed <- false;
  match t.pending with
  | Some h ->
    Engine.cancel t.engine h;
    t.pending <- None
  | None -> ()

let pp_effect ppf = function
  | Kill_switch -> Format.pp_print_string ppf "kill-switch"
  | Corrupt_output -> Format.pp_print_string ppf "corrupt-output"
  | Leak_secret -> Format.pp_print_string ppf "leak-secret"
