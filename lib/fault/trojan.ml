module Engine = Resoc_des.Engine

type effect = Kill_switch | Corrupt_output | Leak_secret

type trigger = Time_bomb of int | Cheat_code of int64

type t = {
  engine : Engine.t;
  trigger : trigger;
  effect : effect;
  on_trigger : effect -> unit;
  mutable triggered : bool;
  mutable armed : bool;
  mutable pending : Engine.handle option;
}

let fire t =
  if t.armed && not t.triggered then begin
    t.triggered <- true;
    t.on_trigger t.effect
  end

let plant engine trigger effect ~on_trigger =
  let t =
    { engine; trigger; effect; on_trigger; triggered = false; armed = true; pending = None }
  in
  (match trigger with
   | Time_bomb at ->
     let now = Engine.now engine in
     let time = max now at in
     t.pending <- Some (Engine.at engine ~time (fun () -> fire t))
   | Cheat_code _ -> ());
  t

let observe t input =
  match t.trigger with
  | Cheat_code code when Int64.equal code input -> fire t
  | Cheat_code _ | Time_bomb _ -> ()

let triggered t = t.triggered

let effect t = t.effect

let disarm t =
  t.armed <- false;
  match t.pending with
  | Some h ->
    Engine.cancel t.engine h;
    t.pending <- None
  | None -> ()

let pp_effect ppf = function
  | Kill_switch -> Format.pp_print_string ppf "kill-switch"
  | Corrupt_output -> Format.pp_print_string ppf "corrupt-output"
  | Leak_secret -> Format.pp_print_string ppf "leak-secret"
