module Engine = Resoc_des.Engine
module Rng = Resoc_des.Rng
module Register = Resoc_hw.Register
module Obs = Resoc_obs.Obs
module Registry = Resoc_obs.Registry
module Ring = Resoc_obs.Ring
module Inject = Resoc_check.Inject

type t = {
  engine : Engine.t;
  rng : Rng.t;
  rate : float;
  registers : Register.t array;
  total_bits : int;
  mutable injected : int;
  mutable halted : bool;
  obs : Obs.t;
  obs_injected : int;
}

let pick_register t =
  (* Weighted by stored bits so bigger words attract more upsets. *)
  let target = Rng.int t.rng t.total_bits in
  let rec find i acc =
    let bits = Register.stored_bits t.registers.(i) in
    if target < acc + bits then i else find (i + 1) (acc + bits)
  in
  find 0 0

let rec schedule_next t =
  if (not t.halted) && t.rate > 0.0 then begin
    let mean = 1.0 /. (t.rate *. float_of_int t.total_bits) in
    let delay = max 1 (int_of_float (Float.round (Rng.exponential t.rng ~mean))) in
    ignore
      (Engine.schedule t.engine ~delay (fun () ->
           if not t.halted then begin
             (* Draw the target bit before asking the injection log for
                permission: a replay that suppresses this upset must still
                consume the same RNG values, or the rest of the schedule
                diverges from the recorded run. *)
             let i = pick_register t in
             let reg = t.registers.(i) in
             let bit = Rng.int t.rng (Register.stored_bits reg) in
             if Inject.permit ~kind:Inject.Seu ~time:(Engine.now t.engine) ~a:i ~b:bit then begin
               Register.inject_upset_at reg bit;
               t.injected <- t.injected + 1;
               if !Obs.metrics_on then Registry.incr t.obs.Obs.metrics t.obs_injected;
               if !Obs.trace_on then
                 Ring.instant t.obs.Obs.ring ~time:(Engine.now t.engine) ~cat:Obs.Cat.fault
                   ~id:0 ~arg:t.injected
             end;
             schedule_next t
           end))
  end

let start engine rng ~rate_per_bit_cycle registers =
  if rate_per_bit_cycle < 0.0 then invalid_arg "Seu.start: negative rate";
  if Array.length registers = 0 && rate_per_bit_cycle > 0.0 then
    invalid_arg "Seu.start: no registers to upset";
  let total_bits = Array.fold_left (fun acc r -> acc + Register.stored_bits r) 0 registers in
  let obs = Engine.obs engine in
  let obs_injected =
    if !Obs.metrics_on then Registry.counter obs.Obs.metrics "fault.seu.injected" else 0
  in
  let t =
    {
      engine;
      rng;
      rate = rate_per_bit_cycle;
      registers;
      total_bits;
      injected = 0;
      halted = false;
      obs;
      obs_injected;
    }
  in
  schedule_next t;
  t

let halt t = t.halted <- true

let injected t = t.injected
