module Engine = Resoc_des.Engine
module Rng = Resoc_des.Rng
module Mesh = Resoc_noc.Mesh
module Obs = Resoc_obs.Obs
module Registry = Resoc_obs.Registry
module Ring = Resoc_obs.Ring
module Inject = Resoc_check.Inject

type config = {
  upset_rate : float;
  upset_repair_mean : float;
  wearout_shape : float;
  wearout_scale : float;
}

let default_config =
  { upset_rate = 0.0; upset_repair_mean = 200.0; wearout_shape = 2.0; wearout_scale = 0.0 }

type t = {
  engine : Engine.t;
  rng : Rng.t;
  mesh : Mesh.t;
  config : config;
  links : int array;  (* real (non-border) link ids, ascending *)
  down_until : int array;  (* by link id: latest scheduled upset repair *)
  worn : Bytes.t;  (* by link id: '\001' once wear-out landed (permanent) *)
  mutable upsets : int;
  mutable wearouts : int;
  mutable repairs : int;
  mutable halted : bool;
  obs : Obs.t;
  obs_upsets : int;
  obs_wearouts : int;
  obs_repairs : int;
}

let trace t ~arg =
  if !Obs.trace_on then
    Ring.instant t.obs.Obs.ring ~time:(Engine.now t.engine) ~cat:Obs.Cat.fault ~id:1 ~arg

(* Transient upsets arrive as a Poisson process over the whole fabric:
   exponential inter-arrival at [upset_rate] per link per cycle, a uniform
   victim link, and an exponential repair delay. All three draws happen
   before [Inject.permit] so a replay that suppresses the occurrence still
   consumes identical RNG values and the rest of the schedule stays
   aligned (same idiom as {!Seu}). *)
let rec schedule_upset t =
  if (not t.halted) && t.config.upset_rate > 0.0 then begin
    let mean = 1.0 /. (t.config.upset_rate *. float_of_int (Array.length t.links)) in
    let delay = max 1 (int_of_float (Float.round (Rng.exponential t.rng ~mean))) in
    ignore
      (Engine.schedule t.engine ~delay (fun () ->
           if not t.halted then begin
             let lid = t.links.(Rng.int t.rng (Array.length t.links)) in
             let repair_delay =
               max 1
                 (int_of_float (Float.round (Rng.exponential t.rng ~mean:t.config.upset_repair_mean)))
             in
             let now = Engine.now t.engine in
             if Inject.permit ~kind:Inject.Link ~time:now ~a:lid ~b:0 then begin
               Mesh.fail_link t.mesh (Mesh.link_of_id t.mesh lid);
               t.upsets <- t.upsets + 1;
               if !Obs.metrics_on then Registry.incr t.obs.Obs.metrics t.obs_upsets;
               trace t ~arg:t.upsets;
               let back_at = now + repair_delay in
               if back_at > t.down_until.(lid) then t.down_until.(lid) <- back_at;
               ignore
                 (Engine.at t.engine ~time:back_at (fun () ->
                      (* Repair only if no later upset extended the outage
                         and wear-out has not made the failure permanent. *)
                      if
                        (not t.halted)
                        && Engine.now t.engine >= t.down_until.(lid)
                        && Bytes.get t.worn lid = '\000'
                      then begin
                        Mesh.repair_link t.mesh (Mesh.link_of_id t.mesh lid);
                        t.repairs <- t.repairs + 1;
                        if !Obs.metrics_on then Registry.incr t.obs.Obs.metrics t.obs_repairs
                      end))
             end;
             schedule_upset t
           end))
  end

(* Weibull wear-out: one lifetime per link, drawn up front in ascending
   link-id order (again: draws are independent of permit decisions), each
   landing as a permanent failure that repair never undoes. *)
let schedule_wearout t =
  if t.config.wearout_scale > 0.0 then
    Array.iter
      (fun lid ->
        let life =
          max 1
            (int_of_float
               (Float.round
                  (Rng.weibull t.rng ~shape:t.config.wearout_shape ~scale:t.config.wearout_scale)))
        in
        ignore
          (Engine.at t.engine ~time:life (fun () ->
               if
                 (not t.halted)
                 && Bytes.get t.worn lid = '\000'
                 && Inject.permit ~kind:Inject.Link ~time:(Engine.now t.engine) ~a:lid ~b:1
               then begin
                 Bytes.set t.worn lid '\001';
                 Mesh.fail_link t.mesh (Mesh.link_of_id t.mesh lid);
                 t.wearouts <- t.wearouts + 1;
                 if !Obs.metrics_on then Registry.incr t.obs.Obs.metrics t.obs_wearouts;
                 trace t ~arg:t.wearouts
               end)))
      t.links

let start engine rng mesh config =
  if config.upset_rate < 0.0 then invalid_arg "Link_fault.start: negative upset rate";
  if config.upset_repair_mean <= 0.0 then invalid_arg "Link_fault.start: repair mean must be positive";
  if config.wearout_scale < 0.0 then invalid_arg "Link_fault.start: negative wear-out scale";
  if config.wearout_scale > 0.0 && config.wearout_shape <= 0.0 then
    invalid_arg "Link_fault.start: wear-out shape must be positive";
  let obs = Engine.obs engine in
  let obs_upsets, obs_wearouts, obs_repairs =
    if !Obs.metrics_on then
      ( Registry.counter obs.Obs.metrics "fault.link.upsets",
        Registry.counter obs.Obs.metrics "fault.link.wearouts",
        Registry.counter obs.Obs.metrics "fault.link.repairs" )
    else (0, 0, 0)
  in
  let t =
    {
      engine;
      rng;
      mesh;
      config;
      links = Mesh.real_link_ids mesh;
      down_until = Array.make (Mesh.n_link_ids mesh) 0;
      worn = Bytes.make (Mesh.n_link_ids mesh) '\000';
      upsets = 0;
      wearouts = 0;
      repairs = 0;
      halted = false;
      obs;
      obs_upsets;
      obs_wearouts;
      obs_repairs;
    }
  in
  schedule_wearout t;
  schedule_upset t;
  t

let halt t = t.halted <- true
let upsets t = t.upsets
let wearouts t = t.wearouts
let repairs t = t.repairs
