(** NoC link-failure campaign: Poisson transient upsets plus Weibull
    wear-out over the real (non-border) links of a mesh.

    Upsets arrive as a Poisson process at [upset_rate] per link per cycle
    — exponential inter-arrival over the fabric, uniform victim link — and
    heal after an exponential repair delay (mean [upset_repair_mean]
    cycles). Wear-out draws one Weibull([wearout_shape], [wearout_scale])
    lifetime per link up front and lands as a permanent failure that the
    upset-repair path never resurrects. A scale of [0.0] disables
    wear-out; an upset rate of [0.0] disables upsets.

    Every event asks {!Resoc_check.Inject.permit} with [kind:Link] before
    touching the mesh (coordinates: link id, and 0 = upset / 1 =
    wear-out), and all RNG draws happen before the permit call, so
    deterministic replay and suppression-mask shrinking work unchanged on
    link campaigns. Routing reacts through the mesh's change
    notification ({!Resoc_noc.Mesh.on_change}). *)

type config = {
  upset_rate : float;  (** transient failures per link per cycle. *)
  upset_repair_mean : float;  (** mean repair delay in cycles. *)
  wearout_shape : float;  (** Weibull shape (k > 1 = aging dominates). *)
  wearout_scale : float;  (** Weibull characteristic life; 0 disables. *)
}

val default_config : config
(** No upsets, 200-cycle mean repair, shape 2.0, wear-out disabled. *)

type t

val start : Resoc_des.Engine.t -> Resoc_des.Rng.t -> Resoc_noc.Mesh.t -> config -> t

val halt : t -> unit
(** Stop scheduling new events; already-scheduled repairs are abandoned. *)

val upsets : t -> int
val wearouts : t -> int
val repairs : t -> int
