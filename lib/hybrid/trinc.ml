module Mac = Resoc_crypto.Mac
module Hash = Resoc_crypto.Hash
module Register = Resoc_hw.Register
module Check = Resoc_check.Check

type t = {
  id : int;
  key : Mac.key;
  reg : Register.t;
  mutable issued : int;
  mutable faults_detected : int;
  chk : int;  (* resoc_check hybrid id, -1 when checking is off *)
}

type attestation = {
  signer : int;
  previous : int64;
  current : int64;
  digest : Hash.t;
  tag : Mac.t;
}

let create ~id ~key ~protection =
  {
    id;
    key;
    reg = Register.create protection 0L;
    issued = 0;
    faults_detected = 0;
    chk = (if !Check.enabled then Check.new_hybrid ~name:"trinc" else -1);
  }

let id t = t.id

let counter_register t = t.reg

let attestation_digest ~signer ~previous ~current digest =
  Hash.combine
    (Hash.combine_int (Hash.of_string "trinc") signer)
    (Hash.combine (Hash.combine previous current) digest)

let attest t ~new_counter ~digest =
  match Register.read t.reg with
  | _, Register.Fault_detected ->
    t.faults_detected <- t.faults_detected + 1;
    Error "trinc: counter register fault detected"
  | previous, _ ->
    if Int64.compare new_counter previous < 0 then Error "trinc: counter must not decrease"
    else begin
      Register.write t.reg new_counter;
      t.issued <- t.issued + 1;
      if t.chk >= 0 then
        Check.counter_issued ~hybrid:t.chk ~read:previous ~issued:new_counter ~digest;
      let tag =
        Mac.sign t.key (attestation_digest ~signer:t.id ~previous ~current:new_counter digest)
      in
      Ok { signer = t.id; previous; current = new_counter; digest; tag }
    end

let verify ~key a =
  Mac.verify key
    (attestation_digest ~signer:a.signer ~previous:a.previous ~current:a.current a.digest)
    a.tag

let attestations_issued t = t.issued
let faults_detected t = t.faults_detected
