(** USIG — Unique Sequential Identifier Generator (Veronese et al., MinBFT).

    The canonical hardware hybrid of the paper's §III: a tamper-proof
    monotonic counter plus an HMAC unit. Each [create_ui] binds the next
    counter value to a message digest, so a Byzantine host can neither
    assign the same identifier to two different messages (no equivocation)
    nor skip identifiers undetectably.

    The counter lives in a {!Resoc_hw.Register} with selectable protection:
    with [Plain] registers a single SEU silently desynchronizes the counter
    — the "catastrophic for the consensus problem" scenario the paper
    describes — while [Secded] corrects it. Experiment E2 measures exactly
    this difference. *)

module Mac = Resoc_crypto.Mac
module Hash = Resoc_crypto.Hash

val test_reissue : bool ref
(** Test-only mutation knob: when set, [create_ui] re-issues the current
    counter value instead of stepping it — a broken hybrid that equivocates.
    The resoc_check self-tests flip it to prove the issuance checker fires;
    leave [false] otherwise. *)

type t

type ui = { signer : int; counter : int64; tag : Mac.t }
(** A unique identifier certificate. *)

val create : id:int -> key:Mac.key -> protection:Resoc_hw.Register.protection -> t

val id : t -> int

val counter_register : t -> Resoc_hw.Register.t
(** Exposed so fault campaigns can aim SEUs at the hybrid's state. *)

val counter_value : t -> int64
(** Current counter as stored (reads through the protection layer). *)

val create_ui : t -> Hash.t -> (ui, string) result
(** Assigns the next identifier to [digest]. Returns [Error] when the
    protected register *detects* an unrecoverable fault (fail-stop of the
    hybrid); silent corruption of a [Plain] register instead yields a UI
    with a wrong counter — verifiers will see a gap. *)

val verify_ui : key:Mac.key -> digest:Hash.t -> ui -> bool
(** Checks the authenticator binds (signer, counter, digest). *)

val uis_issued : t -> int

val failed : t -> bool
(** Latched fail-stop: an uncorrectable counter fault was detected; the
    hybrid refuses to issue further UIs until re-provisioned (replaced). *)

val faults_detected : t -> int
val corrections : t -> int
(** SECDED repairs performed during [create_ui]. *)

(** Verifier-side continuity tracking: MinBFT accepts UIs from a signer only
    in exact counter order. *)
module Monotonic : sig
  type checker

  type verdict =
    | Accept  (** counter = last + 1. *)
    | Replay  (** counter <= last: duplicate or rollback. *)
    | Gap of int64  (** counter jumped ahead; the missing span signals a
                        desynchronized (or malicious) hybrid. *)

  val create : unit -> checker

  val check : checker -> signer:int -> counter:int64 -> verdict
  (** [Accept] advances the tracked counter; [Replay]/[Gap] do not. *)

  val last_accepted : checker -> signer:int -> int64
  (** 0 when nothing was accepted yet. *)

  val force : checker -> signer:int -> counter:int64 -> unit
  (** Reset the tracked counter (baseline resync after state transfer). *)
end
