module Mac = Resoc_crypto.Mac
module Hash = Resoc_crypto.Hash
module Check = Resoc_check.Check

type entry = { digest : Hash.t; chain : Hash.t }

type t = {
  id : int;
  key : Mac.key;
  mutable log : entry list;  (* newest first *)
  mutable n : int;
  chk : int;  (* resoc_check hybrid id, -1 when checking is off *)
}

type attestation = { signer : int; seq : int64; entry : Hash.t; chain : Hash.t; tag : Mac.t }

let create ~id ~key =
  { id; key; log = []; n = 0; chk = (if !Check.enabled then Check.new_hybrid ~name:"a2m" else -1) }

let id t = t.id

let attestation_digest ~signer ~seq ~entry ~chain =
  Hash.combine
    (Hash.combine_int (Hash.of_string "a2m") signer)
    (Hash.combine seq (Hash.combine entry chain))

let make_attestation t ~seq ~entry ~chain =
  let tag = Mac.sign t.key (attestation_digest ~signer:t.id ~seq ~entry ~chain) in
  { signer = t.id; seq; entry; chain; tag }

let append t digest =
  let prev_chain = match t.log with [] -> Hash.zero | e :: _ -> e.chain in
  let chain = Hash.chain prev_chain digest in
  t.log <- { digest; chain } :: t.log;
  t.n <- t.n + 1;
  if t.chk >= 0 then Check.a2m_append ~hybrid:t.chk ~seq:(Int64.of_int t.n) ~digest;
  make_attestation t ~seq:(Int64.of_int t.n) ~entry:digest ~chain

let nth_entry t seq =
  (* seq is 1-based from the oldest; the list is newest-first. *)
  let idx_from_newest = t.n - seq in
  if seq < 1 || idx_from_newest < 0 then None else List.nth_opt t.log idx_from_newest

let lookup t ~seq =
  let seq_int = Int64.to_int seq in
  match nth_entry t seq_int with
  | None -> None
  | Some e -> Some (make_attestation t ~seq ~entry:e.digest ~chain:e.chain)

let latest t =
  match t.log with
  | [] -> None
  | e :: _ -> Some (make_attestation t ~seq:(Int64.of_int t.n) ~entry:e.digest ~chain:e.chain)

let size t = t.n

let verify ~key a =
  Mac.verify key (attestation_digest ~signer:a.signer ~seq:a.seq ~entry:a.entry ~chain:a.chain) a.tag

let consistent ~earlier ~later ~prefix =
  if earlier.signer <> later.signer then false
  else if Int64.compare earlier.seq later.seq >= 0 then false
  else if Int64.to_int (Int64.sub later.seq earlier.seq) <> List.length prefix then false
  else begin
    let chain = List.fold_left Hash.chain earlier.chain prefix in
    Hash.equal chain later.chain
    &&
    match List.rev prefix with
    | last :: _ -> Hash.equal last later.entry
    | [] -> false
  end
