module Mac = Resoc_crypto.Mac
module Hash = Resoc_crypto.Hash
module Register = Resoc_hw.Register
module Check = Resoc_check.Check

(* Test-only mutation knob: a broken USIG that re-issues the current counter
   value instead of stepping it. The resoc_check self-tests flip it to prove
   the issuance checker catches counter reuse; leave [false] otherwise. *)
let test_reissue = ref false

type t = {
  id : int;
  key : Mac.key;
  reg : Register.t;
  mutable issued : int;
  mutable faults_detected : int;
  mutable corrections : int;
  mutable failed : bool;
  chk : int;  (* resoc_check hybrid id, -1 when checking is off *)
}

type ui = { signer : int; counter : int64; tag : Mac.t }

let create ~id ~key ~protection =
  {
    id;
    key;
    reg = Register.create protection 0L;
    issued = 0;
    faults_detected = 0;
    corrections = 0;
    failed = false;
    chk = (if !Check.enabled then Check.new_hybrid ~name:"usig" else -1);
  }

let id t = t.id

let counter_register t = t.reg

let counter_value t = fst (Register.read t.reg)

let ui_digest ~signer ~counter digest =
  Hash.combine (Hash.combine_int (Hash.combine_int (Hash.of_string "usig-ui") signer) 0)
    (Hash.combine counter digest)

let failed t = t.failed

let create_ui t digest =
  if t.failed then Error "usig: latched failed (uncorrectable counter fault)"
  else
  match Register.read t.reg with
  | _, Register.Fault_detected ->
    (* An uncorrectable error on the monotonic counter is unrecoverable
       without re-provisioning: latch fail-stop rather than keep operating
       on (and further degrading) a suspect counter. *)
    t.faults_detected <- t.faults_detected + 1;
    t.failed <- true;
    Error "usig: counter register fault detected"
  | current, status ->
    if status = Register.Corrected then t.corrections <- t.corrections + 1;
    let next =
      if !test_reissue && Int64.compare current 0L > 0 then current else Int64.add current 1L
    in
    Register.write t.reg next;
    t.issued <- t.issued + 1;
    if t.chk >= 0 then Check.counter_issued ~hybrid:t.chk ~read:current ~issued:next ~digest;
    let tag = Mac.sign t.key (ui_digest ~signer:t.id ~counter:next digest) in
    Ok { signer = t.id; counter = next; tag }

let verify_ui ~key ~digest ui =
  Mac.verify key (ui_digest ~signer:ui.signer ~counter:ui.counter digest) ui.tag

let uis_issued t = t.issued
let faults_detected t = t.faults_detected
let corrections t = t.corrections

module Monotonic = struct
  type checker = (int, int64) Hashtbl.t

  type verdict = Accept | Replay | Gap of int64

  let create () : checker = Hashtbl.create 8

  let last_accepted t ~signer =
    match Hashtbl.find_opt t signer with Some c -> c | None -> 0L

  let force t ~signer ~counter = Hashtbl.replace t signer counter

  let check t ~signer ~counter =
    let last = last_accepted t ~signer in
    if Int64.compare counter last <= 0 then Replay
    else if Int64.equal counter (Int64.add last 1L) then begin
      Hashtbl.replace t signer counter;
      Accept
    end
    else Gap (Int64.sub counter (Int64.add last 1L))
end
