(** Export trace rings to Chrome [trace_event] JSON, loadable in
    [chrome://tracing] and Perfetto. Record phases map to event phases:
    span begin/end to ["B"]/["E"], instants to ["i"], samples to counter
    events ["C"], and async begin/end to ["b"]/["e"] keyed by the record
    id. [name] resolves a (category, id) pair to the event name and
    [cat_label] a category to its label. *)

val write :
  Buffer.t ->
  first:bool ref ->
  Ring.t ->
  name:(cat:int -> id:int -> string) ->
  cat_label:(int -> string) ->
  unit

val to_string :
  rings:Ring.t list ->
  name:(cat:int -> id:int -> string) ->
  cat_label:(int -> string) ->
  unit ->
  string
