let metrics_on = ref false

let trace_on = ref false

let trace_capacity = ref 65536

let enable_metrics () = metrics_on := true

let enable_tracing ?capacity () =
  (match capacity with
  | Some c ->
    if c <= 0 then invalid_arg "Obs.enable_tracing: capacity must be positive";
    trace_capacity := c
  | None -> ());
  trace_on := true

let disable () =
  metrics_on := false;
  trace_on := false

type t = { metrics : Registry.t; ring : Ring.t }

(* Instances created on this domain since the last [begin_replicate],
   newest first. Domain-local so parallel campaign workers never share
   state: a replicate runs entirely on one domain and snapshots exactly
   the instances it created, whichever worker picked it up. *)
let collected : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let create () =
  let inst =
    {
      metrics = Registry.create ();
      ring = Ring.create ~capacity:(if !trace_on then !trace_capacity else 0);
    }
  in
  if !metrics_on || !trace_on then begin
    let l = Domain.DLS.get collected in
    l := inst :: !l
  end;
  inst

(* Flush hooks run (in registration order) just before a trace export,
   letting instrumented components emit closing samples — e.g. the NoC's
   final per-link load snapshot. Domain-local and reset per replicate,
   like [collected]. *)
let flush_hooks : (unit -> unit) list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let on_flush f =
  let l = Domain.DLS.get flush_hooks in
  l := f :: !l

let begin_replicate () =
  Domain.DLS.get collected := [];
  Domain.DLS.get flush_hooks := []

let domain_instances () = List.rev !(Domain.DLS.get collected)

module Cat = struct
  let des = 0

  let noc_link = 1

  let noc_drop = 2

  let repl = 3

  let fault = 4

  let label = function
    | 0 -> "des"
    | 1 | 2 -> "noc"
    | 3 -> "repl"
    | 4 -> "fault"
    | _ -> "other"
end

let code_request = 0

let code_pre_prepare = 1

let code_prepare = 2

let code_commit = 3

let code_reply = 4

let code_view_change = 5

let code_new_view = 6

(* Repl trace ids pack a per-span unique id above the 3-bit phase code;
   see DESIGN.md §6 for the exact layouts. *)
let repl_request_span ~replica ~client ~rid =
  (((((replica lsl 8) lor (client land 0xff)) lsl 20) lor (rid land 0xfffff)) lsl 3) lor code_request

let repl_counter_span ~replica ~counter =
  ((((replica lsl 32) lor (counter land 0xffffffff)) lsl 3)) lor code_commit

let repl_event ~replica ~code = (replica lsl 3) lor code

let repl_code_name = function
  | 0 -> "request"
  | 1 -> "pre-prepare"
  | 2 -> "prepare"
  | 3 -> "commit"
  | 4 -> "reply"
  | 5 -> "view-change"
  | 6 -> "new-view"
  | _ -> "repl"

let default_name ~cat ~id =
  if cat = Cat.noc_link then "noc.link." ^ string_of_int id
  else if cat = Cat.noc_drop then "noc.drop"
  else if cat = Cat.repl then repl_code_name (id land 7)
  else if cat = Cat.fault then (match id with 0 -> "fault.seu" | 1 -> "fault.trojan" | _ -> "fault.inject")
  else "des"

(* Merge scalars across this domain's instances, preserving first-seen
   order so the result is a pure function of the replicate. *)
let merged_scalars () =
  let order = ref [] in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun inst ->
      Registry.iter_scalars inst.metrics (fun name ~gauge v ->
          match Hashtbl.find_opt tbl name with
          | None ->
            Hashtbl.replace tbl name v;
            order := name :: !order
          | Some prev -> Hashtbl.replace tbl name (if gauge then v else prev + v)))
    (domain_instances ());
  List.rev_map (fun n -> (n, Hashtbl.find tbl n)) !order

let replicate_metrics () =
  List.map (fun (n, v) -> ("obs." ^ n, float_of_int v)) (merged_scalars ())

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let metrics_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"schema\":\"resoc-obs/1\",\"metrics\":{";
  List.iteri
    (fun i (n, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_json_string buf n;
      Printf.bprintf buf ":%d" v)
    (merged_scalars ());
  Buffer.add_string buf "}}\n";
  Buffer.contents buf

let write_trace path =
  List.iter (fun f -> f ()) (List.rev !(Domain.DLS.get flush_hooks));
  let rings = List.map (fun i -> i.ring) (domain_instances ()) in
  let s = Chrome.to_string ~rings ~name:default_name ~cat_label:Cat.label () in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)
