(* All metric state lives in [cells], one flat int array: a counter or
   gauge owns one cell, a histogram owns (buckets + 1) cells for its
   counts (the extra one is the overflow bucket) followed by one cell for
   the running sum. Hot-path updates are therefore single stores into an
   int array — no boxing, no closures, no allocation. *)

type kind = Counter | Gauge | Histogram of int array

type histogram = { h_base : int; bounds : int array }

type metric = { name : string; kind : kind; base : int }

type t = {
  mutable cells : int array;
  mutable used : int;
  mutable metrics : metric list;  (* reversed registration order *)
  index : (string, metric) Hashtbl.t;
}

let create () = { cells = [||]; used = 0; metrics = []; index = Hashtbl.create 16 }

let cells_of = function Counter | Gauge -> 1 | Histogram bounds -> Array.length bounds + 2

let ensure t n =
  let cap = Array.length t.cells in
  if t.used + n > cap then begin
    let ncap = max (t.used + n) (max 64 (2 * cap)) in
    let ncells = Array.make ncap 0 in
    Array.blit t.cells 0 ncells 0 t.used;
    t.cells <- ncells
  end

let register t name kind =
  match Hashtbl.find_opt t.index name with
  | Some m ->
    if m.kind <> kind then
      invalid_arg (Printf.sprintf "Registry: %S re-registered with a different kind" name);
    m.base
  | None ->
    let n = cells_of kind in
    ensure t n;
    let m = { name; kind; base = t.used } in
    t.used <- t.used + n;
    t.metrics <- m :: t.metrics;
    Hashtbl.replace t.index name m;
    m.base

let counter t name = register t name Counter

let gauge t name = register t name Gauge

let counter_block t ~n ~name =
  if n <= 0 then invalid_arg "Registry.counter_block: n must be positive";
  match Hashtbl.find_opt t.index (name 0) with
  | Some m -> m.base
  | None ->
    let base = register t (name 0) Counter in
    for i = 1 to n - 1 do
      ignore (register t (name i) Counter)
    done;
    base

let histogram t name ~bounds =
  if Array.length bounds = 0 then invalid_arg "Registry.histogram: empty bounds";
  Array.iteri
    (fun i b -> if i > 0 && b <= bounds.(i - 1) then invalid_arg "Registry.histogram: bounds must be strictly increasing")
    bounds;
  let bounds = Array.copy bounds in
  { h_base = register t name (Histogram bounds); bounds }

let null_histogram = { h_base = 0; bounds = [||] }

let incr t id = t.cells.(id) <- t.cells.(id) + 1

let add t id n = t.cells.(id) <- t.cells.(id) + n

let set t id v = t.cells.(id) <- v

let get t id = t.cells.(id)

let observe t h v =
  let nb = Array.length h.bounds in
  let rec bucket i = if i >= nb || v <= Array.unsafe_get h.bounds i then i else bucket (i + 1) in
  let b = bucket 0 in
  t.cells.(h.h_base + b) <- t.cells.(h.h_base + b) + 1;
  t.cells.(h.h_base + nb + 1) <- t.cells.(h.h_base + nb + 1) + v

let hist_bucket t h i = t.cells.(h.h_base + i)

let hist_count t h =
  let acc = ref 0 in
  for i = 0 to Array.length h.bounds do
    acc := !acc + t.cells.(h.h_base + i)
  done;
  !acc

let hist_sum t h = t.cells.(h.h_base + Array.length h.bounds + 1)

let n_metrics t = List.length t.metrics

let reset t = Array.fill t.cells 0 t.used 0

let in_order t = List.rev t.metrics

let hist_of m bounds = { h_base = m.base; bounds }

let iter_scalars t f =
  List.iter
    (fun m ->
      match m.kind with
      | Counter -> f m.name ~gauge:false t.cells.(m.base)
      | Gauge -> f m.name ~gauge:true t.cells.(m.base)
      | Histogram bounds ->
        let h = hist_of m bounds in
        f (m.name ^ ".count") ~gauge:false (hist_count t h);
        f (m.name ^ ".sum") ~gauge:false (hist_sum t h))
    (in_order t)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"schema\":\"resoc-obs/1\",\"metrics\":[";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"name\":";
      add_json_string buf m.name;
      (match m.kind with
      | Counter -> Printf.bprintf buf ",\"kind\":\"counter\",\"value\":%d}" t.cells.(m.base)
      | Gauge -> Printf.bprintf buf ",\"kind\":\"gauge\",\"value\":%d}" t.cells.(m.base)
      | Histogram bounds ->
        let h = hist_of m bounds in
        Buffer.add_string buf ",\"kind\":\"histogram\",\"bounds\":[";
        Array.iteri
          (fun j b ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (string_of_int b))
          bounds;
        Buffer.add_string buf "],\"buckets\":[";
        for j = 0 to Array.length bounds do
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int (hist_bucket t h j))
        done;
        Printf.bprintf buf "],\"count\":%d,\"sum\":%d}" (hist_count t h) (hist_sum t h)))
    (in_order t);
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let csv_quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "name,kind,field,value\n";
  let row name kind field value =
    Printf.bprintf buf "%s,%s,%s,%d\n" (csv_quote name) kind field value
  in
  List.iter
    (fun m ->
      match m.kind with
      | Counter -> row m.name "counter" "value" t.cells.(m.base)
      | Gauge -> row m.name "gauge" "value" t.cells.(m.base)
      | Histogram bounds ->
        let h = hist_of m bounds in
        row m.name "histogram" "count" (hist_count t h);
        row m.name "histogram" "sum" (hist_sum t h);
        Array.iteri (fun j b -> row m.name "histogram" (Printf.sprintf "le_%d" b) (hist_bucket t h j)) bounds;
        row m.name "histogram" "le_inf" (hist_bucket t h (Array.length bounds)))
    (in_order t);
  Buffer.contents buf
