(** Fixed-capacity trace ring of packed (time, category, id, arg) int
    records. Recording is four int stores and two bumps — no allocation —
    and when the ring is full the oldest records are overwritten, so a
    long run keeps its most recent window. A capacity of 0 makes every
    [record] a no-op (the disabled state). *)

type t

type phase = Span_begin | Span_end | Instant | Sample | Async_begin | Async_end

val create : capacity:int -> t

val capacity : t -> int

(** Records ever written, including overwritten ones. *)
val total : t -> int

(** Records currently retained. *)
val length : t -> int

(** Records lost to wraparound: [max 0 (total - capacity)]. *)
val dropped : t -> int

val record : t -> time:int -> cat:int -> phase:phase -> id:int -> arg:int -> unit

val span_begin : t -> time:int -> cat:int -> id:int -> arg:int -> unit
val span_end : t -> time:int -> cat:int -> id:int -> arg:int -> unit
val instant : t -> time:int -> cat:int -> id:int -> arg:int -> unit
val sample : t -> time:int -> cat:int -> id:int -> arg:int -> unit
val async_begin : t -> time:int -> cat:int -> id:int -> arg:int -> unit
val async_end : t -> time:int -> cat:int -> id:int -> arg:int -> unit

(** Iterate retained records oldest-first. *)
val iter : t -> (time:int -> cat:int -> phase:phase -> id:int -> arg:int -> unit) -> unit

val clear : t -> unit
