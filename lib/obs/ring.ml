(* Record layout: 4 consecutive ints per record in [data] —
   [time; (cat lsl 3) lor phase; id; arg]. The phase fits in 3 bits,
   leaving 60 bits of category space; see DESIGN.md §5. *)

type phase = Span_begin | Span_end | Instant | Sample | Async_begin | Async_end

type t = { data : int array; capacity : int; mutable next : int; mutable total : int }

let create ~capacity =
  if capacity < 0 then invalid_arg "Ring.create: negative capacity";
  { data = Array.make (max 1 (4 * capacity)) 0; capacity; next = 0; total = 0 }

let capacity t = t.capacity

let total t = t.total

let length t = min t.total t.capacity

let dropped t = max 0 (t.total - t.capacity)

let phase_code = function
  | Span_begin -> 0
  | Span_end -> 1
  | Instant -> 2
  | Sample -> 3
  | Async_begin -> 4
  | Async_end -> 5

let phase_of_code = function
  | 0 -> Span_begin
  | 1 -> Span_end
  | 2 -> Instant
  | 3 -> Sample
  | 4 -> Async_begin
  | _ -> Async_end

let record t ~time ~cat ~phase ~id ~arg =
  if t.capacity > 0 then begin
    let off = 4 * t.next in
    Array.unsafe_set t.data off time;
    Array.unsafe_set t.data (off + 1) ((cat lsl 3) lor phase_code phase);
    Array.unsafe_set t.data (off + 2) id;
    Array.unsafe_set t.data (off + 3) arg;
    let n = t.next + 1 in
    t.next <- (if n = t.capacity then 0 else n);
    t.total <- t.total + 1
  end

let span_begin t ~time ~cat ~id ~arg = record t ~time ~cat ~phase:Span_begin ~id ~arg

let span_end t ~time ~cat ~id ~arg = record t ~time ~cat ~phase:Span_end ~id ~arg

let instant t ~time ~cat ~id ~arg = record t ~time ~cat ~phase:Instant ~id ~arg

let sample t ~time ~cat ~id ~arg = record t ~time ~cat ~phase:Sample ~id ~arg

let async_begin t ~time ~cat ~id ~arg = record t ~time ~cat ~phase:Async_begin ~id ~arg

let async_end t ~time ~cat ~id ~arg = record t ~time ~cat ~phase:Async_end ~id ~arg

let iter t f =
  let kept = length t in
  let start = if t.total <= t.capacity then 0 else t.next in
  for i = 0 to kept - 1 do
    let idx = start + i in
    let idx = if idx >= t.capacity then idx - t.capacity else idx in
    let off = 4 * idx in
    f ~time:t.data.(off)
      ~cat:(t.data.(off + 1) lsr 3)
      ~phase:(phase_of_code (t.data.(off + 1) land 7))
      ~id:t.data.(off + 2) ~arg:t.data.(off + 3)
  done

let clear t =
  t.next <- 0;
  t.total <- 0
