(** Facade of the observability layer.

    Two global flags gate every instrument site in the simulator; both
    default to off, and the guarded sites are single branches on them, so
    a disabled run does no observability work and allocates nothing on
    the hot path. Enable the flags before creating engines: instruments
    are registered at component-creation time only when the matching flag
    is already on.

    Each {!create} call makes an independent instance (one registry + one
    ring); the DES engine owns one per simulation and subsystems reach it
    through the engine. When either flag is on, instances created on the
    current domain are also collected into a domain-local list so a
    campaign worker can snapshot everything its replicate created
    ({!begin_replicate} / {!replicate_metrics}) and a CLI can export one
    merged trace ({!write_trace}) — both deterministic regardless of
    which domain ran which replicate. *)

val metrics_on : bool ref
val trace_on : bool ref

val enable_metrics : unit -> unit

(** [enable_tracing ?capacity ()] turns tracing on; engines created
    afterwards carry a ring of [capacity] records (default 65536). *)
val enable_tracing : ?capacity:int -> unit -> unit

val disable : unit -> unit

type t = { metrics : Registry.t; ring : Ring.t }

val create : unit -> t

(** Trace-record categories and their exported labels. *)
module Cat : sig
  val des : int
  val noc_link : int
  val noc_drop : int
  val repl : int
  val fault : int
  val label : int -> string
end

(** Protocol-phase codes packed into the low 3 bits of [Cat.repl] ids. *)
val code_request : int

val code_pre_prepare : int
val code_prepare : int
val code_commit : int
val code_reply : int
val code_view_change : int
val code_new_view : int

(** Async-span id for one client request at one replica. *)
val repl_request_span : replica:int -> client:int -> rid:int -> int

(** Async-span id for one agreement slot (counter / sequence number) at
    one replica. *)
val repl_counter_span : replica:int -> counter:int -> int

(** Id for instant protocol events (prepare broadcast, view change). *)
val repl_event : replica:int -> code:int -> int

(** Default (category, id) -> event-name resolver for {!Chrome}. *)
val default_name : cat:int -> id:int -> string

(** Register a hook run just before {!write_trace} exports, letting a
    component emit closing samples (e.g. the NoC's final per-link load
    snapshot). Domain-local; hooks run in registration order and are
    forgotten by {!begin_replicate}. *)
val on_flush : (unit -> unit) -> unit

(** Forget the instances and flush hooks collected on this domain so
    far. *)
val begin_replicate : unit -> unit

(** Instances created on this domain since {!begin_replicate}, oldest
    first. *)
val domain_instances : unit -> t list

(** Merged scalar snapshot of this domain's instances as
    [("obs." ^ name, value)] pairs: counters and histogram count/sum
    cells are summed across instances, gauges take the latest value. *)
val replicate_metrics : unit -> (string * float) list

(** Merged scalar snapshot as a JSON object keyed by metric name. *)
val metrics_json : unit -> string

(** Export every ring collected on this domain to [path] as Chrome
    [trace_event] JSON. *)
val write_trace : string -> unit
