let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let write buf ~first ring ~name ~cat_label =
  Ring.iter ring (fun ~time ~cat ~phase ~id ~arg ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf "{\"name\":";
      add_json_string buf (name ~cat ~id);
      Buffer.add_string buf ",\"cat\":";
      add_json_string buf (cat_label cat);
      (match phase with
      | Ring.Span_begin -> Buffer.add_string buf ",\"ph\":\"B\""
      | Ring.Span_end -> Buffer.add_string buf ",\"ph\":\"E\""
      | Ring.Instant -> Buffer.add_string buf ",\"ph\":\"i\",\"s\":\"t\""
      | Ring.Sample -> Buffer.add_string buf ",\"ph\":\"C\""
      | Ring.Async_begin -> Printf.bprintf buf ",\"ph\":\"b\",\"id\":\"0x%x\"" id
      | Ring.Async_end -> Printf.bprintf buf ",\"ph\":\"e\",\"id\":\"0x%x\"" id);
      Printf.bprintf buf ",\"ts\":%d,\"pid\":0,\"tid\":0,\"args\":{\"v\":%d}}" time arg)

let to_string ~rings ~name ~cat_label () =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  List.iter (fun r -> write buf ~first r ~name ~cat_label) rings;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf
