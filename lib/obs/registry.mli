(** Metrics registry: int counters, gauges, and fixed-bucket histograms
    registered by dotted name and backed by one flat int array.

    Registration (cold path) returns a cell index — or, for histograms, a
    small handle holding the bucket bounds — and is idempotent: registering
    an existing name with the same kind returns the original cells, so
    several instances of a subsystem on one engine share instruments.
    Updates (hot path) are single int-array stores with no allocation. *)

type t

type kind = Counter | Gauge | Histogram of int array

type histogram = private { h_base : int; bounds : int array }

val create : unit -> t

(** [counter t name] registers (or finds) an int counter; returns its cell. *)
val counter : t -> string -> int

(** [gauge t name] registers (or finds) an int gauge; returns its cell. *)
val gauge : t -> string -> int

(** [counter_block t ~n ~name] registers [n] counters named [name 0] ..
    [name (n-1)] in consecutive cells and returns the first cell, so a
    dense integer id (e.g. a NoC link id) indexes its counter as
    [base + id]. Idempotent on [name 0]. *)
val counter_block : t -> n:int -> name:(int -> string) -> int

(** [histogram t name ~bounds] registers a fixed-bucket histogram with
    inclusive upper [bounds] (strictly increasing) plus an overflow
    bucket. *)
val histogram : t -> string -> bounds:int array -> histogram

(** Placeholder handle for disabled instrument sites; never observe it. *)
val null_histogram : histogram

val incr : t -> int -> unit
val add : t -> int -> int -> unit
val set : t -> int -> int -> unit
val get : t -> int -> int

(** [observe t h v] increments the bucket for [v] and adds [v] to the sum. *)
val observe : t -> histogram -> int -> unit

val hist_count : t -> histogram -> int
val hist_sum : t -> histogram -> int

(** [hist_bucket t h i] reads bucket [i]; bucket [Array.length bounds] is
    the overflow bucket. *)
val hist_bucket : t -> histogram -> int -> int

val n_metrics : t -> int

(** Zero every cell; registrations are kept. *)
val reset : t -> unit

(** Scalar view in registration order: counters and gauges by name,
    histograms flattened to [name ^ ".count"] and [name ^ ".sum"].
    [gauge:true] marks values that must overwrite (not sum) on merge. *)
val iter_scalars : t -> (string -> gauge:bool -> int -> unit) -> unit

(** Full snapshot as [resoc-obs/1] JSON, histogram buckets included. *)
val to_json : t -> string

(** Snapshot as CSV with header [name,kind,field,value]. *)
val to_csv : t -> string
