exception Violation of string

let () =
  Printexc.register_printer (function
    | Violation msg -> Some ("invariant violation: " ^ msg)
    | _ -> None)

let enabled = ref false
let enable () = enabled := true
let disable () = enabled := false
let violation fmt = Printf.ksprintf (fun msg -> raise (Violation msg)) fmt

type session = {
  protocol : string;
  (* (view, seq) -> digest committed there first, plus the committing replica
     (for the error message when a second replica disagrees). *)
  agreed : (int * int, int64 * int) Hashtbl.t;
  (* Batch atomicity: (replica, view, client, rid) -> (seq, pos) of the
     one committed batch the request belongs to. Keyed per replica and
     view because re-proposal after a view change legitimately re-commits
     an uncommitted-in-the-old-view request in a fresh batch. *)
  batched : (int * int * int * int, int * int) Hashtbl.t;
  (* Batch order: (replica, view, seq) -> next expected position. *)
  batch_next : (int * int * int, int) Hashtbl.t;
}

type hybrid = {
  h_name : string;
  h_id : int;
  mutable h_last : int64;  (* last issued counter / A2M position *)
  mutable h_primed : bool;  (* [h_last] is meaningful *)
  bound : (int64, int64) Hashtbl.t;  (* counter -> digest it was bound to *)
}

type net = {
  mutable injected : int;
  mutable delivered : int;
  mutable dropped : int;
  (* flight id -> (route-table epoch, routers visited under it, newest
     first). Loop freedom is an intra-epoch property — a recompute may
     legitimately route a flight back through earlier ground — so the
     trail resets when the epoch advances. Trails are short (bounded by
     the mesh diameter), so a revisit scan is O(path). *)
  visited : (int, int * int list) Hashtbl.t;
  (* multicast id -> its expected and observed delivery sets. *)
  mcasts : (int, mcast) Hashtbl.t;
}

and mcast = {
  mc_expected : (int, unit) Hashtbl.t;  (* tree-reachable destinations at send *)
  mc_got : (int, unit) Hashtbl.t;
}

type state = {
  sessions : (int, session) Hashtbl.t;
  hybrids : (int, hybrid) Hashtbl.t;
  nets : (int, net) Hashtbl.t;
  mutable next_id : int;
  mutable fired : int;
}

(* Per-domain state: campaign workers check their replicates independently, so
   [--check] composes with [--jobs n] exactly like the obs metric registry. *)
let state : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        sessions = Hashtbl.create 8;
        hybrids = Hashtbl.create 32;
        nets = Hashtbl.create 8;
        next_id = 0;
        fired = 0;
      })

let begin_replicate () =
  let s = Domain.DLS.get state in
  Hashtbl.reset s.sessions;
  Hashtbl.reset s.hybrids;
  Hashtbl.reset s.nets;
  s.next_id <- 0;
  s.fired <- 0

let hooks_fired () = (Domain.DLS.get state).fired

let fresh_id s =
  let id = s.next_id in
  s.next_id <- id + 1;
  id

let new_session ~protocol =
  let s = Domain.DLS.get state in
  let id = fresh_id s in
  Hashtbl.replace s.sessions id
    {
      protocol;
      agreed = Hashtbl.create 256;
      batched = Hashtbl.create 64;
      batch_next = Hashtbl.create 64;
    };
  id

let new_hybrid ~name =
  let s = Domain.DLS.get state in
  let id = fresh_id s in
  Hashtbl.replace s.hybrids id
    { h_name = name; h_id = id; h_last = 0L; h_primed = false; bound = Hashtbl.create 64 };
  id

let new_network () =
  let s = Domain.DLS.get state in
  let id = fresh_id s in
  Hashtbl.replace s.nets id
    {
      injected = 0;
      delivered = 0;
      dropped = 0;
      visited = Hashtbl.create 64;
      mcasts = Hashtbl.create 16;
    };
  id

(* Ids can outlive a [begin_replicate] when a system created for one replicate
   leaks into the next; lookups are therefore total and unknown ids ignored. *)

let commit ~session ~replica ~view ~seq ~digest ~signers ~quorum ~faulty =
  let s = Domain.DLS.get state in
  s.fired <- s.fired + 1;
  match Hashtbl.find_opt s.sessions session with
  | None -> ()
  | Some _ when faulty -> ()
  | Some ss ->
    if signers >= 0 && signers < quorum then
      violation "%s: replica %d committed seq %d (view %d) on %d signers, quorum is %d" ss.protocol
        replica seq view signers quorum;
    (match Hashtbl.find_opt ss.agreed (view, seq) with
    | None -> Hashtbl.add ss.agreed (view, seq) (digest, replica)
    | Some (prior, first) ->
      if not (Int64.equal prior digest) then
        violation "%s: agreement broken at view %d seq %d: replica %d committed %Lx, replica %d %Lx"
          ss.protocol view seq first prior replica digest)

let batch_commit ~session ~replica ~view ~seq ~pos ~len ~client ~rid ~faulty =
  let s = Domain.DLS.get state in
  s.fired <- s.fired + 1;
  match Hashtbl.find_opt s.sessions session with
  | None -> ()
  | Some _ when faulty -> ()
  | Some ss ->
    if pos < 0 || pos >= len then
      violation "%s: replica %d committed batch (view %d, seq %d) with position %d of %d"
        ss.protocol replica view seq pos len;
    (match Hashtbl.find_opt ss.batched (replica, view, client, rid) with
    | Some (seq0, pos0) when seq0 = seq && pos0 = pos ->
      (* Exact re-report: some protocols note a commit both when the
         certificate forms and again at execution. Idempotent. *)
      ()
    | Some (seq0, pos0) ->
      (* Exactly one committed batch per request (per replica and view). *)
      violation
        "%s: batch atomicity broken: replica %d committed request c%d#%d in two batches of view \
         %d (seq %d pos %d, then seq %d pos %d)"
        ss.protocol replica client rid view seq0 pos0 seq pos
    | None ->
      (* In-order within the batch: positions 0 .. len-1, ascending. *)
      let expected =
        match Hashtbl.find_opt ss.batch_next (replica, view, seq) with Some e -> e | None -> 0
      in
      if pos <> expected then
        violation "%s: replica %d batch (view %d, seq %d) out of order: position %d, expected %d"
          ss.protocol replica view seq pos expected;
      Hashtbl.replace ss.batch_next (replica, view, seq) (pos + 1);
      Hashtbl.add ss.batched (replica, view, client, rid) (seq, pos))

let exec_window ~session ~replica ~seq ~low ~high ~faulty =
  let s = Domain.DLS.get state in
  s.fired <- s.fired + 1;
  match Hashtbl.find_opt s.sessions session with
  | None -> ()
  | Some _ when faulty -> ()
  | Some ss ->
    if seq <= low || seq > high then
      violation "%s: replica %d executed seq %d outside its watermark window (%d, %d]" ss.protocol
        replica seq low high

let transfer_applied ~session ~replica ~seq ~claimed ~actual ~faulty =
  let s = Domain.DLS.get state in
  s.fired <- s.fired + 1;
  match Hashtbl.find_opt s.sessions session with
  | None -> ()
  | Some _ when faulty -> ()
  | Some ss ->
    if not (Int64.equal claimed actual) then
      violation
        "%s: replica %d installed a state transfer at seq %d whose digest %Lx does not match the \
         certificate's %Lx"
        ss.protocol replica seq actual claimed

let counter_issued ~hybrid ~read ~issued ~digest =
  let s = Domain.DLS.get state in
  s.fired <- s.fired + 1;
  match Hashtbl.find_opt s.hybrids hybrid with
  | None -> ()
  | Some h ->
    if h.h_primed && not (Int64.equal read h.h_last) then begin
      (* The counter register no longer holds what the hybrid last issued: a
         fault injector perturbed it (e.g. an SEU on a Plain USIG register in
         E2). That is the experiment working as intended, not equivocation —
         resynchronize and void the previous bindings. *)
      Hashtbl.reset h.bound;
      h.h_last <- issued;
      Hashtbl.replace h.bound issued digest
    end
    else begin
      if h.h_primed && Int64.compare issued h.h_last <= 0 then begin
        match Hashtbl.find_opt h.bound issued with
        | Some prior when not (Int64.equal prior digest) ->
          violation "%s %d: counter %Ld re-issued for a second message (equivocation): %Lx then %Lx"
            h.h_name h.h_id issued prior digest
        | _ ->
          violation "%s %d: counter regression: issued %Ld after %Ld" h.h_name h.h_id issued h.h_last
      end;
      h.h_primed <- true;
      h.h_last <- issued;
      Hashtbl.replace h.bound issued digest
    end

let a2m_append ~hybrid ~seq ~digest =
  let s = Domain.DLS.get state in
  s.fired <- s.fired + 1;
  match Hashtbl.find_opt s.hybrids hybrid with
  | None -> ()
  | Some h ->
    if h.h_primed && not (Int64.equal seq (Int64.add h.h_last 1L)) then
      violation "%s %d: log position %Ld appended after %Ld (must grow by one)" h.h_name h.h_id seq
        h.h_last;
    (match Hashtbl.find_opt h.bound seq with
    | Some prior when not (Int64.equal prior digest) ->
      violation "%s %d: log position %Ld rebound (equivocation): %Lx then %Lx" h.h_name h.h_id seq
        prior digest
    | _ -> ());
    h.h_primed <- true;
    h.h_last <- seq;
    Hashtbl.replace h.bound seq digest

let flit_injected ~net =
  let s = Domain.DLS.get state in
  s.fired <- s.fired + 1;
  match Hashtbl.find_opt s.nets net with None -> () | Some n -> n.injected <- n.injected + 1

let conservation n what =
  if n.delivered + n.dropped > n.injected then
    violation "noc: conservation broken on %s: delivered %d + dropped %d > injected %d" what
      n.delivered n.dropped n.injected

let flit_delivered ~net =
  let s = Domain.DLS.get state in
  s.fired <- s.fired + 1;
  match Hashtbl.find_opt s.nets net with
  | None -> ()
  | Some n ->
    n.delivered <- n.delivered + 1;
    conservation n "deliver"

let flit_dropped ~net =
  let s = Domain.DLS.get state in
  s.fired <- s.fired + 1;
  match Hashtbl.find_opt s.nets net with
  | None -> ()
  | Some n ->
    n.dropped <- n.dropped + 1;
    conservation n "drop"

let noc_hop ~net ~flight ~epoch ~cur ~next ~cur_up ~link_up =
  let s = Domain.DLS.get state in
  s.fired <- s.fired + 1;
  match Hashtbl.find_opt s.nets net with
  | None -> ()
  | Some n ->
    if not cur_up then
      violation "noc: flight %d routed out of failed router %d (toward %d)" flight cur next;
    if not link_up then violation "noc: flight %d crossed failed link %d->%d" flight cur next;
    let seen =
      match Hashtbl.find_opt n.visited flight with
      | Some (e, trail) when e = epoch -> trail
      | Some _ | None -> []
    in
    if List.mem cur seen then
      violation "noc: flight %d revisited router %d within epoch %d (routing loop): path %s" flight
        cur epoch
        (String.concat "<-" (List.map string_of_int (cur :: seen)));
    Hashtbl.replace n.visited flight (epoch, cur :: seen)

let noc_flight_done ~net ~flight =
  let s = Domain.DLS.get state in
  match Hashtbl.find_opt s.nets net with
  | None -> ()
  | Some n -> Hashtbl.remove n.visited flight

(* Multicast invariants (DESIGN.md section 10). [mcast_begin]/[mcast_expect]
   record, at send time, the destination set the multicast trees reach —
   the per-destination unicast reference over the current tables. Each
   actual delivery goes through [mcast_deliver], which fires on a second
   delivery to one node (no duplicate delivery: the tree forks must be
   disjoint). [mcast_done] closes the multicast: when [strict] (the mesh
   epoch never moved while the payload was in flight) the observed set
   must equal the reference exactly — no reachable destination missed, no
   extra destination served. A mid-flight fault bumps the epoch, so
   fault-time losses are forgiven by [strict = false]. *)

let mcast_begin ~net ~mcast =
  let s = Domain.DLS.get state in
  s.fired <- s.fired + 1;
  match Hashtbl.find_opt s.nets net with
  | None -> ()
  | Some n ->
    Hashtbl.replace n.mcasts mcast
      { mc_expected = Hashtbl.create 16; mc_got = Hashtbl.create 16 }

let mcast_expect ~net ~mcast ~node =
  let s = Domain.DLS.get state in
  match Hashtbl.find_opt s.nets net with
  | None -> ()
  | Some n -> (
    match Hashtbl.find_opt n.mcasts mcast with
    | None -> ()
    | Some m -> Hashtbl.replace m.mc_expected node ())

let mcast_deliver ~net ~mcast ~node =
  let s = Domain.DLS.get state in
  s.fired <- s.fired + 1;
  match Hashtbl.find_opt s.nets net with
  | None -> ()
  | Some n -> (
    match Hashtbl.find_opt n.mcasts mcast with
    | None -> ()
    | Some m ->
      if Hashtbl.mem m.mc_got node then
        violation "noc: multicast %d delivered twice to node %d" mcast node;
      Hashtbl.replace m.mc_got node ())

let mcast_done ~net ~mcast ~strict =
  let s = Domain.DLS.get state in
  s.fired <- s.fired + 1;
  match Hashtbl.find_opt s.nets net with
  | None -> ()
  | Some n -> (
    match Hashtbl.find_opt n.mcasts mcast with
    | None -> ()
    | Some m ->
      if strict then begin
        Hashtbl.iter
          (fun node () ->
            if not (Hashtbl.mem m.mc_got node) then
              violation
                "noc: multicast %d missed node %d although the trees reach it (no mid-flight \
                 fault)"
                mcast node)
          m.mc_expected;
        if Hashtbl.length m.mc_got <> Hashtbl.length m.mc_expected then
          violation "noc: multicast %d delivered to %d nodes, the route tables reach %d" mcast
            (Hashtbl.length m.mc_got)
            (Hashtbl.length m.mc_expected)
      end;
      Hashtbl.remove n.mcasts mcast)

let noc_reachable_drop ~net ~node ~dst ~reachable =
  let s = Domain.DLS.get state in
  s.fired <- s.fired + 1;
  match Hashtbl.find_opt s.nets net with
  | None -> ()
  | Some _ ->
    if reachable then
      violation
        "noc: adaptive routing dropped a message at live router %d although destination %d is \
         reachable"
        node dst
