let split_chunks lst gran =
  let arr = Array.of_list lst in
  let len = Array.length arr in
  List.init gran (fun g ->
      let lo = g * len / gran and hi = (g + 1) * len / gran in
      Array.to_list (Array.sub arr lo (hi - lo)))

let ddmin ?(max_tests = 512) ~test n =
  let tests = ref 0 in
  let run keep =
    if !tests >= max_tests then false
    else begin
      incr tests;
      test keep
    end
  in
  if n <= 0 then []
  else if run [] then []
  else begin
    let rec go current gran =
      let len = List.length current in
      if len <= 1 then current
      else begin
        let gran = min gran len in
        let chunks = List.filter (fun c -> c <> []) (split_chunks current gran) in
        match List.find_opt run chunks with
        | Some c -> go c 2
        | None -> (
          let complements =
            if gran <= 2 then []  (* complements duplicate the chunks at granularity 2 *)
            else List.map (fun c -> List.filter (fun x -> not (List.mem x c)) current) chunks
          in
          match List.find_opt run complements with
          | Some c -> go c (max 2 (gran - 1))
          | None -> if gran < len then go current (min len (2 * gran)) else current)
      end
    in
    go (List.init n Fun.id) 2
  end
