(** Delta-debugging minimization of failing injection schedules.

    [ddmin ~test n] minimizes the index set [{0..n-1}] under [test]: [test
    keep] must re-run the failing replicate with only the occurrences in
    [keep] applied and report whether it still fails. The result is a
    1-minimal failing subset — removing any single chunk at final granularity
    no longer fails — or the best set found when the trial budget runs out.

    Termination: every recursion step either strictly shrinks the candidate
    set (reduce-to-subset / reduce-to-complement) or strictly raises the
    granularity, which is capped by the candidate size; [max_tests] bounds
    total work regardless. *)

val ddmin : ?max_tests:int -> test:(int list -> bool) -> int -> int list
(** [max_tests] defaults to 512 re-executions. *)
