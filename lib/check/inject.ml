type kind = Seu | Trojan | Apt | Link

let kind_name = function Seu -> "seu" | Trojan -> "trojan" | Apt -> "apt" | Link -> "link"

let kind_of_name = function
  | "seu" -> Seu
  | "trojan" -> Trojan
  | "apt" -> Apt
  | "link" -> Link
  | s -> invalid_arg ("Inject.kind_of_name: " ^ s)

let kind_code = function Seu -> 0 | Trojan -> 1 | Apt -> 2 | Link -> 3
let kind_of_code = function 0 -> Seu | 1 -> Trojan | 2 -> Apt | _ -> Link
let active = ref false
let record () = active := true
let stop () = active := false

(* Four parallel int arrays instead of an event-record list: the log is on the
   injection path of every SEU at full rate, so appending must not allocate
   beyond the amortized doubling. *)
type state = {
  mutable n : int;
  mutable kinds : int array;
  mutable times : int array;
  mutable a : int array;
  mutable b : int array;
  mutable mask : Bytes.t option;  (* '\001' = apply; absent = apply all *)
}

let state : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { n = 0; kinds = [||]; times = [||]; a = [||]; b = [||]; mask = None })

let begin_replicate () =
  let s = Domain.DLS.get state in
  s.n <- 0;
  s.mask <- None

let set_mask ~total keep =
  let s = Domain.DLS.get state in
  let m = Bytes.make (max total 0) '\000' in
  List.iter (fun i -> if i >= 0 && i < total then Bytes.set m i '\001') keep;
  s.mask <- Some m

let grow s =
  let cap = max 64 (2 * Array.length s.kinds) in
  let extend src =
    let dst = Array.make cap 0 in
    Array.blit src 0 dst 0 s.n;
    dst
  in
  s.kinds <- extend s.kinds;
  s.times <- extend s.times;
  s.a <- extend s.a;
  s.b <- extend s.b

let permit ~kind ~time ~a ~b =
  if not !active then true
  else begin
    let s = Domain.DLS.get state in
    let i = s.n in
    if i >= Array.length s.kinds then grow s;
    s.kinds.(i) <- kind_code kind;
    s.times.(i) <- time;
    s.a.(i) <- a;
    s.b.(i) <- b;
    s.n <- i + 1;
    match s.mask with
    | None -> true
    | Some m -> i < Bytes.length m && Bytes.get m i = '\001'
  end

let count () = (Domain.DLS.get state).n

type event = { kind : kind; time : int; a : int; b : int }

let events () =
  let s = Domain.DLS.get state in
  List.init s.n (fun i ->
      { kind = kind_of_code s.kinds.(i); time = s.times.(i); a = s.a.(i); b = s.b.(i) })
