type event = { kind : Inject.kind; time : int; a : int; b : int; kept : bool }

type t = {
  experiment : string;
  cell : string;
  seed : int64;
  error : string;
  total_events : int;
  keep : int list;
  events : event list;
}

let filename t = Printf.sprintf "FAIL_%s_%Ld.json" t.experiment t.seed

(* Writer — same hand-rolled style as Emit/Obs so the dependency stays flat. *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_json t =
  let buf = Buffer.create 1024 in
  let field name =
    Buffer.add_string buf "  ";
    add_json_string buf name;
    Buffer.add_string buf ": "
  in
  Buffer.add_string buf "{\n";
  field "schema";
  Buffer.add_string buf "\"resoc-fail/1\",\n";
  field "experiment";
  add_json_string buf t.experiment;
  Buffer.add_string buf ",\n";
  field "cell";
  add_json_string buf t.cell;
  Buffer.add_string buf ",\n";
  field "seed";
  Buffer.add_string buf (Printf.sprintf "%Ld,\n" t.seed);
  field "error";
  add_json_string buf t.error;
  Buffer.add_string buf ",\n";
  field "total_events";
  Buffer.add_string buf (Printf.sprintf "%d,\n" t.total_events);
  field "keep";
  Buffer.add_string buf "[";
  List.iteri
    (fun i k ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (string_of_int k))
    t.keep;
  Buffer.add_string buf "],\n";
  field "events";
  Buffer.add_string buf "[";
  List.iteri
    (fun i (e : event) ->
      Buffer.add_string buf (if i > 0 then ",\n    " else "\n    ");
      Buffer.add_string buf
        (Printf.sprintf "{\"kind\": \"%s\", \"time\": %d, \"a\": %d, \"b\": %d, \"kept\": %b}"
           (Inject.kind_name e.kind) e.time e.a e.b e.kept))
    t.events;
  Buffer.add_string buf (if t.events = [] then "]\n}\n" else "\n  ]\n}\n");
  Buffer.contents buf

let write ~dir t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (filename t) in
  let oc = open_out path in
  output_string oc (to_json t);
  close_out oc;
  path

(* Reader — a minimal recursive-descent JSON parser; FAIL files contain only
   objects, arrays, strings, integers and booleans. *)

type json = Jnull | Jbool of bool | Jint of int64 | Jstr of string | Jlist of json list | Jobj of (string * json) list

let parse_json s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = failwith (Printf.sprintf "Replay.of_json: %s at offset %d" msg !pos) in
  let peek () = if !pos < len then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < len then
      match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c =
    skip_ws ();
    if peek () <> c then fail (Printf.sprintf "expected %c" c);
    advance ()
  in
  let literal word v =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 32 in
    let rec loop () =
      if !pos >= len then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= len then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'u' ->
           if !pos + 4 >= len then fail "short unicode escape";
           let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
           (* FAIL files only escape control characters, so one byte is enough. *)
           Buffer.add_char buf (Char.chr (code land 0xff));
           pos := !pos + 5
         | _ -> fail "unknown escape");
        loop ()
      | c -> Buffer.add_char buf c; advance (); loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_int () =
    let start = !pos in
    if peek () = '-' then advance ();
    while !pos < len && s.[!pos] >= '0' && s.[!pos] <= '9' do
      advance ()
    done;
    if !pos = start then fail "expected number";
    Jint (Int64.of_string (String.sub s start (!pos - start)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin advance (); Jobj [] end
      else begin
        let rec members acc =
          let key = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); skip_ws (); members ((key, v) :: acc)
          | '}' -> advance (); List.rev ((key, v) :: acc)
          | _ -> fail "expected , or }"
        in
        members []
        |> fun fields -> Jobj fields
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin advance (); Jlist [] end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); elements (v :: acc)
          | ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        Jlist (elements [])
      end
    | '"' -> Jstr (parse_string ())
    | 't' -> literal "true" (Jbool true)
    | 'f' -> literal "false" (Jbool false)
    | 'n' -> literal "null" Jnull
    | _ -> parse_int ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing input";
  v

let of_json text =
  let fields =
    match parse_json text with Jobj f -> f | _ -> failwith "Replay.of_json: expected an object"
  in
  let get name =
    match List.assoc_opt name fields with
    | Some v -> v
    | None -> failwith ("Replay.of_json: missing field " ^ name)
  in
  let str name = match get name with Jstr s -> s | _ -> failwith ("Replay.of_json: " ^ name) in
  let int64 name = match get name with Jint i -> i | _ -> failwith ("Replay.of_json: " ^ name) in
  let int name = Int64.to_int (int64 name) in
  (match get "schema" with
  | Jstr "resoc-fail/1" -> ()
  | _ -> failwith "Replay.of_json: unsupported schema");
  let keep =
    match get "keep" with
    | Jlist l -> List.map (function Jint i -> Int64.to_int i | _ -> failwith "Replay.of_json: keep") l
    | _ -> failwith "Replay.of_json: keep"
  in
  let events =
    match get "events" with
    | Jlist l ->
      List.map
        (function
          | Jobj e ->
            let f name = match List.assoc_opt name e with Some v -> v | None -> failwith ("Replay.of_json: event." ^ name) in
            let num name = match f name with Jint i -> Int64.to_int i | _ -> failwith ("Replay.of_json: event." ^ name) in
            {
              kind = (match f "kind" with Jstr k -> Inject.kind_of_name k | _ -> failwith "Replay.of_json: event.kind");
              time = num "time";
              a = num "a";
              b = num "b";
              kept = (match f "kept" with Jbool b -> b | _ -> failwith "Replay.of_json: event.kept");
            }
          | _ -> failwith "Replay.of_json: events")
        l
    | _ -> failwith "Replay.of_json: events"
  in
  {
    experiment = str "experiment";
    cell = str "cell";
    seed = int64 "seed";
    error = str "error";
    total_events = int "total_events";
    keep;
    events;
  }

let read path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_json text
