(** FAIL_<exp>_<seed>.json records: everything needed to re-execute a failing
    replicate deterministically — the replicate seed, the size of its original
    injection schedule, the minimized occurrence indices to keep, and the
    (annotated) event list of the minimal reproduction for human eyes. *)

type event = { kind : Inject.kind; time : int; a : int; b : int; kept : bool }

type t = {
  experiment : string;
  cell : string;
  seed : int64;
  error : string;  (* the failure the schedule reproduces *)
  total_events : int;  (* occurrences in the original failing run *)
  keep : int list;  (* minimal occurrence indices still failing *)
  events : event list;
}

val filename : t -> string
(** [FAIL_<experiment>_<seed>.json]. *)

val to_json : t -> string

val write : dir:string -> t -> string
(** Serialize under [dir] (created if missing); returns the full path. *)

val of_json : string -> t
(** Raises [Failure] on malformed input. *)

val read : string -> t
