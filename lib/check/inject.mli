(** Compact per-replicate injection log with deterministic suppression masks.

    Every fault-injection site (SEU bit flips, trojan triggers, APT
    compromises) asks {!permit} before applying its effect. When recording is
    off, [permit] is one branch and always grants. When recording is on, each
    call is logged as one occurrence — identified purely by its position in
    the call order, which is deterministic for a fixed seed — and granted
    unless a suppression mask excludes it.

    Replay therefore needs only the root seed, the occurrence count of the
    original run and the list of occurrence indices to keep: re-executing the
    replicate with that mask installed reproduces the minimal failing
    schedule exactly. The injectors are written so that a suppressed
    occurrence consumes the same RNG draws as an applied one, keeping the
    remaining schedule aligned with the original run.

    State is per-domain, like {!Check}. *)

type kind = Seu | Trojan | Apt | Link
(** [Link] covers NoC link-failure campaigns (transient upsets and
    wear-out); occurrence coordinates are the link id and the event
    class (0 = upset, 1 = wear-out). *)

val kind_name : kind -> string
val kind_of_name : string -> kind

val active : bool ref
(** Gate consulted by every [permit] call (one load + branch when off). *)

val record : unit -> unit
val stop : unit -> unit

val begin_replicate : unit -> unit
(** Drop the log and any installed mask. Call before every recorded run. *)

val set_mask : total:int -> int list -> unit
(** Install a suppression mask for this domain: of a schedule of [total]
    occurrences, only the listed indices are applied; everything else —
    including occurrences past [total], should the masked run diverge — is
    suppressed. *)

val permit : kind:kind -> time:int -> a:int -> b:int -> bool
(** Log one injection occurrence ([a]/[b] are site-specific coordinates, e.g.
    register index and bit) and return whether to apply it. *)

val count : unit -> int
(** Occurrences logged since [begin_replicate]. *)

type event = { kind : kind; time : int; a : int; b : int }

val events : unit -> event list
(** The logged occurrences, in order. *)
