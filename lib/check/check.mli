(** Online safety-invariant checker for the replication, hybrid and NoC layers.

    The checker is wired into the hot paths behind the same gate discipline as
    [Resoc_obs.Obs]: every instrumented site stores an integer checker id at
    creation time ([-1] when checking is disabled) and guards the hook call
    with a single [>= 0] branch, so a disabled checker costs one predictable
    branch and zero allocation, and BENCH output stays byte-identical.

    State is per-domain ([Domain.DLS]), so campaigns can keep [--jobs n]
    parallelism with the checker enabled: each worker domain checks its own
    replicates independently. [begin_replicate] must be called at the start of
    every replicate (the campaign runner does this when checking is on).

    Invariants enforced:
    - {b Agreement safety}: no two correct replicas of one protocol session
      commit different request digests at the same (view, sequence) slot.
      Keying includes the view/term/epoch because the simplified protocols
      re-base their sequence space on view change (hybrid counters are
      per-primary instances) and delegate cross-view agreement to state
      transfer.
    - {b Quorum-certificate integrity}: every commit reported with a signer
      count carries at least the protocol's quorum of distinct signers.
    - {b Batch atomicity}: with request batching on, every request a
      replica commits belongs to exactly one committed batch per view,
      and positions within a batch commit in order.
    - {b Counter monotonicity / non-equivocation}: a USIG or TrInc never
      re-issues a counter value, and never binds one counter to two digests.
      A register readback that differs from the last issued value is treated
      as an SEU perturbation and resynchronizes the tracker instead of firing
      (plain registers in E2 are legitimately corrupted by fault injection).
    - {b Watermark discipline}: with checkpointing enabled, a replica never
      executes a sequence number outside its (low, high] watermark window.
    - {b Certified state transfer}: a completed state transfer installs app
      state whose recomputed digest matches the checkpoint certificate it
      claimed.
    - {b A2M log integrity}: attested sequence numbers grow strictly by one.
    - {b NoC conservation}: delivered + dropped flits never exceed injected
      flits (no duplication, no phantom delivery).
    - {b NoC route integrity}: a hop never leaves a failed router or crosses
      a failed link, and no flight visits a router twice under one
      route-table epoch (loop freedom is intra-epoch; recomputes may
      re-route a flight through earlier ground).
    - {b NoC delivery completeness}: adaptive routing never drops a message
      at a live router whose destination the route tables say is reachable
      — delivered iff connected, with drops justified by partitions only.
    - {b Multicast duplicate freedom}: a tree multicast never delivers the
      payload twice to one destination (the forks are disjoint subtrees).
    - {b Multicast delivery-set equality}: when no fault flips the mesh
      epoch while the payload is in flight, the set of destinations a
      multicast serves equals the per-destination unicast reference over
      the current tables — exactly the tree-reachable destinations
      recorded at send time, nothing missing, nothing extra.

    A violated invariant raises {!Violation}; inside a campaign the exception
    is captured by the worker pool and surfaces as a failed replicate, which
    the shrinker can then minimize. *)

exception Violation of string

val enabled : bool ref
(** Master gate consulted at instrumentation-{e creation} sites only. *)

val enable : unit -> unit
val disable : unit -> unit

val begin_replicate : unit -> unit
(** Reset this domain's checker state. Call before every checked replicate. *)

val hooks_fired : unit -> int
(** Number of hook invocations seen by this domain since [begin_replicate]
    (used by the self-tests to prove the checker actually observed traffic). *)

(** {1 Protocol sessions} *)

val new_session : protocol:string -> int
(** Allocate a checker session for one protocol instance. Call only when
    {!enabled}; replicas store the id and guard hooks with [chk >= 0]. *)

val commit :
  session:int ->
  replica:int ->
  view:int ->
  seq:int ->
  digest:int64 ->
  signers:int ->
  quorum:int ->
  faulty:bool ->
  unit
(** Report that [replica] committed [digest] at [(view, seq)]. [signers] is
    the size of the commit certificate, or [-1] when the protocol commits
    without a local certificate (e.g. a Paxos follower applying a leader
    decision); [faulty] replicas are recorded nowhere and checked never —
    a Byzantine replica is allowed to lie. *)

val batch_commit :
  session:int ->
  replica:int ->
  view:int ->
  seq:int ->
  pos:int ->
  len:int ->
  client:int ->
  rid:int ->
  faulty:bool ->
  unit
(** Report that [replica] committed the request [(client, rid)] at
    position [pos] of the [len]-request batch agreed at [(view, seq)].
    Fires when a request lands in two distinct committed batches of one
    view on one replica (batch atomicity), or when positions within a
    batch are not reported in ascending 0-based order (intra-batch
    order). Cross-replica batch agreement is already covered by {!commit}
    over the batch digest. *)

val exec_window :
  session:int -> replica:int -> seq:int -> low:int -> high:int -> faulty:bool -> unit
(** Report that [replica] is about to execute [seq] under watermark window
    [(low, high]]. Fires a violation when [seq] lies outside the window. *)

val transfer_applied :
  session:int -> replica:int -> seq:int -> claimed:int64 -> actual:int64 -> faulty:bool -> unit
(** Report that [replica] installed a completed state transfer claiming the
    checkpoint certificate at [seq] with digest [claimed]; [actual] is the
    digest recomputed over the received state. Fires on mismatch. *)

(** {1 Trusted-component hybrids} *)

val new_hybrid : name:string -> int

val counter_issued : hybrid:int -> read:int64 -> issued:int64 -> digest:int64 -> unit
(** Report a USIG/TrInc issuance: the hybrid read [read] from its counter
    register and issued [issued] bound to [digest]. *)

val a2m_append : hybrid:int -> seq:int64 -> digest:int64 -> unit
(** Report an A2M append that attested [digest] at log position [seq]. *)

(** {1 NoC conservation} *)

val new_network : unit -> int
val flit_injected : net:int -> unit
val flit_delivered : net:int -> unit
val flit_dropped : net:int -> unit

val noc_hop :
  net:int -> flight:int -> epoch:int -> cur:int -> next:int -> cur_up:bool -> link_up:bool -> unit
(** Report that [flight] hops from [cur] toward [next] under route-table
    [epoch]. Fires when the hop leaves a failed router or crosses a
    failed link, or when the flight revisits [cur] under one epoch
    (routing loop — loop freedom is intra-epoch: a recompute may
    legitimately re-route a flight back through earlier ground). *)

val noc_flight_done : net:int -> flight:int -> unit
(** Forget the visited-router trail of a delivered or dropped flight. *)

val noc_reachable_drop : net:int -> node:int -> dst:int -> reachable:bool -> unit
(** Report an adaptive-mode drop decision at live router [node]; fires
    when the route tables say [dst] was in fact reachable. *)

(** {1 NoC multicast}

    [mcast] ids are allocated by the network per multicast send; the
    expected set is the destinations the multicast trees reach at send
    time (the per-destination unicast reference over the current
    tables). *)

val mcast_begin : net:int -> mcast:int -> unit

val mcast_expect : net:int -> mcast:int -> node:int -> unit
(** Record [node] as tree-reachable for [mcast]. Idempotent. *)

val mcast_deliver : net:int -> mcast:int -> node:int -> unit
(** Report a delivery of [mcast] at [node]; fires on a duplicate. *)

val mcast_done : net:int -> mcast:int -> strict:bool -> unit
(** Close [mcast]. With [strict] (no mesh-epoch flip while in flight) the
    delivered set must equal the expected set exactly; without, fault-time
    losses are forgiven. *)
