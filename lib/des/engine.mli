(** Deterministic discrete-event simulation engine.

    Time is a count of SoC clock cycles (an [int], at most 2^42-1 so that
    time and a sequence number pack into one word). Events scheduled for
    the same cycle fire in scheduling order (FIFO per cycle), which —
    together with the seeded RNG tree — makes every simulation run a pure
    function of its master seed and configuration.

    Steady-state scheduling is allocation-free: the queue is a packed
    int-keyed heap and event cells are pooled (see DESIGN.md §4). *)

type t

type handle
(** A scheduled event, usable for cancellation (e.g. protocol timers).
    Handles are engine-specific tokens; a handle whose event has fired,
    been cancelled, or been recycled is stale, and cancelling it is a
    no-op. *)

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] makes an engine at time 0. Default seed is 1. *)

val now : t -> int
(** Current simulated time in cycles. *)

val rng : t -> Rng.t
(** The engine's master generator. Components should [Rng.split] it once at
    construction rather than drawing from it during the run. *)

val obs : t -> Resoc_obs.Obs.t
(** The engine's observability instance (metrics registry + trace ring).
    Subsystems built on this engine register their instruments here; all
    recording sites are gated on the global [Resoc_obs.Obs] flags and
    cost one branch when disabled. *)

val schedule : t -> delay:int -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t + delay]. [delay] must be
    non-negative; [delay = 0] fires later in the current cycle. *)

val at : t -> time:int -> (unit -> unit) -> handle
(** [at t ~time f] runs [f] at absolute cycle [time] (>= [now t]). *)

val every : t -> period:int -> ?start:int -> (unit -> unit) -> unit
(** [every t ~period f] runs [f] at [start], [start+period], ... until the
    simulation ends. [start] defaults to [now t + period]. Each periodic
    timer re-arms itself by recycling one pooled event: no per-tick
    allocation. *)

val cancel : t -> handle -> unit
(** [cancel t h] marks the event lazily deleted: it is skipped (and its
    slot recycled) when its time comes, and the engine compacts the queue
    if cancelled events come to dominate it. Cancelling a fired, already
    cancelled, or recycled handle is a no-op. *)

val pending : t -> int
(** Number of events still queued. Cancelled events are counted until
    they are popped or purged, so this is an upper bound on live events. *)

val events_processed : t -> int

val step : t -> bool
(** Execute the next event. Returns [false] when the queue is empty. *)

val run : ?until:int -> ?max_events:int -> t -> unit
(** Drain the queue. [until] stops the clock at that cycle (events beyond it
    stay queued and [now] is clamped to [until]); [max_events] guards
    against runaway simulations. *)

val stop : t -> unit
(** Makes the current [run] return after the event in progress. *)
