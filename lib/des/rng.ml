type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  (* A second mixing round decorrelates the child stream from the parent. *)
  { state = mix (Int64.logxor seed 0xA5A5A5A5A5A5A5A5L) }

let derive seed index =
  if index < 0 then invalid_arg "Rng.derive: index must be non-negative";
  (* Closed form for the [index]-th split child of [create seed]: the
     parent's (index+1)-th raw output is mix (seed + (index+1)*gamma), and
     [split] turns each output into a child state with one more mixing
     round. O(1) in [index], so a campaign can address any leaf of the seed
     tree directly without replaying its siblings. *)
  let advanced = Int64.add seed (Int64.mul golden_gamma (Int64.of_int (index + 1))) in
  mix (Int64.logxor (mix advanced) 0xA5A5A5A5A5A5A5A5L)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to 62 bits so Int64.to_int cannot wrap negative on 63-bit ints. *)
  let v = Int64.to_int (Int64.logand (int64 t) 0x3FFFFFFFFFFFFFFFL) in
  v mod n

let float t x =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53 *. x

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then Float.min_float else u in
  -.mean *. log u

(* Endpoints are pinned by test_des: p = 1.0 deterministically returns 0
   (success on the first trial, no draw consumed); p = 0.0 would divide by
   log 1.0 = 0 and p > 1.0 makes log (1-p) a NaN, so both are rejected. *)
let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0.0 then Float.min_float else u in
    let v = Float.floor (log u /. log (1.0 -. p)) in
    (* int_of_float is undefined past the int range; a min_float draw at
       tiny p can push the quotient there. *)
    if v >= float_of_int max_int then max_int else int_of_float v

let normal t ~mu ~sigma =
  let u1 = float t 1.0 and u2 = float t 1.0 in
  let u1 = if u1 <= 0.0 then Float.min_float else u1 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let poisson t ~mean =
  if mean < 0.0 then invalid_arg "Rng.poisson: mean must be non-negative";
  if mean = 0.0 then 0
  else if mean > 500.0 then
    (* Normal approximation keeps Knuth's product away from underflow.
       Round-then-truncate is undefined past the int range, so clamp both
       tails instead of letting an extreme draw wrap negative. *)
    let v = Float.round (normal t ~mu:mean ~sigma:(sqrt mean)) in
    if v <= 0.0 then 0 else if v >= float_of_int max_int then max_int else int_of_float v
  else
    let limit = exp (-.mean) in
    let rec loop k prod =
      let prod = prod *. float t 1.0 in
      if prod <= limit then k else loop (k + 1) prod
    in
    loop 0 1.0

let weibull t ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Rng.weibull: parameters must be positive";
  let u = float t 1.0 in
  let u = if u <= 0.0 then Float.min_float else u in
  scale *. ((-.log u) ** (1.0 /. shape))

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
