type 'a t = {
  leq : 'a -> 'a -> bool;
  mutable data : 'a array;
  mutable len : int;
}

let create ~leq = { leq; data = [||]; len = 0 }

let size t = t.len

let is_empty t = t.len = 0

let grow t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if not (t.leq t.data.(parent) t.data.(i)) then begin
      let tmp = t.data.(parent) in
      t.data.(parent) <- t.data.(i);
      t.data.(i) <- tmp;
      sift_up t parent
    end
  end

let add t x =
  grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek t = if t.len = 0 then None else Some t.data.(0)

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && not (t.leq t.data.(!smallest) t.data.(l)) then smallest := l;
  if r < t.len && not (t.leq t.data.(!smallest) t.data.(r)) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      (* Overwrite the vacated slot with a still-live element: leaving the
         moved element's old copy there would pin popped payloads (and
         their closures) until the slot is next overwritten. *)
      t.data.(t.len) <- t.data.(0);
      sift_down t 0
    end
    else
      (* Heap drained: drop the backing store so the last payload is
         collectable. The next [add] re-grows from scratch. *)
      t.data <- [||];
    Some top
  end

let clear t =
  t.data <- [||];
  t.len <- 0

let to_list t =
  let rec build i acc = if i < 0 then acc else build (i - 1) (t.data.(i) :: acc) in
  build (t.len - 1) []
