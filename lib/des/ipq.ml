(* Specialized binary min-heap on unboxed int keys with int payloads.

   This is the engine's event queue. Both backing arrays are plain int
   arrays, so the heap itself never allocates after warm-up and every
   comparison is a single machine-word compare — no comparator closure,
   no boxing, no option wrapping on the pop path. Sift-up and sift-down
   drag a hole instead of swapping, halving the number of stores.

   Keys need not be distinct as far as this module is concerned, but the
   engine packs (time, seq) into each key precisely so that they are:
   ties then cannot occur and heap order is a total order. *)

type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable len : int;
}

let create () = { keys = [||]; vals = [||]; len = 0 }

let size t = t.len

let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.keys in
  if t.len = cap then begin
    let ncap = if cap = 0 then 256 else cap * 2 in
    let nkeys = Array.make ncap 0 and nvals = Array.make ncap 0 in
    Array.blit t.keys 0 nkeys 0 t.len;
    Array.blit t.vals 0 nvals 0 t.len;
    t.keys <- nkeys;
    t.vals <- nvals
  end

let add t key v =
  grow t;
  let keys = t.keys and vals = t.vals in
  let i = ref t.len in
  t.len <- t.len + 1;
  let moving = ref true in
  while !moving && !i > 0 do
    let parent = (!i - 1) / 2 in
    if Array.unsafe_get keys parent > key then begin
      Array.unsafe_set keys !i (Array.unsafe_get keys parent);
      Array.unsafe_set vals !i (Array.unsafe_get vals parent);
      i := parent
    end
    else moving := false
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set vals !i v

let min_key t =
  if t.len = 0 then invalid_arg "Ipq.min_key: empty queue";
  Array.unsafe_get t.keys 0

let min_val t =
  if t.len = 0 then invalid_arg "Ipq.min_val: empty queue";
  Array.unsafe_get t.vals 0

let remove_min t =
  if t.len = 0 then invalid_arg "Ipq.remove_min: empty queue";
  let len = t.len - 1 in
  t.len <- len;
  if len > 0 then begin
    let keys = t.keys and vals = t.vals in
    (* Re-insert the former last element from the root down, dragging the
       hole toward the smaller child. Stale ints beyond [len] pin nothing. *)
    let key = Array.unsafe_get keys len and v = Array.unsafe_get vals len in
    let i = ref 0 in
    let moving = ref true in
    while !moving do
      let l = (2 * !i) + 1 in
      if l >= len then moving := false
      else begin
        let r = l + 1 in
        let c =
          if r < len && Array.unsafe_get keys r < Array.unsafe_get keys l then r else l
        in
        if Array.unsafe_get keys c < key then begin
          Array.unsafe_set keys !i (Array.unsafe_get keys c);
          Array.unsafe_set vals !i (Array.unsafe_get vals c);
          i := c
        end
        else moving := false
      end
    done;
    Array.unsafe_set keys !i key;
    Array.unsafe_set vals !i v
  end

let clear t =
  t.keys <- [||];
  t.vals <- [||];
  t.len <- 0

let to_sorted_pairs t =
  let pairs = Array.init t.len (fun i -> (t.keys.(i), t.vals.(i))) in
  Array.sort (fun (a, _) (b, _) -> compare (a : int) b) pairs;
  pairs

let reload t pairs =
  let n = Array.length pairs in
  if Array.length t.keys < n then begin
    t.keys <- Array.make (max n 256) 0;
    t.vals <- Array.make (max n 256) 0
  end;
  for i = 0 to n - 1 do
    let key, v = pairs.(i) in
    t.keys.(i) <- key;
    t.vals.(i) <- v
  done;
  (* Drop stale tails so reload after a purge cannot resurrect entries. *)
  t.len <- n
