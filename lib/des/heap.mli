(** Growable array-backed binary min-heap.

    The event queue of the simulation engine. Elements are ordered by a
    user-supplied [leq]; ties must be broken by the caller (the engine uses a
    sequence number) to keep simulations deterministic. *)

type 'a t

val create : leq:('a -> 'a -> bool) -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. The vacated backing-array
    slot is cleared so popped elements do not linger unreachable-but-
    pinned in the heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Unordered snapshot of the heap contents (for inspection in tests). *)
