module Counter = struct
  type t = { name : string; mutable value : int }

  let create name = { name; value = 0 }
  let name t = t.name
  let incr ?(by = 1) t = t.value <- t.value + by
  let value t = t.value
  let reset t = t.value <- 0
end

(* Growable float buffer; Dynarray only lands in OCaml 5.2. *)
module Buf = struct
  type t = { mutable data : float array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let add t x =
    let cap = Array.length t.data in
    if t.len = cap then begin
      let ndata = Array.make (if cap = 0 then 64 else cap * 2) 0.0 in
      Array.blit t.data 0 ndata 0 t.len;
      t.data <- ndata
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let snapshot t = Array.sub t.data 0 t.len
end

module Histogram = struct
  type t = {
    name : string;
    mutable buf : Buf.t;
    mutable sum : float;
    mutable sum_sq : float;
    mutable mn : float;
    mutable mx : float;
  }

  let create name =
    { name; buf = Buf.create (); sum = 0.0; sum_sq = 0.0; mn = infinity; mx = neg_infinity }

  let name t = t.name

  let add t x =
    Buf.add t.buf x;
    t.sum <- t.sum +. x;
    t.sum_sq <- t.sum_sq +. (x *. x);
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x

  let count t = t.buf.Buf.len
  let mean t = if count t = 0 then 0.0 else t.sum /. float_of_int (count t)

  let stddev t =
    let n = count t in
    if n < 2 then 0.0
    else
      let m = mean t in
      let var = (t.sum_sq /. float_of_int n) -. (m *. m) in
      sqrt (Float.max 0.0 var)

  let min t = if count t = 0 then 0.0 else t.mn
  let max t = if count t = 0 then 0.0 else t.mx

  let percentile t p =
    let n = count t in
    if n = 0 then 0.0
    else begin
      let sorted = Buf.snapshot t.buf in
      Array.sort Float.compare sorted;
      let p = Float.max 0.0 (Float.min 100.0 p) in
      (* Nearest-rank: smallest sample with at least p% of the mass at or
         below it, i.e. ceil (p/100 · n) − 1 clamped to [0, n−1]. The
         previous round (p/100 · (n−1)) was biased upward at small n —
         p50 of a 2-sample histogram returned the max. *)
      let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1 in
      let rank = if rank < 0 then 0 else if rank > n - 1 then n - 1 else rank in
      sorted.(rank)
    end

  let reset t =
    t.buf <- Buf.create ();
    t.sum <- 0.0;
    t.sum_sq <- 0.0;
    t.mn <- infinity;
    t.mx <- neg_infinity
end

module Series = struct
  type t = { name : string; mutable entries : (int * float) list; mutable len : int }

  let create name = { name; entries = []; len = 0 }
  let name t = t.name

  let add t ~time v =
    t.entries <- (time, v) :: t.entries;
    t.len <- t.len + 1

  let length t = t.len
  let to_list t = List.rev t.entries
  let last t = match t.entries with [] -> None | e :: _ -> Some e
end
