(** Deterministic pseudo-random number generation for simulations.

    SplitMix64 generator: fast, statistically sound for simulation purposes,
    and splittable, so every simulated component can own an independent
    stream derived from the experiment's master seed. All stochastic
    behaviour in resoc flows from one of these generators, which makes every
    run exactly reproducible from its seed. *)

type t

val create : int64 -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. Use one
    split per simulated component so that adding draws in one component does
    not perturb the stream seen by another. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val derive : int64 -> int -> int64
(** [derive seed i] is the seed of the [i]-th (0-based) child stream of
    [seed]: [create (derive seed i)] behaves exactly like the generator
    returned by the [(i+1)]-th call to {!split} on [create seed], but is
    computed in O(1). This lets a campaign address any leaf of a seed tree
    (cell [c], replicate [r]) directly, independent of evaluation order.
    Raises [Invalid_argument] if [i < 0]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [0, n). Raises [Invalid_argument] if
    [n <= 0]. *)

val float : t -> float -> float
(** [float t x] draws uniformly from [0, x). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p] (clamped to [0,1]). *)

val exponential : t -> mean:float -> float
(** Exponential variate with the given mean. *)

val geometric : t -> p:float -> int
(** Number of Bernoulli(p) failures before the first success; 0-based. *)

val poisson : t -> mean:float -> int
(** Poisson variate (Knuth's method; suitable for small-to-moderate means). *)

val weibull : t -> shape:float -> scale:float -> float
(** Weibull variate; [shape] > 1 models aging (increasing hazard). *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian variate (Box-Muller). *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
