(* Hot-path layout: the queue is an int-keyed binary heap (Ipq) whose key
   packs (time, seq) into one word — [time lsl seq_bits lor seq] — and
   whose payload is a slot index into a pooled event table. Scheduling in
   steady state therefore allocates nothing: the heap stores two unboxed
   ints, and the slot (action closure cell, cancelled flag, generation)
   comes off a free list.

   seq is a 20-bit era counter, not a global one. It only has to order
   events that coexist in the queue at equal times; when an era runs out
   we renumber the queued events 0..n-1 in (time, seq) order, which
   preserves their relative order exactly, and newly scheduled events get
   larger seqs — so the observable firing order is identical to a global
   sequence number. That identity is what keeps simulations bit-for-bit
   deterministic across this optimization (see DESIGN.md).

   Cancellation is lazy: the flag lives in the slot, a cancelled event is
   skipped (and its slot recycled) when popped, and when more than half
   the queue is dead we purge it in one pass. Handles pack (generation,
   slot) so a stale handle — fired, cancelled, or recycled — is a no-op. *)

module Obs = Resoc_obs.Obs
module Registry = Resoc_obs.Registry

let seq_bits = 20
let seq_limit = 1 lsl seq_bits
let max_time = max_int lsr seq_bits

let slot_bits = 22
let slot_limit = 1 lsl slot_bits
let slot_mask = slot_limit - 1

type handle = int

let nop () = ()

type t = {
  mutable now : int;
  mutable next_seq : int;
  mutable processed : int;
  mutable stopped : bool;
  queue : Ipq.t;
  (* Event slot pool; all four stores grow together. *)
  mutable actions : (unit -> unit) array;
  mutable cancelled : Bytes.t;
  mutable gens : int array;
  mutable free_next : int array;
  mutable free_head : int;
  mutable n_cancelled : int;
  rng : Rng.t;
  obs : Obs.t;
  obs_fired : int;
  obs_cancelled : int;
  obs_qdepth : int;
}

let create ?(seed = 1L) () =
  let obs = Obs.create () in
  (* Instruments are registered only when metrics are already enabled, so
     a disabled run pays nothing beyond the empty instance. *)
  let obs_fired, obs_cancelled, obs_qdepth =
    if !Obs.metrics_on then
      ( Registry.counter obs.Obs.metrics "des.events_fired",
        Registry.counter obs.Obs.metrics "des.events_cancelled",
        Registry.gauge obs.Obs.metrics "des.queue_depth" )
    else (0, 0, 0)
  in
  {
    now = 0;
    next_seq = 0;
    processed = 0;
    stopped = false;
    queue = Ipq.create ();
    actions = [||];
    cancelled = Bytes.empty;
    gens = [||];
    free_next = [||];
    free_head = -1;
    n_cancelled = 0;
    rng = Rng.create seed;
    obs;
    obs_fired;
    obs_cancelled;
    obs_qdepth;
  }

let now t = t.now

let rng t = t.rng

let obs t = t.obs

let grow_pool t =
  let cap = Array.length t.actions in
  if cap >= slot_limit then failwith "Engine: event pool exhausted (2^22 pending events)";
  let ncap = if cap = 0 then 256 else min (cap * 2) slot_limit in
  let nactions = Array.make ncap nop in
  Array.blit t.actions 0 nactions 0 cap;
  t.actions <- nactions;
  let ncancelled = Bytes.make ncap '\000' in
  Bytes.blit t.cancelled 0 ncancelled 0 cap;
  t.cancelled <- ncancelled;
  let ngens = Array.make ncap 0 in
  Array.blit t.gens 0 ngens 0 cap;
  t.gens <- ngens;
  let nfree = Array.make ncap (-1) in
  Array.blit t.free_next 0 nfree 0 cap;
  t.free_next <- nfree;
  (* Thread the new slots onto the free list, lowest index on top. *)
  for i = ncap - 1 downto cap do
    nfree.(i) <- t.free_head;
    t.free_head <- i
  done

let alloc_slot t =
  if t.free_head < 0 then grow_pool t;
  let slot = t.free_head in
  t.free_head <- Array.unsafe_get t.free_next slot;
  slot

(* Recycling clears the action cell so a fired event's closure (and
   whatever it captures) is collectable immediately, not when the slot
   happens to be overwritten — the pooled analogue of the Heap.pop
   vacated-slot fix. The generation bump invalidates outstanding
   handles. *)
let free_slot t slot =
  Array.unsafe_set t.actions slot nop;
  Array.unsafe_set t.gens slot (Array.unsafe_get t.gens slot + 1);
  Array.unsafe_set t.free_next slot t.free_head;
  t.free_head <- slot

(* Compact the queue: drop cancelled entries if [drop_cancelled], then
   reassign seqs 0..n-1 in (time, seq) order. Relative order of the
   survivors is untouched, and subsequent events get larger seqs, so
   observable behavior is exactly that of an unbounded global seq. *)
let compact t ~drop_cancelled =
  let pairs = Ipq.to_sorted_pairs t.queue in
  let n = Array.length pairs in
  let kept = ref 0 in
  for i = 0 to n - 1 do
    let key, slot = Array.unsafe_get pairs i in
    if drop_cancelled && Bytes.get t.cancelled slot <> '\000' then begin
      t.n_cancelled <- t.n_cancelled - 1;
      free_slot t slot
    end
    else begin
      pairs.(!kept) <- (((key lsr seq_bits) lsl seq_bits) lor !kept, slot);
      incr kept
    end
  done;
  Ipq.reload t.queue (Array.sub pairs 0 !kept);
  t.next_seq <- !kept

let renumber t =
  if Ipq.size t.queue >= seq_limit then
    failwith "Engine: more than 2^20 events pending at one time";
  compact t ~drop_cancelled:false

let purge t = compact t ~drop_cancelled:true

let at t ~time action =
  if time < t.now then invalid_arg "Engine.at: time is in the past";
  if time > max_time then invalid_arg "Engine.at: time beyond the 42-bit cycle horizon";
  if t.next_seq = seq_limit then renumber t;
  let slot = alloc_slot t in
  Array.unsafe_set t.actions slot action;
  Bytes.unsafe_set t.cancelled slot '\000';
  Ipq.add t.queue ((time lsl seq_bits) lor t.next_seq) slot;
  t.next_seq <- t.next_seq + 1;
  (Array.unsafe_get t.gens slot lsl slot_bits) lor slot

let schedule t ~delay action =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  at t ~time:(t.now + delay) action

let every t ~period ?start action =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let first = match start with Some s -> s | None -> t.now + period in
  (* One closure and one mutable cell per periodic timer, reused for
     every tick: re-arming pushes two ints and recycles a pool slot. The
     re-arm happens after [action], exactly where the old recursive
     version scheduled it, so seq interleaving — and thus determinism —
     is unchanged. *)
  let next = ref first in
  let rec tick () =
    action ();
    next := !next + period;
    ignore (at t ~time:!next tick)
  in
  ignore (at t ~time:first tick)

let cancel t h =
  let slot = h land slot_mask in
  let gen = h lsr slot_bits in
  if
    slot < Array.length t.gens
    && Array.unsafe_get t.gens slot = gen
    && Bytes.get t.cancelled slot = '\000'
  then begin
    Bytes.set t.cancelled slot '\001';
    t.n_cancelled <- t.n_cancelled + 1;
    if !Obs.metrics_on then Registry.incr t.obs.Obs.metrics t.obs_cancelled;
    (* Lazy deletion: skip-on-pop is free, but a queue that is mostly
       corpses wastes heap depth — purge once the dead outnumber the
       live. *)
    if t.n_cancelled > 64 && 2 * t.n_cancelled > Ipq.size t.queue then purge t
  end

let pending t = Ipq.size t.queue

let events_processed t = t.processed

let step t =
  if Ipq.is_empty t.queue then false
  else begin
    let key = Ipq.min_key t.queue and slot = Ipq.min_val t.queue in
    Ipq.remove_min t.queue;
    let action = Array.unsafe_get t.actions slot in
    let dead = Bytes.get t.cancelled slot <> '\000' in
    if dead then begin
      Bytes.set t.cancelled slot '\000';
      t.n_cancelled <- t.n_cancelled - 1;
      free_slot t slot
    end
    else begin
      free_slot t slot;
      t.now <- key lsr seq_bits;
      t.processed <- t.processed + 1;
      if !Obs.metrics_on then begin
        Registry.incr t.obs.Obs.metrics t.obs_fired;
        Registry.set t.obs.Obs.metrics t.obs_qdepth (Ipq.size t.queue)
      end;
      action ()
    end;
    true
  end

let stop t = t.stopped <- true

let run ?until ?max_events t =
  t.stopped <- false;
  let budget = match max_events with Some m -> ref m | None -> ref max_int in
  let horizon = match until with Some u -> u | None -> max_int in
  let rec loop () =
    if t.stopped || !budget <= 0 then ()
    else if Ipq.is_empty t.queue then ()
    else if Ipq.min_key t.queue lsr seq_bits > horizon then ()
    else begin
      decr budget;
      ignore (step t);
      loop ()
    end
  in
  loop ();
  (match until with
  | Some u when t.now < u && not t.stopped -> t.now <- u
  | Some _ | None -> ())
