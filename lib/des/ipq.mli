(** Specialized binary min-heap: unboxed int keys, int payloads.

    The engine's event queue. Both backing stores are plain [int array]s,
    so pushes and pops allocate nothing after warm-up and each ordering
    decision is one machine-word compare — no comparator closure and no
    option boxing on the hot path (contrast with the generic {!Heap}).

    The engine packs (time, seq) into a single key, making keys unique
    and the heap order total; this module itself tolerates duplicate
    keys (their relative pop order is then unspecified). *)

type t

val create : unit -> t

val size : t -> int

val is_empty : t -> bool

val add : t -> int -> int -> unit
(** [add t key v] pushes [v] under [key]. *)

val min_key : t -> int
(** Key of the minimum entry. Raises [Invalid_argument] when empty. *)

val min_val : t -> int
(** Payload of the minimum entry. Raises [Invalid_argument] when empty. *)

val remove_min : t -> unit
(** Drop the minimum entry. Raises [Invalid_argument] when empty. *)

val clear : t -> unit

val to_sorted_pairs : t -> (int * int) array
(** Snapshot of the contents as (key, payload) pairs sorted by key
    ascending. Used for the engine's era renumbering and cancelled-event
    purge; O(n log n), allocates. *)

val reload : t -> (int * int) array -> unit
(** Replace the contents with [pairs], which MUST be sorted by key
    ascending (a sorted array is a valid binary heap). Clears anything
    previously stored. *)
