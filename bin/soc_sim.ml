(* soc_sim: command-line driver for the resoc simulator.

   soc_sim scenario <name>         run a packaged domain scenario
   soc_sim run [options]           run a custom resilient-SoC configuration
   soc_sim list                    list packaged scenarios *)

module Engine = Resoc_des.Engine
module Register = Resoc_hw.Register
module Diversity = Resoc_resilience.Diversity
module Rejuvenation = Resoc_resilience.Rejuvenation
module Group = Resoc_core.Group
module Soc = Resoc_core.Soc
module Resilient_system = Resoc_core.Resilient_system
module Scenario = Resoc_workload.Scenario
module Obs = Resoc_obs.Obs
module Check = Resoc_check.Check
module Inject = Resoc_check.Inject
module Shrink = Resoc_check.Shrink
module Replay = Resoc_check.Replay
open Cmdliner

let print_report report =
  Format.printf "%a@." Resilient_system.pp_report report

let print_event_log sys =
  let entries = Resoc_des.Trace.entries (Resilient_system.trace sys) in
  Format.printf "@.--- resilience event trace (%d entries) ---@." (List.length entries);
  List.iter (fun e -> Format.printf "%a@." Resoc_des.Trace.pp_entry e) entries

(* Observability flags must be set before the system (and its engine) is
   created: instruments are registered at component construction. *)
let setup_obs ~metrics ~trace =
  if metrics then Obs.enable_metrics ();
  if trace <> None then Obs.enable_tracing ()

let finish_obs ~metrics ~trace =
  (match trace with
   | Some path ->
     Obs.write_trace path;
     Format.eprintf "wrote Chrome trace to %s@." path
   | None -> ());
  if metrics then print_string (Obs.metrics_json ())

(* Run [body] — which builds and executes one simulation, printing its report
   only when [quiet] is false — under the invariant checker. Shrinking
   re-executes the same configuration many times with [quiet:true], so the
   body must be re-entrant. Replay re-executes once under the recorded mask;
   the caller must pass the same configuration flags as the original run. *)
let checked_run ~check ~shrink ~replay ~cell ~seed body =
  let check = check || shrink || replay <> None in
  if not check then body ~quiet:false
  else begin
    Check.enable ();
    Inject.record ();
    let attempt ~quiet mask =
      Check.begin_replicate ();
      Inject.begin_replicate ();
      if !Obs.metrics_on then Obs.begin_replicate ();
      (match mask with Some (total, keep) -> Inject.set_mask ~total keep | None -> ());
      match body ~quiet with () -> None | exception e -> Some (Printexc.to_string e)
    in
    match replay with
    | Some path ->
      let rt = Replay.read path in
      (match attempt ~quiet:false (Some (rt.Replay.total_events, rt.Replay.keep)) with
       | Some err ->
         Format.printf "replay: reproduced: %s@." err;
         exit 0
       | None ->
         Format.printf "replay: ran clean — failure NOT reproduced@.";
         exit 1)
    | None ->
      (match attempt ~quiet:false None with
       | None -> ()
       | Some err ->
         Format.eprintf "invariant failure: %s@." err;
         if shrink then begin
           let total = Inject.count () in
           let test keep = attempt ~quiet:true (Some (total, keep)) <> None in
           let keep = List.sort_uniq compare (Shrink.ddmin ~test total) in
           let error =
             match attempt ~quiet:true (Some (total, keep)) with Some e -> e | None -> err
           in
           let events =
             List.mapi
               (fun i (ev : Inject.event) ->
                 { Replay.kind = ev.kind; time = ev.time; a = ev.a; b = ev.b;
                   kept = List.mem i keep })
               (Inject.events ())
           in
           let record =
             { Replay.experiment = "soc_sim"; cell; seed; error; total_events = total;
               keep; events }
           in
           let out = Replay.write ~dir:"." record in
           Format.eprintf "shrunk %d -> %d injection events; wrote %s@." total
             (List.length keep) out
         end;
         exit 1)
  end

(* --- scenario command --- *)

let scenario_names () = List.map (fun s -> s.Scenario.name) (Scenario.all ())

let run_scenario name horizon_override show_event_log metrics trace check shrink replay =
  match List.find_opt (fun s -> s.Scenario.name = name) (Scenario.all ()) with
  | None ->
    Format.eprintf "unknown scenario %S; available: %s@." name
      (String.concat ", " (scenario_names ()));
    exit 1
  | Some scenario ->
    Format.printf "scenario %s: %s@.@." scenario.Scenario.name scenario.Scenario.description;
    let horizon =
      match horizon_override with Some h -> h | None -> scenario.Scenario.horizon
    in
    setup_obs ~metrics ~trace;
    let seed = scenario.Scenario.config.Resilient_system.soc.Soc.seed in
    checked_run ~check ~shrink ~replay ~cell:("scenario/" ^ name) ~seed (fun ~quiet ->
        let sys = Resilient_system.create scenario.Scenario.config in
        let report =
          Resilient_system.run sys ~horizon ~workload_period:scenario.Scenario.workload_period
        in
        if not quiet then begin
          print_report report;
          if show_event_log then print_event_log sys;
          finish_obs ~metrics ~trace
        end)

let event_log_flag =
  Arg.(value & flag & info [ "event-log" ] ~doc:"Print the resilience event trace.")

let metrics_flag =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Print the obs metrics registry as JSON on stdout.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE" ~doc:"Write a Chrome trace_event JSON of the run to $(docv).")

let check_flag =
  Arg.(value & flag
       & info [ "check" ] ~doc:"Enable the resoc_check invariant checker; exit 1 on violation.")

let shrink_flag =
  Arg.(value & flag
       & info [ "shrink" ]
           ~doc:"Minimize a failing injection schedule to FAIL_soc_sim_<seed>.json \
                 (implies $(b,--check)).")

let replay_arg =
  Arg.(value & opt (some string) None
       & info [ "replay" ] ~docv:"FILE"
           ~doc:"Re-execute the run under the suppression mask recorded in $(docv); exit 0 when \
                 the failure reproduces. Pass the same configuration flags as the original run \
                 (implies $(b,--check)).")

let scenario_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Scenario name.")
  in
  let horizon_arg =
    Arg.(value & opt (some int) None & info [ "horizon" ] ~docv:"CYCLES" ~doc:"Override the horizon.")
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Run a packaged domain scenario")
    Term.(const run_scenario $ name_arg $ horizon_arg $ event_log_flag $ metrics_flag $ trace_arg
          $ check_flag $ shrink_flag $ replay_arg)

(* --- list command --- *)

let list_scenarios () =
  List.iter
    (fun s -> Format.printf "%-12s %s@." s.Scenario.name s.Scenario.description)
    (Scenario.all ())

let list_cmd = Cmd.v (Cmd.info "list" ~doc:"List packaged scenarios") Term.(const list_scenarios $ const ())

(* --- run command --- *)

let protocol_conv =
  Arg.enum
    [
      ("pbft", `Pbft);
      ("minbft", `Minbft);
      ("a2m-bft", `A2m_bft);
      ("cheapbft", `Cheapbft);
      ("paxos", `Paxos);
      ("primary-backup", `Primary_backup);
    ]

let protection_conv =
  Arg.enum [ ("plain", Register.Plain); ("parity", Register.Parity); ("secded", Register.Secded) ]

let diversity_conv =
  Arg.enum
    [ ("same", Diversity.Same); ("round-robin", Diversity.Round_robin); ("max", Diversity.Max_diversity) ]

let run_custom protocol f n_clients mesh protection diversity n_variants rejuv_period
    relocate apt_mean horizon workload_period seed show_event_log metrics trace check shrink
    replay =
  let soc_config =
    { Soc.default_config with mesh_width = mesh; mesh_height = mesh; seed = Int64.of_int seed }
  in
  let group =
    { Group.default_spec with kind = protocol; f; n_clients; usig_protection = protection }
  in
  let config =
    {
      Resilient_system.default_config with
      soc = soc_config;
      group;
      diversity;
      n_variants;
      rejuvenation =
        (match rejuv_period with
         | Some period -> Some { Rejuvenation.period; downtime = max 1 (period / 10) }
         | None -> None);
      relocate_on_rejuvenation = relocate;
      apt =
        (match apt_mean with
         | Some mean ->
           Some { Resilient_system.default_apt with mean_exploit_cycles = float_of_int mean }
         | None -> None);
    }
  in
  setup_obs ~metrics ~trace;
  checked_run ~check ~shrink ~replay ~cell:"run" ~seed:(Int64.of_int seed) (fun ~quiet ->
      let sys = Resilient_system.create config in
      let report = Resilient_system.run sys ~horizon ~workload_period in
      if not quiet then begin
        print_report report;
        if show_event_log then print_event_log sys;
        finish_obs ~metrics ~trace
      end)

let run_cmd =
  let protocol =
    Arg.(value & opt protocol_conv `Minbft & info [ "protocol" ] ~docv:"P" ~doc:"Replication protocol.")
  in
  let f = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Tolerated faults.") in
  let n_clients = Arg.(value & opt int 2 & info [ "clients" ] ~doc:"Client count.") in
  let mesh = Arg.(value & opt int 4 & info [ "mesh" ] ~docv:"N" ~doc:"Mesh edge (NxN).") in
  let protection =
    Arg.(value & opt protection_conv Register.Secded
         & info [ "usig-protection" ] ~doc:"USIG register protection (minbft).")
  in
  let diversity =
    Arg.(value & opt diversity_conv Diversity.Max_diversity & info [ "diversity" ] ~doc:"Variant strategy.")
  in
  let n_variants = Arg.(value & opt int 4 & info [ "variants" ] ~doc:"Design variant pool size.") in
  let rejuv =
    Arg.(value & opt (some int) None & info [ "rejuvenate" ] ~docv:"PERIOD" ~doc:"Rejuvenation period.")
  in
  let relocate = Arg.(value & flag & info [ "relocate" ] ~doc:"Relocate regions on rejuvenation.") in
  let apt =
    Arg.(value & opt (some int) None
         & info [ "apt" ] ~docv:"MEAN" ~doc:"Enable the APT adversary (mean exploit effort in cycles).")
  in
  let horizon = Arg.(value & opt int 300_000 & info [ "horizon" ] ~doc:"Simulation horizon (cycles).") in
  let period = Arg.(value & opt int 2_000 & info [ "workload-period" ] ~doc:"Request cadence per client.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Master random seed.") in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a custom resilient-SoC configuration")
    Term.(const run_custom $ protocol $ f $ n_clients $ mesh $ protection $ diversity $ n_variants
          $ rejuv $ relocate $ apt $ horizon $ period $ seed $ event_log_flag $ metrics_flag
          $ trace_arg $ check_flag $ shrink_flag $ replay_arg)

let main =
  Cmd.group
    (Cmd.info "soc_sim" ~version:"1.0.0"
       ~doc:"Fault- and intrusion-resilient manycore SoC simulator (DSN'23 reproduction)")
    [ scenario_cmd; run_cmd; list_cmd ]

let () = exit (Cmd.eval main)
