(* soc_sim: command-line driver for the resoc simulator.

   soc_sim scenario <name>         run a packaged domain scenario
   soc_sim run [options]           run a custom resilient-SoC configuration
   soc_sim list                    list packaged scenarios *)

module Engine = Resoc_des.Engine
module Register = Resoc_hw.Register
module Diversity = Resoc_resilience.Diversity
module Rejuvenation = Resoc_resilience.Rejuvenation
module Group = Resoc_core.Group
module Soc = Resoc_core.Soc
module Resilient_system = Resoc_core.Resilient_system
module Scenario = Resoc_workload.Scenario
module Obs = Resoc_obs.Obs
open Cmdliner

let print_report report =
  Format.printf "%a@." Resilient_system.pp_report report

let print_event_log sys =
  let entries = Resoc_des.Trace.entries (Resilient_system.trace sys) in
  Format.printf "@.--- resilience event trace (%d entries) ---@." (List.length entries);
  List.iter (fun e -> Format.printf "%a@." Resoc_des.Trace.pp_entry e) entries

(* Observability flags must be set before the system (and its engine) is
   created: instruments are registered at component construction. *)
let setup_obs ~metrics ~trace =
  if metrics then Obs.enable_metrics ();
  if trace <> None then Obs.enable_tracing ()

let finish_obs ~metrics ~trace =
  (match trace with
   | Some path ->
     Obs.write_trace path;
     Format.eprintf "wrote Chrome trace to %s@." path
   | None -> ());
  if metrics then print_string (Obs.metrics_json ())

(* --- scenario command --- *)

let scenario_names () = List.map (fun s -> s.Scenario.name) (Scenario.all ())

let run_scenario name horizon_override show_event_log metrics trace =
  match List.find_opt (fun s -> s.Scenario.name = name) (Scenario.all ()) with
  | None ->
    Format.eprintf "unknown scenario %S; available: %s@." name
      (String.concat ", " (scenario_names ()));
    exit 1
  | Some scenario ->
    Format.printf "scenario %s: %s@.@." scenario.Scenario.name scenario.Scenario.description;
    let horizon =
      match horizon_override with Some h -> h | None -> scenario.Scenario.horizon
    in
    setup_obs ~metrics ~trace;
    let sys = Resilient_system.create scenario.Scenario.config in
    let report =
      Resilient_system.run sys ~horizon ~workload_period:scenario.Scenario.workload_period
    in
    print_report report;
    if show_event_log then print_event_log sys;
    finish_obs ~metrics ~trace

let event_log_flag =
  Arg.(value & flag & info [ "event-log" ] ~doc:"Print the resilience event trace.")

let metrics_flag =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Print the obs metrics registry as JSON on stdout.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE" ~doc:"Write a Chrome trace_event JSON of the run to $(docv).")

let scenario_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Scenario name.")
  in
  let horizon_arg =
    Arg.(value & opt (some int) None & info [ "horizon" ] ~docv:"CYCLES" ~doc:"Override the horizon.")
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Run a packaged domain scenario")
    Term.(const run_scenario $ name_arg $ horizon_arg $ event_log_flag $ metrics_flag $ trace_arg)

(* --- list command --- *)

let list_scenarios () =
  List.iter
    (fun s -> Format.printf "%-12s %s@." s.Scenario.name s.Scenario.description)
    (Scenario.all ())

let list_cmd = Cmd.v (Cmd.info "list" ~doc:"List packaged scenarios") Term.(const list_scenarios $ const ())

(* --- run command --- *)

let protocol_conv =
  Arg.enum
    [
      ("pbft", `Pbft);
      ("minbft", `Minbft);
      ("a2m-bft", `A2m_bft);
      ("cheapbft", `Cheapbft);
      ("paxos", `Paxos);
      ("primary-backup", `Primary_backup);
    ]

let protection_conv =
  Arg.enum [ ("plain", Register.Plain); ("parity", Register.Parity); ("secded", Register.Secded) ]

let diversity_conv =
  Arg.enum
    [ ("same", Diversity.Same); ("round-robin", Diversity.Round_robin); ("max", Diversity.Max_diversity) ]

let run_custom protocol f n_clients mesh protection diversity n_variants rejuv_period
    relocate apt_mean horizon workload_period seed show_event_log metrics trace =
  let soc_config =
    { Soc.default_config with mesh_width = mesh; mesh_height = mesh; seed = Int64.of_int seed }
  in
  let group =
    { Group.default_spec with kind = protocol; f; n_clients; usig_protection = protection }
  in
  let config =
    {
      Resilient_system.default_config with
      soc = soc_config;
      group;
      diversity;
      n_variants;
      rejuvenation =
        (match rejuv_period with
         | Some period -> Some { Rejuvenation.period; downtime = max 1 (period / 10) }
         | None -> None);
      relocate_on_rejuvenation = relocate;
      apt =
        (match apt_mean with
         | Some mean ->
           Some { Resilient_system.default_apt with mean_exploit_cycles = float_of_int mean }
         | None -> None);
    }
  in
  setup_obs ~metrics ~trace;
  let sys = Resilient_system.create config in
  let report = Resilient_system.run sys ~horizon ~workload_period in
  print_report report;
  if show_event_log then print_event_log sys;
  finish_obs ~metrics ~trace

let run_cmd =
  let protocol =
    Arg.(value & opt protocol_conv `Minbft & info [ "protocol" ] ~docv:"P" ~doc:"Replication protocol.")
  in
  let f = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Tolerated faults.") in
  let n_clients = Arg.(value & opt int 2 & info [ "clients" ] ~doc:"Client count.") in
  let mesh = Arg.(value & opt int 4 & info [ "mesh" ] ~docv:"N" ~doc:"Mesh edge (NxN).") in
  let protection =
    Arg.(value & opt protection_conv Register.Secded
         & info [ "usig-protection" ] ~doc:"USIG register protection (minbft).")
  in
  let diversity =
    Arg.(value & opt diversity_conv Diversity.Max_diversity & info [ "diversity" ] ~doc:"Variant strategy.")
  in
  let n_variants = Arg.(value & opt int 4 & info [ "variants" ] ~doc:"Design variant pool size.") in
  let rejuv =
    Arg.(value & opt (some int) None & info [ "rejuvenate" ] ~docv:"PERIOD" ~doc:"Rejuvenation period.")
  in
  let relocate = Arg.(value & flag & info [ "relocate" ] ~doc:"Relocate regions on rejuvenation.") in
  let apt =
    Arg.(value & opt (some int) None
         & info [ "apt" ] ~docv:"MEAN" ~doc:"Enable the APT adversary (mean exploit effort in cycles).")
  in
  let horizon = Arg.(value & opt int 300_000 & info [ "horizon" ] ~doc:"Simulation horizon (cycles).") in
  let period = Arg.(value & opt int 2_000 & info [ "workload-period" ] ~doc:"Request cadence per client.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Master random seed.") in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a custom resilient-SoC configuration")
    Term.(const run_custom $ protocol $ f $ n_clients $ mesh $ protection $ diversity $ n_variants
          $ rejuv $ relocate $ apt $ horizon $ period $ seed $ event_log_flag $ metrics_flag
          $ trace_arg)

let main =
  Cmd.group
    (Cmd.info "soc_sim" ~version:"1.0.0"
       ~doc:"Fault- and intrusion-resilient manycore SoC simulator (DSN'23 reproduction)")
    [ scenario_cmd; run_cmd; list_cmd ]

let () = exit (Cmd.eval main)
