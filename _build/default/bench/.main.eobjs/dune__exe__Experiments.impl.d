bench/experiments.ml: Array Float Int64 List Printf Resoc_core Resoc_des Resoc_fabric Resoc_fault Resoc_hw Resoc_hybrid Resoc_noc Resoc_repl Resoc_resilience Resoc_workload
