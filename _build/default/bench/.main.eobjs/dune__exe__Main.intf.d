bench/main.mli:
