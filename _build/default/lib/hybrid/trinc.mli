(** TrInc-style trusted non-decreasing counter (Levin et al.).

    Smaller than USIG: attests a binding between a counter interval and a
    digest. The counter can advance by any amount but never decrease, which
    suffices to prevent equivocation in many protocols. Included as a second
    point on the paper's hybrid-complexity spectrum (§III). *)

module Mac = Resoc_crypto.Mac
module Hash = Resoc_crypto.Hash

type t

type attestation = {
  signer : int;
  previous : int64;
  current : int64;
  digest : Hash.t;
  tag : Mac.t;
}

val create : id:int -> key:Mac.key -> protection:Resoc_hw.Register.protection -> t

val id : t -> int

val counter_register : t -> Resoc_hw.Register.t

val attest : t -> new_counter:int64 -> digest:Hash.t -> (attestation, string) result
(** Fails (without state change) when [new_counter] is below the stored
    counter or the register detects a fault. [new_counter] equal to the
    stored value produces a zero-advance attestation — useful as a "status"
    certificate. *)

val verify : key:Mac.key -> attestation -> bool

val attestations_issued : t -> int
val faults_detected : t -> int
