module Mac = Resoc_crypto.Mac
module Hash = Resoc_crypto.Hash
module Register = Resoc_hw.Register

type t = {
  id : int;
  key : Mac.key;
  reg : Register.t;
  mutable issued : int;
  mutable faults_detected : int;
  mutable corrections : int;
  mutable failed : bool;
}

type ui = { signer : int; counter : int64; tag : Mac.t }

let create ~id ~key ~protection =
  {
    id;
    key;
    reg = Register.create protection 0L;
    issued = 0;
    faults_detected = 0;
    corrections = 0;
    failed = false;
  }

let id t = t.id

let counter_register t = t.reg

let counter_value t = fst (Register.read t.reg)

let ui_digest ~signer ~counter digest =
  Hash.combine (Hash.combine_int (Hash.combine_int (Hash.of_string "usig-ui") signer) 0)
    (Hash.combine counter digest)

let failed t = t.failed

let create_ui t digest =
  if t.failed then Error "usig: latched failed (uncorrectable counter fault)"
  else
  match Register.read t.reg with
  | _, Register.Fault_detected ->
    (* An uncorrectable error on the monotonic counter is unrecoverable
       without re-provisioning: latch fail-stop rather than keep operating
       on (and further degrading) a suspect counter. *)
    t.faults_detected <- t.faults_detected + 1;
    t.failed <- true;
    Error "usig: counter register fault detected"
  | current, status ->
    if status = Register.Corrected then t.corrections <- t.corrections + 1;
    let next = Int64.add current 1L in
    Register.write t.reg next;
    t.issued <- t.issued + 1;
    let tag = Mac.sign t.key (ui_digest ~signer:t.id ~counter:next digest) in
    Ok { signer = t.id; counter = next; tag }

let verify_ui ~key ~digest ui =
  Mac.verify key (ui_digest ~signer:ui.signer ~counter:ui.counter digest) ui.tag

let uis_issued t = t.issued
let faults_detected t = t.faults_detected
let corrections t = t.corrections

module Monotonic = struct
  type checker = (int, int64) Hashtbl.t

  type verdict = Accept | Replay | Gap of int64

  let create () : checker = Hashtbl.create 8

  let last_accepted t ~signer =
    match Hashtbl.find_opt t signer with Some c -> c | None -> 0L

  let force t ~signer ~counter = Hashtbl.replace t signer counter

  let check t ~signer ~counter =
    let last = last_accepted t ~signer in
    if Int64.compare counter last <= 0 then Replay
    else if Int64.equal counter (Int64.add last 1L) then begin
      Hashtbl.replace t signer counter;
      Accept
    end
    else Gap (Int64.sub counter (Int64.add last 1L))
end
