lib/hybrid/a2m.ml: Int64 List Resoc_crypto
