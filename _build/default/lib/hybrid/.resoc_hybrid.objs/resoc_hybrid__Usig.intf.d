lib/hybrid/usig.mli: Resoc_crypto Resoc_hw
