lib/hybrid/a2m.mli: Resoc_crypto
