lib/hybrid/usig.ml: Hashtbl Int64 Resoc_crypto Resoc_hw
