lib/hybrid/trinc.mli: Resoc_crypto Resoc_hw
