lib/hybrid/trinc.ml: Int64 Resoc_crypto Resoc_hw
