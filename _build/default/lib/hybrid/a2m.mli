(** A2M — Attested Append-Only Memory (Chun et al.).

    A trusted log: entries can only be appended, each attestation covers the
    entry's sequence number and the cumulative hash chain, so a Byzantine
    host cannot show different histories to different verifiers, nor
    truncate the log undetectably. The largest of the three hybrids on the
    §III complexity spectrum. *)

module Mac = Resoc_crypto.Mac
module Hash = Resoc_crypto.Hash

type t

type attestation = {
  signer : int;
  seq : int64;  (** 1-based position of the attested entry. *)
  entry : Hash.t;
  chain : Hash.t;  (** Cumulative hash of the log up to [seq]. *)
  tag : Mac.t;
}

val create : id:int -> key:Mac.key -> t

val id : t -> int

val append : t -> Hash.t -> attestation

val lookup : t -> seq:int64 -> attestation option
(** Re-attests the historical entry at [seq] (None when out of range). *)

val latest : t -> attestation option
(** None when the log is empty. *)

val size : t -> int

val verify : key:Mac.key -> attestation -> bool

val consistent : earlier:attestation -> later:attestation -> prefix:Hash.t list -> bool
(** Checks that [earlier] is on the chain leading to [later], given the
    entries appended in between (exclusive of earlier, inclusive of later).
    Detects forked histories. *)
