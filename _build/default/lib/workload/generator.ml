module Engine = Resoc_des.Engine
module Rng = Resoc_des.Rng

type submit = client:int -> payload:int64 -> unit

let burst ~n_per_client ~n_clients ~submit =
  if n_per_client < 0 || n_clients <= 0 then invalid_arg "Generator.burst";
  for client = 0 to n_clients - 1 do
    for _ = 1 to n_per_client do
      submit ~client ~payload:1L
    done
  done

let periodic engine ~period ?(until = max_int) ~n_clients ~submit () =
  if period <= 0 || n_clients <= 0 then invalid_arg "Generator.periodic";
  Engine.every engine ~period (fun () ->
      if Engine.now engine < until then
        for client = 0 to n_clients - 1 do
          submit ~client ~payload:1L
        done)

let poisson engine rng ~mean_interarrival ?(until = max_int) ~n_clients ~submit () =
  if mean_interarrival <= 0.0 || n_clients <= 0 then invalid_arg "Generator.poisson";
  let index = ref 0 in
  let rec arrival () =
    let delay = max 1 (int_of_float (Float.round (Rng.exponential rng ~mean:mean_interarrival))) in
    ignore
      (Engine.schedule engine ~delay (fun () ->
           if Engine.now engine < until then begin
             incr index;
             submit ~client:(Rng.int rng n_clients) ~payload:(Int64.of_int !index);
             arrival ()
           end))
  in
  arrival ()

let ramp engine ~start_period ~end_period ~steps ~step_length ~n_clients ~submit =
  if steps <= 0 || step_length <= 0 || start_period <= 0 || end_period <= 0 then
    invalid_arg "Generator.ramp";
  for step = 0 to steps - 1 do
    let period =
      start_period + ((end_period - start_period) * step / max 1 (steps - 1))
    in
    let step_start = step * step_length in
    let rec plateau offset =
      if offset < step_length then begin
        ignore
          (Engine.at engine ~time:(step_start + offset) (fun () ->
               for client = 0 to n_clients - 1 do
                 submit ~client ~payload:1L
               done));
        plateau (offset + period)
      end
    in
    plateau period
  done
