module Resilient_system = Resoc_core.Resilient_system
module Group = Resoc_core.Group
module Soc = Resoc_core.Soc
module Behavior = Resoc_fault.Behavior
module Register = Resoc_hw.Register
module Diversity = Resoc_resilience.Diversity
module Rejuvenation = Resoc_resilience.Rejuvenation

type t = {
  name : string;
  description : string;
  config : Resilient_system.config;
  workload_period : int;
  horizon : int;
}

let automotive_brake_by_wire () =
  let group =
    {
      Group.default_spec with
      kind = `Minbft;
      f = 1;
      n_clients = 2;  (* brake pedal unit + stability controller *)
      request_timeout = 2_000;
      vc_timeout = 1_200;
    }
  in
  let behaviors =
    (* One ECU tile fails mid-drive. *)
    let b = Array.make (Group.n_replicas_of group) Behavior.honest in
    b.(2) <- Behavior.crash_at 120_000;
    { group with behaviors = Some b }
  in
  {
    name = "automotive";
    description = "brake-by-wire ECU consolidation on an MPSoC; one ECU dies mid-drive";
    config =
      {
        Resilient_system.default_config with
        group = behaviors;
        apt = None;
        rejuvenation = None;
        n_variants = 2;
        diversity = Diversity.Round_robin;
      };
    workload_period = 1_000;  (* 1 request/kcycle ~ control-loop cadence *)
    horizon = 300_000;
  }

let space_radiation () =
  let group =
    { Group.default_spec with kind = `Minbft; f = 1; n_clients = 1; usig_protection = Register.Secded }
  in
  {
    name = "space";
    description = "orbital compute module: SECDED hybrids + staggered rejuvenation under radiation";
    config =
      {
        Resilient_system.default_config with
        group;
        apt = None;
        rejuvenation = Some { Rejuvenation.period = 40_000; downtime = 1_500 };
        diversity = Diversity.Same;  (* space heritage parts: one qualified design *)
        n_variants = 1;
      };
    workload_period = 2_000;
    horizon = 400_000;
  }

let smart_grid_substation () =
  let group =
    { Group.default_spec with kind = `Minbft; f = 1; n_clients = 2; usig_protection = Register.Secded }
  in
  {
    name = "smart-grid";
    description = "internet-exposed substation controller under an APT campaign with fabric trojans";
    config =
      {
        Resilient_system.default_config with
        group;
        apt =
          Some
            {
              Resilient_system.mean_exploit_cycles = 150_000.0;
              exposure = 8_000;
              backdoor_delay = 60_000;
              detection_prob = 0.5;
              detection_delay = 4_000;
            };
        (* Per-replica cadence (3 x 2.5k) beats the APT's 8k exposure
           window, so even a ready exploit never dwells long enough. *)
        rejuvenation = Some { Rejuvenation.period = 2_500; downtime = 250 };
        relocate_on_rejuvenation = true;
        reactive_rejuvenation = true;
        diversity = Diversity.Max_diversity;
        n_variants = 6;
        trojaned_frames = [ (1, 1); (9, 4) ];
      };
    workload_period = 2_500;
    horizon = 600_000;
  }

let all () = [ automotive_brake_by_wire (); space_radiation (); smart_grid_substation () ]
