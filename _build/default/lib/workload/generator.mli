(** Request generators driving a group's [submit] closure. *)

module Engine = Resoc_des.Engine
module Rng = Resoc_des.Rng

type submit = client:int -> payload:int64 -> unit

val burst : n_per_client:int -> n_clients:int -> submit:submit -> unit
(** Queue [n_per_client] unit-payload requests on every client up front
    (closed-loop: the client pipeline drains them one at a time). *)

val periodic :
  Engine.t -> period:int -> ?until:int -> n_clients:int -> submit:submit -> unit -> unit
(** One request per client every [period] cycles while the clock is below
    [until] (default: forever). *)

val poisson :
  Engine.t ->
  Rng.t ->
  mean_interarrival:float ->
  ?until:int ->
  n_clients:int ->
  submit:submit ->
  unit ->
  unit
(** Open-loop Poisson arrivals, each assigned to a uniformly random client;
    payloads are the arrival index (distinct, so ordering bugs surface). *)

val ramp :
  Engine.t ->
  start_period:int ->
  end_period:int ->
  steps:int ->
  step_length:int ->
  n_clients:int ->
  submit:submit ->
  unit
(** Load ramp: the submission period interpolates from [start_period] to
    [end_period] over [steps] plateaus of [step_length] cycles each. *)
