lib/workload/generator.mli: Resoc_des
