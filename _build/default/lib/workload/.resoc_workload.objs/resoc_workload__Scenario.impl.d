lib/workload/scenario.ml: Array Resoc_core Resoc_fault Resoc_hw Resoc_resilience
