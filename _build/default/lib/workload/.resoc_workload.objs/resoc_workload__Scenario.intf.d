lib/workload/scenario.mli: Resoc_core
