lib/workload/generator.ml: Float Int64 Resoc_des
