(** Domain scenario presets, sized after the application classes the paper's
    introduction motivates (cyber-physical systems, automotive, space). Each
    returns a ready {!Resoc_core.Resilient_system.config} plus the workload
    cadence and horizon an example/bench should drive it with. *)

module Resilient_system = Resoc_core.Resilient_system

type t = {
  name : string;
  description : string;
  config : Resilient_system.config;
  workload_period : int;
  horizon : int;
}

val automotive_brake_by_wire : unit -> t
(** Software-defined vehicle ECU consolidation: MinBFT f=1 on a small mesh,
    tight 1 kHz-equivalent control loop, one crash-faulty tile, no APT —
    safety-availability focus. *)

val space_radiation : unit -> t
(** Orbital payload: SECDED hybrids, staggered rejuvenation, radiation
    pressure modelled by the E2-style SEU campaign driven in the example;
    APT disabled (the environment is the adversary). *)

val smart_grid_substation : unit -> t
(** Internet-exposed substation controller: aggressive APT, diverse +
    relocating rejuvenation, fabric trojans planted — intrusion-resilience
    focus. *)

val all : unit -> t list
