(** 3D-stacked multi-vendor chips and the supply-chain "distribution attack"
    (§I: multi-vendor layers "avoid vendor lock-in or potential aging
    issues, backdoors, and kill switches").

    Each die layer is fabricated by some vendor; a compromised vendor plants
    a backdoor in every layer it fabricates. The analysis quantifies three
    procurement strategies:

    - single vendor: one trust decision for the whole stack;
    - multi-vendor *chain* (each layer a different function from a
      different vendor): every vendor is critical, so exposure GROWS with
      layer count — diversity without redundancy backfires;
    - multi-vendor *redundant* layers (same function replicated across m
      vendors, cross-checked/voted): a backdoor only wins if a majority of
      the redundant set colludes. *)

val p_single_vendor : p_mal:float -> float

val p_chain : p_mal:float -> layers:int -> float
(** 1 - (1-p)^layers: any compromised vendor compromises the chip. *)

val p_redundant_vote : p_mal:float -> m:int -> float
(** Probability that at least a majority of [m] (odd) independently
    procured redundant layers are compromised (colluding majority defeats
    the cross-check). *)

val mc_redundant_vote : Resoc_des.Rng.t -> p_mal:float -> m:int -> trials:int -> float
(** Monte-Carlo check of {!p_redundant_vote}. *)

val p_chain_voted : p_mal:float -> layers:int -> m:int -> float
(** A full stack of [layers] functions where each function is fabricated as
    [m] redundant voted layers from independent vendors:
    1 - (1 - p_redundant_vote)^layers. The procurement strategy the paper's
    SI points towards: multi-vendor *and* redundant. *)
