(** Storage registers with selectable upset protection.

    Models the design trade-off discussed in §III of the paper for hardware
    hybrids: a plain register is the smallest circuit but a single-event
    upset (SEU) silently corrupts it; a parity register detects odd flips;
    a SECDED register corrects single flips at the cost of 8 extra storage
    bits and check logic. The stored-bit count is exposed because a larger
    footprint collects proportionally more upsets. *)

type protection = Plain | Parity | Secded

type read_status =
  | Ok  (** Value read without detected anomaly (may still be silently wrong
            for [Plain], or after miscorrection). *)
  | Corrected  (** SECDED repaired a single-bit upset. *)
  | Fault_detected  (** Parity or SECDED flagged an uncorrectable error. *)

type t

val create : protection -> int64 -> t

val protection : t -> protection

val stored_bits : t -> int
(** 64 for [Plain], 65 for [Parity], 72 for [Secded]. *)

val gate_cost : protection -> int
(** Approximate check/correct logic cost in gate equivalents, used by the
    hybridization complexity model (E9). *)

val write : t -> int64 -> unit

val read : t -> int64 * read_status
(** SECDED repair also scrubs the stored word. *)

val scrub : t -> unit
(** Background scrubbing pass: read and write back, correcting any
    correctable upset. Real SECDED deployments scrub periodically so
    single-bit upsets cannot accumulate into uncorrectable pairs; harnesses
    should do the same (e.g. every few hundred cycles). No effect beyond a
    read for [Plain]/[Parity]. *)

val inject_upset : t -> Resoc_des.Rng.t -> unit
(** Flip one uniformly chosen stored bit. *)

val inject_upset_at : t -> int -> unit
(** Flip stored bit [i] (deterministic tests). *)

val upsets_injected : t -> int

val silently_corrupt : t -> bool
(** Oracle for experiments: would a read return wrong data with status [Ok]
    or [Corrected]? Not available to the simulated hardware itself. *)
