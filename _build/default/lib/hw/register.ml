type protection = Plain | Parity | Secded

type read_status = Ok | Corrected | Fault_detected

type storage =
  | Plain_word of int64 ref
  | Parity_word of { value : int64 ref; parity : bool ref }
  | Secded_word of Ecc.codeword ref

type t = {
  protection : protection;
  storage : storage;
  mutable shadow : int64;  (* last written value; experiment oracle only *)
  mutable upsets : int;
}

let parity_of_int64 v =
  let rec fold v acc = if Int64.equal v 0L then acc else fold (Int64.shift_right_logical v 1) (acc <> (Int64.logand v 1L = 1L)) in
  fold v false

let create protection value =
  let storage =
    match protection with
    | Plain -> Plain_word (ref value)
    | Parity -> Parity_word { value = ref value; parity = ref (parity_of_int64 value) }
    | Secded -> Secded_word (ref (Ecc.encode value))
  in
  { protection; storage; shadow = value; upsets = 0 }

let protection t = t.protection

let stored_bits t = match t.protection with Plain -> 64 | Parity -> 65 | Secded -> 72

(* Rough gate-equivalent costs: parity needs a 64-input XOR tree (~63 XOR2);
   SECDED needs 8 parity trees plus a decoder/corrector (~500 gates), in
   line with published SECDED implementations. *)
let gate_cost = function Plain -> 0 | Parity -> 63 | Secded -> 500

let write t v =
  t.shadow <- v;
  match t.storage with
  | Plain_word r -> r := v
  | Parity_word { value; parity } ->
    value := v;
    parity := parity_of_int64 v
  | Secded_word r -> r := Ecc.encode v

let read t =
  match t.storage with
  | Plain_word r -> (!r, Ok)
  | Parity_word { value; parity } ->
    if parity_of_int64 !value = !parity then (!value, Ok) else (!value, Fault_detected)
  | Secded_word r ->
    let data, status = Ecc.decode !r in
    (match status with
     | Ecc.Clean -> (data, Ok)
     | Ecc.Corrected ->
       (* Scrub: write back the repaired word. *)
       r := Ecc.encode data;
       (data, Corrected)
     | Ecc.Uncorrectable -> (data, Fault_detected))

let scrub t = ignore (read t)

let inject_upset_at t i =
  t.upsets <- t.upsets + 1;
  match t.storage with
  | Plain_word r ->
    if i < 0 || i >= 64 then invalid_arg "Register.inject_upset_at";
    r := Int64.logxor !r (Int64.shift_left 1L i)
  | Parity_word { value; parity } ->
    if i < 0 || i >= 65 then invalid_arg "Register.inject_upset_at";
    if i = 64 then parity := not !parity
    else value := Int64.logxor !value (Int64.shift_left 1L i)
  | Secded_word r -> r := Ecc.flip !r i

let inject_upset t rng = inject_upset_at t (Resoc_des.Rng.int rng (stored_bits t))

let upsets_injected t = t.upsets

(* Non-mutating variant of [read] (no SECDED scrub): the oracle must not
   perturb the simulated hardware. *)
let peek t =
  match t.storage with
  | Plain_word r -> (!r, Ok)
  | Parity_word { value; parity } ->
    if parity_of_int64 !value = !parity then (!value, Ok) else (!value, Fault_detected)
  | Secded_word r ->
    let data, status = Ecc.decode !r in
    (match status with
     | Ecc.Clean -> (data, Ok)
     | Ecc.Corrected -> (data, Corrected)
     | Ecc.Uncorrectable -> (data, Fault_detected))

let silently_corrupt t =
  match peek t with
  | _, Fault_detected -> false
  | v, (Ok | Corrected) -> not (Int64.equal v t.shadow)
