type kind =
  | Input of int
  | Const of bool
  | Not of int
  | Buf of int
  | And of int * int
  | Or of int * int
  | Xor of int * int
  | Nand of int * int
  | Nor of int * int

type t = { n_inputs : int; gates : kind array; outputs : int array }

let is_fallible = function Input _ | Const _ -> false | _ -> true

let validate ~n_inputs gates ~outputs =
  let n = Array.length gates in
  let check_ref here j =
    if j < 0 || j >= here then invalid_arg "Circuit.build: operand must reference an earlier gate"
  in
  Array.iteri
    (fun i k ->
      match k with
      | Input k -> if k < 0 || k >= n_inputs then invalid_arg "Circuit.build: input index out of range"
      | Const _ -> ()
      | Not a | Buf a -> check_ref i a
      | And (a, b) | Or (a, b) | Xor (a, b) | Nand (a, b) | Nor (a, b) ->
        check_ref i a;
        check_ref i b)
    gates;
  Array.iter (fun o -> if o < 0 || o >= n then invalid_arg "Circuit.build: output index out of range") outputs

let build ~n_inputs gates ~outputs =
  if n_inputs < 0 then invalid_arg "Circuit.build: negative input count";
  validate ~n_inputs gates ~outputs;
  { n_inputs; gates; outputs }

let n_inputs t = t.n_inputs
let n_outputs t = Array.length t.outputs

let gate_count t =
  Array.fold_left (fun acc k -> if is_fallible k then acc + 1 else acc) 0 t.gates

let eval_gate values inputs = function
  | Input k -> inputs.(k)
  | Const b -> b
  | Not a -> not values.(a)
  | Buf a -> values.(a)
  | And (a, b) -> values.(a) && values.(b)
  | Or (a, b) -> values.(a) || values.(b)
  | Xor (a, b) -> values.(a) <> values.(b)
  | Nand (a, b) -> not (values.(a) && values.(b))
  | Nor (a, b) -> not (values.(a) || values.(b))

let eval_with t inputs upset =
  if Array.length inputs <> t.n_inputs then invalid_arg "Circuit.eval: wrong input arity";
  let values = Array.make (Array.length t.gates) false in
  Array.iteri
    (fun i k ->
      let v = eval_gate values inputs k in
      let v = if is_fallible k && upset () then not v else v in
      values.(i) <- v)
    t.gates;
  Array.map (fun o -> values.(o)) t.outputs

let eval t inputs = eval_with t inputs (fun () -> false)

let eval_faulty t rng ~p_gate inputs =
  eval_with t inputs (fun () -> Resoc_des.Rng.bernoulli rng p_gate)

(* --- builders --- *)

let majority3 =
  (* maj(a,b,c) = ab | bc | ac *)
  let gates =
    [|
      Input 0; Input 1; Input 2;
      And (0, 1);  (* 3 *)
      And (1, 2);  (* 4 *)
      And (0, 2);  (* 5 *)
      Or (3, 4);   (* 6 *)
      Or (6, 5);   (* 7 *)
    |]
  in
  build ~n_inputs:3 gates ~outputs:[| 7 |]

(* n-input majority as a chain of full adders summing the input bits, then a
   threshold comparison built from the popcount bits. To stay simple we use
   a "sorting by pairwise median" recursion for small odd n: majority of n is
   computed by ORing all AND-combinations of ceil(n/2) inputs only for tiny n;
   for general odd n we build a serial counter out of half/full adders. *)
let majority n =
  if n < 1 || n mod 2 = 0 then invalid_arg "Circuit.majority: n must be odd and positive";
  if n = 1 then build ~n_inputs:1 [| Input 0; Buf 0 |] ~outputs:[| 1 |]
  else if n = 3 then majority3
  else begin
    (* Serial popcount: maintain a little-endian vector of sum bits; add each
       input with a ripple of half-adders. Then compare popcount > n/2. *)
    let gates = ref [] in
    let count = ref 0 in
    let emit k =
      gates := k :: !gates;
      let id = !count in
      incr count;
      id
    in
    let input_ids = Array.init n (fun i -> emit (Input i)) in
    let width = int_of_float (Float.ceil (log (float_of_int (n + 1)) /. log 2.0)) in
    let zero = emit (Const false) in
    let sum = Array.make width zero in
    Array.iter
      (fun inp ->
        (* ripple-add the single bit [inp] into [sum] *)
        let carry = ref inp in
        for b = 0 to width - 1 do
          let s = emit (Xor (sum.(b), !carry)) in
          let c = emit (And (sum.(b), !carry)) in
          sum.(b) <- s;
          carry := c
        done)
      input_ids;
    (* popcount > n/2  <=>  popcount >= (n+1)/2; compare against threshold. *)
    let threshold = (n + 1) / 2 in
    (* Greater-or-equal comparison of sum (unsigned, little-endian) with the
       constant threshold, folded from the most significant bit down:
       ge_b = (s_b > t_b) or (s_b = t_b and ge_{b-1}); base case ge = true. *)
    let ge = ref (emit (Const true)) in
    for b = 0 to width - 1 do
      let t_b = (threshold lsr b) land 1 = 1 in
      if t_b then begin
        (* s_b=1 required to stay >=; if s_b=1, defer to lower bits. *)
        let keep = emit (And (sum.(b), !ge)) in
        ge := keep
      end else begin
        (* s_b=1 makes it strictly greater; s_b=0 defers to lower bits. *)
        let greater = sum.(b) in
        let out = emit (Or (greater, !ge)) in
        ge := out
      end
    done;
    let gates = Array.of_list (List.rev !gates) in
    build ~n_inputs:n gates ~outputs:[| !ge |]
  end

let xor_tree n =
  if n < 1 then invalid_arg "Circuit.xor_tree: n must be positive";
  let gates = ref [] in
  let count = ref 0 in
  let emit k =
    gates := k :: !gates;
    let id = !count in
    incr count;
    id
  in
  let ids = Array.init n (fun i -> emit (Input i)) in
  let acc = Array.fold_left (fun acc id -> match acc with None -> Some id | Some a -> Some (emit (Xor (a, id)))) None ids in
  let out = match acc with Some a -> a | None -> assert false in
  let out = if n = 1 then emit (Buf out) else out in
  build ~n_inputs:n (Array.of_list (List.rev !gates)) ~outputs:[| out |]

let random_logic rng ~n_inputs ~n_gates =
  if n_inputs < 1 || n_gates < 1 then invalid_arg "Circuit.random_logic";
  let total = n_inputs + n_gates in
  let gates = Array.make total (Const false) in
  for i = 0 to n_inputs - 1 do
    gates.(i) <- Input i
  done;
  for i = n_inputs to total - 1 do
    let a = Resoc_des.Rng.int rng i in
    let b = Resoc_des.Rng.int rng i in
    let k =
      match Resoc_des.Rng.int rng 6 with
      | 0 -> And (a, b)
      | 1 -> Or (a, b)
      | 2 -> Xor (a, b)
      | 3 -> Nand (a, b)
      | 4 -> Nor (a, b)
      | _ -> Not a
    in
    gates.(i) <- k
  done;
  build ~n_inputs gates ~outputs:[| total - 1 |]

let shift_kind offset = function
  | Input k -> Input k
  | Const b -> Const b
  | Not a -> Not (a + offset)
  | Buf a -> Buf (a + offset)
  | And (a, b) -> And (a + offset, b + offset)
  | Or (a, b) -> Or (a + offset, b + offset)
  | Xor (a, b) -> Xor (a + offset, b + offset)
  | Nand (a, b) -> Nand (a + offset, b + offset)
  | Nor (a, b) -> Nor (a + offset, b + offset)

let replicate_with_voter c n =
  if n_outputs c <> 1 then invalid_arg "Circuit.replicate_with_voter: single-output circuits only";
  if n < 1 || n mod 2 = 0 then invalid_arg "Circuit.replicate_with_voter: n must be odd";
  let voter = majority n in
  let gates = ref [] in
  let len = ref 0 in
  let append ks =
    let offset = !len in
    Array.iter (fun k -> gates := shift_kind offset k :: !gates) ks;
    len := !len + Array.length ks;
    offset
  in
  let replica_outputs =
    Array.init n (fun _ ->
        let offset = append c.gates in
        offset + c.outputs.(0))
  in
  (* Inline the voter, rewiring its Input k to replica k's output. *)
  let voter_offset = !len in
  Array.iter
    (fun k ->
      let k' =
        match k with
        | Input k -> Buf replica_outputs.(k)
        | other -> shift_kind voter_offset other
      in
      gates := k' :: !gates)
    voter.gates;
  len := !len + Array.length voter.gates;
  let out = voter_offset + voter.outputs.(0) in
  build ~n_inputs:c.n_inputs (Array.of_list (List.rev !gates)) ~outputs:[| out |]
