(** The hybridization "middle ground" model of §III.

    The paper argues that a special-purpose trusted circuit is preferable to
    a minimal software-running core only while the functionality's inherent
    complexity is small: circuit gate count grows with functionality, and
    once P(circuit fails) exceeds P(core fails) + P(software defect), the
    software hybrid wins. This module makes that argument quantitative and
    finds the crossover (experiment E9). *)

type params = {
  p_gate : float;  (** per-gate failure probability over the mission. *)
  circuit_gates_per_unit : int;
      (** HDL gates needed per unit of functionality complexity. *)
  circuit_base_gates : int;  (** fixed sequential-logic overhead. *)
  core_gates : int;  (** gates of a minimal fetch/decode/execute core. *)
  sw_defect_per_unit : float;
      (** residual software defect probability per complexity unit (after
          verification; small because software hybrids are verifiable). *)
  sw_base_defect : float;
}

val default : params

val circuit_gates : params -> complexity:int -> int
(** Gate count of a special-purpose circuit for the given functionality. *)

val p_fail_circuit : params -> complexity:int -> float
(** 1 - (1 - p_gate)^gates for the special-purpose circuit. *)

val p_fail_software_hybrid : params -> complexity:int -> float
(** Core hardware failure combined with residual software defects; the core
    gate count does not grow with functionality. *)

val crossover : params -> max_complexity:int -> int option
(** Smallest complexity at which the software hybrid is at least as reliable
    as the special-purpose circuit, if any within the bound. *)

val sweep : params -> max_complexity:int -> step:int -> (int * float * float) list
(** [(complexity, p_fail_circuit, p_fail_software)] series for E9. *)
