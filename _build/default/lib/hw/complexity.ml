type params = {
  p_gate : float;
  circuit_gates_per_unit : int;
  circuit_base_gates : int;
  core_gates : int;
  sw_defect_per_unit : float;
  sw_base_defect : float;
}

(* Defaults sized so that a USIG-like functionality (counter + MAC, a few
   complexity units) clearly favours the circuit, while a multi-operation
   service crosses over to the software hybrid. *)
let default =
  {
    p_gate = 1.0e-7;
    circuit_gates_per_unit = 2000;
    circuit_base_gates = 1500;
    core_gates = 25000;
    sw_defect_per_unit = 2.0e-5;
    sw_base_defect = 1.0e-4;
  }

let circuit_gates p ~complexity =
  if complexity < 0 then invalid_arg "Complexity.circuit_gates: negative complexity";
  p.circuit_base_gates + (p.circuit_gates_per_unit * complexity)

let p_fail_gates p n = 1.0 -. ((1.0 -. p.p_gate) ** float_of_int n)

let p_fail_circuit p ~complexity = p_fail_gates p (circuit_gates p ~complexity)

let p_fail_software_hybrid p ~complexity =
  let hw = p_fail_gates p p.core_gates in
  let sw = p.sw_base_defect +. (p.sw_defect_per_unit *. float_of_int complexity) in
  let sw = Float.min 1.0 sw in
  1.0 -. ((1.0 -. hw) *. (1.0 -. sw))

let crossover p ~max_complexity =
  let rec search c =
    if c > max_complexity then None
    else if p_fail_software_hybrid p ~complexity:c <= p_fail_circuit p ~complexity:c then Some c
    else search (c + 1)
  in
  search 0

let sweep p ~max_complexity ~step =
  if step <= 0 then invalid_arg "Complexity.sweep: step must be positive";
  let rec build c acc =
    if c > max_complexity then List.rev acc
    else
      build (c + step)
        ((c, p_fail_circuit p ~complexity:c, p_fail_software_hybrid p ~complexity:c) :: acc)
  in
  build 0 []
