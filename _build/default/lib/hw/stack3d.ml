module Rng = Resoc_des.Rng

let check_p p = if p < 0.0 || p > 1.0 then invalid_arg "Stack3d: probability out of range"

let p_single_vendor ~p_mal =
  check_p p_mal;
  p_mal

let p_chain ~p_mal ~layers =
  check_p p_mal;
  if layers <= 0 then invalid_arg "Stack3d.p_chain: layers must be positive";
  1.0 -. ((1.0 -. p_mal) ** float_of_int layers)

let p_redundant_vote ~p_mal ~m =
  check_p p_mal;
  if m <= 0 || m mod 2 = 0 then invalid_arg "Stack3d.p_redundant_vote: m must be odd and positive";
  let majority = (m / 2) + 1 in
  let acc = ref 0.0 in
  for k = majority to m do
    acc :=
      !acc
      +. (Redundancy.binomial m k *. (p_mal ** float_of_int k)
          *. ((1.0 -. p_mal) ** float_of_int (m - k)))
  done;
  !acc

let mc_redundant_vote rng ~p_mal ~m ~trials =
  check_p p_mal;
  if trials <= 0 then invalid_arg "Stack3d.mc_redundant_vote: trials must be positive";
  let majority = (m / 2) + 1 in
  let defeats = ref 0 in
  for _ = 1 to trials do
    let bad = ref 0 in
    for _ = 1 to m do
      if Rng.bernoulli rng p_mal then incr bad
    done;
    if !bad >= majority then incr defeats
  done;
  float_of_int !defeats /. float_of_int trials

let p_chain_voted ~p_mal ~layers ~m =
  if layers <= 0 then invalid_arg "Stack3d.p_chain_voted: layers must be positive";
  let per_layer = p_redundant_vote ~p_mal ~m in
  1.0 -. ((1.0 -. per_layer) ** float_of_int layers)
