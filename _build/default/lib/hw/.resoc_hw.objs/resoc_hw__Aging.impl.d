lib/hw/aging.ml: Array Float Resoc_des
