lib/hw/lockstep.mli: Resoc_des
