lib/hw/stack3d.ml: Redundancy Resoc_des
