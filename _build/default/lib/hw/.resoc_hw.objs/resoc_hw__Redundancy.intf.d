lib/hw/redundancy.mli: Circuit Resoc_des
