lib/hw/sinw.ml: Array Float Redundancy Resoc_des
