lib/hw/complexity.mli:
