lib/hw/sinw.mli: Resoc_des
