lib/hw/circuit.ml: Array Float List Resoc_des
