lib/hw/razor.ml: Float Resoc_des
