lib/hw/stack3d.mli: Resoc_des
