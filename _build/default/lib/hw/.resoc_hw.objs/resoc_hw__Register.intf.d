lib/hw/register.mli: Resoc_des
