lib/hw/ecc.ml: Array Format Int64 List
