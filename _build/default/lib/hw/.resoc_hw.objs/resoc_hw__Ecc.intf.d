lib/hw/ecc.mli: Format
