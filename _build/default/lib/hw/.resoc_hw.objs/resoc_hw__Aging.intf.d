lib/hw/aging.mli: Resoc_des
