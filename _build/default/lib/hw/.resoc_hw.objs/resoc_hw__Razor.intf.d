lib/hw/razor.mli: Resoc_des
