lib/hw/lockstep.ml: Resoc_des
