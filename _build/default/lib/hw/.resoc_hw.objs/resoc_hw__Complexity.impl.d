lib/hw/complexity.ml: Float List
