lib/hw/redundancy.ml: Array Circuit Resoc_des
