lib/hw/register.ml: Ecc Int64 Resoc_des
