lib/hw/circuit.mli: Resoc_des
