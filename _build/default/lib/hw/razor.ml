module Rng = Resoc_des.Rng

type config = { stages : int; penalty : int; v_safe : float; sensitivity : float }

let default_config = { stages = 5; penalty = 1; v_safe = 1.0; sensitivity = 80.0 }

let violation_rate config ~vdd =
  if vdd >= config.v_safe then 0.0
  else Float.min 1.0 (1.0e-4 *. exp (config.sensitivity *. (config.v_safe -. vdd)))

type result = { ops : int; cycles : int; detected : int; silent_errors : int; energy : float }

let run rng config ~vdd ~razor ~ops =
  if ops <= 0 then invalid_arg "Razor.run: ops must be positive";
  if vdd <= 0.0 then invalid_arg "Razor.run: voltage must be positive";
  let rate = violation_rate config ~vdd in
  let cycles = ref 0 and detected = ref 0 and silent = ref 0 in
  for _ = 1 to ops do
    (* One op flows through every stage; any stage may miss timing. *)
    let faulted = ref false in
    for _ = 1 to config.stages do
      if Rng.bernoulli rng rate then faulted := true
    done;
    incr cycles;  (* steady-state pipeline: one op retires per cycle *)
    if !faulted then
      if razor then begin
        incr detected;
        cycles := !cycles + config.penalty
      end
      else incr silent
  done;
  let energy = float_of_int !cycles *. vdd *. vdd in
  { ops; cycles = !cycles; detected = !detected; silent_errors = !silent; energy }

let energy_per_op r = r.energy /. float_of_int r.ops

let throughput r = float_of_int r.ops /. float_of_int (max 1 r.cycles)
