module Rng = Resoc_des.Rng

type mode = Simplex | Dmr of { max_retries : int } | Tmr

type stats = {
  steps : int;
  cycles : int;
  silent_errors : int;
  detected_uncorrected : int;
  retries : int;
}

let cores = function Simplex -> 1 | Dmr _ -> 2 | Tmr -> 3

(* One attempt at a step: how many of the replicated cores fault, and
   whether simultaneous faults happen to agree on the same wrong value. *)
let attempt rng ~n_cores ~p_fault ~p_identical =
  let faulty = ref 0 in
  for _ = 1 to n_cores do
    if Rng.bernoulli rng p_fault then incr faulty
  done;
  let identical = !faulty >= 2 && Rng.bernoulli rng p_identical in
  (!faulty, identical)

let run rng mode ~p_fault ?(p_identical = 1.0e-3) ~steps () =
  if p_fault < 0.0 || p_fault > 1.0 then invalid_arg "Lockstep.run: p_fault out of range";
  if steps <= 0 then invalid_arg "Lockstep.run: steps must be positive";
  let cycles = ref 0 and silent = ref 0 and detected = ref 0 and retries = ref 0 in
  for _ = 1 to steps do
    (match mode with
     | Simplex ->
       incr cycles;
       let faulty, _ = attempt rng ~n_cores:1 ~p_fault ~p_identical in
       if faulty > 0 then incr silent
     | Dmr { max_retries } ->
       (* Retry until the two cores agree or patience runs out. *)
       let rec try_once attempts_left =
         incr cycles;
         let faulty, identical = attempt rng ~n_cores:2 ~p_fault ~p_identical in
         if faulty = 0 then ()
         else if faulty = 2 && identical then incr silent  (* agreement on garbage *)
         else if attempts_left > 0 then begin
           incr retries;
           try_once (attempts_left - 1)
         end
         else incr detected
       in
       try_once max_retries
     | Tmr ->
       incr cycles;
       let faulty, identical = attempt rng ~n_cores:3 ~p_fault ~p_identical in
       if faulty = 0 || faulty = 1 then ()  (* majority of correct cores *)
       else if faulty >= 2 && identical then incr silent  (* wrong majority *)
       else begin
         (* 2-3 disagreeing faults: no majority; stall one re-execution. *)
         incr retries;
         incr cycles;
         let faulty', identical' = attempt rng ~n_cores:3 ~p_fault ~p_identical in
         if faulty' <= 1 then ()
         else if identical' then incr silent
         else incr detected
       end)
  done;
  { steps; cycles = !cycles; silent_errors = !silent; detected_uncorrected = !detected; retries = !retries }

let silent_error_rate s = float_of_int s.silent_errors /. float_of_int s.steps

let throughput s = float_of_int s.steps /. float_of_int (max 1 s.cycles)
