type weibull = { shape : float; scale : float }

let check w =
  if w.shape <= 0.0 || w.scale <= 0.0 then invalid_arg "Aging: Weibull parameters must be positive"

let hazard w t =
  check w;
  if t < 0.0 then invalid_arg "Aging.hazard: negative time";
  if t = 0.0 && w.shape < 1.0 then infinity
  else (w.shape /. w.scale) *. ((t /. w.scale) ** (w.shape -. 1.0))

let reliability w t =
  check w;
  if t < 0.0 then invalid_arg "Aging.reliability: negative time";
  exp (-.((t /. w.scale) ** w.shape))

(* Lanczos approximation of the Gamma function, g = 7. *)
let gamma_fn =
  let coefficients =
    [|
      0.99999999999980993; 676.5203681218851; -1259.1392167224028;
      771.32342877765313; -176.61502916214059; 12.507343278686905;
      -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
    |]
  in
  let rec gamma x =
    if x < 0.5 then Float.pi /. (sin (Float.pi *. x) *. gamma (1.0 -. x))
    else begin
      let x = x -. 1.0 in
      let acc = ref coefficients.(0) in
      for i = 1 to 8 do
        acc := !acc +. (coefficients.(i) /. (x +. float_of_int i))
      done;
      let t = x +. 7.5 in
      sqrt (2.0 *. Float.pi) *. (t ** (x +. 0.5)) *. exp (-.t) *. !acc
    end
  in
  gamma

let mttf w =
  check w;
  w.scale *. gamma_fn (1.0 +. (1.0 /. w.shape))

let sample_lifetime rng w =
  check w;
  Resoc_des.Rng.weibull rng ~shape:w.shape ~scale:w.scale

type bathtub = { infant : weibull; random_rate : float; wearout : weibull }

let default_bathtub =
  {
    infant = { shape = 0.5; scale = 5.0e9 };
    random_rate = 1.0e-10;
    wearout = { shape = 3.0; scale = 2.0e10 };
  }

let bathtub_hazard b t = hazard b.infant t +. b.random_rate +. hazard b.wearout t

let stress_factor ~temperature_c = 2.0 ** ((temperature_c -. 25.0) /. 10.0)

let sample_bathtub_lifetime rng ?(stress = 1.0) b =
  if stress <= 0.0 then invalid_arg "Aging.sample_bathtub_lifetime: stress must be positive";
  let infant = sample_lifetime rng b.infant in
  let random =
    if b.random_rate <= 0.0 then infinity
    else Resoc_des.Rng.exponential rng ~mean:(1.0 /. b.random_rate)
  in
  let wearout = sample_lifetime rng b.wearout in
  Float.min infant (Float.min random wearout) /. stress
