(** Hardware aging and wear-out models.

    The paper (§I, §II.C) stresses that hardware ages — material
    deterioration under overuse and overheating — so a fixed fault budget f
    erodes over time. We model component lifetimes with Weibull
    distributions and the classic bathtub hazard (infant mortality +
    constant random failures + wear-out). *)

type weibull = { shape : float; scale : float }

val hazard : weibull -> float -> float
(** Instantaneous failure rate h(t) = (k/λ)·(t/λ)^(k-1); [t >= 0]. *)

val reliability : weibull -> float -> float
(** Survival function R(t) = exp(-(t/λ)^k). *)

val mttf : weibull -> float
(** Mean time to failure: λ·Γ(1 + 1/k). *)

val sample_lifetime : Resoc_des.Rng.t -> weibull -> float

type bathtub = {
  infant : weibull;  (** shape < 1: decreasing hazard. *)
  random_rate : float;  (** constant hazard floor. *)
  wearout : weibull;  (** shape > 1: increasing hazard. *)
}

val default_bathtub : bathtub
(** A plausible silicon profile for experiments (cycles as time unit). *)

val bathtub_hazard : bathtub -> float -> float

val stress_factor : temperature_c:float -> float
(** Arrhenius-style acceleration relative to 25°C (doubles every ~10°C). *)

val sample_bathtub_lifetime : Resoc_des.Rng.t -> ?stress:float -> bathtub -> float
(** Lifetime = min of the three competing processes, divided by [stress]. *)
