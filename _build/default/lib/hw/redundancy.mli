(** Modular-redundancy reliability: closed forms and Monte-Carlo estimators.

    Backs experiment E1 (gate-level redundancy, Fig. 1 bottom layer): the
    classic result that TMR with reliability-R modules achieves
    R_TMR = 3R^2 - 2R^3, beating a simplex module only when R > 1/2, and the
    degradation caused by a fallible voter. *)

val binomial : int -> int -> float
(** [binomial n k] = C(n,k) as a float. *)

val r_simplex : float -> float
(** Identity; for symmetric tables. *)

val r_nmr : n:int -> float -> float
(** [r_nmr ~n r]: probability that a majority of [n] (odd) independent
    modules of reliability [r] are correct, with a perfect voter. *)

val r_tmr : float -> float
(** [r_nmr ~n:3]. *)

val r_nmr_with_voter : n:int -> voter:float -> float -> float
(** Voter in series: [voter *. r_nmr ~n r]. *)

val mc_module_nmr :
  Resoc_des.Rng.t -> n:int -> trials:int -> p_fail:float -> float
(** Monte-Carlo estimate of NMR system failure probability when each module
    fails independently with probability [p_fail]; perfect voter. Returns
    the estimated system failure probability. *)

val mc_circuit_correct :
  Resoc_des.Rng.t -> Circuit.t -> trials:int -> p_gate:float -> float
(** Fraction of random-input trials in which a faulty evaluation of the
    circuit matches its fault-free evaluation. This exercises real gate
    netlists, so the voter's own gates fail too. *)
