(** Gate-level combinational circuits with fault injection.

    A circuit is a topologically ordered netlist of primitive gates. Each
    gate evaluation can be upset with a per-gate failure probability,
    flipping its output — the fault model behind the gate-level redundancy
    arguments of Fig. 1's bottom layer (refs [13]-[18] of the paper). *)

type kind =
  | Input of int  (** [Input k]: the circuit's k-th primary input. *)
  | Const of bool
  | Not of int
  | Buf of int
  | And of int * int
  | Or of int * int
  | Xor of int * int
  | Nand of int * int
  | Nor of int * int
(** Operand values are indices of earlier gates in the netlist. *)

type t

val build : n_inputs:int -> kind array -> outputs:int array -> t
(** Validates that operand indices only reference earlier gates and that
    input/output indices are in range. Raises [Invalid_argument] otherwise. *)

val n_inputs : t -> int

val n_outputs : t -> int

val gate_count : t -> int
(** Number of fallible gates (inputs and constants excluded). *)

val eval : t -> bool array -> bool array
(** Fault-free evaluation. *)

val eval_faulty : t -> Resoc_des.Rng.t -> p_gate:float -> bool array -> bool array
(** Evaluation in which every fallible gate's output flips independently
    with probability [p_gate]. *)

(** Library of builders. *)

val majority3 : t
(** 3-input majority voter (4 gates). *)

val majority : int -> t
(** [majority n] for odd [n]: n-input majority (sorting-network free,
    threshold via adder tree of AND/OR/XOR gates). *)

val xor_tree : int -> t
(** n-input parity. *)

val random_logic : Resoc_des.Rng.t -> n_inputs:int -> n_gates:int -> t
(** Random connected combinational logic with one output; stands in for
    "some functionality" of a given complexity in E9. *)

val replicate_with_voter : t -> int -> t
(** [replicate_with_voter c n] instantiates [n] copies of single-output
    circuit [c] on shared inputs and votes their outputs with [majority n];
    the voter gates are as fallible as the rest (the classic TMR caveat). *)
