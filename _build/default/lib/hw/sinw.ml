module Rng = Resoc_des.Rng

type t = { wires : int; threshold : int }

let make ~wires ~threshold =
  if threshold < 1 || threshold > wires then
    invalid_arg "Sinw.make: need 1 <= threshold <= wires";
  { wires; threshold }

let p_functional t ~p_wire_defect =
  if p_wire_defect < 0.0 || p_wire_defect > 1.0 then
    invalid_arg "Sinw.p_functional: probability out of range";
  (* At least [threshold] of [wires] survive. *)
  let p_ok = 1.0 -. p_wire_defect in
  let acc = ref 0.0 in
  for k = t.threshold to t.wires do
    acc :=
      !acc
      +. (Redundancy.binomial t.wires k *. (p_ok ** float_of_int k)
          *. (p_wire_defect ** float_of_int (t.wires - k)))
  done;
  !acc

let mttf_factor t =
  (* With i.i.d. exponential wire lifetimes, the time until only
     threshold-1 wires remain is a sum of exponential spacings with rates
     wires, wires-1, ..., threshold. *)
  let acc = ref 0.0 in
  for k = t.threshold to t.wires do
    acc := !acc +. (1.0 /. float_of_int k)
  done;
  !acc

let sample_lifetime rng t ~wire_mean =
  if wire_mean <= 0.0 then invalid_arg "Sinw.sample_lifetime: mean must be positive";
  let deaths = Array.init t.wires (fun _ -> Rng.exponential rng ~mean:wire_mean) in
  Array.sort Float.compare deaths;
  (* Fails at the (wires - threshold + 1)-th death. *)
  deaths.(t.wires - t.threshold)

let gate_reliability_uplift t ~p_wire_defect ~transistors_per_gate =
  if transistors_per_gate <= 0 then invalid_arg "Sinw.gate_reliability_uplift";
  let single = (1.0 -. p_wire_defect) ** float_of_int transistors_per_gate in
  let array = p_functional t ~p_wire_defect ** float_of_int transistors_per_gate in
  (single, array)
