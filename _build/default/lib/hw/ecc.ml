(* Layout: logical code positions 0..71.
   Position 0 holds the overall parity bit.
   Positions 1..71 form a Hamming(71,64) code: positions that are powers of
   two (1,2,4,8,16,32,64) hold check bits; the remaining 64 positions hold
   data bits in increasing-position order. *)

type codeword = { lo : int64; hi : int }
(* [lo] holds code positions 0..63, [hi] positions 64..71 (8 bits). *)

type status = Clean | Corrected | Uncorrectable

let width = 72
let data_width = 64

let is_power_of_two i = i land (i - 1) = 0

let data_positions =
  let rec collect pos acc =
    if pos > 71 then List.rev acc
    else if is_power_of_two pos then collect (pos + 1) acc
    else collect (pos + 1) (pos :: acc)
  in
  Array.of_list (collect 1 [])

let () = assert (Array.length data_positions = 64)

let get w i =
  if i < 64 then Int64.logand (Int64.shift_right_logical w.lo i) 1L = 1L
  else (w.hi lsr (i - 64)) land 1 = 1

let set w i b =
  if i < 64 then
    let mask = Int64.shift_left 1L i in
    if b then { w with lo = Int64.logor w.lo mask }
    else { w with lo = Int64.logand w.lo (Int64.lognot mask) }
  else
    let mask = 1 lsl (i - 64) in
    if b then { w with hi = w.hi lor mask } else { w with hi = w.hi land lnot mask }

let empty = { lo = 0L; hi = 0 }

(* XOR of the indices of all set positions in 1..71; zero for a valid
   Hamming codeword. *)
let syndrome w =
  let s = ref 0 in
  for i = 1 to 71 do
    if get w i then s := !s lxor i
  done;
  !s

let parity_over_all w =
  let p = ref false in
  for i = 0 to 71 do
    if get w i then p := not !p
  done;
  !p

let encode data =
  let w = ref empty in
  (* Scatter data bits. *)
  Array.iteri
    (fun k pos ->
      let bit = Int64.logand (Int64.shift_right_logical data k) 1L = 1L in
      w := set !w pos bit)
    data_positions;
  (* Check bit at position 2^j makes the syndrome's bit j vanish. *)
  let s = syndrome !w in
  let j = ref 1 in
  while !j <= 64 do
    if s land !j <> 0 then w := set !w !j true;
    j := !j lsl 1
  done;
  assert (syndrome !w = 0);
  (* Overall parity (position 0) makes total parity even. *)
  if parity_over_all !w then w := set !w 0 true;
  !w

let extract w =
  let d = ref 0L in
  Array.iteri
    (fun k pos -> if get w pos then d := Int64.logor !d (Int64.shift_left 1L k))
    data_positions;
  !d

let decode w =
  let s = syndrome w in
  let parity_odd = parity_over_all w in
  if s = 0 && not parity_odd then (extract w, Clean)
  else if s = 0 && parity_odd then
    (* The overall parity bit itself flipped; data is intact. *)
    (extract w, Corrected)
  else if parity_odd then
    (* Odd number of flips with a non-zero syndrome: treat as the single-bit
       error at position [s] and repair it. *)
    let repaired = set w s (not (get w s)) in
    (extract repaired, Corrected)
  else
    (* Non-zero syndrome, even parity: double-bit error, not correctable. *)
    (extract w, Uncorrectable)

let flip w i =
  if i < 0 || i >= width then invalid_arg "Ecc.flip: bit out of range";
  set w i (not (get w i))

let bits_set w =
  let n = ref 0 in
  for i = 0 to 71 do
    if get w i then incr n
  done;
  !n

let equal a b = Int64.equal a.lo b.lo && a.hi = b.hi

let pp ppf w = Format.fprintf ppf "%02x%016Lx" w.hi w.lo
