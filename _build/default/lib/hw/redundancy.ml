let binomial n k =
  if k < 0 || k > n then 0.0
  else begin
    let k = min k (n - k) in
    let acc = ref 1.0 in
    for i = 0 to k - 1 do
      acc := !acc *. float_of_int (n - i) /. float_of_int (i + 1)
    done;
    !acc
  end

let r_simplex r = r

let r_nmr ~n r =
  if n < 1 || n mod 2 = 0 then invalid_arg "Redundancy.r_nmr: n must be odd and positive";
  let majority = (n / 2) + 1 in
  let acc = ref 0.0 in
  for k = majority to n do
    acc := !acc +. (binomial n k *. (r ** float_of_int k) *. ((1.0 -. r) ** float_of_int (n - k)))
  done;
  !acc

let r_tmr r = r_nmr ~n:3 r

let r_nmr_with_voter ~n ~voter r = voter *. r_nmr ~n r

let mc_module_nmr rng ~n ~trials ~p_fail =
  if trials <= 0 then invalid_arg "Redundancy.mc_module_nmr: trials must be positive";
  let majority = (n / 2) + 1 in
  let failures = ref 0 in
  for _ = 1 to trials do
    let ok = ref 0 in
    for _ = 1 to n do
      if not (Resoc_des.Rng.bernoulli rng p_fail) then incr ok
    done;
    if !ok < majority then incr failures
  done;
  float_of_int !failures /. float_of_int trials

let mc_circuit_correct rng circuit ~trials ~p_gate =
  if trials <= 0 then invalid_arg "Redundancy.mc_circuit_correct: trials must be positive";
  let n_in = Circuit.n_inputs circuit in
  let correct = ref 0 in
  for _ = 1 to trials do
    let inputs = Array.init n_in (fun _ -> Resoc_des.Rng.bool rng) in
    let golden = Circuit.eval circuit inputs in
    let faulty = Circuit.eval_faulty circuit rng ~p_gate inputs in
    if golden = faulty then incr correct
  done;
  float_of_int !correct /. float_of_int trials
