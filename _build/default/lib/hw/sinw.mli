(** Silicon-nanowire transistor redundancy (§I, ref [19]).

    The paper cites reconfigurable SiNW transistors that bridge source to
    drain with a *parallel array of nanowires* to compensate manufacturing
    defects and aging: the device keeps conducting while at least
    [threshold] of its [wires] survive. This is redundancy one level below
    the gate: it multiplies the transistor's lifetime before the gate-level
    techniques of E1 even engage. *)

type t = {
  wires : int;  (** Parallel nanowires bridging source to drain. *)
  threshold : int;  (** Minimum conducting wires for the transistor to work. *)
}

val make : wires:int -> threshold:int -> t
(** Raises [Invalid_argument] unless 1 <= threshold <= wires. *)

val p_functional : t -> p_wire_defect:float -> float
(** Probability the transistor works when each wire is independently
    defective with the given probability (manufacturing yield view). *)

val mttf_factor : t -> float
(** Lifetime multiplier relative to a single wire under exponential wire
    aging: the transistor fails when wires drop below [threshold], i.e.
    after the (wires - threshold + 1)-th wire death. For exponential
    lifetimes this is sum_{k=threshold}^{wires} 1/k (order statistics). *)

val sample_lifetime :
  Resoc_des.Rng.t -> t -> wire_mean:float -> float
(** Monte-Carlo lifetime draw: each wire dies after Exp(wire_mean); the
    transistor dies when fewer than [threshold] wires remain. *)

val gate_reliability_uplift :
  t -> p_wire_defect:float -> transistors_per_gate:int -> float * float
(** (simplex gate yield, SiNW gate yield): probability that every
    transistor of a gate is functional, single-wire vs nanowire-array. *)
