(** Bit-accurate Hamming SECDED(72,64) codec.

    64 data bits are protected by 7 Hamming check bits plus one overall
    parity bit: Single-Error-Correct, Double-Error-Detect. This is the
    register protection the paper proposes for hardware hybrids such as the
    USIG counter (§III). Encoding and decoding operate on real codewords so
    that miscorrection under 3+ upsets is an emergent, measurable effect. *)

type codeword
(** A 72-bit stored word (opaque). *)

type status =
  | Clean  (** No error detected. *)
  | Corrected  (** A single-bit error was detected and repaired. *)
  | Uncorrectable  (** A double-bit error was detected; data is suspect. *)

val width : int
(** Total stored bits: 72. *)

val data_width : int
(** Protected payload bits: 64. *)

val encode : int64 -> codeword

val decode : codeword -> int64 * status
(** Decodes and, when possible, corrects the stored word. Note that three or
    more flipped bits can decode as [Clean] or [Corrected] with wrong data —
    silent corruption, exactly as in real SECDED memories. *)

val flip : codeword -> int -> codeword
(** [flip w i] flips stored bit [i] (0 <= i < 72). *)

val bits_set : codeword -> int
(** Population count (test helper). *)

val equal : codeword -> codeword -> bool

val pp : Format.formatter -> codeword -> unit
