(** Lockstep-coupled cores (§I: "lockstep coupling of cores").

    Cycle-level redundant execution on adjacent cores: DMR lockstep compares
    two cores' outputs and re-executes on mismatch (detection, not masking);
    TMR lockstep votes three and masks single faults outright. The model
    tracks the two costs the designer trades: silent errors let through and
    cycles spent (including re-execution and stalls). *)

type mode =
  | Simplex
  | Dmr of { max_retries : int }
      (** Compare-and-re-execute; gives up (detected, uncorrected) after
          [max_retries] mismatching attempts. *)
  | Tmr
      (** Majority vote; a double fault with disagreeing outputs is detected
          and stalls one re-execution round; an (unlikely) identical double
          corruption escapes silently. *)

type stats = {
  steps : int;  (** Work items executed. *)
  cycles : int;  (** Total cycles consumed (includes retries/stalls). *)
  silent_errors : int;  (** Wrong results delivered as if correct. *)
  detected_uncorrected : int;  (** Errors flagged to the system (fail-stop). *)
  retries : int;
}

val run :
  Resoc_des.Rng.t ->
  mode ->
  p_fault:float ->
  ?p_identical:float ->
  steps:int ->
  unit ->
  stats
(** [p_fault] is the per-core per-step probability of computing a wrong
    value; [p_identical] (default 1e-3) is the conditional probability that
    two simultaneously faulty cores produce the *same* wrong value (common-
    mode corruption that comparison cannot see). *)

val cores : mode -> int

val silent_error_rate : stats -> float
val throughput : stats -> float
(** Steps per cycle. *)
