(** Razor-style timing-speculation pipeline (§II.A, ref [35]).

    Razor runs a pipeline below the worst-case-safe voltage and catches
    timing violations with shadow latches, re-injecting the failed stage at
    a fixed cycle penalty. Without Razor, running below the safe voltage
    lets the same violations through silently. The model exposes the
    trade-off the paper uses Razor to illustrate: detection converts silent
    corruption into a small, observable throughput/energy cost. *)

type config = {
  stages : int;  (** Pipeline depth. *)
  penalty : int;  (** Re-execution cycles per detected violation. *)
  v_safe : float;  (** Worst-case-safe supply voltage (no violations at or
                       above it). *)
  sensitivity : float;  (** How fast violations rise below [v_safe]. *)
}

val default_config : config
(** 5 stages, 1-cycle penalty, v_safe 1.0, sensitivity 80. *)

val violation_rate : config -> vdd:float -> float
(** Per-stage-cycle timing-violation probability at supply [vdd]:
    0 at/above [v_safe], rising exponentially below it, capped at 1. *)

type result = {
  ops : int;
  cycles : int;
  detected : int;  (** Violations caught by shadow latches (razor on). *)
  silent_errors : int;  (** Violations that corrupted results (razor off). *)
  energy : float;  (** Arbitrary units; dynamic energy ~ vdd^2 per cycle. *)
}

val run : Resoc_des.Rng.t -> config -> vdd:float -> razor:bool -> ops:int -> result

val energy_per_op : result -> float

val throughput : result -> float
(** Ops per cycle. *)
