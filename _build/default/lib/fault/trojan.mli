(** Hardware trojans and kill switches.

    Stealthy logic inserted pre- or post-fabrication (§I, refs [4]-[7]):
    dormant until a time bomb expires or a specific input pattern ("cheat
    code") is observed, then either kills the host component, silently
    corrupts its outputs, or leaks its secrets. *)

type effect = Kill_switch | Corrupt_output | Leak_secret

type trigger =
  | Time_bomb of int  (** Fires at the given absolute cycle. *)
  | Cheat_code of int64  (** Fires when the host observes this input. *)

type t

val plant :
  Resoc_des.Engine.t -> trigger -> effect -> on_trigger:(effect -> unit) -> t
(** Time bombs self-schedule; cheat codes wait for [observe]. *)

val observe : t -> int64 -> unit
(** Feed an input value past the trojan's trigger comparator. *)

val triggered : t -> bool

val effect : t -> effect

val disarm : t -> unit
(** E.g. the host region was wiped by reconfiguration before the trigger. *)

val pp_effect : Format.formatter -> effect -> unit
