(** Single-event-upset injection over a population of registers.

    Models radiation- or aging-induced bitflips as a Poisson process with a
    given rate per stored bit per cycle. Registers with more stored bits
    (e.g. SECDED's 72 vs plain's 64) absorb proportionally more upsets,
    which is the honest accounting the ECC-overhead comparison needs. *)

type t

val start :
  Resoc_des.Engine.t ->
  Resoc_des.Rng.t ->
  rate_per_bit_cycle:float ->
  Resoc_hw.Register.t array ->
  t
(** Begins scheduling upsets immediately; runs until the engine stops or
    [halt] is called. A rate of 0 injects nothing. *)

val halt : t -> unit

val injected : t -> int
(** Total upsets injected so far. *)
