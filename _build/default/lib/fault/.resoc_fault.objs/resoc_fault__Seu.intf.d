lib/fault/seu.mli: Resoc_des Resoc_hw
