lib/fault/seu.ml: Array Float Resoc_des Resoc_hw
