lib/fault/apt.ml: Array Float List Resoc_des
