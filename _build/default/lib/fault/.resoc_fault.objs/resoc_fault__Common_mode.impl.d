lib/fault/common_mode.ml: Array Resoc_des
