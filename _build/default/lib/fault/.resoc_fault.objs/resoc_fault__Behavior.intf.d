lib/fault/behavior.mli: Format
