lib/fault/behavior.ml: Format
