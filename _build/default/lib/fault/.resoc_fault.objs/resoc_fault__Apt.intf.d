lib/fault/apt.mli: Resoc_des
