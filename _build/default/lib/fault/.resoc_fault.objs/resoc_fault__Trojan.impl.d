lib/fault/trojan.ml: Format Int64 Resoc_des
