lib/fault/common_mode.mli: Resoc_des
