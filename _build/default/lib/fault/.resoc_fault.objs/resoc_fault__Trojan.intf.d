lib/fault/trojan.mli: Format Resoc_des
