type byzantine_strategy = Silent | Equivocate | Corrupt_execution | Delay of int

type t =
  | Honest
  | Crash of int
  | Byzantine of { from_cycle : int; strategy : byzantine_strategy }

let honest = Honest

let crash_at cycle =
  if cycle < 0 then invalid_arg "Behavior.crash_at: negative cycle";
  Crash cycle

let byzantine ?(from_cycle = 0) strategy = Byzantine { from_cycle; strategy }

let is_crashed t ~now = match t with Crash c -> now >= c | Honest | Byzantine _ -> false

let active_strategy t ~now =
  match t with
  | Byzantine { from_cycle; strategy } when now >= from_cycle -> Some strategy
  | Byzantine _ | Honest | Crash _ -> None

let is_faulty = function Honest -> false | Crash _ | Byzantine _ -> true

let pp_strategy ppf = function
  | Silent -> Format.pp_print_string ppf "silent"
  | Equivocate -> Format.pp_print_string ppf "equivocate"
  | Corrupt_execution -> Format.pp_print_string ppf "corrupt-execution"
  | Delay d -> Format.fprintf ppf "delay(%d)" d

let pp ppf = function
  | Honest -> Format.pp_print_string ppf "honest"
  | Crash c -> Format.fprintf ppf "crash@%d" c
  | Byzantine { from_cycle; strategy } ->
    Format.fprintf ppf "byzantine(%a)@%d" pp_strategy strategy from_cycle
