(** Advanced-persistent-threat adversary model.

    The adversary invests effort to develop exploits, *one variant at a
    time* and only for variants it has seen deployed: development of each
    exploit takes an exponentially-distributed effort around
    [mean_exploit_cycles], and work on the next queued variant starts when
    the previous one is done. Exploits, once developed, are never forgotten.

    A target running variant [v] is compromised once the exploit for [v] is
    ready and the target has been continuously exposed for [exposure]
    cycles. Rejuvenation resets the exposure clock; *diverse* rejuvenation
    additionally switches the variant, forcing the adversary to chase a new
    exploit — the §II.C argument, quantified in E6.

    A target may also be [backdoored] (its fabric region covers a trojaned
    frame): then it is compromised [backdoor_delay] cycles after the
    placement landed on the trojan, regardless of variant. Rejuvenation in
    place does NOT reset that clock — the trojan lives in the grid fabric —
    only re-registering with [backdoored:false] (spatial relocation)
    escapes (§II.C's FPGA-grid backdoors). *)

type t

type target

val create :
  Resoc_des.Engine.t ->
  Resoc_des.Rng.t ->
  n_variants:int ->
  mean_exploit_cycles:float ->
  exposure:int ->
  ?backdoor_delay:int ->
  unit ->
  t
(** [backdoor_delay] defaults to [exposure]. *)

val exploit_ready_at : t -> variant:int -> int option
(** When the exploit for [variant] is (or will be) usable; [None] while the
    adversary has never seen the variant deployed. *)

val register_target :
  t -> id:int -> variant:int -> ?backdoored:bool -> on_compromise:(int -> unit) -> unit -> target
(** Start watching a component; [on_compromise] fires (with [id]) at the
    moment of compromise, once per exposure period. Deploying a variant for
    the first time queues its exploit development. *)

val rejuvenate : t -> target -> variant:int -> ?backdoored:bool -> unit -> unit
(** The target restarts clean on [variant]; exposure clock resets. *)

val deactivate : t -> target -> unit
(** The target is retired; it can no longer be compromised. *)

val compromised : target -> bool

val target_id : target -> int
val target_variant : target -> int

val compromised_count : t -> int
(** Currently-compromised active targets. *)

val active_count : t -> int

val exploits_developed : t -> now:int -> int
(** Exploits ready at time [now]. *)
