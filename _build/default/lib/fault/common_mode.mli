(** Common-mode vulnerability model across design variants.

    Active replication only masks faults that hit fewer than a quorum of
    replicas simultaneously (§II.B). When replicas share an implementation,
    one vulnerability hits them all. This module captures how likely a
    vulnerability discovered in one variant also applies to another
    (0 = fully independent implementations, 1 = identical), and estimates
    the probability that a single vulnerability event defeats a whole
    replica group under a given variant assignment. *)

type t

val create : n_variants:int -> shared_prob:float -> t
(** Uniform off-diagonal sharing probability; diagonal is 1. *)

val n_variants : t -> int

val set_shared : t -> int -> int -> float -> unit
(** Symmetric update. Raises [Invalid_argument] on bad indices or
    probabilities outside [0,1]. *)

val shared_prob : t -> int -> int -> float

val sample_affected : t -> Resoc_des.Rng.t -> trigger:int -> bool array
(** A vulnerability surfaces in [trigger]; element [v] tells whether variant
    [v] is affected (the trigger always is). *)

val p_group_compromise :
  t -> Resoc_des.Rng.t -> assignment:int array -> f:int -> trials:int -> float
(** Monte-Carlo probability that a single vulnerability event (surfacing in
    a uniformly random variant of the assignment) affects more than [f]
    replicas — i.e. defeats a BFT group sized to tolerate [f]. *)

val max_diversity_assignment : t -> n_replicas:int -> int array
(** Greedy assignment of variants to replicas minimizing pairwise sharing:
    spreads replicas over the least-correlated variants, round-robin when
    [n_replicas] exceeds the variant pool. *)
