(** Per-replica failure behaviour specifications.

    Protocols consult the behaviour of a replica to decide whether (and how)
    it deviates. Centralizing the vocabulary keeps fault schedules uniform
    across PBFT, MinBFT, Paxos and primary-backup experiments. *)

type byzantine_strategy =
  | Silent  (** Sends nothing (crash-like, but from a malicious replica that
                may resume later in adaptive scenarios). *)
  | Equivocate  (** A primary assigns conflicting orders to different
                    backups; the attack USIG-based protocols neutralize. *)
  | Corrupt_execution  (** Executes wrongly and replies with bad digests. *)
  | Delay of int  (** Withholds every message for the given cycles. *)

type t =
  | Honest
  | Crash of int  (** Fail-stop at the given cycle. *)
  | Byzantine of { from_cycle : int; strategy : byzantine_strategy }

val honest : t
val crash_at : int -> t
val byzantine : ?from_cycle:int -> byzantine_strategy -> t

val is_crashed : t -> now:int -> bool

val active_strategy : t -> now:int -> byzantine_strategy option
(** The Byzantine strategy in force at [now], if any. *)

val is_faulty : t -> bool
(** Statically declared faulty (crash or Byzantine at any time). *)

val pp : Format.formatter -> t -> unit
