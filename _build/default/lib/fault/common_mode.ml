module Rng = Resoc_des.Rng

type t = { n : int; shared : float array array }

let create ~n_variants ~shared_prob =
  if n_variants <= 0 then invalid_arg "Common_mode.create: need at least one variant";
  if shared_prob < 0.0 || shared_prob > 1.0 then
    invalid_arg "Common_mode.create: probability out of range";
  let shared =
    Array.init n_variants (fun i ->
        Array.init n_variants (fun j -> if i = j then 1.0 else shared_prob))
  in
  { n = n_variants; shared }

let n_variants t = t.n

let check t i = if i < 0 || i >= t.n then invalid_arg "Common_mode: variant out of range"

let set_shared t i j p =
  check t i;
  check t j;
  if p < 0.0 || p > 1.0 then invalid_arg "Common_mode.set_shared: probability out of range";
  if i = j then invalid_arg "Common_mode.set_shared: diagonal is fixed at 1";
  t.shared.(i).(j) <- p;
  t.shared.(j).(i) <- p

let shared_prob t i j =
  check t i;
  check t j;
  t.shared.(i).(j)

let sample_affected t rng ~trigger =
  check t trigger;
  Array.init t.n (fun v -> v = trigger || Rng.bernoulli rng t.shared.(trigger).(v))

let p_group_compromise t rng ~assignment ~f ~trials =
  if trials <= 0 then invalid_arg "Common_mode.p_group_compromise: trials must be positive";
  if Array.length assignment = 0 then invalid_arg "Common_mode.p_group_compromise: empty group";
  Array.iter (check t) assignment;
  let defeats = ref 0 in
  for _ = 1 to trials do
    let trigger = assignment.(Rng.int rng (Array.length assignment)) in
    let affected = sample_affected t rng ~trigger in
    let hit = Array.fold_left (fun acc v -> if affected.(v) then acc + 1 else acc) 0 assignment in
    if hit > f then incr defeats
  done;
  float_of_int !defeats /. float_of_int trials

let max_diversity_assignment t ~n_replicas =
  if n_replicas <= 0 then invalid_arg "Common_mode.max_diversity_assignment: empty group";
  (* Greedy: repeatedly pick the variant with the least total sharing against
     already-chosen variants (count-weighted so reuse is a last resort). *)
  let counts = Array.make t.n 0 in
  let cost v =
    let acc = ref (float_of_int counts.(v) *. 10.0) in
    for u = 0 to t.n - 1 do
      if counts.(u) > 0 && u <> v then acc := !acc +. (t.shared.(v).(u) *. float_of_int counts.(u))
    done;
    !acc
  in
  Array.init n_replicas (fun _ ->
      let best = ref 0 and best_cost = ref infinity in
      for v = 0 to t.n - 1 do
        let c = cost v in
        if c < !best_cost then begin
          best := v;
          best_cost := c
        end
      done;
      counts.(!best) <- counts.(!best) + 1;
      !best)
