module Hash = Resoc_crypto.Hash

type t = {
  mutable state : int64;
  mutable executions : int;
  step : int64 -> int64 -> int64 * int64;  (* state -> payload -> state', result *)
  mutable mangle : int64 -> int64;
}

let accumulator () =
  {
    state = 0L;
    executions = 0;
    step = (fun s p -> let s' = Int64.add s p in (s', s'));
    mangle = Fun.id;
  }

let register () =
  { state = 0L; executions = 0; step = (fun s p -> (p, s)); mangle = Fun.id }

module Kv_op = struct
  type op = Get of int | Put of int * int32 | Incr of int

  (* Layout: bits 62-61 opcode, 59-48 key (12 bits used of 16), 31-0 value. *)
  let encode = function
    | Get key -> Int64.logor (Int64.shift_left 1L 61) (Int64.shift_left (Int64.of_int (key land 0xFFF)) 48)
    | Put (key, v) ->
      Int64.logor
        (Int64.logor (Int64.shift_left 2L 61) (Int64.shift_left (Int64.of_int (key land 0xFFF)) 48))
        (Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL)
    | Incr key -> Int64.logor (Int64.shift_left 3L 61) (Int64.shift_left (Int64.of_int (key land 0xFFF)) 48)

  let decode payload =
    let opcode = Int64.to_int (Int64.shift_right_logical payload 61) land 0x3 in
    let key = Int64.to_int (Int64.shift_right_logical payload 48) land 0xFFF in
    let value = Int64.to_int32 (Int64.logand payload 0xFFFFFFFFL) in
    match opcode with
    | 1 -> Some (Get key)
    | 2 -> Some (Put (key, value))
    | 3 -> Some (Incr key)
    | _ -> None
end

(* The kv app folds its 16-slot store into the [state] digest after every
   operation so agreement checks (which compare [state]) detect ordering
   divergence. The store itself lives in the closure. *)
let kv () =
  let store = Array.make 16 0l in
  let digest () =
    Array.fold_left
      (fun acc v -> Hash.combine acc (Int64.of_int32 v))
      (Hash.of_string "kv") store
  in
  let step _state payload =
    let result =
      match Kv_op.decode payload with
      | Some (Kv_op.Get key) -> Int64.of_int32 store.(key land 0xF)
      | Some (Kv_op.Put (key, v)) ->
        let key = key land 0xF in
        let prev = store.(key) in
        store.(key) <- v;
        Int64.of_int32 prev
      | Some (Kv_op.Incr key) ->
        let key = key land 0xF in
        store.(key) <- Int32.add store.(key) 1l;
        Int64.of_int32 store.(key)
      | None -> 0L
    in
    (digest (), result)
  in
  { state = 0L; executions = 0; step; mangle = Fun.id }

let execute t payload =
  let state', result = t.step t.state payload in
  t.state <- state';
  t.executions <- t.executions + 1;
  t.mangle result

let state t = t.state

let set_state t s = t.state <- s

let state_digest t = Hash.combine (Hash.of_string "app-state") t.state

let executions t = t.executions

let corrupted t = { t with mangle = (fun r -> Int64.logxor r 0x5A5A5A5A5A5A5A5AL) }
