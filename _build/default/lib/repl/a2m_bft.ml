module A2m = Resoc_hybrid.A2m
module Hash = Resoc_crypto.Hash

(* The A2M as a Hybrid_bft certificate mechanism: the log position is the
   counter (contiguous by construction of append), and the attestation binds
   it to the entry digest and the chain head. *)
module A2m_hybrid = struct
  type t = A2m.t
  type cert = A2m.attestation

  let protocol_name = "a2m-bft"

  (* The log lives in protected memory conceptually; the [protection]
     parameter concerns register-based hybrids and is not meaningful here. *)
  let make ~id ~key ~protection:_ = A2m.create ~id ~key

  let create_cert log digest = Ok (A2m.append log digest)

  let verify_cert ~key ~digest (a : A2m.attestation) =
    A2m.verify ~key a && Hash.equal a.A2m.entry digest

  let cert_signer (a : A2m.attestation) = a.A2m.signer
  let cert_counter (a : A2m.attestation) = a.A2m.seq
  let current_counter log = Int64.of_int (A2m.size log)
end

include Hybrid_bft.Make (A2m_hybrid)
