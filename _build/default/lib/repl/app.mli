(** Replicated application state machines.

    The accumulator application sums request payloads; because addition is
    commutative, replicas that execute the same *set* of requests agree on
    the final state even across the simplified view-change re-ordering (see
    DESIGN.md), which makes it the right safety oracle for fault scenarios.
    The register application is order-sensitive and used to verify ordering
    in fault-free runs. *)

module Hash = Resoc_crypto.Hash

type t

val accumulator : unit -> t
(** state' = state + payload; result = state'. *)

val register : unit -> t
(** state' = payload (last-writer-wins); result = previous state. *)

val kv : unit -> t
(** A 16-key/32-bit-value store driven through encoded payloads (see
    {!Kv_op}); its visible state is a digest of the whole map, so ordering
    differences surface. Use in fault-free ordering tests. *)

(** Payload codec for the {!kv} application. *)
module Kv_op : sig
  type op =
    | Get of int  (** result: current value of the key. *)
    | Put of int * int32  (** result: previous value of the key. *)
    | Incr of int  (** result: new value. *)

  val encode : op -> int64
  val decode : int64 -> op option
  (** [None] on malformed payloads (the app treats those as no-op Get 0). *)
end

val execute : t -> int64 -> int64

val state : t -> int64

val set_state : t -> int64 -> unit
(** State transfer onto a recovering replica. *)

val state_digest : t -> Hash.t

val executions : t -> int

val corrupted : t -> t
(** Same state evolution, but every visible result is wrong (a Byzantine
    replica's externally visible behaviour). *)
