module Engine = Resoc_des.Engine

type 'msg fabric = {
  n_endpoints : int;
  send : src:int -> dst:int -> 'msg -> unit;
  set_handler : int -> (src:int -> 'msg -> unit) -> unit;
  detach : int -> unit;
  messages_sent : unit -> int;
  bytes_sent : unit -> int;
}

let broadcast fabric ~src ~to_ msg = List.iter (fun dst -> fabric.send ~src ~dst msg) to_

let hub engine ~n ?(latency = 5) ?(size_of = fun _ -> 64) () =
  if n <= 0 then invalid_arg "Transport.hub: need at least one endpoint";
  if latency < 0 then invalid_arg "Transport.hub: negative latency";
  let handlers = Array.make n None in
  let messages = ref 0 in
  let bytes = ref 0 in
  let send ~src ~dst msg =
    if dst < 0 || dst >= n then invalid_arg "Transport.hub: destination out of range";
    incr messages;
    bytes := !bytes + size_of msg;
    let delay = if src = dst then 1 else latency in
    ignore
      (Engine.schedule engine ~delay (fun () ->
           match handlers.(dst) with
           | Some handler -> handler ~src msg
           | None -> ()))
  in
  {
    n_endpoints = n;
    send;
    set_handler = (fun i h -> handlers.(i) <- Some h);
    detach = (fun i -> handlers.(i) <- None);
    messages_sent = (fun () -> !messages);
    bytes_sent = (fun () -> !bytes);
  }
