(** Passive (primary-backup) replication.

    The cheap end of §II.A's replication spectrum: one primary executes and
    answers immediately, shipping state updates to warm standbys; a
    heartbeat failure detector promotes the next backup when the primary
    dies. Recovery is *not* seamless — the detection window plus promotion
    delay is client-visible downtime, which E4 measures against the active
    protocols. Tolerates crash faults only. *)

module Behavior = Resoc_fault.Behavior

type msg =
  | Request of Types.request
  | Update of { epoch : int; seq : int; state : int64; client : int; rid : int; result : int64 }
  | Heartbeat of { epoch : int }
  | Promote of { epoch : int }
  | Reply of Types.reply

type config = {
  n_backups : int;  (** Group size is 1 + n_backups. *)
  n_clients : int;
  request_timeout : int;
  heartbeat_period : int;
  detection_timeout : int;  (** Silence before declaring the primary dead. *)
}

val default_config : config

val n_replicas : config -> int

type t

val start :
  Resoc_des.Engine.t ->
  msg Transport.fabric ->
  config ->
  ?behaviors:Behavior.t array ->
  unit ->
  t

val submit : t -> client:int -> payload:int64 -> unit

val stats : t -> Stats.t

val epoch : t -> replica:int -> int
(** Failover count as seen by a replica. *)

val current_primary : t -> int
(** Highest-epoch active primary (oracle view). *)

val replica_state : t -> replica:int -> int64

val set_replica_state : t -> replica:int -> int64 -> unit
(** Out-of-band state installation (epoch-based protocol switching). *)

val message_name : msg -> string
