lib/repl/transport.ml: Array List Resoc_des
