lib/repl/client.mli: Resoc_des Stats Transport Types
