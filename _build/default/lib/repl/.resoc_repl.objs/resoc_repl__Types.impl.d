lib/repl/types.ml: Format Int64 Resoc_crypto
