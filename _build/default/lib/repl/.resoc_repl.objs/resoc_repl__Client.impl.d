lib/repl/client.ml: Fun Hashtbl Int64 List Resoc_des Stats Transport Types
