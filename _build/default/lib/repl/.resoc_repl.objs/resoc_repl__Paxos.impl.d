lib/repl/paxos.ml: App Array Client Fun Hashtbl Int64 List Resoc_crypto Resoc_des Resoc_fault Stats Transport Types
