lib/repl/minbft.ml: Hybrid_bft Resoc_hybrid
