lib/repl/a2m_bft.ml: Hybrid_bft Int64 Resoc_crypto Resoc_hybrid
