lib/repl/app.ml: Array Fun Int32 Int64 Resoc_crypto
