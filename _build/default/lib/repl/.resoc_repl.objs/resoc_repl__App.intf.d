lib/repl/app.mli: Resoc_crypto
