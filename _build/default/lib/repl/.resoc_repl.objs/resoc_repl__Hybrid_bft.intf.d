lib/repl/hybrid_bft.mli: Resoc_crypto Resoc_des Resoc_fault Resoc_hw Stats Transport Types
