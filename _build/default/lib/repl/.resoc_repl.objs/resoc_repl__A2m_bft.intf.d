lib/repl/a2m_bft.mli: Hybrid_bft Resoc_hybrid
