lib/repl/primary_backup.ml: App Array Client Fun Hashtbl Int64 List Resoc_des Resoc_fault Stats Transport Types
