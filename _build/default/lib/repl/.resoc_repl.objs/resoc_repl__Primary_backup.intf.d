lib/repl/primary_backup.mli: Resoc_des Resoc_fault Stats Transport Types
