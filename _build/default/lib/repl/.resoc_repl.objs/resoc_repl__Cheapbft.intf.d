lib/repl/cheapbft.mli: Resoc_crypto Resoc_des Resoc_fault Resoc_hw Resoc_hybrid Stats Transport Types
