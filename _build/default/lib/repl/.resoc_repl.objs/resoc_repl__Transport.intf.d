lib/repl/transport.mli: Resoc_des
