lib/repl/hybrid_bft.ml: App Array Client Fun Hashtbl Int64 List Resoc_crypto Resoc_des Resoc_fault Resoc_hw Resoc_hybrid Stats Transport Types
