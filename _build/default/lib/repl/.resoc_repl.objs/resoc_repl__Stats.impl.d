lib/repl/stats.ml: Format Resoc_des
