lib/repl/minbft.mli: Hybrid_bft Resoc_hybrid
