lib/repl/stats.mli: Format Resoc_des
