lib/repl/pbft.mli: Resoc_crypto Resoc_des Resoc_fault Stats Transport Types
