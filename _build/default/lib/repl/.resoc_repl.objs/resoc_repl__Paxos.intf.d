lib/repl/paxos.mli: Resoc_des Resoc_fault Stats Transport Types
