lib/repl/types.mli: Format Resoc_crypto
