(** Generic closed-loop protocol client.

    Broadcasts each request to all replicas (backups forward to the
    primary), retries on timeout, and accepts a result once [quorum]
    distinct replicas reported the same value for the current request —
    f+1 for BFT protocols, 1 for crash-tolerant ones. One request is
    outstanding at a time; further submissions queue. *)

type 'msg t

val create :
  Resoc_des.Engine.t ->
  'msg Transport.fabric ->
  id:int ->
  n_replicas:int ->
  quorum:int ->
  retry_timeout:int ->
  stats:Stats.t ->
  to_msg:(Types.request -> 'msg) ->
  of_msg:('msg -> Types.reply option) ->
  ?on_complete:(Types.reply -> unit) ->
  unit ->
  'msg t
(** Registers the client's handler at endpoint [id] on the fabric. *)

val submit : 'msg t -> payload:int64 -> unit

val id : 'msg t -> int

val outstanding : 'msg t -> bool

val queued : 'msg t -> int

val shutdown : 'msg t -> unit
(** Cancel timers; pending requests are abandoned (end of experiment). *)
