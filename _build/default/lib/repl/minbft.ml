module Usig = Resoc_hybrid.Usig

(* The USIG as a Hybrid_bft certificate mechanism: counters come from the
   tamper-proof register, so they are unique and sequential by
   construction. *)
module Usig_hybrid = struct
  type t = Usig.t
  type cert = Usig.ui

  let protocol_name = "minbft"
  let make ~id ~key ~protection = Usig.create ~id ~key ~protection
  let create_cert = Usig.create_ui
  let verify_cert ~key ~digest cert = Usig.verify_ui ~key ~digest cert
  let cert_signer (ui : Usig.ui) = ui.Usig.signer
  let cert_counter (ui : Usig.ui) = ui.Usig.counter
  let current_counter = Usig.counter_value
end

include Hybrid_bft.Make (Usig_hybrid)

let usig = hybrid
let usig_gap_drops = cert_gap_drops
