(** Vocabulary shared by all replication protocols.

    Endpoint numbering convention: replicas occupy ids [0 .. n-1] and
    clients [n .. n+c-1] on the same transport fabric. Channels are
    authenticated point-to-point (the transport reports true senders), the
    standard BFT assumption; only hybrid-issued certificates (USIG UIs) are
    carried explicitly because their verification is the object of study. *)

module Hash = Resoc_crypto.Hash

type request = { client : int; rid : int; payload : int64 }
(** [rid] is a client-local sequence number; (client, rid) identifies the
    request globally. *)

type reply = { client : int; rid : int; result : int64; replica : int }

val make_request : client:int -> rid:int -> payload:int64 -> request

val request_digest : request -> Hash.t

val request_equal : request -> request -> bool

val pp_request : Format.formatter -> request -> unit
val pp_reply : Format.formatter -> reply -> unit
