(** Protocol-facing message transport abstraction.

    Protocols are written against ['msg fabric]: a set of numbered endpoints
    that exchange typed messages asynchronously. Two implementations exist:
    the uniform-latency {!hub} below (unit tests, protocol-only
    experiments), and the NoC-backed adapter in [Resoc_core], which routes
    the same messages over the simulated mesh. *)

type 'msg fabric = {
  n_endpoints : int;
  send : src:int -> dst:int -> 'msg -> unit;
  set_handler : int -> (src:int -> 'msg -> unit) -> unit;
  detach : int -> unit;  (** Drop the endpoint's handler (offline tile). *)
  messages_sent : unit -> int;
  bytes_sent : unit -> int;
}

val broadcast : 'msg fabric -> src:int -> to_:int list -> 'msg -> unit
(** Unicast to each destination (NoCs have no magic bus). *)

val hub :
  Resoc_des.Engine.t ->
  n:int ->
  ?latency:int ->
  ?size_of:('msg -> int) ->
  unit ->
  'msg fabric
(** Full mesh with fixed [latency] (default 5 cycles) between any pair;
    loopback costs 1. [size_of] (default constant 64) only feeds the
    byte counter. Messages to detached endpoints vanish. *)
