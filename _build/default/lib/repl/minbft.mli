(** MinBFT — efficient BFT-SMR with a USIG hybrid (Veronese et al.).

    The paper's flagship argument for architectural hybridization (§I, §III):
    anchoring message uniqueness in a small trusted component (the USIG of
    {!Resoc_hybrid.Usig}) cuts the replica requirement from 3f+1 to 2f+1 and
    one agreement phase: request → prepare (primary, with UI) → commit (all,
    with UI) → execute on f+1 commits → reply.

    Equivocation is structurally impossible: the USIG never signs two
    messages with the same counter, and verifiers enforce exact counter
    continuity per sender, so a lying primary can only *add* requests, not
    fork histories — this emerges from the hybrid here, it is not asserted.
    Conversely, a silently corrupted [Plain] USIG counter register produces
    counter gaps that stall the primary's slots until a view change (E2).

    Shares its agreement core with {!A2m_bft} through {!Hybrid_bft.Make};
    the simplified view change / state transfer is documented there and in
    DESIGN.md. *)

module Usig = Resoc_hybrid.Usig

include Hybrid_bft.S with type hybrid = Usig.t and type cert = Usig.ui

val usig : t -> replica:int -> Usig.t
(** Alias of {!hybrid}: the replica's USIG, for aiming SEU campaigns at its
    counter register. *)

val usig_gap_drops : t -> int
(** Alias of {!cert_gap_drops}. *)
