(** A2M-anchored BFT-SMR (in the spirit of A2M-PBFT-EA, Chun et al.).

    The second point on the paper's hybrid spectrum (§III): instead of a
    counter+MAC circuit, each replica owns an attested append-only memory
    ({!Resoc_hybrid.A2m}). Every protocol statement is appended to the log
    before being sent, so its certificate is the log position plus the
    cumulative hash chain — a Byzantine replica cannot show diverging
    histories because its log admits exactly one. With equivocation gone,
    2f+1 replicas suffice, exactly as with the USIG.

    Functionally this instance behaves like {!Minbft} with a heavier hybrid
    (E9's complexity comparison): certificates are larger (chain digest
    included), the hybrid keeps unbounded state, but it additionally
    supports retrospective lookups ({!Resoc_hybrid.A2m.lookup}) that a USIG
    cannot offer. *)

module A2m = Resoc_hybrid.A2m

include Hybrid_bft.S with type hybrid = A2m.t and type cert = A2m.attestation
