(** Resilient reconfiguration governance (§II.E; Gouveia et al. [55]).

    Privileged fabric operations — rewriting a region through the ICAP —
    must be *consensual*: a quorum of kernel replicas validates every
    proposed reconfiguration (does the requestor own the slot? is the
    bitstream checksum intact? does its shape match?) and only a [threshold]
    of YES votes releases the operation to the ICAP, whose sole grant is
    held by the governance component (a trusted-trustworthy enforcement
    point). A compromised kernel can vote YES on anything and propose rogue
    operations; with an honest-majority quorum those are blocked, while the
    single-kernel baseline executes them — experiment E8. *)

module Icap = Resoc_fabric.Icap
module Grid = Resoc_fabric.Grid
module Bitstream = Resoc_fabric.Bitstream

type op = {
  slot : Grid.slot_id;
  bitstream : Bitstream.t;
  requestor : int;  (** Principal claiming to own the slot. *)
}

type decision =
  | Executed of Grid.slot_id  (** New slot id after reconfiguration. *)
  | Blocked  (** Vote failed: fewer than [threshold] approvals. *)
  | Icap_rejected of string  (** Vote passed but the port refused (defence in depth). *)

type t

val create :
  Resoc_des.Engine.t ->
  Icap.t ->
  n_kernels:int ->
  threshold:int ->
  ?malicious:bool array ->
  ?vote_latency:int ->
  governance_principal:int ->
  unit ->
  t
(** The caller must have granted [governance_principal] the ICAP scope this
    governor administers. [vote_latency] (default 50) models the kernel
    round-trip per ballot. Malicious kernels always vote YES. *)

val single_kernel :
  Resoc_des.Engine.t -> Icap.t -> ?compromised:bool -> governance_principal:int -> unit -> t
(** The unprotected baseline: one kernel, threshold one. *)

val legitimate : t -> op -> bool
(** The validation every honest kernel applies. *)

val propose : t -> proposer:int -> op -> (decision -> unit) -> unit
(** [proposer] is the kernel submitting the ballot; a malicious proposer
    pushes rogue ops. Raises [Invalid_argument] on unknown kernels. *)

val executed_legitimate : t -> int
val executed_rogue : t -> int
(** Successful reconfigurations that honest validation would have rejected —
    the security failures E8 counts. *)

val blocked_rogue : t -> int
val blocked_legitimate : t -> int
(** False positives (honest ops blocked), expected 0 with honest majority. *)
