module Engine = Resoc_des.Engine

type policy = { period : int; downtime : int }

type hooks = {
  n_replicas : int;
  take_offline : int -> unit;
  bring_online : int -> unit;
  choose_variant : int -> int;
  on_restart : replica:int -> variant:int -> unit;
}

type t = {
  engine : Engine.t;
  policy : policy;
  hooks : hooks;
  restarting : bool array;
  mutable next_target : int;
  mutable count : int;
  mutable stopped : bool;
}

let do_rejuvenate t replica =
  if not t.restarting.(replica) then begin
    t.restarting.(replica) <- true;
    t.count <- t.count + 1;
    t.hooks.take_offline replica;
    let variant = t.hooks.choose_variant replica in
    ignore
      (Engine.schedule t.engine ~delay:t.policy.downtime (fun () ->
           t.restarting.(replica) <- false;
           t.hooks.bring_online replica;
           t.hooks.on_restart ~replica ~variant))
  end

let start engine policy hooks =
  if policy.period <= 0 then invalid_arg "Rejuvenation.start: period must be positive";
  if policy.downtime < 0 then invalid_arg "Rejuvenation.start: negative downtime";
  if policy.downtime >= policy.period then
    invalid_arg "Rejuvenation.start: downtime must be shorter than the stagger period";
  if hooks.n_replicas <= 0 then invalid_arg "Rejuvenation.start: empty group";
  let t =
    {
      engine;
      policy;
      hooks;
      restarting = Array.make hooks.n_replicas false;
      next_target = 0;
      count = 0;
      stopped = false;
    }
  in
  Engine.every engine ~period:policy.period (fun () ->
      if not t.stopped then begin
        let target = t.next_target in
        t.next_target <- (t.next_target + 1) mod hooks.n_replicas;
        do_rejuvenate t target
      end);
  t

let rejuvenate_now t ~replica =
  if replica < 0 || replica >= t.hooks.n_replicas then
    invalid_arg "Rejuvenation.rejuvenate_now: replica out of range";
  if not t.stopped then do_rejuvenate t replica

let rejuvenations t = t.count

let in_progress t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.restarting

let stop t = t.stopped <- true
