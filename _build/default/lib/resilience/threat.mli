(** Severity detector feeding the adaptation controller (§II.D).

    Aggregates suspicious events — failed MAC verifications, USIG counter
    gaps, request timeouts, equivocation evidence — into an exponentially
    decaying threat level. The paper calls for research on exactly such
    "severity detectors that can trigger adaptation actions". *)

type t

val create : Resoc_des.Engine.t -> half_life:int -> t
(** [half_life] is the decay half-life in cycles. *)

val report : t -> ?weight:float -> unit -> unit
(** Record one suspicious event (default weight 1.0). *)

val level : t -> float
(** Current decayed threat level. *)

val events_total : t -> int

val reset : t -> unit
