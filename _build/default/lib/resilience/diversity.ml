module Common_mode = Resoc_fault.Common_mode

type strategy = Same | Round_robin | Max_diversity

type t = { pool : Common_mode.t; strategy : strategy }

let create ~pool strategy = { pool; strategy }

let strategy t = t.strategy

let n_variants t = Common_mode.n_variants t.pool

let initial_assignment t ~n_replicas =
  if n_replicas <= 0 then invalid_arg "Diversity.initial_assignment: empty group";
  match t.strategy with
  | Same -> Array.make n_replicas 0
  | Round_robin -> Array.init n_replicas (fun i -> i mod n_variants t)
  | Max_diversity -> Common_mode.max_diversity_assignment t.pool ~n_replicas

let expected_group_risk t ~assignment =
  let n = Array.length assignment in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      acc := !acc +. Common_mode.shared_prob t.pool assignment.(i) assignment.(j)
    done
  done;
  !acc

let rejuvenation_variant t ~replica ~current =
  if replica < 0 || replica >= Array.length current then
    invalid_arg "Diversity.rejuvenation_variant: replica out of range";
  let v = n_variants t in
  match t.strategy with
  | Same -> current.(replica)
  | Round_robin -> (current.(replica) + 1) mod v
  | Max_diversity ->
    (* Score every candidate by correlation against the other replicas'
       variants; penalize keeping the current variant so the adversary's
       amortized exploit work is thrown away. *)
    let score candidate =
      let acc = ref (if candidate = current.(replica) then 0.5 else 0.0) in
      Array.iteri
        (fun j variant_j ->
          if j <> replica then acc := !acc +. Common_mode.shared_prob t.pool candidate variant_j)
        current;
      !acc
    in
    (* Scan candidates starting just after the current variant so that ties
       rotate through the pool instead of always recycling the lowest index
       — an APT that keeps its exploits must chase a moving set. *)
    let best = ref current.(replica) and best_score = ref infinity in
    for offset = 1 to v do
      let candidate = (current.(replica) + offset) mod v in
      let s = score candidate in
      if s < !best_score then begin
        best := candidate;
        best_score := s
      end
    done;
    !best
