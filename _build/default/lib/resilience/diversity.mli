(** Variant pool management (§II.B).

    Chooses which design variant each replica runs, initially and at every
    rejuvenation, using the common-mode vulnerability structure of
    {!Resoc_fault.Common_mode}. Three strategies bound the design space:
    [Same] (the monoculture baseline), [Round_robin] (naive rotation), and
    [Max_diversity] (correlation-aware assignment). *)

module Common_mode = Resoc_fault.Common_mode

type strategy = Same | Round_robin | Max_diversity

type t

val create : pool:Common_mode.t -> strategy -> t

val strategy : t -> strategy

val n_variants : t -> int

val initial_assignment : t -> n_replicas:int -> int array

val rejuvenation_variant : t -> replica:int -> current:int array -> int
(** Variant for [replica]'s next incarnation given everyone's current
    variants. [Same] keeps the current variant; [Round_robin] advances to
    the next; [Max_diversity] picks the variant least correlated with the
    *other* replicas' variants (preferring one different from the current,
    so an APT's amortized exploit is invalidated). *)

val expected_group_risk : t -> assignment:int array -> float
(** Sum of pairwise sharing probabilities (lower is better); a cheap
    analytic proxy used by tests and the allocator itself. *)
