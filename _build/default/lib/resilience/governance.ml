module Engine = Resoc_des.Engine
module Icap = Resoc_fabric.Icap
module Grid = Resoc_fabric.Grid
module Bitstream = Resoc_fabric.Bitstream

type op = { slot : Grid.slot_id; bitstream : Bitstream.t; requestor : int }

type decision = Executed of Grid.slot_id | Blocked | Icap_rejected of string

type t = {
  engine : Engine.t;
  icap : Icap.t;
  n_kernels : int;
  threshold : int;
  malicious : bool array;
  vote_latency : int;
  governance_principal : int;
  mutable executed_legitimate : int;
  mutable executed_rogue : int;
  mutable blocked_rogue : int;
  mutable blocked_legitimate : int;
}

let create engine icap ~n_kernels ~threshold ?malicious ?(vote_latency = 50)
    ~governance_principal () =
  if n_kernels <= 0 then invalid_arg "Governance.create: need at least one kernel";
  if threshold <= 0 || threshold > n_kernels then
    invalid_arg "Governance.create: threshold must be within the kernel group";
  let malicious =
    match malicious with
    | Some m ->
      if Array.length m <> n_kernels then
        invalid_arg "Governance.create: malicious flags must cover every kernel";
      m
    | None -> Array.make n_kernels false
  in
  {
    engine;
    icap;
    n_kernels;
    threshold;
    malicious;
    vote_latency;
    governance_principal;
    executed_legitimate = 0;
    executed_rogue = 0;
    blocked_rogue = 0;
    blocked_legitimate = 0;
  }

let single_kernel engine icap ?(compromised = false) ~governance_principal () =
  create engine icap ~n_kernels:1 ~threshold:1 ~malicious:[| compromised |]
    ~governance_principal ()

(* What an honest kernel checks before approving. *)
let legitimate t op =
  match Grid.slot (Icap.grid t.icap) op.slot with
  | None -> false
  | Some s ->
    s.Grid.owner = op.requestor
    && Bitstream.checksum_ok op.bitstream
    && Bitstream.matches_region op.bitstream s.Grid.region

let vote t ~kernel op = if t.malicious.(kernel) then true else legitimate t op

let propose t ~proposer op k =
  if proposer < 0 || proposer >= t.n_kernels then invalid_arg "Governance.propose: unknown kernel";
  let legit = legitimate t op in
  (* One ballot round-trip; all kernels vote in parallel. *)
  ignore
    (Engine.schedule t.engine ~delay:t.vote_latency (fun () ->
         let approvals = ref 0 in
         for kernel = 0 to t.n_kernels - 1 do
           if vote t ~kernel op then incr approvals
         done;
         if !approvals >= t.threshold then
           Icap.reconfigure t.icap ~principal:t.governance_principal ~slot:op.slot
             ~bitstream:op.bitstream (function
             | Icap.Configured id ->
               if legit then t.executed_legitimate <- t.executed_legitimate + 1
               else t.executed_rogue <- t.executed_rogue + 1;
               k (Executed id)
             | Icap.Denied -> k (Icap_rejected "denied")
             | Icap.Invalid_bitstream -> k (Icap_rejected "invalid bitstream")
             | Icap.Region_conflict e -> k (Icap_rejected e)
             | Icap.Shape_mismatch -> k (Icap_rejected "shape mismatch"))
         else begin
           if legit then t.blocked_legitimate <- t.blocked_legitimate + 1
           else t.blocked_rogue <- t.blocked_rogue + 1;
           k Blocked
         end))

let executed_legitimate t = t.executed_legitimate
let executed_rogue t = t.executed_rogue
let blocked_rogue t = t.blocked_rogue
let blocked_legitimate t = t.blocked_legitimate
