(** Proactive rejuvenation scheduling (§II.C).

    Restarts replicas one at a time on a staggered schedule so at most one
    group member is down at any moment (preserving the quorum), optionally
    switching variants (diverse rejuvenation) and relocating fabric regions
    (spatial rejuvenation) via the supplied hooks. Reactive mode lets a
    detector trigger an immediate out-of-band rejuvenation. *)

type policy = {
  period : int;  (** Cycles between consecutive rejuvenations (stagger). *)
  downtime : int;  (** How long a replica is offline while reconfiguring. *)
}

type hooks = {
  n_replicas : int;
  take_offline : int -> unit;
  bring_online : int -> unit;
  choose_variant : int -> int;
      (** Called while the replica is down; returns its next variant. *)
  on_restart : replica:int -> variant:int -> unit;
      (** Fires at the moment the replica completes its restart (APT resets,
          fabric relocation, etc. hang off this). *)
}

type t

val start : Resoc_des.Engine.t -> policy -> hooks -> t
(** First rejuvenation happens one [period] from now, targeting replica 0,
    then 1, ... round-robin. *)

val rejuvenate_now : t -> replica:int -> unit
(** Reactive path: immediate rejuvenation (unless that replica is already
    restarting). The proactive rotation continues unchanged. *)

val rejuvenations : t -> int

val in_progress : t -> int
(** Replicas currently offline for rejuvenation. *)

val stop : t -> unit
