module Engine = Resoc_des.Engine

type t = {
  engine : Engine.t;
  half_life : float;
  mutable level : float;
  mutable last_update : int;
  mutable events : int;
}

let create engine ~half_life =
  if half_life <= 0 then invalid_arg "Threat.create: half-life must be positive";
  { engine; half_life = float_of_int half_life; level = 0.0; last_update = 0; events = 0 }

let decay t =
  let now = Engine.now t.engine in
  let dt = float_of_int (now - t.last_update) in
  if dt > 0.0 then begin
    t.level <- t.level *. (0.5 ** (dt /. t.half_life));
    t.last_update <- now
  end

let report t ?(weight = 1.0) () =
  if weight < 0.0 then invalid_arg "Threat.report: negative weight";
  decay t;
  t.level <- t.level +. weight;
  t.events <- t.events + 1

let level t =
  decay t;
  t.level

let events_total t = t.events

let reset t =
  t.level <- 0.0;
  t.last_update <- Engine.now t.engine
