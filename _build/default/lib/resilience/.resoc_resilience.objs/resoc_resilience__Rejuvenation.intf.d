lib/resilience/rejuvenation.mli: Resoc_des
