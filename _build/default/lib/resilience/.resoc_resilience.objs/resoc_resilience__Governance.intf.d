lib/resilience/governance.mli: Resoc_des Resoc_fabric
