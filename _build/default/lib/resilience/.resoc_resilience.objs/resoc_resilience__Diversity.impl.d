lib/resilience/diversity.ml: Array Resoc_fault
