lib/resilience/rejuvenation.ml: Array Resoc_des
