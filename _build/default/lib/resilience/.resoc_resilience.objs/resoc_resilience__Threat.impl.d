lib/resilience/threat.ml: Resoc_des
