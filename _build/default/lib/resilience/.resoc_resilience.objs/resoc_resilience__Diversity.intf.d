lib/resilience/diversity.mli: Resoc_fault
