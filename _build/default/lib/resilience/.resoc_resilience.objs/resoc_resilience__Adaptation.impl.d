lib/resilience/adaptation.ml: List Resoc_des Threat
