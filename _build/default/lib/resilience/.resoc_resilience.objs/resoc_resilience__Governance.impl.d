lib/resilience/governance.ml: Array Resoc_des Resoc_fabric
