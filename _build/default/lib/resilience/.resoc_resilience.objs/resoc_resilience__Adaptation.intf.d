lib/resilience/adaptation.mli: Resoc_des Threat
