lib/resilience/threat.mli: Resoc_des
