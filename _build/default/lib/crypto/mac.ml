type key = int64

type t = int64

let key_of_int64 k = k

let fresh_key rng = Resoc_des.Rng.int64 rng

(* Sandwich construction: H(k || H(k || m)); enough to make the tag depend
   on every key bit through the avalanche finalizer. *)
let sign key digest =
  let inner = Hash.combine key digest in
  Hash.combine key inner

let verify key digest tag = Int64.equal (sign key digest) tag

let corrupt t = Int64.logxor t 0x8000000000000001L

let equal = Int64.equal

let pp ppf t = Format.fprintf ppf "%016Lx" t
