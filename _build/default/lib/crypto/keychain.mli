(** Key distribution for a group of principals.

    Models the usual BFT deployment assumption: every pair of principals
    shares a symmetric key, and every trusted component (USIG) owns a
    component key known to all verifiers' trusted components. Keys are
    derived deterministically from a master seed so that distinct simulation
    components agree without global state. *)

type t

val create : master:int64 -> n:int -> t
(** [create ~master ~n] provisions keys for principals [0 .. n-1]. *)

val size : t -> int

val pairwise : t -> int -> int -> Mac.key
(** [pairwise t i j] is symmetric: the same key for (i,j) and (j,i).
    Raises [Invalid_argument] on out-of-range principals. *)

val component : t -> int -> Mac.key
(** Key of principal [i]'s trusted component. *)

val group : t -> Mac.key
(** A group-wide key (broadcast authenticators in simplified settings). *)
