(** Keyed message authentication codes over {!Hash} digests.

    A MAC binds a digest to a secret key. As with {!Hash}, security is
    simulation-grade: adversaries in resoc tamper with state and messages but
    are not given key-recovery or forgery oracles, mirroring how BFT
    simulators treat authenticators. *)

type key

type t
(** An authenticator. *)

val key_of_int64 : int64 -> key
(** Deterministic key derivation (tests, reproducible deployments). *)

val fresh_key : Resoc_des.Rng.t -> key

val sign : key -> Hash.t -> t
(** Authenticate a digest. *)

val verify : key -> Hash.t -> t -> bool

val corrupt : t -> t
(** Flip a bit of the authenticator (for fault injection in tests). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
