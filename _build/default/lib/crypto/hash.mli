(** Simulation-grade 64-bit hashing.

    FNV-1a with an extra avalanche finalizer. This is NOT cryptographically
    secure; it is deterministic, fast, and collision-resistant enough for a
    simulated adversary that never attempts to invert or forge hashes (the
    threat model manipulates protocol state, not the hash function). *)

type t = int64
(** A 64-bit digest. *)

val of_string : string -> t

val of_bytes : bytes -> t

val combine : t -> t -> t
(** Order-sensitive combination of two digests. *)

val combine_int : t -> int -> t

val chain : t -> t -> t
(** [chain prev d] extends a hash chain (A2M-style log attestations). *)

val zero : t
(** Chain origin. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_hex : t -> string
