lib/crypto/mac.mli: Format Hash Resoc_des
