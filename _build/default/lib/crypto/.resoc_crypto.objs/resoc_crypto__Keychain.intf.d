lib/crypto/keychain.mli: Mac
