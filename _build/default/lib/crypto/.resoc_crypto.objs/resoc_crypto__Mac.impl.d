lib/crypto/mac.ml: Format Hash Int64 Resoc_des
