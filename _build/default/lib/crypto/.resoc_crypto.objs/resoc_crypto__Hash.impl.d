lib/crypto/hash.ml: Bytes Char Format Int64 Printf
