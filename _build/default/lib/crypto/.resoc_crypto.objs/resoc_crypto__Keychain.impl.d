lib/crypto/keychain.ml: Hash Mac
