type t = { master : int64; n : int }

let create ~master ~n =
  if n <= 0 then invalid_arg "Keychain.create: n must be positive";
  { master; n }

let size t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Keychain: principal out of range"

let pairwise t i j =
  check t i;
  check t j;
  let lo = min i j and hi = max i j in
  Mac.key_of_int64 (Hash.combine_int (Hash.combine_int t.master lo) hi)

let component t i =
  check t i;
  Mac.key_of_int64 (Hash.combine_int (Hash.combine t.master 0x55534947L) i)

let group t = Mac.key_of_int64 (Hash.combine t.master 0x47525055L)
