type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_label = function
  | Debug -> "DEBUG"
  | Info -> "INFO"
  | Warn -> "WARN"
  | Error -> "ERROR"

type entry = { time : int; level : level; component : string; message : string }

type t = {
  capacity : int;
  mutable ring : entry option array;
  mutable next : int;
  mutable total : int;
  mutable min_level : level;
}

let create ?(capacity = 4096) ?(min_level = Info) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; next = 0; total = 0; min_level }

let set_min_level t l = t.min_level <- l

let enabled t l = level_rank l >= level_rank t.min_level

let emit t ~time level ~component msg =
  if enabled t level then begin
    t.ring.(t.next) <- Some { time; level; component; message = msg () };
    t.next <- (t.next + 1) mod t.capacity;
    t.total <- t.total + 1
  end

let entries t =
  let kept = min t.total t.capacity in
  let start = if t.total <= t.capacity then 0 else t.next in
  let rec collect i acc =
    if i >= kept then List.rev acc
    else
      match t.ring.((start + i) mod t.capacity) with
      | None -> collect (i + 1) acc
      | Some e -> collect (i + 1) (e :: acc)
  in
  collect 0 []

let count t = t.total

let find t p = List.find_opt p (entries t)

let pp_entry ppf e =
  Format.fprintf ppf "[%8d] %-5s %-16s %s" e.time (level_label e.level) e.component e.message

let dump t ppf =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)
