(** Lightweight structured trace of simulation events.

    Keeps the last [capacity] entries in a ring; intended for debugging
    protocol runs and for tests that assert on the event stream. Formatting
    of entries is deferred until the message is actually kept, so disabled
    traces cost one branch. *)

type level = Debug | Info | Warn | Error

type entry = { time : int; level : level; component : string; message : string }

type t

val create : ?capacity:int -> ?min_level:level -> unit -> t
(** Default capacity 4096, default level [Info]. *)

val set_min_level : t -> level -> unit

val enabled : t -> level -> bool

val emit : t -> time:int -> level -> component:string -> (unit -> string) -> unit

val entries : t -> entry list
(** Oldest first; at most [capacity] entries. *)

val count : t -> int
(** Total entries ever emitted (including evicted ones). *)

val find : t -> (entry -> bool) -> entry option

val pp_entry : Format.formatter -> entry -> unit

val dump : t -> Format.formatter -> unit
