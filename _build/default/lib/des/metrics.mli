(** Measurement primitives shared by all experiments.

    Counters count discrete events, histograms summarise value
    distributions (latencies, hop counts), and series record time-stamped
    samples for plotting sweeps. All are cheap enough to leave enabled. *)

module Counter : sig
  type t

  val create : string -> t
  val name : t -> string
  val incr : ?by:int -> t -> unit
  val value : t -> int
  val reset : t -> unit
end

module Histogram : sig
  type t

  val create : string -> t
  val name : t -> string
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float

  val percentile : t -> float -> float
  (** [percentile h p] with [p] in [0,100], nearest-rank on sorted samples;
      0 when empty. *)

  val reset : t -> unit
end

module Series : sig
  type t

  val create : string -> t
  val name : t -> string
  val add : t -> time:int -> float -> unit
  val length : t -> int
  val to_list : t -> (int * float) list
  (** In insertion (time) order. *)

  val last : t -> (int * float) option
end
