lib/des/trace.mli: Format
