lib/des/metrics.ml: Array Float List
