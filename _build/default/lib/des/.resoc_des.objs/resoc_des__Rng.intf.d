lib/des/rng.mli:
