lib/des/heap.mli:
