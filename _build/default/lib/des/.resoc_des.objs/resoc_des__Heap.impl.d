lib/des/heap.ml: Array
