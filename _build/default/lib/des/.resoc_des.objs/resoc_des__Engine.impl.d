lib/des/engine.ml: Heap Rng
