lib/des/metrics.mli:
