lib/des/trace.ml: Array Format List
