type event = {
  time : int;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

type t = {
  mutable now : int;
  mutable next_seq : int;
  mutable processed : int;
  mutable stopped : bool;
  queue : event Heap.t;
  rng : Rng.t;
}

let leq_event a b = a.time < b.time || (a.time = b.time && a.seq <= b.seq)

let create ?(seed = 1L) () =
  {
    now = 0;
    next_seq = 0;
    processed = 0;
    stopped = false;
    queue = Heap.create ~leq:leq_event;
    rng = Rng.create seed;
  }

let now t = t.now

let rng t = t.rng

let at t ~time action =
  if time < t.now then invalid_arg "Engine.at: time is in the past";
  let ev = { time; seq = t.next_seq; action; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  Heap.add t.queue ev;
  ev

let schedule t ~delay action =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  at t ~time:(t.now + delay) action

let rec every t ~period ?start action =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let time = match start with Some s -> s | None -> t.now + period in
  let tick () =
    action ();
    every t ~period ~start:(time + period) action
  in
  ignore (at t ~time tick)

let cancel ev = ev.cancelled <- true

let pending t = Heap.size t.queue

let events_processed t = t.processed

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    if not ev.cancelled then begin
      t.now <- ev.time;
      t.processed <- t.processed + 1;
      ev.action ()
    end;
    true

let stop t = t.stopped <- true

let run ?until ?max_events t =
  t.stopped <- false;
  let budget = match max_events with Some m -> ref m | None -> ref max_int in
  let horizon = match until with Some u -> u | None -> max_int in
  let rec loop () =
    if t.stopped || !budget <= 0 then ()
    else
      match Heap.peek t.queue with
      | None -> ()
      | Some ev when ev.time > horizon -> ()
      | Some _ ->
        decr budget;
        ignore (step t);
        loop ()
  in
  loop ();
  (match until with
   | Some u when t.now < u && not t.stopped -> t.now <- u
   | Some _ | None -> ())
