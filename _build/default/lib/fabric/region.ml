type t = { x : int; y : int; w : int; h : int }

let make ~x ~y ~w ~h =
  if x < 0 || y < 0 then invalid_arg "Region.make: negative origin";
  if w <= 0 || h <= 0 then invalid_arg "Region.make: non-positive dimensions";
  { x; y; w; h }

let area t = t.w * t.h

let contains t ~x ~y = x >= t.x && x < t.x + t.w && y >= t.y && y < t.y + t.h

let overlaps a b =
  a.x < b.x + b.w && b.x < a.x + a.w && a.y < b.y + b.h && b.y < a.y + a.h

let frames t =
  let acc = ref [] in
  for y = t.y + t.h - 1 downto t.y do
    for x = t.x + t.w - 1 downto t.x do
      acc := (x, y) :: !acc
    done
  done;
  !acc

let fits t ~grid_w ~grid_h = t.x + t.w <= grid_w && t.y + t.h <= grid_h

let with_origin t ~x ~y = make ~x ~y ~w:t.w ~h:t.h

let equal a b = a.x = b.x && a.y = b.y && a.w = b.w && a.h = b.h

let pp ppf t = Format.fprintf ppf "[%dx%d@(%d,%d)]" t.w t.h t.x t.y
