(** Internal Configuration Access Port.

    The single gateway through which partial reconfiguration happens —
    internal (driven from within the fabric), partial (bounded to one
    region) and dynamic (the rest of the FPGA keeps running), per §II.E of
    the paper. The port enforces an access-control list, validates bitstream
    checksums, serializes concurrent requests (real ICAPs are one-word-wide
    serial devices), and models configuration time proportional to the
    bitstream size. *)

type t

type request_result =
  | Configured of Grid.slot_id
  | Denied  (** ACL rejected the principal/region combination. *)
  | Invalid_bitstream  (** Checksum validation failed. *)
  | Region_conflict of string  (** Placement failed (overlap/out of grid). *)
  | Shape_mismatch  (** Bitstream shape does not match the region. *)

val create :
  Resoc_des.Engine.t -> Grid.t -> ?bytes_per_cycle:int -> unit -> t
(** [bytes_per_cycle] defaults to 32 (configuration throughput). *)

val grid : t -> Grid.t

val grant : t -> principal:int -> region:Region.t -> unit
(** Allow [principal] to (re)configure any region contained in [region]. *)

val revoke : t -> principal:int -> unit
(** Drop all of the principal's grants. *)

val allowed : t -> principal:int -> region:Region.t -> bool

val configure :
  t ->
  principal:int ->
  region:Region.t ->
  bitstream:Bitstream.t ->
  (request_result -> unit) ->
  unit
(** Place a new slot. Queued behind in-flight operations; the callback fires
    when configuration completes (or immediately on rejection). *)

val reconfigure :
  t ->
  principal:int ->
  slot:Grid.slot_id ->
  bitstream:Bitstream.t ->
  (request_result -> unit) ->
  unit
(** Rewrite an existing slot in place with a new variant. The slot is *down*
    (released, then re-placed) for the duration of the write — the partial
    outage that staggered rejuvenation must schedule around. *)

val busy : t -> bool

val completed : t -> int
val rejected : t -> int
(** Lifetime operation counts. *)
