lib/fabric/region.ml: Format
