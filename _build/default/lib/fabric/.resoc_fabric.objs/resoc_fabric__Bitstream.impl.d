lib/fabric/bitstream.ml: Format Region Resoc_crypto
