lib/fabric/grid.ml: Array Hashtbl List Region
