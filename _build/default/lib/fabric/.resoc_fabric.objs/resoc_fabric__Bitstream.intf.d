lib/fabric/bitstream.mli: Format Region
