lib/fabric/region.mli: Format
