lib/fabric/icap.ml: Bitstream Grid Hashtbl List Region Resoc_des
