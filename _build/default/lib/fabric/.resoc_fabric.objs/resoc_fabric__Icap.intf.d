lib/fabric/icap.mli: Bitstream Grid Region Resoc_des
