lib/fabric/grid.mli: Region
