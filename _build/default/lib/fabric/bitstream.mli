(** Partial configuration bitstreams.

    A bitstream configures one region's worth of frames with a given design
    variant. It carries a checksum over its contents so the configuration
    controller can validate what was written — the paper (§II.E) makes
    "validating that a correct bitstream is written" one of the critical
    reconfiguration duties. *)

type t

val make : variant:int -> w:int -> h:int -> t
(** A valid bitstream implementing design [variant] for a [w]x[h] region. *)

val variant : t -> int

val width : t -> int
val height : t -> int

val size_bytes : t -> int
(** Proportional to the frame count; drives reconfiguration timing. *)

val checksum_ok : t -> bool

val corrupt : t -> t
(** Damage the payload without fixing the checksum (fault injection). *)

val forge : t -> variant:int -> t
(** Adversarial relabeling: claims a different variant but keeps the payload;
    detected by [checksum_ok]. *)

val matches_region : t -> Region.t -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
