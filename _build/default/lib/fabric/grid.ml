type slot_id = int

type slot = { id : slot_id; region : Region.t; variant : int; owner : int }

type t = {
  width : int;
  height : int;
  (* frame -> slot_id occupying it, or -1 when free *)
  frames : int array array;
  trojaned : bool array array;
  slots : (slot_id, slot) Hashtbl.t;
  mutable next_id : int;
}

let create ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Grid.create: dimensions must be positive";
  {
    width;
    height;
    frames = Array.make_matrix height width (-1);
    trojaned = Array.make_matrix height width false;
    slots = Hashtbl.create 16;
    next_id = 0;
  }

let width t = t.width
let height t = t.height

let check_frame t ~x ~y =
  if x < 0 || x >= t.width || y < 0 || y >= t.height then
    invalid_arg "Grid: frame coordinate out of range"

let mark_trojaned t ~x ~y =
  check_frame t ~x ~y;
  t.trojaned.(y).(x) <- true

let trojaned_frame t ~x ~y =
  check_frame t ~x ~y;
  t.trojaned.(y).(x)

let region_free t region =
  Region.fits region ~grid_w:t.width ~grid_h:t.height
  && List.for_all (fun (x, y) -> t.frames.(y).(x) = -1) (Region.frames region)

let place t ~region ~variant ~owner =
  if not (Region.fits region ~grid_w:t.width ~grid_h:t.height) then
    Error "region does not fit the grid"
  else if not (region_free t region) then Error "region overlaps an existing slot"
  else begin
    let id = t.next_id in
    t.next_id <- t.next_id + 1;
    List.iter (fun (x, y) -> t.frames.(y).(x) <- id) (Region.frames region);
    Hashtbl.replace t.slots id { id; region; variant; owner };
    Ok id
  end

let get_slot t id =
  match Hashtbl.find_opt t.slots id with
  | Some s -> s
  | None -> invalid_arg "Grid: unknown slot id"

let release t id =
  let s = get_slot t id in
  List.iter (fun (x, y) -> t.frames.(y).(x) <- -1) (Region.frames s.region);
  Hashtbl.remove t.slots id

let slot t id = Hashtbl.find_opt t.slots id

let slots t = Hashtbl.fold (fun _ s acc -> s :: acc) t.slots [] |> List.sort compare

let set_variant t id variant =
  let s = get_slot t id in
  Hashtbl.replace t.slots id { s with variant }

let slot_on_trojaned_frame t id =
  let s = get_slot t id in
  List.exists (fun (x, y) -> t.trojaned.(y).(x)) (Region.frames s.region)

let free_area t =
  let n = ref 0 in
  for y = 0 to t.height - 1 do
    for x = 0 to t.width - 1 do
      if t.frames.(y).(x) = -1 then incr n
    done
  done;
  !n

let find_placement t ~w ~h ?(avoid_trojaned = false) () =
  if w <= 0 || h <= 0 then invalid_arg "Grid.find_placement: non-positive dimensions";
  let candidate_ok region =
    region_free t region
    && ((not avoid_trojaned)
        || List.for_all (fun (x, y) -> not t.trojaned.(y).(x)) (Region.frames region))
  in
  let result = ref None in
  (try
     for y = 0 to t.height - h do
       for x = 0 to t.width - w do
         let region = Region.make ~x ~y ~w ~h in
         if candidate_ok region then begin
           result := Some region;
           raise Exit
         end
       done
     done
   with Exit -> ());
  !result

let relocate t id ?(avoid_trojaned = false) () =
  let s = get_slot t id in
  (* Free our own frames first so the new placement may reuse part of the
     grid, but remember them in case no placement exists. *)
  List.iter (fun (x, y) -> t.frames.(y).(x) <- -1) (Region.frames s.region);
  match find_placement t ~w:s.region.Region.w ~h:s.region.Region.h ~avoid_trojaned () with
  | Some region ->
    List.iter (fun (x, y) -> t.frames.(y).(x) <- id) (Region.frames region);
    Hashtbl.replace t.slots id { s with region };
    Ok region
  | None ->
    (* Restore the original placement. *)
    List.iter (fun (x, y) -> t.frames.(y).(x) <- id) (Region.frames s.region);
    Error "no alternative placement available"

let occupancy t =
  let total = t.width * t.height in
  float_of_int (total - free_area t) /. float_of_int total
