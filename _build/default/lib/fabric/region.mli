(** Rectangular reconfigurable regions on the FPGA frame grid. *)

type t = { x : int; y : int; w : int; h : int }

val make : x:int -> y:int -> w:int -> h:int -> t
(** Raises [Invalid_argument] on non-positive dimensions or negative origin. *)

val area : t -> int
(** Number of frames covered. *)

val contains : t -> x:int -> y:int -> bool

val overlaps : t -> t -> bool

val frames : t -> (int * int) list
(** All (x, y) frame coordinates covered, row-major. *)

val fits : t -> grid_w:int -> grid_h:int -> bool

val with_origin : t -> x:int -> y:int -> t
(** Same shape at a different origin (spatial relocation). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
