module Hash = Resoc_crypto.Hash

type t = { variant : int; w : int; h : int; payload : Hash.t; checksum : Hash.t }

(* The "payload" stands in for the configuration data; its true value for a
   given (variant, shape) is a deterministic function, so validators can
   recompute the expected checksum. *)
let payload_of ~variant ~w ~h =
  Hash.combine_int (Hash.combine_int (Hash.combine_int (Hash.of_string "bitstream") variant) w) h

let checksum_of ~variant ~w ~h payload =
  Hash.combine (Hash.combine_int (Hash.combine_int (Hash.combine_int Hash.zero variant) w) h) payload

let make ~variant ~w ~h =
  if w <= 0 || h <= 0 then invalid_arg "Bitstream.make: non-positive dimensions";
  let payload = payload_of ~variant ~w ~h in
  { variant; w; h; payload; checksum = checksum_of ~variant ~w ~h payload }

let variant t = t.variant
let width t = t.w
let height t = t.h

(* 212 KiB per frame column is a plausible 7-series-like figure; any constant
   works since only ratios matter. *)
let size_bytes t = t.w * t.h * 26_624

let checksum_ok t =
  Hash.equal t.checksum (checksum_of ~variant:t.variant ~w:t.w ~h:t.h t.payload)
  && Hash.equal t.payload (payload_of ~variant:t.variant ~w:t.w ~h:t.h)

let corrupt t = { t with payload = Hash.combine t.payload (Hash.of_string "bitrot") }

let forge t ~variant = { t with variant }

let matches_region t (r : Region.t) = t.w = r.Region.w && t.h = r.Region.h

let equal a b =
  a.variant = b.variant && a.w = b.w && a.h = b.h
  && Hash.equal a.payload b.payload
  && Hash.equal a.checksum b.checksum

let pp ppf t = Format.fprintf ppf "bitstream(v%d %dx%d)" t.variant t.w t.h
