(** The FPGA grid fabric: a plane of configuration frames.

    Tracks which frames belong to which placed region, which design variant
    occupies them, and which frames hide a fabric-level trojan (§II.C's
    "potential backdoors in the FPGA grid fabric"): a slot whose region
    covers a trojaned frame is considered exploitable by the adversary.
    Spatial relocation during rejuvenation exists precisely to move off such
    frames. *)

type t

type slot_id = int
(** Handle for a placed region. *)

type slot = { id : slot_id; region : Region.t; variant : int; owner : int }

val create : width:int -> height:int -> t

val width : t -> int
val height : t -> int

val mark_trojaned : t -> x:int -> y:int -> unit
(** Plant a fabric trojan under frame (x, y). *)

val trojaned_frame : t -> x:int -> y:int -> bool

val place : t -> region:Region.t -> variant:int -> owner:int -> (slot_id, string) result
(** Claims the region's frames. Fails if out of bounds or overlapping an
    existing slot. *)

val release : t -> slot_id -> unit
(** Frees the slot's frames. Unknown ids raise [Invalid_argument]. *)

val slot : t -> slot_id -> slot option

val slots : t -> slot list

val set_variant : t -> slot_id -> int -> unit
(** In-place variant change (the effect of a successful reconfiguration). *)

val slot_on_trojaned_frame : t -> slot_id -> bool

val free_area : t -> int

val find_placement : t -> w:int -> h:int -> ?avoid_trojaned:bool -> unit -> Region.t option
(** First-fit scan for a free [w]x[h] region; with [avoid_trojaned] (default
    false) also skips trojaned frames. *)

val relocate : t -> slot_id -> ?avoid_trojaned:bool -> unit -> (Region.t, string) result
(** Move a slot to a fresh placement (frees the old frames). Fails when no
    alternative placement exists. *)

val occupancy : t -> float
(** Fraction of frames in use. *)
