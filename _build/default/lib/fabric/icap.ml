module Engine = Resoc_des.Engine

type request_result =
  | Configured of Grid.slot_id
  | Denied
  | Invalid_bitstream
  | Region_conflict of string
  | Shape_mismatch

type op = { run : unit -> unit }

type t = {
  engine : Engine.t;
  grid : Grid.t;
  bytes_per_cycle : int;
  acl : (int, Region.t list) Hashtbl.t;
  mutable queue : op list;  (* pending, reversed *)
  mutable busy : bool;
  mutable completed : int;
  mutable rejected : int;
}

let create engine grid ?(bytes_per_cycle = 32) () =
  if bytes_per_cycle <= 0 then invalid_arg "Icap.create: bytes_per_cycle must be positive";
  {
    engine;
    grid;
    bytes_per_cycle;
    acl = Hashtbl.create 8;
    queue = [];
    busy = false;
    completed = 0;
    rejected = 0;
  }

let grid t = t.grid

let grant t ~principal ~region =
  let existing = match Hashtbl.find_opt t.acl principal with Some l -> l | None -> [] in
  Hashtbl.replace t.acl principal (region :: existing)

let revoke t ~principal = Hashtbl.remove t.acl principal

let region_within outer (inner : Region.t) =
  inner.Region.x >= outer.Region.x && inner.Region.y >= outer.Region.y
  && inner.Region.x + inner.Region.w <= outer.Region.x + outer.Region.w
  && inner.Region.y + inner.Region.h <= outer.Region.y + outer.Region.h

let allowed t ~principal ~region =
  match Hashtbl.find_opt t.acl principal with
  | None -> false
  | Some grants -> List.exists (fun g -> region_within g region) grants

let write_cycles t bitstream =
  (Bitstream.size_bytes bitstream + t.bytes_per_cycle - 1) / t.bytes_per_cycle

let rec pump t =
  match t.queue with
  | [] -> t.busy <- false
  | op :: rest ->
    t.queue <- rest;
    t.busy <- true;
    op.run ()

and finish t =
  t.completed <- t.completed + 1;
  pump t

let enqueue t run =
  t.queue <- t.queue @ [ { run } ];
  if not t.busy then pump t

let reject t k result =
  t.rejected <- t.rejected + 1;
  k result

let configure t ~principal ~region ~bitstream k =
  if not (allowed t ~principal ~region) then reject t k Denied
  else if not (Bitstream.matches_region bitstream region) then reject t k Shape_mismatch
  else if not (Bitstream.checksum_ok bitstream) then reject t k Invalid_bitstream
  else
    enqueue t (fun () ->
        ignore
          (Engine.schedule t.engine ~delay:(write_cycles t bitstream) (fun () ->
               match
                 Grid.place t.grid ~region ~variant:(Bitstream.variant bitstream) ~owner:principal
               with
               | Ok id ->
                 finish t;
                 k (Configured id)
               | Error e ->
                 t.rejected <- t.rejected + 1;
                 pump t;
                 k (Region_conflict e))))

let reconfigure t ~principal ~slot ~bitstream k =
  match Grid.slot t.grid slot with
  | None -> reject t k (Region_conflict "unknown slot")
  | Some s ->
    let region = s.Grid.region in
    if not (allowed t ~principal ~region) then reject t k Denied
    else if not (Bitstream.matches_region bitstream region) then reject t k Shape_mismatch
    else if not (Bitstream.checksum_ok bitstream) then reject t k Invalid_bitstream
    else
      enqueue t (fun () ->
          (* Re-validate at execution time: an earlier queued operation may
             have released or replaced the slot. *)
          match Grid.slot t.grid slot with
          | None ->
            t.rejected <- t.rejected + 1;
            pump t;
            k (Region_conflict "slot vanished while queued")
          | Some s ->
            (* The slot goes dark while its frames are rewritten. *)
            let owner = s.Grid.owner in
            let region = s.Grid.region in
            Grid.release t.grid slot;
            ignore
              (Engine.schedule t.engine ~delay:(write_cycles t bitstream) (fun () ->
                   match
                     Grid.place t.grid ~region ~variant:(Bitstream.variant bitstream) ~owner
                   with
                   | Ok id ->
                     finish t;
                     k (Configured id)
                   | Error e ->
                     t.rejected <- t.rejected + 1;
                     pump t;
                     k (Region_conflict e))))

let busy t = t.busy

let completed t = t.completed
let rejected t = t.rejected
