module Engine = Resoc_des.Engine
module Stats = Resoc_repl.Stats

type t = {
  engine : Engine.t;
  transport : Group.transport_kind;
  mutable current : Group.t;
  mutable epoch : int;
  mutable switching : bool;
  mutable dropped : int;
  mutable completed_past_epochs : int;
}

let create engine transport spec =
  { engine;
    transport;
    current = Group.build engine transport spec;
    epoch = 0;
    switching = false;
    dropped = 0;
    completed_past_epochs = 0;
  }

let group t = t.current

let epoch t = t.epoch

let switching t = t.switching

let submit t ~client ~payload =
  if t.switching then t.dropped <- t.dropped + 1
  else t.current.Group.submit ~client ~payload

let dropped_during_switch t = t.dropped

(* Majority application state of the old epoch: the value most replicas
   agree on (ties broken towards the largest state, i.e. most progress). *)
let majority_state group =
  let counts = Hashtbl.create 8 in
  for replica = 0 to group.Group.n_replicas - 1 do
    let state = group.Group.replica_state ~replica in
    Hashtbl.replace counts state
      (1 + (match Hashtbl.find_opt counts state with Some c -> c | None -> 0))
  done;
  Hashtbl.fold
    (fun state count (best_state, best_count) ->
      if count > best_count || (count = best_count && Int64.compare state best_state > 0) then
        (state, count)
      else (best_state, best_count))
    counts (0L, 0)
  |> fst

let switch t spec ~downtime =
  if t.switching then invalid_arg "Protocol_switch.switch: already switching";
  if downtime < 0 then invalid_arg "Protocol_switch.switch: negative downtime";
  t.switching <- true;
  let carried_state = majority_state t.current in
  t.completed_past_epochs <-
    t.completed_past_epochs + (t.current.Group.stats ()).Stats.completed;
  ignore
    (Engine.schedule t.engine ~delay:downtime (fun () ->
         let next = Group.build t.engine t.transport spec in
         for replica = 0 to next.Group.n_replicas - 1 do
           next.Group.set_replica_state ~replica carried_state
         done;
         t.current <- next;
         t.epoch <- t.epoch + 1;
         t.switching <- false))

let total_completed t =
  t.completed_past_epochs + (t.current.Group.stats ()).Stats.completed
