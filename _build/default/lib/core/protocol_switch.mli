(** Epoch-based protocol switching (§II.D: "switching to a backup protocol
    that is more adequate to the current conditions").

    The switcher runs one {!Group} at a time. A switch stops feeding the old
    group, waits out a reconfiguration downtime (softcore reloading, state
    transfer), then starts the new group with every replica's application
    state installed from the old epoch's majority. Requests submitted during
    the downtime are rejected and counted — the honest cost of adaptation
    the paper alludes to.

    Typical use (exercised in ablation A5): run MinBFT while its USIG
    hybrids are healthy; when hybrid faults accumulate, fall back to PBFT,
    which needs no hybrids at the price of 3f+1 replicas. *)

module Engine = Resoc_des.Engine

type t

val create : Engine.t -> Group.transport_kind -> Group.spec -> t

val group : t -> Group.t
(** The group of the current epoch. *)

val epoch : t -> int
(** 0 initially; +1 per completed switch. *)

val switching : t -> bool

val submit : t -> client:int -> payload:int64 -> unit
(** Routed to the current group; dropped (and counted) while switching. *)

val dropped_during_switch : t -> int

val switch : t -> Group.spec -> downtime:int -> unit
(** Begin a switch; the new group serves after [downtime] cycles. Raises
    [Invalid_argument] if a switch is already in progress. *)

val total_completed : t -> int
(** Completed requests summed over every epoch so far. *)
