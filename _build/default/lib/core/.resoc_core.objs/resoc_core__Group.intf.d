lib/core/group.mli: Resoc_des Resoc_fault Resoc_hw Resoc_hybrid Resoc_repl Soc
