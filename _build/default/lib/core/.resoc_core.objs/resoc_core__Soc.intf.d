lib/core/soc.mli: Resoc_des Resoc_fabric Resoc_noc Resoc_repl
