lib/core/protocol_switch.mli: Group Resoc_des
