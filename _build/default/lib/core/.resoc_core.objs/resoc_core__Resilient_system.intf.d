lib/core/resilient_system.mli: Format Group Resoc_des Resoc_hw Resoc_repl Resoc_resilience Soc
