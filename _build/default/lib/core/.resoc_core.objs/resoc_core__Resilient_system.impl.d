lib/core/resilient_system.ml: Array Format Group List Printf Resoc_des Resoc_fabric Resoc_fault Resoc_hw Resoc_repl Resoc_resilience Soc
