lib/core/group.ml: Resoc_des Resoc_fault Resoc_hw Resoc_hybrid Resoc_repl Soc
