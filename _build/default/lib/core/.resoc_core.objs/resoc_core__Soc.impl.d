lib/core/soc.ml: Array Hashtbl List Resoc_des Resoc_fabric Resoc_noc Resoc_repl
