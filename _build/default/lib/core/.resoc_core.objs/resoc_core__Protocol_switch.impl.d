lib/core/protocol_switch.ml: Group Hashtbl Int64 Resoc_des Resoc_repl
