(** 2D-mesh network-on-chip topology with fault state.

    Tiles are numbered row-major: id = y*width + x. Links are directed
    (full-duplex modeled as two directed links). Routing is XY
    dimension-order — deterministic and deadlock-free, as in most real NoCs;
    a failed link or router on the unique XY path therefore drops traffic,
    which is exactly the failure visibility the resilience layers react to. *)

type t

type link = { src : int; dst : int }
(** A directed link between adjacent tiles. *)

val create : width:int -> height:int -> t

val width : t -> int
val height : t -> int
val n_nodes : t -> int

val coord_of_id : t -> int -> int * int
(** (x, y) of a tile id. Raises [Invalid_argument] if out of range. *)

val id_of_coord : t -> x:int -> y:int -> int

val manhattan : t -> int -> int -> int
(** Hop distance between two tiles. *)

val neighbors : t -> int -> int list

val xy_route : t -> src:int -> dst:int -> int list
(** Tiles visited, inclusive of [src] and [dst]; X dimension first. *)

val yx_route : t -> src:int -> dst:int -> int list
(** Y dimension first — the escape path of simple fault-tolerant routers. *)

val links_of_route : int list -> link list

val fail_link : t -> link -> unit
val repair_link : t -> link -> unit
val link_up : t -> link -> bool
(** Unknown links (non-adjacent endpoints) raise [Invalid_argument]. *)

val fail_router : t -> int -> unit
val repair_router : t -> int -> unit
val router_up : t -> int -> bool

val route_usable : t -> src:int -> dst:int -> bool
(** All routers and links along the XY route are up. The endpoints' own
    routers must be up too. *)

val route_usable_via : t -> route:int list -> bool
(** Same check for an arbitrary route. *)

val failed_links : t -> link list
val failed_routers : t -> int list
