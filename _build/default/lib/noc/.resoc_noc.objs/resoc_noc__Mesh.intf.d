lib/noc/mesh.mli:
