lib/noc/mesh.ml: Int List Set
