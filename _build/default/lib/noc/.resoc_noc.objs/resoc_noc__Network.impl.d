lib/noc/network.ml: Array Hashtbl Mesh Resoc_des
