lib/noc/network.mli: Mesh Resoc_des
