type link = { src : int; dst : int }

module Link_set = Set.Make (struct
  type t = link

  let compare (a : link) b = compare (a.src, a.dst) (b.src, b.dst)
end)

module Int_set = Set.Make (Int)

type t = {
  width : int;
  height : int;
  mutable down_links : Link_set.t;
  mutable down_routers : Int_set.t;
}

let create ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Mesh.create: dimensions must be positive";
  { width; height; down_links = Link_set.empty; down_routers = Int_set.empty }

let width t = t.width
let height t = t.height
let n_nodes t = t.width * t.height

let check_id t id =
  if id < 0 || id >= n_nodes t then invalid_arg "Mesh: tile id out of range"

let coord_of_id t id =
  check_id t id;
  (id mod t.width, id / t.width)

let id_of_coord t ~x ~y =
  if x < 0 || x >= t.width || y < 0 || y >= t.height then
    invalid_arg "Mesh.id_of_coord: coordinate out of range";
  (y * t.width) + x

let manhattan t a b =
  let ax, ay = coord_of_id t a and bx, by = coord_of_id t b in
  abs (ax - bx) + abs (ay - by)

let neighbors t id =
  let x, y = coord_of_id t id in
  let candidates = [ (x - 1, y); (x + 1, y); (x, y - 1); (x, y + 1) ] in
  List.filter_map
    (fun (nx, ny) ->
      if nx >= 0 && nx < t.width && ny >= 0 && ny < t.height then Some (id_of_coord t ~x:nx ~y:ny)
      else None)
    candidates

let dimension_route t ~src ~dst ~x_first =
  check_id t src;
  check_id t dst;
  let sx, sy = coord_of_id t src and dx, dy = coord_of_id t dst in
  let step v target = if v < target then v + 1 else v - 1 in
  let rec go x y acc =
    if x_first && x <> dx then
      let x' = step x dx in
      go x' y (id_of_coord t ~x:x' ~y :: acc)
    else if y <> dy then
      let y' = step y dy in
      go x y' (id_of_coord t ~x ~y:y' :: acc)
    else if x <> dx then
      let x' = step x dx in
      go x' y (id_of_coord t ~x:x' ~y :: acc)
    else List.rev acc
  in
  go sx sy [ src ]

let xy_route t ~src ~dst = dimension_route t ~src ~dst ~x_first:true

let yx_route t ~src ~dst = dimension_route t ~src ~dst ~x_first:false

let links_of_route route =
  let rec pair = function
    | a :: (b :: _ as rest) -> { src = a; dst = b } :: pair rest
    | [ _ ] | [] -> []
  in
  pair route

let adjacent t a b =
  check_id t a;
  check_id t b;
  manhattan t a b = 1

let check_link t l =
  if not (adjacent t l.src l.dst) then invalid_arg "Mesh: not a link between adjacent tiles"

let fail_link t l =
  check_link t l;
  t.down_links <- Link_set.add l t.down_links

let repair_link t l =
  check_link t l;
  t.down_links <- Link_set.remove l t.down_links

let link_up t l =
  check_link t l;
  not (Link_set.mem l t.down_links)

let fail_router t id =
  check_id t id;
  t.down_routers <- Int_set.add id t.down_routers

let repair_router t id =
  check_id t id;
  t.down_routers <- Int_set.remove id t.down_routers

let router_up t id =
  check_id t id;
  not (Int_set.mem id t.down_routers)

let route_usable_via t ~route =
  List.for_all (router_up t) route && List.for_all (link_up t) (links_of_route route)

let route_usable t ~src ~dst = route_usable_via t ~route:(xy_route t ~src ~dst)

let failed_links t = Link_set.elements t.down_links
let failed_routers t = Int_set.elements t.down_routers
