module Engine = Resoc_des.Engine
module Metrics = Resoc_des.Metrics

type routing = Xy | Xy_with_yx_fallback

type config = {
  router_latency : int;
  bytes_per_cycle : int;
  local_latency : int;
  routing : routing;
}

let default_config = { router_latency = 2; bytes_per_cycle = 16; local_latency = 1; routing = Xy }

module Link_tbl = Hashtbl.Make (struct
  type t = Mesh.link

  let equal (a : Mesh.link) b = a.Mesh.src = b.Mesh.src && a.Mesh.dst = b.Mesh.dst
  let hash (l : Mesh.link) = (l.Mesh.src * 65599) + l.Mesh.dst
end)

type 'msg t = {
  engine : Engine.t;
  mesh : Mesh.t;
  config : config;
  handlers : (src:int -> 'msg -> unit) option array;
  busy_until : int Link_tbl.t;
  load : int Link_tbl.t;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes_sent : int;
  latency : Metrics.Histogram.t;
}

let create engine mesh config =
  if config.router_latency < 0 || config.bytes_per_cycle <= 0 || config.local_latency < 0 then
    invalid_arg "Network.create: invalid config";
  {
    engine;
    mesh;
    config;
    handlers = Array.make (Mesh.n_nodes mesh) None;
    busy_until = Link_tbl.create 64;
    load = Link_tbl.create 64;
    sent = 0;
    delivered = 0;
    dropped = 0;
    bytes_sent = 0;
    latency = Metrics.Histogram.create "noc.latency";
  }

let mesh t = t.mesh

let attach t ~node handler =
  if node < 0 || node >= Array.length t.handlers then invalid_arg "Network.attach: bad node";
  t.handlers.(node) <- Some handler

let detach t ~node =
  if node < 0 || node >= Array.length t.handlers then invalid_arg "Network.detach: bad node";
  t.handlers.(node) <- None

let deliver t ~src ~dst ~start msg =
  match t.handlers.(dst) with
  | None -> t.dropped <- t.dropped + 1
  | Some handler ->
    t.delivered <- t.delivered + 1;
    Metrics.Histogram.add t.latency (float_of_int (Engine.now t.engine - start));
    handler ~src msg

let serialization_cycles t bytes_ =
  (bytes_ + t.config.bytes_per_cycle - 1) / t.config.bytes_per_cycle

(* Advance the message across [links]; each traversal waits for the link to
   free, then occupies it for the serialization time plus router latency. *)
let rec traverse t ~src ~dst ~start ~bytes_ msg = function
  | [] -> deliver t ~src ~dst ~start msg
  | link :: rest ->
    if not (Mesh.router_up t.mesh link.Mesh.src && Mesh.link_up t.mesh link) then
      t.dropped <- t.dropped + 1
    else begin
      let now = Engine.now t.engine in
      let free_at = match Link_tbl.find_opt t.busy_until link with Some v -> v | None -> now in
      let begin_tx = max now free_at in
      let done_at = begin_tx + t.config.router_latency + serialization_cycles t bytes_ in
      Link_tbl.replace t.busy_until link done_at;
      Link_tbl.replace t.load link
        (1 + (match Link_tbl.find_opt t.load link with Some v -> v | None -> 0));
      ignore
        (Engine.at t.engine ~time:done_at (fun () ->
             (* Re-check the far router at arrival time: it may have died
                while the message was in flight. *)
             if Mesh.router_up t.mesh link.Mesh.dst then
               traverse t ~src ~dst ~start ~bytes_ msg rest
             else t.dropped <- t.dropped + 1))
    end

let send t ~src ~dst ~bytes_ msg =
  if bytes_ <= 0 then invalid_arg "Network.send: bytes must be positive";
  t.sent <- t.sent + 1;
  t.bytes_sent <- t.bytes_sent + bytes_;
  let start = Engine.now t.engine in
  if src = dst then
    ignore
      (Engine.schedule t.engine ~delay:t.config.local_latency (fun () ->
           deliver t ~src ~dst ~start msg))
  else begin
    let route =
      let xy = Mesh.xy_route t.mesh ~src ~dst in
      match t.config.routing with
      | Xy -> xy
      | Xy_with_yx_fallback ->
        if Mesh.route_usable_via t.mesh ~route:xy then xy else Mesh.yx_route t.mesh ~src ~dst
    in
    let links = Mesh.links_of_route route in
    (* The sender's own router must be alive to inject at all. *)
    if not (Mesh.router_up t.mesh src) then t.dropped <- t.dropped + 1
    else traverse t ~src ~dst ~start ~bytes_ msg links
  end

let sent t = t.sent
let delivered t = t.delivered
let dropped t = t.dropped
let bytes_sent t = t.bytes_sent
let latency t = t.latency

let hop_load t = Link_tbl.fold (fun link n acc -> (link, n) :: acc) t.load []
