(* Adaptive resilience: the two §II.D mechanisms working together.

   A threat detector watches suspicious events; an adaptation controller
   scales the fault budget f out during the surge and back in afterwards,
   while an epoch-based protocol switch shows the second adaptation lever:
   falling back from hybrid-anchored MinBFT to hybrid-free PBFT when the
   trusted components themselves degrade.

   Run with: dune exec examples/adaptive.exe *)

module Engine = Resoc_des.Engine
module Rng = Resoc_des.Rng
module Register = Resoc_hw.Register
module Usig = Resoc_hybrid.Usig
module Seu = Resoc_fault.Seu
module Threat = Resoc_resilience.Threat
module Adaptation = Resoc_resilience.Adaptation
module Stats = Resoc_repl.Stats
module Group = Resoc_core.Group
module Protocol_switch = Resoc_core.Protocol_switch

let () =
  Format.printf "== Adaptation: scaling f with the threat ==@.@.";
  let engine = Engine.create () in
  let threat = Threat.create engine ~half_life:20_000 in
  let f = ref 1 in
  let history = ref [] in
  let policy = { Adaptation.default_policy with eval_period = 1_000; cooldown = 5_000 } in
  let _ =
    Adaptation.start engine policy threat
      {
        Adaptation.current_f = (fun () -> !f);
        scale_to =
          (fun f' ->
            history := (Engine.now engine, f') :: !history;
            f := f');
      }
  in
  (* A surge of suspicious events in [50k, 150k). *)
  let rng = Rng.split (Engine.rng engine) in
  Engine.every engine ~period:2_000 (fun () ->
      let now = Engine.now engine in
      let p = if now >= 50_000 && now < 150_000 then 0.8 else 0.01 in
      if Rng.bernoulli rng p then Threat.report threat ());
  Engine.run ~until:300_000 engine;
  Format.printf "controller decisions (time, new f):@.";
  List.iter (fun (t, f') -> Format.printf "  @%6d -> f=%d@." t f') (List.rev !history);
  Format.printf "final f: %d@.@." !f;

  Format.printf "== Adaptation: switching protocols when the hybrids degrade ==@.@.";
  let engine = Engine.create () in
  let spec =
    { Group.default_spec with kind = `Minbft; n_clients = 1; usig_protection = Register.Plain }
  in
  let sw = Protocol_switch.create engine (Group.Hub { latency = 5 }) spec in
  (match (Protocol_switch.group sw).Group.usig_of with
   | Some usig_of ->
     let registers = Array.init 3 (fun replica -> Usig.counter_register (usig_of ~replica)) in
     ignore (Seu.start engine (Rng.create 7L) ~rate_per_bit_cycle:2.0e-6 registers)
   | None -> ());
  ignore
    (Engine.at engine ~time:120_000 (fun () ->
         Format.printf "@.[cycle 120000] hybrid churn detected -> switching to PBFT@.";
         Protocol_switch.switch sw { spec with Group.kind = `Pbft } ~downtime:5_000));
  Engine.every engine ~period:2_000 (fun () ->
      if Engine.now engine < 280_000 then Protocol_switch.submit sw ~client:0 ~payload:1L);
  Engine.run ~until:300_000 engine;
  let group = Protocol_switch.group sw in
  Format.printf "epoch %d on %s: total %d completed, %d dropped in the switch hole@."
    (Protocol_switch.epoch sw) group.Group.protocol
    (Protocol_switch.total_completed sw)
    (Protocol_switch.dropped_during_switch sw);
  Format.printf "view changes in the final epoch: %d (hybrid-free PBFT runs quietly)@."
    (group.Group.stats ()).Stats.view_changes
