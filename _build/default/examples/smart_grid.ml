(* Smart grid: an internet-exposed substation controller under an APT.

   The adversary develops exploits for the deployed design variants one by
   one and walks back in after every restart; two fabric frames hide
   trojans. This example contrasts a static monoculture deployment with
   the full defense stack (diversity + diverse relocating rejuvenation +
   reactive detection), the paper's SII.B-SII.E composition.

   Run with: dune exec examples/smart_grid.exe *)

module Resilient_system = Resoc_core.Resilient_system
module Diversity = Resoc_resilience.Diversity
module Scenario = Resoc_workload.Scenario

let () =
  Format.printf "== Substation controller under an APT campaign ==@.@.";
  let scenario = Scenario.smart_grid_substation () in
  Format.printf "%s@.@." scenario.Scenario.description;

  Format.printf "-- configuration A: monoculture, never rejuvenated --@.";
  let undefended =
    {
      scenario.Scenario.config with
      Resilient_system.diversity = Diversity.Same;
      n_variants = 1;
      rejuvenation = None;
      relocate_on_rejuvenation = false;
      reactive_rejuvenation = false;
    }
  in
  let sys_a = Resilient_system.create undefended in
  let report_a =
    Resilient_system.run sys_a ~horizon:scenario.Scenario.horizon
      ~workload_period:scenario.Scenario.workload_period
  in
  Format.printf "%a@.@." Resilient_system.pp_report report_a;

  Format.printf "-- configuration B: diversity + diverse relocating rejuvenation --@.";
  let sys_b = Resilient_system.create scenario.Scenario.config in
  let report_b =
    Resilient_system.run sys_b ~horizon:scenario.Scenario.horizon
      ~workload_period:scenario.Scenario.workload_period
  in
  Format.printf "%a@.@." Resilient_system.pp_report report_b;

  let describe r =
    match r.Resilient_system.failed_at with
    | Some t -> Printf.sprintf "lost safety at cycle %d" t
    | None -> "held safety for the whole campaign"
  in
  Format.printf "monoculture %s; defended stack %s.@." (describe report_a) (describe report_b)
