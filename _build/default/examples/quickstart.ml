(* Quickstart: the resoc public API in ~40 lines.

   Builds a MinBFT group (2f+1 replicas anchored on USIG hybrids) on a
   simulated 4x4 mesh NoC, drives a small workload, crashes one tile
   mid-run, and prints what the clients observed.

   Run with: dune exec examples/quickstart.exe *)

module Engine = Resoc_des.Engine
module Behavior = Resoc_fault.Behavior
module Stats = Resoc_repl.Stats
module Soc = Resoc_core.Soc
module Group = Resoc_core.Group
module Generator = Resoc_workload.Generator

let () =
  (* 1. A SoC: engine + 4x4 mesh NoC + FPGA fabric grid. *)
  let soc = Soc.create Soc.default_config in
  let engine = Soc.engine soc in

  (* 2. A MinBFT group, f = 1 (3 replicas), with replica 2 crashing at
     cycle 60k — inside the fault budget, so nobody should notice. *)
  let behaviors = [| Behavior.honest; Behavior.honest; Behavior.crash_at 60_000 |] in
  let spec = { Group.default_spec with kind = `Minbft; f = 1; n_clients = 2;
               behaviors = Some behaviors } in
  let group = Group.build engine (Group.On_soc soc) spec in

  (* 3. A periodic workload: each client submits one request per 2k cycles. *)
  Generator.periodic engine ~period:2_000 ~until:120_000 ~n_clients:2
    ~submit:group.Group.submit ();

  (* 4. Run and report. *)
  Engine.run ~until:150_000 engine;
  let s = group.Group.stats () in
  Format.printf "protocol     %s (%d replicas, f=%d)@." group.Group.protocol
    group.Group.n_replicas group.Group.f;
  Format.printf "requests     %d submitted, %d completed@." s.Stats.submitted s.Stats.completed;
  Format.printf "latency      mean %.0f cycles, p99 %.0f cycles@."
    (Resoc_des.Metrics.Histogram.mean s.Stats.latency)
    (Resoc_des.Metrics.Histogram.percentile s.Stats.latency 99.0);
  Format.printf "noc traffic  %d messages, %d bytes@." (Soc.noc_messages soc) (Soc.noc_bytes soc);
  Format.printf "view changes %d (the crash was masked: %s)@." s.Stats.view_changes
    (if s.Stats.completed = s.Stats.submitted then "no client-visible loss" else "some loss");
  Format.printf "replica 0/1 agree: %b@."
    (Int64.equal (group.Group.replica_state ~replica:0) (group.Group.replica_state ~replica:1))
