(* Space: an orbital compute module under radiation.

   Single-event upsets flip register bits at a rate that depends on the
   orbit and shielding. The trusted USIG counters are the most critical
   state on the chip (SIII of the paper): this example bombards them and
   compares plain registers against SECDED-protected ones, then shows the
   packaged space scenario with staggered rejuvenation.

   Run with: dune exec examples/space.exe *)

module Engine = Resoc_des.Engine
module Rng = Resoc_des.Rng
module Register = Resoc_hw.Register
module Usig = Resoc_hybrid.Usig
module Seu = Resoc_fault.Seu
module Stats = Resoc_repl.Stats
module Minbft = Resoc_repl.Minbft
module Transport = Resoc_repl.Transport
module Resilient_system = Resoc_core.Resilient_system
module Scenario = Resoc_workload.Scenario
module Generator = Resoc_workload.Generator

let orbit_run ~protection ~seu_rate =
  let engine = Engine.create ~seed:2030L () in
  let config = { Minbft.default_config with f = 1; n_clients = 1; usig_protection = protection } in
  let n = Minbft.n_replicas config in
  let fabric = Transport.hub engine ~n:(n + 1) () in
  let sys = Minbft.start engine fabric config () in
  let registers = Array.init n (fun replica -> Usig.counter_register (Minbft.usig sys ~replica)) in
  let _ = Seu.start engine (Rng.create 9L) ~rate_per_bit_cycle:seu_rate registers in
  (* Background scrubbing: the standard companion of SECDED storage. *)
  Engine.every engine ~period:250 (fun () -> Array.iter Register.scrub registers);
  Generator.periodic engine ~period:2_000 ~until:250_000 ~n_clients:1
    ~submit:(fun ~client ~payload -> Minbft.submit sys ~client ~payload)
    ();
  Engine.run ~until:280_000 engine;
  (Minbft.stats sys, Minbft.usig_gap_drops sys)

let () =
  Format.printf "== Orbital payload under radiation ==@.@.";
  let seu_rate = 1.0e-6 in
  Format.printf "SEU rate: %.1e upsets/bit/cycle on the USIG counter registers@.@." seu_rate;
  List.iter
    (fun (label, protection) ->
      let s, gaps = orbit_run ~protection ~seu_rate in
      Format.printf "-- %-6s registers: completed %d/%d, view changes %d, counter gaps %d@." label
        s.Stats.completed s.Stats.submitted s.Stats.view_changes gaps)
    [ ("plain", Register.Plain); ("secded", Register.Secded) ];
  Format.printf
    "@.A plain counter silently desynchronizes under upsets (gaps, view-change@.\
     storms); SECDED corrects single flips in place — the SIII trade-off.@.@.";

  Format.printf "-- packaged scenario: SECDED hybrids + staggered rejuvenation --@.";
  let scenario = Scenario.space_radiation () in
  let sys = Resilient_system.create scenario.Scenario.config in
  let report =
    Resilient_system.run sys ~horizon:scenario.Scenario.horizon
      ~workload_period:scenario.Scenario.workload_period
  in
  Format.printf "%a@." Resilient_system.pp_report report
