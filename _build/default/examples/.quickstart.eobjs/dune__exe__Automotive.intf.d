examples/automotive.mli:
