examples/adaptive.ml: Array Format List Resoc_core Resoc_des Resoc_fault Resoc_hw Resoc_hybrid Resoc_repl Resoc_resilience
