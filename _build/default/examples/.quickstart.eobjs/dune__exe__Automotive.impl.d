examples/automotive.ml: Format Resoc_core Resoc_des Resoc_fault Resoc_repl Resoc_workload
