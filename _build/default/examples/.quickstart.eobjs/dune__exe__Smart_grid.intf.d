examples/smart_grid.mli:
