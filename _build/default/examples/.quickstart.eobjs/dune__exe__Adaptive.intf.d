examples/adaptive.mli:
