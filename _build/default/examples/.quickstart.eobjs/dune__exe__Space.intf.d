examples/space.mli:
