examples/smart_grid.ml: Format Printf Resoc_core Resoc_resilience Resoc_workload
