examples/quickstart.ml: Format Int64 Resoc_core Resoc_des Resoc_fault Resoc_repl Resoc_workload
