examples/quickstart.mli:
