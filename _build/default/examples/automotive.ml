(* Automotive: brake-by-wire ECU consolidation on an MPSoC.

   The paper's intro motivates cyber-physical control (automotive among
   them). A software-defined vehicle consolidates what used to be separate
   ECUs as replicated softcores on one chip. This example contrasts:

   - a single consolidated ECU (no replication) that dies mid-drive, and
   - the packaged automotive scenario: a MinBFT-replicated controller
     where the same tile failure is masked within the fault budget.

   Run with: dune exec examples/automotive.exe *)

module Engine = Resoc_des.Engine
module Behavior = Resoc_fault.Behavior
module Stats = Resoc_repl.Stats
module Group = Resoc_core.Group
module Resilient_system = Resoc_core.Resilient_system
module Scenario = Resoc_workload.Scenario
module Generator = Resoc_workload.Generator

let simplex_ecu () =
  (* One ECU, no backup: primary-backup with zero backups. *)
  let engine = Engine.create () in
  let spec =
    {
      Group.default_spec with
      kind = `Primary_backup;
      f = 0;
      n_clients = 2;
      behaviors = Some [| Behavior.crash_at 120_000 |];
    }
  in
  let group = Group.build engine (Group.Hub { latency = 5 }) spec in
  let offered = ref 0 in
  Generator.periodic engine ~period:1_000 ~until:280_000 ~n_clients:2
    ~submit:(fun ~client ~payload ->
      incr offered;
      group.Group.submit ~client ~payload)
    ();
  Engine.run ~until:300_000 engine;
  (group.Group.stats (), !offered)

let () =
  Format.printf "== Brake-by-wire on an MPSoC ==@.@.";
  Format.printf "-- configuration A: single consolidated ECU (crashes at 120k) --@.";
  let s, offered = simplex_ecu () in
  Format.printf "   completed %d of %d offered brake commands (availability %.2f):@."
    s.Stats.completed offered
    (float_of_int s.Stats.completed /. float_of_int (max 1 offered));
  Format.printf "   every command after the crash goes unacknowledged.@.@.";

  Format.printf "-- configuration B: MinBFT-consolidated ECU group (same crash) --@.";
  let scenario = Scenario.automotive_brake_by_wire () in
  Format.printf "   %s@." scenario.Scenario.description;
  let sys = Resilient_system.create scenario.Scenario.config in
  let report =
    Resilient_system.run sys ~horizon:scenario.Scenario.horizon
      ~workload_period:scenario.Scenario.workload_period
  in
  Format.printf "%a@.@." Resilient_system.pp_report report;
  Format.printf "The 2f+1 group rides through the ECU loss: availability %.3f,@."
    report.Resilient_system.availability;
  Format.printf "with the USIG hybrids keeping the replica count at 3 instead of 4.@."
