(* Cross-cutting coverage: pretty-printers, client mechanics, trace capture
   in the integrated system, and protocol switching over the NoC. *)

module Engine = Resoc_des.Engine
module Trace = Resoc_des.Trace
module Rng = Resoc_des.Rng
module Hash = Resoc_crypto.Hash
module Keychain = Resoc_crypto.Keychain
module Mac = Resoc_crypto.Mac
module Behavior = Resoc_fault.Behavior
module Trinc = Resoc_hybrid.Trinc
module Register = Resoc_hw.Register
open Resoc_repl
module Soc = Resoc_core.Soc
module Group = Resoc_core.Group
module Protocol_switch = Resoc_core.Protocol_switch
module Resilient_system = Resoc_core.Resilient_system
module Diversity = Resoc_resilience.Diversity
module Rejuvenation = Resoc_resilience.Rejuvenation

let fmt_to_string pp v = Format.asprintf "%a" pp v

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec scan i = i + m <= n && (String.sub s i m = affix || scan (i + 1)) in
  m = 0 || scan 0

(* --- pretty-printers --- *)

let test_pp_request_reply () =
  let r = Types.make_request ~client:4 ~rid:7 ~payload:9L in
  Alcotest.(check string) "request" "req(c4#7:9)" (fmt_to_string Types.pp_request r);
  let reply = { Types.client = 4; rid = 7; result = 9L; replica = 2 } in
  Alcotest.(check string) "reply" "reply(c4#7=9 from r2)" (fmt_to_string Types.pp_reply reply)

let test_pp_behavior () =
  Alcotest.(check string) "honest" "honest" (fmt_to_string Behavior.pp Behavior.honest);
  Alcotest.(check string) "crash" "crash@5" (fmt_to_string Behavior.pp (Behavior.crash_at 5));
  Alcotest.(check string) "byz" "byzantine(delay(3))@9"
    (fmt_to_string Behavior.pp (Behavior.byzantine ~from_cycle:9 (Behavior.Delay 3)))

let test_pp_hash () =
  Alcotest.(check int) "hex width" 16 (String.length (fmt_to_string Hash.pp (Hash.of_string "x")))

let test_pp_stats () =
  let s = Stats.create () in
  s.Stats.submitted <- 3;
  s.Stats.completed <- 2;
  let text = fmt_to_string Stats.pp s in
  Alcotest.(check bool) "mentions submitted" true (contains ~affix:"submitted=3" text)

(* --- client mechanics --- *)

let test_client_queueing_and_shutdown () =
  let engine = Engine.create () in
  let fabric = Transport.hub engine ~n:2 () in
  let stats = Stats.create () in
  (* Replica 0 echoes every request back as a reply. *)
  fabric.Transport.set_handler 0 (fun ~src msg ->
      match msg with
      | `Request (r : Types.request) ->
        fabric.Transport.send ~src:0 ~dst:src
          (`Reply { Types.client = r.Types.client; rid = r.Types.rid; result = r.Types.payload; replica = 0 })
      | `Reply _ -> ());
  let client =
    Client.create engine fabric ~id:1 ~n_replicas:1 ~quorum:1 ~retry_timeout:1_000 ~stats
      ~to_msg:(fun r -> `Request r)
      ~of_msg:(function `Reply r -> Some r | `Request _ -> None)
      ()
  in
  Client.submit client ~payload:1L;
  Client.submit client ~payload:2L;
  Client.submit client ~payload:3L;
  Alcotest.(check bool) "outstanding" true (Client.outstanding client);
  Alcotest.(check int) "two queued" 2 (Client.queued client);
  Engine.run engine;
  Alcotest.(check int) "all served in order" 3 stats.Stats.completed;
  Client.shutdown client;
  Client.submit client ~payload:4L;
  Engine.run engine;
  Alcotest.(check int) "shutdown blocks new work" 3 stats.Stats.completed

let test_client_retransmits_until_served () =
  let engine = Engine.create () in
  let fabric = Transport.hub engine ~n:2 () in
  let stats = Stats.create () in
  let seen = ref 0 in
  (* The replica ignores the first two copies. *)
  fabric.Transport.set_handler 0 (fun ~src msg ->
      match msg with
      | `Request (r : Types.request) ->
        incr seen;
        if !seen >= 3 then
          fabric.Transport.send ~src:0 ~dst:src
            (`Reply { Types.client = r.Types.client; rid = r.Types.rid; result = 0L; replica = 0 })
      | `Reply _ -> ());
  let client =
    Client.create engine fabric ~id:1 ~n_replicas:1 ~quorum:1 ~retry_timeout:500 ~stats
      ~to_msg:(fun r -> `Request r)
      ~of_msg:(function `Reply r -> Some r | `Request _ -> None)
      ()
  in
  Client.submit client ~payload:1L;
  Engine.run ~until:10_000 engine;
  Alcotest.(check int) "completed after retries" 1 stats.Stats.completed;
  Alcotest.(check int) "two retransmissions" 2 stats.Stats.retransmissions

(* --- trinc fail-stop accounting --- *)

let test_trinc_register_fault_detected () =
  let tr = Trinc.create ~id:0 ~key:(Mac.key_of_int64 1L) ~protection:Register.Secded in
  Register.inject_upset_at (Trinc.counter_register tr) 3;
  Register.inject_upset_at (Trinc.counter_register tr) 9;
  (match Trinc.attest tr ~new_counter:1L ~digest:(Hash.of_string "x") with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "double flip must be detected");
  Alcotest.(check int) "counted" 1 (Trinc.faults_detected tr)

(* --- resilient system trace --- *)

let test_resilient_system_trace_captures_events () =
  let config =
    {
      Resilient_system.default_config with
      group = { Group.default_spec with n_clients = 1 };
      apt =
        Some
          {
            Resilient_system.mean_exploit_cycles = 20_000.0;
            exposure = 2_000;
            backdoor_delay = 1_000_000;
            detection_prob = 0.0;
            detection_delay = 1_000;
          };
      rejuvenation = Some { Rejuvenation.period = 30_000; downtime = 500 };
      diversity = Diversity.Max_diversity;
    }
  in
  let sys = Resilient_system.create config in
  ignore (Resilient_system.run sys ~horizon:200_000 ~workload_period:5_000);
  let entries = Trace.entries (Resilient_system.trace sys) in
  let has component = List.exists (fun e -> e.Trace.component = component) entries in
  Alcotest.(check bool) "rejuvenation events" true (has "rejuvenation");
  Alcotest.(check bool) "apt events" true (has "apt")

(* --- protocol switch over the NoC --- *)

let test_protocol_switch_on_soc () =
  let soc = Soc.create { Soc.default_config with mesh_width = 4; mesh_height = 4 } in
  let engine = Soc.engine soc in
  let spec = { Group.default_spec with kind = `Minbft; n_clients = 1 } in
  let sw = Protocol_switch.create engine (Group.On_soc soc) spec in
  for i = 1 to 3 do
    Protocol_switch.submit sw ~client:0 ~payload:(Int64.of_int i)
  done;
  Engine.run ~until:60_000 engine;
  Protocol_switch.switch sw { spec with Group.kind = `Pbft } ~downtime:2_000;
  Engine.run ~until:80_000 engine;
  for i = 4 to 6 do
    Protocol_switch.submit sw ~client:0 ~payload:(Int64.of_int i)
  done;
  Engine.run ~until:400_000 engine;
  Alcotest.(check int) "epochs over the mesh" 1 (Protocol_switch.epoch sw);
  Alcotest.(check int) "all served across the switch" 6 (Protocol_switch.total_completed sw);
  Alcotest.(check int64) "state carried over the mesh" 21L
    ((Protocol_switch.group sw).Group.replica_state ~replica:0)

(* --- engine odds and ends --- *)

let test_engine_pending_counts () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:5 (fun () -> ()));
  ignore (Engine.schedule e ~delay:6 (fun () -> ()));
  Alcotest.(check int) "pending" 2 (Engine.pending e);
  Alcotest.(check bool) "step consumes" true (Engine.step e);
  Alcotest.(check int) "one left" 1 (Engine.pending e)

let test_trace_dump_smoke () =
  let t = Trace.create () in
  Trace.emit t ~time:5 Trace.Info ~component:"x" (fun () -> "hello");
  let text = Format.asprintf "%t" (Trace.dump t) in
  Alcotest.(check bool) "mentions component" true (contains ~affix:"hello" text)

let () =
  Alcotest.run "resoc_misc"
    [
      ( "pretty-printing",
        [
          Alcotest.test_case "request/reply" `Quick test_pp_request_reply;
          Alcotest.test_case "behavior" `Quick test_pp_behavior;
          Alcotest.test_case "hash" `Quick test_pp_hash;
          Alcotest.test_case "stats" `Quick test_pp_stats;
        ] );
      ( "client",
        [
          Alcotest.test_case "queueing and shutdown" `Quick test_client_queueing_and_shutdown;
          Alcotest.test_case "retransmits until served" `Quick test_client_retransmits_until_served;
        ] );
      ( "hybrids",
        [ Alcotest.test_case "trinc register fault" `Quick test_trinc_register_fault_detected ] );
      ( "integration",
        [
          Alcotest.test_case "resilient system trace" `Quick test_resilient_system_trace_captures_events;
          Alcotest.test_case "protocol switch on soc" `Quick test_protocol_switch_on_soc;
        ] );
      ( "engine",
        [
          Alcotest.test_case "pending counts" `Quick test_engine_pending_counts;
          Alcotest.test_case "trace dump" `Quick test_trace_dump_smoke;
        ] );
    ]
