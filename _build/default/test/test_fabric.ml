open Resoc_fabric
module Engine = Resoc_des.Engine

(* --- Region --- *)

let test_region_make_validates () =
  Alcotest.check_raises "zero width" (Invalid_argument "Region.make: non-positive dimensions")
    (fun () -> ignore (Region.make ~x:0 ~y:0 ~w:0 ~h:1));
  Alcotest.check_raises "negative origin" (Invalid_argument "Region.make: negative origin")
    (fun () -> ignore (Region.make ~x:(-1) ~y:0 ~w:1 ~h:1))

let test_region_area_frames () =
  let r = Region.make ~x:1 ~y:2 ~w:3 ~h:2 in
  Alcotest.(check int) "area" 6 (Region.area r);
  Alcotest.(check int) "frames count" 6 (List.length (Region.frames r));
  Alcotest.(check bool) "contains" true (Region.contains r ~x:3 ~y:3);
  Alcotest.(check bool) "not contains" false (Region.contains r ~x:4 ~y:3)

let test_region_overlap () =
  let a = Region.make ~x:0 ~y:0 ~w:2 ~h:2 in
  let b = Region.make ~x:1 ~y:1 ~w:2 ~h:2 in
  let c = Region.make ~x:2 ~y:0 ~w:2 ~h:2 in
  Alcotest.(check bool) "a/b overlap" true (Region.overlaps a b);
  Alcotest.(check bool) "a/c disjoint" false (Region.overlaps a c);
  Alcotest.(check bool) "self overlap" true (Region.overlaps a a)

let test_region_relocate_origin () =
  let r = Region.make ~x:0 ~y:0 ~w:2 ~h:3 in
  let r' = Region.with_origin r ~x:5 ~y:1 in
  Alcotest.(check int) "same area" (Region.area r) (Region.area r');
  Alcotest.(check bool) "moved" false (Region.equal r r')

(* --- Bitstream --- *)

let test_bitstream_valid () =
  let b = Bitstream.make ~variant:3 ~w:2 ~h:2 in
  Alcotest.(check bool) "checksum ok" true (Bitstream.checksum_ok b);
  Alcotest.(check int) "variant" 3 (Bitstream.variant b)

let test_bitstream_corrupt_detected () =
  let b = Bitstream.corrupt (Bitstream.make ~variant:3 ~w:2 ~h:2) in
  Alcotest.(check bool) "corruption detected" false (Bitstream.checksum_ok b)

let test_bitstream_forge_detected () =
  let b = Bitstream.forge (Bitstream.make ~variant:3 ~w:2 ~h:2) ~variant:7 in
  Alcotest.(check bool) "forgery detected" false (Bitstream.checksum_ok b)

let test_bitstream_matches_region () =
  let b = Bitstream.make ~variant:0 ~w:2 ~h:3 in
  Alcotest.(check bool) "matching" true (Bitstream.matches_region b (Region.make ~x:0 ~y:0 ~w:2 ~h:3));
  Alcotest.(check bool) "mismatched" false (Bitstream.matches_region b (Region.make ~x:0 ~y:0 ~w:3 ~h:2))

let test_bitstream_size_scales () =
  let small = Bitstream.make ~variant:0 ~w:1 ~h:1 in
  let big = Bitstream.make ~variant:0 ~w:4 ~h:4 in
  Alcotest.(check int) "16x area = 16x bytes" (16 * Bitstream.size_bytes small) (Bitstream.size_bytes big)

(* --- Grid --- *)

let test_grid_place_release () =
  let g = Grid.create ~width:8 ~height:8 in
  (match Grid.place g ~region:(Region.make ~x:0 ~y:0 ~w:2 ~h:2) ~variant:1 ~owner:0 with
   | Error e -> Alcotest.failf "place failed: %s" e
   | Ok id ->
     Alcotest.(check int) "free area" (64 - 4) (Grid.free_area g);
     (match Grid.slot g id with
      | Some s -> Alcotest.(check int) "variant" 1 s.Grid.variant
      | None -> Alcotest.fail "slot missing");
     Grid.release g id;
     Alcotest.(check int) "freed" 64 (Grid.free_area g);
     Alcotest.(check bool) "slot gone" true (Grid.slot g id = None))

let test_grid_overlap_rejected () =
  let g = Grid.create ~width:4 ~height:4 in
  (match Grid.place g ~region:(Region.make ~x:0 ~y:0 ~w:2 ~h:2) ~variant:0 ~owner:0 with
   | Error e -> Alcotest.failf "first place failed: %s" e
   | Ok _ -> ());
  match Grid.place g ~region:(Region.make ~x:1 ~y:1 ~w:2 ~h:2) ~variant:0 ~owner:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overlap should be rejected"

let test_grid_out_of_bounds_rejected () =
  let g = Grid.create ~width:4 ~height:4 in
  match Grid.place g ~region:(Region.make ~x:3 ~y:3 ~w:2 ~h:2) ~variant:0 ~owner:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-grid should be rejected"

let test_grid_find_placement () =
  let g = Grid.create ~width:4 ~height:2 in
  ignore (Grid.place g ~region:(Region.make ~x:0 ~y:0 ~w:2 ~h:2) ~variant:0 ~owner:0);
  (match Grid.find_placement g ~w:2 ~h:2 () with
   | Some r -> Alcotest.(check bool) "found free spot" true (r.Region.x = 2)
   | None -> Alcotest.fail "expected placement");
  ignore (Grid.place g ~region:(Region.make ~x:2 ~y:0 ~w:2 ~h:2) ~variant:0 ~owner:0);
  Alcotest.(check bool) "full grid" true (Grid.find_placement g ~w:2 ~h:2 () = None)

let test_grid_trojan_avoidance () =
  let g = Grid.create ~width:4 ~height:1 in
  Grid.mark_trojaned g ~x:0 ~y:0;
  (match Grid.find_placement g ~w:2 ~h:1 ~avoid_trojaned:true () with
   | Some r -> Alcotest.(check int) "skips trojaned frame" 1 r.Region.x
   | None -> Alcotest.fail "expected placement");
  match Grid.find_placement g ~w:2 ~h:1 () with
  | Some r -> Alcotest.(check int) "without avoidance takes origin" 0 r.Region.x
  | None -> Alcotest.fail "expected placement"

let test_grid_slot_on_trojaned () =
  let g = Grid.create ~width:4 ~height:1 in
  Grid.mark_trojaned g ~x:1 ~y:0;
  match Grid.place g ~region:(Region.make ~x:0 ~y:0 ~w:2 ~h:1) ~variant:0 ~owner:0 with
  | Error e -> Alcotest.failf "place failed: %s" e
  | Ok id -> Alcotest.(check bool) "backdoored slot" true (Grid.slot_on_trojaned_frame g id)

let test_grid_relocate_escapes_trojan () =
  let g = Grid.create ~width:6 ~height:1 in
  Grid.mark_trojaned g ~x:1 ~y:0;
  match Grid.place g ~region:(Region.make ~x:0 ~y:0 ~w:2 ~h:1) ~variant:0 ~owner:0 with
  | Error e -> Alcotest.failf "place failed: %s" e
  | Ok id ->
    (match Grid.relocate g id ~avoid_trojaned:true () with
     | Error e -> Alcotest.failf "relocate failed: %s" e
     | Ok _ ->
       Alcotest.(check bool) "clean after relocation" false (Grid.slot_on_trojaned_frame g id);
       Alcotest.(check int) "area conserved" (6 - 2) (Grid.free_area g))

let test_grid_relocate_no_room () =
  let g = Grid.create ~width:2 ~height:1 in
  Grid.mark_trojaned g ~x:0 ~y:0;
  match Grid.place g ~region:(Region.make ~x:0 ~y:0 ~w:2 ~h:1) ~variant:0 ~owner:0 with
  | Error e -> Alcotest.failf "place failed: %s" e
  | Ok id ->
    (match Grid.relocate g id ~avoid_trojaned:true () with
     | Error _ ->
       (* Original placement must be restored intact. *)
       Alcotest.(check int) "restored" 0 (Grid.free_area g);
       Alcotest.(check bool) "slot still there" true (Grid.slot g id <> None)
     | Ok _ -> Alcotest.fail "no clean placement exists")

let test_grid_set_variant () =
  let g = Grid.create ~width:2 ~height:2 in
  match Grid.place g ~region:(Region.make ~x:0 ~y:0 ~w:1 ~h:1) ~variant:1 ~owner:0 with
  | Error e -> Alcotest.failf "place failed: %s" e
  | Ok id ->
    Grid.set_variant g id 5;
    (match Grid.slot g id with
     | Some s -> Alcotest.(check int) "updated" 5 s.Grid.variant
     | None -> Alcotest.fail "slot missing")

let test_grid_occupancy () =
  let g = Grid.create ~width:4 ~height:4 in
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Grid.occupancy g);
  ignore (Grid.place g ~region:(Region.make ~x:0 ~y:0 ~w:4 ~h:2) ~variant:0 ~owner:0);
  Alcotest.(check (float 1e-9)) "half" 0.5 (Grid.occupancy g)

(* --- Icap --- *)

let make_icap ?(w = 8) ?(h = 8) () =
  let engine = Engine.create () in
  let grid = Grid.create ~width:w ~height:h in
  let icap = Icap.create engine grid () in
  (engine, icap)

let whole_grid = Region.make ~x:0 ~y:0 ~w:8 ~h:8

let test_icap_denies_without_grant () =
  let engine, icap = make_icap () in
  let result = ref None in
  Icap.configure icap ~principal:1 ~region:(Region.make ~x:0 ~y:0 ~w:2 ~h:2)
    ~bitstream:(Bitstream.make ~variant:0 ~w:2 ~h:2)
    (fun r -> result := Some r);
  Engine.run engine;
  Alcotest.(check bool) "denied" true (!result = Some Icap.Denied);
  Alcotest.(check int) "counted" 1 (Icap.rejected icap)

let test_icap_grant_allows () =
  let engine, icap = make_icap () in
  Icap.grant icap ~principal:1 ~region:whole_grid;
  let result = ref None in
  Icap.configure icap ~principal:1 ~region:(Region.make ~x:0 ~y:0 ~w:2 ~h:2)
    ~bitstream:(Bitstream.make ~variant:4 ~w:2 ~h:2)
    (fun r -> result := Some r);
  Engine.run engine;
  (match !result with
   | Some (Icap.Configured id) ->
     (match Grid.slot (Icap.grid icap) id with
      | Some s -> Alcotest.(check int) "variant configured" 4 s.Grid.variant
      | None -> Alcotest.fail "slot missing")
   | _ -> Alcotest.fail "expected Configured");
  Alcotest.(check int) "completed" 1 (Icap.completed icap)

let test_icap_scoped_grant () =
  let engine, icap = make_icap () in
  Icap.grant icap ~principal:1 ~region:(Region.make ~x:0 ~y:0 ~w:4 ~h:4);
  let inside = ref None and outside = ref None in
  Icap.configure icap ~principal:1 ~region:(Region.make ~x:2 ~y:2 ~w:2 ~h:2)
    ~bitstream:(Bitstream.make ~variant:0 ~w:2 ~h:2)
    (fun r -> inside := Some r);
  Icap.configure icap ~principal:1 ~region:(Region.make ~x:4 ~y:4 ~w:2 ~h:2)
    ~bitstream:(Bitstream.make ~variant:0 ~w:2 ~h:2)
    (fun r -> outside := Some r);
  Engine.run engine;
  (match !inside with
   | Some (Icap.Configured _) -> ()
   | _ -> Alcotest.fail "in-scope should configure");
  Alcotest.(check bool) "out-of-scope denied" true (!outside = Some Icap.Denied)

let test_icap_rejects_corrupt_bitstream () =
  let engine, icap = make_icap () in
  Icap.grant icap ~principal:1 ~region:whole_grid;
  let result = ref None in
  Icap.configure icap ~principal:1 ~region:(Region.make ~x:0 ~y:0 ~w:2 ~h:2)
    ~bitstream:(Bitstream.corrupt (Bitstream.make ~variant:0 ~w:2 ~h:2))
    (fun r -> result := Some r);
  Engine.run engine;
  Alcotest.(check bool) "invalid" true (!result = Some Icap.Invalid_bitstream)

let test_icap_rejects_shape_mismatch () =
  let engine, icap = make_icap () in
  Icap.grant icap ~principal:1 ~region:whole_grid;
  let result = ref None in
  Icap.configure icap ~principal:1 ~region:(Region.make ~x:0 ~y:0 ~w:2 ~h:2)
    ~bitstream:(Bitstream.make ~variant:0 ~w:3 ~h:2)
    (fun r -> result := Some r);
  Engine.run engine;
  Alcotest.(check bool) "shape mismatch" true (!result = Some Icap.Shape_mismatch)

let test_icap_timing_proportional () =
  let engine, icap = make_icap () in
  Icap.grant icap ~principal:1 ~region:whole_grid;
  let t_small = ref 0 and t_big = ref 0 in
  Icap.configure icap ~principal:1 ~region:(Region.make ~x:0 ~y:0 ~w:1 ~h:1)
    ~bitstream:(Bitstream.make ~variant:0 ~w:1 ~h:1)
    (fun _ -> t_small := Engine.now engine);
  Engine.run engine;
  let start_big = Engine.now engine in
  Icap.configure icap ~principal:1 ~region:(Region.make ~x:4 ~y:0 ~w:2 ~h:2)
    ~bitstream:(Bitstream.make ~variant:0 ~w:2 ~h:2)
    (fun _ -> t_big := Engine.now engine);
  Engine.run engine;
  Alcotest.(check bool) "4x frames take 4x cycles" true (!t_big - start_big = 4 * !t_small)

let test_icap_serializes_requests () =
  let engine, icap = make_icap () in
  Icap.grant icap ~principal:1 ~region:whole_grid;
  let done_times = ref [] in
  for i = 0 to 1 do
    Icap.configure icap ~principal:1 ~region:(Region.make ~x:(i * 2) ~y:0 ~w:1 ~h:1)
      ~bitstream:(Bitstream.make ~variant:0 ~w:1 ~h:1)
      (fun _ -> done_times := Engine.now engine :: !done_times)
  done;
  Engine.run engine;
  match List.sort compare !done_times with
  | [ t1; t2 ] -> Alcotest.(check int) "second waits for first" (2 * t1) t2
  | _ -> Alcotest.fail "expected two completions"

let test_icap_reconfigure_in_place () =
  let engine, icap = make_icap () in
  Icap.grant icap ~principal:1 ~region:whole_grid;
  let slot = ref None in
  Icap.configure icap ~principal:1 ~region:(Region.make ~x:0 ~y:0 ~w:2 ~h:2)
    ~bitstream:(Bitstream.make ~variant:1 ~w:2 ~h:2)
    (function Icap.Configured id -> slot := Some id | _ -> Alcotest.fail "configure failed");
  Engine.run engine;
  let id = match !slot with Some id -> id | None -> Alcotest.fail "no slot" in
  let new_slot = ref None in
  Icap.reconfigure icap ~principal:1 ~slot:id
    ~bitstream:(Bitstream.make ~variant:2 ~w:2 ~h:2)
    (function Icap.Configured id -> new_slot := Some id | _ -> Alcotest.fail "reconfigure failed");
  Engine.run engine;
  (match !new_slot with
   | Some id' ->
     (match Grid.slot (Icap.grid icap) id' with
      | Some s ->
        Alcotest.(check int) "new variant" 2 s.Grid.variant;
        Alcotest.(check bool) "same region" true
          (Region.equal s.Grid.region (Region.make ~x:0 ~y:0 ~w:2 ~h:2))
      | None -> Alcotest.fail "slot missing")
   | None -> Alcotest.fail "no new slot")

let test_icap_revoke () =
  let engine, icap = make_icap () in
  Icap.grant icap ~principal:1 ~region:whole_grid;
  Icap.revoke icap ~principal:1;
  let result = ref None in
  Icap.configure icap ~principal:1 ~region:(Region.make ~x:0 ~y:0 ~w:1 ~h:1)
    ~bitstream:(Bitstream.make ~variant:0 ~w:1 ~h:1)
    (fun r -> result := Some r);
  Engine.run engine;
  Alcotest.(check bool) "revoked => denied" true (!result = Some Icap.Denied)

let () =
  Alcotest.run "resoc_fabric"
    [
      ( "region",
        [
          Alcotest.test_case "validation" `Quick test_region_make_validates;
          Alcotest.test_case "area and frames" `Quick test_region_area_frames;
          Alcotest.test_case "overlap" `Quick test_region_overlap;
          Alcotest.test_case "relocate origin" `Quick test_region_relocate_origin;
        ] );
      ( "bitstream",
        [
          Alcotest.test_case "valid" `Quick test_bitstream_valid;
          Alcotest.test_case "corrupt detected" `Quick test_bitstream_corrupt_detected;
          Alcotest.test_case "forge detected" `Quick test_bitstream_forge_detected;
          Alcotest.test_case "matches region" `Quick test_bitstream_matches_region;
          Alcotest.test_case "size scales" `Quick test_bitstream_size_scales;
        ] );
      ( "grid",
        [
          Alcotest.test_case "place and release" `Quick test_grid_place_release;
          Alcotest.test_case "overlap rejected" `Quick test_grid_overlap_rejected;
          Alcotest.test_case "out of bounds rejected" `Quick test_grid_out_of_bounds_rejected;
          Alcotest.test_case "find placement" `Quick test_grid_find_placement;
          Alcotest.test_case "trojan avoidance" `Quick test_grid_trojan_avoidance;
          Alcotest.test_case "slot on trojaned frame" `Quick test_grid_slot_on_trojaned;
          Alcotest.test_case "relocation escapes trojan" `Quick test_grid_relocate_escapes_trojan;
          Alcotest.test_case "relocation restores on failure" `Quick test_grid_relocate_no_room;
          Alcotest.test_case "set variant" `Quick test_grid_set_variant;
          Alcotest.test_case "occupancy" `Quick test_grid_occupancy;
        ] );
      ( "icap",
        [
          Alcotest.test_case "denies without grant" `Quick test_icap_denies_without_grant;
          Alcotest.test_case "grant allows" `Quick test_icap_grant_allows;
          Alcotest.test_case "scoped grant" `Quick test_icap_scoped_grant;
          Alcotest.test_case "rejects corrupt bitstream" `Quick test_icap_rejects_corrupt_bitstream;
          Alcotest.test_case "rejects shape mismatch" `Quick test_icap_rejects_shape_mismatch;
          Alcotest.test_case "timing proportional" `Quick test_icap_timing_proportional;
          Alcotest.test_case "serializes requests" `Quick test_icap_serializes_requests;
          Alcotest.test_case "reconfigure in place" `Quick test_icap_reconfigure_in_place;
          Alcotest.test_case "revoke" `Quick test_icap_revoke;
        ] );
    ]
