(* CheapBFT: f+1 active replicas + f passive ones on TrInc attestations,
   with transition to the full group on suspicion. *)

open Resoc_repl
module Engine = Resoc_des.Engine
module Behavior = Resoc_fault.Behavior
module Trinc = Resoc_hybrid.Trinc

let horizon = 300_000

let setup ?(f = 1) ?(n_clients = 1) ?behaviors () =
  let engine = Engine.create () in
  let config = { Cheapbft.default_config with f; n_clients } in
  let n = Cheapbft.n_replicas config in
  let fabric = Transport.hub engine ~n:(n + n_clients) () in
  let sys = Cheapbft.start engine fabric config ?behaviors () in
  (engine, sys, fabric, n)

let submit_series sys ~count =
  for i = 1 to count do
    Cheapbft.submit sys ~client:0 ~payload:(Int64.of_int i)
  done

let sum_1_to n = Int64.of_int (n * (n + 1) / 2)

let test_sizes () =
  let config = { Cheapbft.default_config with f = 2 } in
  Alcotest.(check int) "2f+1 total" 5 (Cheapbft.n_replicas config);
  Alcotest.(check int) "f+1 active" 3 (Cheapbft.n_active_initial config)

let test_happy_path_stays_cheap () =
  let engine, sys, _, _ = setup () in
  submit_series sys ~count:5;
  Engine.run ~until:horizon engine;
  let s = Cheapbft.stats sys in
  Alcotest.(check int) "completed" 5 s.Stats.completed;
  Alcotest.(check bool) "no transition in the fault-free case" false (Cheapbft.transitioned sys);
  Alcotest.(check bool) "replica 2 stayed passive" false (Cheapbft.active sys ~replica:2);
  (* actives agree on the executed state *)
  Alcotest.(check int64) "actives agree" (Cheapbft.replica_state sys ~replica:0)
    (Cheapbft.replica_state sys ~replica:1);
  Alcotest.(check int64) "value" (sum_1_to 5) (Cheapbft.replica_state sys ~replica:0)

let test_passive_receives_updates () =
  let engine, sys, _, _ = setup () in
  submit_series sys ~count:5;
  Engine.run ~until:horizon engine;
  (* The passive replica converges through shipped updates, without
     executing the requests itself. *)
  Alcotest.(check int64) "passive synced" (sum_1_to 5) (Cheapbft.replica_state sys ~replica:2)

let test_cheaper_than_minbft_fault_free () =
  let run_cheap () =
    let engine, sys, fabric, _ = setup () in
    submit_series sys ~count:10;
    Engine.run ~until:horizon engine;
    ((Cheapbft.stats sys).Stats.completed, fabric.Transport.messages_sent ())
  in
  let run_minbft () =
    let engine = Engine.create () in
    let config = { Minbft.default_config with f = 1; n_clients = 1 } in
    let fabric = Transport.hub engine ~n:4 () in
    let sys = Minbft.start engine fabric config () in
    for i = 1 to 10 do
      Minbft.submit sys ~client:0 ~payload:(Int64.of_int i)
    done;
    Engine.run ~until:horizon engine;
    ((Minbft.stats sys).Stats.completed, fabric.Transport.messages_sent ())
  in
  let cheap_done, cheap_msgs = run_cheap () in
  let min_done, min_msgs = run_minbft () in
  Alcotest.(check int) "cheap completed" 10 cheap_done;
  Alcotest.(check int) "minbft completed" 10 min_done;
  Alcotest.(check bool)
    (Printf.sprintf "cheapbft %d < minbft %d messages" cheap_msgs min_msgs)
    true (cheap_msgs < min_msgs)

let test_active_crash_triggers_transition () =
  (* Losing an active replica stalls the all-active quorum: the group
     transitions, activating the passive replica, and finishes the work. *)
  let behaviors = [| Behavior.honest; Behavior.crash_at 10_000; Behavior.honest |] in
  let engine, sys, _, _ = setup ~behaviors () in
  submit_series sys ~count:3;
  ignore (Engine.schedule engine ~delay:20_000 (fun () -> submit_series sys ~count:3));
  Engine.run ~until:horizon engine;
  let s = Cheapbft.stats sys in
  Alcotest.(check int) "all eventually served" 6 s.Stats.completed;
  Alcotest.(check bool) "transitioned" true (Cheapbft.transitioned sys);
  Alcotest.(check bool) "passive activated" true (Cheapbft.active sys ~replica:2);
  Alcotest.(check int64) "survivors agree" (Cheapbft.replica_state sys ~replica:0)
    (Cheapbft.replica_state sys ~replica:2)

let test_primary_crash_recovers () =
  let behaviors = [| Behavior.crash_at 10; Behavior.honest; Behavior.honest |] in
  let engine, sys, _, _ = setup ~behaviors () in
  submit_series sys ~count:5;
  Engine.run ~until:horizon engine;
  let s = Cheapbft.stats sys in
  Alcotest.(check int) "completed" 5 s.Stats.completed;
  Alcotest.(check bool) "transitioned" true (Cheapbft.transitioned sys);
  Alcotest.(check bool) "view rotated" true (Cheapbft.view sys ~replica:1 >= 1)

let test_trinc_attestations_issued () =
  let engine, sys, _, _ = setup () in
  submit_series sys ~count:4;
  Engine.run ~until:horizon engine;
  Alcotest.(check bool) "primary attested each request" true
    (Trinc.attestations_issued (Cheapbft.trinc sys ~replica:0) >= 4);
  Alcotest.(check bool) "active backup attested commits" true
    (Trinc.attestations_issued (Cheapbft.trinc sys ~replica:1) >= 4);
  Alcotest.(check int) "passive attested nothing" 0
    (Trinc.attestations_issued (Cheapbft.trinc sys ~replica:2))

let test_corrupt_active_filtered () =
  let behaviors =
    [| Behavior.honest; Behavior.byzantine Behavior.Corrupt_execution; Behavior.honest |]
  in
  let engine, sys, _, _ = setup ~behaviors () in
  submit_series sys ~count:3;
  Engine.run ~until:horizon engine;
  let s = Cheapbft.stats sys in
  (* The corrupt active's replies never match the honest one, so the f+1
     quorum cannot form from {honest, corrupt}. The passive replica —
     kept current by the attested updates — answers the retransmission from
     its reply cache and completes the quorum WITHOUT a transition: the
     update channel doubles as a cheap tie-breaker. *)
  Alcotest.(check int) "eventually completed" 3 s.Stats.completed;
  Alcotest.(check bool) "dissent recorded" true (s.Stats.wrong_replies >= 1);
  Alcotest.(check bool) "retransmissions forced" true (s.Stats.retransmissions >= 1);
  Alcotest.(check bool) "passive cache resolved it without transition" true
    (not (Cheapbft.transitioned sys))

let test_f2_configuration () =
  let behaviors = Array.make 5 Behavior.honest in
  behaviors.(1) <- Behavior.crash_at 5_000;
  behaviors.(3) <- Behavior.crash_at 0;  (* one passive dead from the start *)
  let engine, sys, _, _ = setup ~f:2 ~behaviors () in
  submit_series sys ~count:4;
  ignore (Engine.schedule engine ~delay:20_000 (fun () -> submit_series sys ~count:2));
  Engine.run ~until:horizon engine;
  let s = Cheapbft.stats sys in
  Alcotest.(check int) "completed with 2 crashes (f=2)" 6 s.Stats.completed

let () =
  Alcotest.run "resoc_cheapbft"
    [
      ( "cheapbft",
        [
          Alcotest.test_case "sizes" `Quick test_sizes;
          Alcotest.test_case "happy path stays cheap" `Quick test_happy_path_stays_cheap;
          Alcotest.test_case "passive receives updates" `Quick test_passive_receives_updates;
          Alcotest.test_case "cheaper than minbft fault-free" `Quick test_cheaper_than_minbft_fault_free;
          Alcotest.test_case "active crash triggers transition" `Quick
            test_active_crash_triggers_transition;
          Alcotest.test_case "primary crash recovers" `Quick test_primary_crash_recovers;
          Alcotest.test_case "trinc attestations issued" `Quick test_trinc_attestations_issued;
          Alcotest.test_case "corrupt active filtered" `Quick test_corrupt_active_filtered;
          Alcotest.test_case "f=2 configuration" `Quick test_f2_configuration;
        ] );
    ]
