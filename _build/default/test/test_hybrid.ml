open Resoc_hybrid
module Hash = Resoc_crypto.Hash
module Mac = Resoc_crypto.Mac
module Keychain = Resoc_crypto.Keychain
module Register = Resoc_hw.Register
module Rng = Resoc_des.Rng

let key = Mac.key_of_int64 4242L

(* --- Usig --- *)

let make_usig ?(protection = Register.Secded) () = Usig.create ~id:3 ~key ~protection

let test_usig_counter_monotonic () =
  let u = make_usig () in
  let d = Hash.of_string "m" in
  let counters =
    List.init 5 (fun _ ->
        match Usig.create_ui u d with
        | Ok ui -> ui.Usig.counter
        | Error e -> Alcotest.failf "create_ui failed: %s" e)
  in
  Alcotest.(check (list int64)) "1..5" [ 1L; 2L; 3L; 4L; 5L ] counters;
  Alcotest.(check int) "issued" 5 (Usig.uis_issued u)

let test_usig_verify_ok () =
  let u = make_usig () in
  let d = Hash.of_string "msg" in
  match Usig.create_ui u d with
  | Ok ui -> Alcotest.(check bool) "verifies" true (Usig.verify_ui ~key ~digest:d ui)
  | Error e -> Alcotest.failf "create_ui failed: %s" e

let test_usig_verify_rejects_wrong_digest () =
  let u = make_usig () in
  match Usig.create_ui u (Hash.of_string "a") with
  | Ok ui ->
    Alcotest.(check bool) "wrong digest" false (Usig.verify_ui ~key ~digest:(Hash.of_string "b") ui)
  | Error e -> Alcotest.failf "create_ui failed: %s" e

let test_usig_verify_rejects_wrong_key () =
  let u = make_usig () in
  let d = Hash.of_string "a" in
  match Usig.create_ui u d with
  | Ok ui ->
    Alcotest.(check bool) "wrong key" false
      (Usig.verify_ui ~key:(Mac.key_of_int64 1L) ~digest:d ui)
  | Error e -> Alcotest.failf "create_ui failed: %s" e

let test_usig_verify_rejects_forged_counter () =
  let u = make_usig () in
  let d = Hash.of_string "a" in
  match Usig.create_ui u d with
  | Ok ui ->
    let forged = { ui with Usig.counter = Int64.add ui.Usig.counter 1L } in
    Alcotest.(check bool) "forged counter" false (Usig.verify_ui ~key ~digest:d forged)
  | Error e -> Alcotest.failf "create_ui failed: %s" e

let test_usig_plain_register_silent_skew () =
  (* An SEU in a plain counter register silently skews subsequent UIs: the
     paper's catastrophic case. *)
  let u = make_usig ~protection:Register.Plain () in
  let d = Hash.of_string "m" in
  (match Usig.create_ui u d with Ok _ -> () | Error e -> Alcotest.failf "%s" e);
  (* counter = 1; flip bit 4 -> counter = 17 *)
  Register.inject_upset_at (Usig.counter_register u) 4;
  match Usig.create_ui u d with
  | Ok ui ->
    Alcotest.(check int64) "skewed counter" 18L ui.Usig.counter;
    (* the MAC still verifies: the corruption is undetectable downstream *)
    Alcotest.(check bool) "silently valid" true (Usig.verify_ui ~key ~digest:d ui)
  | Error e -> Alcotest.failf "unexpected detection: %s" e

let test_usig_secded_register_corrects () =
  let u = make_usig ~protection:Register.Secded () in
  let d = Hash.of_string "m" in
  (match Usig.create_ui u d with Ok _ -> () | Error e -> Alcotest.failf "%s" e);
  Register.inject_upset_at (Usig.counter_register u) 4;
  match Usig.create_ui u d with
  | Ok ui ->
    Alcotest.(check int64) "counter intact" 2L ui.Usig.counter;
    Alcotest.(check int) "correction counted" 1 (Usig.corrections u)
  | Error e -> Alcotest.failf "unexpected detection: %s" e

let test_usig_secded_double_flip_fail_stop () =
  let u = make_usig ~protection:Register.Secded () in
  Register.inject_upset_at (Usig.counter_register u) 4;
  Register.inject_upset_at (Usig.counter_register u) 9;
  (match Usig.create_ui u (Hash.of_string "m") with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "double flip must fail-stop");
  Alcotest.(check int) "fault counted" 1 (Usig.faults_detected u)

let test_usig_keychain_integration () =
  let kc = Keychain.create ~master:9L ~n:4 in
  let u = Usig.create ~id:2 ~key:(Keychain.component kc 2) ~protection:Register.Secded in
  let d = Hash.of_string "req" in
  match Usig.create_ui u d with
  | Ok ui ->
    Alcotest.(check bool) "verifier uses component key" true
      (Usig.verify_ui ~key:(Keychain.component kc 2) ~digest:d ui)
  | Error e -> Alcotest.failf "create_ui failed: %s" e

(* --- Usig.Monotonic --- *)

let test_monotonic_accepts_sequence () =
  let c = Usig.Monotonic.create () in
  Alcotest.(check bool) "1" true (Usig.Monotonic.check c ~signer:0 ~counter:1L = Usig.Monotonic.Accept);
  Alcotest.(check bool) "2" true (Usig.Monotonic.check c ~signer:0 ~counter:2L = Usig.Monotonic.Accept);
  Alcotest.(check int64) "tracked" 2L (Usig.Monotonic.last_accepted c ~signer:0)

let test_monotonic_replay () =
  let c = Usig.Monotonic.create () in
  ignore (Usig.Monotonic.check c ~signer:0 ~counter:1L);
  Alcotest.(check bool) "replay" true (Usig.Monotonic.check c ~signer:0 ~counter:1L = Usig.Monotonic.Replay)

let test_monotonic_gap () =
  let c = Usig.Monotonic.create () in
  ignore (Usig.Monotonic.check c ~signer:0 ~counter:1L);
  (match Usig.Monotonic.check c ~signer:0 ~counter:5L with
   | Usig.Monotonic.Gap missing -> Alcotest.(check int64) "gap size" 3L missing
   | _ -> Alcotest.fail "expected gap");
  (* Gap does not advance the tracker. *)
  Alcotest.(check int64) "not advanced" 1L (Usig.Monotonic.last_accepted c ~signer:0)

let test_monotonic_per_signer () =
  let c = Usig.Monotonic.create () in
  ignore (Usig.Monotonic.check c ~signer:0 ~counter:1L);
  Alcotest.(check bool) "other signer independent" true
    (Usig.Monotonic.check c ~signer:1 ~counter:1L = Usig.Monotonic.Accept)

(* --- Trinc --- *)

let test_trinc_advances () =
  let tr = Trinc.create ~id:1 ~key ~protection:Register.Secded in
  let d = Hash.of_string "x" in
  (match Trinc.attest tr ~new_counter:5L ~digest:d with
   | Ok a ->
     Alcotest.(check int64) "previous" 0L a.Trinc.previous;
     Alcotest.(check int64) "current" 5L a.Trinc.current;
     Alcotest.(check bool) "verifies" true (Trinc.verify ~key a)
   | Error e -> Alcotest.failf "attest failed: %s" e);
  match Trinc.attest tr ~new_counter:7L ~digest:d with
  | Ok a -> Alcotest.(check int64) "previous tracks" 5L a.Trinc.previous
  | Error e -> Alcotest.failf "attest failed: %s" e

let test_trinc_rejects_decrease () =
  let tr = Trinc.create ~id:1 ~key ~protection:Register.Secded in
  let d = Hash.of_string "x" in
  (match Trinc.attest tr ~new_counter:5L ~digest:d with Ok _ -> () | Error e -> Alcotest.failf "%s" e);
  match Trinc.attest tr ~new_counter:4L ~digest:d with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "rollback must be rejected"

let test_trinc_zero_advance_allowed () =
  let tr = Trinc.create ~id:1 ~key ~protection:Register.Secded in
  let d = Hash.of_string "x" in
  (match Trinc.attest tr ~new_counter:5L ~digest:d with Ok _ -> () | Error e -> Alcotest.failf "%s" e);
  match Trinc.attest tr ~new_counter:5L ~digest:d with
  | Ok a ->
    Alcotest.(check int64) "status attestation" 5L a.Trinc.previous;
    Alcotest.(check int64) "no change" 5L a.Trinc.current
  | Error e -> Alcotest.failf "zero advance should work: %s" e

let test_trinc_tamper_detected () =
  let tr = Trinc.create ~id:1 ~key ~protection:Register.Secded in
  match Trinc.attest tr ~new_counter:3L ~digest:(Hash.of_string "x") with
  | Ok a ->
    let tampered = { a with Trinc.current = 9L } in
    Alcotest.(check bool) "tamper fails verify" false (Trinc.verify ~key tampered)
  | Error e -> Alcotest.failf "attest failed: %s" e

(* --- A2m --- *)

let test_a2m_append_and_latest () =
  let q = A2m.create ~id:0 ~key in
  let a1 = A2m.append q (Hash.of_string "e1") in
  let a2 = A2m.append q (Hash.of_string "e2") in
  Alcotest.(check int64) "seq 1" 1L a1.A2m.seq;
  Alcotest.(check int64) "seq 2" 2L a2.A2m.seq;
  Alcotest.(check int) "size" 2 (A2m.size q);
  match A2m.latest q with
  | Some l -> Alcotest.(check int64) "latest is 2" 2L l.A2m.seq
  | None -> Alcotest.fail "expected latest"

let test_a2m_lookup_historical () =
  let q = A2m.create ~id:0 ~key in
  let a1 = A2m.append q (Hash.of_string "e1") in
  ignore (A2m.append q (Hash.of_string "e2"));
  match A2m.lookup q ~seq:1L with
  | Some a ->
    Alcotest.(check bool) "same entry" true (Hash.equal a.A2m.entry a1.A2m.entry);
    Alcotest.(check bool) "same chain" true (Hash.equal a.A2m.chain a1.A2m.chain);
    Alcotest.(check bool) "verifies" true (A2m.verify ~key a)
  | None -> Alcotest.fail "expected entry"

let test_a2m_lookup_out_of_range () =
  let q = A2m.create ~id:0 ~key in
  ignore (A2m.append q (Hash.of_string "e1"));
  Alcotest.(check bool) "zero" true (A2m.lookup q ~seq:0L = None);
  Alcotest.(check bool) "beyond" true (A2m.lookup q ~seq:2L = None)

let test_a2m_verify_rejects_tamper () =
  let q = A2m.create ~id:0 ~key in
  let a = A2m.append q (Hash.of_string "e1") in
  let tampered = { a with A2m.entry = Hash.of_string "e2" } in
  Alcotest.(check bool) "tampered rejected" false (A2m.verify ~key tampered)

let test_a2m_consistency () =
  let q = A2m.create ~id:0 ~key in
  let a1 = A2m.append q (Hash.of_string "e1") in
  let e2 = Hash.of_string "e2" and e3 = Hash.of_string "e3" in
  ignore (A2m.append q e2);
  let a3 = A2m.append q e3 in
  Alcotest.(check bool) "prefix links histories" true
    (A2m.consistent ~earlier:a1 ~later:a3 ~prefix:[ e2; e3 ]);
  Alcotest.(check bool) "wrong prefix rejected" false
    (A2m.consistent ~earlier:a1 ~later:a3 ~prefix:[ e3; e2 ])

let test_a2m_fork_detected () =
  (* Two A2Ms with the same key and id simulate a host trying to maintain a
     forked history: attestations disagree. *)
  let q1 = A2m.create ~id:0 ~key in
  let q2 = A2m.create ~id:0 ~key in
  ignore (A2m.append q1 (Hash.of_string "common"));
  ignore (A2m.append q2 (Hash.of_string "common"));
  let fork1 = A2m.append q1 (Hash.of_string "to-alice") in
  let fork2 = A2m.append q2 (Hash.of_string "to-bob") in
  Alcotest.(check int64) "same seq" fork1.A2m.seq fork2.A2m.seq;
  Alcotest.(check bool) "chains diverge" false (Hash.equal fork1.A2m.chain fork2.A2m.chain)

let () =
  Alcotest.run "resoc_hybrid"
    [
      ( "usig",
        [
          Alcotest.test_case "counter monotonic" `Quick test_usig_counter_monotonic;
          Alcotest.test_case "verify ok" `Quick test_usig_verify_ok;
          Alcotest.test_case "rejects wrong digest" `Quick test_usig_verify_rejects_wrong_digest;
          Alcotest.test_case "rejects wrong key" `Quick test_usig_verify_rejects_wrong_key;
          Alcotest.test_case "rejects forged counter" `Quick test_usig_verify_rejects_forged_counter;
          Alcotest.test_case "plain register silent skew" `Quick test_usig_plain_register_silent_skew;
          Alcotest.test_case "secded corrects" `Quick test_usig_secded_register_corrects;
          Alcotest.test_case "secded double flip fail-stop" `Quick test_usig_secded_double_flip_fail_stop;
          Alcotest.test_case "keychain integration" `Quick test_usig_keychain_integration;
        ] );
      ( "monotonic",
        [
          Alcotest.test_case "accepts sequence" `Quick test_monotonic_accepts_sequence;
          Alcotest.test_case "replay" `Quick test_monotonic_replay;
          Alcotest.test_case "gap" `Quick test_monotonic_gap;
          Alcotest.test_case "per signer" `Quick test_monotonic_per_signer;
        ] );
      ( "trinc",
        [
          Alcotest.test_case "advances" `Quick test_trinc_advances;
          Alcotest.test_case "rejects decrease" `Quick test_trinc_rejects_decrease;
          Alcotest.test_case "zero advance" `Quick test_trinc_zero_advance_allowed;
          Alcotest.test_case "tamper detected" `Quick test_trinc_tamper_detected;
        ] );
      ( "a2m",
        [
          Alcotest.test_case "append and latest" `Quick test_a2m_append_and_latest;
          Alcotest.test_case "lookup historical" `Quick test_a2m_lookup_historical;
          Alcotest.test_case "lookup out of range" `Quick test_a2m_lookup_out_of_range;
          Alcotest.test_case "verify rejects tamper" `Quick test_a2m_verify_rejects_tamper;
          Alcotest.test_case "consistency" `Quick test_a2m_consistency;
          Alcotest.test_case "fork detected" `Quick test_a2m_fork_detected;
        ] );
    ]
