open Resoc_crypto
module Rng = Resoc_des.Rng

let test_hash_deterministic () =
  Alcotest.(check int64) "equal inputs" (Hash.of_string "abc") (Hash.of_string "abc")

let test_hash_distinct () =
  Alcotest.(check bool) "different inputs" false
    (Hash.equal (Hash.of_string "abc") (Hash.of_string "abd"))

let test_hash_empty () =
  (* Defined and stable on the empty string. *)
  Alcotest.(check int64) "empty stable" (Hash.of_string "") (Hash.of_bytes Bytes.empty)

let test_hash_combine_order () =
  let a = Hash.of_string "a" and b = Hash.of_string "b" in
  Alcotest.(check bool) "order sensitive" false (Hash.equal (Hash.combine a b) (Hash.combine b a))

let test_hash_chain_distinct () =
  let d = Hash.of_string "entry" in
  let c1 = Hash.chain Hash.zero d in
  let c2 = Hash.chain c1 d in
  Alcotest.(check bool) "chain advances" false (Hash.equal c1 c2)

let test_hash_hex () =
  Alcotest.(check int) "16 hex chars" 16 (String.length (Hash.to_hex (Hash.of_string "x")))

let prop_hash_injective_sample =
  QCheck.Test.make ~name:"no collisions on small strings" ~count:500
    QCheck.(pair (string_of_size (QCheck.Gen.return 6)) (string_of_size (QCheck.Gen.return 6)))
    (fun (a, b) -> a = b || not (Hash.equal (Hash.of_string a) (Hash.of_string b)))

let test_mac_roundtrip () =
  let k = Mac.key_of_int64 123L in
  let d = Hash.of_string "message" in
  Alcotest.(check bool) "verify own tag" true (Mac.verify k d (Mac.sign k d))

let test_mac_wrong_key () =
  let k1 = Mac.key_of_int64 1L and k2 = Mac.key_of_int64 2L in
  let d = Hash.of_string "message" in
  Alcotest.(check bool) "other key fails" false (Mac.verify k2 d (Mac.sign k1 d))

let test_mac_wrong_digest () =
  let k = Mac.key_of_int64 1L in
  let tag = Mac.sign k (Hash.of_string "a") in
  Alcotest.(check bool) "other digest fails" false (Mac.verify k (Hash.of_string "b") tag)

let test_mac_corrupt_detected () =
  let k = Mac.key_of_int64 9L in
  let d = Hash.of_string "payload" in
  let tag = Mac.corrupt (Mac.sign k d) in
  Alcotest.(check bool) "corrupted tag rejected" false (Mac.verify k d tag)

let test_mac_fresh_keys_differ () =
  let rng = Rng.create 11L in
  let k1 = Mac.fresh_key rng and k2 = Mac.fresh_key rng in
  let d = Hash.of_string "m" in
  Alcotest.(check bool) "fresh keys differ" false (Mac.equal (Mac.sign k1 d) (Mac.sign k2 d))

let test_keychain_pairwise_symmetric () =
  let kc = Keychain.create ~master:77L ~n:5 in
  let d = Hash.of_string "m" in
  Alcotest.(check bool) "symmetric" true
    (Mac.equal (Mac.sign (Keychain.pairwise kc 1 3) d) (Mac.sign (Keychain.pairwise kc 3 1) d))

let test_keychain_pairwise_distinct () =
  let kc = Keychain.create ~master:77L ~n:5 in
  let d = Hash.of_string "m" in
  Alcotest.(check bool) "distinct pairs" false
    (Mac.equal (Mac.sign (Keychain.pairwise kc 0 1) d) (Mac.sign (Keychain.pairwise kc 0 2) d))

let test_keychain_component_distinct_from_pairwise () =
  let kc = Keychain.create ~master:77L ~n:5 in
  let d = Hash.of_string "m" in
  Alcotest.(check bool) "component vs pairwise" false
    (Mac.equal (Mac.sign (Keychain.component kc 1) d) (Mac.sign (Keychain.pairwise kc 1 1) d))

let test_keychain_deterministic () =
  let a = Keychain.create ~master:5L ~n:4 and b = Keychain.create ~master:5L ~n:4 in
  let d = Hash.of_string "m" in
  Alcotest.(check bool) "same master same keys" true
    (Mac.equal (Mac.sign (Keychain.pairwise a 0 2) d) (Mac.sign (Keychain.pairwise b 0 2) d))

let test_keychain_bounds () =
  let kc = Keychain.create ~master:5L ~n:3 in
  Alcotest.check_raises "out of range" (Invalid_argument "Keychain: principal out of range")
    (fun () -> ignore (Keychain.pairwise kc 0 3))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "resoc_crypto"
    [
      ( "hash",
        [
          Alcotest.test_case "deterministic" `Quick test_hash_deterministic;
          Alcotest.test_case "distinct" `Quick test_hash_distinct;
          Alcotest.test_case "empty" `Quick test_hash_empty;
          Alcotest.test_case "combine order" `Quick test_hash_combine_order;
          Alcotest.test_case "chain distinct" `Quick test_hash_chain_distinct;
          Alcotest.test_case "hex" `Quick test_hash_hex;
        ] );
      qsuite "hash-prop" [ prop_hash_injective_sample ];
      ( "mac",
        [
          Alcotest.test_case "roundtrip" `Quick test_mac_roundtrip;
          Alcotest.test_case "wrong key" `Quick test_mac_wrong_key;
          Alcotest.test_case "wrong digest" `Quick test_mac_wrong_digest;
          Alcotest.test_case "corrupt detected" `Quick test_mac_corrupt_detected;
          Alcotest.test_case "fresh keys differ" `Quick test_mac_fresh_keys_differ;
        ] );
      ( "keychain",
        [
          Alcotest.test_case "pairwise symmetric" `Quick test_keychain_pairwise_symmetric;
          Alcotest.test_case "pairwise distinct" `Quick test_keychain_pairwise_distinct;
          Alcotest.test_case "component distinct" `Quick test_keychain_component_distinct_from_pairwise;
          Alcotest.test_case "deterministic" `Quick test_keychain_deterministic;
          Alcotest.test_case "bounds" `Quick test_keychain_bounds;
        ] );
    ]
